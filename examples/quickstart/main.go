// Quickstart: clean a small transaction table with two hand-written REE++
// rules — one conflict-resolution rule and one imputation rule. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/rockclean/rock/rock"
)

func main() {
	// A Transaction table with a wrong manufactory and a missing price
	// (rows 2 and 4 mirror the paper's Table 3 errors).
	db := rock.NewDB()
	trans := rock.NewRel(rock.MustSchema("Trans",
		rock.Attribute{Name: "com", Type: rock.TString},
		rock.Attribute{Name: "mfg", Type: rock.TString},
		rock.Attribute{Name: "price", Type: rock.TFloat},
	))
	trans.Insert("t1", rock.S("Mate X2"), rock.S("Huawei"), rock.F(5200))
	trans.Insert("t2", rock.S("Mate X2"), rock.S("Apple"), rock.Null(rock.TFloat)) // both cells dirty
	trans.Insert("t3", rock.S("Mate X2"), rock.S("Huawei"), rock.F(5200))
	trans.Insert("t4", rock.S("IPhone 13"), rock.S("Apple"), rock.F(9000))
	db.Add(trans)

	p := rock.NewPipeline(db)
	p.TrainCorrelationModels() // enables learning-based conflict resolution

	// ϕ2 of the paper: the same commodity has the same manufactory.
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	// Imputation: a missing price copies from a same-commodity sale by the
	// same manufactory.
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com ^ t.mfg = s.mfg ^ null(t.price) -> t.price = s.price")

	report, err := p.Clean()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detected %d errors, applied %d corrections in %d chase rounds\n",
		len(report.Errors), len(report.Corrections), report.ChaseRounds)
	for _, c := range report.Corrections {
		fmt.Printf("  %s: %v -> %v\n", c.Cell, c.Old, c.New)
	}
	fmt.Println("\ncleaned table:")
	for _, t := range trans.Tuples {
		fmt.Printf("  %-4s %-10s %-7s %v\n", t.EID, t.Values[0], t.Values[1], t.Values[2])
	}
}
