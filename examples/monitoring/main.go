// Monitoring: Rock's continuous operation mode (paper §3: "the users may
// opt to employ Rock to monitor changes to D, and incrementally detect and
// fix errors in response to updates", and §4.1's data-quality assessment).
// A pipeline cleans a table once, then processes live update batches
// incrementally, with quality templates watching the dimensions. Run with:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"github.com/rockclean/rock/rock"
)

func main() {
	db := rock.NewDB()
	orders := rock.NewRel(rock.MustSchema("Order",
		rock.Attribute{Name: "sku", Type: rock.TString},
		rock.Attribute{Name: "warehouse", Type: rock.TString},
		rock.Attribute{Name: "weight", Type: rock.TFloat},
	))
	orders.Insert("o1", rock.S("SKU-100"), rock.S("WH-North"), rock.F(1.2))
	orders.Insert("o2", rock.S("SKU-100"), rock.S("WH-North"), rock.F(1.2))
	orders.Insert("o3", rock.S("SKU-200"), rock.S("WH-South"), rock.F(4.5))
	db.Add(orders)

	p := rock.NewPipeline(db)
	p.TrainCorrelationModels()
	// Every unit of a SKU ships from the same warehouse and weighs the same.
	p.MustAddRule("Order(t) ^ Order(s) ^ t.sku = s.sku -> t.warehouse = s.warehouse")
	p.MustAddRule("Order(t) ^ Order(s) ^ t.sku = s.sku ^ null(t.weight) -> t.weight = s.weight")

	// Quality templates (§4.1): watch nulls and out-of-range weights.
	p.CheckNulls("Order", "weight")
	p.CheckRange("Order", "weight", 0.01, 100)

	if _, err := p.Clean(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial clean done; entering monitoring mode")

	// Update batch 1: a new order with a wrong warehouse.
	d1 := p.NewDelta()
	d1.Insert("Order", "o4", rock.S("SKU-100"), rock.S("WH-WRONG"), rock.F(1.2))
	errs, err := d1.DetectIncremental()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch 1: %d incremental errors detected\n", len(errs))
	fixes, err := d1.CleanIncremental()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fixes {
		fmt.Printf("  fixed %s: %v -> %v\n", f.Cell, f.Old, f.New)
	}

	// Update batch 2: a new order with a missing weight.
	d2 := p.NewDelta()
	d2.Insert("Order", "o5", rock.S("SKU-200"), rock.S("WH-South"), rock.Null(rock.TFloat))
	findings, before := p.Monitor()
	fixes, err = d2.CleanIncremental()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fixes {
		fmt.Printf("batch 2: imputed %s = %v\n", f.Cell, f.New)
	}
	_, after := p.Monitor()
	fmt.Printf("completeness %0.3f -> %0.3f across the batch\n", before.Completeness, after.Completeness)
	for _, f := range findings {
		fmt.Printf("  watched: %s on %s flagged %d tuples\n", f.Template, f.Rel, len(f.TIDs))
	}
}
