// Logistics: the paper's logistics client story (§6, Exp-4) — a single
// wide Order table with many nulls, cleaned primarily through missing-
// value imputation: logic rules over in-table witnesses plus extraction
// from a geographic knowledge graph (the HER/match/val predicates of
// §2.3). Run with:
//
//	go run ./examples/logistics
package main

import (
	"fmt"
	"log"

	"github.com/rockclean/rock/rock"
)

func main() {
	db := rock.NewDB()
	orders := rock.NewRel(rock.MustSchema("Order",
		rock.Attribute{Name: "recipient", Type: rock.TString},
		rock.Attribute{Name: "street", Type: rock.TString},
		rock.Attribute{Name: "area", Type: rock.TString},
		rock.Attribute{Name: "city", Type: rock.TString},
		rock.Attribute{Name: "zip", Type: rock.TString},
	))
	// Fairly consistent but incomplete data, as the client reported.
	orders.Insert("o1", rock.S("Mina Chen"), rock.S("5 Nanjing Road"), rock.S("Shanghai Metro Area"), rock.S("Shanghai"), rock.S("021-0007"))
	orders.Insert("o2", rock.S("Tao Wang"), rock.S("9 Nanjing Road"), rock.Null(rock.TString), rock.S("Shanghai"), rock.S("021-0007"))
	orders.Insert("o3", rock.S("Omar Singh"), rock.S("12 Shennan Avenue"), rock.Null(rock.TString), rock.S("Shenzhen"), rock.S("0755-0031"))
	orders.Insert("o4", rock.S("Lena Baker"), rock.Null(rock.TString), rock.Null(rock.TString), rock.S("Shenzhen"), rock.S("0755-0031"))
	db.Add(orders)

	// Geographic knowledge graph: each city vertex reaches its metro-area
	// vertex via an AreaOf edge.
	geo := rock.NewGraph("GeoKG")
	for _, city := range []string{"Shanghai", "Shenzhen"} {
		cv := geo.AddVertex(city)
		av := geo.AddVertex(city + " Metro Area")
		rock.MustEdge(geo, cv, "AreaOf", av)
	}

	p := rock.NewPipeline(db)
	p.RegisterGraph(geo, 0.55)
	p.TrainCorrelationModels()

	// MI strategy 1 (logic): a same-city witness supplies the area.
	p.MustAddRule("Order(t) ^ Order(s) ^ t.city = s.city ^ null(t.area) -> t.area = s.area")
	// MI strategy 2 (extraction): when no witness exists, HER aligns the
	// order with its city vertex and the AreaOf path supplies the value.
	p.MustAddRule("Order(t) ^ vertex(x, GeoKG) ^ HER(t, x) ^ match(t.area, x.(AreaOf)) ^ null(t.area) -> t.area = val(x.(AreaOf))")
	// MI strategy 3 (logic over zip): a same-zip witness supplies the street.
	p.MustAddRule("Order(t) ^ Order(s) ^ t.zip = s.zip ^ null(t.street) -> t.street = s.street")

	report, err := p.Clean()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imputed %d cells in %d chase rounds:\n", len(report.Corrections), report.ChaseRounds)
	for _, c := range report.Corrections {
		src := "witness"
		if c.Cell.Attr == "area" && c.Cell.TID == 2 {
			src = "knowledge graph" // o3 has no same-city witness with an area
		}
		fmt.Printf("  %-18s -> %-22v (%s)\n", c.Cell, c.New, src)
	}
	fmt.Printf("completeness after cleaning: %.2f\n", report.Assessment.Completeness)
}
