// E-commerce: the paper's running example (Tables 1–3) end to end,
// replaying the interaction chain of Example 7 — ER helps CR, CR helps
// TD, TD helps MI, MI helps ER — plus knowledge-graph extraction (ϕ7) and
// ML-predicate entity resolution (ϕ1). Run with:
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"github.com/rockclean/rock/rock"
)

func main() {
	db := rock.NewDB()

	// Table 1: Person — Christine appears under two pids (p1/p2), the Smith
	// household moved, George's second record (p4) is mostly null.
	person := rock.NewRel(rock.MustSchema("Person",
		rock.Attribute{Name: "LN", Type: rock.TString},
		rock.Attribute{Name: "FN", Type: rock.TString},
		rock.Attribute{Name: "home", Type: rock.TString},
		rock.Attribute{Name: "status", Type: rock.TString},
	))
	person.Insert("p2", rock.S("Smith"), rock.S("Christine"), rock.S("5 West Road"), rock.S("single"))
	person.Insert("p2", rock.S("Smith"), rock.S("Christine"), rock.S("12 Beijing Road"), rock.S("married"))
	person.Insert("p3", rock.S("Smith"), rock.S("George"), rock.S("12 Beijing Road"), rock.S("married"))
	person.Insert("p4", rock.S("Smith"), rock.S("George"), rock.Null(rock.TString), rock.Null(rock.TString))
	db.Add(person)

	// Table 2: Store — missing location (s2) and area codes.
	store := rock.NewRel(rock.MustSchema("Store",
		rock.Attribute{Name: "name", Type: rock.TString},
		rock.Attribute{Name: "location", Type: rock.TString},
		rock.Attribute{Name: "area_code", Type: rock.TString},
	))
	store.Insert("s1", rock.S("Apple Jingdong Self-run"), rock.S("Beijing"), rock.Null(rock.TString))
	store.Insert("s2", rock.S("Apple Taobao Flagship"), rock.Null(rock.TString), rock.Null(rock.TString))
	store.Insert("s4", rock.S("Huawei Sports"), rock.S("Shanghai"), rock.S("021"))
	db.Add(store)

	// Table 3: Transaction — the discount-code pair identifies p1/p2's
	// buyer; Mate X2's manufactory is wrong on t15.
	trans := rock.NewRel(rock.MustSchema("Trans",
		rock.Attribute{Name: "pid", Type: rock.TString},
		rock.Attribute{Name: "sid", Type: rock.TString},
		rock.Attribute{Name: "com", Type: rock.TString},
		rock.Attribute{Name: "mfg", Type: rock.TString},
		rock.Attribute{Name: "date", Type: rock.TTime},
	))
	trans.Insert("t12", rock.S("p1"), rock.S("s1"), rock.S("IPhone 14 (Discount ID 41)"), rock.S("Apple"), rock.TS(1636588800))
	trans.Insert("t13", rock.S("p2"), rock.S("s1"), rock.S("IPhone 14 (Discount Code 41)"), rock.S("Apple"), rock.TS(1636588800))
	trans.Insert("t14", rock.S("p3"), rock.S("s3"), rock.S("Mate X2 (Limited Sold)"), rock.S("Huawei"), rock.TS(1691798400))
	trans.Insert("t15", rock.S("p4"), rock.S("s4"), rock.S("Mate X2 (Limited Sold)"), rock.S("Apple"), rock.TS(1691798400))
	db.Add(trans)

	// The Wiki knowledge graph of ϕ7: the Apple Taobao store is at Beijing.
	wiki := rock.NewGraph("Wiki")
	apple := wiki.AddVertex("Apple Taobao Flagship")
	beijing := wiki.AddVertex("Beijing")
	rock.MustEdge(wiki, apple, "LocationAt", beijing)

	p := rock.NewPipeline(db)
	p.RegisterMatcher("M_ER", 0.82) // the commodity/discount-code matcher of ϕ1
	p.RegisterGraph(wiki, 0.6)
	p.DeclareEntityRef("Trans", "pid") // pid references Person entities
	p.TrainCorrelationModels()
	// Master data (the Γ of §4.1): Huawei manufactures the Mate X2. Without
	// it, the two Mate X2 rows disagree 1–1 on the manufactory and the
	// certain-fix discipline would (correctly) refuse to guess.
	if err := p.Validate("Trans", "t14", "mfg", rock.S("Huawei")); err != nil {
		log.Fatal(err)
	}

	rules := []string{
		// ϕ1: same discount code, same store, same date → same buyer.
		"Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) ^ t.date = s.date ^ t.sid = s.sid -> t.pid = s.pid",
		// ϕ2: same commodity → same manufactory.
		"Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg",
		// ϕ4/ϕ5: status moves single→married; home currency follows status.
		"Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s",
		"Person(t) ^ Person(s) ^ t <=[status] s -> t <=[home] s",
		// ϕ14 (household form): the newer home of a namesake household
		// fills a member's missing home.
		"Person(u) ^ Person(t) ^ Person(s) ^ u.LN = t.LN ^ u.FN = t.FN ^ t.LN = s.LN ^ u <=[home] t ^ t.status = 'married' ^ null(s.home) -> s.home = t.home",
		// ϕ15: same full name + home identifies persons.
		"Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid",
		// ϕ7: extract the missing store location from Wiki.
		"Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) ^ null(t.location) -> t.location = val(x.(LocationAt))",
		// ϕ12: Beijing's area code is 010.
		"Store(t) ^ t.location = 'Beijing' -> t.area_code = '010'",
	}
	for _, src := range rules {
		p.MustAddRule(src)
	}

	report, err := p.Clean()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Example 7's interaction chain, replayed by the unified chase:")
	fmt.Printf("  %d chase rounds; %d corrections; %d temporal pairs\n",
		report.ChaseRounds, len(report.Corrections), report.OrderedPairs)
	for _, c := range report.Corrections {
		fmt.Printf("  fix %-22s %v -> %v\n", c.Cell.String()+":", c.Old, c.New)
	}
	for _, g := range report.MergedEntities {
		fmt.Printf("  identified entities: %v\n", g)
	}
	fmt.Println("\nexpected: p1=p2 (ϕ1 via discount code), p3=p4 (ϕ15 after the")
	fmt.Println("home imputation that ϕ14 derives from the ϕ4/ϕ5 temporal order),")
	fmt.Println("t15's manufactory fixed (ϕ2), s2's location from Wiki (ϕ7),")
	fmt.Println("area codes 010 for the Beijing stores (ϕ12).")
}
