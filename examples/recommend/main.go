// Recommend: the paper's e-commerce enrichment story (§6, Exp-4, "Data
// cleaning in e-commerce"): a recommender's external feature tables
// (UserExt, ItemExt) are dirty and incomplete, so the deepFM model makes
// poor calls. Rock cleans them with the sample rules ϕER, ϕCR, ϕTD and
// ϕMI from the paper, after which the user-item decision flips. Run with:
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"

	"github.com/rockclean/rock/rock"
)

// deepFM is the recommendation model stand-in: it scores a (user, item)
// pair from the cleaned features. Before cleaning, John's latestProduct is
// null and the IPhone 14's release year is wrong, so the score is low.
func deepFM(latestProduct, itemName, itemYear string) float64 {
	score := 0.2
	if latestProduct == "IPhone 13" && itemName == "IPhone14" {
		score += 0.6 // upgrade path: prior model of the same series
	}
	if itemYear == "2022" {
		score += 0.15 // fresh item
	}
	return score
}

func main() {
	db := rock.NewDB()

	user := rock.NewRel(rock.MustSchema("User",
		rock.Attribute{Name: "name", Type: rock.TString},
		rock.Attribute{Name: "latestProduct", Type: rock.TString},
		rock.Attribute{Name: "boughtYear", Type: rock.TString},
	))
	john := user.Insert("u1", rock.S("John"), rock.Null(rock.TString), rock.S("2021"))
	db.Add(user)

	// The crawled external user table knows John's latest product.
	userExt := rock.NewRel(rock.MustSchema("UserExt",
		rock.Attribute{Name: "name", Type: rock.TString},
		rock.Attribute{Name: "product", Type: rock.TString},
	))
	userExt.Insert("x1", rock.S("John"), rock.S("IPhone 13"))
	db.Add(userExt)

	// The item table has a wrong release year for the IPhone 14.
	item := rock.NewRel(rock.MustSchema("ItemExt",
		rock.Attribute{Name: "name", Type: rock.TString},
		rock.Attribute{Name: "cat", Type: rock.TString},
		rock.Attribute{Name: "year", Type: rock.TString},
	))
	iphone := item.Insert("i1", rock.S("IPhone14"), rock.S("mobile"), rock.S("2002"))
	db.Add(item)

	before := deepFM(
		str(user, john.TID, "latestProduct"),
		str(item, iphone.TID, "name"),
		str(item, iphone.TID, "year"))

	p := rock.NewPipeline(db)
	p.RegisterMatcher("M_ER", 0.8)
	p.TrainCorrelationModels()
	// ϕCR of the paper: the release year of "IPhone14" is 2022.
	p.MustAddRule("ItemExt(t) ^ t.name = 'IPhone14' -> t.year = '2022'")
	// ϕMI of the paper: the external source's product fills the missing
	// latestProduct once the ER model identifies the user.
	p.MustAddRule("User(t) ^ UserExt(s) ^ M_ER(t[name], s[name]) ^ null(t.latestProduct) -> t.latestProduct = s.product")

	report, err := p.Clean()
	if err != nil {
		log.Fatal(err)
	}
	after := deepFM(
		str(user, john.TID, "latestProduct"),
		str(item, iphone.TID, "name"),
		str(item, iphone.TID, "year"))

	fmt.Printf("applied %d corrections:\n", len(report.Corrections))
	for _, c := range report.Corrections {
		fmt.Printf("  %s: %v -> %v\n", c.Cell, c.Old, c.New)
	}
	fmt.Printf("\ndeepFM(John, IPhone14) before cleaning: %.2f (not recommended)\n", before)
	fmt.Printf("deepFM(John, IPhone14) after  cleaning: %.2f (recommended)\n", after)
	if after <= before {
		log.Fatal("cleaning should have improved the recommendation score")
	}
	// The cleaned positive pair can now serve as a training example for
	// incrementally refreshing deepFM, exactly as the paper describes.
}

func str(rel *rock.Relation, tid int, attr string) string {
	v, _ := rel.Value(tid, attr)
	if v.IsNull() {
		return ""
	}
	return v.Str()
}
