package rockbench

import (
	"strings"
	"testing"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/discovery"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/workload"
	"github.com/rockclean/rock/rock"
)

// TestMinedRulePipeline runs the paper's full workflow with NO curated
// rules: discover REE++s from the (dirty) data, keep the top-ranked ones,
// detect errors with them, and score against the gold labels. This is the
// self-sufficient loop of §6's bank deployment ("Rock executed the rule
// discovery module to discover a set of rules from the (dirty) data; these
// rules were fed to the error detection module").
func TestMinedRulePipeline(t *testing.T) {
	ds := workload.Bank(workload.Config{N: 250, Seed: 11})
	b := baselines.NewBench(ds, 4)
	sys := baselines.Rock()
	mined, err := sys.Discover(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("discovery found nothing")
	}
	// Shortlist the candidates that witnessed violations during mining
	// (confidence below 1 on the dirty sample): perfectly-satisfied rules
	// detect nothing.
	var shortlist []*ree.Rule
	for _, r := range mined {
		if r.Confidence <= 0.995 {
			shortlist = append(shortlist, r)
		}
	}
	if len(shortlist) > 300 {
		shortlist = discovery.TopK(shortlist, nil, discovery.RankOptions{K: 300, Diversify: true})
	}
	// The §5.4 novice workflow: the user confirms whether each rule's
	// detected errors are true positives (here answered from the gold
	// labels); rules whose findings the user confirms survive.
	goldCells := ds.Gold.ErrorCells()
	confirm := func(r *ree.Rule, h *predicate.Valuation) bool {
		p := r.P0
		check := func(varName, attr string) bool {
			b, ok := h.Tuples[varName]
			if !ok {
				return false
			}
			return goldCells[quality.CellKey(b.Rel, b.Tuple.TID, attr)]
		}
		switch p.Kind {
		case predicate.KEID:
			bt, bs := h.Tuples[p.T], h.Tuples[p.S]
			a, c := bt.Tuple.EID, bs.Tuple.EID
			if a > c {
				a, c = c, a
			}
			return ds.Gold.DupPairs[[2]string{a, c}]
		case predicate.KAttr:
			return check(p.T, p.A) || check(p.S, p.B)
		case predicate.KConst:
			return check(p.T, p.A)
		}
		return false
	}
	pref := discovery.NewPreference()
	precision, err := discovery.NoviceFeedback(b.Env, shortlist, 3, confirm, pref)
	if err != nil {
		t.Fatal(err)
	}
	var confirmed []*ree.Rule
	for _, r := range shortlist {
		if precision[r.String()] >= 0.5 {
			confirmed = append(confirmed, r)
		}
	}
	if len(confirmed) == 0 {
		t.Fatal("the user confirmed no rules")
	}
	b.Rules = confirmed
	cells, dups, err := sys.Detect(b)
	if err != nil {
		t.Fatal(err)
	}
	prf := quality.ScoreDetection(ds.Gold, cells, dups)
	t.Logf("mined %d, shortlisted %d, user-confirmed %d rules: %s",
		len(mined), len(shortlist), len(confirmed), prf)
	// Purely-mined rules catch the dependency-violating errors with perfect
	// precision; the ER duplicates need ground truth or curated ML rules
	// (an ER rule cannot be mined from data that violates it), so recall
	// is bounded — the paper closes the gap with accumulated ground truth.
	if prf.Recall() < 0.25 || prf.Precision() < 0.6 {
		t.Errorf("mined rules recover too few injected errors: %s", prf)
	}
	// The mined set must contain dependency-style rules on the known FDs.
	foundFD := false
	for _, r := range mined {
		if strings.Contains(r.String(), "t.amount = s.amount") &&
			strings.Contains(r.String(), "-> t.total = s.total") {
			foundFD = true
		}
	}
	if !foundFD {
		t.Error("the (amount,fee)->total dependency was not mined")
	}
}

// TestPublicPipelineOnEcommerce drives the public facade over the paper's
// running example end to end and checks the headline corrections.
func TestPublicPipelineOnEcommerce(t *testing.T) {
	ds := workload.Ecommerce()
	p := rock.NewPipeline(ds.DB)
	p.RegisterMatcher("M_ER", 0.82)
	p.TrainCorrelationModels()
	p.RegisterGraph(ds.Graph, 0.6)
	p.DeclareEntityRef("Trans", "pid")
	if err := p.Validate("Trans", "t14", "mfg", rock.S("Huawei")); err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Rules {
		if _, err := p.AddRule(r.String()); err != nil {
			t.Fatalf("rule %s: %v", r.ID, err)
		}
	}
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	// Headline fixes of the paper's walk-through.
	byCell := map[string]string{}
	for _, c := range rep.Corrections {
		byCell[c.Cell.String()] = c.New.String()
	}
	if byCell["Store[1].location"] != "Beijing" {
		t.Errorf("ϕ7 KG extraction missing: %v", byCell)
	}
	if byCell["Store[0].area_code"] != "010" {
		t.Errorf("ϕ12 area code missing: %v", byCell)
	}
	if byCell["Trans[4].mfg"] != "Huawei" {
		t.Errorf("ϕ2 manufactory fix missing: %v", byCell)
	}
	merged := false
	for _, g := range rep.MergedEntities {
		if len(g) == 2 && g[0] == "p1" && g[1] == "p2" {
			merged = true
		}
	}
	if !merged {
		t.Errorf("ϕ1 buyer identification missing: %v", rep.MergedEntities)
	}
}
