// Command rockbench regenerates the paper's evaluation figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for paper-vs-
// measured numbers):
//
//	rockbench -exp all                          # every panel
//	rockbench -exp fig4h -n 2000                # one panel at a larger scale
//	rockbench -exp predication -json BENCH.json # machine-readable output
//	rockbench -exp scale -workers 8             # 10⁶-tuple throughput curve
//
// Experiments: fig4a..fig4l (the panels of Figure 4), rules (discovered
// rule counts), ablation (the design-choice ablations), predication (the
// §5.4 ML predication layer), steal (the §5.2 work-stealing ablation,
// asserted against the obs steal counters), profile (the per-rule /
// per-ML-model cost-attribution table of a span-traced chase, its Σ row
// asserted equal to the phase totals), scale (the §5.1 interned
// hot-path throughput curve at 10⁶ tuples by default — excluded from
// `-exp all` because of its size; -n moves the top of the curve),
// serve (the rockd serving-path load test: 64 concurrent HTTP sessions
// against a warm tenant, reporting cleans/sec and the p95
// ingest→fix-visible latency — also excluded from `-exp all` since it
// spins up a live server), distributed (serial vs cross-process chase
// over a TCP coordinator and worker replicas, asserting the distributed
// fix set is bit-identical to serial — excluded from `-exp all` since
// it binds sockets; `rockbench -exp distributed -json
// BENCH_distributed.json` records the comparison).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/rockclean/rock/internal/benchkit"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: fig4a..fig4l, rules, poly, ablation, predication, steal, faults, profile, scale, serve, distributed, all")
		n        = flag.Int("n", 400, "base tuples per application dataset")
		seed     = flag.Int64("seed", 2024, "generator seed")
		workers  = flag.Int("workers", 4, "default simulated cluster size")
		budget   = flag.Int64("membudget", 0, "interned-column memory budget in bytes for the scale experiment (0 = no cap; a small budget forces the spill-to-disk path)")
		jsonPath = flag.String("json", "", "also write the result tables as JSON to this file")
	)
	flag.Parse()

	cfg := benchkit.Config{N: *n, Seed: *seed, Workers: *workers, MemBudget: *budget}
	var tables []*benchkit.Table
	var err error
	if *exp == "all" {
		tables, err = benchkit.All(cfg)
	} else {
		var t *benchkit.Table
		t, err = benchkit.ByID(*exp, cfg)
		if t != nil {
			tables = []*benchkit.Table{t}
		}
	}
	for _, t := range tables {
		t.Print(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockbench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
	}
}

// benchFile is the BENCH_*.json document: the result tables plus the
// environment they were measured in, so numbers stay comparable across
// machines and CI runners.
type benchFile struct {
	Env    benchkit.EnvInfo  `json:"env"`
	Tables []*benchkit.Table `json:"tables"`
}

func writeJSON(path string, tables []*benchkit.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchFile{Env: benchkit.Environment(), Tables: tables}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
