// Command rockbench regenerates the paper's evaluation figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for paper-vs-
// measured numbers):
//
//	rockbench -exp all                # every panel
//	rockbench -exp fig4h -n 2000      # one panel at a larger scale
//
// Experiments: fig4a..fig4l (the panels of Figure 4), rules (discovered
// rule counts), ablation (the design-choice ablations).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rockclean/rock/internal/benchkit"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig4a..fig4l, rules, ablation, all")
		n       = flag.Int("n", 400, "base tuples per application dataset")
		seed    = flag.Int64("seed", 2024, "generator seed")
		workers = flag.Int("workers", 4, "default simulated cluster size")
	)
	flag.Parse()

	cfg := benchkit.Config{N: *n, Seed: *seed, Workers: *workers}
	if *exp == "all" {
		tables, err := benchkit.All(cfg)
		for _, t := range tables {
			t.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
		return
	}
	t, err := benchkit.ByID(*exp, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockbench:", err)
		os.Exit(1)
	}
	t.Print(os.Stdout)
}
