// Command rock is the CLI front end of the Rock data-cleaning system:
//
//	rock gen -app bank -n 1000 -out ./bankdata      # generate a demo dataset
//	rock clean -in ./bankdata -rules rules.ree      # detect + correct
//	rock detect -in ./bankdata -rules rules.ree     # detect only
//	rock demo                                        # run the paper's e-commerce example
//
// Datasets on disk are directories of <Relation>.csv files in the format
// of data.WriteCSV; rules files hold one REE++ per line in the DSL of
// package ree.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/rockclean/rock/internal/cluster/remote"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/workload"
	"github.com/rockclean/rock/rock"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "clean":
		err = cmdClean(os.Args[2:], true)
	case "detect":
		err = cmdClean(os.Args[2:], false)
	case "demo":
		err = cmdDemo()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rock:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rock gen    -app bank|logistics|sales -n N -out DIR   generate a demo dataset (+ curated rules)
  rock clean  -in DIR -rules FILE [-workers N] [-parallel=bool] [-steal=bool]
              [-timeout D] [-retries N] [-mem-budget SIZE] [-spill-dir DIR]
              [-distributed N] [-workers-addr ADDR]
              [-v] [-metrics-out FILE]
              [-trace-out FILE] [-telemetry ADDR] [-pprof ADDR]
                                                        detect and correct errors in place
  rock detect -in DIR -rules FILE [-workers N] [-metrics-out FILE]   detect errors only
  rock demo                                             run the paper's e-commerce walk-through`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	app := fs.String("app", "bank", "application: bank, logistics, sales")
	n := fs.Int("n", 1000, "base tuple count")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "./rockdata", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ds *workload.Dataset
	switch strings.ToLower(*app) {
	case "bank":
		ds = workload.Bank(workload.Config{N: *n, Seed: *seed})
	case "logistics":
		ds = workload.Logistics(workload.Config{N: *n, Seed: *seed})
	case "sales":
		ds = workload.Sales(workload.Config{N: *n, Seed: *seed})
	default:
		return fmt.Errorf("unknown application %q", *app)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, name := range ds.DB.Names() {
		f, err := os.Create(filepath.Join(*out, name+".csv"))
		if err != nil {
			return err
		}
		if err := data.WriteCSV(f, ds.DB.Rel(name)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	var rulesText strings.Builder
	rulesText.WriteString("# curated REE++ rules for the " + ds.Name + " application\n")
	for _, r := range ds.Rules {
		rulesText.WriteString(r.String() + "\n")
	}
	if err := os.WriteFile(filepath.Join(*out, "rules.ree"), []byte(rulesText.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d relations (%d tuples, %d injected errors) and %d rules to %s\n",
		len(ds.DB.Relations), ds.DB.TupleCount(), ds.Gold.Total(), len(ds.Rules), *out)
	return nil
}

func loadDB(dir string) (*data.Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := data.NewDatabase()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		rel, err := data.ReadCSV(f, strings.TrimSuffix(e.Name(), ".csv"))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		db.Add(rel)
	}
	if len(db.Relations) == 0 {
		return nil, fmt.Errorf("no .csv relations in %s", dir)
	}
	return db, nil
}

func cmdClean(args []string, correct bool) error {
	fs := flag.NewFlagSet("clean", flag.ExitOnError)
	in := fs.String("in", "./rockdata", "dataset directory")
	rulesFile := fs.String("rules", "", "rules file (default: <in>/rules.ree)")
	workers := fs.Int("workers", 4, "cluster size (HyperCube blocks and worker goroutines)")
	parallel := fs.Bool("parallel", true, "run chase work units on a real worker pool (false: serial + simulated makespan only)")
	predication := fs.Bool("predication", true, "precompute ML predications per chase round (versioned embedding store + sharded prediction cache, paper §5.4)")
	steal := fs.Bool("steal", true, "enable work stealing between workers (off: the §5.2 load-balancing ablation)")
	timeout := fs.Duration("timeout", 0, "deadline for the whole run (e.g. 30s); on expiry the fixes established so far are kept and the report is marked partial")
	retries := fs.Int("retries", 2, "max retries for a panicking work unit before it is reported as failed")
	memBudget := fs.String("mem-budget", "", "cap resident bytes of the chase's interned columns (e.g. 256MB, 2GB); above it columns spill to flat on-disk blocks. Empty: no cap")
	spillDir := fs.String("spill-dir", "", "directory for spill block files (default: the system temp directory)")
	verbose := fs.Bool("v", false, "print the per-round chase trace table")
	metricsOut := fs.String("metrics-out", "", "write the run's observability snapshot (counters, histograms, event log) as JSON to FILE")
	traceOut := fs.String("trace-out", "", "write the run's span tree as Chrome trace-event JSON to FILE (load in Perfetto or chrome://tracing)")
	telemetry := fs.String("telemetry", "", "serve live telemetry on ADDR (/metrics Prometheus text, /events, /spans, /snapshot JSON) for the duration of the run; use :0 for an ephemeral port")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on ADDR (e.g. localhost:6060) for the duration of the run; shares the -telemetry server when both are set")
	distributed := fs.Int("distributed", 0, "distribute the chase across N external rockworker processes; the coordinator prints its address, then waits for N workers to connect (launch them with: rockworker -coord ADDR -in DIR -workers W)")
	workersAddr := fs.String("workers-addr", "127.0.0.1:0", "TCP listen address for worker connections (with -distributed); :0 picks a free port")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rulesFile == "" {
		*rulesFile = filepath.Join(*in, "rules.ree")
	}
	db, err := loadDB(*in)
	if err != nil {
		return err
	}
	reg := obs.New()
	if *traceOut != "" || *telemetry != "" {
		reg.EnableSpans(0)
	}
	if *telemetry != "" || *pprofAddr != "" {
		addr := *telemetry
		if addr == "" {
			addr = *pprofAddr
		}
		resolved, shutdown, err := serveDebug(addr, reg, *pprofAddr != "")
		if err != nil {
			return err
		}
		defer shutdown()
		if *telemetry != "" {
			fmt.Printf("telemetry listening on http://%s/metrics\n", resolved)
		}
		if *pprofAddr != "" {
			fmt.Printf("pprof listening on http://%s/debug/pprof/\n", resolved)
		}
	}
	opts := rock.DefaultOptions()
	opts.Workers = *workers
	opts.Parallel = *parallel
	opts.Predication = *predication
	opts.Steal = *steal
	opts.Obs = reg
	opts.Deadline = *timeout
	opts.MaxRetries = *retries
	if *memBudget != "" {
		b, err := parseBytes(*memBudget)
		if err != nil {
			return err
		}
		opts.MemBudget = b
		opts.SpillDir = *spillDir
	}
	p := rock.NewPipelineWith(db, opts)
	p.RegisterMatcher("M_ER", 0.82)
	p.RegisterMatcher("M_addr", 0.82)
	p.RegisterMatcher("M_SKU", 0.82)
	p.TrainCorrelationModels()
	text, err := os.ReadFile(*rulesFile)
	if err != nil {
		return err
	}
	rules, err := p.ParseRules(string(text))
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d relations (%d tuples), %d rules\n", len(db.Relations), db.TupleCount(), len(rules))

	if *distributed > 0 && correct {
		coord := remote.NewCoordinator(remote.CoordOptions{
			Addr:        *workersAddr,
			Workers:     *distributed,
			Fingerprint: p.Fingerprint(),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "rock: "+format+"\n", args...)
			},
		})
		addr, err := coord.Start()
		if err != nil {
			return err
		}
		defer coord.Close()
		// Print the bound address before blocking on worker connections so
		// launcher scripts can scrape it and start the workers.
		fmt.Printf("coordinator listening on %s; waiting for %d worker(s)\n", addr, *distributed)
		if err := coord.WaitWorkers(context.Background()); err != nil {
			return err
		}
		p.SetCluster(coord)
	}

	if !correct {
		errs, err := p.Detect()
		if err != nil {
			return err
		}
		fmt.Printf("detected %d errors\n", len(errs))
		for i, e := range errs {
			if i >= 20 {
				fmt.Printf("  ... and %d more\n", len(errs)-20)
				break
			}
			if e.DupEIDs[0] != "" {
				fmt.Printf("  [%s/%s] duplicate entities %s and %s\n", e.RuleID, e.Task, e.DupEIDs[0], e.DupEIDs[1])
			} else {
				fmt.Printf("  [%s/%s] %v\n", e.RuleID, e.Task, e.Cells)
			}
		}
		if err := writeMetrics(reg.Snapshot(), *metricsOut); err != nil {
			return err
		}
		return writeTraceFile(reg, *traceOut)
	}
	rep, err := p.Clean()
	if err != nil {
		return err
	}
	if *verbose {
		printTrace(rep.RoundTrace)
		printProfile(rep.RuleProfile, rep.MLProfile)
	}
	if rep.Partial {
		fmt.Printf("PARTIAL RUN: deadline/cancellation or unit failures cut the run short; results below are sound but incomplete\n")
		for _, ue := range rep.UnitErrors {
			fmt.Fprintf(os.Stderr, "  failed unit: %s\n", ue.Error())
		}
	}
	fmt.Printf("detected %d errors; applied %d corrections in %d chase rounds\n",
		len(rep.Errors), len(rep.Corrections), rep.ChaseRounds)
	fmt.Printf("merged %d entity groups; %d temporal pairs deduced; %d conflicts unresolved (user)\n",
		len(rep.MergedEntities), rep.OrderedPairs, rep.UnresolvedConflicts)
	fmt.Printf("quality: completeness=%.3f consistency=%.3f\n",
		rep.Assessment.Completeness, rep.Assessment.Consistency)
	if ps := rep.Predication; ps.Lookups() > 0 {
		fmt.Printf("ml predication: %.1f%% hit rate (%d hits / %d lookups), %d warmed, %d evictions; embeddings: %d reused / %d computed, %d tuple invalidations\n",
			100*ps.HitRate(), ps.Hits, ps.Lookups(), ps.Warmed, ps.Evictions,
			ps.EmbedHits, ps.EmbedMisses, ps.Invalidations)
		if br := rep.PredicationByRound; len(br) > 1 {
			first, last := br[0], br[len(br)-1]
			if n := last.Lookups() - first.Lookups(); n > 0 {
				fmt.Printf("ml predication (chase rounds only): %.1f%% hit rate (%d hits / %d lookups)\n",
					100*float64(last.Hits-first.Hits)/float64(n), last.Hits-first.Hits, n)
			}
		}
	}
	// Write corrected relations back.
	for _, name := range db.Names() {
		f, err := os.Create(filepath.Join(*in, name+".csv"))
		if err != nil {
			return err
		}
		if err := data.WriteCSV(f, db.Rel(name)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("corrected relations written back to %s\n", *in)
	if err := writeMetrics(rep.Metrics, *metricsOut); err != nil {
		return err
	}
	return writeTraceFile(reg, *traceOut)
}

// serveDebug binds addr and starts a dedicated HTTP server carrying the
// telemetry endpoints of reg and, when withPprof is set, the net/http/pprof
// handlers. Binding eagerly (rather than inside the serve goroutine) makes
// bind failures fail the command and resolves ":0" to a printable ephemeral
// address. The returned shutdown func drains the server gracefully.
func serveDebug(addr string, reg *obs.Registry, withPprof bool) (resolved string, shutdown func(), err error) {
	mux := http.NewServeMux()
	reg.AttachHandlers(mux)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rock: telemetry:", err)
		}
	}()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}

// writeTraceFile dumps the registry's span ring as Chrome trace-event JSON;
// a no-op when path is empty.
func writeTraceFile(reg *obs.Registry, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, reg.Spans()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (load in Perfetto or chrome://tracing)\n", path)
	return nil
}

// printProfile renders the per-rule and per-ML-model cost attribution
// tables (rock clean -v).
func printProfile(rules []rock.RuleCost, models []rock.MLCost) {
	if len(rules) > 0 {
		fmt.Println("per-rule cost attribution:")
		fmt.Printf("  %-12s %6s %12s %10s %8s %8s %8s\n",
			"rule", "units", "wall", "valuations", "ml_calls", "applied", "rejected")
		for _, rc := range rules {
			fmt.Printf("  %-12s %6d %12s %10d %8d %8d %8d\n",
				rc.Rule, rc.Units, rc.Wall.Round(time.Microsecond), rc.Valuations, rc.MLCalls, rc.Applied, rc.Rejected)
		}
	}
	if len(models) > 0 {
		fmt.Println("per-ML-model cost attribution:")
		fmt.Printf("  %-12s %8s %12s %10s %10s\n", "model", "calls", "wall", "cache_hit", "cache_miss")
		for _, mc := range models {
			fmt.Printf("  %-12s %8d %12s %10d %10d\n",
				mc.Model, mc.Calls, mc.Wall.Round(time.Microsecond), mc.CacheHits, mc.CacheMisses)
		}
	}
}

// writeMetrics dumps an observability snapshot as indented JSON; a no-op
// when path is empty.
func writeMetrics(snap obs.Snapshot, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics written to %s\n", path)
	return nil
}

// printTrace renders the chase's per-round trace table (rock clean -v).
func printTrace(trace []rock.ChaseRoundTrace) {
	if len(trace) == 0 {
		return
	}
	fmt.Println("chase rounds:")
	fmt.Printf("  %5s %6s %6s %10s %8s %8s %8s %7s %12s  %s\n",
		"round", "rules", "units", "valuations", "ml_calls", "applied", "rejected", "steals", "duration", "node units")
	for _, r := range trace {
		nodes := make([]string, 0, len(r.NodeUnits))
		for n := range r.NodeUnits {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		var nu strings.Builder
		for i, n := range nodes {
			if i > 0 {
				nu.WriteString(" ")
			}
			fmt.Fprintf(&nu, "%s:%d", n, r.NodeUnits[n])
		}
		fmt.Printf("  %5d %6d %6d %10d %8d %8d %8d %7d %12s  %s\n",
			r.Round, r.Rules, r.Units, r.Valuations, r.MLCalls, r.Applied, r.Rejected, r.Steals,
			r.Duration.Round(time.Microsecond), nu.String())
	}
}

func cmdDemo() error {
	ds := workload.Ecommerce()
	fmt.Println("Rock demo: the paper's e-commerce example (Tables 1-3)")
	fmt.Printf("  %d relations, %d tuples, %d labelled errors, %d rules\n",
		len(ds.DB.Relations), ds.DB.TupleCount(), ds.Gold.Total(), len(ds.Rules))
	env := ds.BuildEnv()
	_ = env
	p := rock.NewPipeline(ds.DB)
	p.RegisterMatcher("M_ER", 0.82)
	p.TrainCorrelationModels()
	p.RegisterGraph(ds.Graph, 0.6)
	p.DeclareEntityRef("Trans", "pid") // pid references Person entities (ϕ1)
	// Master data: Huawei manufactures the Mate X2 (Γ of §4.1).
	if err := p.Validate("Trans", "t14", "mfg", rock.S("Huawei")); err != nil {
		return err
	}
	for _, r := range ds.Rules {
		if _, err := p.AddRule(r.String()); err != nil {
			return fmt.Errorf("rule %s: %w", r.ID, err)
		}
	}
	rep, err := p.Clean()
	if err != nil {
		return err
	}
	fmt.Printf("  detected %d errors, applied %d corrections:\n", len(rep.Errors), len(rep.Corrections))
	for _, c := range rep.Corrections {
		fmt.Printf("    %s: %v -> %v\n", c.Cell, c.Old, c.New)
	}
	for _, g := range rep.MergedEntities {
		fmt.Printf("    identified entities: %v\n", g)
	}
	return nil
}

// parseBytes parses a human byte size: a plain integer (bytes) or an
// integer with a KB/MB/GB (decimal) or KiB/MiB/GiB (binary) suffix.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	switch {
	case strings.HasSuffix(upper, "KIB"):
		mult, t = 1<<10, t[:len(t)-3]
	case strings.HasSuffix(upper, "MIB"):
		mult, t = 1<<20, t[:len(t)-3]
	case strings.HasSuffix(upper, "GIB"):
		mult, t = 1<<30, t[:len(t)-3]
	case strings.HasSuffix(upper, "KB"):
		mult, t = 1_000, t[:len(t)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, t = 1_000_000, t[:len(t)-2]
	case strings.HasSuffix(upper, "GB"):
		mult, t = 1_000_000_000, t[:len(t)-2]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}
