package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenCleanRoundTrip drives the CLI flow end to end: generate a Bank
// dataset to CSV, load it back, clean it in place, and verify the written
// files changed and still parse.
func TestGenCleanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := cmdGen([]string{"-app", "bank", "-n", "150", "-seed", "3", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Customer.csv", "Company.csv", "Payment.csv", "rules.ree"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	before, err := os.ReadFile(filepath.Join(dir, "Payment.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Detect only: must not modify files.
	if err := cmdClean([]string{"-in", dir}, false); err != nil {
		t.Fatal(err)
	}
	mid, _ := os.ReadFile(filepath.Join(dir, "Payment.csv"))
	if string(mid) != string(before) {
		t.Fatal("detect must not modify the dataset")
	}

	// Clean: corrects in place.
	if err := cmdClean([]string{"-in", dir}, true); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, "Payment.csv"))
	if string(after) == string(before) {
		t.Fatal("clean must write corrections back")
	}
	// The corrected files still load.
	db, err := loadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.TupleCount() == 0 {
		t.Fatal("reloaded database empty")
	}
	// Fewer nulls after cleaning (imputation ran).
	countNulls := func(b []byte) int { return strings.Count(string(b), ",null") }
	if countNulls(after) >= countNulls(before) {
		t.Errorf("imputation should reduce nulls: %d -> %d", countNulls(before), countNulls(after))
	}
}

func TestGenUnknownApp(t *testing.T) {
	if err := cmdGen([]string{"-app", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("unknown application must fail")
	}
}

func TestLoadDBErrors(t *testing.T) {
	if _, err := loadDB(t.TempDir()); err == nil {
		t.Error("empty dir must fail")
	}
	if _, err := loadDB("/nonexistent-rock-dir"); err == nil {
		t.Error("missing dir must fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "Bad.csv"), []byte("not,a,valid\nrock,csv,file\n"), 0o644)
	if _, err := loadDB(dir); err == nil {
		t.Error("malformed csv must fail")
	}
}

func TestDemoRuns(t *testing.T) {
	if err := cmdDemo(); err != nil {
		t.Fatal(err)
	}
}
