package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/rock"
)

// TestGenCleanRoundTrip drives the CLI flow end to end: generate a Bank
// dataset to CSV, load it back, clean it in place, and verify the written
// files changed and still parse.
func TestGenCleanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := cmdGen([]string{"-app", "bank", "-n", "150", "-seed", "3", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"Customer.csv", "Company.csv", "Payment.csv", "rules.ree"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	before, err := os.ReadFile(filepath.Join(dir, "Payment.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Detect only: must not modify files.
	if err := cmdClean([]string{"-in", dir}, false); err != nil {
		t.Fatal(err)
	}
	mid, _ := os.ReadFile(filepath.Join(dir, "Payment.csv"))
	if string(mid) != string(before) {
		t.Fatal("detect must not modify the dataset")
	}

	// Clean: corrects in place.
	if err := cmdClean([]string{"-in", dir}, true); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, "Payment.csv"))
	if string(after) == string(before) {
		t.Fatal("clean must write corrections back")
	}
	// The corrected files still load.
	db, err := loadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.TupleCount() == 0 {
		t.Fatal("reloaded database empty")
	}
	// Fewer nulls after cleaning (imputation ran).
	countNulls := func(b []byte) int { return strings.Count(string(b), ",null") }
	if countNulls(after) >= countNulls(before) {
		t.Errorf("imputation should reduce nulls: %d -> %d", countNulls(before), countNulls(after))
	}
}

// TestCleanMetricsOut checks the acceptance contract of -metrics-out: the
// exported JSON snapshot must agree exactly with the library Report for
// the same run — round count, fix counts, ML calls, and per-node unit
// counts. Serial mode (-parallel=false) makes every counter deterministic,
// so a reference run through the rock API pins the expected values.
func TestCleanMetricsOut(t *testing.T) {
	dir := t.TempDir()
	if err := cmdGen([]string{"-app", "bank", "-n", "120", "-seed", "5", "-out", dir}); err != nil {
		t.Fatal(err)
	}

	// Reference run through the library API on the same dataset.
	db, err := loadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := rock.DefaultOptions()
	opts.Workers = 4
	opts.Parallel = false
	opts.Predication = true
	opts.Obs = obs.New()
	p := rock.NewPipelineWith(db, opts)
	p.RegisterMatcher("M_ER", 0.82)
	p.RegisterMatcher("M_addr", 0.82)
	p.RegisterMatcher("M_SKU", 0.82)
	p.TrainCorrelationModels()
	text, err := os.ReadFile(filepath.Join(dir, "rules.ree"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ParseRules(string(text)); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}

	metrics := filepath.Join(dir, "metrics.json")
	if err := cmdClean([]string{"-in", dir, "-parallel=false", "-metrics-out", metrics}, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}

	if got, want := snap.Counters["chase.rounds"], uint64(rep.ChaseRounds); got != want {
		t.Errorf("chase.rounds = %d, want %d (Report.ChaseRounds)", got, want)
	}
	if got, want := int(snap.Counters["chase.rounds"]), len(rep.RoundTrace); got != want {
		t.Errorf("chase.rounds = %d, want %d trace rows", got, want)
	}
	// Per-round trace sums pin the run-total counters.
	var units, vals, mls, applied, rejected uint64
	perNode := map[string]uint64{}
	for _, r := range rep.RoundTrace {
		units += uint64(r.Units)
		vals += uint64(r.Valuations)
		mls += uint64(r.MLCalls)
		applied += uint64(r.Applied)
		rejected += uint64(r.Rejected)
		for n, c := range r.NodeUnits {
			perNode[n] += uint64(c)
		}
	}
	for name, want := range map[string]uint64{
		"chase.units":          units,
		"chase.valuations":     vals,
		"chase.ml_calls":       mls,
		"chase.fixes.applied":  applied,
		"chase.fixes.rejected": rejected,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (Report trace total)", name, got, want)
		}
	}
	for n, want := range perNode {
		if got := snap.Counters["chase.node."+n+".units"]; got != want {
			t.Errorf("chase.node.%s.units = %d, want %d", n, got, want)
		}
	}
	// Serial mode never steals.
	if got := snap.Counters["chase.steals"]; got != 0 {
		t.Errorf("chase.steals = %d, want 0 in serial mode", got)
	}
	// The reference Report's own Metrics were recorded the same way; the
	// deterministic chase counters must be identical across the two runs.
	// (detect.* node/steal counters vary run to run: the detect pool
	// steals regardless of -parallel, so work distribution is scheduling-
	// dependent there.)
	for name, want := range rep.Metrics.Counters {
		if !strings.HasPrefix(name, "chase.") || strings.HasSuffix(name, "_ns") {
			continue // wall-clock counters legitimately differ
		}
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d (API reference run)", name, got, want)
		}
	}
}

func TestGenUnknownApp(t *testing.T) {
	if err := cmdGen([]string{"-app", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("unknown application must fail")
	}
}

func TestLoadDBErrors(t *testing.T) {
	if _, err := loadDB(t.TempDir()); err == nil {
		t.Error("empty dir must fail")
	}
	if _, err := loadDB("/nonexistent-rock-dir"); err == nil {
		t.Error("missing dir must fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "Bad.csv"), []byte("not,a,valid\nrock,csv,file\n"), 0o644)
	if _, err := loadDB(dir); err == nil {
		t.Error("malformed csv must fail")
	}
}

func TestDemoRuns(t *testing.T) {
	if err := cmdDemo(); err != nil {
		t.Fatal(err)
	}
}
