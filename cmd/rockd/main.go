// Command rockd serves Rock as a long-running, multi-tenant
// cleaning-as-a-service daemon — the repo's substitute for the paper's
// Kubernetes deployment consuming continuous update streams (§3, §6).
// Each tenant holds a warm pipeline (rules, trained models, the §5.4
// predication layer, accumulated truth); ingests coalesce into
// incremental cleans; reads carry the read-your-fixes session token.
//
//	rockd                                    # ecommerce tenants on :8080
//	rockd -addr :0 -tenants acme,globex      # ephemeral port, two warm tenants
//	rockd -workload bank -n 2000 -workers 8  # generated Bank tenants
//
// Endpoints (per tenant):
//
//	POST /v1/{tenant}/ingest     {"rel":..,"tuples":[{"eid":..,"values":[..]}]}
//	GET  /v1/{tenant}/fixes      ?token=&since=&timeout_ms=
//	GET  /v1/{tenant}/query      ?rel=&tid=&token=
//	POST /v1/{tenant}/clean      full batch clean
//	GET  /v1/{tenant}/metrics    Prometheus exposition
//	GET  /v1/{tenant}/telemetry/ spans, events, snapshot, trace
//	GET  /healthz
//
// SIGTERM/SIGINT drains: new ingests get 503, queued batches flush,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/rockclean/rock/internal/serve"
	"github.com/rockclean/rock/internal/workload"
	"github.com/rockclean/rock/rock"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		app       = flag.String("workload", "ecommerce", "tenant workload: ecommerce, bank, logistics, sales")
		n         = flag.Int("n", 400, "base tuples per generated tenant dataset")
		seed      = flag.Int64("seed", 2024, "generator seed")
		workers   = flag.Int("workers", 4, "chase/detect worker pool size per tenant")
		window    = flag.Duration("window", 20*time.Millisecond, "ingest coalescing window")
		maxBatch  = flag.Int("max-batch", 64, "flush a batch early at this many queued tuples")
		queue     = flag.Int("queue", 1024, "per-tenant queued-tuple bound (429 beyond)")
		maxTuples = flag.Int("max-tuples", 0, "per-tenant tuple quota (413 beyond; 0 = unlimited)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-batch clean timeout")
		spanCap   = flag.Int("span-cap", 4096, "retained trace spans per tenant")
		tenants   = flag.String("tenants", "", "comma-separated tenants to warm at startup")
		drainFor  = flag.Duration("drain", 60*time.Second, "max time to drain on shutdown")
	)
	flag.Parse()

	opts := rock.DefaultOptions()
	opts.Workers = *workers
	cfg := serve.Config{
		BatchWindow:  *window,
		MaxBatch:     *maxBatch,
		QueueLimit:   *queue,
		MaxTuples:    *maxTuples,
		CleanTimeout: *timeout,
		SpanCap:      *spanCap,
	}
	s := serve.New(cfg, serve.WorkloadFactory(*app, workload.Config{N: *n, Seed: *seed}, opts))

	// Warm the preload tenants before accepting traffic: rule parsing
	// and model training happen now, not on the first request.
	for _, name := range strings.Split(*tenants, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		start := time.Now()
		if _, err := s.Tenant(name); err != nil {
			log.Fatalf("rockd: warm tenant %s: %v", name, err)
		}
		log.Printf("rockd: tenant %s warm (%s workload) in %v", name, *app, time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("rockd: listen %s: %v", *addr, err)
	}
	// The CI smoke test scrapes this line for the ephemeral port.
	fmt.Printf("rockd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("rockd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("rockd: draining (up to %v)", *drainFor)
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		log.Fatalf("rockd: drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rockd: http shutdown: %v", err)
	}
	log.Printf("rockd: drained, bye")
}
