// Command rockworker is the worker-process side of Rock's distributed
// chase: it rebuilds the coordinator's pipeline from the same dataset
// and rules (the lockstep-replica precondition — see
// internal/chase/distributed.go), connects to the coordinator over
// TCP, and serves chase rounds until the run completes:
//
//	rock clean -in ./bankdata -distributed 3          # prints ADDR, waits
//	rockworker -coord ADDR -in ./bankdata &           # x3, same -workers
//
// The dataset directory, rules file and -workers count MUST be
// identical to the coordinator's; the handshake fingerprint rejects
// mismatches before any round runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rockclean/rock/internal/cluster/remote"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/rock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rockworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rockworker", flag.ExitOnError)
	coord := fs.String("coord", "", "coordinator address (required; printed by rock clean -distributed)")
	in := fs.String("in", "./rockdata", "dataset directory — must be the coordinator's dataset")
	rulesFile := fs.String("rules", "", "rules file (default: <in>/rules.ree) — must be the coordinator's rules")
	workers := fs.Int("workers", 4, "partition count — must match the coordinator's -workers")
	predication := fs.Bool("predication", true, "precompute ML predications (mirror of rock clean -predication)")
	dialTimeout := fs.Duration("dial-timeout", 30*time.Second, "total budget for connecting to the coordinator (dials are retried)")
	verbose := fs.Bool("v", false, "log rounds and unit counts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("-coord is required")
	}
	if *rulesFile == "" {
		*rulesFile = filepath.Join(*in, "rules.ree")
	}
	db, err := loadDB(*in)
	if err != nil {
		return err
	}

	// Mirror cmd/rock cmdClean's pipeline construction exactly: same
	// matcher registrations, same training calls, same rule parse — any
	// divergence would break replica lockstep (and is caught by the
	// fingerprint handshake or the per-round unit-count check).
	opts := rock.DefaultOptions()
	opts.Workers = *workers
	opts.Predication = *predication
	p := rock.NewPipelineWith(db, opts)
	p.RegisterMatcher("M_ER", 0.82)
	p.RegisterMatcher("M_addr", 0.82)
	p.RegisterMatcher("M_SKU", 0.82)
	p.TrainCorrelationModels()
	text, err := os.ReadFile(*rulesFile)
	if err != nil {
		return err
	}
	rules, err := p.ParseRules(string(text))
	if err != nil {
		return err
	}
	fmt.Printf("rockworker: loaded %d relations (%d tuples), %d rules; connecting to %s\n",
		len(db.Relations), db.TupleCount(), len(rules), *coord)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rockworker: "+format+"\n", args...)
		}
	}
	err = remote.RunWorker(ctx, p.FollowerEngine(), remote.WorkerOptions{
		Coord:       *coord,
		Fingerprint: p.Fingerprint(),
		DialTimeout: *dialTimeout,
		Meta:        strconv.Itoa(os.Getpid()),
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	fmt.Println("rockworker: run complete, coordinator closed the session")
	return nil
}

// loadDB mirrors cmd/rock's loader: a directory of <Relation>.csv files.
func loadDB(dir string) (*data.Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := data.NewDatabase()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		rel, err := data.ReadCSV(f, strings.TrimSuffix(e.Name(), ".csv"))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		db.Add(rel)
	}
	if len(db.Relations) == 0 {
		return nil, fmt.Errorf("no .csv relations in %s", dir)
	}
	return db, nil
}
