package rock

import (
	"testing"

	"github.com/rockclean/rock/internal/obs"
)

// mateX2Delta appends one more "Mate X2 (Limited Sold)" transaction
// carrying the wrong manufactory, so phi2 (com → mfg) must correct it
// and phi1's M_ER predicate gets exercised on the incremental path.
func mateX2Delta(t *testing.T, p *Pipeline, eid string) *Delta {
	t.Helper()
	d := p.NewDelta()
	if d.Insert("Trans", eid, S("p3"), S("s3"), S("Mate X2 (Limited Sold)"), S("Apple"), F(5200), TS(1691798400)) == nil {
		t.Fatalf("insert %s failed", eid)
	}
	return d
}

// TestIncrementalPredicationAndSpan pins the drift bug this issue is
// named for: the incremental path used to build chase.Options without
// Predication/Pred/Span, so Report.Predication stayed zero forever and
// no root span was recorded. Now both paths share Pipeline.chaseOptions
// and the pipeline's warm §5.4 layer, so a second delta must see cache
// hits from the first.
func TestIncrementalPredicationAndSpan(t *testing.T) {
	opts := DefaultOptions()
	reg := obs.New()
	reg.EnableSpans(4096)
	opts.Obs = reg
	p := ecommercePipeline(t, opts)
	if _, err := p.Clean(); err != nil {
		t.Fatal(err)
	}

	rep1, err := mateX2Delta(t, p, "t16").CleanIncrementalReport(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Predication.Lookups() == 0 {
		t.Fatal("incremental clean never probed the predication cache; options drift is back")
	}
	rep2, err := mateX2Delta(t, p, "t17").CleanIncrementalReport(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Predication.Lookups() == 0 {
		t.Fatal("second incremental clean never probed the predication cache")
	}
	if rep2.Predication.Hits == 0 {
		t.Fatal("warm pipeline layer served zero hits on the second delta")
	}
	t.Logf("delta1: %d/%d hits/lookups; delta2: %d/%d",
		rep1.Predication.Hits, rep1.Predication.Lookups(),
		rep2.Predication.Hits, rep2.Predication.Lookups())

	var root, child bool
	for _, s := range reg.Spans() {
		if s.Name == "clean.incremental" && s.Parent == 0 {
			root = true
		}
		if s.Name == "chase.incremental" && s.Parent != 0 {
			child = true
		}
	}
	if !root {
		t.Fatal("no clean.incremental root span recorded")
	}
	if !child {
		t.Fatal("no chase.incremental span parented under the root")
	}
}

// TestIncrementalPredicationOffMatchesOn: the §5.4 layer is pure
// memoisation, so incremental corrections must be bit-identical with
// the layer on or off — across multiple deltas against warm pipelines.
func TestIncrementalPredicationOffMatchesOn(t *testing.T) {
	offOpts := DefaultOptions()
	offOpts.Predication = false
	on := ecommercePipeline(t, DefaultOptions())
	off := ecommercePipeline(t, offOpts)
	if _, err := on.Clean(); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Clean(); err != nil {
		t.Fatal(err)
	}
	for round, eid := range []string{"t16", "t17"} {
		a, _, err := mateX2Delta(t, on, eid).CleanIncrementalCtx(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := mateX2Delta(t, off, eid).CleanIncrementalCtx(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("round %d: %d corrections with predication on, %d off", round, len(a), len(b))
		}
		for i := range a {
			if a[i].Cell != b[i].Cell || !a[i].Old.Equal(b[i].Old) || !a[i].New.Equal(b[i].New) || a[i].IsNew != b[i].IsNew {
				t.Fatalf("round %d correction %d differs: on=%+v off=%+v", round, i, a[i], b[i])
			}
		}
	}
}

// TestIncrementalCorrectionsMatchFullScan is the regression test for
// the O(|D|) diff replacement: the touched-cell diff must report
// exactly the cells Materialize rewrites — which is what the old
// whole-database scan returned. A master-data validation between
// cleans (Pipeline.Validate) is included because the run itself never
// touches that cell; the pending-validation window must cover it.
func TestIncrementalCorrectionsMatchFullScan(t *testing.T) {
	p := ecommercePipeline(t, DefaultOptions())
	if _, err := p.Clean(); err != nil {
		t.Fatal(err)
	}
	// Master data arriving between cleans: t11's price is authoritative
	// and differs from the raw 9000.
	if err := p.Validate("Trans", "t11", "price", F(8400)); err != nil {
		t.Fatal(err)
	}

	before := p.DB().Clone()
	out, _, err := mateX2Delta(t, p, "t16").CleanIncrementalCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("expected corrections from the delta")
	}

	// Ground truth: every cell Materialize changed, found the slow way.
	changed := make(map[CellRef][2]Value)
	for relName, rel := range before.Relations {
		after := p.DB().Rel(relName)
		for _, bt := range rel.Tuples {
			at := after.Get(bt.TID)
			for i, a := range rel.Schema.Attrs {
				if !bt.Values[i].Equal(at.Values[i]) {
					changed[CellRef{Rel: relName, TID: bt.TID, Attr: a.Name}] = [2]Value{bt.Values[i], at.Values[i]}
				}
			}
		}
	}
	seen := make(map[CellRef]bool)
	for _, c := range out {
		if seen[c.Cell] {
			t.Fatalf("duplicate correction for %s", c.Cell.String())
		}
		seen[c.Cell] = true
		if before.Rel(c.Cell.Rel).Get(c.Cell.TID) == nil {
			// A tuple inserted by this delta: verify against current DB only.
			cur, ok := p.DB().Rel(c.Cell.Rel).Value(c.Cell.TID, c.Cell.Attr)
			if !ok || !cur.Equal(c.New) {
				t.Fatalf("correction %s not materialised on new tuple", c.Cell.String())
			}
			continue
		}
		want, ok := changed[c.Cell]
		if !ok {
			t.Fatalf("correction %s reported but cell did not change", c.Cell.String())
		}
		if !c.Old.Equal(want[0]) || !c.New.Equal(want[1]) {
			t.Fatalf("correction %s values drifted: got %s→%s want %s→%s",
				c.Cell.String(), c.Old.String(), c.New.String(), want[0].String(), want[1].String())
		}
		delete(changed, c.Cell)
	}
	for ref := range changed {
		t.Fatalf("cell %s changed on disk but was not reported as a correction", ref.String())
	}

	// The validated master-data cell must be among the corrections even
	// though the delta never touched t11.
	found := false
	for _, c := range out {
		if c.Cell.Attr == "price" && c.New.Equal(F(8400)) {
			found = true
		}
	}
	if !found {
		t.Fatal("pending Validate() cell missing from incremental corrections")
	}
}
