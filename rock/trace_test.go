package rock

import (
	"testing"
	"time"

	"github.com/rockclean/rock/internal/obs"
)

// cleanWith runs the ecommerce pipeline once with tracing on or off and
// returns the report plus the registry it ran against.
func cleanWith(t *testing.T, traced bool, workers int) (*Report, *obs.Registry) {
	t.Helper()
	opts := DefaultOptions()
	if workers > 0 {
		opts.Workers = workers
	}
	reg := obs.New()
	if traced {
		reg.EnableSpans(0)
	}
	opts.Obs = reg
	rep, err := ecommercePipeline(t, opts).Clean()
	if err != nil {
		t.Fatal(err)
	}
	return rep, reg
}

// TestTracedMatchesUntraced is the determinism matrix: span tracing only
// observes, so the traced run's fix set must be bit-identical to the
// untraced run's, serial and parallel alike.
func TestTracedMatchesUntraced(t *testing.T) {
	for _, workers := range []int{1, 4} {
		traced, _ := cleanWith(t, true, workers)
		untraced, _ := cleanWith(t, false, workers)
		if len(traced.Corrections) != len(untraced.Corrections) {
			t.Fatalf("workers=%d: corrections differ: traced=%d untraced=%d",
				workers, len(traced.Corrections), len(untraced.Corrections))
		}
		for i := range traced.Corrections {
			a, b := traced.Corrections[i], untraced.Corrections[i]
			if a.Cell != b.Cell || !a.New.Equal(b.New) || !a.Old.Equal(b.Old) {
				t.Errorf("workers=%d: correction %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
		if len(traced.MergedEntities) != len(untraced.MergedEntities) {
			t.Errorf("workers=%d: merges differ: traced=%d untraced=%d",
				workers, len(traced.MergedEntities), len(untraced.MergedEntities))
		}
		for i := range traced.MergedEntities {
			a, b := traced.MergedEntities[i], untraced.MergedEntities[i]
			if len(a) != len(b) {
				t.Errorf("workers=%d: merge group %d differs: %v vs %v", workers, i, a, b)
				continue
			}
			for j := range a {
				if a[j] != b[j] {
					t.Errorf("workers=%d: merge group %d differs: %v vs %v", workers, i, a, b)
					break
				}
			}
		}
		if traced.ChaseRounds != untraced.ChaseRounds {
			t.Errorf("workers=%d: rounds differ: traced=%d untraced=%d",
				workers, traced.ChaseRounds, untraced.ChaseRounds)
		}
		if len(untraced.Metrics.Spans) != 0 {
			t.Errorf("workers=%d: untraced run retained %d spans", workers, len(untraced.Metrics.Spans))
		}
	}
}

// TestSpanTreeDepthAndAttribution pins the tentpole's structural
// acceptance criteria on one traced run: the span tree is acyclic and at
// least four levels deep (clean → phase → round → unit → exec → ml), and
// the per-rule attribution rows sum exactly to the phase totals the same
// registry counted.
func TestSpanTreeDepthAndAttribution(t *testing.T) {
	rep, _ := cleanWith(t, true, 4)
	spans := rep.Metrics.Spans
	if len(spans) == 0 {
		t.Fatal("traced run retained no spans")
	}
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	names := make(map[string]bool)
	for _, sp := range spans {
		byID[sp.ID] = sp
		names[sp.Name] = true
		if sp.Parent >= sp.ID {
			t.Fatalf("span %d (%s) has parent %d >= its own ID", sp.ID, sp.Name, sp.Parent)
		}
	}
	maxDepth := 0
	for _, sp := range spans {
		d := 1
		for sp.Parent != 0 {
			p, ok := byID[sp.Parent]
			if !ok {
				break // parent evicted by the ring; depth is a lower bound
			}
			sp, d = p, d+1
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 4 {
		t.Errorf("span tree only %d levels deep, want >= 4; names seen: %v", maxDepth, names)
	}
	for _, want := range []string{"clean", "chase", "round", "unit", "exec"} {
		if !names[want] {
			t.Errorf("span tree missing a %q level; names seen: %v", want, names)
		}
	}

	if len(rep.RuleProfile) == 0 {
		t.Fatal("traced run produced no per-rule attribution rows")
	}
	var units, vals, mls, applied int
	var wall time.Duration
	for _, rc := range rep.RuleProfile {
		units += rc.Units
		vals += rc.Valuations
		mls += rc.MLCalls
		applied += rc.Applied
		wall += rc.Wall
	}
	c := rep.Metrics.Counters
	if got, want := uint64(units), c["chase.units"]; got != want {
		t.Errorf("per-rule units sum to %d, chase.units counter is %d", got, want)
	}
	if got, want := uint64(vals), c["chase.valuations"]; got != want {
		t.Errorf("per-rule valuations sum to %d, chase.valuations counter is %d", got, want)
	}
	if got, want := uint64(mls), c["chase.ml_calls"]; got != want {
		t.Errorf("per-rule ml_calls sum to %d, chase.ml_calls counter is %d", got, want)
	}
	if units > 0 && wall == 0 {
		t.Error("per-rule wall clock never accumulated")
	}
	t.Logf("span tree: %d spans, depth %d; attribution: %d rules, %d units, %d valuations, %d ml_calls, %d applied",
		len(spans), maxDepth, len(rep.RuleProfile), units, vals, mls, applied)
}

// TestTraceOverhead bounds the cost of tracing: interleaved traced and
// untraced cleans at 8 workers, min-of-N each. The design target is <= 5%
// wall-clock overhead (logged); the assertion is deliberately generous so
// noisy CI machines don't flake on it.
func TestTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark; skipped with -short")
	}
	const runs = 3
	minTraced, minUntraced := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < runs; i++ {
		start := time.Now()
		cleanWith(t, false, 8)
		if d := time.Since(start); d < minUntraced {
			minUntraced = d
		}
		start = time.Now()
		cleanWith(t, true, 8)
		if d := time.Since(start); d < minTraced {
			minTraced = d
		}
	}
	ratio := float64(minTraced) / float64(minUntraced)
	t.Logf("ecommerce@8: untraced %v, traced %v, overhead %.1f%% (design target <= 5%%)",
		minUntraced, minTraced, 100*(ratio-1))
	// Generous CI-stable bound; the 5% target is what -bench runs verify
	// on quiet machines.
	if ratio > 1.5 {
		t.Errorf("tracing overhead %.2fx exceeds the 1.5x red line", ratio)
	}
}
