// Package rock is the public API of the Rock data-cleaning system — a Go
// reproduction of "Rock: Cleaning Data by Embedding ML in Logic Rules"
// (SIGMOD-Companion 2024). Rock cleans relational data with REE++ rules —
// logic rules that may embed ML classifiers as predicates — in a unified
// process covering entity resolution (ER), conflict resolution (CR),
// missing-value imputation (MI) and timeliness deduction (TD):
//
//	pipe := rock.NewPipeline(db)
//	pipe.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
//	report, err := pipe.Clean()
//
// The pipeline wires together the rule parser, the (optional) rule
// discovery module, the blocked parallel error detector, and the chase
// engine that deduces certain fixes from rules plus accumulated ground
// truth. See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package rock

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/detect"
	"github.com/rockclean/rock/internal/discovery"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

// Re-exported building blocks so applications only import this package
// for common flows.
type (
	// Database is a named collection of relations.
	Database = data.Database
	// Relation is one table instance.
	Relation = data.Relation
	// Schema is a relation schema.
	Schema = data.Schema
	// Attribute is a named, typed column.
	Attribute = data.Attribute
	// Value is a typed attribute value (use S/I/F/B/TS to construct).
	Value = data.Value
	// Tuple is one row.
	Tuple = data.Tuple
	// Rule is an REE++.
	Rule = ree.Rule
	// Graph is a knowledge graph for extraction-based imputation.
	Graph = kg.Graph
	// CellRef identifies a tuple's attribute cell.
	CellRef = data.CellRef
)

// Value constructors and schema helpers, re-exported.
var (
	S         = data.S
	I         = data.I
	F         = data.F
	B         = data.B
	TS        = data.TS
	Null      = data.Null
	NewSchema = data.NewSchema
	NewRel    = data.NewRelation
	NewDB     = data.NewDatabase
	NewGraph  = kg.New
)

// MustSchema is NewSchema that panics on error; for schema literals in
// examples and tests.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := data.NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// MustEdge is Graph.AddEdge that panics on error; for graph literals in
// examples and tests.
func MustEdge(g *Graph, from kg.VertexID, label string, to kg.VertexID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}

// Attribute types.
const (
	TString = data.TString
	TInt    = data.TInt
	TFloat  = data.TFloat
	TBool   = data.TBool
	TTime   = data.TTime
)

// Options tunes a pipeline.
type Options struct {
	// Workers sets the cluster size: the HyperCube block count for
	// detection and the chase, and — with Parallel — the number of real
	// worker goroutines executing work units.
	Workers int
	// Parallel runs chase work units on a real goroutine worker pool of
	// size Workers (results are bit-identical to serial execution; see
	// internal/chase). When false, chase units run serially and
	// parallelism is only simulated for the makespan metric. Detection
	// always executes its units on the worker pool.
	Parallel bool
	// UseBlocking enables LSH blocking for ML predicates.
	UseBlocking bool
	// Predication enables the precomputed ML predication layer (paper
	// §5.4): versioned per-tuple embedding store, sharded prediction
	// cache, and round-level batch scoring across the worker pool.
	// Results are bit-identical with the layer on or off;
	// Report.Predication carries the cache counters.
	Predication bool
	// Lazy enables lazy rule activation in the chase.
	Lazy bool
	// Steal enables work stealing between workers in both the detection
	// and chase phases (and in the simulated-makespan model). On in Rock
	// proper; the work-stealing ablation turns it off. Results are
	// identical either way — stealing only re-assigns work units.
	Steal bool
	// MaxRounds bounds the chase fixpoint loop.
	MaxRounds int
	// Oracle, when set, answers ER/CR conflicts the learned resolvers
	// cannot decide — Rock presents such conflicts to the user.
	Oracle func(rel, eid, attr string, candidates []Value) (Value, bool)
	// Obs, when set, receives every metric and trace event of the run
	// (detection "detect.*", chase "chase.*", predication "pred.*",
	// executor "exec.*"). Nil makes Clean create a run-private registry;
	// either way Report.Metrics carries the final snapshot.
	Obs *obs.Registry
	// Deadline bounds a Clean/CleanIncremental run (0 = none): when it
	// expires, the run degrades gracefully — the certain fixes
	// accumulated so far are kept and the report comes back with
	// Partial=true instead of an error. Equivalent to passing CleanCtx a
	// context.WithTimeout.
	Deadline time.Duration
	// MemBudget caps the resident bytes of the chase executor's interned
	// columns; above it, newly built columns spill to flat on-disk blocks
	// (mmap-backed) so 10⁷–10⁸ tuple runs stay within memory. 0 disables
	// spilling.
	MemBudget int64
	// SpillDir receives spill block files (empty: the system temp
	// directory).
	SpillDir string
	// MaxRetries bounds how many times a panicking work unit is retried
	// (reassigned to a different worker when one is alive) before the
	// unit is given up and surfaced on Report.UnitErrors.
	MaxRetries int
	// RetryBackoff is the base backoff before a unit retry (attempt k
	// sleeps k*RetryBackoff).
	RetryBackoff time.Duration
	// Cluster, when set, replaces the in-process worker pool with an
	// external drain/submit implementation — in particular a
	// cluster/remote.Coordinator, which distributes chase rounds across
	// real worker processes (see README "Distributed mode"). Distributed
	// runs support batch Clean only and require a nil Oracle.
	Cluster cluster.Runner
}

// DefaultOptions returns Rock's shipped configuration.
func DefaultOptions() Options {
	return Options{
		Workers: 4, Parallel: true, UseBlocking: true, Predication: true, Lazy: true, Steal: true,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	}
}

// Pipeline is the end-to-end cleaning flow over one database: register
// models and rules (or discover them), detect errors, correct them.
type Pipeline struct {
	db      *data.Database
	env     *predicate.Env
	rules   []*ree.Rule
	gamma   *truth.FixSet
	opts    Options
	eidRefs map[string]bool
	qmon    *quality.Monitor

	// pred is the pipeline's warm §5.4 predication layer, created lazily
	// when Options.Predication is on and shared across every Clean and
	// CleanIncremental of the pipeline — so a long-lived pipeline (rockd's
	// per-tenant state) serves later runs from caches earlier runs filled.
	// Both caches memoise pure computations (the embedding store is
	// invalidated per tuple as raw data or fixes change), so results stay
	// bit-identical to a cold layer.
	pred *ml.Predication

	ruleSeq int
}

// NewPipeline creates a pipeline over a database with default options.
func NewPipeline(db *data.Database) *Pipeline {
	return NewPipelineWith(db, DefaultOptions())
}

// NewPipelineWith creates a pipeline with explicit options.
func NewPipelineWith(db *data.Database, opts Options) *Pipeline {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	gamma := truth.NewFixSet()
	// Track cells validated between cleans (Pipeline.Validate) so the
	// incremental corrections diff covers master data added mid-stream.
	gamma.StartTouchTracking()
	return &Pipeline{
		db:      db,
		env:     predicate.NewEnv(db),
		gamma:   gamma,
		opts:    opts,
		eidRefs: make(map[string]bool),
	}
}

// predication returns the pipeline's warm predication layer, creating it
// on first use; nil when Options.Predication is off.
func (p *Pipeline) predication() *ml.Predication {
	if !p.opts.Predication {
		return nil
	}
	if p.pred == nil {
		p.pred = ml.NewPredication()
	}
	return p.pred
}

// DB returns the pipeline's database.
func (p *Pipeline) DB() *data.Database { return p.db }

// RegisterMatcher registers a similarity-based Boolean ML model usable as
// a predicate M(t[A̅], s[B̅]) in rules (a Bert-style matcher stand-in;
// DESIGN.md documents the substitution).
func (p *Pipeline) RegisterMatcher(name string, threshold float64) {
	p.env.Models.Register(ml.NewCachedModel(ml.NewSimilarityMatcher(name, threshold)))
}

// RegisterGraph registers a knowledge graph and enables the extraction
// predicates vertex/HER/match/val against it.
func (p *Pipeline) RegisterGraph(g *kg.Graph, herThreshold float64) {
	p.env.Graphs[g.Name] = g
	p.env.PathM = ml.NewPathMatcher(g, 0.3)
	for name, rel := range p.db.Relations {
		p.env.HER[name] = ml.NewHERMatcher("HER", g, rel.Schema, herThreshold)
	}
}

// TrainCorrelationModels fits the Mc correlation model and Md value
// predictor for every relation (named "M_c_<Rel>" and "M_d_<Rel>"),
// enabling correlation predicates and learning-based conflict resolution.
func (p *Pipeline) TrainCorrelationModels() {
	for name, rel := range p.db.Relations {
		mc := ml.NewCorrelationModel("M_c_"+name, rel.Schema)
		mc.Train(rel.Tuples)
		p.env.Corr[mc.Name()] = mc
		p.env.Pred["M_d_"+name] = ml.NewValuePredictor("M_d_"+name, mc, rel.Tuples)
	}
}

// TrainRanker trains the Mrank temporal ranking model for one relation
// with the creator–critic loop, seeded from the given currency-ordered
// tuple pairs (older before newer on attr).
func (p *Pipeline) TrainRanker(rel string, attr string, orderedPairs [][2]*Tuple) error {
	r := p.db.Rel(rel)
	if r == nil {
		return fmt.Errorf("rock: unknown relation %q", rel)
	}
	ranker := ml.NewPairRanker("M_rank", r.Schema)
	seed := make([]ml.RankedPair, 0, len(orderedPairs))
	for _, pr := range orderedPairs {
		seed = append(seed, ml.RankedPair{Older: pr[0], Newer: pr[1], Attr: attr, Leq: true})
	}
	ml.TrainRanker(ranker, rel, r.Tuples, []string{attr}, seed, nil, 2)
	p.env.Ranker = ranker
	return nil
}

// SeedOrder seeds the temporal order of rel.attr in the environment used
// by temporal predicates during detection (the chase maintains its own).
func (p *Pipeline) SeedOrder(rel, attr string, olderTID, newerTID int, strict bool) {
	p.gamma.AddOrder(rel, attr, olderTID, newerTID, strict)
	p.env.Orders = func(r, a string) *data.TemporalOrder {
		return p.gamma.OrderIfAny(r, a)
	}
}

// Validate validates a cell value as ground truth (master data).
func (p *Pipeline) Validate(rel, eid, attr string, v Value) error {
	_, conflict := p.gamma.SetCell(rel, eid, attr, v)
	if conflict != nil {
		return fmt.Errorf("rock: %s", conflict.Error())
	}
	return nil
}

// DeclareEntityRef declares that rel.attr stores EIDs of another
// relation's entities: a rule consequence equating two such attributes
// identifies the referenced entities (the paper's ϕ1 semantics).
func (p *Pipeline) DeclareEntityRef(rel, attr string) {
	p.eidRefs[rel+"."+attr] = true
}

// AddRule parses and registers a rule in the REE++ DSL.
func (p *Pipeline) AddRule(src string) (*ree.Rule, error) {
	r, err := ree.Parse(src, p.db)
	if err != nil {
		return nil, err
	}
	p.ruleSeq++
	r.ID = fmt.Sprintf("r%d", p.ruleSeq)
	p.rules = append(p.rules, r)
	return r, nil
}

// MustAddRule is AddRule that panics on error; for rule literals.
func (p *Pipeline) MustAddRule(src string) *ree.Rule {
	r, err := p.AddRule(src)
	if err != nil {
		panic(err)
	}
	return r
}

// Rules returns the registered rules.
func (p *Pipeline) Rules() []*ree.Rule { return p.rules }

// DiscoverOptions tunes rule discovery.
type DiscoverOptions struct {
	// MinSupport / MinConfidence are the objective thresholds (paper
	// defaults: 1e-8 and 0.9).
	MinSupport    float64
	MinConfidence float64
	// SampleRatio mines on a tuple sample (1.0 = all data).
	SampleRatio float64
	// MLModels offers these registered matchers as predicates.
	MLModels []string
	// TopK keeps only the best-ranked rules (0 = all).
	TopK int
}

// Discover mines REE++s from every relation and adds them to the
// pipeline's rule set; it returns the newly added rules.
func (p *Pipeline) Discover(opts DiscoverOptions) ([]*ree.Rule, error) {
	mOpts := discovery.DefaultOptions()
	if opts.MinSupport > 0 {
		mOpts.MinSupport = opts.MinSupport
	}
	if opts.MinConfidence > 0 {
		mOpts.MinConfidence = opts.MinConfidence
	}
	if opts.SampleRatio > 0 {
		mOpts.SampleRatio = opts.SampleRatio
	}
	mOpts.MLModels = opts.MLModels
	var mined []*ree.Rule
	for _, rel := range p.db.Names() {
		m := discovery.NewMiner(p.env, rel, mOpts)
		rules, _, err := m.Discover()
		if err != nil {
			return nil, err
		}
		mined = append(mined, rules...)
	}
	if opts.TopK > 0 && opts.TopK < len(mined) {
		mined = discovery.TopK(mined, nil, discovery.RankOptions{K: opts.TopK})
	}
	for _, r := range mined {
		p.ruleSeq++
		r.ID = fmt.Sprintf("r%d", p.ruleSeq)
	}
	p.rules = append(p.rules, mined...)
	return mined, nil
}

// DiscoverCross mines cross-relation rules R(t) ^ S(s) ^ X → p0 — e.g. a
// Customer's city determined by the employer Company's city — and adds
// them to the pipeline's rule set.
func (p *Pipeline) DiscoverCross(relT, relS string, opts DiscoverOptions) ([]*ree.Rule, error) {
	mOpts := discovery.DefaultOptions()
	if opts.MinSupport > 0 {
		mOpts.MinSupport = opts.MinSupport
	}
	if opts.MinConfidence > 0 {
		mOpts.MinConfidence = opts.MinConfidence
	}
	if opts.SampleRatio > 0 {
		mOpts.SampleRatio = opts.SampleRatio
	}
	rules, _, err := discovery.DiscoverCross(p.env, relT, relS, mOpts)
	if err != nil {
		return nil, err
	}
	if opts.TopK > 0 && opts.TopK < len(rules) {
		rules = discovery.TopK(rules, nil, discovery.RankOptions{K: opts.TopK})
	}
	for _, r := range rules {
		p.ruleSeq++
		r.ID = fmt.Sprintf("r%d", p.ruleSeq)
	}
	p.rules = append(p.rules, rules...)
	return rules, nil
}

// DetectedError is one detected error.
type DetectedError struct {
	RuleID string
	Task   string
	Cells  []CellRef
	// DupEIDs is set for duplicate (ER) errors.
	DupEIDs [2]string
}

// Detect runs batch error detection with the registered rules.
func (p *Pipeline) Detect() ([]DetectedError, error) {
	errs, _, err := p.detectWith(context.Background(), nil, p.opts.Obs, nil)
	return errs, err
}

// SetCluster installs an external cluster runner (typically a
// cluster/remote.Coordinator after its WaitWorkers completed) on an
// already-built pipeline — the distributed entry point for callers
// that only learn the worker set after construction.
func (p *Pipeline) SetCluster(cl cluster.Runner) { p.opts.Cluster = cl }

// Fingerprint digests the pipeline inputs that must be identical on
// every replica of a distributed run: the partition count, the
// relations with their tuple counts, and the rule IDs. The remote
// handshake compares coordinator and worker fingerprints and rejects
// mismatches before any round runs.
func (p *Pipeline) Fingerprint() string {
	rels := make([]string, 0, len(p.db.Relations))
	for name, rel := range p.db.Relations {
		rels = append(rels, fmt.Sprintf("%s:%d", name, len(rel.Tuples)))
	}
	sort.Strings(rels)
	ids := make([]string, 0, len(p.rules))
	for _, r := range p.rules {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return fmt.Sprintf("w=%d;rels=%s;rules=%s",
		p.opts.Workers, strings.Join(rels, ","), strings.Join(ids, ","))
}

// FollowerEngine builds the worker-process side of a distributed run:
// a chase engine replica over this pipeline's environment, rules and
// ground truth, ready for remote.RunWorker. The pipeline must have
// been constructed by the exact steps the coordinator's was (same
// data, same matcher registrations, same training calls, same rule
// parse order — cmd/rockworker mirrors cmd/rock's setup). Detection
// is deliberately skipped: it only warms predication caches, which
// memoise pure computations, so skipping it cannot change any result.
func (p *Pipeline) FollowerEngine() *chase.Engine {
	opts := p.chaseOptions(p.predication(), obs.New(), nil)
	// The replica executes units locally when asked; it must never
	// schedule on a distributed runner itself.
	opts.Cluster = nil
	return chase.New(p.env, p.rules, p.gamma, opts)
}

// chaseOptions maps the pipeline options onto a chase run. It is the ONE
// place rock builds chase.Options — both the batch (CleanCtx) and the
// incremental (Delta.CleanIncrementalCtx) paths call it, so a field added
// to Options cannot reach one path and silently drop from the other
// again (the Predication/Pred/Span drift this builder replaced). pred
// and span may be nil (layer off / spans disabled).
func (p *Pipeline) chaseOptions(pred *ml.Predication, reg *obs.Registry, span *obs.Span) chase.Options {
	return chase.Options{
		Span:         span,
		Mode:         chase.Unified,
		Lazy:         p.opts.Lazy,
		UseBlocking:  p.opts.UseBlocking,
		Predication:  p.opts.Predication,
		Pred:         pred,
		MaxRounds:    p.opts.MaxRounds,
		Workers:      p.opts.Workers,
		Parallel:     p.opts.Parallel,
		Steal:        p.opts.Steal,
		Obs:          reg,
		Oracle:       p.opts.Oracle,
		EIDRefs:      p.eidRefs,
		MemBudget:    p.opts.MemBudget,
		SpillDir:     p.opts.SpillDir,
		MaxRetries:   p.opts.MaxRetries,
		RetryBackoff: p.opts.RetryBackoff,
		Cluster:      p.opts.Cluster,
	}
}

// detectOptions maps the pipeline options onto a detection run.
func (p *Pipeline) detectOptions(pred *ml.Predication, reg *obs.Registry) detect.Options {
	o := detect.DefaultOptions()
	o.Workers = p.opts.Workers
	o.UseBlocking = p.opts.UseBlocking
	o.Steal = p.opts.Steal
	o.Pred = pred
	o.Obs = reg
	o.MaxRetries = p.opts.MaxRetries
	o.RetryBackoff = p.opts.RetryBackoff
	return o
}

// detectWith runs detection, optionally filling a predication layer that
// a subsequent chase will serve from and recording into reg. span, when
// non-nil, parents the detection phase span (CleanCtx passes its root
// "clean" span). partial is true when ctx was cancelled and only part of
// the data was scanned.
func (p *Pipeline) detectWith(ctx context.Context, pred *ml.Predication, reg *obs.Registry, span *obs.Span) ([]DetectedError, bool, error) {
	dOpts := p.detectOptions(pred, reg)
	dOpts.Span = span
	d := detect.New(p.env, p.rules, dOpts)
	errs, partial, err := d.DetectCtx(ctx)
	if err != nil {
		return nil, partial, err
	}
	out := make([]DetectedError, len(errs))
	for i, e := range errs {
		out[i] = DetectedError{RuleID: e.RuleID, Task: e.Task.String(), Cells: e.Cells, DupEIDs: e.DupEIDs}
	}
	return out, partial, nil
}

// Correction is one applied repair.
type Correction struct {
	Cell  CellRef
	Old   Value
	New   Value
	Rule  string
	IsNew bool // true when the old value was null (imputation)
}

// UnitError re-exports the cluster layer's typed work-unit failure: a
// unit that panicked on every retry or lost its node.
type UnitError = cluster.UnitError

// Report summarises a Clean run.
type Report struct {
	// Partial marks a gracefully degraded run: the deadline expired (or
	// the CleanCtx context was cancelled) mid-run, or some work units
	// failed permanently. Errors/Corrections carry everything established
	// up to that point — sound, but possibly incomplete.
	Partial bool
	// UnitErrors lists work units that exhausted their retries.
	UnitErrors []UnitError
	// Errors are the detected errors (pre-correction).
	Errors []DetectedError
	// Corrections are the applied cell repairs.
	Corrections []Correction
	// MergedEntities lists identified duplicate EID groups.
	MergedEntities [][]string
	// OrderedPairs counts deduced temporal-order pairs.
	OrderedPairs int
	// ChaseRounds is the number of fixpoint rounds.
	ChaseRounds int
	// UnresolvedConflicts were escalated but unanswered.
	UnresolvedConflicts int
	// OracleCalls counts user consultations.
	OracleCalls int
	// Predication carries the ML predication layer's cache counters
	// (zero value when Options.Predication is off). The layer spans the
	// whole Clean run: detection fills the prediction cache, the chase
	// serves from it.
	Predication PredicationStats
	// PredicationByRound holds one counter snapshot taken before the
	// first chase round (covering the detection phase) and one after
	// every chase round; deltas isolate per-round hit rates.
	PredicationByRound []PredicationStats
	// Assessment reports post-cleaning data quality.
	Assessment quality.Assessment
	// RoundTrace is the chase's per-round trace table (rounds, units,
	// valuations, ML calls, fixes, steals, per-node counts, duration).
	RoundTrace []ChaseRoundTrace
	// RuleProfile attributes the chase's cost to individual rules (wall
	// clock, work units, valuations, ML calls, fixes applied/rejected);
	// the Valuations/MLCalls columns sum exactly to the chase phase
	// totals. rock clean -v renders it; rockbench's "profile" experiment
	// tables it.
	RuleProfile []RuleCost
	// MLProfile attributes ML cost to individual models (calls, wall
	// clock, predication-cache hits/misses).
	MLProfile []MLCost
	// Metrics is the unified observability snapshot of the whole run —
	// detection, chase, predication and executor counters, histograms and
	// the bounded event log. The scalar fields above are views over the
	// same registry (e.g. Metrics.Counters["chase.rounds"] ==
	// ChaseRounds); -metrics-out dumps exactly this.
	Metrics obs.Snapshot
}

// ChaseRoundTrace re-exports the chase engine's per-round trace row.
type ChaseRoundTrace = chase.RoundTrace

// RuleCost re-exports the chase engine's per-rule attribution row.
type RuleCost = chase.RuleCost

// MLCost re-exports the chase engine's per-model ML cost row.
type MLCost = chase.MLCost

// PredicationStats re-exports the predication layer's counter snapshot:
// prediction-cache hits/misses/evictions, embedding-store reuse, and
// tuple invalidations (see ml.PredStats).
type PredicationStats = ml.PredStats

// Clean detects and corrects: it chases the database with the registered
// rules and ground truth, materialises the validated fixes back into the
// relations, and returns the report. Options.Deadline, when set, bounds
// the run (see CleanCtx).
func (p *Pipeline) Clean() (*Report, error) {
	return p.CleanCtx(context.Background())
}

// withDeadline layers Options.Deadline (when set) onto ctx.
func (p *Pipeline) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.opts.Deadline > 0 {
		return context.WithTimeout(ctx, p.opts.Deadline)
	}
	return context.WithCancel(ctx)
}

// CleanCtx is Clean under a cancellation context. Cancelling ctx (or
// exceeding Options.Deadline) does not discard the run: detection and
// the chase stop at their next cooperative checkpoint, every certain fix
// established so far is materialised, and the report comes back with
// Partial=true and a nil error.
func (p *Pipeline) CleanCtx(ctx context.Context) (*Report, error) {
	ctx, cancel := p.withDeadline(ctx)
	defer cancel()
	// One observability registry spans the whole run: detection records
	// "detect.*", the chase "chase.*", and Report.Metrics snapshots both.
	reg := p.opts.Obs
	if reg == nil {
		reg = obs.New()
	}
	// One predication layer spans the whole run (and, on a long-lived
	// pipeline, every later run): detection fills the content-keyed
	// prediction cache, the chase serves from it (and from its
	// tuple-versioned embedding store) during deduction.
	pred := p.predication()
	// Root span of the hierarchical trace (recorded only when the
	// registry has spans enabled): clean → detect/chase → round → unit →
	// exec → ml.<model>.
	root := reg.StartSpan("clean", nil)
	defer root.End()
	errs, detPartial, err := p.detectWith(ctx, pred, reg, root)
	if err != nil {
		return nil, err
	}
	eng := chase.New(p.env, p.rules, p.gamma, p.chaseOptions(pred, reg, root))
	chaseRep, err := eng.RunCtx(ctx)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Errors:              errs,
		Partial:             detPartial || chaseRep.Partial,
		UnitErrors:          chaseRep.UnitErrors,
		ChaseRounds:         chaseRep.Rounds,
		UnresolvedConflicts: len(chaseRep.Unresolved),
		OracleCalls:         chaseRep.OracleCalls,
		Predication:         chaseRep.Predication,
		PredicationByRound:  chaseRep.PredicationByRound,
		RoundTrace:          chaseRep.Trace,
		RuleProfile:         chaseRep.RuleProfile,
		MLProfile:           chaseRep.MLProfile,
	}
	// Collect corrections before materialising.
	u := eng.Truth()
	for relName, rel := range p.db.Relations {
		for _, t := range rel.Tuples {
			for i, a := range rel.Schema.Attrs {
				v, ok := u.Cell(relName, t.EID, a.Name)
				if !ok || v.Equal(t.Values[i]) {
					continue
				}
				rep.Corrections = append(rep.Corrections, Correction{
					Cell:  CellRef{Rel: relName, TID: t.TID, Attr: a.Name},
					Old:   t.Values[i],
					New:   v,
					IsNew: t.Values[i].IsNull(),
				})
			}
		}
	}
	sort.Slice(rep.Corrections, func(i, j int) bool {
		return rep.Corrections[i].Cell.String() < rep.Corrections[j].Cell.String()
	})
	rep.MergedEntities = u.Classes()
	for _, o := range u.Orders() {
		rep.OrderedPairs += len(o.Pairs())
	}
	eng.Materialize()
	violating := 0
	for _, e := range errs {
		violating += len(e.Cells)
	}
	rep.Assessment = quality.Assess(p.db, violating-len(rep.Corrections))
	// The full scan above covered every pending validation; restart the
	// between-cleans tracking window.
	p.gamma.StartTouchTracking()
	// Close the root span before snapshotting so Report.Metrics carries
	// the complete trace (End is idempotent; the defer covers error
	// paths).
	root.End()
	rep.Metrics = reg.Snapshot()
	return rep, nil
}

// ParseRules parses one rule per line (comments with '#') against the
// database schema.
func (p *Pipeline) ParseRules(text string) ([]*ree.Rule, error) {
	rules, err := ree.ParseAll(text, p.db)
	if err != nil {
		return nil, err
	}
	for _, r := range rules {
		p.ruleSeq++
		r.ID = fmt.Sprintf("r%d", p.ruleSeq)
	}
	p.rules = append(p.rules, rules...)
	return rules, nil
}
