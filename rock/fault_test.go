package rock

import (
	"context"
	"testing"
	"time"
)

// TestDeadlineExpiredCleanIsPartial: an Options.Deadline that has no
// chance to fit the run makes Clean return a partial report with a nil
// error — graceful degradation, not failure.
func TestDeadlineExpiredCleanIsPartial(t *testing.T) {
	db := testDB(t)
	opts := DefaultOptions()
	opts.Deadline = time.Nanosecond
	p := NewPipelineWith(db, opts)
	p.TrainCorrelationModels()
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	rep, err := p.Clean()
	if err != nil {
		t.Fatalf("expired deadline must degrade, not fail: %v", err)
	}
	if !rep.Partial {
		t.Fatal("expired deadline must yield Report.Partial")
	}
}

// TestCleanCtxCancelledIsPartial: same degradation through an explicit
// caller context instead of Options.Deadline.
func TestCleanCtxCancelledIsPartial(t *testing.T) {
	db := testDB(t)
	p := NewPipeline(db)
	p.TrainCorrelationModels()
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := p.CleanCtx(ctx)
	if err != nil {
		t.Fatalf("cancelled context must degrade, not fail: %v", err)
	}
	if !rep.Partial {
		t.Fatal("cancelled context must yield Report.Partial")
	}
}

// TestCleanWithoutDeadlineNotPartial guards the flag's default: an
// unconstrained run must not report Partial.
func TestCleanWithoutDeadlineNotPartial(t *testing.T) {
	db := testDB(t)
	p := NewPipeline(db)
	p.TrainCorrelationModels()
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("unconstrained run must not be Partial")
	}
}

// TestCleanIncrementalCtxCancelledIsPartial covers the incremental path.
func TestCleanIncrementalCtxCancelledIsPartial(t *testing.T) {
	db := testDB(t)
	p := NewPipeline(db)
	p.TrainCorrelationModels()
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	if _, err := p.Clean(); err != nil {
		t.Fatal(err)
	}
	d := p.NewDelta()
	d.Insert("Trans", "p9", S("Mate X2"), S("Nokia"), F(5200))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, partial, err := d.CleanIncrementalCtx(ctx)
	if err != nil {
		t.Fatalf("cancelled incremental clean must degrade, not fail: %v", err)
	}
	if !partial {
		t.Fatal("cancelled incremental clean must report partial")
	}
}
