package rock

import (
	"testing"

	"github.com/rockclean/rock/internal/workload"
)

// ecommercePipeline builds the paper's running example through the public
// facade (the same setup as TestPublicPipelineOnEcommerce).
func ecommercePipeline(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	ds := workload.Ecommerce()
	p := NewPipelineWith(ds.DB, opts)
	p.RegisterMatcher("M_ER", 0.82)
	p.TrainCorrelationModels()
	p.RegisterGraph(ds.Graph, 0.6)
	p.DeclareEntityRef("Trans", "pid")
	for _, r := range ds.Rules {
		if _, err := p.AddRule(r.String()); err != nil {
			t.Fatalf("rule %s: %v", r.ID, err)
		}
	}
	return p
}

// TestPredicationHitRateEcommerce checks the §5.4 design goal: once
// detection has filled the shared prediction cache, chase rounds serve
// their ML predications from it — steady-state rounds run at > 90% hit
// rate on the ecommerce workload.
func TestPredicationHitRateEcommerce(t *testing.T) {
	p := ecommercePipeline(t, DefaultOptions())
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predication.Lookups() == 0 {
		t.Fatal("predication cache never probed; is the layer wired in?")
	}
	br := rep.PredicationByRound
	if len(br) < 2 {
		t.Fatalf("expected a baseline + per-round snapshots, got %d", len(br))
	}
	first, last := br[0], br[len(br)-1]
	lookups := last.Lookups() - first.Lookups()
	if lookups == 0 {
		t.Fatal("no chase-phase predication lookups on ecommerce")
	}
	hits := last.Hits - first.Hits
	rate := float64(hits) / float64(lookups)
	t.Logf("chase-phase predication: %d hits / %d lookups (%.1f%%); overall %d hits / %d lookups",
		hits, lookups, 100*rate, last.Hits, last.Lookups())
	if rate <= 0.9 {
		t.Errorf("steady-state predication hit rate %.3f, want > 0.9", rate)
	}
}

// TestPredicationOffMatchesOn verifies the layer is pure memoisation: a
// Clean run with predication disabled produces identical corrections,
// merges and rounds.
func TestPredicationOffMatchesOn(t *testing.T) {
	run := func(pred bool) *Report {
		opts := DefaultOptions()
		opts.Predication = pred
		rep, err := ecommercePipeline(t, opts).Clean()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	on, off := run(true), run(false)
	if len(on.Corrections) != len(off.Corrections) {
		t.Fatalf("corrections differ: on=%d off=%d", len(on.Corrections), len(off.Corrections))
	}
	for i := range on.Corrections {
		a, b := on.Corrections[i], off.Corrections[i]
		if a.Cell != b.Cell || !a.New.Equal(b.New) {
			t.Errorf("correction %d differs: %+v vs %+v", i, a, b)
		}
	}
	if on.ChaseRounds != off.ChaseRounds {
		t.Errorf("rounds differ: on=%d off=%d", on.ChaseRounds, off.ChaseRounds)
	}
	if len(on.MergedEntities) != len(off.MergedEntities) {
		t.Errorf("merges differ: on=%d off=%d", len(on.MergedEntities), len(off.MergedEntities))
	}
	if off.Predication.Lookups() != 0 {
		t.Errorf("predication off but counters moved: %+v", off.Predication)
	}
}
