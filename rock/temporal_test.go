package rock

import (
	"testing"
)

// TestTemporalFacade drives TD through the public API: seed an order from
// master timestamps, train a ranker, and deduce currency with a rule.
func TestTemporalFacade(t *testing.T) {
	db := NewDB()
	person := NewRel(MustSchema("Person",
		Attribute{Name: "status", Type: TString},
		Attribute{Name: "home", Type: TString},
	))
	single := person.Insert("p2", S("single"), S("5 West Road"))
	married := person.Insert("p2", S("married"), S("12 Beijing Road"))
	db.Add(person)

	p := NewPipeline(db)
	if err := p.TrainRanker("Person", "status", [][2]*Tuple{{single, married}}); err != nil {
		t.Fatal(err)
	}
	if err := p.TrainRanker("Ghost", "x", nil); err == nil {
		t.Error("unknown relation must fail")
	}
	p.SeedOrder("Person", "status", single.TID, married.TID, true)

	p.MustAddRule("Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s")
	p.MustAddRule("Person(t) ^ Person(s) ^ t <=[status] s -> t <=[home] s")
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrderedPairs == 0 {
		t.Error("temporal pairs must be deduced")
	}
}

func TestDiscoverThresholdsRespected(t *testing.T) {
	db := NewDB()
	rel := NewRel(MustSchema("R",
		Attribute{Name: "a", Type: TString},
		Attribute{Name: "b", Type: TString},
	))
	for i := 0; i < 40; i++ {
		pair := []string{"x", "y"}[i%2]
		rel.Insert("e", S(pair), S(pair+"!"))
	}
	db.Add(rel)
	p := NewPipeline(db)
	rules, err := p.Discover(DiscoverOptions{MinConfidence: 0.99, MinSupport: 0.01, SampleRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence < 0.99 {
			t.Errorf("rule below requested confidence: %s (%f)", r, r.Confidence)
		}
	}
}

func TestRegisterGraphEnablesExtraction(t *testing.T) {
	db := NewDB()
	rel := NewRel(MustSchema("Store",
		Attribute{Name: "name", Type: TString},
		Attribute{Name: "location", Type: TString},
	))
	rel.Insert("s1", S("Huawei Flagship"), Null(TString))
	db.Add(rel)
	g := NewGraph("Wiki")
	hv := g.AddVertex("Huawei Flagship")
	bj := g.AddVertex("Beijing")
	MustEdge(g, hv, "LocationAt", bj)

	p := NewPipeline(db)
	p.RegisterGraph(g, 0.6)
	p.MustAddRule("Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) ^ null(t.location) -> t.location = val(x.(LocationAt))")
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrections) != 1 || rep.Corrections[0].New.Str() != "Beijing" {
		t.Errorf("extraction via facade failed: %+v", rep.Corrections)
	}
	if !rep.Corrections[0].IsNew {
		t.Error("imputation must be marked IsNew")
	}
}

func TestMonitorFacade(t *testing.T) {
	db := testMonitorDB()
	p := NewPipeline(db)
	p.CheckNulls("R", "b")
	p.CheckDuplicates("R", "k")
	p.CheckRange("R", "n", 0, 100)
	p.CheckPattern("R", "k", `^k\d+$`)
	findings, a := p.Monitor()
	if len(findings) != 4 {
		t.Fatalf("findings=%d: %+v", len(findings), findings)
	}
	if a.Completeness >= 1 || a.Consistency >= 1 {
		t.Error("assessment must reflect the findings")
	}
}

func testMonitorDB() *Database {
	db := NewDB()
	rel := NewRel(MustSchema("R",
		Attribute{Name: "k", Type: TString},
		Attribute{Name: "b", Type: TString},
		Attribute{Name: "n", Type: TInt},
	))
	rel.Insert("e1", S("k1"), S("x"), I(50))
	rel.Insert("e2", S("k1"), Null(TString), I(150))
	rel.Insert("e3", S("oops"), S("y"), I(20))
	db.Add(rel)
	return db
}

func TestDiscoverCrossFacade(t *testing.T) {
	db := NewDB()
	cust := NewRel(MustSchema("Customer",
		Attribute{Name: "company", Type: TString},
		Attribute{Name: "city", Type: TString},
	))
	comp := NewRel(MustSchema("Company",
		Attribute{Name: "cname", Type: TString},
		Attribute{Name: "hq", Type: TString},
	))
	pairs := []struct{ n, c string }{{"Acme Co", "Beijing"}, {"Globex", "Shanghai"}}
	for _, pr := range pairs {
		comp.Insert("co", S(pr.n), S(pr.c))
	}
	for i := 0; i < 30; i++ {
		pr := pairs[i%2]
		cust.Insert("cu", S(pr.n), S(pr.c))
	}
	db.Add(cust)
	db.Add(comp)
	p := NewPipeline(db)
	rules, err := p.DiscoverCross("Customer", "Company", DiscoverOptions{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no cross rules found")
	}
	if len(p.Rules()) != len(rules) {
		t.Error("cross rules must register on the pipeline")
	}
	if _, err := p.DiscoverCross("Ghost", "Company", DiscoverOptions{}); err == nil {
		t.Error("unknown relation must fail")
	}
}
