package rock

import (
	"context"
	"sort"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/detect"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/truth"
)

// Delta tracks a batch of updates to the pipeline's database for the
// incremental modes (paper §3: "the users may opt to employ Rock to
// monitor changes to D, and incrementally detect and fix errors in
// response to updates"). Obtain one from Pipeline.NewDelta, record every
// inserted/updated tuple, then call DetectIncremental or CleanIncremental.
type Delta struct {
	p     *Pipeline
	dirty map[string]map[int]bool
}

// NewDelta starts tracking an update batch.
func (p *Pipeline) NewDelta() *Delta {
	return &Delta{p: p, dirty: make(map[string]map[int]bool)}
}

// Insert appends a tuple to a relation and records it as dirty; it
// returns the new tuple (nil if the relation is unknown).
func (d *Delta) Insert(rel, eid string, values ...Value) *Tuple {
	r := d.p.db.Rel(rel)
	if r == nil {
		return nil
	}
	t := r.Insert(eid, values...)
	d.mark(rel, t.TID)
	return t
}

// Update overwrites one cell and records the tuple as dirty; it reports
// whether the tuple and attribute existed.
func (d *Delta) Update(rel string, tid int, attr string, v Value) bool {
	r := d.p.db.Rel(rel)
	if r == nil || !r.SetValue(tid, attr, v) {
		return false
	}
	d.mark(rel, tid)
	return true
}

func (d *Delta) mark(rel string, tid int) {
	m := d.dirty[rel]
	if m == nil {
		m = make(map[int]bool)
		d.dirty[rel] = m
	}
	m[tid] = true
}

// Size returns the number of tracked dirty tuples.
func (d *Delta) Size() int {
	n := 0
	for _, m := range d.dirty {
		n += len(m)
	}
	return n
}

// invalidateEmbeddings retires the warm predication layer's cached
// vectors for the delta's tuples: their raw values just changed, and a
// layer shared across runs (the pipeline keeps one for its lifetime)
// would otherwise serve embeddings of the old content. No-op with the
// layer off.
func (d *Delta) invalidateEmbeddings(pred *ml.Predication) {
	if pred == nil {
		return
	}
	for rel, tids := range d.dirty {
		for tid := range tids {
			pred.Embeds.Invalidate(rel, tid)
		}
	}
}

// DetectIncremental finds only the errors involving this delta's tuples.
func (d *Delta) DetectIncremental() ([]DetectedError, error) {
	errs, _, err := d.DetectIncrementalCtx(context.Background())
	return errs, err
}

// DetectIncrementalCtx is DetectIncremental under a cancellation context
// (plus Options.Deadline): on cancel it returns the errors found so far
// with partial=true and a nil error. Like the batch path it runs under a
// root span ("detect.incremental") and fills the pipeline's warm
// predication layer, so a following CleanIncremental serves
// detection-scored pairs as cache hits.
func (d *Delta) DetectIncrementalCtx(ctx context.Context) ([]DetectedError, bool, error) {
	ctx, cancel := d.p.withDeadline(ctx)
	defer cancel()
	reg := d.p.opts.Obs
	if reg == nil {
		reg = obs.New()
	}
	pred := d.p.predication()
	d.invalidateEmbeddings(pred)
	root := reg.StartSpan("detect.incremental", nil)
	defer root.End()
	dOpts := d.p.detectOptions(pred, reg)
	dOpts.Span = root
	det := detect.New(d.p.env, d.p.rules, dOpts)
	errs, partial, err := det.DetectIncrementalCtx(ctx, d.dirty)
	if err != nil {
		return nil, partial, err
	}
	out := make([]DetectedError, len(errs))
	for i, e := range errs {
		out[i] = DetectedError{RuleID: e.RuleID, Task: e.Task.String(), Cells: e.Cells, DupEIDs: e.DupEIDs}
	}
	return out, partial, nil
}

// CleanIncremental chases only from this delta's tuples (fixes propagate
// through the usual activation machinery), materialises the validated
// fixes, and returns the applied corrections.
func (d *Delta) CleanIncremental() ([]Correction, error) {
	out, _, err := d.CleanIncrementalCtx(context.Background())
	return out, err
}

// CleanIncrementalCtx is CleanIncremental under a cancellation context
// (plus Options.Deadline). On cancel the chase degrades gracefully: the
// certain fixes established so far are materialised and returned with
// partial=true and a nil error.
func (d *Delta) CleanIncrementalCtx(ctx context.Context) ([]Correction, bool, error) {
	rep, err := d.CleanIncrementalReport(ctx)
	if err != nil {
		return nil, false, err
	}
	return rep.Corrections, rep.Partial, nil
}

// CleanIncrementalReport is CleanIncrementalCtx returning the full run
// Report — corrections plus the predication cache counters, chase
// trace, per-rule profile and metrics snapshot of the incremental run.
// rockd reads it to attribute per-batch cost and cache behaviour. The
// incremental chase shares the batch path's whole option set (one
// builder, see Pipeline.chaseOptions), including the §5.4 predication
// layer and the root trace span.
func (d *Delta) CleanIncrementalReport(ctx context.Context) (*Report, error) {
	ctx, cancel := d.p.withDeadline(ctx)
	defer cancel()
	reg := d.p.opts.Obs
	if reg == nil {
		reg = obs.New()
	}
	pred := d.p.predication()
	root := reg.StartSpan("clean.incremental", nil)
	defer root.End()
	// Cells validated through Pipeline.Validate since the last clean:
	// this run didn't touch them, but no prior scan reported them either,
	// so they join the diff set below.
	pending := d.p.gamma.TouchedCells()
	eng := chase.New(d.p.env, d.p.rules, d.p.gamma, d.p.chaseOptions(pred, reg, root))
	u := eng.Truth()
	u.StartTouchTracking()
	chaseRep, err := eng.RunIncrementalCtx(ctx, d.dirty)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Partial:             chaseRep.Partial,
		UnitErrors:          chaseRep.UnitErrors,
		ChaseRounds:         chaseRep.Rounds,
		UnresolvedConflicts: len(chaseRep.Unresolved),
		OracleCalls:         chaseRep.OracleCalls,
		Predication:         chaseRep.Predication,
		PredicationByRound:  chaseRep.PredicationByRound,
		RoundTrace:          chaseRep.Trace,
		RuleProfile:         chaseRep.RuleProfile,
		MLProfile:           chaseRep.MLProfile,
	}
	rep.Corrections = d.corrections(eng, u, append(u.TouchedCells(), pending...))
	eng.Materialize()
	// The diff consumed the pending validations; restart the window.
	d.p.gamma.StartTouchTracking()
	root.End()
	rep.Metrics = reg.Snapshot()
	return rep, nil
}

// corrections diffs exactly the cells this run may have changed — the
// delta's dirty tuples plus every touched validated cell expanded over
// its entity class — rather than scanning the whole database per delta
// (the old O(|D|) hot-spot once small batches stream in). The result is
// provably the same set: a correction needs a validated cell differing
// from raw data, and such a discrepancy can only appear at a tuple whose
// raw values changed (dirty) or whose class gained/extended a validated
// cell (touched).
func (d *Delta) corrections(eng *chase.Engine, u *truth.FixSet, touched []truth.TouchedCell) []Correction {
	seen := make(map[CellRef]bool)
	var out []Correction
	diffCell := func(relName string, t *Tuple, i int, attr string) {
		ref := CellRef{Rel: relName, TID: t.TID, Attr: attr}
		if seen[ref] {
			return
		}
		seen[ref] = true
		v, ok := u.Cell(relName, t.EID, attr)
		if !ok || v.Equal(t.Values[i]) {
			return
		}
		out = append(out, Correction{
			Cell:  ref,
			Old:   t.Values[i],
			New:   v,
			IsNew: t.Values[i].IsNull(),
		})
	}
	// 1. The delta's own tuples: fresh raw values may disagree with any
	// validated cell of their class, touched or not.
	for relName, tids := range d.dirty {
		rel := d.p.db.Rel(relName)
		if rel == nil {
			continue
		}
		for tid := range tids {
			t := rel.Get(tid)
			if t == nil {
				continue
			}
			for i, a := range rel.Schema.Attrs {
				diffCell(relName, t, i, a.Name)
			}
		}
	}
	// 2. Touched validated cells, expanded to every member tuple of their
	// entity class through the engine's EID index.
	for _, tc := range touched {
		rel := d.p.db.Rel(tc.Rel)
		if rel == nil {
			continue
		}
		i := rel.Schema.Index(tc.Attr)
		if i < 0 {
			continue
		}
		for _, member := range u.ClassMembers(tc.EIDRoot) {
			for _, t := range eng.TuplesByEID(tc.Rel, member) {
				diffCell(tc.Rel, t, i, tc.Attr)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].Cell.String() < out[b].Cell.String()
	})
	return out
}
