package rock

import (
	"context"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/detect"
)

// Delta tracks a batch of updates to the pipeline's database for the
// incremental modes (paper §3: "the users may opt to employ Rock to
// monitor changes to D, and incrementally detect and fix errors in
// response to updates"). Obtain one from Pipeline.NewDelta, record every
// inserted/updated tuple, then call DetectIncremental or CleanIncremental.
type Delta struct {
	p     *Pipeline
	dirty map[string]map[int]bool
}

// NewDelta starts tracking an update batch.
func (p *Pipeline) NewDelta() *Delta {
	return &Delta{p: p, dirty: make(map[string]map[int]bool)}
}

// Insert appends a tuple to a relation and records it as dirty; it
// returns the new tuple (nil if the relation is unknown).
func (d *Delta) Insert(rel, eid string, values ...Value) *Tuple {
	r := d.p.db.Rel(rel)
	if r == nil {
		return nil
	}
	t := r.Insert(eid, values...)
	d.mark(rel, t.TID)
	return t
}

// Update overwrites one cell and records the tuple as dirty; it reports
// whether the tuple and attribute existed.
func (d *Delta) Update(rel string, tid int, attr string, v Value) bool {
	r := d.p.db.Rel(rel)
	if r == nil || !r.SetValue(tid, attr, v) {
		return false
	}
	d.mark(rel, tid)
	return true
}

func (d *Delta) mark(rel string, tid int) {
	m := d.dirty[rel]
	if m == nil {
		m = make(map[int]bool)
		d.dirty[rel] = m
	}
	m[tid] = true
}

// Size returns the number of tracked dirty tuples.
func (d *Delta) Size() int {
	n := 0
	for _, m := range d.dirty {
		n += len(m)
	}
	return n
}

// DetectIncremental finds only the errors involving this delta's tuples.
func (d *Delta) DetectIncremental() ([]DetectedError, error) {
	errs, _, err := d.DetectIncrementalCtx(context.Background())
	return errs, err
}

// DetectIncrementalCtx is DetectIncremental under a cancellation context
// (plus Options.Deadline): on cancel it returns the errors found so far
// with partial=true and a nil error.
func (d *Delta) DetectIncrementalCtx(ctx context.Context) ([]DetectedError, bool, error) {
	ctx, cancel := d.p.withDeadline(ctx)
	defer cancel()
	det := detect.New(d.p.env, d.p.rules, d.p.detectOptions(nil, d.p.opts.Obs))
	errs, partial, err := det.DetectIncrementalCtx(ctx, d.dirty)
	if err != nil {
		return nil, partial, err
	}
	out := make([]DetectedError, len(errs))
	for i, e := range errs {
		out[i] = DetectedError{RuleID: e.RuleID, Task: e.Task.String(), Cells: e.Cells, DupEIDs: e.DupEIDs}
	}
	return out, partial, nil
}

// CleanIncremental chases only from this delta's tuples (fixes propagate
// through the usual activation machinery), materialises the validated
// fixes, and returns the applied corrections.
func (d *Delta) CleanIncremental() ([]Correction, error) {
	out, _, err := d.CleanIncrementalCtx(context.Background())
	return out, err
}

// CleanIncrementalCtx is CleanIncremental under a cancellation context
// (plus Options.Deadline). On cancel the chase degrades gracefully: the
// certain fixes established so far are materialised and returned with
// partial=true and a nil error.
func (d *Delta) CleanIncrementalCtx(ctx context.Context) ([]Correction, bool, error) {
	ctx, cancel := d.p.withDeadline(ctx)
	defer cancel()
	cOpts := chase.Options{
		Mode:         chase.Unified,
		Lazy:         d.p.opts.Lazy,
		UseBlocking:  d.p.opts.UseBlocking,
		MaxRounds:    d.p.opts.MaxRounds,
		Workers:      d.p.opts.Workers,
		Parallel:     d.p.opts.Parallel,
		Steal:        d.p.opts.Steal,
		Obs:          d.p.opts.Obs,
		EIDRefs:      d.p.eidRefs,
		MemBudget:    d.p.opts.MemBudget,
		SpillDir:     d.p.opts.SpillDir,
		MaxRetries:   d.p.opts.MaxRetries,
		RetryBackoff: d.p.opts.RetryBackoff,
	}
	if d.p.opts.Oracle != nil {
		cOpts.Oracle = d.p.opts.Oracle
	}
	eng := chase.New(d.p.env, d.p.rules, d.p.gamma, cOpts)
	chaseRep, err := eng.RunIncrementalCtx(ctx, d.dirty)
	if err != nil {
		return nil, false, err
	}
	u := eng.Truth()
	var out []Correction
	for relName, rel := range d.p.db.Relations {
		for _, t := range rel.Tuples {
			for i, a := range rel.Schema.Attrs {
				v, ok := u.Cell(relName, t.EID, a.Name)
				if !ok || v.Equal(t.Values[i]) {
					continue
				}
				out = append(out, Correction{
					Cell:  CellRef{Rel: relName, TID: t.TID, Attr: a.Name},
					Old:   t.Values[i],
					New:   v,
					IsNew: t.Values[i].IsNull(),
				})
			}
		}
	}
	eng.Materialize()
	return out, chaseRep.Partial, nil
}
