package rock

import (
	"github.com/rockclean/rock/internal/quality"
)

// MonitorFinding is one quality-template hit: the offending tuples of one
// relation under one check.
type MonitorFinding struct {
	Rel      string
	Template string
	TIDs     []int
}

// QualityAssessment reports the monitoring dimensions of paper §4.1:
// completeness, validity, consistency (timeliness requires temporal gold
// and reads -1 when unknown).
type QualityAssessment struct {
	Completeness float64
	Validity     float64
	Consistency  float64
	Timeliness   float64
}

// monitor lazily materialises the underlying quality.Monitor.
func (p *Pipeline) monitor() *quality.Monitor {
	if p.qmon == nil {
		p.qmon = quality.NewMonitor()
	}
	return p.qmon
}

// CheckNulls registers a completeness check: flag tuples whose attribute
// is null.
func (p *Pipeline) CheckNulls(rel, attr string) {
	p.monitor().Add(rel, quality.NullCheck{Attr: attr})
}

// CheckDuplicates registers a validity check: flag tuples whose attribute
// value repeats (for key-like attributes).
func (p *Pipeline) CheckDuplicates(rel, attr string) {
	p.monitor().Add(rel, quality.DuplicateCheck{Attr: attr})
}

// CheckRange registers a validity check: flag numeric values outside
// [min, max].
func (p *Pipeline) CheckRange(rel, attr string, min, max float64) {
	p.monitor().Add(rel, quality.RangeCheck{Attr: attr, Min: min, Max: max})
}

// CheckPattern registers a format check: flag string values not matching
// the regular expression. It panics on an invalid pattern (templates are
// configuration).
func (p *Pipeline) CheckPattern(rel, attr, pattern string) {
	p.monitor().Add(rel, quality.NewPatternCheck(attr, pattern))
}

// Monitor runs the registered templates against the current database and
// returns the findings plus the aggregate assessment — Rock's data-quality
// monitoring step (paper §4.1, Figure 2's "data quality assessment").
func (p *Pipeline) Monitor() ([]MonitorFinding, QualityAssessment) {
	findings, a := p.monitor().Run(p.db)
	out := make([]MonitorFinding, len(findings))
	for i, f := range findings {
		out[i] = MonitorFinding{Rel: f.Rel, Template: f.Template, TIDs: f.TIDs}
	}
	return out, QualityAssessment{
		Completeness: a.Completeness,
		Validity:     a.Validity,
		Consistency:  a.Consistency,
		Timeliness:   a.Timeliness,
	}
}
