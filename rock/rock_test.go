package rock

import (
	"testing"
)

// testDB builds the tiny Transaction table of the package example.
func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDB()
	trans := NewRel(MustSchema("Trans",
		Attribute{Name: "com", Type: TString},
		Attribute{Name: "mfg", Type: TString},
		Attribute{Name: "price", Type: TFloat},
	))
	trans.Insert("p3", S("Mate X2"), S("Huawei"), F(5200))
	trans.Insert("p4", S("Mate X2"), S("Apple"), Null(TFloat)) // wrong mfg, missing price
	trans.Insert("p5", S("Mate X2"), S("Huawei"), F(5200))
	db.Add(trans)
	return db
}

func TestPipelineEndToEnd(t *testing.T) {
	db := testDB(t)
	p := NewPipeline(db)
	p.TrainCorrelationModels()
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com ^ t.mfg = s.mfg ^ null(t.price) -> t.price = s.price")
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) == 0 {
		t.Error("expected detected errors")
	}
	if len(rep.Corrections) < 2 {
		t.Fatalf("expected mfg + price corrections, got %v", rep.Corrections)
	}
	// The wrong manufactory is fixed and the price imputed.
	bad := db.Rel("Trans").Tuples[1]
	if v, _ := db.Rel("Trans").Value(bad.TID, "mfg"); v.Str() != "Huawei" {
		t.Errorf("mfg not fixed: %v", v)
	}
	if v, _ := db.Rel("Trans").Value(bad.TID, "price"); v.IsNull() || v.Float() != 5200 {
		t.Errorf("price not imputed: %v", v)
	}
	if rep.ChaseRounds == 0 {
		t.Error("chase must have run")
	}
	if rep.Assessment.Completeness < 0.99 {
		t.Errorf("post-clean completeness: %f", rep.Assessment.Completeness)
	}
}

func TestPipelineAddRuleValidation(t *testing.T) {
	p := NewPipeline(testDB(t))
	if _, err := p.AddRule("Ghost(t) -> t.x = 1"); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := p.AddRule("Trans(t) -> t.ghost = 1"); err == nil {
		t.Error("unknown attribute must fail")
	}
	r, err := p.AddRule("Trans(t) -> t.mfg = 'Huawei'")
	if err != nil || r.ID != "r1" {
		t.Errorf("rule id sequencing: %v %v", r, err)
	}
	if len(p.Rules()) != 1 {
		t.Error("rules not registered")
	}
}

func TestPipelineDiscover(t *testing.T) {
	db := NewDB()
	rel := NewRel(MustSchema("Store",
		Attribute{Name: "location", Type: TString},
		Attribute{Name: "area_code", Type: TString},
	))
	for i := 0; i < 30; i++ {
		city, code := "Beijing", "010"
		if i%2 == 1 {
			city, code = "Shanghai", "021"
		}
		rel.Insert("e", S(city), S(code))
	}
	db.Add(rel)
	p := NewPipeline(db)
	rules, err := p.Discover(DiscoverOptions{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 || len(rules) > 5 {
		t.Fatalf("discover: %d rules", len(rules))
	}
	if len(p.Rules()) != len(rules) {
		t.Error("discovered rules must register on the pipeline")
	}
}

func TestPipelineOracle(t *testing.T) {
	db := NewDB()
	rel := NewRel(MustSchema("R", Attribute{Name: "a", Type: TString}, Attribute{Name: "k", Type: TString}))
	rel.Insert("e1", S("x"), S("key"))
	rel.Insert("e2", S("y"), S("key"))
	db.Add(rel)
	opts := DefaultOptions()
	opts.Oracle = func(r, eid, attr string, cands []Value) (Value, bool) {
		return S("x"), true // the user knows "x" is right
	}
	p := NewPipelineWith(db, opts)
	p.MustAddRule("R(t) ^ R(s) ^ t.k = s.k -> t.a = s.a")
	rep, err := p.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OracleCalls == 0 {
		t.Error("ambiguous conflict must consult the oracle")
	}
	if v, _ := rel.Value(rel.Tuples[1].TID, "a"); v.Str() != "x" {
		t.Errorf("oracle answer not applied: %v", v)
	}
}

func TestPipelineValidateMasterData(t *testing.T) {
	db := testDB(t)
	p := NewPipeline(db)
	if err := p.Validate("Trans", "p4", "mfg", S("Huawei")); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate("Trans", "p4", "mfg", S("Apple")); err == nil {
		t.Error("contradicting master data must fail")
	}
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	if _, err := p.Clean(); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Rel("Trans").Value(db.Rel("Trans").Tuples[1].TID, "mfg"); v.Str() != "Huawei" {
		t.Error("validated master data must drive the fix")
	}
}

func TestParseRulesMultiline(t *testing.T) {
	p := NewPipeline(testDB(t))
	rules, err := p.ParseRules("# comment\nTrans(t) -> t.mfg = 'Huawei'\n\nTrans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg\n")
	if err != nil || len(rules) != 2 {
		t.Fatalf("%v %v", rules, err)
	}
}
