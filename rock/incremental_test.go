package rock

import "testing"

func TestDeltaIncrementalFlow(t *testing.T) {
	db := NewDB()
	trans := NewRel(MustSchema("Trans",
		Attribute{Name: "com", Type: TString},
		Attribute{Name: "mfg", Type: TString},
	))
	trans.Insert("t1", S("Mate X2"), S("Huawei"))
	trans.Insert("t2", S("Mate X2"), S("Huawei"))
	db.Add(trans)

	p := NewPipeline(db)
	p.TrainCorrelationModels()
	p.MustAddRule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg")
	if _, err := p.Clean(); err != nil {
		t.Fatal(err)
	}

	// ΔD: a new transaction arrives with a wrong manufactory.
	d := p.NewDelta()
	nt := d.Insert("Trans", "t9", S("Mate X2"), S("Apple"))
	if nt == nil || d.Size() != 1 {
		t.Fatal("delta insert failed")
	}
	errs, err := d.DetectIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) == 0 {
		t.Fatal("incremental detection missed the new error")
	}
	for _, e := range errs {
		touches := false
		for _, c := range e.Cells {
			if c.TID == nt.TID {
				touches = true
			}
		}
		if !touches {
			t.Errorf("error does not touch the delta: %+v", e)
		}
	}
	corr, err := d.CleanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 1 || corr[0].New.Str() != "Huawei" {
		t.Fatalf("incremental correction: %+v", corr)
	}
	if v, _ := trans.Value(nt.TID, "mfg"); v.Str() != "Huawei" {
		t.Error("materialization missing")
	}
}

func TestDeltaUpdate(t *testing.T) {
	db := NewDB()
	rel := NewRel(MustSchema("R", Attribute{Name: "a", Type: TString}))
	tp := rel.Insert("e", S("x"))
	db.Add(rel)
	p := NewPipeline(db)
	d := p.NewDelta()
	if !d.Update("R", tp.TID, "a", S("y")) {
		t.Fatal("update failed")
	}
	if d.Update("R", 999, "a", S("z")) || d.Update("Ghost", 0, "a", S("z")) {
		t.Error("bad updates must report false")
	}
	if d.Insert("Ghost", "e", S("x")) != nil {
		t.Error("insert into unknown relation must fail")
	}
	if v, _ := rel.Value(tp.TID, "a"); v.Str() != "y" {
		t.Error("update not applied")
	}
}
