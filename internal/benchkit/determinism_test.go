package benchkit

import (
	"testing"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/chase"
)

// chaseApplied builds a fresh Logistics bench and returns the chase's
// applied-fix strings in application order.
func chaseApplied(t *testing.T, cfg Config, parallel bool) []string {
	t.Helper()
	ds, err := appDataset("Logistics", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := baselines.NewBench(ds, cfg.Workers)
	opts := chase.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Parallel = parallel
	opts.Oracle = b.GoldOracle()
	opts.EIDRefs = b.DS.EIDRefs
	eng := chase.New(b.Env, b.Rules, b.DS.Gamma, opts)
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rep.Applied))
	for i, f := range rep.Applied {
		out[i] = f.String()
	}
	return out
}

// TestChaseDeterminism guards the reproducibility the faults experiment
// leans on: the same seed must yield the same applied-fix sequence across
// runs and across serial vs parallel execution. This regressed once
// through rng consumption in map-iteration order (SeedGamma).
func TestChaseDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 200
	a := chaseApplied(t, cfg, false)
	b := chaseApplied(t, cfg, false)
	par := chaseApplied(t, cfg, true)
	if len(a) == 0 {
		t.Fatal("chase applied no fixes — workload too clean to test")
	}
	compare := func(name string, other []string) {
		if len(a) != len(other) {
			t.Fatalf("%s: fix counts diverge: %d vs %d", name, len(a), len(other))
		}
		for i := range a {
			if a[i] != other[i] {
				t.Fatalf("%s: fix sequences diverge at %d: %q vs %q", name, i, a[i], other[i])
			}
		}
	}
	compare("serial vs serial", b)
	compare("serial vs parallel", par)
}
