package benchkit

import (
	"os"
	"runtime"
	"strings"
)

// EnvInfo captures the machine and runtime a benchmark table was
// measured on; rockbench embeds it in every BENCH_*.json so numbers are
// comparable across checkouts and CI runners.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the "model name" line of /proc/cpuinfo; empty where the
	// platform has no such file (best effort, never an error).
	CPUModel string `json:"cpu_model,omitempty"`
}

// Environment collects the current process's EnvInfo.
func Environment() EnvInfo {
	return EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}
