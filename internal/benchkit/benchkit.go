// Package benchkit orchestrates the reproduction of every figure panel of
// the paper's evaluation (Figure 4(a)–(l) plus the rule-count and ablation
// summaries). Each experiment builds the synthetic application datasets,
// runs the systems under test, and returns a printable table whose rows
// and series mirror the paper's panels. cmd/rockbench prints them; the
// testing.B benches in bench_test.go time the hot paths.
package benchkit

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/workload"
)

// Table is one experiment result: Rows × Columns of values.
type Table struct {
	ID      string
	Title   string
	Unit    string
	Columns []string
	RowsLbl []string
	Cells   map[string]map[string]float64 // row -> col -> value
	Missing map[string]map[string]bool    // NA cells (unsupported combos)
	Notes   []string
	// Metrics carries the obs-registry counters of the experiment's
	// instrumented runs (keys prefixed with the run's row label), so the
	// BENCH_*.json rows ship the same numbers `rock clean -metrics-out`
	// reports. Nil for experiments that don't thread a registry.
	Metrics map[string]uint64 `json:",omitempty"`
}

// NewTable creates an empty table.
func NewTable(id, title, unit string, cols []string) *Table {
	return &Table{
		ID: id, Title: title, Unit: unit, Columns: cols,
		Cells:   make(map[string]map[string]float64),
		Missing: make(map[string]map[string]bool),
	}
}

// Set stores one cell, creating the row on first use.
func (t *Table) Set(row, col string, v float64) {
	m := t.Cells[row]
	if m == nil {
		m = make(map[string]float64)
		t.Cells[row] = m
		t.RowsLbl = append(t.RowsLbl, row)
	}
	m[col] = v
}

// SetNA marks a cell as unsupported.
func (t *Table) SetNA(row, col string) {
	if t.Cells[row] == nil {
		t.Cells[row] = make(map[string]float64)
		t.RowsLbl = append(t.RowsLbl, row)
	}
	m := t.Missing[row]
	if m == nil {
		m = make(map[string]bool)
		t.Missing[row] = m
	}
	m[col] = true
}

// Note appends a caption line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(w, " [%s]", t.Unit)
	}
	fmt.Fprintln(w)
	width := 12
	fmt.Fprintf(w, "%-14s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%*s", width, c)
	}
	fmt.Fprintln(w)
	for _, r := range t.RowsLbl {
		fmt.Fprintf(w, "%-14s", r)
		for _, c := range t.Columns {
			if t.Missing[r][c] {
				fmt.Fprintf(w, "%*s", width, "—")
				continue
			}
			v, ok := t.Cells[r][c]
			if !ok {
				fmt.Fprintf(w, "%*s", width, "")
				continue
			}
			fmt.Fprintf(w, "%*s", width, formatValue(v, t.Unit))
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatValue(v float64, unit string) string {
	switch unit {
	case "F1":
		return fmt.Sprintf("%.3f", v)
	case "ms":
		return fmt.Sprintf("%.1f", v)
	case "count", "x", "calls":
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Config sizes the experiments.
type Config struct {
	// N is the base tuple count per application.
	N int
	// Seed drives the generators.
	Seed int64
	// Workers is the default cluster size.
	Workers int
	// MemBudget, when positive, caps the chase executor's resident
	// interned-column bytes in the scale experiment — columns above it
	// spill to flat on-disk blocks (the 10⁷–10⁸ tuple configurations).
	MemBudget int64
}

// DefaultConfig keeps experiments laptop-fast.
func DefaultConfig() Config { return Config{N: 400, Seed: 2024, Workers: 4} }

func (c Config) wl() workload.Config {
	return workload.Config{N: c.N, Seed: c.Seed}
}

func appDataset(app string, cfg Config) (*workload.Dataset, error) {
	switch strings.ToLower(app) {
	case "bank":
		return workload.Bank(cfg.wl()), nil
	case "logistics":
		return workload.Logistics(cfg.wl()), nil
	case "sales":
		return workload.Sales(cfg.wl()), nil
	}
	return nil, fmt.Errorf("benchkit: unknown application %q (valid: Bank, Logistics, Sales)", app)
}

func appTasks(app string) ([]string, error) {
	switch strings.ToLower(app) {
	case "bank":
		return []string{"CNC", "CIC", "TPA", "ESClean"}, nil
	case "logistics":
		return []string{"RS", "RR", "SN", "RClean"}, nil
	case "sales":
		return []string{"CIN", "CCN", "TPWT", "SClean"}, nil
	}
	return nil, fmt.Errorf("benchkit: unknown application %q (valid: Bank, Logistics, Sales)", app)
}

// timeIt measures one call in milliseconds.
func timeIt(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return float64(time.Since(start).Microseconds()) / 1000.0, err
}

// taskGold restricts a gold labelling to one task's target attributes
// (the *Clean tasks keep everything).
func taskGold(ds *workload.Dataset, task string) *quality.Gold {
	var target []string
	hasER := false
	for _, tk := range ds.Tasks {
		if tk.Name == task {
			target = tk.TargetAttrs
			for _, id := range tk.RuleIDs {
				for _, r := range ds.Rules {
					if r.ID == id && r.TaskOf().String() == "ER" {
						hasER = true
					}
				}
			}
		}
	}
	if len(target) == 0 {
		return ds.Gold // dataset-wide task
	}
	want := map[string]bool{}
	for _, a := range target {
		want[a] = true
	}
	g := quality.NewGold()
	for key, v := range ds.Gold.WrongCells {
		if want[relAttrOfKey(key)] {
			g.WrongCells[key] = v
		}
	}
	for key, v := range ds.Gold.MissingCells {
		if want[relAttrOfKey(key)] {
			g.MissingCells[key] = v
		}
	}
	if hasER {
		for p := range ds.Gold.DupPairs {
			g.DupPairs[p] = true
		}
	}
	return g
}

// relAttrOfKey turns a cell key "Rel[tid].attr" into "Rel.attr".
func relAttrOfKey(key string) string {
	rel := key
	for i := 0; i < len(key); i++ {
		if key[i] == '[' {
			rel = key[:i]
			break
		}
	}
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return rel + "." + key[i+1:]
		}
	}
	return key
}

// filterCells keeps detected cells whose attribute is targeted (all, when
// target empty).
func filterCells(cells map[string]bool, target []string) map[string]bool {
	if len(target) == 0 {
		return cells
	}
	want := map[string]bool{}
	for _, a := range target {
		want[a] = true
	}
	out := make(map[string]bool)
	for k := range cells {
		if want[relAttrOfKey(k)] {
			out[k] = true
		}
	}
	return out
}

func targetsOf(ds *workload.Dataset, task string) []string {
	for _, tk := range ds.Tasks {
		if tk.Name == task {
			return tk.TargetAttrs
		}
	}
	return nil
}

// taskBench builds a bench whose rule set is restricted to one task.
func taskBench(ds *workload.Dataset, task string, workers int) *baselines.Bench {
	b := baselines.NewBench(ds, workers)
	b.Rules = b.DS.RulesFor(task)
	return b
}

// sortedApps is the canonical application order.
var sortedApps = []string{"Bank", "Logistics", "Sales"}

func sortStrings(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
