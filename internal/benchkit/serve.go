package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/serve"
	"github.com/rockclean/rock/rock"
)

// ServeLoad is the `serve` experiment: a load generator against an
// in-process rockd (internal/serve over real HTTP) measuring what the
// paper's service deployment serves under concurrent sessions (§3, §6
// "heavy traffic") — sustained incremental cleans/sec and the
// ingest→fix-visible latency distribution under the read-your-fixes
// session guarantee. Each session streams tuples with a known error
// into a shared warm tenant and blocks on its token after every
// ingest, exactly the serving path a client sees.
func ServeLoad(cfg Config) (*Table, error) {
	const (
		sessions = 64
		opsPer   = 6
		tenant   = "bench"
	)
	scfg := serve.DefaultConfig()
	opts := rock.DefaultOptions()
	if cfg.Workers > 0 {
		opts.Workers = cfg.Workers
	}
	srv := serve.New(scfg, serve.WorkloadFactory("ecommerce", cfg.wl(), opts))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	base := hs.URL + "/v1/" + tenant

	// Warm the tenant: build the pipeline, train models, settle the
	// dataset's initial errors with one full clean.
	if err := postJSON(base+"/clean", nil, nil); err != nil {
		return nil, fmt.Errorf("warm clean: %w", err)
	}

	type result struct {
		lat []time.Duration
		err error
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			for k := 0; k < opsPer; k++ {
				body := map[string]any{
					"rel": "Trans",
					"tuples": []map[string]any{{
						"eid":    fmt.Sprintf("s%d-%d", i, k),
						"values": []string{"p3", "s3", "Mate X2 (Limited Sold)", "Huawei", "5200", "2023-08-12"},
					}},
				}
				t0 := time.Now()
				var ing struct {
					Token uint64 `json:"token"`
				}
				if err := postJSON(base+"/ingest", body, &ing); err != nil {
					r.err = fmt.Errorf("session %d op %d: %w", i, k, err)
					return
				}
				// Block until the covering batch materialized (since=1<<30
				// clamps to the ledger end: we want the watermark, not the
				// whole fix list, on every poll).
				url := fmt.Sprintf("%s/fixes?token=%d&since=%d&timeout_ms=60000", base, ing.Token, 1<<30)
				resp, err := http.Get(url)
				if err != nil {
					r.err = fmt.Errorf("session %d op %d wait: %w", i, k, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					r.err = fmt.Errorf("session %d op %d wait: status %d", i, k, resp.StatusCode)
					return
				}
				r.lat = append(r.lat, time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var lats []time.Duration
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		lats = append(lats, results[i].lat...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i].Microseconds()) / 1000.0
	}

	tn, err := srv.Tenant(tenant)
	if err != nil {
		return nil, err
	}
	snap := tn.Registry().Snapshot()
	batches := snap.Counters["serve.batches"]
	fixes := snap.Counters["serve.fixes.applied"]

	t := NewTable("serve", "rockd serving: 64 concurrent sessions, warm tenant", "", []string{"value"})
	t.Set("sessions", "value", sessions)
	t.Set("ingests", "value", float64(len(lats)))
	t.Set("wall_s", "value", wall.Seconds())
	t.Set("cleans_per_s", "value", float64(batches)/wall.Seconds())
	t.Set("ingests_per_s", "value", float64(len(lats))/wall.Seconds())
	t.Set("p50_visible_ms", "value", pct(0.50))
	t.Set("p95_visible_ms", "value", pct(0.95))
	t.Set("p99_visible_ms", "value", pct(0.99))
	t.Set("batches", "value", float64(batches))
	t.Set("fixes_applied", "value", float64(fixes))
	t.Metrics = make(map[string]uint64)
	for k, v := range snap.Counters {
		t.Metrics[tenant+"."+k] = v
	}
	t.Note("%d sessions × %d ingests, batch window %v, max batch %d, %d workers",
		sessions, opsPer, scfg.BatchWindow, scfg.MaxBatch, opts.Workers)
	t.Note("ingest→fix-visible latency measured client-side over HTTP (read-your-fixes token wait)")
	if batches == 0 {
		return t, fmt.Errorf("serve: no batches completed")
	}
	return t, nil
}

func postJSON(url string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
