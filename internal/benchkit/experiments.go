package benchkit

import (
	"fmt"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/detect"
	"github.com/rockclean/rock/internal/discovery"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/workload"
)

// Fig4Discovery reproduces Figures 4(a)/(b)/(c): rule-discovery (or model
// training) time per task for {Rock, Rock_noML, ES, T5s, RB}. The paper
// reports ES/T5s/RB failing to finish within a day on the full data; at
// laptop scale the same systems are the slow outliers.
func Fig4Discovery(app string, cfg Config) (*Table, error) {
	cols := []string{"Rock", "Rock_noML", "ES", "T5s", "RB"}
	t := NewTable(figIDFor(app, "discovery"), app+": rule discovery time", "ms", cols)
	tasks, err := appTasks(app)
	if err != nil {
		return nil, err
	}
	for _, task := range tasks {
		for _, sysName := range cols {
			ds, err := appDataset(app, cfg)
			if err != nil {
				return nil, err
			}
			b := taskBench(ds, task, cfg.Workers)
			sys, err := systemByName(sysName)
			if err != nil {
				return nil, err
			}
			ms, err := timeIt(func() error {
				_, err := sys.Discover(b)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", app, task, sysName, err)
			}
			t.Set(task, sysName, ms)
		}
	}
	t.Note("paper shape: Rock_noML < Rock < ES (unpruned lattice); T5s/RB train miniature stand-ins here — at the paper's 10^8-tuple scale their fine-tuning / feature generation cannot finish in a day (DESIGN.md)")
	return t, nil
}

// Fig4DetectF1 reproduces Figures 4(d)/(e)/(f): error-detection F-measure
// per task for {Rock, Rock_noML, ES, T5s, RB}.
func Fig4DetectF1(app string, cfg Config) (*Table, error) {
	cols := []string{"Rock", "Rock_noML", "ES", "T5s", "RB"}
	t := NewTable(figIDFor(app, "detectf1"), app+": error detection accuracy", "F1", cols)
	tasks, err := appTasks(app)
	if err != nil {
		return nil, err
	}
	for _, task := range tasks {
		for _, sysName := range cols {
			ds, err := appDataset(app, cfg)
			if err != nil {
				return nil, err
			}
			b := taskBench(ds, task, cfg.Workers)
			sys, err := systemByName(sysName)
			if err != nil {
				return nil, err
			}
			cells, dups, err := sys.Detect(b)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", app, task, sysName, err)
			}
			gold := taskGold(b.DS, task)
			cells = filterCells(cells, targetsOf(b.DS, task))
			if len(gold.DupPairs) == 0 {
				dups = nil
			}
			t.Set(task, sysName, quality.ScoreDetection(gold, cells, dups).F1())
		}
	}
	t.Note("paper shape: Rock highest; T5s weak on numeric tasks (TPA/TPWT); Rock_noML trails Rock")
	return t, nil
}

// Fig4gDetectTime reproduces Figure 4(g): detection time per application
// for {Rock, Rock_noML, T5s, RB, SparkSQL, Presto} on the *Clean tasks.
func Fig4gDetectTime(cfg Config) (*Table, error) {
	cols := []string{"Rock", "Rock_noML", "T5s", "RB", "SparkSQL", "Presto"}
	t := NewTable("fig4g", "error detection time per application", "ms", cols)
	cfg.N *= 2 // cost gaps compound with data size (the paper runs full scale)
	for _, app := range sortedApps {
		for _, sysName := range cols {
			ds, err := appDataset(app, cfg)
			if err != nil {
				return nil, err
			}
			b := baselines.NewBench(ds, cfg.Workers)
			sys, err := systemByName(sysName)
			if err != nil {
				return nil, err
			}
			ms, err := timeIt(func() error {
				_, _, err := sys.Detect(b)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, sysName, err)
			}
			t.Set(app, sysName, ms)
		}
	}
	t.Note("paper shape: Rock fastest (bar Rock_noML); SQL engines pay unblocked, uncached ML UDFs")
	return t, nil
}

// Fig4hScaleDetect reproduces Figure 4(h): Logistics detection time
// varying the worker count n ∈ {4, 8, 12, 16, 20} (paper: 3.36× from 4 to
// 20 workers). Work-unit costs are measured for real; their parallel
// overlap is simulated (cluster.SimulateMakespan), since the host's
// physical core count cannot express a 20-node cluster.
func Fig4hScaleDetect(cfg Config) (*Table, error) {
	t := NewTable("fig4h", "Logistics-ED: varying n (simulated makespan)", "ms", []string{"Rock"})
	// The paper scales on the full 16M-tuple dataset; use 4x the base size
	// so each virtual worker holds meaningful work.
	cfg.N *= 4
	var t4, t20 float64
	for _, n := range []int{4, 8, 12, 16, 20} {
		ds, err := appDataset("Logistics", cfg)
		if err != nil {
			return nil, err
		}
		b := baselines.NewBench(ds, n)
		o := detect.DefaultOptions()
		o.Workers = n
		d := detect.New(b.Env, b.Rules, o)
		_, makespan, err := d.DetectSimulated()
		if err != nil {
			return nil, err
		}
		ms := float64(makespan.Microseconds()) / 1000.0
		t.Set(fmt.Sprintf("n=%d", n), "Rock", ms)
		if n == 4 {
			t4 = ms
		}
		if n == 20 {
			t20 = ms
		}
	}
	if t20 > 0 {
		t.Note("speedup 4→20 workers: %.2fx (paper: 3.36x on a 21-node cluster)", t4/t20)
	}
	return t, nil
}

// Fig4iCorrectF1 reproduces Figure 4(i): error-correction F-measure per
// application for {Rock, Rock_seq, Rock_noC, Rock_noML, ES, T5s, RB}.
func Fig4iCorrectF1(cfg Config) (*Table, error) {
	cols := []string{"Rock", "Rock_seq", "Rock_noC", "Rock_noML", "ES", "T5s", "RB"}
	t := NewTable("fig4i", "error correction accuracy per application", "F1", cols)
	for _, app := range sortedApps {
		for _, sysName := range cols {
			ds, err := appDataset(app, cfg)
			if err != nil {
				return nil, err
			}
			b := baselines.NewBench(ds, cfg.Workers)
			sys, err := systemByName(sysName)
			if err != nil {
				return nil, err
			}
			corr, err := sys.Correct(b)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, sysName, err)
			}
			t.Set(app, sysName, quality.ScoreCorrection(b.DS.Gold, corr, b.RawValue).Overall().F1())
		}
	}
	t.Note("paper shape: Rock == Rock_seq > Rock_noML > Rock_noC; ML/holistic baselines trail")
	return t, nil
}

// Fig4jSalesTasks reproduces Figure 4(j): Sales correction F-measure per
// task (ER/CR/MI/TD) for {Rock, Rock_noC, ES, T5s, RB}; baselines that do
// not support a task show as missing, matching the paper's omitted bars.
func Fig4jSalesTasks(cfg Config) (*Table, error) {
	cols := []string{"Rock", "Rock_noC", "ES", "T5s", "RB"}
	t := NewTable("fig4j", "Sales-EC: per-task accuracy", "F1", cols)
	type taskScore func(quality.TaskScores) float64
	rows := []struct {
		name string
		get  taskScore
	}{
		{"ER", func(s quality.TaskScores) float64 { return s.ER.F1() }},
		{"CR", func(s quality.TaskScores) float64 { return s.CR.F1() }},
		{"MI", func(s quality.TaskScores) float64 { return s.MI.F1() }},
		{"TD", func(s quality.TaskScores) float64 { return s.TD.F1() }},
	}
	// Unsupported combos (paper: "TD of ES, TD of T5s, TD and ER of RB are
	// not shown").
	unsupported := map[string]map[string]bool{
		"ES":  {"TD": true},
		"T5s": {"TD": true, "ER": true},
		"RB":  {"TD": true, "ER": true},
	}
	for _, sysName := range cols {
		ds, err := appDataset("Sales", cfg)
		if err != nil {
			return nil, err
		}
		b := baselines.NewBench(ds, cfg.Workers)
		sys, err := systemByName(sysName)
		if err != nil {
			return nil, err
		}
		corr, err := sys.Correct(b)
		if err != nil {
			return nil, fmt.Errorf("fig4j/%s: %w", sysName, err)
		}
		s := quality.ScoreCorrection(b.DS.Gold, corr, b.RawValue)
		for _, row := range rows {
			if unsupported[sysName][row.name] {
				t.SetNA(row.name, sysName)
				continue
			}
			t.Set(row.name, sysName, row.get(s))
		}
	}
	t.Note("paper shape: Rock best on every task; TD/ER unsupported by several baselines")
	return t, nil
}

// Fig4kCorrectTime reproduces Figure 4(k): correction time per application
// for {Rock, Rock_seq, Rock_noC, T5s, RB, SparkSQL, Presto} (paper: Rock
// ≥33× faster than the SQL engines; Rock faster than Rock_seq; Rock_noC
// fastest but inaccurate).
func Fig4kCorrectTime(cfg Config) (*Table, error) {
	cols := []string{"Rock", "Rock_seq", "Rock_noC", "T5s", "RB", "SparkSQL", "Presto"}
	t := NewTable("fig4k", "error correction time per application", "ms", cols)
	cfg.N *= 2 // cost gaps compound with data size (the paper runs full scale)
	var rockTotal, sqlTotal float64
	for _, app := range sortedApps {
		for _, sysName := range cols {
			ds, err := appDataset(app, cfg)
			if err != nil {
				return nil, err
			}
			b := baselines.NewBench(ds, cfg.Workers)
			sys, err := systemByName(sysName)
			if err != nil {
				return nil, err
			}
			ms, err := timeIt(func() error {
				_, err := sys.Correct(b)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, sysName, err)
			}
			t.Set(app, sysName, ms)
			switch sysName {
			case "Rock":
				rockTotal += ms
			case "SparkSQL":
				sqlTotal += ms
			}
		}
	}
	if rockTotal > 0 {
		t.Note("SparkSQL/Rock total-time ratio: %.1fx (paper: ≥33x)", sqlTotal/rockTotal)
	}
	return t, nil
}

// Fig4lScaleCorrect reproduces Figure 4(l): Logistics correction time
// varying n (paper: 3.12× from 4 to 20 workers). The chase partitions
// each round into HyperCube work units whose costs are measured for real;
// their overlap over n workers is simulated, and the serial merge step
// (fix application + conflict resolution) is charged in full — hence the
// sublinear scaling, as in the paper.
func Fig4lScaleCorrect(cfg Config) (*Table, error) {
	t := NewTable("fig4l", "Logistics-EC: varying n (simulated makespan)", "ms", []string{"Rock"})
	cfg.N *= 4 // the paper scales on the full dataset; see Fig4hScaleDetect
	var t4, t20 float64
	for _, n := range []int{4, 8, 12, 16, 20} {
		ds, err := appDataset("Logistics", cfg)
		if err != nil {
			return nil, err
		}
		b := baselines.NewBench(ds, n)
		gamma := b.DS.Gamma
		opts := chase.DefaultOptions()
		opts.Workers = n
		opts.Oracle = b.GoldOracle()
		opts.EIDRefs = b.DS.EIDRefs
		eng := chase.New(b.Env, b.Rules, gamma, opts)
		rep, err := eng.Run()
		if err != nil {
			return nil, err
		}
		ms := float64(rep.SimMakespan.Microseconds()) / 1000.0
		t.Set(fmt.Sprintf("n=%d", n), "Rock", ms)
		if n == 4 {
			t4 = ms
		}
		if n == 20 {
			t20 = ms
		}
	}
	if t20 > 0 {
		t.Note("speedup 4→20 workers: %.2fx (paper: 3.12x)", t4/t20)
	}
	return t, nil
}

// RuleCounts reproduces the §6 text: the number of REE++s discovered per
// application (paper: 388 / 47 / 167 at production scale).
func RuleCounts(cfg Config) (*Table, error) {
	t := NewTable("rules", "discovered REE++s per application", "count", []string{"Rock"})
	for _, app := range sortedApps {
		ds, err := appDataset(app, cfg)
		if err != nil {
			return nil, err
		}
		b := baselines.NewBench(ds, cfg.Workers)
		rules, err := baselines.Rock().Discover(b)
		if err != nil {
			return nil, err
		}
		t.Set(app, "Rock", float64(len(rules)))
	}
	t.Note("paper finds 388/47/167 at 10^8-10^9-tuple scale; counts here reflect the laptop-scale generators")
	return t, nil
}

// Ablations reproduces the §6 ablation summary plus the design-choice
// ablations called out in DESIGN.md: ML predicates, task interaction,
// blocking, lazy chase, sampling and stealing.
func Ablations(cfg Config) (*Table, error) {
	t := NewTable("ablation", "ablation summary (Bank)", "", []string{"value"})
	ds, err := appDataset("Bank", cfg)
	if err != nil {
		return nil, err
	}

	// (1) ML predicates: detection F1 gap.
	bFull := baselines.NewBench(ds, cfg.Workers)
	cells, dups, err := baselines.Rock().Detect(bFull)
	if err != nil {
		return nil, err
	}
	fullF1 := quality.ScoreDetection(bFull.DS.Gold, cells, dups).F1()
	bNoML := baselines.NewBench(ds, cfg.Workers)
	cells, dups, err = baselines.RockNoML().Detect(bNoML)
	if err != nil {
		return nil, err
	}
	nomlF1 := quality.ScoreDetection(bNoML.DS.Gold, cells, dups).F1()
	t.Set("detect F1 Rock", "value", fullF1)
	t.Set("detect F1 noML", "value", nomlF1)

	// (2) interaction: correction F1 Rock vs noC vs seq.
	score := func(sys baselines.System) (float64, error) {
		b := baselines.NewBench(ds, cfg.Workers)
		corr, err := sys.Correct(b)
		if err != nil {
			return 0, err
		}
		return quality.ScoreCorrection(b.DS.Gold, corr, b.RawValue).Overall().F1(), nil
	}
	for name, sys := range map[string]baselines.System{
		"correct F1 Rock": baselines.Rock(), "correct F1 seq": baselines.RockSeq(), "correct F1 noC": baselines.RockNoC(),
	} {
		f1, err := score(sys)
		if err != nil {
			return nil, err
		}
		t.Set(name, "value", f1)
	}

	// (3) blocking: detection time with/without LSH blocking.
	withBlocking := baselines.Rock()
	noBlocking := baselines.Rock()
	noBlocking.Blocking = false
	noBlocking.VariantName = "Rock_noblock"
	msOn, err := timeIt(func() error {
		b := baselines.NewBench(ds, cfg.Workers)
		_, _, err := withBlocking.Detect(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	msOff, err := timeIt(func() error {
		b := baselines.NewBench(ds, cfg.Workers)
		_, _, err := noBlocking.Detect(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Set("detect ms blocked", "value", msOn)
	t.Set("detect ms unblocked", "value", msOff)

	// (4) lazy chase: correction time with/without lazy activation.
	lazy := baselines.Rock()
	naive := baselines.Rock()
	naive.Lazy = false
	naive.VariantName = "Rock_eager"
	msLazy, err := timeIt(func() error {
		b := baselines.NewBench(ds, cfg.Workers)
		_, err := lazy.Correct(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	msNaive, err := timeIt(func() error {
		b := baselines.NewBench(ds, cfg.Workers)
		_, err := naive.Correct(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Set("correct ms lazy", "value", msLazy)
	t.Set("correct ms eager", "value", msNaive)

	// (5) manual effort: the paper's bank client reports Rock "reduces
	// manual efforts of customer confirmations by 8×" — before Rock, every
	// detected error went to a human; with Rock, the rules + ground truth
	// + learned resolvers certify most fixes and only the conflicts they
	// cannot decide reach the user (each asked once).
	bEffort := baselines.NewBench(ds, cfg.Workers)
	effCells, effDups, err := baselines.Rock().Detect(bEffort)
	if err != nil {
		return nil, err
	}
	reviewed := float64(len(effCells) + len(effDups))
	opts := chase.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Oracle = bEffort.GoldOracle()
	opts.EIDRefs = bEffort.DS.EIDRefs
	eng := chase.New(bEffort.Env, bEffort.Rules, bEffort.DS.Gamma, opts)
	rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	asked := float64(rep.OracleCalls)
	t.Set("errors to review w/o Rock", "value", reviewed)
	t.Set("user confirmations w/ Rock", "value", asked)
	if asked > 0 {
		t.Note("manual-effort reduction: %.1fx (paper's bank client: 8x)", reviewed/asked)
	}

	t.Note("paper: ML predicates +20.5%% F1 avg; Rock_noC 23.7%% vs Rock 88.5%%; Rock == Rock_seq on F1")
	return t, nil
}

// Predication measures the §5.4 "ML predication is precomputed" layer:
// chase wall-clock with the layer off vs on, plus the layer's cache
// counters from the on run (hit rate excludes warm fills — the batch
// precompute is not a lookup). Chase-phase rate isolates rounds after
// the caches warm (PredicationByRound deltas).
func Predication(cfg Config) (*Table, error) {
	t := NewTable("predication", "ML predication layer (§5.4)", "",
		[]string{"off ms", "on ms", "hit rate %", "warmed", "invalidations"})
	t.Metrics = make(map[string]uint64)
	for _, wl := range []struct {
		name string
		mk   func() *workload.Dataset
	}{
		{"Ecommerce", workload.Ecommerce},
		{"Logistics", func() *workload.Dataset { return workload.Logistics(cfg.wl()) }},
	} {
		var lastRep *chase.Report
		reg := obs.New()
		run := func(pred bool) (float64, error) {
			return timeIt(func() error {
				b := baselines.NewBench(wl.mk(), cfg.Workers)
				opts := chase.DefaultOptions()
				opts.Workers = cfg.Workers
				opts.Parallel = cfg.Workers > 1
				opts.Predication = pred
				if pred {
					opts.Obs = reg
				}
				opts.Oracle = b.GoldOracle()
				opts.EIDRefs = b.DS.EIDRefs
				eng := chase.New(b.Env, b.Rules, b.DS.Gamma, opts)
				rep, err := eng.Run()
				lastRep = rep
				return err
			})
		}
		msOff, err := run(false)
		if err != nil {
			return nil, err
		}
		msOn, err := run(true)
		if err != nil {
			return nil, err
		}
		ps := lastRep.Predication
		t.Set(wl.name, "off ms", msOff)
		t.Set(wl.name, "on ms", msOn)
		t.Set(wl.name, "hit rate %", 100*ps.HitRate())
		t.Set(wl.name, "warmed", float64(ps.Warmed))
		t.Set(wl.name, "invalidations", float64(ps.Invalidations))
		for k, v := range reg.Snapshot().Counters {
			t.Metrics[wl.name+"."+k] = v
		}
	}
	t.Note("counters from the predication=on run; results are bit-identical either way")
	return t, nil
}

// Steal reproduces the work-stealing ablation (paper §5.2, load-balancing
// strategy (3)): chase simulated makespan with stealing on vs off. The
// obs steal counter asserts the ablation is real — the off run must
// record exactly zero chase-phase steals, or the experiment errors.
func Steal(cfg Config) (*Table, error) {
	t := NewTable("steal", "work-stealing ablation (§5.2)", "",
		[]string{"makespan ms", "steals"})
	t.Metrics = make(map[string]uint64)
	for _, mode := range []struct {
		name  string
		steal bool
	}{{"steal=on", true}, {"steal=off", false}} {
		ds, err := appDataset("Logistics", cfg)
		if err != nil {
			return nil, err
		}
		b := baselines.NewBench(ds, cfg.Workers)
		reg := obs.New()
		opts := chase.DefaultOptions()
		opts.Workers = cfg.Workers
		opts.Steal = mode.steal
		opts.Obs = reg
		opts.Oracle = b.GoldOracle()
		opts.EIDRefs = b.DS.EIDRefs
		eng := chase.New(b.Env, b.Rules, b.DS.Gamma, opts)
		rep, err := eng.Run()
		if err != nil {
			return nil, err
		}
		steals := reg.CounterValue("chase.steals")
		if !mode.steal && steals != 0 {
			return nil, fmt.Errorf("steal ablation: chase recorded %d steals with Steal=false", steals)
		}
		t.Set(mode.name, "makespan ms", float64(rep.SimMakespan.Microseconds())/1000.0)
		t.Set(mode.name, "steals", float64(steals))
		for k, v := range reg.Snapshot().Counters {
			t.Metrics[mode.name+"."+k] = v
		}
	}
	t.Note("chase results are identical either way — stealing only re-assigns work units; the off row's steal counter is asserted zero")
	return t, nil
}

// Faults runs the fault-injection experiment: the same Logistics chase
// twice on the same seed — once fault-free, once with several work units
// panicking on their first attempt and one node killed mid-drain — and
// asserts the two runs deduce the exact same fix set. Recovery (bounded
// retry with reassignment to a surviving node) must make faults invisible
// to the result; only the recovery counters differ.
func Faults(cfg Config) (*Table, error) {
	t := NewTable("faults", "fault-injection recovery (§5.2)", "",
		[]string{"ms", "panics", "retries", "reassigned", "killed", "failed", "fixes"})
	t.Metrics = make(map[string]uint64)
	fixSets := make(map[string][]string)
	for _, mode := range []struct {
		name   string
		faulty bool
	}{{"clean", false}, {"faulty", true}} {
		ds, err := appDataset("Logistics", cfg)
		if err != nil {
			return nil, err
		}
		b := baselines.NewBench(ds, cfg.Workers)
		reg := obs.New()
		opts := chase.DefaultOptions()
		opts.Workers = cfg.Workers
		opts.Parallel = cfg.Workers > 1
		opts.Obs = reg
		opts.Oracle = b.GoldOracle()
		opts.EIDRefs = b.DS.EIDRefs
		if mode.faulty {
			f := cluster.NewFaultInjector()
			f.PanicUnit(0, 1)
			f.PanicUnit(1, 1)
			f.PanicUnit(5, 1)
			if cfg.Workers > 1 {
				// Stealing off makes the kill deterministic: each worker
				// drains exactly its own queue, so the owner of a part
				// every two-atom rule emits is certain to execute two
				// units and die. Fix sets are steal-invariant, so the
				// clean run stays comparable.
				opts.Steal = false
				f.KillNode(cluster.New(cfg.Workers).Ring.Owner("Order-Order/b0-0"), 2)
			}
			opts.Faults = f
		}
		eng := chase.New(b.Env, b.Rules, b.DS.Gamma, opts)
		var rep *chase.Report
		ms, err := timeIt(func() error {
			var runErr error
			rep, runErr = eng.Run()
			return runErr
		})
		if err != nil {
			return nil, err
		}
		if rep.Partial {
			return nil, fmt.Errorf("faults: %s run came back partial (%d unit errors) — recovery failed", mode.name, len(rep.UnitErrors))
		}
		fixes := make([]string, len(rep.Applied))
		for i, f := range rep.Applied {
			fixes[i] = f.String()
		}
		fixes = sortStrings(fixes)
		fixSets[mode.name] = fixes
		t.Set(mode.name, "ms", ms)
		t.Set(mode.name, "panics", float64(reg.CounterValue("chase.unit_panics")))
		t.Set(mode.name, "retries", float64(reg.CounterValue("chase.retries")))
		t.Set(mode.name, "reassigned", float64(reg.CounterValue("chase.reassigned")))
		t.Set(mode.name, "killed", float64(reg.CounterValue("chase.node_killed")))
		t.Set(mode.name, "failed", float64(len(rep.UnitErrors)))
		t.Set(mode.name, "fixes", float64(len(fixes)))
		for k, v := range reg.Snapshot().Counters {
			t.Metrics[mode.name+"."+k] = v
		}
	}
	clean, faulty := fixSets["clean"], fixSets["faulty"]
	if len(clean) != len(faulty) {
		return nil, fmt.Errorf("faults: fix sets diverge: clean %d fixes, faulty %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			return nil, fmt.Errorf("faults: fix sets diverge at %d: clean %q vs faulty %q", i, clean[i], faulty[i])
		}
	}
	if v := t.Metrics["faulty.chase.unit_panics"]; v == 0 {
		return nil, fmt.Errorf("faults: faulty run recorded zero unit panics — injection did not fire")
	}
	if cfg.Workers > 1 {
		if v := t.Metrics["faulty.chase.node_killed"]; v != 1 {
			return nil, fmt.Errorf("faults: expected exactly one node kill, recorded %d", v)
		}
	}
	t.Note("fix sets asserted bit-identical: every injected panic and the killed node were absorbed by retry/reassignment")
	return t, nil
}

// Profile runs one span-traced Bank chase and publishes the per-rule
// cost-attribution table: one row per rule — work units, wall clock,
// valuations, ML calls, fixes applied/rejected — plus a Σ row that is
// asserted to reconcile with the run's phase totals (the same obs
// counters `rock clean -metrics-out` reports), so attribution can never
// silently drift from the numbers it decomposes.
func Profile(cfg Config) (*Table, error) {
	ds, err := appDataset("Bank", cfg)
	if err != nil {
		return nil, err
	}
	b := baselines.NewBench(ds, cfg.Workers)
	reg := obs.New()
	reg.EnableSpans(0)
	opts := chase.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Parallel = cfg.Workers > 1
	opts.Obs = reg
	opts.Oracle = b.GoldOracle()
	opts.EIDRefs = b.DS.EIDRefs
	eng := chase.New(b.Env, b.Rules, b.DS.Gamma, opts)
	rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	t := NewTable("profile", "per-rule cost attribution (traced Bank chase)", "",
		[]string{"units", "wall_ms", "valuations", "ml_calls", "applied", "rejected"})
	t.Metrics = make(map[string]uint64)
	var sum chase.RuleCost
	for _, rc := range rep.RuleProfile {
		t.Set(rc.Rule, "units", float64(rc.Units))
		t.Set(rc.Rule, "wall_ms", float64(rc.Wall.Microseconds())/1000.0)
		t.Set(rc.Rule, "valuations", float64(rc.Valuations))
		t.Set(rc.Rule, "ml_calls", float64(rc.MLCalls))
		t.Set(rc.Rule, "applied", float64(rc.Applied))
		t.Set(rc.Rule, "rejected", float64(rc.Rejected))
		sum.Units += rc.Units
		sum.Wall += rc.Wall
		sum.Valuations += rc.Valuations
		sum.MLCalls += rc.MLCalls
		sum.Applied += rc.Applied
		sum.Rejected += rc.Rejected
	}
	t.Set("Σ", "units", float64(sum.Units))
	t.Set("Σ", "wall_ms", float64(sum.Wall.Microseconds())/1000.0)
	t.Set("Σ", "valuations", float64(sum.Valuations))
	t.Set("Σ", "ml_calls", float64(sum.MLCalls))
	t.Set("Σ", "applied", float64(sum.Applied))
	t.Set("Σ", "rejected", float64(sum.Rejected))
	// Reconcile the Σ row against the run's phase totals.
	if got, want := uint64(sum.Units), reg.CounterValue("chase.units"); got != want {
		return nil, fmt.Errorf("profile: per-rule units sum to %d, phase total is %d", got, want)
	}
	if got, want := uint64(sum.Valuations), reg.CounterValue("chase.valuations"); got != want {
		return nil, fmt.Errorf("profile: per-rule valuations sum to %d, phase total is %d", got, want)
	}
	if got, want := uint64(sum.MLCalls), reg.CounterValue("chase.ml_calls"); got != want {
		return nil, fmt.Errorf("profile: per-rule ml_calls sum to %d, phase total is %d", got, want)
	}
	if got, want := sum.Applied, len(rep.Applied); got != want {
		return nil, fmt.Errorf("profile: per-rule applied sum to %d, report has %d fixes", got, want)
	}
	for _, mc := range rep.MLProfile {
		t.Metrics["ml."+mc.Model+".calls"] = mc.Calls
		t.Metrics["ml."+mc.Model+".wall_ns"] = uint64(mc.Wall)
		t.Metrics["ml."+mc.Model+".cache_hits"] = mc.CacheHits
		t.Metrics["ml."+mc.Model+".cache_misses"] = mc.CacheMisses
	}
	snap := reg.Snapshot()
	t.Metrics["spans.retained"] = uint64(len(snap.Spans))
	t.Metrics["spans.dropped"] = snap.DroppedSpans
	t.Note("Σ row asserted equal to the chase.units/valuations/ml_calls phase counters and the report's fix count")
	t.Note("span tracing was enabled for the run: %d spans retained, %d dropped", len(snap.Spans), snap.DroppedSpans)
	return t, nil
}

// Scale measures chase throughput on the dictionary-encoded hot path at
// 10⁶–10⁸ tuples: the Scale workload (one Events relation, an interned
// equality self-join plus an interned constant rule, null-only errors) is
// chased at four sizes up to cfg.N, publishing a tuples-vs-wallclock
// curve. The total defaults to 10⁷ tuples when cfg.N is left at the
// laptop-scale default; pass -n to move it (CI smoke runs use small -n,
// the 10⁸ configuration is run manually with a MemBudget so the interned
// columns spill to disk instead of residing in memory). ML, blocking and
// predication are off — the workload has no ML predicates, so the
// engine's enumeration and join machinery (the vectorized selection and
// posting-join kernels) is the only thing on the clock. At the smallest
// size the experiment also chases serially and asserts the fix-set
// snapshot is bit-identical to the parallel run's. Excluded from -exp
// all.
func Scale(cfg Config) (*Table, error) {
	total := cfg.N
	if total <= DefaultConfig().N {
		total = 10_000_000
	}
	t := NewTable("scale", "chase throughput at scale (§5.1 interning)", "",
		[]string{"tuples", "ms", "rounds", "valuations", "fixes", "ktuples/s"})
	t.Metrics = make(map[string]uint64)
	for i, n := range []int{total / 8, total / 4, total / 2, total} {
		if n < 1 {
			n = 1
		}
		ds := workload.Scale(workload.Config{N: n, Seed: cfg.Seed})
		env := predicate.NewEnv(ds.DB)
		reg := obs.New()
		opts := chase.DefaultOptions()
		opts.Workers = cfg.Workers
		opts.UseBlocking = false
		opts.Predication = false
		opts.MemBudget = cfg.MemBudget
		opts.Obs = reg
		eng := chase.New(env, ds.Rules, ds.Gamma, opts)
		ms, err := timeIt(func() error {
			_, err := eng.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
		rep := eng.Report()
		applied := len(rep.Applied)
		missing := len(ds.Gold.MissingCells)
		if applied < missing {
			return nil, fmt.Errorf("scale: n=%d applied %d fixes, want at least the %d gold nulls", n, applied, missing)
		}
		if i == 0 {
			// Determinism gate at the smallest size: a serial chase over a
			// fresh environment must land on the bit-identical fix set.
			sOpts := opts
			sOpts.Parallel = false
			sOpts.Obs = obs.New()
			sEng := chase.New(predicate.NewEnv(ds.DB), ds.Rules, ds.Gamma, sOpts)
			if _, err := sEng.Run(); err != nil {
				return nil, err
			}
			if a, b := eng.Truth().Snapshot(), sEng.Truth().Snapshot(); a != b {
				return nil, fmt.Errorf("scale: parallel and serial fix sets diverge at n=%d", n)
			}
		}
		row := fmt.Sprintf("n=%d", n)
		t.Set(row, "tuples", float64(n))
		t.Set(row, "ms", ms)
		t.Set(row, "rounds", float64(len(rep.Trace)))
		t.Set(row, "valuations", float64(reg.CounterValue("chase.valuations")))
		t.Set(row, "fixes", float64(applied))
		if ms > 0 {
			t.Set(row, "ktuples/s", float64(n)/ms)
		}
		for k, v := range reg.Snapshot().Counters {
			t.Metrics[row+"."+k] = v
		}
	}
	t.Note("workers fixed at cfg.Workers; serial-vs-parallel snapshot asserted bit-identical at the smallest size")
	return t, nil
}

// Poly reproduces §5.4's polynomial-expression learning: the stump
// ensemble ranks numeric attributes, LASSO fits the expression, and the
// learned arithmetic (total ≈ amount + fee; price_no_tax ≈ price/rate per
// tax class) detects the injected numerical errors.
func Poly(cfg Config) (*Table, error) {
	t := NewTable("poly", "polynomial expressions (§5.4)", "", []string{"R2", "terms", "detectF1"})
	cases := []struct {
		app, rel, target string
	}{
		{"Bank", "Payment", "total"},
		{"Sales", "SalesOrder", "price_no_tax"},
	}
	for _, c := range cases {
		ds, err := appDataset(c.app, cfg)
		if err != nil {
			return nil, err
		}
		rel := ds.DB.Rel(c.rel)
		opts := discovery.DefaultPolyOptions()
		opts.MinR2 = 0.5 // learned on dirty data
		p, ok := discovery.DiscoverPolynomial(rel, c.target, opts)
		row := c.app + "." + c.target
		if !ok {
			t.SetNA(row, "R2")
			t.SetNA(row, "terms")
			t.SetNA(row, "detectF1")
			continue
		}
		t.Set(row, "R2", p.R2)
		t.Set(row, "terms", float64(len(p.Terms)))
		// Score the expression as an error detector for the target column.
		var prf quality.PRF
		goldCells := ds.Gold.ErrorCells()
		for _, tp := range rel.Tuples {
			violates, okV := p.Violates(rel, tp)
			if !okV {
				continue
			}
			key := quality.CellKey(c.rel, tp.TID, c.target)
			switch {
			case violates && goldCells[key]:
				prf.TP++
			case violates:
				prf.FP++
			case goldCells[key]:
				prf.FN++
			}
		}
		t.Set(row, "detectF1", prf.F1())
		t.Note("%s: %s (tol %.3g)", row, p.String(), p.Tolerance)
	}
	t.Note("price_no_tax varies with the categorical tax_class, so the single global polynomial fits R² but not a per-class tolerance — the CFD-style rule (tpwt-fd) carries that task; total = amount + fee is fully recovered")
	return t, nil
}

func figIDFor(app, kind string) string {
	suffix := map[string]string{"Bank": "a", "Logistics": "b", "Sales": "c"}[app]
	if kind == "detectf1" {
		suffix = map[string]string{"Bank": "d", "Logistics": "e", "Sales": "f"}[app]
	}
	return "fig4" + suffix
}

func systemByName(name string) (baselines.System, error) {
	switch name {
	case "Rock":
		return baselines.Rock(), nil
	case "Rock_noML":
		return baselines.RockNoML(), nil
	case "Rock_seq":
		return baselines.RockSeq(), nil
	case "Rock_noC":
		return baselines.RockNoC(), nil
	case "ES":
		return baselines.NewES(), nil
	case "T5s":
		return baselines.NewT5s(), nil
	case "RB":
		return baselines.NewRB(), nil
	case "SparkSQL":
		return baselines.NewSparkSQL(), nil
	case "Presto":
		return baselines.NewPresto(), nil
	}
	return nil, fmt.Errorf("benchkit: unknown system %q (valid: Rock, Rock_noML, Rock_seq, Rock_noC, ES, T5s, RB, SparkSQL, Presto)", name)
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Table, error) {
	var out []*Table
	run := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	for _, app := range sortedApps {
		if err := run(Fig4Discovery(app, cfg)); err != nil {
			return out, err
		}
	}
	for _, app := range sortedApps {
		if err := run(Fig4DetectF1(app, cfg)); err != nil {
			return out, err
		}
	}
	if err := run(Fig4gDetectTime(cfg)); err != nil {
		return out, err
	}
	if err := run(Fig4hScaleDetect(cfg)); err != nil {
		return out, err
	}
	if err := run(Fig4iCorrectF1(cfg)); err != nil {
		return out, err
	}
	if err := run(Fig4jSalesTasks(cfg)); err != nil {
		return out, err
	}
	if err := run(Fig4kCorrectTime(cfg)); err != nil {
		return out, err
	}
	if err := run(Fig4lScaleCorrect(cfg)); err != nil {
		return out, err
	}
	if err := run(RuleCounts(cfg)); err != nil {
		return out, err
	}
	if err := run(Poly(cfg)); err != nil {
		return out, err
	}
	if err := run(Ablations(cfg)); err != nil {
		return out, err
	}
	if err := run(Predication(cfg)); err != nil {
		return out, err
	}
	if err := run(Steal(cfg)); err != nil {
		return out, err
	}
	if err := run(Faults(cfg)); err != nil {
		return out, err
	}
	if err := run(Profile(cfg)); err != nil {
		return out, err
	}
	return out, nil
}

// ByID dispatches one experiment.
func ByID(id string, cfg Config) (*Table, error) {
	switch id {
	case "fig4a":
		return Fig4Discovery("Bank", cfg)
	case "fig4b":
		return Fig4Discovery("Logistics", cfg)
	case "fig4c":
		return Fig4Discovery("Sales", cfg)
	case "fig4d":
		return Fig4DetectF1("Bank", cfg)
	case "fig4e":
		return Fig4DetectF1("Logistics", cfg)
	case "fig4f":
		return Fig4DetectF1("Sales", cfg)
	case "fig4g":
		return Fig4gDetectTime(cfg)
	case "fig4h":
		return Fig4hScaleDetect(cfg)
	case "fig4i":
		return Fig4iCorrectF1(cfg)
	case "fig4j":
		return Fig4jSalesTasks(cfg)
	case "fig4k":
		return Fig4kCorrectTime(cfg)
	case "fig4l":
		return Fig4lScaleCorrect(cfg)
	case "rules":
		return RuleCounts(cfg)
	case "poly":
		return Poly(cfg)
	case "ablation":
		return Ablations(cfg)
	case "predication":
		return Predication(cfg)
	case "steal":
		return Steal(cfg)
	case "faults":
		return Faults(cfg)
	case "profile":
		return Profile(cfg)
	case "scale":
		return Scale(cfg)
	case "serve":
		return ServeLoad(cfg)
	case "distributed":
		return Distributed(cfg)
	}
	return nil, fmt.Errorf("benchkit: unknown experiment %q (want fig4a..fig4l, rules, poly, ablation, predication, steal, faults, profile, scale, serve, distributed, all)", id)
}
