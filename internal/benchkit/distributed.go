package benchkit

import (
	"context"
	"fmt"
	"time"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/cluster/remote"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/workload"
)

// distReplica builds one engine-input replica: every participant — the
// serial baseline, the coordinator, and each worker — derives identical
// state from the same (app, cfg), which is the lockstep-replication
// precondition the distributed chase rests on.
func distReplica(cfg Config) (*workload.Dataset, chase.Options, error) {
	ds, err := appDataset("Bank", cfg)
	if err != nil {
		return nil, chase.Options{}, err
	}
	ds.SeedGamma(0.5, cfg.Seed+1)
	opts := chase.Options{
		Mode: chase.Unified, Lazy: true, UseBlocking: true,
		Workers: cfg.Workers, Steal: true, MaxRetries: 2, MaxRounds: 30,
		EIDRefs: ds.EIDRefs,
	}
	return ds, opts, nil
}

// Distributed benchmarks the cross-process chase protocol: a serial
// in-process run vs the same chase split across a TCP coordinator and
// worker replicas (full wire protocol — framed round preambles, unit
// assignment, shipped deduction buffers), asserting the distributed fix
// set is bit-identical to serial. Workers here are in-process goroutines
// speaking real TCP through the same RunWorker loop cmd/rockworker runs;
// the remote package's oracle tests and the CI smoke cover genuinely
// separate worker processes.
func Distributed(cfg Config) (*Table, error) {
	t := NewTable("distributed", "cross-process chase: serial vs coordinator + TCP workers", "",
		[]string{"ms", "fixes", "rounds", "workers", "identical"})
	t.Metrics = make(map[string]uint64)

	// Serial baseline.
	ds, opts, err := distReplica(cfg)
	if err != nil {
		return nil, err
	}
	eng := chase.New(ds.BuildEnv(), ds.Rules, ds.Gamma, opts)
	var serialRep *chase.Report
	serialMs, err := timeIt(func() error {
		var runErr error
		serialRep, runErr = eng.Run()
		return runErr
	})
	if err != nil {
		return nil, err
	}
	serialSnap := eng.Truth().Snapshot()
	t.Set("serial", "ms", serialMs)
	t.Set("serial", "fixes", float64(len(serialRep.Applied)))
	t.Set("serial", "rounds", float64(serialRep.Rounds))
	t.Set("serial", "workers", 0)
	t.Set("serial", "identical", 1)

	for _, nWorkers := range []int{2, 3} {
		row := fmt.Sprintf("dist-%dw", nWorkers)
		fp := fmt.Sprintf("benchkit-distributed-%d", nWorkers)
		coord := remote.NewCoordinator(remote.CoordOptions{
			Addr: "127.0.0.1:0", Workers: nWorkers, Fingerprint: fp,
		})
		reg := obs.New()
		coord.SetObs(reg, "chase")
		addr, err := coord.Start()
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		workerErr := make(chan error, nWorkers)
		for i := 0; i < nWorkers; i++ {
			wds, wopts, err := distReplica(cfg)
			if err != nil {
				cancel()
				coord.Close()
				return nil, err
			}
			weng := chase.New(wds.BuildEnv(), wds.Rules, wds.Gamma, wopts)
			go func(i int) {
				workerErr <- remote.RunWorker(ctx, weng, remote.WorkerOptions{
					Coord: addr, Fingerprint: fp,
					Meta: fmt.Sprintf("bench-worker-%d", i),
				})
			}(i)
		}
		if err := coord.WaitWorkers(ctx); err != nil {
			cancel()
			coord.Close()
			return nil, fmt.Errorf("distributed: WaitWorkers: %w", err)
		}

		dds, dopts, err := distReplica(cfg)
		if err != nil {
			cancel()
			coord.Close()
			return nil, err
		}
		dopts.Cluster = coord
		deng := chase.New(dds.BuildEnv(), dds.Rules, dds.Gamma, dopts)
		var distRep *chase.Report
		distMs, err := timeIt(func() error {
			var runErr error
			distRep, runErr = deng.RunCtx(ctx)
			return runErr
		})
		coord.Close() // workers see EOF: normal shutdown
		for i := 0; i < nWorkers; i++ {
			<-workerErr
		}
		cancel()
		if err != nil {
			return nil, fmt.Errorf("distributed: %d-worker run: %w", nWorkers, err)
		}
		identical := deng.Truth().Snapshot() == serialSnap
		if !identical {
			return nil, fmt.Errorf("distributed: %d-worker fix set diverged from serial", nWorkers)
		}
		t.Set(row, "ms", distMs)
		t.Set(row, "fixes", float64(len(distRep.Applied)))
		t.Set(row, "rounds", float64(distRep.Rounds))
		t.Set(row, "workers", float64(nWorkers))
		t.Set(row, "identical", 1)
		for k, v := range reg.Snapshot().Counters {
			t.Metrics[row+"."+k] = v
		}
	}
	t.Note("identical=1 is asserted: truth.FixSet.Snapshot() of every distributed run must equal serial byte-for-byte; the wire cost (JSON frames over loopback per round) dominates at this laptop-scale N")
	return t, nil
}
