// Package crystal simulates Crystal, Rock's distributed file system
// (paper §5.1), in-process: a consistent hash ring assigning data objects
// and compute nodes to positions on a virtual ring (nodes hashed by CRC-32
// of their address), an ETCD-style registry mapping hash codes to nodes, a
// block-partitioned object store with two-level addressing, and the
// work-unit scheduler of §5.2 with cost estimation and work stealing.
//
// Substitution note (DESIGN.md): the real Crystal spans a Kubernetes
// cluster; this in-process version preserves the placement and scheduling
// behaviour — remapping minimality on node churn, block addressing, load
// balancing — which is what the scalability experiments exercise.
package crystal

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Ring is a consistent hash ring. Each node occupies `replicas` virtual
// positions; objects map to the first node clockwise from their hash.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []uint32          // sorted virtual positions
	owner    map[uint32]string // position -> node
	nodes    map[string]bool
}

// NewRing creates a ring with the given number of virtual positions per
// node (16–128 is typical; more positions smooth the distribution).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 32
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint32]string),
		nodes:    make(map[string]bool),
	}
}

// hashNode follows the paper: node addresses hash with standard CRC-32.
func hashNode(addr string, i int) uint32 {
	return crc32.ChecksumIEEE([]byte(fmt.Sprintf("%s#%d", addr, i)))
}

// HashObject hashes a data-object key onto the ring. The paper uses a
// self-defined function based on spectral clustering so that similar
// objects co-locate; we approximate the co-location property by hashing
// the object's cluster prefix (text before the first '/') rather than the
// full key, so callers can group objects via key naming.
func HashObject(key string) uint32 {
	prefix := key
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			prefix = key[:i]
			break
		}
	}
	return crc32.ChecksumIEEE([]byte(prefix))<<8 ^ crc32.ChecksumIEEE([]byte(key))>>24
}

// AddNode registers a node; it reports whether the node was new.
func (r *Ring) AddNode(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[addr] {
		return false
	}
	r.nodes[addr] = true
	for i := 0; i < r.replicas; i++ {
		p := hashNode(addr, i)
		if _, taken := r.owner[p]; taken {
			continue // vanishingly rare collision: first owner keeps it
		}
		r.owner[p] = addr
		r.points = append(r.points, p)
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
	return true
}

// RemoveNode unregisters a node; it reports whether the node existed.
func (r *Ring) RemoveNode(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[addr] {
		return false
	}
	delete(r.nodes, addr)
	keep := r.points[:0]
	for _, p := range r.points {
		if r.owner[p] == addr {
			delete(r.owner, p)
			continue
		}
		keep = append(keep, p)
	}
	r.points = keep
	return true
}

// Owner returns the node owning the object key, or "" when the ring is
// empty.
func (r *Ring) Owner(key string) string {
	return r.OwnerOfHash(HashObject(key))
}

// OwnerOfHash returns the node owning a precomputed hash position.
func (r *Ring) OwnerOfHash(h uint32) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.owner[r.points[i]]
}

// Nodes returns the registered node addresses, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Registry is the ETCD stand-in: a consistent, watchable key-value store
// where the ring's hash-to-node mapping (and any other metadata) is
// registered (paper §5.1).
type Registry struct {
	mu       sync.RWMutex
	kv       map[string]string
	revision int64
	watchers []chan Event
}

// Event is a registry change notification.
type Event struct {
	Key, Value string
	Revision   int64
	Deleted    bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{kv: make(map[string]string)} }

// Put stores a key and notifies watchers; it returns the new revision.
func (g *Registry) Put(key, value string) int64 {
	g.mu.Lock()
	g.revision++
	rev := g.revision
	g.kv[key] = value
	ev := Event{Key: key, Value: value, Revision: rev}
	watchers := append([]chan Event(nil), g.watchers...)
	g.mu.Unlock()
	for _, w := range watchers {
		select {
		case w <- ev:
		default: // slow watcher: drop rather than block the store
		}
	}
	return rev
}

// Get reads a key.
func (g *Registry) Get(key string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.kv[key]
	return v, ok
}

// Delete removes a key and notifies watchers.
func (g *Registry) Delete(key string) bool {
	g.mu.Lock()
	_, ok := g.kv[key]
	if ok {
		g.revision++
		delete(g.kv, key)
	}
	rev := g.revision
	watchers := append([]chan Event(nil), g.watchers...)
	g.mu.Unlock()
	if ok {
		for _, w := range watchers {
			select {
			case w <- Event{Key: key, Revision: rev, Deleted: true}:
			default:
			}
		}
	}
	return ok
}

// Watch returns a channel of future events (buffered; slow consumers may
// miss events, as with a real watch under compaction).
func (g *Registry) Watch() <-chan Event {
	ch := make(chan Event, 64)
	g.mu.Lock()
	g.watchers = append(g.watchers, ch)
	g.mu.Unlock()
	return ch
}

// Keys lists keys with the given prefix, sorted.
func (g *Registry) Keys(prefix string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for k := range g.kv {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
