package crystal

import (
	"sort"
	"sync"
)

// WorkUnit is T = (φ, D_T): a (partial) REE++ paired with a data partition
// (paper §5.2). The scheduler treats it opaquely; RuleID and Part identify
// the pieces, EstCost drives placement, and Run executes it.
type WorkUnit struct {
	ID      int
	RuleID  string
	Part    string // partition key, e.g. "Trans/block3"
	EstCost float64
	Run     func() // executed by a worker
	// RunOn, when set, is invoked instead of Run with the name of the
	// worker actually executing the unit (a stolen unit reports the
	// thief, not the affinity owner) — span tracing attributes work to
	// the lane that really ran it.
	RunOn func(node string)
}

// Exec runs the unit on behalf of node, preferring RunOn when set.
func (u *WorkUnit) Exec(node string) {
	if u.RunOn != nil {
		u.RunOn(node)
		return
	}
	if u.Run != nil {
		u.Run()
	}
}

// Scheduler distributes work units over nodes with the three load-balancing
// strategies of paper §5.2: (1) block-granular partitions, (2) cost
// estimation at generation time, and (3) non-centralised work
// re-assignment — an idle node fetches units from the most loaded peer.
type Scheduler struct {
	// OnSteal, when set, observes every work re-assignment as it happens:
	// thief fetched u from victim's queue. Called outside the scheduler
	// lock; set it before draining (the cluster layer wires it to the
	// observability registry).
	OnSteal func(thief, victim string, u *WorkUnit)

	mu     sync.Mutex
	queues map[string][]*WorkUnit // node -> pending units (max-cost first)
	loads  map[string]float64     // node -> pending cost
	names  []string               // node names, sorted (deterministic scans)
	steals int
}

// NewScheduler creates a scheduler for the given nodes.
func NewScheduler(nodes []string) *Scheduler {
	s := &Scheduler{
		queues: make(map[string][]*WorkUnit, len(nodes)),
		loads:  make(map[string]float64, len(nodes)),
	}
	for _, n := range nodes {
		s.queues[n] = nil
		s.loads[n] = 0
	}
	s.names = make([]string, 0, len(s.queues))
	for n := range s.queues {
		s.names = append(s.names, n)
	}
	sort.Strings(s.names)
	return s
}

// Assign places a unit on the node owning its partition (by consistent
// hash), falling back to the least-loaded node when the owner is unknown.
func (s *Scheduler) Assign(ring *Ring, u *WorkUnit) string {
	node := ring.Owner(u.Part)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[node]; !ok || node == "" {
		node = s.leastLoadedLocked()
	}
	s.queues[node] = append(s.queues[node], u)
	s.loads[node] += u.EstCost
	return node
}

// AssignBalanced ignores placement and puts the unit on the least-loaded
// node; used when partitions have no affinity.
func (s *Scheduler) AssignBalanced(u *WorkUnit) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	node := s.leastLoadedLocked()
	s.queues[node] = append(s.queues[node], u)
	s.loads[node] += u.EstCost
	return node
}

func (s *Scheduler) leastLoadedLocked() string {
	best, bestLoad := "", -1.0
	// Deterministic tie-break by node name (s.names is pre-sorted).
	for _, n := range s.names {
		if bestLoad < 0 || s.loads[n] < bestLoad {
			best, bestLoad = n, s.loads[n]
		}
	}
	return best
}

// Next pops a unit for the node. When the node's own queue is empty and
// stealing is enabled, it fetches the costliest pending unit from the most
// loaded peer (paper §5.2: "when a node finishes its assigned work units,
// it evokes the work manager to fetch work units from other nodes").
func (s *Scheduler) Next(node string, steal bool) *WorkUnit {
	s.mu.Lock()
	if q := s.queues[node]; len(q) > 0 {
		u := q[len(q)-1]
		s.queues[node] = q[:len(q)-1]
		s.loads[node] -= u.EstCost
		s.mu.Unlock()
		return u
	}
	if !steal {
		s.mu.Unlock()
		return nil
	}
	// Find a victim: any peer with pending units qualifies, load is only
	// the tie-break. Selecting on load alone (load > 0) would make peers
	// whose queued units all carry EstCost == 0 unstealable — an idle node
	// would spin while their work sits queued. Strict > keeps the
	// deterministic first-name tie-break of s.names order.
	victim, maxLoad := "", 0.0
	for _, n := range s.names {
		if n == node || len(s.queues[n]) == 0 {
			continue
		}
		if victim == "" || s.loads[n] > maxLoad {
			victim, maxLoad = n, s.loads[n]
		}
	}
	if victim == "" {
		s.mu.Unlock()
		return nil
	}
	// Steal the costliest unit (front of queue after sort-on-assign order
	// is approximated by scanning).
	q := s.queues[victim]
	bi := 0
	for i, u := range q {
		if u.EstCost > q[bi].EstCost {
			bi = i
		}
	}
	u := q[bi]
	s.queues[victim] = append(q[:bi], q[bi+1:]...)
	s.loads[victim] -= u.EstCost
	s.steals++
	onSteal := s.OnSteal
	s.mu.Unlock()
	if onSteal != nil {
		onSteal(node, victim, u)
	}
	return u
}

// AssignExcluding places the unit on the least-loaded node not in
// exclude, falling back to the global least-loaded node when every node
// is excluded (e.g. a single-node cluster retrying a failed unit). The
// fault-tolerance layer uses it to move a unit away from the node it
// panicked on, and to re-home the queue of a killed node.
func (s *Scheduler) AssignExcluding(u *WorkUnit, exclude map[string]bool) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestLoad := "", -1.0
	for _, n := range s.names {
		if exclude[n] {
			continue
		}
		if bestLoad < 0 || s.loads[n] < bestLoad {
			best, bestLoad = n, s.loads[n]
		}
	}
	if best == "" {
		best = s.leastLoadedLocked()
	}
	s.queues[best] = append(s.queues[best], u)
	s.loads[best] += u.EstCost
	return best
}

// Reclaim removes and returns every unit still pending on the node. The
// fault-tolerance layer reclaims a killed node's queue to reassign it to
// the survivors, and a cancelled drain reclaims every queue so the next
// drain does not run stale units.
func (s *Scheduler) Reclaim(node string) []*WorkUnit {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[node]
	s.queues[node] = nil
	s.loads[node] = 0
	return q
}

// Pending reports the number of queued units across nodes.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// Steals reports how many units were re-assigned by stealing.
func (s *Scheduler) Steals() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steals
}

// Load reports a node's pending estimated cost.
func (s *Scheduler) Load(node string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads[node]
}
