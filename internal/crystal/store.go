package crystal

import (
	"fmt"
	"sort"
	"sync"
)

// Block is one storage block: data objects at each node are partitioned
// into blocks stored as a linked list (paper §5.1). Payloads are opaque
// byte slices; relations serialise through data.WriteCSV.
type Block struct {
	ID      int
	Key     string // owning object key
	Seq     int    // position within the object
	Payload []byte
	next    *Block
}

// Store is the block-partitioned object store with two-level addressing:
// the first level (always in memory after start) maps object keys to the
// owning node; the second maps (node, key) to the block list.
type Store struct {
	mu        sync.RWMutex
	ring      *Ring
	registry  *Registry
	blockSize int
	// level-1: object -> node (also mirrored in the registry)
	placement map[string]string
	// level-2: node -> key -> head block
	blocks  map[string]map[string]*Block
	nextBlk int
	// transfer counters for tests/benches
	remoteFetches int
}

// NewStore creates a store over a ring and registry with the given block
// size in bytes.
func NewStore(ring *Ring, registry *Registry, blockSize int) *Store {
	if blockSize <= 0 {
		blockSize = 1 << 16
	}
	return &Store{
		ring:      ring,
		registry:  registry,
		blockSize: blockSize,
		placement: make(map[string]string),
		blocks:    make(map[string]map[string]*Block),
	}
}

// Put stores an object, splitting it into blocks on the owning node, and
// registers the placement.
func (s *Store) Put(key string, payload []byte) (node string, err error) {
	node = s.ring.Owner(key)
	if node == "" {
		return "", fmt.Errorf("crystal: no nodes in ring")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nm := s.blocks[node]
	if nm == nil {
		nm = make(map[string]*Block)
		s.blocks[node] = nm
	}
	var head, tail *Block
	for seq, off := 0, 0; off < len(payload) || seq == 0; seq++ {
		end := off + s.blockSize
		if end > len(payload) {
			end = len(payload)
		}
		b := &Block{ID: s.nextBlk, Key: key, Seq: seq, Payload: append([]byte(nil), payload[off:end]...)}
		s.nextBlk++
		if head == nil {
			head = b
		} else {
			tail.next = b
		}
		tail = b
		off = end
		if off >= len(payload) {
			break
		}
	}
	nm[key] = head
	s.placement[key] = node
	s.registry.Put("placement/"+key, node)
	return node, nil
}

// Get fetches an object. from names the requesting node; a fetch from a
// non-owning node counts as a remote fetch (the two-level addressing
// lookup plus cross-node message of paper §5.1).
func (s *Store) Get(key, from string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.placement[key]
	if !ok {
		return nil, fmt.Errorf("crystal: object %q not found", key)
	}
	if node != from {
		s.remoteFetches++
	}
	var out []byte
	for b := s.blocks[node][key]; b != nil; b = b.next {
		out = append(out, b.Payload...)
	}
	return out, nil
}

// Owner returns the placement of an object.
func (s *Store) Owner(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.placement[key]
	return n, ok
}

// Keys lists stored object keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.placement))
	for k := range s.placement {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RemoteFetches reports cross-node fetches since creation.
func (s *Store) RemoteFetches() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.remoteFetches
}

// BlocksOf returns the number of blocks an object occupies.
func (s *Store) BlocksOf(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node, ok := s.placement[key]
	if !ok {
		return 0
	}
	n := 0
	for b := s.blocks[node][key]; b != nil; b = b.next {
		n++
	}
	return n
}

// Rebalance re-places every object whose ring owner changed (after node
// churn); it returns the number of objects moved. Consistent hashing keeps
// this small relative to the object count.
func (s *Store) Rebalance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	moved := 0
	for key, cur := range s.placement {
		want := s.ring.Owner(key)
		if want == "" || want == cur {
			continue
		}
		head := s.blocks[cur][key]
		delete(s.blocks[cur], key)
		nm := s.blocks[want]
		if nm == nil {
			nm = make(map[string]*Block)
			s.blocks[want] = nm
		}
		nm[key] = head
		s.placement[key] = want
		s.registry.Put("placement/"+key, want)
		moved++
	}
	return moved
}
