package crystal

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
)

func spillFixture(t *testing.T, n int) *data.Relation {
	t.Helper()
	rel := data.NewRelation(must.Schema("Ev",
		data.Attribute{Name: "sku", Type: data.TString},
		data.Attribute{Name: "qty", Type: data.TInt},
	))
	for i := 0; i < n; i++ {
		sku := data.S(fmt.Sprintf("S%d", i%97))
		if i%41 == 0 {
			sku = data.Null(data.TString)
		}
		rel.Insert(fmt.Sprintf("e%d", i), sku, data.I(int64(i%13)))
	}
	return rel
}

// assertSameColumn checks a spilled/unspilled column agrees with the
// plain in-memory build on every accessor.
func assertSameColumn(t *testing.T, rel *data.Relation, got, want *Column) {
	t.Helper()
	if got.Dict.Size() != want.Dict.Size() {
		t.Fatalf("dict size %d != %d", got.Dict.Size(), want.Dict.Size())
	}
	gv, wv := got.IDVec(), want.IDVec()
	if len(gv) != len(wv) {
		t.Fatalf("IDVec length %d != %d", len(gv), len(wv))
	}
	for i := range wv {
		if gv[i] != wv[i] {
			t.Fatalf("IDVec[%d] = %d != %d", i, gv[i], wv[i])
		}
	}
	for _, tp := range rel.Tuples {
		g, gok := got.IDAt(tp.TID)
		w, wok := want.IDAt(tp.TID)
		if g != w || gok != wok {
			t.Fatalf("IDAt(%d) = (%d,%v) != (%d,%v)", tp.TID, g, gok, w, wok)
		}
	}
	for id := 0; id < want.Dict.Size(); id++ {
		gp := got.PostingList(ValueID(id))
		wp := want.PostingList(ValueID(id))
		if len(gp) != len(wp) {
			t.Fatalf("PostingList(%d) length %d != %d", id, len(gp), len(wp))
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("PostingList(%d)[%d] = %d != %d", id, i, gp[i], wp[i])
			}
		}
		if err := SortPostingCheck(gp); err != nil {
			t.Fatalf("posting %d: %v", id, err)
		}
	}
	if got.Complete(rel) != want.Complete(rel) {
		t.Fatalf("Complete disagrees: %v != %v", got.Complete(rel), want.Complete(rel))
	}
}

func TestBuildColumnSpilledMatchesResident(t *testing.T) {
	rel := spillFixture(t, 2000)
	want, err := BuildColumn(rel, "sku")
	if err != nil {
		t.Fatal(err)
	}
	for _, force := range []bool{false, true} {
		name := "mmap"
		if force {
			name = "readat"
		}
		t.Run(name, func(t *testing.T) {
			got, err := BuildColumnSpilled(rel, "sku", SpillOptions{Dir: t.TempDir(), ForceReadAt: force})
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			if !got.Spilled() {
				t.Fatal("expected a spilled column")
			}
			if got.SpillBytes() <= 0 {
				t.Fatal("expected a non-empty spill block")
			}
			if !got.Complete(rel) {
				t.Fatal("freshly built column over a delete-free relation must be Complete")
			}
			assertSameColumn(t, rel, got, want)
		})
	}
}

func TestSpillUnspillRoundTrip(t *testing.T) {
	rel := spillFixture(t, 1500)
	want, _ := BuildColumn(rel, "sku")
	col, _ := BuildColumn(rel, "sku")
	resident := col.MemBytes()
	n, err := col.Spill(SpillOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || !col.Spilled() {
		t.Fatal("Spill must move the column into a block")
	}
	if col.MemBytes() >= resident {
		t.Fatalf("spilled MemBytes %d must drop below resident %d", col.MemBytes(), resident)
	}
	assertSameColumn(t, rel, col, want) // readable while spilled
	if err := col.Unspill(); err != nil {
		t.Fatal(err)
	}
	if col.Spilled() {
		t.Fatal("Unspill must clear the block")
	}
	assertSameColumn(t, rel, col, want)
}

// TestRefreshAfterSpill verifies the Refresh-on-spilled contract: the
// block reloads first, then the dirty TIDs re-intern — same result as a
// never-spilled column refreshed the same way.
func TestRefreshAfterSpill(t *testing.T) {
	rel := spillFixture(t, 1200)
	col, err := BuildColumnSpilled(rel, "sku", SpillOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := BuildColumn(rel, "sku")

	dirty := map[int]bool{}
	for i := 0; i < 40; i++ {
		tid := rel.Tuples[i*7].TID
		rel.SetValue(tid, "sku", data.S(fmt.Sprintf("NEW%d", i%5)))
		dirty[tid] = true
	}
	col.Refresh(rel, dirty)
	oracle.Refresh(rel, dirty)
	if col.Spilled() {
		t.Fatal("Refresh must unspill")
	}
	assertSameColumn(t, rel, col, oracle)
}

// TestRefreshEmptiesPostingBucket moves every carrier of one value to
// another: the vacated bucket must come back empty with no stale TIDs,
// the receiving bucket stays sorted, and dictionary lookups of the
// vacated value yield an empty posting view.
func TestRefreshEmptiesPostingBucket(t *testing.T) {
	rel := data.NewRelation(must.Schema("R", data.Attribute{Name: "a", Type: data.TString}))
	for i := 0; i < 30; i++ {
		v := "keep"
		if i%3 == 0 {
			v = "gone"
		}
		rel.Insert(fmt.Sprintf("e%d", i), data.S(v))
	}
	cs, err := BuildColumnStore(rel)
	if err != nil {
		t.Fatal(err)
	}
	col := cs.Columns["a"]
	goneID, ok := col.Dict.ID(data.S("gone"))
	if !ok || len(col.PostingList(goneID)) == 0 {
		t.Fatal("fixture must intern 'gone' with carriers")
	}
	dirty := map[int]bool{}
	for _, tp := range rel.Tuples {
		if tp.Values[0].Equal(data.S("gone")) {
			rel.SetValue(tp.TID, "a", data.S("keep"))
			dirty[tp.TID] = true
		}
	}
	cs.Refresh(dirty)

	if p := col.PostingList(goneID); len(p) != 0 {
		t.Fatalf("vacated bucket still holds %v", p)
	}
	if view := cs.TIDsView("a", data.S("gone")); view != nil {
		t.Fatalf("TIDsView of the vacated value must be nil, got %v", view)
	}
	keep := cs.TIDsView("a", data.S("keep"))
	if len(keep) != rel.Len() {
		t.Fatalf("receiving bucket has %d TIDs, want every one of %d", len(keep), rel.Len())
	}
	if err := SortPostingCheck(keep); err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples {
		id, ok := col.IDAt(tp.TID)
		if !ok || id == goneID {
			t.Fatalf("TID %d still maps to the vacated id", tp.TID)
		}
	}
}

func TestCompleteTracksHolesAndInserts(t *testing.T) {
	rel := spillFixture(t, 100)
	col, _ := BuildColumn(rel, "sku")
	if !col.Complete(rel) {
		t.Fatal("fresh build must be Complete")
	}
	// An insert after the build leaves the new TID unseen.
	rel.Insert("late", data.S("S1"), data.I(1))
	if col.Complete(rel) {
		t.Fatal("column must not be Complete after an unseen insert")
	}
	col.Refresh(rel, map[int]bool{rel.Tuples[len(rel.Tuples)-1].TID: true})
	if !col.Complete(rel) {
		t.Fatal("refreshing the inserted TID must restore completeness")
	}
	// A delete leaves a stale dense slot but no hole — the TID is simply
	// no longer live; completeness is about coverage of assigned TIDs.
	tid := rel.Tuples[0].TID
	rel.Delete(tid)
	if !col.Complete(rel) {
		t.Fatal("Complete tracks assigned-TID coverage, not liveness")
	}
}
