package crystal

// Vectorized selection and sorted-set kernels for the interned hot path
// (paper §5.1 "crystal blocks"): the executor evaluates constant/null
// predicates as tight loops over dense []ValueID vectors producing
// selection bitmaps, and enumerates equality joins from the sorted
// posting lists via galloping intersection — block-at-a-time work instead
// of the branchy tuple-at-a-time loops the dense layout replaced.
//
// All intersection kernels assume strictly ascending inputs (posting
// lists and partition TID arrays are sets ordered by TID). Positions are
// int32: a single relation stays below 2³¹ tuples by the ValueID design
// (uint32 ids at 10⁷–10⁸ tuples).

// BitmapWords returns the number of uint64 words covering n positions.
func BitmapWords(n int) int { return (n + 63) / 64 }

// BitmapSetAll sets the first n bits and clears the tail of the last
// word, so population counts over whole words stay exact.
func BitmapSetAll(bits []uint64, n int) {
	full := n / 64
	for w := 0; w < full; w++ {
		bits[w] = ^uint64(0)
	}
	if rest := n % 64; rest > 0 {
		bits[full] = (uint64(1) << uint(rest)) - 1
	}
}

// BitmapClearAll zeroes every word.
func BitmapClearAll(bits []uint64) {
	for w := range bits {
		bits[w] = 0
	}
}

// SelectEq narrows the selection to positions whose id equals target:
// bits &= (ids == target), evaluated word-at-a-time. len(bits) must cover
// len(ids).
func SelectEq(bits []uint64, ids []ValueID, target ValueID) {
	n := len(ids)
	for base, w := 0, 0; base < n; base, w = base+64, w+1 {
		end := base + 64
		if end > n {
			end = n
		}
		var m uint64
		for i := base; i < end; i++ {
			if ids[i] == target {
				m |= 1 << uint(i-base)
			}
		}
		bits[w] &= m
	}
}

// SelectNe drops positions whose id equals target: bits &^= (ids ==
// target). Composing SelectNe over several targets (the constant and the
// null id) evaluates a ≠ predicate without branches per conjunct.
func SelectNe(bits []uint64, ids []ValueID, target ValueID) {
	n := len(ids)
	for base, w := 0, 0; base < n; base, w = base+64, w+1 {
		end := base + 64
		if end > n {
			end = n
		}
		var m uint64
		for i := base; i < end; i++ {
			if ids[i] == target {
				m |= 1 << uint(i-base)
			}
		}
		bits[w] &^= m
	}
}

// gallopGE returns the smallest index i in s[lo:] with s[i] >= x:
// exponential probing from lo, then binary search inside the located
// range. O(log d) where d is the distance from lo — the frontier-driven
// cost that makes intersecting a short posting list against a long
// partition linear in the short side.
func gallopGE(s []int, x, lo int) int {
	n := len(s)
	if lo >= n || s[lo] >= x {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < n && s[hi] < x {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	// binary search in (lo, hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// IntersectSorted appends to dst the values common to a and b (both
// strictly ascending) and returns the extended slice. The shorter side
// drives: when the lengths are imbalanced the kernel gallops through the
// longer side, otherwise it merge-walks.
func IntersectSorted(dst, a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 8*len(a) {
		lo := 0
		for _, x := range a {
			lo = gallopGE(b, x, lo)
			if lo == len(b) {
				break
			}
			if b[lo] == x {
				dst = append(dst, x)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectPositions appends to dst the positions p in hay (strictly
// ascending) whose value also occurs in needles (strictly ascending), in
// ascending position order. The executor uses it to turn a posting list
// (needles) into a selection over a partition's TID array (hay) — the
// resulting positions index the partition's tuple slice directly, so
// matched tuples materialize without any per-tuple map probe.
func IntersectPositions(dst []int32, needles, hay []int) []int32 {
	if len(needles) == 0 || len(hay) == 0 {
		return dst
	}
	switch {
	case len(hay) >= 8*len(needles):
		// Short needle set against a long partition: gallop the frontier.
		lo := 0
		for _, x := range needles {
			lo = gallopGE(hay, x, lo)
			if lo == len(hay) {
				break
			}
			if hay[lo] == x {
				dst = append(dst, int32(lo))
				lo++
			}
		}
	case len(needles) >= 8*len(hay):
		// Long needle set (a dense posting) against a short partition:
		// walk the partition, gallop through the needles.
		lo := 0
		for p, x := range hay {
			lo = gallopGE(needles, x, lo)
			if lo == len(needles) {
				break
			}
			if needles[lo] == x {
				dst = append(dst, int32(p))
				lo++
			}
		}
	default:
		i, j := 0, 0
		for i < len(needles) && j < len(hay) {
			switch {
			case needles[i] < hay[j]:
				i++
			case needles[i] > hay[j]:
				j++
			default:
				dst = append(dst, int32(j))
				i++
				j++
			}
		}
	}
	return dst
}
