package crystal

import (
	"math/rand"
	"sort"
	"testing"
)

// BenchmarkSelectBitmap times the equality-selection kernel over a 1M-id
// vector at 1% selectivity — the inner loop of vectorized constant
// pushdown.
func BenchmarkSelectBitmap(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(1))
	ids := make([]ValueID, n)
	for i := range ids {
		ids[i] = ValueID(rng.Intn(100))
	}
	bits := make([]uint64, BitmapWords(n))
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BitmapSetAll(bits, n)
		SelectEq(bits, ids, 7)
	}
}

// BenchmarkPostingIntersect times the galloping sorted intersection on
// the imbalanced shape posting-probe joins hit: a short posting list
// against a large partition TID array.
func BenchmarkPostingIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	hay := make([]int, 1<<20)
	for i := range hay {
		hay[i] = i * 2
	}
	needles := make([]int, 1024)
	for i := range needles {
		needles[i] = rng.Intn(1 << 21)
	}
	seen := map[int]bool{}
	out := needles[:0]
	for _, x := range needles {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	needles = out
	sort.Ints(needles)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectPositions(dst[:0], needles, hay)
	}
}
