package crystal

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/rockclean/rock/internal/data"
)

// Dictionary maps attribute values to unique ids (paper §5.1: Crystal
// "transforms attribute values to unique ids"). Ids are assigned in sorted
// value order, so similar values receive nearby ids and the
// column-oriented copy gathers them together.
type Dictionary struct {
	ids    map[string]int
	values []data.Value
}

// BuildDictionary builds the dictionary of one column's distinct values.
func BuildDictionary(rel *data.Relation, attr string) (*Dictionary, error) {
	ai := rel.Schema.Index(attr)
	if ai < 0 {
		return nil, fmt.Errorf("crystal: %s has no attribute %q", rel.Schema.Name, attr)
	}
	seen := make(map[string]data.Value)
	for _, t := range rel.Tuples {
		v := t.Values[ai]
		seen[v.Key()] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	d := &Dictionary{ids: make(map[string]int, len(keys))}
	for i, k := range keys {
		d.ids[k] = i
		d.values = append(d.values, seen[k])
	}
	return d, nil
}

// ID returns the id of a value; ok is false for unseen values.
func (d *Dictionary) ID(v data.Value) (int, bool) {
	id, ok := d.ids[v.Key()]
	return id, ok
}

// Value returns the value of an id.
func (d *Dictionary) Value(id int) (data.Value, bool) {
	if id < 0 || id >= len(d.values) {
		return data.Value{}, false
	}
	return d.values[id], true
}

// Size returns the number of distinct values.
func (d *Dictionary) Size() int { return len(d.values) }

// Column is the column-oriented copy of one attribute: dictionary ids per
// TID plus the posting lists that gather equal values together.
type Column struct {
	Attr string
	Dict *Dictionary
	// IDs maps tuple TID to value id.
	IDs map[int]int
	// Postings maps value id to the sorted TIDs carrying it — the
	// "similar values gathered together" layout that accelerates hash
	// joins and blocking.
	Postings [][]int
}

// ColumnStore is the column-oriented copy of a relation (the row-oriented
// copy is the relation itself).
type ColumnStore struct {
	Rel     string
	Columns map[string]*Column
}

// BuildColumnStore encodes every attribute of the relation.
func BuildColumnStore(rel *data.Relation) (*ColumnStore, error) {
	cs := &ColumnStore{Rel: rel.Schema.Name, Columns: make(map[string]*Column)}
	for _, a := range rel.Schema.Attrs {
		dict, err := BuildDictionary(rel, a.Name)
		if err != nil {
			return nil, err
		}
		ai := rel.Schema.Index(a.Name)
		col := &Column{Attr: a.Name, Dict: dict, IDs: make(map[int]int, rel.Len()), Postings: make([][]int, dict.Size())}
		for _, t := range rel.Tuples {
			id, _ := dict.ID(t.Values[ai])
			col.IDs[t.TID] = id
			col.Postings[id] = append(col.Postings[id], t.TID)
		}
		for _, p := range col.Postings {
			sort.Ints(p)
		}
		cs.Columns[a.Name] = col
	}
	return cs, nil
}

// TIDsWithValue returns the tuples carrying value v in attr, sorted.
func (cs *ColumnStore) TIDsWithValue(attr string, v data.Value) []int {
	col := cs.Columns[attr]
	if col == nil {
		return nil
	}
	id, ok := col.Dict.ID(v)
	if !ok {
		return nil
	}
	return col.Postings[id]
}

// StoreRelation serialises a relation into the block store under key
// (CSV payload split into blocks); the owning node is returned.
func StoreRelation(st *Store, key string, rel *data.Relation) (string, error) {
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, rel); err != nil {
		return "", err
	}
	return st.Put(key, buf.Bytes())
}

// LoadRelation fetches and parses a relation stored by StoreRelation. from
// names the requesting node (cross-node fetches are counted).
func LoadRelation(st *Store, key, name, from string) (*data.Relation, error) {
	payload, err := st.Get(key, from)
	if err != nil {
		return nil, err
	}
	return data.ReadCSV(bytes.NewReader(payload), name)
}
