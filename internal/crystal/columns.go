package crystal

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/rockclean/rock/internal/data"
)

// ValueID is an interned attribute value id (paper §5.1: Crystal
// "transforms attribute values to unique ids"). Ids fit uint32 so the
// dense per-column layout stays 4 bytes per tuple at 10⁷-tuple scale.
type ValueID = uint32

// NoValue marks a TID slot with no interned value (a TID the column has
// never seen — deleted, out of range, or inserted after the last refresh).
const NoValue ValueID = ^ValueID(0)

// Dictionary maps attribute values to unique ids. Ids are assigned in
// sorted value order at build time, so similar values receive nearby ids
// and the column-oriented copy gathers them together; values interned
// later (incremental inserts) append in arrival order — id stability wins
// over sortedness once the dictionary is live. Lookups key on
// data.Value.Key(), which canonicalises numerics, so interning agrees
// with Value.Equal (I(5), F(5) and TS(5) share one id).
type Dictionary struct {
	ids    map[string]ValueID
	values []data.Value
	nullID ValueID // id of the null entry; NoValue when the column has none
}

// NewDictionary creates an empty dictionary (values intern on demand).
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]ValueID), nullID: NoValue}
}

// BuildDictionary builds the dictionary of one column's distinct values.
func BuildDictionary(rel *data.Relation, attr string) (*Dictionary, error) {
	d, _, err := buildEncoded(rel, attr)
	return d, err
}

// buildEncoded is the shared single-pass build behind BuildDictionary,
// BuildColumn and BuildColumnSpilled: each tuple's value keys exactly
// once, distinct values collect in first-sight order, ids re-rank into
// sorted value order, and the per-tuple id assignment (parallel to
// rel.Tuples) comes back with the dictionary so callers never pay a
// second Key-and-probe pass over the data.
func buildEncoded(rel *data.Relation, attr string) (*Dictionary, []ValueID, error) {
	ai := rel.Schema.Index(attr)
	if ai < 0 {
		return nil, nil, fmt.Errorf("crystal: %s has no attribute %q", rel.Schema.Name, attr)
	}
	sizeHint := 16 + len(rel.Tuples)/8
	firstSight := make(map[string]ValueID, sizeHint)
	keys := make([]string, 0, sizeHint)
	vals := make([]data.Value, 0, sizeHint)
	tup := make([]ValueID, len(rel.Tuples))
	// Run cache: grouped or sorted data repeats values back to back
	// (Equal implies Key-equal), so a run costs one Equal instead of a
	// Key allocation plus a map probe per tuple.
	var prev data.Value
	prevID := NoValue
	for i, t := range rel.Tuples {
		v := t.Values[ai]
		if prevID != NoValue && v.Equal(prev) {
			tup[i] = prevID
			continue
		}
		k := v.Key()
		id, ok := firstSight[k]
		if !ok {
			id = ValueID(len(vals))
			firstSight[k] = id
			keys = append(keys, k)
			vals = append(vals, v)
		}
		tup[i] = id
		prev, prevID = v, id
	}
	// Sorted-order id assignment: true value order (Compare), key text as
	// the deterministic tie-break for incomparable kinds. Sorting a
	// permutation of first-sight ids keeps the comparator map-free.
	perm := make([]ValueID, len(vals))
	for i := range perm {
		perm[i] = ValueID(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		a, b := perm[i], perm[j]
		c := vals[a].Compare(vals[b])
		if c != 0 {
			return c < 0
		}
		return keys[a] < keys[b]
	})
	// The first-sight map becomes the dictionary's map: re-ranking its
	// ids in place skips a whole second build (hash, rehash, key copies)
	// over every distinct value.
	rank := make([]ValueID, len(vals))
	sortedVals := make([]data.Value, len(vals))
	d := &Dictionary{ids: firstSight, values: sortedVals, nullID: NoValue}
	for newID, old := range perm {
		rank[old] = ValueID(newID)
		sortedVals[newID] = vals[old]
		if vals[old].IsNull() {
			d.nullID = ValueID(newID)
		}
	}
	for k, id := range firstSight {
		firstSight[k] = rank[id]
	}
	for i, id := range tup {
		tup[i] = rank[id]
	}
	return d, tup, nil
}

func (d *Dictionary) intern(key string, v data.Value) ValueID {
	if id, ok := d.ids[key]; ok {
		return id
	}
	id := ValueID(len(d.values))
	d.ids[key] = id
	d.values = append(d.values, v)
	if v.IsNull() {
		d.nullID = id
	}
	return id
}

// Intern returns v's id, assigning the next free id on first sight.
// Appended ids break the sorted-order property but never invalidate
// existing ids — equality comparisons stay exact, range pruning must not
// rely on id order after the first Intern. Not safe for concurrent use.
func (d *Dictionary) Intern(v data.Value) ValueID { return d.intern(v.Key(), v) }

// ID returns the id of a value; ok is false for unseen values.
func (d *Dictionary) ID(v data.Value) (ValueID, bool) {
	id, ok := d.ids[v.Key()]
	return id, ok
}

// NullID returns the id of the column's null entry; ok is false when no
// null value was interned.
func (d *Dictionary) NullID() (ValueID, bool) { return d.nullID, d.nullID != NoValue }

// Value returns the value of an id.
func (d *Dictionary) Value(id ValueID) (data.Value, bool) {
	if int(id) >= len(d.values) {
		return data.Value{}, false
	}
	return d.values[id], true
}

// Size returns the number of distinct values.
func (d *Dictionary) Size() int { return len(d.values) }

// Column is the column-oriented copy of one attribute: a dense slice of
// dictionary ids indexed directly by TID (TIDs are assigned sequentially
// by Relation.Insert), plus the posting lists that gather equal values
// together. The dense layout replaces the old map[int]int: at 10⁶–10⁷
// tuples an id read is one bounds-checked slice index instead of a hashed
// map probe, and equality predicates compare uint32s with zero
// allocations.
type Column struct {
	Attr string
	Dict *Dictionary
	// IDs maps TID → value id; NoValue marks TIDs the column has no tuple
	// for (holes from deletions, or inserts after the last Refresh).
	// Access via IDVec/IDAt — a spilled column keeps this nil.
	IDs []ValueID
	// Postings maps value id → sorted TIDs carrying it — the "similar
	// values gathered together" layout that accelerates hash joins and
	// blocking. Indexed by dictionary id. Access via PostingList — a
	// spilled column keeps this nil.
	Postings [][]int

	// holes counts NoValue entries in IDs: zero holes plus full TID
	// coverage means no tuple can be unseen (Complete), which lets the
	// executor's posting-driven paths skip per-tuple fallback scans.
	holes int
	// spill, when set, holds the column's storage in a flat on-disk
	// block (spill.go); IDs/Postings are nil until Unspill.
	spill *spillFile
}

// BuildColumn encodes one attribute of a relation.
func BuildColumn(rel *data.Relation, attr string) (*Column, error) {
	dict, tup, err := buildEncoded(rel, attr)
	if err != nil {
		return nil, err
	}
	n := rel.NextTID()
	ids := make([]ValueID, n)
	for i := range ids {
		ids[i] = NoValue
	}
	// Counting sort into one shared backing array: postings come out as
	// adjacent subslices (capacity-clamped, so a Refresh append copies
	// out instead of clobbering a neighbour), and because rel.Tuples is
	// TID-ascending each bucket fills already sorted — one allocation
	// replaces per-bucket append churn and the per-bucket sort pass.
	counts := make([]int, dict.Size()+1)
	asc, last := true, -1
	for i, t := range rel.Tuples {
		if t.TID >= len(ids) { // defensive: TIDs past NextTID
			grown := make([]ValueID, t.TID+1)
			copy(grown, ids)
			for j := len(ids); j < len(grown); j++ {
				grown[j] = NoValue
			}
			ids = grown
		}
		ids[t.TID] = tup[i]
		counts[tup[i]+1]++
		if t.TID <= last {
			asc = false
		}
		last = t.TID
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	flat := make([]int, len(rel.Tuples))
	cursor := append([]int(nil), counts[:dict.Size()]...)
	for i, t := range rel.Tuples {
		id := tup[i]
		flat[cursor[id]] = t.TID
		cursor[id]++
	}
	post := make([][]int, dict.Size())
	for id := range post {
		post[id] = flat[counts[id]:counts[id+1]:counts[id+1]]
		if !asc {
			sort.Ints(post[id])
		}
	}
	return &Column{Attr: attr, Dict: dict, IDs: ids, Postings: post, holes: len(ids) - len(rel.Tuples)}, nil
}

// setID stores id at tid, growing the dense slice with NoValue holes and
// keeping the hole count (the Complete invariant) exact.
func (c *Column) setID(tid int, id ValueID) {
	for len(c.IDs) <= tid {
		c.IDs = append(c.IDs, NoValue)
		c.holes++
	}
	if c.IDs[tid] == NoValue {
		if id != NoValue {
			c.holes--
		}
	} else if id == NoValue {
		c.holes++
	}
	c.IDs[tid] = id
}

// IDAt returns the interned id of the tuple's value; ok is false when the
// column holds no entry for the TID (the caller should fall back to the
// row-oriented value). Works on spilled columns through the block view.
func (c *Column) IDAt(tid int) (ValueID, bool) {
	ids := c.IDs
	if c.spill != nil {
		ids = c.spill.ids
	}
	if tid < 0 || tid >= len(ids) || ids[tid] == NoValue {
		return NoValue, false
	}
	return ids[tid], true
}

// Refresh re-interns the raw values of the given TIDs (nil: every tuple),
// absorbing in-place updates and inserts since the column was built. New
// values intern with appended ids; postings stay sorted.
func (c *Column) Refresh(rel *data.Relation, tids map[int]bool) {
	ai := rel.Schema.Index(c.Attr)
	if ai < 0 {
		return
	}
	// A spilled block is immutable: reload it into memory first. The
	// caller's budget accounting treats a refresh as a reload.
	c.Unspill()
	for _, t := range rel.Tuples {
		if tids != nil && !tids[t.TID] {
			continue
		}
		id := c.Dict.Intern(t.Values[ai])
		for int(id) >= len(c.Postings) {
			c.Postings = append(c.Postings, nil)
		}
		if old, ok := c.IDAt(t.TID); ok {
			if old == id {
				continue
			}
			c.Postings[old] = removeSorted(c.Postings[old], t.TID)
		}
		c.setID(t.TID, id)
		c.Postings[id] = insertSorted(c.Postings[id], t.TID)
	}
}

func removeSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// ColumnStore is the column-oriented copy of a relation (the row-oriented
// copy is the relation itself) — the per-relation interning layer.
type ColumnStore struct {
	Rel     string
	Columns map[string]*Column

	rel *data.Relation // source relation, for Refresh
}

// BuildColumnStore encodes every attribute of the relation.
func BuildColumnStore(rel *data.Relation) (*ColumnStore, error) {
	cs := &ColumnStore{Rel: rel.Schema.Name, Columns: make(map[string]*Column), rel: rel}
	for _, a := range rel.Schema.Attrs {
		col, err := BuildColumn(rel, a.Name)
		if err != nil {
			return nil, err
		}
		cs.Columns[a.Name] = col
	}
	return cs, nil
}

// Refresh re-interns the given TIDs (nil: all) across every column.
func (cs *ColumnStore) Refresh(tids map[int]bool) {
	for _, col := range cs.Columns {
		col.Refresh(cs.rel, tids)
	}
}

// TIDsWithValue returns the tuples carrying value v in attr, sorted. The
// result is a defensive copy: callers may append, sort or mutate it
// without corrupting the store's posting lists.
func (cs *ColumnStore) TIDsWithValue(attr string, v data.Value) []int {
	view := cs.TIDsView(attr, v)
	if view == nil {
		return nil
	}
	return append([]int(nil), view...)
}

// TIDsView is the allocation-free counterpart of TIDsWithValue for
// executor-internal use: it returns the posting list itself (sorted,
// possibly a view into a spilled block). The result is strictly
// read-only and must not be retained across a Refresh; external callers
// wanting an owned slice use TIDsWithValue.
func (cs *ColumnStore) TIDsView(attr string, v data.Value) []int {
	col := cs.Columns[attr]
	if col == nil {
		return nil
	}
	id, ok := col.Dict.ID(v)
	if !ok {
		return nil
	}
	p := col.PostingList(id)
	if len(p) == 0 {
		return nil
	}
	return p
}

// StoreRelation serialises a relation into the block store under key
// (CSV payload split into blocks); the owning node is returned.
func StoreRelation(st *Store, key string, rel *data.Relation) (string, error) {
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, rel); err != nil {
		return "", err
	}
	return st.Put(key, buf.Bytes())
}

// LoadRelation fetches and parses a relation stored by StoreRelation. from
// names the requesting node (cross-node fetches are counted).
func LoadRelation(st *Store, key, name, from string) (*data.Relation, error) {
	payload, err := st.Get(key, from)
	if err != nil {
		return nil, err
	}
	return data.ReadCSV(bytes.NewReader(payload), name)
}
