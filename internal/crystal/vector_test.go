package crystal

import (
	"math/rand"
	"sort"
	"testing"
)

// refIntersect is the naive reference for both intersection kernels.
func refIntersect(a, b []int) []int {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

func sortedSet(rng *rand.Rand, n, span int) []int {
	seen := make(map[int]bool, n)
	for len(seen) < n {
		seen[rng.Intn(span)] = true
	}
	out := make([]int, 0, n)
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func TestBitmapSetClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		bits := make([]uint64, BitmapWords(n))
		for i := range bits {
			bits[i] = 0xdeadbeef // dirty
		}
		BitmapSetAll(bits, n)
		count := 0
		for _, w := range bits {
			for ; w != 0; w &= w - 1 {
				count++
			}
		}
		if count != n {
			t.Fatalf("n=%d: SetAll left %d bits (tail must be clear)", n, count)
		}
		BitmapClearAll(bits)
		for _, w := range bits {
			if w != 0 {
				t.Fatalf("n=%d: ClearAll left bits", n)
			}
		}
	}
}

func TestSelectKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 65, 1000} {
		ids := make([]ValueID, n)
		for i := range ids {
			ids[i] = ValueID(rng.Intn(5))
		}
		for target := ValueID(0); target < 6; target++ {
			bits := make([]uint64, BitmapWords(n))
			BitmapSetAll(bits, n)
			SelectEq(bits, ids, target)
			for i := range ids {
				got := bits[i/64]&(1<<(uint(i)%64)) != 0
				if want := ids[i] == target; got != want {
					t.Fatalf("SelectEq n=%d target=%d pos=%d: got %v want %v", n, target, i, got, want)
				}
			}
			bits2 := make([]uint64, BitmapWords(n))
			BitmapSetAll(bits2, n)
			SelectNe(bits2, ids, target)
			for i := range ids {
				got := bits2[i/64]&(1<<(uint(i)%64)) != 0
				if want := ids[i] != target; got != want {
					t.Fatalf("SelectNe n=%d target=%d pos=%d: got %v want %v", n, target, i, got, want)
				}
			}
		}
	}
}

// TestIntersectKernels sweeps size ratios that exercise all three
// strategies (merge walk, gallop-needles, gallop-hay) against the naive
// reference, for values and for positions.
func TestIntersectKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][2]int{{0, 10}, {10, 0}, {5, 5}, {100, 100}, {3, 400}, {400, 3}, {50, 1000}, {1000, 50}, {1, 1}}
	for _, sh := range shapes {
		for trial := 0; trial < 20; trial++ {
			a := sortedSet(rng, sh[0], 2000)
			b := sortedSet(rng, sh[1], 2000)
			want := refIntersect(a, b)

			got := IntersectSorted(nil, a, b)
			if len(got) != len(want) {
				t.Fatalf("IntersectSorted %v: got %d want %d", sh, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("IntersectSorted %v: mismatch at %d", sh, i)
				}
			}

			pos := IntersectPositions(nil, a, b)
			if len(pos) != len(want) {
				t.Fatalf("IntersectPositions %v: got %d want %d", sh, len(pos), len(want))
			}
			for i, p := range pos {
				if i > 0 && pos[i-1] >= p {
					t.Fatalf("IntersectPositions %v: positions not ascending", sh)
				}
				if b[p] != want[i] {
					t.Fatalf("IntersectPositions %v: b[%d]=%d want %d", sh, p, b[p], want[i])
				}
			}
		}
	}
}

func TestGallopGE(t *testing.T) {
	s := []int{2, 4, 4, 8, 16, 32}
	// note: inputs are sets in production, but gallopGE itself only
	// needs non-decreasing order.
	cases := []struct{ x, lo, want int }{
		{1, 0, 0}, {2, 0, 0}, {3, 0, 1}, {4, 0, 1}, {5, 0, 3},
		{33, 0, 6}, {16, 3, 4}, {16, 5, 5}, {2, 5, 5}, {99, 6, 6},
	}
	for _, c := range cases {
		if got := gallopGE(s, c.x, c.lo); got != c.want {
			t.Errorf("gallopGE(%d, lo=%d) = %d, want %d", c.x, c.lo, got, c.want)
		}
	}
}
