package crystal

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
)

func sampleRel(t *testing.T) *data.Relation {
	t.Helper()
	rel := data.NewRelation(must.Schema("Store",
		data.Attribute{Name: "city", Type: data.TString},
		data.Attribute{Name: "sales", Type: data.TFloat},
	))
	rel.Insert("s1", data.S("Beijing"), data.F(15))
	rel.Insert("s2", data.S("Shanghai"), data.F(10))
	rel.Insert("s3", data.S("Beijing"), data.F(11))
	rel.Insert("s4", data.Null(data.TString), data.F(9))
	return rel
}

func TestDictionarySortedIDs(t *testing.T) {
	rel := sampleRel(t)
	d, err := BuildDictionary(rel, "city")
	if err != nil {
		t.Fatal(err)
	}
	// 3 distinct: null, Beijing, Shanghai.
	if d.Size() != 3 {
		t.Fatalf("size=%d", d.Size())
	}
	bid, ok1 := d.ID(data.S("Beijing"))
	sid, ok2 := d.ID(data.S("Shanghai"))
	if !ok1 || !ok2 || bid >= sid {
		t.Error("ids must follow sorted value order (Beijing < Shanghai)")
	}
	if _, ok := d.ID(data.S("Chengdu")); ok {
		t.Error("unseen value must miss")
	}
	if v, ok := d.Value(bid); !ok || v.Str() != "Beijing" {
		t.Error("value round trip")
	}
	if _, ok := d.Value(99); ok {
		t.Error("bad id must miss")
	}
	if _, err := BuildDictionary(rel, "ghost"); err == nil {
		t.Error("unknown attribute must error")
	}
}

func TestColumnStorePostings(t *testing.T) {
	rel := sampleRel(t)
	cs, err := BuildColumnStore(rel)
	if err != nil {
		t.Fatal(err)
	}
	beijing := cs.TIDsWithValue("city", data.S("Beijing"))
	if len(beijing) != 2 || beijing[0] != 0 || beijing[1] != 2 {
		t.Errorf("postings=%v", beijing)
	}
	if got := cs.TIDsWithValue("city", data.S("Nowhere")); got != nil {
		t.Error("unseen value yields nil")
	}
	if got := cs.TIDsWithValue("ghost", data.S("x")); got != nil {
		t.Error("unknown attr yields nil")
	}
	// Null values also group.
	nulls := cs.TIDsWithValue("city", data.Null(data.TString))
	if len(nulls) != 1 || nulls[0] != 3 {
		t.Errorf("null postings=%v", nulls)
	}
}

func TestStoreLoadRelationRoundTrip(t *testing.T) {
	ring := NewRing(16)
	ring.AddNode("n1")
	ring.AddNode("n2")
	st := NewStore(ring, NewRegistry(), 64) // force multiple blocks
	rel := sampleRel(t)
	node, err := StoreRelation(st, "Store/part0", rel)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksOf("Store/part0") < 2 {
		t.Error("expected the CSV to span blocks")
	}
	back, err := LoadRelation(st, "Store/part0", "Store", node)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("len=%d", back.Len())
	}
	for i, orig := range rel.Tuples {
		for j := range orig.Values {
			if !back.Tuples[i].Values[j].Equal(orig.Values[j]) {
				t.Errorf("cell %d/%d mismatch", i, j)
			}
		}
	}
	if _, err := LoadRelation(st, "missing", "X", node); err == nil {
		t.Error("missing key must error")
	}
}
