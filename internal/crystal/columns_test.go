package crystal

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
)

func sampleRel(t *testing.T) *data.Relation {
	t.Helper()
	rel := data.NewRelation(must.Schema("Store",
		data.Attribute{Name: "city", Type: data.TString},
		data.Attribute{Name: "sales", Type: data.TFloat},
	))
	rel.Insert("s1", data.S("Beijing"), data.F(15))
	rel.Insert("s2", data.S("Shanghai"), data.F(10))
	rel.Insert("s3", data.S("Beijing"), data.F(11))
	rel.Insert("s4", data.Null(data.TString), data.F(9))
	return rel
}

func TestDictionarySortedIDs(t *testing.T) {
	rel := sampleRel(t)
	d, err := BuildDictionary(rel, "city")
	if err != nil {
		t.Fatal(err)
	}
	// 3 distinct: null, Beijing, Shanghai.
	if d.Size() != 3 {
		t.Fatalf("size=%d", d.Size())
	}
	bid, ok1 := d.ID(data.S("Beijing"))
	sid, ok2 := d.ID(data.S("Shanghai"))
	if !ok1 || !ok2 || bid >= sid {
		t.Error("ids must follow sorted value order (Beijing < Shanghai)")
	}
	if _, ok := d.ID(data.S("Chengdu")); ok {
		t.Error("unseen value must miss")
	}
	if v, ok := d.Value(bid); !ok || v.Str() != "Beijing" {
		t.Error("value round trip")
	}
	if _, ok := d.Value(99); ok {
		t.Error("bad id must miss")
	}
	if _, err := BuildDictionary(rel, "ghost"); err == nil {
		t.Error("unknown attribute must error")
	}
}

func TestColumnStorePostings(t *testing.T) {
	rel := sampleRel(t)
	cs, err := BuildColumnStore(rel)
	if err != nil {
		t.Fatal(err)
	}
	beijing := cs.TIDsWithValue("city", data.S("Beijing"))
	if len(beijing) != 2 || beijing[0] != 0 || beijing[1] != 2 {
		t.Errorf("postings=%v", beijing)
	}
	if got := cs.TIDsWithValue("city", data.S("Nowhere")); got != nil {
		t.Error("unseen value yields nil")
	}
	if got := cs.TIDsWithValue("ghost", data.S("x")); got != nil {
		t.Error("unknown attr yields nil")
	}
	// Null values also group.
	nulls := cs.TIDsWithValue("city", data.Null(data.TString))
	if len(nulls) != 1 || nulls[0] != 3 {
		t.Errorf("null postings=%v", nulls)
	}
}

func TestStoreLoadRelationRoundTrip(t *testing.T) {
	ring := NewRing(16)
	ring.AddNode("n1")
	ring.AddNode("n2")
	st := NewStore(ring, NewRegistry(), 64) // force multiple blocks
	rel := sampleRel(t)
	node, err := StoreRelation(st, "Store/part0", rel)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksOf("Store/part0") < 2 {
		t.Error("expected the CSV to span blocks")
	}
	back, err := LoadRelation(st, "Store/part0", "Store", node)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("len=%d", back.Len())
	}
	for i, orig := range rel.Tuples {
		for j := range orig.Values {
			if !back.Tuples[i].Values[j].Equal(orig.Values[j]) {
				t.Errorf("cell %d/%d mismatch", i, j)
			}
		}
	}
	if _, err := LoadRelation(st, "missing", "X", node); err == nil {
		t.Error("missing key must error")
	}
}

func TestColumnStoreDefensiveCopy(t *testing.T) {
	rel := sampleRel(t)
	cs, err := BuildColumnStore(rel)
	if err != nil {
		t.Fatal(err)
	}
	got := cs.TIDsWithValue("city", data.S("Beijing"))
	if len(got) != 2 {
		t.Fatalf("postings=%v", got)
	}
	// Mutating the returned slice must not corrupt the store.
	got[0], got[1] = 999, 998
	again := cs.TIDsWithValue("city", data.S("Beijing"))
	if len(again) != 2 || again[0] != 0 || again[1] != 2 {
		t.Errorf("postings corrupted by caller mutation: %v", again)
	}
}

func TestColumnIDAtDenseLayout(t *testing.T) {
	rel := sampleRel(t)
	col, err := BuildColumn(rel, "city")
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple's id must round-trip through the dense slice back to a
	// value equal to the raw one.
	for _, tp := range rel.Tuples {
		id, ok := col.IDAt(tp.TID)
		if !ok {
			t.Fatalf("tid %d missing from dense column", tp.TID)
		}
		v, ok := col.Dict.Value(id)
		if !ok || !v.Equal(tp.Values[0]) {
			t.Errorf("tid %d: id %d resolves to %v, want %v", tp.TID, id, v, tp.Values[0])
		}
	}
	// Out-of-range and negative TIDs miss instead of panicking.
	if _, ok := col.IDAt(len(rel.Tuples) + 10); ok {
		t.Error("unseen TID must miss")
	}
	if _, ok := col.IDAt(-1); ok {
		t.Error("negative TID must miss")
	}
	// Tuples inserted after the build are unseen until a Refresh.
	nt := rel.Insert("s5", data.S("Chengdu"), data.F(3))
	if _, ok := col.IDAt(nt.TID); ok {
		t.Error("post-build insert must miss before Refresh")
	}
	col.Refresh(rel, map[int]bool{nt.TID: true})
	id, ok := col.IDAt(nt.TID)
	if !ok {
		t.Fatal("post-Refresh insert must hit")
	}
	if v, _ := col.Dict.Value(id); v.Str() != "Chengdu" {
		t.Errorf("refreshed value = %v", v)
	}
}

func TestColumnRefreshAfterSetValue(t *testing.T) {
	rel := sampleRel(t)
	col, err := BuildColumn(rel, "city")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.SetValue(1, "city", data.S("Beijing")) {
		t.Fatal("SetValue failed")
	}
	col.Refresh(rel, map[int]bool{1: true})
	bid, _ := col.Dict.ID(data.S("Beijing"))
	if id, ok := col.IDAt(1); !ok || id != bid {
		t.Errorf("IDAt(1)=%d ok=%v, want Beijing id %d", id, ok, bid)
	}
	if got := col.Postings[bid]; len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Beijing postings after refresh = %v", got)
	}
	sid, _ := col.Dict.ID(data.S("Shanghai"))
	if got := col.Postings[sid]; len(got) != 0 {
		t.Errorf("Shanghai postings must drain, got %v", got)
	}
}

func TestDictionaryInternAppends(t *testing.T) {
	rel := sampleRel(t)
	d, err := BuildDictionary(rel, "city")
	if err != nil {
		t.Fatal(err)
	}
	bid, _ := d.ID(data.S("Beijing"))
	if got := d.Intern(data.S("Beijing")); got != bid {
		t.Errorf("re-interning must return the existing id: got %d want %d", got, bid)
	}
	size := d.Size()
	nid := d.Intern(data.S("Chengdu"))
	if int(nid) != size || d.Size() != size+1 {
		t.Errorf("new value must append: id=%d size=%d (was %d)", nid, d.Size(), size)
	}
	if got := d.Intern(data.S("Chengdu")); got != nid {
		t.Error("appended id must be stable")
	}
}

func TestDictionaryNumericCanonicalIDs(t *testing.T) {
	// Cross-type numerics equal under Value.Equal share one interned id, so
	// id equality agrees with value equality (the hot paths depend on it).
	d := NewDictionary()
	i5 := d.Intern(data.I(5))
	if f5 := d.Intern(data.F(5)); f5 != i5 {
		t.Errorf("I(5) and F(5) interned as %d and %d, want one id", i5, f5)
	}
	if t5 := d.Intern(data.TS(5)); t5 != i5 {
		t.Error("TS(5) must share the numeric id")
	}
	if h := d.Intern(data.F(5.5)); h == i5 {
		t.Error("F(5.5) must get its own id")
	}
	nid := d.Intern(data.Null(data.TInt))
	if got, ok := d.NullID(); !ok || got != nid {
		t.Error("NullID must report the interned null")
	}
	if sid := d.Intern(data.S("5")); sid == i5 {
		t.Error("S(\"5\") must not collide with numeric 5")
	}
}

func TestSchedulerStealZeroCostUnits(t *testing.T) {
	// Regression: the steal scan used to start at maxLoad = 0 with a strict
	// >, so a victim whose queued units all carry EstCost == 0 was never
	// selected — an idle node starved next to a full queue. Victim choice
	// keys on a non-empty queue; load is only the preference order.
	s := NewScheduler([]string{"a", "b"})
	for i := 0; i < 4; i++ {
		s.AssignBalanced(&WorkUnit{ID: i, RuleID: "r", Part: "p", EstCost: 0})
	}
	if got := s.Next("b", false); got != nil {
		t.Fatalf("no-steal Next must respect queue ownership, got unit %d", got.ID)
	}
	stolen := 0
	for u := s.Next("b", true); u != nil; u = s.Next("b", true) {
		stolen++
	}
	if stolen == 0 {
		t.Fatal("idle node could not steal zero-cost units")
	}
	if s.Pending() != 0 {
		t.Errorf("%d units stranded", s.Pending())
	}
	if s.Steals() != stolen {
		t.Errorf("steal counter %d != %d observed", s.Steals(), stolen)
	}
}
