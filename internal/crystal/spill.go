package crystal

// Spillable column blocks: a flat binary format (dense id vector +
// posting offsets + posting TIDs) written to a temp directory once a
// memory budget is exceeded, read back through mmap — or a chunked
// ReadAt fallback — behind the Column accessors (IDVec / PostingList /
// IDAt). The format is a host-endian scratch layout, unlinked at create
// time so the kernel reclaims it when the column closes or the process
// dies; it is not an interchange format.
//
// Layout (all sections 8-byte aligned):
//
//	 0: u64 magic'RKCP'<<32 | version
//	 8: u64 nIDs          (dense vector length)
//	16: u64 nLists        (dictionary size)
//	24: u64 nTIDs         (total posting entries)
//	32: ids     nIDs  × u32, padded to 8
//	  : offs    nLists+1 × u64   (prefix element offsets into tids)
//	  : tids    nTIDs × i64

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"syscall"
	"unsafe"

	"github.com/rockclean/rock/internal/data"
)

const spillMagic = uint64(0x524b4350)<<32 | 1

// SpillOptions configures the spill block store.
type SpillOptions struct {
	// Dir receives the block files; empty uses os.TempDir(). Files are
	// unlinked immediately after creation, so nothing survives a crash.
	Dir string
	// ForceReadAt skips mmap and exercises the chunked ReadAt fallback
	// (testing; also the automatic path when mmap fails).
	ForceReadAt bool
}

// spillFile is one spilled column: the open (already unlinked) block
// file plus its access path — a shared read-only mapping, or resident
// ids/offsets with posting lists streamed via ReadAt.
type spillFile struct {
	f      *os.File
	mapped []byte    // nil in ReadAt mode
	ids    []ValueID // mmap view, or resident (ReadAt mode keeps the 4 B/tuple vector in memory)
	offs   []uint64  // posting prefix offsets, mmap view or resident
	tidOff int64     // file offset of the tids section (ReadAt mode)
	bytes  int64     // file size
	holes  int       // NoValue entries frozen at spill time
}

// Spilled reports whether the column's storage lives in a spill block.
func (c *Column) Spilled() bool { return c.spill != nil }

// SpillBytes returns the on-disk size of the column's block (0 when the
// column is resident).
func (c *Column) SpillBytes() int64 {
	if c.spill == nil {
		return 0
	}
	return c.spill.bytes
}

// MemBytes estimates the resident footprint of the column: the dense id
// vector, the posting lists, and the dictionary. Spilled columns count
// only what stays in memory (the dictionary; plus the id vector under
// the ReadAt fallback).
func (c *Column) MemBytes() int64 {
	var b int64
	if c.spill != nil {
		if c.spill.mapped == nil {
			b += int64(len(c.spill.ids))*4 + int64(len(c.spill.offs))*8
		}
	} else {
		b += int64(len(c.IDs)) * 4
		for _, p := range c.Postings {
			b += int64(len(p))*8 + 24
		}
	}
	if c.Dict != nil {
		// values slice + map entry (~48 B amortized per distinct value).
		b += int64(c.Dict.Size()) * (48 + 48)
	}
	return b
}

// Spill writes the column's ids and postings into a flat block file and
// drops the in-memory copies. Returns the on-disk size. The column stays
// readable through IDVec/PostingList/IDAt; Refresh transparently reloads
// it. Not safe to call while readers are concurrently using the column —
// spill decisions happen at build time or between runs.
func (c *Column) Spill(opts SpillOptions) (int64, error) {
	if c.spill != nil {
		return c.spill.bytes, nil
	}
	nTIDs := 0
	for _, p := range c.Postings {
		nTIDs += len(p)
	}
	flat := make([]int, 0, nTIDs)
	offs := make([]uint64, len(c.Postings)+1)
	for i, p := range c.Postings {
		offs[i] = uint64(len(flat))
		flat = append(flat, p...)
	}
	offs[len(c.Postings)] = uint64(len(flat))
	holes := 0
	for _, id := range c.IDs {
		if id == NoValue {
			holes++
		}
	}
	sp, err := writeSpill(opts, c.IDs, offs, flat, holes)
	if err != nil {
		return 0, err
	}
	c.spill = sp
	c.IDs = nil
	c.Postings = nil
	return sp.bytes, nil
}

// Unspill loads the block back into the in-memory representation and
// closes the file. Called by Refresh before mutating a spilled column.
func (c *Column) Unspill() error {
	sp := c.spill
	if sp == nil {
		return nil
	}
	ids := make([]ValueID, len(sp.ids))
	copy(ids, sp.ids)
	posts := make([][]int, len(sp.offs)-1)
	for i := range posts {
		p := sp.postingAt(ValueID(i))
		if len(p) > 0 {
			posts[i] = append([]int(nil), p...)
		}
	}
	c.IDs = ids
	c.Postings = posts
	c.spill = nil
	return sp.close()
}

// Close releases the spill block's mapping and file descriptor. Resident
// columns are a no-op. The column must not be read afterwards.
func (c *Column) Close() error {
	sp := c.spill
	if sp == nil {
		return nil
	}
	c.spill = nil
	return sp.close()
}

// IDVec returns the dense TID→id vector (NoValue marks absent TIDs).
// The slice is read-only: it may alias a shared file mapping.
func (c *Column) IDVec() []ValueID {
	if c.spill != nil {
		return c.spill.ids
	}
	return c.IDs
}

// PostingList returns the sorted TIDs carrying value id — a read-only
// view (possibly into a shared file mapping); callers must not mutate or
// retain it across a Refresh. Unknown ids return nil.
func (c *Column) PostingList(id ValueID) []int {
	if c.spill != nil {
		return c.spill.postingAt(id)
	}
	if int(id) >= len(c.Postings) {
		return nil
	}
	return c.Postings[id]
}

// Complete reports that the column covers every live tuple of rel: the
// dense vector spans all assigned TIDs and has no NoValue holes, so no
// tuple of rel can be unseen by the posting lists. Deleted tuples may
// retain stale entries — posting-driven readers intersect against live
// TID sets, which drops them.
func (c *Column) Complete(rel *data.Relation) bool {
	if c.spill != nil {
		return c.spill.holes == 0 && len(c.spill.ids) == rel.NextTID()
	}
	return c.holes == 0 && len(c.IDs) == rel.NextTID()
}

// BuildColumnSpilled encodes one attribute straight into a spill block:
// dictionary build, dense id vector, then a counting-sort pass that lays
// the posting lists out flat (rel.Tuples is TID-ascending, so each
// bucket fills in sorted order) — the [][]int posting slices are never
// materialized, which keeps the transient build footprint at ~12 bytes
// per tuple instead of the slice-based layout's header overhead.
func BuildColumnSpilled(rel *data.Relation, attr string, opts SpillOptions) (*Column, error) {
	dict, tup, err := buildEncoded(rel, attr)
	if err != nil {
		return nil, err
	}
	n := rel.NextTID()
	ids := make([]ValueID, n)
	for i := range ids {
		ids[i] = NoValue
	}
	counts := make([]uint64, dict.Size()+1)
	for i, t := range rel.Tuples {
		ids[t.TID] = tup[i]
		counts[tup[i]+1]++
	}
	holes := n - len(rel.Tuples)
	offs := counts // prefix-sum in place: offs[i] = start of bucket i
	for i := 1; i < len(offs); i++ {
		offs[i] += offs[i-1]
	}
	flat := make([]int, offs[len(offs)-1])
	cursor := make([]uint64, dict.Size())
	copy(cursor, offs)
	for _, t := range rel.Tuples {
		id := ids[t.TID]
		flat[cursor[id]] = t.TID
		cursor[id]++
	}
	sp, err := writeSpill(opts, ids, offs, flat, holes)
	if err != nil {
		return nil, err
	}
	return &Column{Attr: attr, Dict: dict, spill: sp}, nil
}

func writeSpill(opts SpillOptions, ids []ValueID, offs []uint64, flat []int, holes int) (*spillFile, error) {
	dir := opts.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "rock-col-*.blk")
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the kernel keeps the inode alive for the open
	// fd and reclaims the space when the column closes (or on crash).
	os.Remove(f.Name())
	idsBytes := pad8(int64(len(ids)) * 4)
	offsBytes := int64(len(offs)) * 8
	tidsBytes := int64(len(flat)) * 8
	total := 32 + idsBytes + offsBytes + tidsBytes

	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(ids)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(offs)-1))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(flat)))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := writeAll(f, u32Bytes(ids), idsBytes); err != nil {
		f.Close()
		return nil, err
	}
	if err := writeAll(f, u64Bytes(offs), offsBytes); err != nil {
		f.Close()
		return nil, err
	}
	if err := writeAll(f, intBytes(flat), tidsBytes); err != nil {
		f.Close()
		return nil, err
	}
	sp := &spillFile{f: f, bytes: total, holes: holes, tidOff: 32 + idsBytes + offsBytes}
	if !opts.ForceReadAt {
		if m, err := syscall.Mmap(int(f.Fd()), 0, int(total), syscall.PROT_READ, syscall.MAP_SHARED); err == nil {
			sp.mapped = m
			if len(ids) > 0 {
				sp.ids = unsafe.Slice((*ValueID)(unsafe.Pointer(&m[32])), len(ids))
			}
			sp.offs = unsafe.Slice((*uint64)(unsafe.Pointer(&m[32+idsBytes])), len(offs))
			return sp, nil
		}
	}
	// Chunked ReadAt fallback: the 4 B/tuple id vector and the 8 B/value
	// offsets stay resident; posting lists stream per lookup.
	sp.ids = append([]ValueID(nil), ids...)
	sp.offs = append([]uint64(nil), offs...)
	return sp, nil
}

// postingAt resolves one posting list: a zero-copy mapped view, or a
// fresh slice streamed from the file in the ReadAt fallback.
func (sp *spillFile) postingAt(id ValueID) []int {
	if int(id)+1 >= len(sp.offs) {
		return nil
	}
	start, end := sp.offs[id], sp.offs[id+1]
	if start == end {
		return nil
	}
	n := int(end - start)
	if sp.mapped != nil {
		return unsafe.Slice((*int)(unsafe.Pointer(&sp.mapped[sp.tidOff+int64(start)*8])), n)
	}
	out := make([]int, n)
	if _, err := sp.f.ReadAt(intBytes(out), sp.tidOff+int64(start)*8); err != nil {
		return nil
	}
	return out
}

func (sp *spillFile) close() error {
	if sp.mapped != nil {
		syscall.Munmap(sp.mapped)
		sp.mapped = nil
		sp.ids = nil
		sp.offs = nil
	}
	return sp.f.Close()
}

func pad8(n int64) int64 { return (n + 7) &^ 7 }

// writeAll writes b then zero-pads to padded bytes.
func writeAll(f *os.File, b []byte, padded int64) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if extra := padded - int64(len(b)); extra > 0 {
		var z [8]byte
		if _, err := f.Write(z[:extra]); err != nil {
			return err
		}
	}
	return nil
}

func u32Bytes(s []ValueID) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func u64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func intBytes(s []int) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// SortPostingCheck verifies a posting list is strictly ascending —
// shared by tests and the Refresh invariants.
func SortPostingCheck(p []int) error {
	if !sort.IntsAreSorted(p) {
		return fmt.Errorf("crystal: posting list not sorted")
	}
	for i := 1; i < len(p); i++ {
		if p[i] == p[i-1] {
			return fmt.Errorf("crystal: duplicate TID %d in posting list", p[i])
		}
	}
	return nil
}
