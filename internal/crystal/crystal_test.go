package crystal

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestRingPlacementStable(t *testing.T) {
	r := NewRing(32)
	r.AddNode("node-a")
	r.AddNode("node-b")
	r.AddNode("node-c")
	if r.AddNode("node-a") {
		t.Error("duplicate add must report false")
	}
	// Same key, same owner.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("obj/%d", i)
		if r.Owner(k) != r.Owner(k) {
			t.Fatal("owner must be deterministic")
		}
	}
	if got := r.Nodes(); len(got) != 3 {
		t.Errorf("nodes=%v", got)
	}
}

func TestRingMinimalRemapping(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 5; i++ {
		r.AddNode(fmt.Sprintf("node-%d", i))
	}
	const n = 1000
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d/obj", i)
		before[k] = r.Owner(k)
	}
	r.AddNode("node-new")
	moved := 0
	for k, old := range before {
		if r.Owner(k) != old {
			moved++
		}
	}
	// Consistent hashing: roughly 1/6 of keys move; fail above 1/3.
	if moved == 0 || moved > n/3 {
		t.Errorf("moved %d of %d keys on node add", moved, n)
	}
	// Removing the new node restores every placement.
	if !r.RemoveNode("node-new") {
		t.Fatal("remove must succeed")
	}
	for k, old := range before {
		if r.Owner(k) != old {
			t.Fatal("placements must restore after symmetric churn")
		}
	}
	if r.RemoveNode("node-new") {
		t.Error("double remove must report false")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if r.Owner("x") != "" {
		t.Error("empty ring owns nothing")
	}
}

func TestRegistryPutGetWatch(t *testing.T) {
	g := NewRegistry()
	ch := g.Watch()
	rev1 := g.Put("a", "1")
	rev2 := g.Put("a", "2")
	if rev2 <= rev1 {
		t.Error("revisions must increase")
	}
	if v, ok := g.Get("a"); !ok || v != "2" {
		t.Error("get after put")
	}
	ev := <-ch
	if ev.Key != "a" || ev.Value != "1" {
		t.Errorf("event=%+v", ev)
	}
	if !g.Delete("a") || g.Delete("a") {
		t.Error("delete semantics")
	}
	if _, ok := g.Get("a"); ok {
		t.Error("deleted key visible")
	}
	g.Put("p/x", "1")
	g.Put("p/y", "1")
	g.Put("q/z", "1")
	if ks := g.Keys("p/"); len(ks) != 2 || ks[0] != "p/x" {
		t.Errorf("prefix keys=%v", ks)
	}
}

func TestStoreBlocksAndAddressing(t *testing.T) {
	ring := NewRing(32)
	ring.AddNode("n1")
	ring.AddNode("n2")
	reg := NewRegistry()
	st := NewStore(ring, reg, 8) // tiny blocks to force splitting
	payload := []byte("0123456789abcdefXYZ")
	node, err := st.Put("tbl/part0", payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksOf("tbl/part0") != 3 {
		t.Errorf("blocks=%d want 3", st.BlocksOf("tbl/part0"))
	}
	got, err := st.Get("tbl/part0", node)
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("round trip failed: %q %v", got, err)
	}
	if st.RemoteFetches() != 0 {
		t.Error("local fetch must not count remote")
	}
	other := "n1"
	if node == "n1" {
		other = "n2"
	}
	if _, err := st.Get("tbl/part0", other); err != nil {
		t.Fatal(err)
	}
	if st.RemoteFetches() != 1 {
		t.Error("cross-node fetch must count")
	}
	if _, err := st.Get("missing", "n1"); err == nil {
		t.Error("missing object must error")
	}
	// Placement is registered.
	if v, ok := reg.Get("placement/tbl/part0"); !ok || v != node {
		t.Error("placement not registered")
	}
}

func TestStoreEmptyPayload(t *testing.T) {
	ring := NewRing(8)
	ring.AddNode("n1")
	st := NewStore(ring, NewRegistry(), 8)
	if _, err := st.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("empty", "n1")
	if err != nil || len(got) != 0 {
		t.Error("empty object must round trip")
	}
}

func TestStoreRebalance(t *testing.T) {
	ring := NewRing(32)
	ring.AddNode("n1")
	st := NewStore(ring, NewRegistry(), 64)
	for i := 0; i < 50; i++ {
		if _, err := st.Put(fmt.Sprintf("g%d/o", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ring.AddNode("n2")
	moved := st.Rebalance()
	if moved == 0 || moved == 50 {
		t.Errorf("rebalance moved %d of 50", moved)
	}
	// All objects still readable from their new owners.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("g%d/o", i)
		owner, _ := st.Owner(key)
		if _, err := st.Get(key, owner); err != nil {
			t.Fatalf("object %s unreadable after rebalance: %v", key, err)
		}
	}
}

func TestStorePutNoNodes(t *testing.T) {
	st := NewStore(NewRing(8), NewRegistry(), 8)
	if _, err := st.Put("k", []byte("v")); err == nil {
		t.Error("put with no nodes must fail")
	}
}

func TestSchedulerAffinityAndStealing(t *testing.T) {
	ring := NewRing(32)
	nodes := []string{"n1", "n2", "n3"}
	for _, n := range nodes {
		ring.AddNode(n)
	}
	s := NewScheduler(nodes)
	for i := 0; i < 30; i++ {
		u := &WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: float64(1 + i%3)}
		s.Assign(ring, u)
	}
	if s.Pending() != 30 {
		t.Fatalf("pending=%d", s.Pending())
	}
	// Drain everything from one node with stealing on: it must empty the
	// whole system.
	drained := 0
	for u := s.Next("n1", true); u != nil; u = s.Next("n1", true) {
		drained++
	}
	if drained != 30 {
		t.Errorf("drained %d of 30", drained)
	}
	if s.Steals() == 0 {
		t.Error("stealing must have occurred")
	}
	// Without stealing, an empty queue yields nil.
	if u := s.Next("n1", false); u != nil {
		t.Error("no-steal next on empty queue must be nil")
	}
}

func TestSchedulerBalancedAssignment(t *testing.T) {
	s := NewScheduler([]string{"a", "b"})
	for i := 0; i < 10; i++ {
		s.AssignBalanced(&WorkUnit{ID: i, EstCost: 1})
	}
	if la, lb := s.Load("a"), s.Load("b"); la != lb {
		t.Errorf("balanced assign skewed: %f vs %f", la, lb)
	}
}

// Property: the ring's owner function is total and consistent for any key.
func TestRingOwnerTotal(t *testing.T) {
	r := NewRing(16)
	r.AddNode("n1")
	r.AddNode("n2")
	f := func(key string) bool {
		o := r.Owner(key)
		return (o == "n1" || o == "n2") && o == r.Owner(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
