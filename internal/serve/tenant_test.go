package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestQuotaRefundOnFailedInsert: enqueue charges the tuple quota for
// every insert in the batch, so inserts that fail to materialize in
// runBatch must be refunded — otherwise the quota leaks until restart
// and eventually every ingest gets a spurious 413.
func TestQuotaRefundOnFailedInsert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = time.Hour // flush manually
	s, _ := testServer(t, cfg)
	tn, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}

	tn.mu.Lock()
	before := tn.tuples
	tn.mu.Unlock()

	// Two inserts against a relation the engine does not know: admission
	// charges quota for both, Delta.Insert rejects both.
	ops := []op{
		{rel: "NoSuchRel", eid: "x-1"},
		{rel: "NoSuchRel", eid: "x-2"},
	}
	if _, _, err := tn.enqueue(ops, 2); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	tn.mu.Lock()
	charged := tn.tuples
	tn.mu.Unlock()
	if charged != before+2 {
		t.Fatalf("after enqueue: tuples=%d, want %d", charged, before+2)
	}

	tn.maybeFlush(true)

	tn.mu.Lock()
	after := tn.tuples
	tn.mu.Unlock()
	if after != before {
		t.Fatalf("quota leak: tuples=%d after failed inserts, want %d", after, before)
	}
}

// TestFixLedgerCapRetainsOffsets: truncating the ledger at
// MaxFixLedger must keep absolute ?since= cursors stable — a client
// resuming from a previously returned Total gets exactly the new
// entries, never re-reads, never skips what is still retained.
func TestFixLedgerCapRetainsOffsets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFixLedger = 4
	s, _ := testServer(t, cfg)
	tn, err := s.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}

	recs := func(from, n int) []FixRecord {
		out := make([]FixRecord, n)
		for i := range out {
			out[i] = FixRecord{Cell: fmt.Sprintf("c%d", from+i)}
		}
		return out
	}

	tn.mu.Lock()
	tn.appendFixes(recs(0, 6)) // c0..c5; cap 4 drops c0,c1
	tn.mu.Unlock()

	fixes, _, total, offset := tn.fixesSince(0)
	if total != 6 || offset != 2 {
		t.Fatalf("after first truncation: total=%d offset=%d, want 6/2", total, offset)
	}
	if len(fixes) != 4 || fixes[0].Cell != "c2" || fixes[3].Cell != "c5" {
		t.Fatalf("retained window wrong: %v", fixes)
	}

	// An absolute cursor keeps meaning the same entry after truncation.
	fixes, _, _, _ = tn.fixesSince(5)
	if len(fixes) != 1 || fixes[0].Cell != "c5" {
		t.Fatalf("since=5: %v, want [c5]", fixes)
	}
	if fixes, _, _, _ = tn.fixesSince(6); len(fixes) != 0 {
		t.Fatalf("since=total: %v, want empty", fixes)
	}

	// More appends advance the window; an up-to-date cursor still only
	// sees the new entries.
	tn.mu.Lock()
	tn.appendFixes(recs(6, 2)) // c6,c7; drops c2,c3
	tn.mu.Unlock()
	fixes, _, total, offset = tn.fixesSince(6)
	if total != 8 || offset != 4 {
		t.Fatalf("after second truncation: total=%d offset=%d, want 8/4", total, offset)
	}
	if len(fixes) != 2 || fixes[0].Cell != "c6" || fixes[1].Cell != "c7" {
		t.Fatalf("since=6: %v, want [c6 c7]", fixes)
	}

	// A stale cursor pointing into the truncated prefix is clamped to
	// the oldest retained entry rather than erroring or wrapping.
	fixes, _, _, _ = tn.fixesSince(0)
	if len(fixes) != 4 || fixes[0].Cell != "c4" {
		t.Fatalf("stale cursor: %v, want window starting at c4", fixes)
	}
}
