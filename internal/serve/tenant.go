package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/rock"
)

// op is one queued mutation. Ingest handlers never touch the tenant's
// database — they only parse and enqueue; the tenant's worker applies
// ops to a rock.Delta under the run lock. That single rule keeps HTTP
// concurrency away from the engine's data structures.
type op struct {
	rel string
	// insert
	eid    string
	values []data.Value
	// update (when update is true)
	update bool
	tid    int
	attr   string
	val    data.Value

	at time.Time // enqueue time, for the ingest→fix-visible histogram
}

// FixRecord is one applied correction in a tenant's fix ledger.
type FixRecord struct {
	// Seq is the batch watermark that materialized the fix (0 for fixes
	// from a full /clean run).
	Seq   uint64 `json:"seq"`
	Cell  string `json:"cell"`
	Rel   string `json:"rel"`
	TID   int    `json:"tid"`
	EID   string `json:"eid,omitempty"`
	Attr  string `json:"attr"`
	Old   string `json:"old"`
	New   string `json:"new"`
	Rule  string `json:"rule,omitempty"`
	IsNew bool   `json:"is_new"`
}

// Tenant is one isolated cleaning session: a warm rock.Pipeline (rules,
// trained models, §5.4 predication layer, accumulated truth), its own
// obs registry, a coalescing ingest batcher, and the read-your-fixes
// watermark.
type Tenant struct {
	name string
	cfg  Config
	reg  *obs.Registry
	p    *rock.Pipeline

	// runMu serializes engine runs (batch flushes and full cleans write
	// the database; /query readers take the read side).
	runMu sync.RWMutex

	mu         sync.Mutex
	queue      []op
	batchStart time.Time
	timer      *time.Timer
	seq        uint64 // last issued ingest token
	applied    uint64 // watermark: every token ≤ applied is materialized
	appliedCh  chan struct{}
	pending    int // queued ops not yet materialized
	tuples     int // tenant tuple count (quota accounting)
	fixes      []FixRecord
	fixOffset  int // ledger entries truncated so far; ?since= indices are absolute
	draining   bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newTenant(name string, cfg Config, reg *obs.Registry, p *rock.Pipeline) *Tenant {
	t := &Tenant{
		name:      name,
		cfg:       cfg,
		reg:       reg,
		p:         p,
		appliedCh: make(chan struct{}),
		tuples:    p.DB().TupleCount(),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	reg.SetGauge("serve.tuples", int64(t.tuples))
	go t.worker()
	return t
}

// Registry exposes the tenant's obs registry (metrics endpoints, load
// generators).
func (t *Tenant) Registry() *obs.Registry { return t.reg }

// enqueue validates admission (drain, backpressure, quota), assigns the
// batch token, and queues the ops. It returns the token and the queue
// depth after admission.
func (t *Tenant) enqueue(ops []op, inserts int) (uint64, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		t.reg.Inc("serve.ingest.rejected.draining")
		return 0, t.pending, errDraining
	}
	if t.pending+len(ops) > t.cfg.QueueLimit {
		t.reg.Inc("serve.ingest.rejected.queue")
		return 0, t.pending, errBackpressure
	}
	if t.cfg.MaxTuples > 0 && t.tuples+inserts > t.cfg.MaxTuples {
		t.reg.Inc("serve.ingest.rejected.quota")
		return 0, t.pending, errQuota
	}
	t.seq++
	now := time.Now()
	for i := range ops {
		ops[i].at = now
	}
	t.queue = append(t.queue, ops...)
	t.pending += len(ops)
	t.tuples += inserts
	t.reg.Inc("serve.ingest.requests")
	t.reg.Add("serve.ingest.tuples", uint64(len(ops)))
	t.reg.SetGauge("serve.pending", int64(t.pending))
	t.reg.SetGauge("serve.tuples", int64(t.tuples))
	if t.batchStart.IsZero() {
		t.batchStart = now
		t.timer = time.AfterFunc(t.cfg.BatchWindow, t.kickNow)
	}
	if len(t.queue) >= t.cfg.MaxBatch {
		t.kickNow()
	}
	return t.seq, t.pending, nil
}

func (t *Tenant) kickNow() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// worker is the tenant's single flush loop: every batch clean runs
// here, so engine runs are naturally serialized per tenant.
func (t *Tenant) worker() {
	defer close(t.done)
	for {
		select {
		case <-t.kick:
			t.maybeFlush(false)
		case <-t.stop:
			// Drain: flush whatever is queued, ignoring the window.
			t.maybeFlush(true)
			return
		}
	}
}

// maybeFlush runs one batch if the coalescing window elapsed, the batch
// is full, or force is set; it keeps flushing while more work qualifies
// (ops that arrived during a long run).
func (t *Tenant) maybeFlush(force bool) {
	for {
		t.mu.Lock()
		if len(t.queue) == 0 {
			t.mu.Unlock()
			return
		}
		elapsed := time.Since(t.batchStart)
		if !force && elapsed < t.cfg.BatchWindow && len(t.queue) < t.cfg.MaxBatch {
			// Too early: re-arm for the remainder of the window.
			t.timer.Reset(t.cfg.BatchWindow - elapsed)
			t.mu.Unlock()
			return
		}
		ops := t.queue
		hi := t.seq
		t.queue = nil
		t.batchStart = time.Time{}
		t.mu.Unlock()
		t.runBatch(ops, hi)
		if !force {
			return
		}
	}
}

// runBatch applies one coalesced batch through CleanIncrementalReport,
// appends the corrections to the fix ledger, and advances the
// read-your-fixes watermark to hi.
func (t *Tenant) runBatch(ops []op, hi uint64) {
	t.runMu.Lock()
	d := t.p.NewDelta()
	// insertErrs is tracked separately from update failures: enqueue
	// charged the tuple quota for every insert in the batch, so each
	// insert that never materializes must be refunded below or the
	// tenant's quota leaks until restart.
	applyErrs, insertErrs := 0, 0
	for _, o := range ops {
		if o.update {
			if !d.Update(o.rel, o.tid, o.attr, o.val) {
				applyErrs++
			}
		} else if d.Insert(o.rel, o.eid, o.values...) == nil {
			applyErrs++
			insertErrs++
		}
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.CleanTimeout)
	rep, err := d.CleanIncrementalReport(ctx)
	cancel()
	var recs []FixRecord
	if err == nil {
		// Render while still holding the run lock: the EID lookup reads
		// the database.
		recs = t.renderFixes(hi, rep.Corrections)
	}
	t.runMu.Unlock()

	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if applyErrs > 0 {
		t.reg.Add("serve.apply.errors", uint64(applyErrs))
	}
	if insertErrs > 0 {
		// Refund quota for inserts that never landed. Failed updates cost
		// nothing (enqueue only charges inserts), and a whole-clean error
		// does not refund: Delta.Insert mutates the database immediately,
		// so successfully inserted tuples persist even when the clean fails.
		t.tuples -= insertErrs
		t.reg.SetGauge("serve.tuples", int64(t.tuples))
	}
	if err != nil {
		t.reg.Inc("serve.batch.errors")
	} else {
		t.reg.Inc("serve.batches")
		t.reg.Add("serve.batch.tuples", uint64(len(ops)))
		if rep.Partial {
			t.reg.Inc("serve.batch.partial")
		}
		t.appendFixes(recs)
		t.reg.Observe("serve.batch.clean", now.Sub(start))
		for _, o := range ops {
			t.reg.Observe("serve.ingest.visible", now.Sub(o.at))
		}
	}
	// Advance the watermark even on error: a failed batch must not wedge
	// readers forever; the error is visible in serve.batch.errors.
	t.pending -= len(ops)
	t.applied = hi
	t.reg.SetGauge("serve.pending", int64(t.pending))
	close(t.appliedCh)
	t.appliedCh = make(chan struct{})
}

// renderFixes turns corrections into ledger records. Caller holds
// runMu (the EID lookup reads the database).
func (t *Tenant) renderFixes(seq uint64, cs []rock.Correction) []FixRecord {
	recs := make([]FixRecord, 0, len(cs))
	for _, c := range cs {
		eid := ""
		if r := t.p.DB().Rel(c.Cell.Rel); r != nil {
			if tu := r.Get(c.Cell.TID); tu != nil {
				eid = tu.EID
			}
		}
		recs = append(recs, FixRecord{
			Seq:   seq,
			Cell:  c.Cell.String(),
			Rel:   c.Cell.Rel,
			TID:   c.Cell.TID,
			EID:   eid,
			Attr:  c.Cell.Attr,
			Old:   c.Old.String(),
			New:   c.New.String(),
			Rule:  c.Rule,
			IsNew: c.IsNew,
		})
	}
	return recs
}

// appendFixes records rendered corrections in the ledger and truncates
// the oldest entries past Config.MaxFixLedger, advancing fixOffset so
// absolute ?since= cursors survive the truncation. Caller holds t.mu.
func (t *Tenant) appendFixes(recs []FixRecord) {
	t.fixes = append(t.fixes, recs...)
	if limit := t.cfg.MaxFixLedger; limit > 0 && len(t.fixes) > limit {
		drop := len(t.fixes) - limit
		t.fixOffset += drop
		// Reallocate rather than re-slice so the dropped records' backing
		// array is actually released.
		t.fixes = append([]FixRecord(nil), t.fixes[drop:]...)
		t.reg.Add("serve.fixes.truncated", uint64(drop))
		t.reg.SetGauge("serve.fixes.offset", int64(t.fixOffset))
	}
	t.reg.Add("serve.fixes.applied", uint64(len(recs)))
}

// cleanFull runs a whole-database batch clean (POST /clean), serialized
// against batch flushes through the run lock.
func (t *Tenant) cleanFull(ctx context.Context) (*rock.Report, error) {
	t.runMu.Lock()
	start := time.Now()
	rep, err := t.p.CleanCtx(ctx)
	var recs []FixRecord
	if err == nil {
		recs = t.renderFixes(0, rep.Corrections)
	}
	t.runMu.Unlock()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.reg.Inc("serve.clean.full")
	t.reg.Observe("serve.clean.full.latency", time.Since(start))
	t.appendFixes(recs)
	t.mu.Unlock()
	return rep, nil
}

// waitApplied blocks until the watermark covers token (the
// read-your-fixes session guarantee) or ctx expires.
func (t *Tenant) waitApplied(ctx context.Context, token uint64) error {
	for {
		t.mu.Lock()
		if t.applied >= token {
			t.mu.Unlock()
			return nil
		}
		ch := t.appliedCh
		t.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("token %d not applied: %w", token, ctx.Err())
		}
	}
}

// fixesSince returns the ledger entries at absolute index >= since,
// with the current watermark, the all-time fix count, and the oldest
// retained index. A since that predates the retained window is clamped
// to the window start (those entries were truncated and are gone).
func (t *Tenant) fixesSince(since int) ([]FixRecord, uint64, int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg.Inc("serve.reads.fixes")
	total := t.fixOffset + len(t.fixes)
	if since < t.fixOffset {
		since = t.fixOffset
	}
	if since > total {
		since = total
	}
	out := make([]FixRecord, total-since)
	copy(out, t.fixes[since-t.fixOffset:])
	return out, t.applied, total, t.fixOffset
}

// readTuple snapshots one tuple's current (cleaned) values.
func (t *Tenant) readTuple(rel string, tid int) (map[string]string, string, error) {
	t.runMu.RLock()
	defer t.runMu.RUnlock()
	r := t.p.DB().Rel(rel)
	if r == nil {
		return nil, "", fmt.Errorf("unknown relation %q", rel)
	}
	tup := r.Get(tid)
	if tup == nil {
		return nil, "", fmt.Errorf("no tuple %d in %s", tid, rel)
	}
	vals := make(map[string]string, len(r.Schema.Attrs))
	for i, a := range r.Schema.Attrs {
		vals[a.Name] = tup.Values[i].String()
	}
	t.reg.Inc("serve.reads.query")
	return vals, tup.EID, nil
}

// beginDrain rejects new ingests and tells the worker to flush what is
// queued and exit. Idempotent.
func (t *Tenant) beginDrain() {
	t.mu.Lock()
	already := t.draining
	t.draining = true
	if t.timer != nil {
		t.timer.Stop()
	}
	t.mu.Unlock()
	if !already {
		close(t.stop)
	}
}
