package serve

import (
	"fmt"
	"strings"

	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/workload"
	"github.com/rockclean/rock/rock"
)

// WorkloadFactory builds every tenant from one of the named benchmark
// workloads — the serving analogue of the paper's per-application
// deployments. Each tenant gets its own freshly generated database and
// a fully warmed pipeline: ER matcher, trained correlation models,
// knowledge graph, entity references, and rules.
func WorkloadFactory(app string, wcfg workload.Config, opts rock.Options) PipelineFactory {
	return func(tenant string, reg *obs.Registry) (*rock.Pipeline, error) {
		ds, err := datasetFor(app, wcfg)
		if err != nil {
			return nil, err
		}
		o := opts
		o.Obs = reg
		return PipelineFromDataset(ds, o)
	}
}

func datasetFor(app string, wcfg workload.Config) (*workload.Dataset, error) {
	switch strings.ToLower(app) {
	case "ecommerce":
		return workload.Ecommerce(), nil
	case "bank":
		return workload.Bank(wcfg), nil
	case "logistics":
		return workload.Logistics(wcfg), nil
	case "sales":
		return workload.Sales(wcfg), nil
	}
	return nil, fmt.Errorf("unknown workload %q (valid: ecommerce, bank, logistics, sales)", app)
}

// PipelineFromDataset assembles a warm pipeline over a workload
// dataset: models trained, graph and entity references registered, and
// every rule loaded.
func PipelineFromDataset(ds *workload.Dataset, opts rock.Options) (*rock.Pipeline, error) {
	p := rock.NewPipelineWith(ds.DB, opts)
	p.RegisterMatcher("M_ER", 0.82)
	p.TrainCorrelationModels()
	if ds.Graph != nil {
		p.RegisterGraph(ds.Graph, 0.6)
	}
	for ref := range ds.EIDRefs {
		rel, attr, ok := strings.Cut(ref, ".")
		if !ok {
			return nil, fmt.Errorf("dataset %s: malformed entity ref %q", ds.Name, ref)
		}
		p.DeclareEntityRef(rel, attr)
	}
	for _, r := range ds.Rules {
		if _, err := p.AddRule(r.String()); err != nil {
			return nil, fmt.Errorf("dataset %s rule %s: %w", ds.Name, r.ID, err)
		}
	}
	return p, nil
}
