package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rockclean/rock/internal/workload"
	"github.com/rockclean/rock/rock"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg, WorkloadFactory("ecommerce", workload.Config{}, rock.DefaultOptions()))
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// mateX2Ingest is one new transaction whose manufactory disagrees with
// the rest of its commodity class; phi2 (same commodity → same
// manufactory) must correct it to the class's resolved value, "Apple".
func mateX2Ingest(eid string) IngestRequest {
	return IngestRequest{
		Rel: "Trans",
		Tuples: []IngestTuple{{
			EID:    eid,
			Values: []string{"p3", "s3", "Mate X2 (Limited Sold)", "Huawei", "5200", "2023-08-12"},
		}},
	}
}

// TestReadYourFixes is the session-guarantee test: concurrent clients
// each ingest a tuple with a known error, then read back with their
// token — every client must see its own tuple's certain fix.
func TestReadYourFixes(t *testing.T) {
	_, hs := testServer(t, DefaultConfig())
	base := hs.URL + "/v1/acme"

	// Warm the tenant: full clean settles the initial errors so batch
	// fixes afterwards belong to the ingested tuples.
	if code := doJSON(t, http.MethodPost, base+"/clean", nil, nil); code != http.StatusOK {
		t.Fatalf("clean: status %d", code)
	}

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eid := fmt.Sprintf("sess-%d", i)
			var ing IngestResponse
			if code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest(eid), &ing); code != http.StatusAccepted {
				errCh <- fmt.Errorf("client %d: ingest status %d", i, code)
				return
			}
			var fixes FixesResponse
			url := fmt.Sprintf("%s/fixes?token=%d&timeout_ms=30000", base, ing.Token)
			if code := doJSON(t, http.MethodGet, url, nil, &fixes); code != http.StatusOK {
				errCh <- fmt.Errorf("client %d: fixes status %d", i, code)
				return
			}
			if fixes.Applied < ing.Token {
				errCh <- fmt.Errorf("client %d: applied %d < token %d", i, fixes.Applied, ing.Token)
				return
			}
			var mine *FixRecord
			for j := range fixes.Fixes {
				f := fixes.Fixes[j]
				if f.EID == eid && f.Attr == "mfg" {
					mine = &fixes.Fixes[j]
				}
			}
			if mine == nil {
				errCh <- fmt.Errorf("client %d: no mfg fix for %s in %d fixes", i, eid, len(fixes.Fixes))
				return
			}
			if mine.New != "Apple" {
				errCh <- fmt.Errorf("client %d: fix %s -> %q, want Apple", i, mine.Old, mine.New)
				return
			}
			// And the cleaned value must be visible through /query.
			var q QueryResponse
			url = fmt.Sprintf("%s/query?rel=Trans&tid=%d&token=%d&timeout_ms=30000", base, mine.TID, ing.Token)
			if code := doJSON(t, http.MethodGet, url, nil, &q); code != http.StatusOK {
				errCh <- fmt.Errorf("client %d: query status %d", i, code)
				return
			}
			if q.Values["mfg"] != "Apple" {
				errCh <- fmt.Errorf("client %d: query mfg = %q, want Apple", i, q.Values["mfg"])
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestBackpressure: once queued tuples exceed QueueLimit the server
// answers 429 instead of buffering without bound.
func TestBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 3
	cfg.MaxBatch = 1000
	cfg.BatchWindow = time.Hour // batches effectively never flush on their own
	s, hs := testServer(t, cfg)
	base := hs.URL + "/v1/acme"

	got429 := false
	for i := 0; i < cfg.QueueLimit+1; i++ {
		code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest(fmt.Sprintf("bp-%d", i)), nil)
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("ingest %d: status %d", i, code)
		}
	}
	if !got429 {
		t.Fatal("queue over limit never produced 429")
	}
	ctx, cancel := timeoutCtx(t, 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestQuota: MaxTuples bounds the tenant's database size with 413.
func TestQuota(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTuples = 16 // the ecommerce dataset already has 15 tuples
	s, hs := testServer(t, cfg)
	base := hs.URL + "/v1/acme"

	if code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest("q-1"), nil); code != http.StatusAccepted {
		t.Fatalf("first ingest: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest("q-2"), nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-quota ingest: status %d, want 413", code)
	}
	ctx, cancel := timeoutCtx(t, 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrain: Shutdown flushes queued batches (their fixes
// appear in the ledger) and subsequent ingests get 503.
func TestGracefulDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = time.Hour // the drain, not the window, must flush
	s, hs := testServer(t, cfg)
	base := hs.URL + "/v1/acme"

	var ing IngestResponse
	if code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest("d-1"), &ing); code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	ctx, cancel := timeoutCtx(t, 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	tn, err := s.Tenant("acme")
	if err == nil || tn != nil {
		t.Fatal("tenant lookup after drain should fail")
	}
	if code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest("d-2"), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest: status %d, want 503", code)
	}

	// The queued batch must have been flushed on the way down.
	s.mu.Lock()
	acme := s.tenants["acme"]
	s.mu.Unlock()
	fixes, applied, _, _ := acme.fixesSince(0)
	if applied < ing.Token {
		t.Fatalf("drain left applied=%d behind token=%d", applied, ing.Token)
	}
	found := false
	for _, f := range fixes {
		if f.EID == "d-1" && f.Attr == "mfg" && f.New == "Apple" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drained batch's fix missing from ledger (%d fixes)", len(fixes))
	}
}

// TestMetricsEndpoint: per-tenant Prometheus exposition carries the
// serve.* series.
func TestMetricsEndpoint(t *testing.T) {
	_, hs := testServer(t, DefaultConfig())
	base := hs.URL + "/v1/acme"
	var ing IngestResponse
	if code := doJSON(t, http.MethodPost, base+"/ingest", mateX2Ingest("m-1"), &ing); code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	var fixes FixesResponse
	url := fmt.Sprintf("%s/fixes?token=%d&timeout_ms=30000", base, ing.Token)
	if code := doJSON(t, http.MethodGet, url, nil, &fixes); code != http.StatusOK {
		t.Fatalf("fixes: status %d", code)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{"serve_ingest_requests", "serve_batches", "serve_batch_clean", "serve_ingest_visible"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

func timeoutCtx(_ *testing.T, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
