// Package serve is rockd's core: a long-running, multi-tenant
// cleaning-as-a-service layer over rock.Pipeline. The paper deploys
// Rock as a persistent service on a 21-node Kubernetes cluster fed by
// continuous update streams (§3, §6); here one process holds warm
// per-tenant engine state — loaded rules, trained models, the §5.4
// predication layer, and the accumulated truth — behind an HTTP+JSON
// API:
//
//	POST /v1/{tenant}/ingest     queue tuples; returns a session token
//	GET  /v1/{tenant}/fixes      fix ledger; ?token= blocks until covered
//	GET  /v1/{tenant}/query      read one cleaned tuple (?token= as above)
//	POST /v1/{tenant}/clean      full batch clean
//	GET  /v1/{tenant}/metrics    per-tenant Prometheus exposition
//	GET  /v1/{tenant}/telemetry/ per-tenant obs endpoints (spans, events)
//	GET  /healthz                liveness (503 while draining)
//
// Ingests coalesce per tenant for up to Config.BatchWindow (or
// Config.MaxBatch tuples, whichever comes first) and then run one
// incremental clean. The response token gives the read-your-fixes
// session guarantee: a read presenting it blocks until the covering
// batch has materialized, so a client always sees the certain fixes of
// its own writes. Backpressure is a bounded per-tenant queue (429 when
// full) plus an optional tuple quota (413); SIGTERM drains in-flight
// batches before exit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/rock"
)

var (
	errDraining     = errors.New("server draining")
	errBackpressure = errors.New("ingest queue full")
	errQuota        = errors.New("tenant tuple quota exceeded")
)

// Config tunes the service.
type Config struct {
	// BatchWindow is how long ingests coalesce before a flush.
	BatchWindow time.Duration
	// MaxBatch flushes early once this many tuples are queued.
	MaxBatch int
	// QueueLimit bounds queued-but-unmaterialized tuples per tenant;
	// ingests beyond it get 429 (backpressure).
	QueueLimit int
	// MaxTuples caps a tenant's total tuple count (0 = unlimited);
	// ingests beyond it get 413 (quota).
	MaxTuples int
	// CleanTimeout bounds one batch clean; the run degrades gracefully
	// to its certain fixes at the deadline.
	CleanTimeout time.Duration
	// SpanCap is the per-tenant retained-span ring size.
	SpanCap int
	// MaxFixLedger caps the per-tenant retained fix ledger. When a batch
	// pushes the ledger past the cap the oldest entries are truncated;
	// ?since= indices remain stable because they are absolute positions
	// (the tenant tracks how many entries were dropped). 0 = default.
	MaxFixLedger int
}

// DefaultConfig returns serving defaults sized for small tenants.
func DefaultConfig() Config {
	return Config{
		BatchWindow:  20 * time.Millisecond,
		MaxBatch:     64,
		QueueLimit:   1024,
		MaxTuples:    0,
		CleanTimeout: 30 * time.Second,
		SpanCap:      4096,
		MaxFixLedger: 65536,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BatchWindow <= 0 {
		c.BatchWindow = d.BatchWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = d.QueueLimit
	}
	if c.CleanTimeout <= 0 {
		c.CleanTimeout = d.CleanTimeout
	}
	if c.SpanCap <= 0 {
		c.SpanCap = d.SpanCap
	}
	if c.MaxFixLedger <= 0 {
		c.MaxFixLedger = d.MaxFixLedger
	}
	return c
}

// PipelineFactory builds a tenant's pipeline on first use. The registry
// is the tenant's obs registry (spans already enabled); the factory
// must wire it into the pipeline's Options.Obs so engine metrics land
// on the tenant's /metrics.
type PipelineFactory func(tenant string, reg *obs.Registry) (*rock.Pipeline, error)

// Server is the multi-tenant service: a tenant registry plus the HTTP
// API. Create with New, mount Handler, call Shutdown on SIGTERM.
type Server struct {
	cfg     Config
	factory PipelineFactory
	mux     *http.ServeMux

	mu       sync.Mutex
	tenants  map[string]*Tenant
	draining bool
}

var tenantName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]{0,63}$`)

// New creates a server whose tenants are built lazily by factory.
func New(cfg Config, factory PipelineFactory) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		factory: factory,
		tenants: make(map[string]*Tenant),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/{tenant}/ingest", s.tenantHandler(s.handleIngest))
	s.mux.HandleFunc("GET /v1/{tenant}/fixes", s.tenantHandler(s.handleFixes))
	s.mux.HandleFunc("GET /v1/{tenant}/query", s.tenantHandler(s.handleQuery))
	s.mux.HandleFunc("POST /v1/{tenant}/clean", s.tenantHandler(s.handleClean))
	s.mux.HandleFunc("GET /v1/{tenant}/metrics", s.tenantHandler(s.handleMetrics))
	s.mux.Handle("GET /v1/{tenant}/telemetry/", s.tenantHandler(s.handleTelemetry))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Tenant returns (building if needed) the named tenant.
func (s *Server) Tenant(name string) (*Tenant, error) {
	if !tenantName.MatchString(name) {
		return nil, fmt.Errorf("invalid tenant name %q", name)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	if t, ok := s.tenants[name]; ok {
		s.mu.Unlock()
		return t, nil
	}
	s.mu.Unlock()
	// Build outside the lock: model training can take a while and must
	// not block other tenants' requests.
	reg := obs.New()
	reg.EnableSpans(s.cfg.SpanCap)
	p, err := s.factory(name, reg)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	if t, ok := s.tenants[name]; ok {
		// Lost the build race; the winner's pipeline is the tenant.
		return t, nil
	}
	t := newTenant(name, s.cfg, reg, p)
	s.tenants[name] = t
	return t, nil
}

// Shutdown drains every tenant: new ingests are rejected with 503,
// queued batches flush, and the call returns once all workers exited
// (or ctx expires).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ts := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.beginDrain()
	}
	for _, t := range ts {
		select {
		case <-t.done:
		case <-ctx.Done():
			return fmt.Errorf("drain %s: %w", t.name, ctx.Err())
		}
	}
	return nil
}

// ---- HTTP plumbing ----

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errBackpressure):
		return http.StatusTooManyRequests
	case errors.Is(err, errQuota):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) tenantHandler(h func(http.ResponseWriter, *http.Request, *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.Tenant(r.PathValue("tenant"))
		if err != nil {
			code := statusOf(err)
			if code == http.StatusInternalServerError {
				code = http.StatusBadRequest
			}
			writeError(w, code, err)
			return
		}
		h(w, r, t)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	n := len(s.tenants)
	s.mu.Unlock()
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"draining": draining, "tenants": n})
}

// ---- ingest ----

// IngestTuple is one inserted row; values are rendered with the same
// textual forms data.Parse accepts ("null" for null cells).
type IngestTuple struct {
	EID    string   `json:"eid"`
	Values []string `json:"values"`
}

// IngestUpdate overwrites one existing cell.
type IngestUpdate struct {
	TID   int    `json:"tid"`
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// IngestRequest is the POST /ingest body: inserts and updates against
// one relation.
type IngestRequest struct {
	Rel     string         `json:"rel"`
	Tuples  []IngestTuple  `json:"tuples,omitempty"`
	Updates []IngestUpdate `json:"updates,omitempty"`
}

// IngestResponse carries the session token covering this ingest.
type IngestResponse struct {
	Token    uint64 `json:"token"`
	Accepted int    `json:"accepted"`
	Pending  int    `json:"pending"`
}

// parseOps turns an IngestRequest into queueable ops, validating
// against the relation schema (read-only, safe off the run lock).
func parseOps(db *data.Database, req IngestRequest) ([]op, int, error) {
	rel := db.Rel(req.Rel)
	if rel == nil {
		return nil, 0, fmt.Errorf("unknown relation %q", req.Rel)
	}
	attrs := rel.Schema.Attrs
	ops := make([]op, 0, len(req.Tuples)+len(req.Updates))
	for _, tu := range req.Tuples {
		if tu.EID == "" {
			return nil, 0, fmt.Errorf("tuple missing eid")
		}
		if len(tu.Values) != len(attrs) {
			return nil, 0, fmt.Errorf("tuple %s: %d values for %d attributes", tu.EID, len(tu.Values), len(attrs))
		}
		vals := make([]data.Value, len(attrs))
		for i, raw := range tu.Values {
			v, err := data.Parse(attrs[i].Type, raw)
			if err != nil {
				return nil, 0, fmt.Errorf("tuple %s.%s: %w", tu.EID, attrs[i].Name, err)
			}
			vals[i] = v
		}
		ops = append(ops, op{rel: req.Rel, eid: tu.EID, values: vals})
	}
	for _, up := range req.Updates {
		i := rel.Schema.Index(up.Attr)
		if i < 0 {
			return nil, 0, fmt.Errorf("update: unknown attribute %s.%s", req.Rel, up.Attr)
		}
		v, err := data.Parse(attrs[i].Type, up.Value)
		if err != nil {
			return nil, 0, fmt.Errorf("update %s[%d].%s: %w", req.Rel, up.TID, up.Attr, err)
		}
		ops = append(ops, op{rel: req.Rel, update: true, tid: up.TID, attr: up.Attr, val: v})
	}
	return ops, len(req.Tuples), nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		t.reg.Inc("serve.ingest.bad_request")
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	ops, inserts, err := parseOps(t.p.DB(), req)
	if err != nil {
		t.reg.Inc("serve.ingest.bad_request")
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(ops) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty ingest"))
		return
	}
	token, pending, err := t.enqueue(ops, inserts)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Token: token, Accepted: len(ops), Pending: pending})
}

// ---- reads ----

// FixesResponse is the fix ledger past ?since=, plus the watermark.
// Total counts every fix ever applied; Offset is the index of the
// oldest entry still retained (entries before it were truncated by
// Config.MaxFixLedger). ?since= indices are absolute, so a cursor of
// Total stays valid across truncations.
type FixesResponse struct {
	Applied uint64      `json:"applied"`
	Total   int         `json:"total"`
	Offset  int         `json:"offset,omitempty"`
	Fixes   []FixRecord `json:"fixes"`
}

// sessionWait honours ?token= (block until applied) with ?timeout_ms=
// bounding the wait (default 10s). Returns false after writing an
// error response.
func sessionWait(w http.ResponseWriter, r *http.Request, t *Tenant) bool {
	q := r.URL.Query()
	tok := q.Get("token")
	if tok == "" {
		return true
	}
	token, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad token %q", tok))
		return false
	}
	timeout := 10 * time.Second
	if ms := q.Get("timeout_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q", ms))
			return false
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := t.waitApplied(ctx, token); err != nil {
		writeError(w, http.StatusGatewayTimeout, err)
		return false
	}
	return true
}

func (s *Server) handleFixes(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if !sessionWait(w, r, t) {
		return
	}
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", v))
			return
		}
		since = n
	}
	fixes, applied, total, offset := t.fixesSince(since)
	writeJSON(w, http.StatusOK, FixesResponse{Applied: applied, Total: total, Offset: offset, Fixes: fixes})
}

// QueryResponse is one cleaned tuple.
type QueryResponse struct {
	Rel     string            `json:"rel"`
	TID     int               `json:"tid"`
	EID     string            `json:"eid"`
	Values  map[string]string `json:"values"`
	Applied uint64            `json:"applied"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if !sessionWait(w, r, t) {
		return
	}
	q := r.URL.Query()
	rel := q.Get("rel")
	tid, err := strconv.Atoi(q.Get("tid"))
	if rel == "" || err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query needs rel= and numeric tid="))
		return
	}
	vals, eid, err := t.readTuple(rel, tid)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	t.mu.Lock()
	applied := t.applied
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, QueryResponse{Rel: rel, TID: tid, EID: eid, Values: vals, Applied: applied})
}

// ---- full clean ----

// CleanResponse summarises a full batch clean.
type CleanResponse struct {
	Corrections int         `json:"corrections"`
	Rounds      int         `json:"rounds"`
	Partial     bool        `json:"partial"`
	Fixes       []FixRecord `json:"fixes"`
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request, t *Tenant) {
	ctx, cancel := context.WithTimeout(r.Context(), t.cfg.CleanTimeout)
	defer cancel()
	rep, err := t.cleanFull(ctx)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	fixes := make([]FixRecord, 0, len(rep.Corrections))
	for _, c := range rep.Corrections {
		fixes = append(fixes, FixRecord{
			Cell: c.Cell.String(), Rel: c.Cell.Rel, TID: c.Cell.TID, Attr: c.Cell.Attr,
			Old: c.Old.String(), New: c.New.String(), Rule: c.Rule, IsNew: c.IsNew,
		})
	}
	writeJSON(w, http.StatusOK, CleanResponse{
		Corrections: len(rep.Corrections),
		Rounds:      rep.ChaseRounds,
		Partial:     rep.Partial,
		Fixes:       fixes,
	})
}

// ---- telemetry ----

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = t.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request, t *Tenant) {
	prefix := "/v1/" + r.PathValue("tenant") + "/telemetry"
	http.StripPrefix(prefix, t.reg.Handler()).ServeHTTP(w, r)
}
