package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the hierarchical span layer of the observability package:
// a run records a tree of timed intervals — clean → detect/chase → round
// → work unit → exec operator / ML predicate call — alongside the flat
// counters. Spans follow the same discipline as the rest of the
// registry: recording is race-clean, every receiver is nil-safe, and
// retention is bounded (completed spans land in a ring like the event
// log, dropping and counting the oldest on overflow). Timestamps are
// offsets from the registry's creation read through time.Since, so they
// use the monotonic clock and are immune to wall-clock steps.
//
// Recording is opt-in: spans are disabled until EnableSpans is called,
// and a disabled registry hands out nil *Span handles whose methods all
// no-op — instrumented code pays one atomic load per StartSpan and
// nothing per tag/End. Tracing is therefore determinism-neutral by
// construction: spans only observe, nothing reads them back during a
// run, and the traced fix set is bit-identical to the untraced one
// (pinned by rock's determinism matrix test).

// defaultSpanCap bounds completed-span retention; the oldest records are
// dropped (and counted) once the ring is full.
const defaultSpanCap = 16384

// SpanRecord is one completed span: a named interval with a parent link.
// IDs are allocated monotonically at span start, so a parent's ID is
// always smaller than its children's — parent links are acyclic by
// construction. Durations are nanoseconds in the JSON encoding,
// measured from the registry's creation.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 = root
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	// Rule is the REE++ the span concerns, when any.
	Rule string `json:"rule,omitempty"`
	// Node is the worker that executed the span's work (unit spans).
	Node string `json:"node,omitempty"`
	// Round is the 1-based chase round, when the span is round-scoped.
	Round int `json:"round,omitempty"`
	// N is a name-specific magnitude (valuations, fixes, ...).
	N int64 `json:"n,omitempty"`
	// Detail is free-form context (partition key, model name, ...).
	Detail string `json:"detail,omitempty"`
}

// Span is an open span handle. It is owned by the goroutine that started
// it: tag it with the setters, then End it exactly once to push the
// completed record into the registry's span ring. A nil *Span (from a
// nil or span-disabled registry) is a valid no-op handle for every
// method, so instrumented code never branches.
type Span struct {
	reg  *Registry
	rec  SpanRecord
	done atomic.Bool
}

// spanRing is the bounded completed-span store inside a Registry.
type spanRing struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu      sync.Mutex
	spans   []SpanRecord
	next    int
	cap     int
	dropped uint64
}

// EnableSpans turns span recording on, retaining at most cap completed
// spans (cap <= 0 selects the default). Idempotent; safe to call
// concurrently with recording. Nil-safe.
func (r *Registry) EnableSpans(cap int) {
	if r == nil {
		return
	}
	r.sp.mu.Lock()
	if r.sp.cap == 0 {
		if cap <= 0 {
			cap = defaultSpanCap
		}
		r.sp.cap = cap
	}
	r.sp.mu.Unlock()
	r.sp.enabled.Store(true)
}

// SpansEnabled reports whether the registry records spans (false for nil).
func (r *Registry) SpansEnabled() bool {
	return r != nil && r.sp.enabled.Load()
}

// StartSpan opens a span under parent (nil parent = root). Returns nil —
// a valid no-op handle — on a nil registry or when spans are disabled,
// so callers never check. The ID is allocated immediately and is
// strictly greater than the parent's.
func (r *Registry) StartSpan(name string, parent *Span) *Span {
	if r == nil || !r.sp.enabled.Load() {
		return nil
	}
	s := &Span{reg: r}
	s.rec.ID = r.sp.seq.Add(1)
	if parent != nil {
		s.rec.Parent = parent.rec.ID
	}
	s.rec.Name = name
	s.rec.Start = time.Since(r.start)
	return s
}

// SetRule tags the span with a rule ID. Nil-safe.
func (s *Span) SetRule(rule string) {
	if s != nil {
		s.rec.Rule = rule
	}
}

// SetNode tags the span with the executing worker. Nil-safe.
func (s *Span) SetNode(node string) {
	if s != nil {
		s.rec.Node = node
	}
}

// SetRound tags the span with a chase round. Nil-safe.
func (s *Span) SetRound(round int) {
	if s != nil {
		s.rec.Round = round
	}
}

// SetN tags the span with a magnitude. Nil-safe.
func (s *Span) SetN(n int64) {
	if s != nil {
		s.rec.N = n
	}
}

// SetDetail tags the span with free-form context. Nil-safe.
func (s *Span) SetDetail(d string) {
	if s != nil {
		s.rec.Detail = d
	}
}

// ID returns the span's ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// End closes the span and records it. Nil-safe; a second End is a no-op.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.rec.End = time.Since(s.reg.start)
	sp := &s.reg.sp
	sp.mu.Lock()
	if len(sp.spans) < sp.cap {
		sp.spans = append(sp.spans, s.rec)
	} else {
		sp.spans[sp.next] = s.rec
		sp.next = (sp.next + 1) % sp.cap
		sp.dropped++
	}
	sp.mu.Unlock()
}

// Spans returns the retained completed spans in completion order (nil
// for a nil or span-disabled registry).
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.sp.mu.Lock()
	defer r.sp.mu.Unlock()
	if len(r.sp.spans) == 0 {
		return nil
	}
	out := make([]SpanRecord, 0, len(r.sp.spans))
	out = append(out, r.sp.spans[r.sp.next:]...)
	out = append(out, r.sp.spans[:r.sp.next]...)
	return out
}

// DroppedSpans reports how many completed spans the ring evicted.
func (r *Registry) DroppedSpans() uint64 {
	if r == nil {
		return 0
	}
	r.sp.mu.Lock()
	defer r.sp.mu.Unlock()
	return r.sp.dropped
}
