package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4), entirely with the standard library — Rock carries no
// dependencies, so the format is written by hand. Every counter, gauge
// and histogram of the registry is exposed, plus the event/span ring
// bookkeeping, under a "rock_" namespace with metric names sanitised to
// the [a-zA-Z0-9_] charset Prometheus requires ("chase.node.node-0.units"
// becomes "rock_chase_node_node_0_units"). Output is sorted by name, so
// consecutive scrapes diff cleanly.

// promName sanitises a registry metric name into a valid Prometheus
// metric name under the rock_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("rock_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot as Prometheus text exposition.
// Histograms are flattened to summary-style gauges (count, sum_ns,
// max_ns, p50_ns, p95_ns) because the registry keeps quantiles, not
// cumulative buckets.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var lines []string
	add := func(typ, name string, v interface{}) {
		lines = append(lines, fmt.Sprintf("# TYPE %s %s\n%s %v\n", name, typ, name, v))
	}
	for name, v := range s.Counters {
		add("counter", promName(name), v)
	}
	for name, v := range s.Gauges {
		add("gauge", promName(name), v)
	}
	for name, h := range s.Histograms {
		p := promName(name)
		add("counter", p+"_count", h.Count)
		add("counter", p+"_sum_ns", int64(h.Sum))
		add("gauge", p+"_max_ns", int64(h.Max))
		add("gauge", p+"_p50_ns", int64(h.P50))
		add("gauge", p+"_p95_ns", int64(h.P95))
	}
	// Ring bookkeeping: how much of the bounded logs survived.
	add("counter", "rock_events_dropped", s.DroppedEvents)
	add("gauge", "rock_events_retained", len(s.Events))
	add("gauge", "rock_events_oldest_seq", s.OldestEventSeq)
	add("counter", "rock_spans_dropped", s.DroppedSpans)
	add("gauge", "rock_spans_retained", len(s.Spans))
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l); err != nil {
			return err
		}
	}
	return nil
}
