// Package obs is Rock's unified observability layer: one Registry of
// named counters, gauges and duration histograms plus a bounded
// structured event log, threaded through every execution layer (detect,
// chase, exec, ml predication, cluster/crystal). The paper's evaluation
// (§6, Figures 4(h)/4(l)) is driven by per-phase, per-round measurements
// — detection vs. chase wall clock, rounds to fixpoint, ML-call counts,
// worker utilization and steal rates — and this package is the single
// source of truth those measurements are read from: chase.Report and
// rock.Report fields are views over a Registry, the -metrics-out flag
// dumps its Snapshot, and benchkit tables carry the same counters.
//
// Every recording path is safe for concurrent use (atomic counters and
// gauges, lock-striped maps are unnecessary at this fan-in: handle
// lookup takes an RLock and the hot paths hold on to handles). All
// methods are nil-receiver safe, so instrumented code never needs a
// nil check: a nil *Registry records nothing at negligible cost.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value that may move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histWindow bounds a histogram's sample memory: once full, new samples
// overwrite the oldest slot (sliding window), so quantiles describe the
// most recent histWindow observations while count/sum/max stay exact
// over the full run. Deterministic — no sampling randomness.
const histWindow = 4096

// Histogram records durations and reports count, sum, max and p50/p95
// over a bounded sliding window of samples.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	max     time.Duration
	samples []time.Duration // ring of up to histWindow entries
	next    int             // overwrite cursor once the ring is full
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < histWindow {
		h.samples = append(h.samples, d)
	} else {
		h.samples[h.next] = d
		h.next = (h.next + 1) % histWindow
	}
	h.mu.Unlock()
}

// HistogramStat is a histogram's exported summary. Durations are
// nanoseconds in the JSON encoding.
type HistogramStat struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
}

// Stat summarises the histogram (zero value for nil).
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	h.mu.Lock()
	st := HistogramStat{Count: h.count, Sum: h.sum, Max: h.max}
	sorted := append([]time.Duration(nil), h.samples...)
	h.mu.Unlock()
	if len(sorted) > 0 {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.P50 = quantile(sorted, 0.50)
		st.P95 = quantile(sorted, 0.95)
	}
	return st
}

// quantile reads the q-th quantile from an ascending sample slice using
// the nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Event is one entry of the structured event log: a round starting, a
// rule activating, a unit executing on a node, a fix applied or
// rejected, a steal. Fields not meaningful for a kind stay zero.
type Event struct {
	Seq  uint64        `json:"seq"`
	At   time.Duration `json:"at_ns"` // since registry creation
	Kind string        `json:"kind"`
	// Node is the worker that the event concerns (unit execution, steals).
	Node string `json:"node,omitempty"`
	// Rule is the REE++ involved, when any.
	Rule string `json:"rule,omitempty"`
	// Round is the 1-based chase round, when the event is round-scoped.
	Round int `json:"round,omitempty"`
	// N is a kind-specific magnitude (units submitted, fixes applied, ...).
	N int64 `json:"n,omitempty"`
	// Detail is free-form context (fix description, steal victim, ...).
	Detail string `json:"detail,omitempty"`
}

// defaultEventCap bounds the event log; the oldest events are dropped
// (and counted) once the ring is full.
const defaultEventCap = 4096

// Registry is the metric/trace store one run threads through its layers.
// The zero value is not usable; call New. A nil *Registry is a valid
// no-op sink for every method.
type Registry struct {
	start time.Time

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	evMu    sync.Mutex
	events  []Event
	evNext  int
	evCap   int
	evSeq   uint64
	dropped uint64

	// sp is the hierarchical span ring (span.go); disabled until
	// EnableSpans, so default runs pay one atomic load per StartSpan.
	sp spanRing
}

// New creates a registry with the default event-log capacity.
func New() *Registry { return NewCap(defaultEventCap) }

// NewCap creates a registry whose event log keeps at most evCap entries
// (evCap <= 0 selects the default).
func NewCap(evCap int) *Registry {
	if evCap <= 0 {
		evCap = defaultEventCap
	}
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		evCap:    evCap,
	}
}

// Counter returns the named counter handle, creating it on first use.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n uint64) { r.Counter(name).Add(n) }

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Counter(name).Add(1) }

// CounterValue reads the named counter (0 when absent or nil registry).
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// Gauge returns the named gauge handle, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// SetGauge stores v under the named gauge.
func (r *Registry) SetGauge(name string, v int64) { r.Gauge(name).Set(v) }

// GaugeValue reads the named gauge (0 when absent or nil registry).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	return g.Value()
}

// Histogram returns the named histogram handle, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe records a duration under the named histogram.
func (r *Registry) Observe(name string, d time.Duration) { r.Histogram(name).Observe(d) }

// Emit appends ev to the bounded event log, stamping Seq and At. The
// oldest entry is dropped (and counted) when the log is full.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	at := time.Since(r.start)
	r.evMu.Lock()
	r.evSeq++
	ev.Seq = r.evSeq
	ev.At = at
	if len(r.events) < r.evCap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.evNext] = ev
		r.evNext = (r.evNext + 1) % r.evCap
		r.dropped++
	}
	r.evMu.Unlock()
}

// Events returns the retained events in emission order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.evNext:]...)
	out = append(out, r.events[:r.evNext]...)
	return out
}

// Snapshot is a point-in-time, JSON-serialisable export of a registry:
// what -metrics-out writes and what Report.Metrics carries.
type Snapshot struct {
	Counters      map[string]uint64        `json:"counters"`
	Gauges        map[string]int64         `json:"gauges,omitempty"`
	Histograms    map[string]HistogramStat `json:"histograms,omitempty"`
	Events        []Event                  `json:"events,omitempty"`
	DroppedEvents uint64                   `json:"dropped_events,omitempty"`
	// OldestEventSeq is the sequence number of the oldest RETAINED event:
	// everything below it (1..OldestEventSeq-1, exactly DroppedEvents
	// entries) was evicted by the bounded ring. 0 when no events exist.
	OldestEventSeq uint64 `json:"oldest_event_seq,omitempty"`
	// Spans are the retained completed trace spans (EnableSpans runs
	// only; empty otherwise) and DroppedSpans counts ring evictions.
	Spans        []SpanRecord `json:"spans,omitempty"`
	DroppedSpans uint64       `json:"dropped_spans,omitempty"`
}

// Snapshot exports every metric and the retained events. Safe to call
// concurrently with recording; the result is internally consistent per
// metric (not across metrics). Returns the zero Snapshot for nil.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramStat),
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Stat()
	}
	snap.Events = r.Events()
	r.evMu.Lock()
	snap.DroppedEvents = r.dropped
	r.evMu.Unlock()
	if len(snap.Events) > 0 {
		snap.OldestEventSeq = snap.Events[0].Seq
	}
	snap.Spans = r.Spans()
	snap.DroppedSpans = r.DroppedSpans()
	return snap
}

// WriteJSON writes the snapshot, indented, to w.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
