package obs

import (
	"encoding/json"
	"net/http"
)

// This file is the live telemetry endpoint: a handler set serving the
// registry's CURRENT state while a run is in flight — the stepping
// stone to rockd's serving-side observability (ROADMAP items 1–2). The
// paper's evaluation reads its cluster's monitoring mid-run (§6); here
// an in-process HTTP mux substitutes for the Kubernetes monitoring
// stack (see DESIGN.md's substitution table):
//
//	/metrics   Prometheus text exposition of every counter/gauge/histogram
//	/events    the bounded event ring as JSON (plus drop bookkeeping)
//	/spans     completed trace spans as JSON
//	/snapshot  the full Snapshot, exactly what -metrics-out writes
//	/trace     the Chrome trace-event export of /spans
//
// Every handler snapshots under the registry's own locks, so scraping
// concurrently with recording is race-clean; a nil *Registry serves
// empty-but-valid documents.

// AttachHandlers registers the telemetry endpoints on mux. Safe on a
// nil registry (handlers then serve empty documents).
func (r *Registry) AttachHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		snap := r.Snapshot()
		writeJSON(w, struct {
			Events         []Event `json:"events"`
			DroppedEvents  uint64  `json:"dropped_events"`
			OldestEventSeq uint64  `json:"oldest_event_seq"`
		}{snap.Events, snap.DroppedEvents, snap.OldestEventSeq})
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Spans        []SpanRecord `json:"spans"`
			DroppedSpans uint64       `json:"dropped_spans"`
		}{r.Spans(), r.DroppedSpans()})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, r.Spans())
	})
}

// Handler returns a standalone mux with the telemetry endpoints.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	r.AttachHandlers(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
