package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// This file exports completed spans in the Chrome trace-event JSON
// format (the {"traceEvents": [...]} object form), loadable in Perfetto
// or chrome://tracing. Each span becomes one complete ("X") event;
// spans are laid out on one lane (tid) per worker node — the span's
// Node tag names the worker that actually executed it, so a parallel
// chase's interleaving and steals are visually inspectable — with
// untagged spans (clean/phase/round scaffolding) on lane 0. Thread
// metadata events name the lanes.

// traceEvent is one Chrome trace-event entry. Ts/Dur are microseconds
// (float, so sub-µs spans keep their width).
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as a Perfetto-loadable Chrome trace.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	// One lane per worker node, lane 0 for the run scaffolding.
	nodes := map[string]bool{}
	for _, s := range spans {
		if s.Node != "" {
			nodes[s.Node] = true
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	tid := map[string]int{"": 0}
	for i, n := range names {
		tid[n] = i + 1
	}

	tf := traceFile{DisplayTimeUnit: "ms"}
	meta := func(t int, label string) {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]interface{}{"name": label},
		})
	}
	meta(0, "run")
	for _, n := range names {
		meta(tid[n], n)
	}
	for _, s := range spans {
		args := map[string]interface{}{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Rule != "" {
			args["rule"] = s.Rule
		}
		if s.Round != 0 {
			args["round"] = s.Round
		}
		if s.N != 0 {
			args["n"] = s.N
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: s.Name,
			Cat:  "rock",
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  1,
			Tid:  tid[s.Node],
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(tf)
}
