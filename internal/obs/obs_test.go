package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	r.Inc("a")
	r.Add("a", 4)
	if got := r.CounterValue("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	r.SetGauge("g", -7)
	if got := r.GaugeValue("g"); got != -7 {
		t.Fatalf("gauge g = %d, want -7", got)
	}
	// Handles are stable: the same name yields the same counter.
	c := r.Counter("a")
	c.Inc()
	if got := r.CounterValue("a"); got != 6 {
		t.Fatalf("counter a after handle Inc = %d, want 6", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	st := h.Stat()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.Max != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", st.Max)
	}
	if st.Sum != 5050*time.Millisecond {
		t.Fatalf("sum = %v, want 5050ms", st.Sum)
	}
	if st.P50 < 49*time.Millisecond || st.P50 > 52*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", st.P50)
	}
	if st.P95 < 94*time.Millisecond || st.P95 > 97*time.Millisecond {
		t.Fatalf("p95 = %v, want ~95ms", st.P95)
	}
}

func TestHistogramWindowBound(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < histWindow*2; i++ {
		h.Observe(time.Duration(i))
	}
	st := h.Stat()
	if st.Count != histWindow*2 {
		t.Fatalf("count = %d, want %d (exact over full run)", st.Count, histWindow*2)
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n != histWindow {
		t.Fatalf("sample window = %d, want %d", n, histWindow)
	}
	// Quantiles describe the most recent window: all samples >= histWindow.
	if st.P50 < time.Duration(histWindow) {
		t.Fatalf("p50 = %d, want >= %d (old samples evicted)", st.P50, histWindow)
	}
}

func TestEventRingBound(t *testing.T) {
	r := NewCap(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: "k", N: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest dropped: the survivors are 6..9 in emission order.
	for i, ev := range evs {
		if want := int64(6 + i); ev.N != want {
			t.Fatalf("event[%d].N = %d, want %d", i, ev.N, want)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	snap := r.Snapshot()
	if snap.DroppedEvents != 6 {
		t.Fatalf("dropped = %d, want 6", snap.DroppedEvents)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Inc("x")
	r.Add("x", 2)
	r.SetGauge("g", 1)
	r.Observe("h", time.Second)
	r.Emit(Event{Kind: "k"})
	r.Counter("x").Inc()
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(time.Second)
	if r.CounterValue("x") != 0 || r.GaugeValue("g") != 0 {
		t.Fatal("nil registry should read zero")
	}
	if r.Events() != nil {
		t.Fatal("nil registry should have no events")
	}
	snap := r.Snapshot()
	if snap.Counters != nil {
		t.Fatal("nil registry snapshot should be zero")
	}
	if st := r.Histogram("h").Stat(); st.Count != 0 {
		t.Fatal("nil histogram should be empty")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("c")
				r.SetGauge("g", int64(i))
				r.Observe("h", time.Duration(i))
				if i%100 == 0 {
					r.Emit(Event{Kind: "tick", N: int64(w)})
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if st := r.Histogram("h").Stat(); st.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", st.Count)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Add("chase.rounds", 3)
	r.SetGauge("chase.queue_depth", 12)
	r.Observe("chase.unit", 5*time.Millisecond)
	r.Emit(Event{Kind: "round.start", Round: 1})
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if back.Counters["chase.rounds"] != 3 {
		t.Fatalf("counters round-trip = %v", back.Counters)
	}
	if back.Gauges["chase.queue_depth"] != 12 {
		t.Fatalf("gauges round-trip = %v", back.Gauges)
	}
	if back.Histograms["chase.unit"].Count != 1 {
		t.Fatalf("histograms round-trip = %v", back.Histograms)
	}
	if len(back.Events) != 1 || back.Events[0].Kind != "round.start" {
		t.Fatalf("events round-trip = %v", back.Events)
	}
}
