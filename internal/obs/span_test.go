package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNilSafety pins the no-op contract: every span method on a nil
// registry, a span-disabled registry, or a nil *Span handle must be safe.
func TestSpanNilSafety(t *testing.T) {
	var nilReg *Registry
	nilReg.EnableSpans(8)
	if nilReg.SpansEnabled() {
		t.Fatal("nil registry reports spans enabled")
	}
	if s := nilReg.StartSpan("x", nil); s != nil {
		t.Fatal("nil registry handed out a non-nil span")
	}
	if got := nilReg.Spans(); got != nil {
		t.Fatalf("nil registry retained spans: %v", got)
	}
	if got := nilReg.DroppedSpans(); got != 0 {
		t.Fatalf("nil registry dropped %d spans", got)
	}

	disabled := New()
	if disabled.SpansEnabled() {
		t.Fatal("fresh registry has spans enabled")
	}
	if s := disabled.StartSpan("x", nil); s != nil {
		t.Fatal("span-disabled registry handed out a non-nil span")
	}

	// A nil *Span is the no-op handle instrumented code holds when
	// tracing is off: every method must be callable.
	var s *Span
	s.SetRule("r1")
	s.SetNode("node-0")
	s.SetRound(3)
	s.SetN(42)
	s.SetDetail("part")
	if s.ID() != 0 {
		t.Fatal("nil span has a non-zero ID")
	}
	s.End()
	s.End()
}

// TestSpanHierarchy pins ID monotonicity (parent < child, so parent
// links are acyclic by construction) and End idempotence.
func TestSpanHierarchy(t *testing.T) {
	r := New()
	r.EnableSpans(0)
	if !r.SpansEnabled() {
		t.Fatal("EnableSpans did not enable spans")
	}
	root := r.StartSpan("clean", nil)
	child := r.StartSpan("chase", root)
	grand := r.StartSpan("round", child)
	if root.ID() == 0 || child.ID() <= root.ID() || grand.ID() <= child.ID() {
		t.Fatalf("span IDs not strictly increasing: %d, %d, %d", root.ID(), child.ID(), grand.ID())
	}
	grand.SetRound(1)
	grand.End()
	grand.End() // idempotent: must not record twice
	child.End()
	root.End()
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3 (double End recorded?)", len(spans))
	}
	byID := make(map[uint64]SpanRecord)
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent != 0 {
			p, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("span %d has dangling parent %d", sp.ID, sp.Parent)
			}
			if p.ID >= sp.ID {
				t.Fatalf("parent %d not older than child %d", p.ID, sp.ID)
			}
		}
		if sp.End < sp.Start {
			t.Fatalf("span %d ends (%v) before it starts (%v)", sp.ID, sp.End, sp.Start)
		}
	}
	if got := byID[grand.ID()].Round; got != 1 {
		t.Fatalf("round tag lost: got %d", got)
	}
}

// TestSpanRingOverflow pins the bounded retention: a cap-4 ring fed 10
// spans keeps the newest 4 in completion order and counts 6 drops, in
// both the direct accessors and the Snapshot/Prometheus views.
func TestSpanRingOverflow(t *testing.T) {
	r := New()
	r.EnableSpans(4)
	for i := 1; i <= 10; i++ {
		s := r.StartSpan(fmt.Sprintf("s%d", i), nil)
		s.End()
	}
	if got := r.DroppedSpans(); got != 6 {
		t.Fatalf("dropped %d spans, want 6", got)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", i+7); sp.Name != want {
			t.Fatalf("retained[%d] = %s, want %s (completion order broken)", i, sp.Name, want)
		}
	}
	snap := r.Snapshot()
	if snap.DroppedSpans != 6 || len(snap.Spans) != 4 {
		t.Fatalf("snapshot: %d dropped / %d retained, want 6/4", snap.DroppedSpans, len(snap.Spans))
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rock_spans_dropped 6\n", "rock_spans_retained 4\n"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestEventRingOverflow pins the event ring's drop bookkeeping exposed
// by Snapshot (satellite: dropped count + oldest retained sequence).
func TestEventRingOverflow(t *testing.T) {
	r := NewCap(4)
	for i := 1; i <= 10; i++ {
		r.Emit(Event{Kind: "tick", N: int64(i)})
	}
	snap := r.Snapshot()
	if snap.DroppedEvents != 6 {
		t.Fatalf("dropped %d events, want 6", snap.DroppedEvents)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	// 10 emitted, 4 retained: seqs 1..6 evicted, oldest retained is 7.
	if snap.OldestEventSeq != 7 {
		t.Fatalf("oldest retained seq %d, want 7", snap.OldestEventSeq)
	}
	for i, ev := range snap.Events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rock_events_dropped 6\n", "rock_events_retained 4\n", "rock_events_oldest_seq 7\n"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestSpanConcurrency hammers the span API from many goroutines while
// readers snapshot concurrently; run under -race this pins the layer's
// race-cleanliness.
func TestSpanConcurrency(t *testing.T) {
	r := New()
	r.EnableSpans(64) // small cap so overflow runs concurrently too
	root := r.StartSpan("run", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := r.StartSpan("unit", root)
				s.SetRule("r1")
				s.SetNode(fmt.Sprintf("node-%d", g))
				s.SetN(int64(i))
				s.End()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Spans()
				_ = r.DroppedSpans()
				snap := r.Snapshot()
				_ = snap.WritePrometheus(&bytes.Buffer{})
				_ = WriteChromeTrace(&bytes.Buffer{}, snap.Spans)
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := int(r.DroppedSpans()) + len(r.Spans()); got != 8*100+1 {
		t.Fatalf("dropped+retained = %d, want %d", got, 8*100+1)
	}
}

// TestWriteChromeTrace pins the trace-event export: valid JSON, complete
// ("X") events in microseconds, acyclic parent links, and one named lane
// per worker node.
func TestWriteChromeTrace(t *testing.T) {
	r := New()
	r.EnableSpans(0)
	root := r.StartSpan("clean", nil)
	u1 := r.StartSpan("unit", root)
	u1.SetNode("node-0")
	u1.End()
	u2 := r.StartSpan("unit", root)
	u2.SetNode("node-1")
	u2.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Spans()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var xEvents, lanes int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			id, _ := ev.Args["id"].(float64)
			parent, _ := ev.Args["parent"].(float64)
			if id == 0 {
				t.Fatalf("X event %q missing args.id", ev.Name)
			}
			if parent >= id {
				t.Fatalf("X event %q: parent %v >= id %v", ev.Name, parent, id)
			}
			if ev.Dur < 0 {
				t.Fatalf("X event %q: negative duration %v", ev.Name, ev.Dur)
			}
		case "M":
			lanes++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if xEvents != 3 {
		t.Fatalf("trace has %d X events, want 3", xEvents)
	}
	// Lanes: the run lane plus node-0 and node-1.
	if lanes != 3 {
		t.Fatalf("trace has %d thread_name lanes, want 3", lanes)
	}
}

// TestTelemetryEndpoints exercises the live handler set over HTTP while
// a writer records concurrently: every endpoint must answer with a
// valid document mid-run.
func TestTelemetryEndpoints(t *testing.T) {
	r := New()
	r.EnableSpans(0)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Inc("chase.valuations")
			r.Observe("unit_ns", time.Duration(i)*time.Microsecond)
			r.Emit(Event{Kind: "unit_done", Node: "node-0"})
			s := r.StartSpan("unit", nil)
			s.End()
		}
	}()

	get := func(path string) (string, []byte) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.Header.Get("Content-Type"), body.Bytes()
	}

	ct, metrics := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(metrics), "rock_chase_valuations") {
		t.Fatalf("/metrics missing rock_chase_valuations:\n%s", metrics)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(metrics)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("/metrics line not `name value`: %q", line)
		}
	}

	for _, path := range []string{"/events", "/spans", "/snapshot", "/trace"} {
		ct, body := get(path)
		if !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s content type %q", path, ct)
		}
		var v interface{}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s is not valid JSON: %v", path, err)
		}
	}
	close(stop)
	wg.Wait()

	// A nil registry serves empty-but-valid documents.
	var nilReg *Registry
	nilSrv := httptest.NewServer(nilReg.Handler())
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("nil registry /metrics status %d", resp.StatusCode)
	}
}
