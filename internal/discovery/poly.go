package discovery

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
)

// Polynomial is an arithmetical correlation among numerical attributes
// discovered per paper §5.4: target ≈ Σ w_i · term_i + intercept, where a
// term is an attribute or a pairwise product of attributes. The expression
// is interpretable (zero-weight terms are dropped by LASSO) and usable as
// an error detector: a tuple whose target deviates from the expression by
// more than Tolerance is flagged.
type Polynomial struct {
	Rel       string
	Target    string
	Terms     []PolyTerm
	Intercept float64
	// Tolerance is the residual bound for violation checks (derived from
	// the training residuals).
	Tolerance float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
}

// PolyTerm is one weighted term of the expression.
type PolyTerm struct {
	// Attrs holds one attribute (linear) or two (pairwise product).
	Attrs  []string
	Weight float64
}

// String renders the learned expression.
func (p *Polynomial) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s.%s ≈ ", p.Rel, p.Target)
	for i, t := range p.Terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.4g·%s", t.Weight, strings.Join(t.Attrs, "·"))
	}
	if p.Intercept != 0 || len(p.Terms) == 0 {
		fmt.Fprintf(&b, " + %.4g", p.Intercept)
	}
	return b.String()
}

// Eval computes the expression for one tuple; ok is false when a needed
// attribute is null.
func (p *Polynomial) Eval(rel *data.Relation, t *data.Tuple) (float64, bool) {
	y := p.Intercept
	for _, term := range p.Terms {
		v := term.Weight
		for _, a := range term.Attrs {
			i := rel.Schema.Index(a)
			if i < 0 || t.Values[i].IsNull() {
				return 0, false
			}
			v *= t.Values[i].Float()
		}
		y += v
	}
	return y, true
}

// Violates reports whether the tuple's target deviates beyond tolerance;
// ok is false when target or inputs are null.
func (p *Polynomial) Violates(rel *data.Relation, t *data.Tuple) (violates, ok bool) {
	ti := rel.Schema.Index(p.Target)
	if ti < 0 || t.Values[ti].IsNull() {
		return false, false
	}
	pred, okE := p.Eval(rel, t)
	if !okE {
		return false, false
	}
	return math.Abs(pred-t.Values[ti].Float()) > p.Tolerance, true
}

// PolyOptions tunes polynomial discovery.
type PolyOptions struct {
	// TopFeatures keeps this many attributes after the importance ranking
	// (the XGBoost pruning step; default 4).
	TopFeatures int
	// Lambda is the LASSO penalty (default 0.01).
	Lambda float64
	// MinR2 rejects expressions that explain too little variance.
	MinR2 float64
	// Products enables pairwise product terms.
	Products bool
}

// DefaultPolyOptions returns the shipped configuration.
func DefaultPolyOptions() PolyOptions {
	return PolyOptions{TopFeatures: 4, Lambda: 0.01, MinR2: 0.95}
}

// DiscoverPolynomial learns an arithmetical correlation for target over
// the relation's other numerical attributes, following §5.4: (1) a
// tree-stump ensemble ranks attribute importance by self-supervised
// regression onto the target and prunes irrelevant features; (2) the
// surviving features (and optionally their pairwise products) feed a
// LASSO whose zero weights drop unimportant terms. Returns ok=false when
// no expression clears MinR2 (no arithmetical correlation exists).
func DiscoverPolynomial(rel *data.Relation, target string, opts PolyOptions) (*Polynomial, bool) {
	if opts.TopFeatures <= 0 {
		opts.TopFeatures = 4
	}
	if opts.Lambda <= 0 {
		opts.Lambda = 0.01
	}
	if opts.MinR2 <= 0 {
		opts.MinR2 = 0.95
	}
	ti := rel.Schema.Index(target)
	if ti < 0 {
		return nil, false
	}
	// Candidate numeric features.
	var featAttrs []string
	for _, a := range rel.Schema.Attrs {
		if a.Name == target {
			continue
		}
		if a.Type == data.TInt || a.Type == data.TFloat {
			featAttrs = append(featAttrs, a.Name)
		}
	}
	if len(featAttrs) == 0 {
		return nil, false
	}
	// Training rows: tuples with target and all candidates non-null.
	var xs [][]float64
	var ys []float64
	for _, t := range rel.Tuples {
		if t.Values[ti].IsNull() {
			continue
		}
		row := make([]float64, len(featAttrs))
		ok := true
		for j, a := range featAttrs {
			i := rel.Schema.Index(a)
			if t.Values[i].IsNull() {
				ok = false
				break
			}
			row[j] = t.Values[i].Float()
		}
		if !ok {
			continue
		}
		xs = append(xs, row)
		ys = append(ys, t.Values[ti].Float())
	}
	if len(xs) < 8 {
		return nil, false
	}
	// Step 1: importance ranking prunes irrelevant attributes.
	ens := ml.NewStumpEnsemble(16)
	ens.Fit(xs, ys)
	keep := ens.TopFeatures(len(featAttrs), opts.TopFeatures)
	if len(keep) == 0 {
		return nil, false
	}
	// Step 2: expand terms (linear + optional products) and LASSO-fit.
	type termDef struct{ attrs []int } // indices into featAttrs
	var terms []termDef
	for _, i := range keep {
		terms = append(terms, termDef{attrs: []int{i}})
	}
	if opts.Products {
		for a := 0; a < len(keep); a++ {
			for b := a + 1; b < len(keep); b++ {
				terms = append(terms, termDef{attrs: []int{keep[a], keep[b]}})
			}
		}
	}
	design := make([][]float64, len(xs))
	for r, row := range xs {
		d := make([]float64, len(terms))
		for c, tm := range terms {
			v := 1.0
			for _, i := range tm.attrs {
				v *= row[i]
			}
			d[c] = v
		}
		design[r] = d
	}
	lasso := ml.NewLasso(len(terms), opts.Lambda)
	lasso.Fit(design, ys)

	// Assemble, compute residual stats and R².
	poly := &Polynomial{Rel: rel.Schema.Name, Target: target, Intercept: lasso.Intercept}
	for c, w := range lasso.Weights {
		if math.Abs(w) < 1e-6 {
			continue
		}
		attrs := make([]string, len(terms[c].attrs))
		for k, i := range terms[c].attrs {
			attrs[k] = featAttrs[i]
		}
		poly.Terms = append(poly.Terms, PolyTerm{Attrs: attrs, Weight: w})
	}
	sort.Slice(poly.Terms, func(i, j int) bool {
		return strings.Join(poly.Terms[i].Attrs, "·") < strings.Join(poly.Terms[j].Attrs, "·")
	})
	meanY, ssTot, ssRes := 0.0, 0.0, 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var residuals []float64
	for r := range design {
		pred := lasso.Predict(design[r])
		res := ys[r] - pred
		residuals = append(residuals, math.Abs(res))
		ssRes += res * res
		d := ys[r] - meanY
		ssTot += d * d
	}
	if ssTot > 0 {
		poly.R2 = 1 - ssRes/ssTot
	}
	if poly.R2 < opts.MinR2 || len(poly.Terms) == 0 {
		return nil, false
	}
	// Tolerance: a generous multiple of the MEDIAN residual — robust to a
	// minority of corrupted training rows (which sit in the residual tail
	// and must stay flaggable) — plus a small scale-relative floor.
	sort.Float64s(residuals)
	med := residuals[len(residuals)/2]
	floor := 1e-6 + 1e-3*math.Abs(meanY)
	poly.Tolerance = 6 * med
	if poly.Tolerance < floor {
		poly.Tolerance = floor
	}
	return poly, true
}

// PolyModel wraps a polynomial as a Boolean ML predicate (M_poly): it
// predicts true when the left tuple-vector is CONSISTENT with the learned
// expression. Register it to use the expression inside REE++s.
func PolyModel(name string, rel *data.Relation, p *Polynomial) *ml.FuncModel {
	attrOrder := append([]string(nil), rel.Schema.AttrNames()...)
	return &ml.FuncModel{
		ModelName: name,
		Threshold: 0.5,
		Score: func(left, right []data.Value) float64 {
			// Rebuild a pseudo-tuple from the left vector (the rule passes
			// t[all attrs]).
			if len(left) != len(attrOrder) {
				return 0
			}
			t := &data.Tuple{Values: left}
			violates, ok := p.Violates(rel, t)
			if !ok {
				return 0.5 // nulls: undecided, treated as consistent
			}
			if violates {
				return 0
			}
			return 1
		},
	}
}
