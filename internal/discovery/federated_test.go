package discovery

import (
	"fmt"
	"strings"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
)

// siteEnv builds a Store site; when contradict is true, the site's data
// violates the location→area_code dependency the other sites exhibit.
func siteEnv(t *testing.T, n int, contradict bool) *predicate.Env {
	t.Helper()
	schema := must.Schema("Store",
		data.Attribute{Name: "location", Type: data.TString},
		data.Attribute{Name: "area_code", Type: data.TString},
		data.Attribute{Name: "kind", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	for i := 0; i < n; i++ {
		city, code := "Beijing", "010"
		if i%2 == 1 {
			city, code = "Shanghai", "021"
		}
		if contradict {
			code = fmt.Sprintf("%03d", i%7) // no dependency on this site
		}
		rel.Insert("e", data.S(city), data.S(code), data.S([]string{"retail", "food"}[i%2]))
	}
	db := data.NewDatabase()
	db.Add(rel)
	return predicate.NewEnv(db)
}

func TestFederatedDiscoverAgreesAcrossSites(t *testing.T) {
	sites := []Site{
		{Name: "s1", Env: siteEnv(t, 40, false)},
		{Name: "s2", Env: siteEnv(t, 60, false)},
		{Name: "s3", Env: siteEnv(t, 30, false)},
	}
	rules, err := FederatedDiscover(sites, "Store", DefaultFederatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if strings.Contains(r.String(), "t.location = s.location -> t.area_code = s.area_code") {
			found = true
			if r.Confidence < 0.99 {
				t.Errorf("global confidence too low: %f", r.Confidence)
			}
		}
	}
	if !found {
		t.Errorf("shared dependency not federated among %d rules", len(rules))
	}
}

func TestFederatedDiscoverFiltersLocalOnlyRules(t *testing.T) {
	sites := []Site{
		{Name: "clean", Env: siteEnv(t, 60, false)},
		{Name: "dirty", Env: siteEnv(t, 60, true)}, // contradicts the FD
	}
	rules, err := FederatedDiscover(sites, "Store", DefaultFederatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if strings.Contains(r.String(), "t.location = s.location -> t.area_code = s.area_code") {
			t.Errorf("rule contradicted by one site must not survive globally: %s (conf %f)", r, r.Confidence)
		}
	}
}

func TestFederatedDiscoverErrors(t *testing.T) {
	if _, err := FederatedDiscover(nil, "Store", DefaultFederatedOptions()); err == nil {
		t.Error("no sites must fail")
	}
	if _, err := FederatedDiscover([]Site{{Name: "x", Env: siteEnv(t, 10, false)}}, "Ghost", DefaultFederatedOptions()); err == nil {
		t.Error("unknown relation must fail")
	}
}

func TestFederatedSingleSiteMatchesLocal(t *testing.T) {
	env := siteEnv(t, 50, false)
	fed, err := FederatedDiscover([]Site{{Name: "only", Env: env}}, "Store", DefaultFederatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	local, _, err := NewMiner(env, "Store", DefaultOptions()).Discover()
	if err != nil {
		t.Fatal(err)
	}
	// Every federated rule must appear among local rules (the aggregate
	// thresholds only filter).
	localSet := map[string]bool{}
	for _, r := range local {
		localSet[r.String()] = true
	}
	for _, r := range fed {
		if !localSet[r.String()] {
			t.Errorf("federated invented a rule: %s", r)
		}
	}
	if len(fed) == 0 {
		t.Error("single-site federation must keep the strong rules")
	}
}
