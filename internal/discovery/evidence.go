package discovery

import (
	"math/rand"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/predicate"
)

// Evidence is the evidence-set representation [72] of a dataset w.r.t. a
// predicate space: one bitset row per (sampled) valuation, one bit per
// predicate. All mining — Rock's pruned levelwise search and the ES
// baseline's unpruned sweep — runs over this matrix.
type Evidence struct {
	Space *Space
	// Pair reports whether rows are tuple pairs (true) or single tuples.
	Pair bool
	// rows[i] is the bitset of satisfied predicates for valuation i; the
	// first len(Space.Pre) bits are preconditions, followed by the
	// consequences.
	rows  [][]uint64
	words int
	// SampledFraction is the fraction of the full valuation population the
	// rows represent (1.0 = exhaustive).
	SampledFraction float64
}

// NumRows returns the number of materialised valuations.
func (e *Evidence) NumRows() int { return len(e.rows) }

// NumPredicates returns the total bit width.
func (e *Evidence) NumPredicates() int { return len(e.Space.Pre) + len(e.Space.Cons) }

// consBit returns the bit index of consequence j.
func (e *Evidence) consBit(j int) int { return len(e.Space.Pre) + j }

func (e *Evidence) set(row []uint64, bit int) { row[bit/64] |= 1 << (bit % 64) }

func (e *Evidence) has(row []uint64, bit int) bool { return row[bit/64]&(1<<(bit%64)) != 0 }

// BuildOptions tunes evidence construction.
type BuildOptions struct {
	// SampleRatio samples tuples before pairing (1.0 = all). The paper's
	// multi-round sampling mines on a fraction with an accuracy bound.
	SampleRatio float64
	// MaxPairs caps the number of pair rows (0 = no cap).
	MaxPairs int
	// Seed drives the sampler.
	Seed int64
}

// BuildEvidence materialises the evidence matrix for the space over env.
func BuildEvidence(env *predicate.Env, sp *Space, pair bool, opts BuildOptions) (*Evidence, error) {
	rel := env.DB.Rel(sp.Rel)
	if rel == nil {
		return nil, errUnknownRel(sp.Rel)
	}
	tuples := rel.Tuples
	frac := 1.0
	if opts.SampleRatio > 0 && opts.SampleRatio < 1 {
		rng := rand.New(rand.NewSource(opts.Seed))
		var sample []*data.Tuple
		for _, t := range tuples {
			if rng.Float64() < opts.SampleRatio {
				sample = append(sample, t)
			}
		}
		if len(sample) >= 2 {
			frac = float64(len(sample)) / float64(len(tuples))
			tuples = sample
		}
	}
	nPred := len(sp.Pre) + len(sp.Cons)
	words := (nPred + 63) / 64
	ev := &Evidence{Space: sp, Pair: pair, words: words, SampledFraction: frac}

	all := make([]*predicate.Predicate, 0, nPred)
	all = append(all, sp.Pre...)
	all = append(all, sp.Cons...)

	h := predicate.NewValuation()
	evalRow := func() ([]uint64, error) {
		row := make([]uint64, words)
		for bit, p := range all {
			ok, err := p.Eval(env, h)
			if err != nil {
				return nil, err
			}
			if ok {
				ev.set(row, bit)
			}
		}
		return row, nil
	}

	if !pair {
		for _, t := range tuples {
			h.Bind("t", sp.Rel, t)
			row, err := evalRow()
			if err != nil {
				return nil, err
			}
			ev.rows = append(ev.rows, row)
		}
		return ev, nil
	}
	for i, t := range tuples {
		for j, s := range tuples {
			if i == j {
				continue
			}
			if opts.MaxPairs > 0 && len(ev.rows) >= opts.MaxPairs {
				return ev, nil
			}
			h.Bind("t", sp.Rel, t)
			h.Bind("s", sp.Rel, s)
			row, err := evalRow()
			if err != nil {
				return nil, err
			}
			ev.rows = append(ev.rows, row)
		}
	}
	return ev, nil
}

// BuildCrossEvidence materialises the evidence matrix for a cross-relation
// space: one row per (t, s) pair with t from sp.RelT and s from sp.RelS.
func BuildCrossEvidence(env *predicate.Env, sp *Space, opts BuildOptions) (*Evidence, error) {
	relT := env.DB.Rel(sp.RelT)
	relS := env.DB.Rel(sp.RelS)
	if relT == nil {
		return nil, errUnknownRel(sp.RelT)
	}
	if relS == nil {
		return nil, errUnknownRel(sp.RelS)
	}
	sampleOf := func(tuples []*data.Tuple, seed int64) ([]*data.Tuple, float64) {
		if opts.SampleRatio <= 0 || opts.SampleRatio >= 1 {
			return tuples, 1.0
		}
		rng := rand.New(rand.NewSource(seed))
		var out []*data.Tuple
		for _, t := range tuples {
			if rng.Float64() < opts.SampleRatio {
				out = append(out, t)
			}
		}
		if len(out) < 2 {
			return tuples, 1.0
		}
		return out, float64(len(out)) / float64(len(tuples))
	}
	tuplesT, fracT := sampleOf(relT.Tuples, opts.Seed)
	tuplesS, fracS := sampleOf(relS.Tuples, opts.Seed+1)
	nPred := len(sp.Pre) + len(sp.Cons)
	words := (nPred + 63) / 64
	ev := &Evidence{Space: sp, Pair: true, words: words, SampledFraction: fracT * fracS}
	all := make([]*predicate.Predicate, 0, nPred)
	all = append(all, sp.Pre...)
	all = append(all, sp.Cons...)
	h := predicate.NewValuation()
	for _, t := range tuplesT {
		for _, s := range tuplesS {
			if opts.MaxPairs > 0 && len(ev.rows) >= opts.MaxPairs {
				return ev, nil
			}
			h.Bind("t", sp.RelT, t)
			h.Bind("s", sp.RelS, s)
			row := make([]uint64, words)
			for bit, p := range all {
				ok, err := p.Eval(env, h)
				if err != nil {
					return nil, err
				}
				if ok {
					ev.set(row, bit)
				}
			}
			ev.rows = append(ev.rows, row)
		}
	}
	return ev, nil
}

// mask builds the word mask of an itemset so matching a row is a handful
// of AND/compare word operations rather than per-bit probes.
func (e *Evidence) mask(x []int) []uint64 {
	m := make([]uint64, e.words)
	for _, bit := range x {
		m[bit/64] |= 1 << (bit % 64)
	}
	return m
}

func rowMatches(row, mask []uint64) bool {
	for w := range mask {
		if row[w]&mask[w] != mask[w] {
			return false
		}
	}
	return true
}

// CountX returns the number of rows satisfying every predicate bit in X.
func (e *Evidence) CountX(x []int) int {
	m := e.mask(x)
	n := 0
	for _, row := range e.rows {
		if rowMatches(row, m) {
			n++
		}
	}
	return n
}

// CountXAndCons returns (#rows satisfying X, #rows satisfying X and the
// j-th consequence).
func (e *Evidence) CountXAndCons(x []int, j int) (matchX, matchBoth int) {
	m := e.mask(x)
	cb := e.consBit(j)
	for _, row := range e.rows {
		if !rowMatches(row, m) {
			continue
		}
		matchX++
		if e.has(row, cb) {
			matchBoth++
		}
	}
	return matchX, matchBoth
}

type unknownRelError string

// Error implements the error interface.
func (e unknownRelError) Error() string { return "discovery: unknown relation " + string(e) }

func errUnknownRel(rel string) error { return unknownRelError(rel) }
