// Package discovery implements Rock's rule-discovery module (paper §3 and
// §5.2): mining REE++s from data. The pipeline is
//
//	predicate space → evidence sets → levelwise search → top-k ranking,
//
// with the cost controls of the paper: multi-round sampling with
// verification [36], support/confidence pruning, FDX-style predicate
// pruning for a target consequence, a learned subjective scoring model
// over user labels [37], and an anytime iterator that keeps yielding the
// next-best rules. The ES baseline reuses the same evidence machinery with
// pruning disabled.
package discovery

import (
	"fmt"
	"sort"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// Space is the candidate predicate space over one relation, for rules with
// tuple variables t and s (pair mode) or just t (single mode). Cross-
// relation spaces set RelT/RelS (t and s range over different relations).
type Space struct {
	Rel string
	// RelT/RelS are set for cross-relation spaces (t in RelT, s in RelS).
	RelT, RelS string
	// Pre are the candidate precondition predicates.
	Pre []*predicate.Predicate
	// Cons are the candidate consequences.
	Cons []*predicate.Predicate
}

// SpaceOptions tunes predicate-space construction.
type SpaceOptions struct {
	// MaxConstants bounds the frequent constants per attribute.
	MaxConstants int
	// MinConstantFreq is the minimum relative frequency for a constant
	// predicate t.A = c to enter the space.
	MinConstantFreq float64
	// MLModels are similarity models to offer as predicates on string
	// attributes (empty: none — the RockNoML configuration).
	MLModels []string
	// Numeric enables order comparisons t.A <= s.A on numeric attributes.
	Numeric bool
	// Temporal enables temporal-order consequences t <=[A] s for the given
	// attributes (requires seeded orders in the environment).
	TemporalAttrs []string
	// TargetAttrs restricts consequences to these attributes (nil: all).
	TargetAttrs []string
}

// DefaultSpaceOptions returns sensible defaults.
func DefaultSpaceOptions() SpaceOptions {
	return SpaceOptions{MaxConstants: 12, MinConstantFreq: 0.05, Numeric: true}
}

// BuildPairSpace constructs the two-variable space over relation rel:
// preconditions t.A = s.A (all attrs), t.A = c / s.A = c (frequent
// constants), t.A <= s.A (numeric), M(t[A], s[A]) (ML models on strings);
// consequences t.eid = s.eid, t.A = s.A, and t <=[A] s.
func BuildPairSpace(rel *data.Relation, opts SpaceOptions) *Space {
	sp := &Space{Rel: rel.Schema.Name}
	target := map[string]bool{}
	for _, a := range opts.TargetAttrs {
		target[a] = true
	}
	wantTarget := func(a string) bool { return len(target) == 0 || target[a] }

	for _, attr := range rel.Schema.Attrs {
		eq := &predicate.Predicate{Kind: predicate.KAttr, Op: predicate.Eq, T: "t", A: attr.Name, S: "s", B: attr.Name}
		sp.Pre = append(sp.Pre, eq)
		if wantTarget(attr.Name) {
			cons := *eq
			sp.Cons = append(sp.Cons, &cons)
		}
		if opts.Numeric && (attr.Type == data.TInt || attr.Type == data.TFloat) {
			sp.Pre = append(sp.Pre, &predicate.Predicate{Kind: predicate.KAttr, Op: predicate.Leq, T: "t", A: attr.Name, S: "s", B: attr.Name})
		}
		for _, c := range frequentConstants(rel, attr, opts) {
			sp.Pre = append(sp.Pre,
				&predicate.Predicate{Kind: predicate.KConst, Op: predicate.Eq, T: "t", A: attr.Name, C: c},
				&predicate.Predicate{Kind: predicate.KConst, Op: predicate.Eq, T: "s", A: attr.Name, C: c})
		}
		if attr.Type == data.TString {
			for _, m := range opts.MLModels {
				sp.Pre = append(sp.Pre, &predicate.Predicate{
					Kind: predicate.KML, Model: m, T: "t", S: "s",
					As: []string{attr.Name}, Bs: []string{attr.Name},
				})
			}
		}
	}
	sp.Cons = append(sp.Cons, &predicate.Predicate{Kind: predicate.KEID, Op: predicate.Eq, T: "t", S: "s"})
	for _, a := range opts.TemporalAttrs {
		if rel.Schema.Has(a) && wantTarget(a) {
			sp.Cons = append(sp.Cons, &predicate.Predicate{Kind: predicate.KTemporal, T: "t", S: "s", A: a})
		}
	}
	return sp
}

// BuildCrossSpace constructs the two-relation space for rules of the form
// R(t) ^ S(s) ^ X → p0 (paper §7: Rock "enhances the ability for data
// cleaning across multiple relational tables"; the Bank mi-city rule is
// the archetype). Preconditions compare same-typed attribute pairs across
// the relations plus frequent constants on either side; consequences are
// the cross-relation attribute equations.
func BuildCrossSpace(relT, relS *data.Relation, opts SpaceOptions) *Space {
	sp := &Space{
		Rel:  relT.Schema.Name + "|" + relS.Schema.Name,
		RelT: relT.Schema.Name,
		RelS: relS.Schema.Name,
	}
	target := map[string]bool{}
	for _, a := range opts.TargetAttrs {
		target[a] = true
	}
	wantTarget := func(a string) bool { return len(target) == 0 || target[a] }
	for _, at := range relT.Schema.Attrs {
		for _, as := range relS.Schema.Attrs {
			if at.Type != as.Type {
				continue
			}
			eq := &predicate.Predicate{Kind: predicate.KAttr, Op: predicate.Eq, T: "t", A: at.Name, S: "s", B: as.Name}
			sp.Pre = append(sp.Pre, eq)
			if wantTarget(at.Name) || wantTarget(as.Name) {
				cons := *eq
				sp.Cons = append(sp.Cons, &cons)
			}
		}
	}
	for _, at := range relT.Schema.Attrs {
		for _, c := range frequentConstants(relT, at, opts) {
			sp.Pre = append(sp.Pre, &predicate.Predicate{Kind: predicate.KConst, Op: predicate.Eq, T: "t", A: at.Name, C: c})
		}
	}
	for _, as := range relS.Schema.Attrs {
		for _, c := range frequentConstants(relS, as, opts) {
			sp.Pre = append(sp.Pre, &predicate.Predicate{Kind: predicate.KConst, Op: predicate.Eq, T: "s", A: as.Name, C: c})
		}
	}
	return sp
}

// BuildSingleSpace constructs the one-variable space over relation rel:
// preconditions t.A = c; consequences t.B = c — the ϕ12-style logic rules
// that both resolve conflicts and impute missing values through the chase.
func BuildSingleSpace(rel *data.Relation, opts SpaceOptions) *Space {
	sp := &Space{Rel: rel.Schema.Name}
	target := map[string]bool{}
	for _, a := range opts.TargetAttrs {
		target[a] = true
	}
	wantTarget := func(a string) bool { return len(target) == 0 || target[a] }
	for _, attr := range rel.Schema.Attrs {
		for _, c := range frequentConstants(rel, attr, opts) {
			p := &predicate.Predicate{Kind: predicate.KConst, Op: predicate.Eq, T: "t", A: attr.Name, C: c}
			sp.Pre = append(sp.Pre, p)
			if wantTarget(attr.Name) {
				cp := *p
				sp.Cons = append(sp.Cons, &cp)
			}
		}
	}
	return sp
}

// frequentConstants returns the values of attr occurring with relative
// frequency at least MinConstantFreq, capped at MaxConstants, most
// frequent first.
func frequentConstants(rel *data.Relation, attr data.Attribute, opts SpaceOptions) []data.Value {
	i := rel.Schema.Index(attr.Name)
	if i < 0 || rel.Len() == 0 {
		return nil
	}
	counts := make(map[string]int)
	vals := make(map[string]data.Value)
	for _, t := range rel.Tuples {
		v := t.Values[i]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		counts[k]++
		vals[k] = v
	}
	type kv struct {
		k string
		n int
	}
	var sorted []kv
	minCount := int(opts.MinConstantFreq * float64(rel.Len()))
	if minCount < 2 {
		minCount = 2
	}
	for k, n := range counts {
		if n >= minCount {
			sorted = append(sorted, kv{k, n})
		}
	}
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].n != sorted[b].n {
			return sorted[a].n > sorted[b].n
		}
		return sorted[a].k < sorted[b].k
	})
	max := opts.MaxConstants
	if max <= 0 {
		max = 12
	}
	if len(sorted) > max {
		sorted = sorted[:max]
	}
	out := make([]data.Value, len(sorted))
	for j, e := range sorted {
		out[j] = vals[e.k]
	}
	return out
}

// ruleFromItems materialises a mined itemset as an REE++. Cross-relation
// spaces bind t and s to their respective relations.
func ruleFromItems(sp *Space, pair bool, pre []*predicate.Predicate, cons *predicate.Predicate, id string) *ree.Rule {
	r := &ree.Rule{ID: id}
	if sp.RelT != "" && sp.RelS != "" {
		r.Atoms = append(r.Atoms,
			ree.Atom{Rel: sp.RelT, Var: "t"},
			ree.Atom{Rel: sp.RelS, Var: "s"})
	} else {
		r.Atoms = append(r.Atoms, ree.Atom{Rel: sp.Rel, Var: "t"})
		if pair {
			r.Atoms = append(r.Atoms, ree.Atom{Rel: sp.Rel, Var: "s"})
		}
	}
	for _, p := range pre {
		cp := *p
		r.X = append(r.X, &cp)
	}
	c := *cons
	r.P0 = &c
	return r
}

// spaceFingerprint renders a predicate canonically for dedup.
func spaceFingerprint(p *predicate.Predicate) string { return p.String() }

var _ = fmt.Sprintf // reserved for diagnostics
