package discovery

import (
	"math"
	"sort"

	"github.com/rockclean/rock/internal/exec"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// ruleFeatures encodes a rule for the subjective scoring model of [37]:
// objective measures (support, confidence), structural features (size,
// ML usage) and the task type. The model learns user preference over
// these.
func ruleFeatures(r *ree.Rule) []float64 {
	f := make([]float64, 9)
	f[0] = r.Confidence
	f[1] = math.Log1p(r.Support*1e6) / 14 // compress the tiny supports
	f[2] = float64(len(r.X)) / 5
	if r.HasML() {
		f[3] = 1
	}
	switch r.TaskOf() {
	case ree.TaskER:
		f[4] = 1
	case ree.TaskCR:
		f[5] = 1
	case ree.TaskTD:
		f[6] = 1
	case ree.TaskMI:
		f[7] = 1
	}
	f[8] = 1 // bias
	return f
}

// Preference is the learned user-preference model: Rock collects labels
// ("useful" / "not useful") from data-quality experts or from the novice
// workflow of §5.4 (confirming detected errors on a sample), then trains a
// scoring model and ranks candidate rules by a blend of subjective and
// objective measures.
type Preference struct {
	model *ml.LogisticRegression
	// Labeled counts training instances; an unlabeled preference scores
	// every rule 0.5 (neutral).
	Labeled int
}

// NewPreference creates an untrained preference model.
func NewPreference() *Preference {
	return &Preference{model: ml.NewLogisticRegression(9)}
}

// Learn (re)trains from labelled rules; it may be called incrementally as
// more feedback arrives (the anytime workflow gathers labels between
// batches).
func (p *Preference) Learn(rules []*ree.Rule, useful []bool) {
	xs := make([][]float64, len(rules))
	for i, r := range rules {
		xs[i] = ruleFeatures(r)
	}
	p.model = ml.NewLogisticRegression(9)
	p.model.Fit(xs, useful, 11)
	p.Labeled += len(rules)
}

// Score returns the subjective usefulness of a rule in [0, 1].
func (p *Preference) Score(r *ree.Rule) float64 {
	if p.Labeled == 0 {
		return 0.5
	}
	return p.model.Score(ruleFeatures(r))
}

// RankOptions tunes top-k selection.
type RankOptions struct {
	K int
	// SubjectiveWeight blends the preference score with the objective
	// measures (0 = objective only).
	SubjectiveWeight float64
	// Diversify greedily penalises rules covering the same consequence
	// attribute as already-picked ones — the "top-k diversified" option of
	// paper §5.2.
	Diversify bool
}

// TopK ranks rules by blended score and returns the best k.
func TopK(rules []*ree.Rule, pref *Preference, opts RankOptions) []*ree.Rule {
	if opts.K <= 0 || opts.K > len(rules) {
		opts.K = len(rules)
	}
	type scored struct {
		r *ree.Rule
		s float64
	}
	items := make([]scored, len(rules))
	for i, r := range rules {
		obj := 0.7*r.Confidence + 0.3*math.Min(1, r.Support*1e6)
		s := obj
		if pref != nil {
			w := opts.SubjectiveWeight
			s = (1-w)*obj + w*pref.Score(r)
		}
		r.Score = s
		items[i] = scored{r, s}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].r.String() < items[j].r.String()
	})
	if !opts.Diversify {
		out := make([]*ree.Rule, 0, opts.K)
		for _, it := range items[:opts.K] {
			out = append(out, it.r)
		}
		return out
	}
	// Greedy diversification: each additional rule on an already-covered
	// consequence attribute pays a penalty.
	covered := map[string]int{}
	var out []*ree.Rule
	remaining := append([]scored(nil), items...)
	for len(out) < opts.K && len(remaining) > 0 {
		bestI, bestS := -1, math.Inf(-1)
		for i, it := range remaining {
			key := consKey(it.r)
			s := it.s / float64(1+covered[key])
			if s > bestS {
				bestI, bestS = i, s
			}
		}
		pick := remaining[bestI]
		covered[consKey(pick.r)]++
		out = append(out, pick.r)
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
	}
	return out
}

func consKey(r *ree.Rule) string {
	return r.P0.String()
}

// Anytime yields rules in ranked batches: each call to Next returns the
// next best batch (paper §3: "an anytime algorithm for successive REE++
// mining via lazy evaluation"), and Feedback folds user labels into the
// preference model so later batches re-rank.
type Anytime struct {
	pref      *Preference
	remaining []*ree.Rule
	batch     int
	subjW     float64
}

// NewAnytime creates an iterator over a mined rule pool.
func NewAnytime(rules []*ree.Rule, pref *Preference, batch int, subjectiveWeight float64) *Anytime {
	if batch <= 0 {
		batch = 10
	}
	if pref == nil {
		pref = NewPreference()
	}
	return &Anytime{pref: pref, remaining: append([]*ree.Rule(nil), rules...), batch: batch, subjW: subjectiveWeight}
}

// Next returns the next batch (re-ranked under the current preference);
// nil when exhausted.
func (a *Anytime) Next() []*ree.Rule {
	if len(a.remaining) == 0 {
		return nil
	}
	ranked := TopK(a.remaining, a.pref, RankOptions{K: len(a.remaining), SubjectiveWeight: a.subjW})
	n := a.batch
	if n > len(ranked) {
		n = len(ranked)
	}
	out := ranked[:n]
	picked := map[*ree.Rule]bool{}
	for _, r := range out {
		picked[r] = true
	}
	var rest []*ree.Rule
	for _, r := range a.remaining {
		if !picked[r] {
			rest = append(rest, r)
		}
	}
	a.remaining = rest
	return out
}

// Feedback incorporates user labels on previously returned rules.
func (a *Anytime) Feedback(rules []*ree.Rule, useful []bool) {
	a.pref.Learn(rules, useful)
}

// NoviceFeedback implements the user-friendly workflow of paper §5.4 for
// users who cannot rank rules directly: Rock detects errors with each
// candidate rule on a small sample, invites the user to confirm whether
// the (up to perRule) detected errors are unknown true positives, scores
// each rule by its confirmed precision, and trains the preference model
// from those derived labels. confirm receives the rule and one violating
// valuation and returns whether the user deems it a real error. The
// returned precision map (rule string → confirmed fraction) feeds
// reporting; the preference model is trained in place.
func NoviceFeedback(env *predicate.Env, rules []*ree.Rule, perRule int,
	confirm func(r *ree.Rule, h *predicate.Valuation) bool, pref *Preference) (map[string]float64, error) {

	if perRule <= 0 {
		perRule = 5
	}
	precision := make(map[string]float64, len(rules))
	var labelled []*ree.Rule
	var useful []bool
	ex := exec.New(env)
	for _, r := range rules {
		if err := r.Validate(env.DB); err != nil {
			return nil, err
		}
		asked, confirmed := 0, 0
		_, err := ex.Run(r, exec.Options{UseBlocking: true, MaxResults: 0}, func(h *predicate.Valuation) bool {
			ok, evalErr := r.P0.Eval(env, h)
			if evalErr != nil || ok {
				return true
			}
			asked++
			if confirm(r, h) {
				confirmed++
			}
			return asked < perRule
		})
		if err != nil {
			return nil, err
		}
		if asked == 0 {
			// The rule found no errors on the sample: uninformative, skip.
			continue
		}
		p := float64(confirmed) / float64(asked)
		precision[r.String()] = p
		labelled = append(labelled, r)
		useful = append(useful, p >= 0.5)
	}
	if len(labelled) > 0 {
		pref.Learn(labelled, useful)
	}
	return precision, nil
}
