package discovery

import (
	"fmt"
	"sort"

	"github.com/rockclean/rock/internal/exec"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// Site is one private data holder in federated discovery (paper §8(a),
// the planned extension: "federated learning across multiple private data
// sources"). A site exposes only its evaluation environment; raw tuples
// never leave it — the coordinator sees rule texts and aggregate counts.
type Site struct {
	Name string
	Env  *predicate.Env
}

// siteCounts are the only values a site reports for a candidate rule.
type siteCounts struct {
	matchX, matchBoth, total int
}

// countRule measures one rule locally: valuation totals and X/X∧p0 match
// counts (the inputs to support/confidence), via the optimized executor.
func countRule(env *predicate.Env, r *ree.Rule) (siteCounts, error) {
	var c siteCounts
	if err := r.Validate(env.DB); err != nil {
		return c, err
	}
	// Total valuations: product of candidate relation sizes (ordered,
	// self-pairs excluded for same-relation pairs).
	total := 1
	counted := map[string]int{}
	for _, a := range r.Atoms {
		rel := env.DB.Rel(a.Rel)
		if rel == nil {
			return c, fmt.Errorf("federated: site lacks relation %q", a.Rel)
		}
		n := rel.Len() - counted[a.Rel]
		if n < 0 {
			n = 0
		}
		total *= n
		counted[a.Rel]++
	}
	c.total = total
	ex := exec.New(env)
	_, err := ex.Run(r, exec.Options{UseBlocking: true}, func(h *predicate.Valuation) bool {
		c.matchX++
		ok, evalErr := r.P0.Eval(env, h)
		if evalErr == nil && ok {
			c.matchBoth++
		}
		return true
	})
	return c, err
}

// FederatedOptions tunes a federated discovery round.
type FederatedOptions struct {
	// Mining are the per-site local mining options.
	Mining Options
	// MinGlobalSupport / MinGlobalConfidence are the aggregate thresholds
	// a candidate must clear over the union of all sites' data.
	MinGlobalSupport    float64
	MinGlobalConfidence float64
	// MaxCandidates caps the merged candidate pool (ranked by local
	// confidence) before the verification round, bounding cross-site work.
	MaxCandidates int
}

// DefaultFederatedOptions mirrors the single-site defaults.
func DefaultFederatedOptions() FederatedOptions {
	return FederatedOptions{
		Mining:              DefaultOptions(),
		MinGlobalSupport:    1e-4,
		MinGlobalConfidence: 0.9,
		MaxCandidates:       200,
	}
}

// FederatedDiscover mines REE++s over private sites without moving raw
// data: (1) each site mines candidates locally; (2) the coordinator
// merges the candidate texts; (3) every site reports aggregate counts for
// every candidate; (4) candidates clearing the global thresholds survive,
// with support/confidence recomputed from the summed counts. A rule that
// holds on one site but is contradicted elsewhere is filtered by the
// global confidence — the coordinator never learns which site
// contradicted it.
func FederatedDiscover(sites []Site, rel string, opts FederatedOptions) ([]*ree.Rule, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("federated: no sites")
	}
	// Round 1: local mining.
	seen := map[string]*ree.Rule{}
	for _, s := range sites {
		m := NewMiner(s.Env, rel, opts.Mining)
		rules, _, err := m.Discover()
		if err != nil {
			return nil, fmt.Errorf("site %s: %w", s.Name, err)
		}
		for _, r := range rules {
			key := r.String()
			if prev, ok := seen[key]; !ok || r.Confidence > prev.Confidence {
				seen[key] = r
			}
		}
	}
	candidates := make([]*ree.Rule, 0, len(seen))
	for _, r := range seen {
		candidates = append(candidates, r)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Confidence != candidates[j].Confidence {
			return candidates[i].Confidence > candidates[j].Confidence
		}
		return candidates[i].String() < candidates[j].String()
	})
	if opts.MaxCandidates > 0 && len(candidates) > opts.MaxCandidates {
		candidates = candidates[:opts.MaxCandidates]
	}
	// Round 2: aggregate verification.
	var out []*ree.Rule
	for _, r := range candidates {
		var agg siteCounts
		ok := true
		for _, s := range sites {
			c, err := countRule(s.Env, r)
			if err != nil {
				ok = false
				break // a site lacking the schema abstains from the rule
			}
			agg.matchX += c.matchX
			agg.matchBoth += c.matchBoth
			agg.total += c.total
		}
		if !ok || agg.total == 0 || agg.matchX == 0 {
			continue
		}
		support := float64(agg.matchBoth) / float64(agg.total)
		confidence := float64(agg.matchBoth) / float64(agg.matchX)
		if support < opts.MinGlobalSupport || confidence < opts.MinGlobalConfidence {
			continue
		}
		kept := r.Clone()
		kept.Support = support
		kept.Confidence = confidence
		out = append(out, kept)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].String() < out[j].String()
	})
	for i, r := range out {
		r.ID = fmt.Sprintf("f%d", i+1)
	}
	return out, nil
}
