package discovery

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
)

func paymentRel(t *testing.T, n int, noise bool) *data.Relation {
	t.Helper()
	rel := data.NewRelation(must.Schema("Payment",
		data.Attribute{Name: "acct", Type: data.TString},
		data.Attribute{Name: "amount", Type: data.TFloat},
		data.Attribute{Name: "fee", Type: data.TFloat},
		data.Attribute{Name: "noise", Type: data.TFloat},
		data.Attribute{Name: "total", Type: data.TFloat},
	))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		amount := float64(100 * (1 + rng.Intn(12)))
		fee := float64(5 * (1 + rng.Intn(4)))
		total := amount + fee
		if noise && i%10 == 0 {
			total += 35 // injected numerical error
		}
		rel.Insert("e", data.S("a"), data.F(amount), data.F(fee), data.F(rng.NormFloat64()*100), data.F(total))
	}
	return rel
}

func TestDiscoverPolynomialRecoversSum(t *testing.T) {
	rel := paymentRel(t, 200, false)
	p, ok := DiscoverPolynomial(rel, "total", DefaultPolyOptions())
	if !ok {
		t.Fatal("expected an expression for total = amount + fee")
	}
	if p.R2 < 0.99 {
		t.Errorf("R2=%f", p.R2)
	}
	s := p.String()
	if !strings.Contains(s, "amount") || !strings.Contains(s, "fee") {
		t.Errorf("expression missing terms: %s", s)
	}
	if strings.Contains(s, "noise") {
		t.Errorf("LASSO must drop the noise feature: %s", s)
	}
	// Weights near 1.
	for _, term := range p.Terms {
		if term.Weight < 0.9 || term.Weight > 1.1 {
			t.Errorf("term %v weight %f, want ~1", term.Attrs, term.Weight)
		}
	}
	// A clean tuple does not violate; a corrupted one does.
	clean := rel.Tuples[1]
	if v, ok := p.Violates(rel, clean); !ok || v {
		t.Error("clean tuple must not violate")
	}
	bad := clean.Clone()
	ti := rel.Schema.Index("total")
	bad.Values[ti] = data.F(bad.Values[ti].Float() + 40)
	if v, ok := p.Violates(rel, bad); !ok || !v {
		t.Error("corrupted total must violate")
	}
	// Null target is undecidable.
	nullT := clean.Clone()
	nullT.Values[ti] = data.Null(data.TFloat)
	if _, ok := p.Violates(rel, nullT); ok {
		t.Error("null target must be undecidable")
	}
}

func TestDiscoverPolynomialDetectsInjectedErrors(t *testing.T) {
	rel := paymentRel(t, 200, true)
	// Learn on the dirty data: errors inflate residuals but LASSO still
	// centres on the dominant relationship.
	opts := DefaultPolyOptions()
	opts.MinR2 = 0.5
	p, ok := DiscoverPolynomial(rel, "total", opts)
	if !ok {
		t.Fatal("expected an expression despite 10% corruption")
	}
	flagged, missed := 0, 0
	for i, tp := range rel.Tuples {
		v, okV := p.Violates(rel, tp)
		if !okV {
			continue
		}
		if i%10 == 0 {
			if v {
				flagged++
			} else {
				missed++
			}
		} else if v {
			t.Errorf("clean tuple %d flagged", i)
		}
	}
	if flagged == 0 || missed > flagged/2 {
		t.Errorf("flagged=%d missed=%d", flagged, missed)
	}
}

func TestDiscoverPolynomialRejectsUncorrelated(t *testing.T) {
	rel := data.NewRelation(must.Schema("R",
		data.Attribute{Name: "a", Type: data.TFloat},
		data.Attribute{Name: "b", Type: data.TFloat},
	))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		rel.Insert("e", data.F(rng.NormFloat64()), data.F(rng.NormFloat64()))
	}
	if _, ok := DiscoverPolynomial(rel, "b", DefaultPolyOptions()); ok {
		t.Error("uncorrelated data must yield no expression")
	}
}

func TestDiscoverPolynomialEdgeCases(t *testing.T) {
	rel := paymentRel(t, 5, false) // too few rows
	if _, ok := DiscoverPolynomial(rel, "total", DefaultPolyOptions()); ok {
		t.Error("too few rows must fail")
	}
	rel2 := paymentRel(t, 50, false)
	if _, ok := DiscoverPolynomial(rel2, "ghost", DefaultPolyOptions()); ok {
		t.Error("missing target must fail")
	}
	// No numeric features besides the target.
	rel3 := data.NewRelation(must.Schema("R",
		data.Attribute{Name: "s", Type: data.TString},
		data.Attribute{Name: "y", Type: data.TFloat},
	))
	for i := 0; i < 20; i++ {
		rel3.Insert("e", data.S("x"), data.F(1))
	}
	if _, ok := DiscoverPolynomial(rel3, "y", DefaultPolyOptions()); ok {
		t.Error("no numeric features must fail")
	}
}

func TestDiscoverPolynomialProducts(t *testing.T) {
	rel := data.NewRelation(must.Schema("R",
		data.Attribute{Name: "qty", Type: data.TFloat},
		data.Attribute{Name: "price", Type: data.TFloat},
		data.Attribute{Name: "revenue", Type: data.TFloat},
	))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 150; i++ {
		q := float64(1 + rng.Intn(9))
		pr := float64(10 * (1 + rng.Intn(5)))
		rel.Insert("e", data.F(q), data.F(pr), data.F(q*pr))
	}
	opts := DefaultPolyOptions()
	opts.Products = true
	p, ok := DiscoverPolynomial(rel, "revenue", opts)
	if !ok {
		t.Fatal("expected revenue = qty*price")
	}
	found := false
	for _, term := range p.Terms {
		if len(term.Attrs) == 2 && term.Weight > 0.9 && term.Weight < 1.1 {
			found = true
		}
	}
	if !found {
		t.Errorf("product term not recovered: %s", p)
	}
}

func TestPolyModelAsPredicate(t *testing.T) {
	rel := paymentRel(t, 100, false)
	p, ok := DiscoverPolynomial(rel, "total", DefaultPolyOptions())
	if !ok {
		t.Fatal("expression expected")
	}
	m := PolyModel("M_poly", rel, p)
	clean := rel.Tuples[0]
	if !m.Predict(clean.Values, nil) {
		t.Error("clean tuple must be consistent")
	}
	bad := clean.Clone()
	ti := rel.Schema.Index("total")
	bad.Values[ti] = data.F(bad.Values[ti].Float() + 50)
	if m.Predict(bad.Values, nil) {
		t.Error("corrupted tuple must be inconsistent")
	}
	// Arity mismatch scores 0.
	if m.Score(clean.Values[:2], nil) != 0 {
		t.Error("short vector must score 0")
	}
}
