package discovery

import (
	"fmt"
	"strings"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// storeEnv builds a Store relation where location determines area_code and
// near-duplicate names mark identical entities.
func storeEnv(t *testing.T, n int) (*predicate.Env, *data.Relation) {
	t.Helper()
	schema := must.Schema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
		data.Attribute{Name: "area_code", Type: data.TString},
		data.Attribute{Name: "accu_sales", Type: data.TFloat},
	)
	rel := data.NewRelation(schema)
	cities := []struct{ city, code string }{{"Beijing", "010"}, {"Shanghai", "021"}, {"Shenzhen", "0755"}}
	for i := 0; i < n; i++ {
		c := cities[i%3]
		rel.Insert(fmt.Sprintf("s%d", i),
			data.S(fmt.Sprintf("store brand %d", i%6)),
			data.S(c.city), data.S(c.code), data.F(float64(i)))
	}
	db := data.NewDatabase()
	db.Add(rel)
	return predicate.NewEnv(db), rel
}

func TestDiscoverFindsFunctionalRules(t *testing.T) {
	env, _ := storeEnv(t, 60)
	m := NewMiner(env, "Store", DefaultOptions())
	rules, st, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules discovered")
	}
	if st.RulesEmitted != len(rules) || st.EvidenceRows == 0 {
		t.Error("stats inconsistent")
	}
	// The location→area_code dependency must appear in some form.
	found := false
	for _, r := range rules {
		s := r.String()
		if strings.Contains(s, "location") && strings.Contains(s, "area_code") &&
			strings.Contains(s, "->") && strings.Index(s, "area_code") > strings.Index(s, "->") {
			found = true
			break
		}
	}
	if !found {
		for _, r := range rules[:min(5, len(rules))] {
			t.Logf("rule: %s (conf %.2f)", r, r.Confidence)
		}
		t.Error("location→area_code dependency not discovered")
	}
	// All discovered rules meet the confidence threshold.
	for _, r := range rules {
		if r.Confidence < 0.9 {
			t.Errorf("rule below confidence threshold: %s (%f)", r, r.Confidence)
		}
		if err := r.Validate(env.DB); err != nil {
			t.Errorf("invalid rule discovered: %v", err)
		}
	}
}

func TestDiscoverWithMLPredicates(t *testing.T) {
	env, rel := storeEnv(t, 40)
	// Make same-brand names near-duplicates and same entity EIDs so an
	// ML-ER rule is learnable.
	for i, tp := range rel.Tuples {
		tp.EID = fmt.Sprintf("brand%d", i%6)
	}
	env.Models.Register(ml.NewSimilarityMatcher("M_ER", 0.85))
	opts := DefaultOptions()
	opts.MLModels = []string{"M_ER"}
	m := NewMiner(env, "Store", opts)
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	hasML := false
	for _, r := range rules {
		if r.HasML() {
			hasML = true
			break
		}
	}
	if !hasML {
		t.Error("no ML-predicate rules discovered despite learnable matcher")
	}
}

func TestDiscoverTemporalRules(t *testing.T) {
	schema := must.Schema("Person",
		data.Attribute{Name: "status", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	order := data.NewTemporalOrder("Person", "status")
	for i := 0; i < 20; i++ {
		st := "single"
		if i%2 == 1 {
			st = "married"
		}
		rel.Insert(fmt.Sprintf("p%d", i), data.S(st))
	}
	// Seed the order: all single tuples precede all married ones.
	for _, a := range rel.Tuples {
		for _, b := range rel.Tuples {
			if a.Values[0].Str() == "single" && b.Values[0].Str() == "married" {
				order.AddWeak(a.TID, b.TID)
			}
		}
	}
	env.Orders = func(r, attr string) *data.TemporalOrder {
		if r == "Person" && attr == "status" {
			return order
		}
		return nil
	}
	opts := DefaultOptions()
	opts.TemporalAttrs = []string{"status"}
	m := NewMiner(env, "Person", opts)
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if r.TaskOf() == ree.TaskTD && strings.Contains(r.String(), "<=[status]") {
			found = true
		}
	}
	if !found {
		t.Errorf("ϕ4-style temporal rule not discovered among %d rules", len(rules))
	}
}

func TestSamplingStillFindsStrongRules(t *testing.T) {
	env, _ := storeEnv(t, 120)
	opts := DefaultOptions()
	opts.SampleRatio = 0.4
	opts.Rounds = 2
	opts.Seed = 3
	m := NewMiner(env, "Store", opts)
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		s := r.String()
		if strings.Contains(s, "t.location = s.location -> t.area_code = s.area_code") {
			found = true
		}
	}
	if !found {
		t.Error("sampling lost the deterministic dependency")
	}
}

func TestPruningReducesWork(t *testing.T) {
	env, _ := storeEnv(t, 40)
	pruned := DefaultOptions()
	m1 := NewMiner(env, "Store", pruned)
	_, st1, err := m1.Discover()
	if err != nil {
		t.Fatal(err)
	}
	unpruned := DefaultOptions()
	unpruned.Prune = false
	m2 := NewMiner(env, "Store", unpruned)
	_, st2, err := m2.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if st1.CandidatesExplored >= st2.CandidatesExplored {
		t.Errorf("pruning must reduce explored candidates: %d vs %d",
			st1.CandidatesExplored, st2.CandidatesExplored)
	}
}

func TestTopKRankingAndDiversity(t *testing.T) {
	env, _ := storeEnv(t, 60)
	m := NewMiner(env, "Store", DefaultOptions())
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 4 {
		t.Skipf("need >=4 rules, got %d", len(rules))
	}
	k := 3
	top := TopK(rules, nil, RankOptions{K: k})
	if len(top) != k {
		t.Fatalf("topk=%d", len(top))
	}
	// Scores non-increasing.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("topk not sorted by score")
		}
	}
	div := TopK(rules, nil, RankOptions{K: k, Diversify: true})
	if len(div) != k {
		t.Error("diversified topk size")
	}
	// Diversified pick must not have more same-consequence repeats than
	// plain pick.
	repeats := func(rs []*ree.Rule) int {
		seen := map[string]int{}
		n := 0
		for _, r := range rs {
			seen[consKey(r)]++
			if seen[consKey(r)] > 1 {
				n++
			}
		}
		return n
	}
	if repeats(div) > repeats(top) {
		t.Error("diversification increased repeats")
	}
}

func TestPreferenceLearning(t *testing.T) {
	env, _ := storeEnv(t, 60)
	m := NewMiner(env, "Store", DefaultOptions())
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 4 {
		t.Skip("need more rules")
	}
	pref := NewPreference()
	if pref.Score(rules[0]) != 0.5 {
		t.Error("untrained preference must be neutral")
	}
	// User likes ER rules only.
	var labels []bool
	for _, r := range rules {
		labels = append(labels, r.TaskOf() == ree.TaskER)
	}
	hasER := false
	for _, l := range labels {
		if l {
			hasER = true
		}
	}
	if !hasER {
		t.Skip("no ER rules to prefer")
	}
	pref.Learn(rules, labels)
	// Under full subjective weight, the top rule should be ER.
	top := TopK(rules, pref, RankOptions{K: 1, SubjectiveWeight: 1.0})
	if top[0].TaskOf() != ree.TaskER {
		t.Errorf("preference ranking ignored labels: top task=%s", top[0].TaskOf())
	}
}

func TestAnytimeIterator(t *testing.T) {
	env, _ := storeEnv(t, 60)
	m := NewMiner(env, "Store", DefaultOptions())
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	it := NewAnytime(rules, nil, 2, 0.5)
	total := 0
	batches := 0
	seen := map[string]bool{}
	for batch := it.Next(); batch != nil; batch = it.Next() {
		batches++
		for _, r := range batch {
			if seen[r.String()] {
				t.Fatal("anytime returned a duplicate")
			}
			seen[r.String()] = true
		}
		total += len(batch)
		if batches == 1 && len(batch) > 0 {
			labels := make([]bool, len(batch))
			it.Feedback(batch, labels) // user dislikes the first batch style
		}
	}
	if total != len(rules) {
		t.Errorf("anytime yielded %d of %d", total, len(rules))
	}
}

func TestFDXPruneKeepsAssociatedOnly(t *testing.T) {
	env, rel := storeEnv(t, 60)
	mc := ml.NewCorrelationModel("M_c", rel.Schema)
	mc.Train(rel.Tuples)
	env.Corr["M_c"] = mc
	opts := DefaultOptions()
	opts.FDXPrune = true
	opts.TargetAttrs = []string{"area_code"}
	m := NewMiner(env, "Store", opts)
	rules, st, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	noFDX := DefaultOptions()
	noFDX.TargetAttrs = []string{"area_code"}
	m2 := NewMiner(env, "Store", noFDX)
	_, st2, err := m2.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidatesExplored > st2.CandidatesExplored {
		t.Errorf("FDX pruning must not explore more: %d vs %d", st.CandidatesExplored, st2.CandidatesExplored)
	}
	// The core dependency must survive pruning.
	found := false
	for _, r := range rules {
		if strings.Contains(r.String(), "t.location = s.location -> t.area_code = s.area_code") {
			found = true
		}
	}
	if !found {
		t.Error("FDX pruning removed the true dependency")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNoviceFeedback(t *testing.T) {
	env, rel := storeEnv(t, 60)
	m := NewMiner(env, "Store", DefaultOptions())
	rules, _, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a few area codes afterwards so the mined dependency rules
	// find violations on the "sample" the novice inspects.
	for i, tp := range rel.Tuples {
		if i%9 == 0 {
			rel.SetValue(tp.TID, "area_code", data.S("999"))
		}
	}
	if len(rules) == 0 {
		t.Skip("no rules to label")
	}
	pref := NewPreference()
	// The "user" confirms only errors found by rules whose consequence
	// touches the area code.
	confirmed := 0
	precision, err := NoviceFeedback(env, rules, 3, func(r *ree.Rule, h *predicate.Valuation) bool {
		ok := strings.Contains(r.P0.String(), "area_code")
		if ok {
			confirmed++
		}
		return ok
	}, pref)
	if err != nil {
		t.Fatal(err)
	}
	if confirmed == 0 || len(precision) == 0 {
		t.Fatal("workflow asked no questions")
	}
	if pref.Labeled == 0 {
		t.Fatal("preference model must be trained from the feedback")
	}
	// Re-ranking under the learned preference favours area-code rules.
	top := TopK(rules, pref, RankOptions{K: 3, SubjectiveWeight: 1.0})
	hits := 0
	for _, r := range top {
		if strings.Contains(r.P0.String(), "area_code") {
			hits++
		}
	}
	if hits == 0 {
		t.Error("learned preference did not surface the confirmed rule family")
	}
}

func TestDiscoverCrossRelation(t *testing.T) {
	// Customer.company references Company.cname; the company's city
	// determines the customer's city — the mi-city archetype.
	customer := data.NewRelation(must.Schema("Customer",
		data.Attribute{Name: "company", Type: data.TString},
		data.Attribute{Name: "city", Type: data.TString},
	))
	company := data.NewRelation(must.Schema("Company",
		data.Attribute{Name: "cname", Type: data.TString},
		data.Attribute{Name: "hq", Type: data.TString},
	))
	comps := []struct{ name, city string }{{"Acme Co", "Beijing"}, {"Globex", "Shanghai"}, {"Initech", "Shenzhen"}}
	for _, c := range comps {
		company.Insert("co", data.S(c.name), data.S(c.city))
	}
	for i := 0; i < 45; i++ {
		c := comps[i%3]
		customer.Insert(fmt.Sprintf("cu%d", i), data.S(c.name), data.S(c.city))
	}
	db := data.NewDatabase()
	db.Add(customer)
	db.Add(company)
	env := predicate.NewEnv(db)

	rules, st, err := DiscoverCross(env, "Customer", "Company", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.EvidenceRows == 0 || len(rules) == 0 {
		t.Fatal("cross mining found nothing")
	}
	found := false
	for _, r := range rules {
		s := r.String()
		if strings.Contains(s, "Customer(t) ^ Company(s)") &&
			strings.Contains(s, "t.company = s.cname") &&
			strings.Contains(s, "-> t.city = s.hq") {
			found = true
			if err := r.Validate(db); err != nil {
				t.Errorf("cross rule invalid: %v", err)
			}
		}
	}
	if !found {
		for i, r := range rules {
			if i > 5 {
				break
			}
			t.Logf("rule: %s (conf %.2f)", r, r.Confidence)
		}
		t.Error("company->city cross dependency not mined")
	}
	// Error paths.
	if _, _, err := DiscoverCross(env, "Ghost", "Company", DefaultOptions()); err == nil {
		t.Error("unknown left relation must fail")
	}
	if _, _, err := DiscoverCross(env, "Customer", "Ghost", DefaultOptions()); err == nil {
		t.Error("unknown right relation must fail")
	}
}
