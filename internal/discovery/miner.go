package discovery

import (
	"fmt"
	"sort"

	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// Options tunes the miner.
type Options struct {
	// MinSupport and MinConfidence are the objective thresholds; the paper
	// runs with support 1e-8 and confidence 0.9.
	MinSupport    float64
	MinConfidence float64
	// MaxLHS bounds the precondition size.
	MaxLHS int
	// SampleRatio mines on a tuple sample (paper §5.2); 1.0 uses all data.
	SampleRatio float64
	// Rounds is the number of sampling rounds; rules surviving any round
	// are verified on a fresh sample (multi-round sampling of [36]).
	Rounds int
	// Seed drives sampling.
	Seed int64
	// MaxPairs caps evidence rows per round.
	MaxPairs int
	// EnableML offers ML predicates in the space (RockNoML turns it off).
	MLModels []string
	// TemporalAttrs enables TD-rule discovery on these attributes.
	TemporalAttrs []string
	// TargetAttrs restricts consequences (FDX-style focus); nil = all.
	TargetAttrs []string
	// Prune disables the support-based pruning when false — the ES
	// baseline configuration, which explores the whole lattice.
	Prune bool
	// FDXPrune drops precondition predicates whose attribute shows no
	// statistical association with the consequence attribute (paper §5.4).
	FDXPrune bool
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MinSupport:    1e-8,
		MinConfidence: 0.9,
		MaxLHS:        3,
		SampleRatio:   1.0,
		Rounds:        1,
		Prune:         true,
	}
}

// Stats reports discovery work for benches.
type Stats struct {
	CandidatesExplored int
	RulesEmitted       int
	EvidenceRows       int
}

// Miner mines REE++s over a single relation.
type Miner struct {
	env  *predicate.Env
	rel  string
	opts Options
}

// NewMiner creates a miner for the named relation.
func NewMiner(env *predicate.Env, rel string, opts Options) *Miner {
	if opts.MaxLHS <= 0 {
		opts.MaxLHS = 3
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 1
	}
	return &Miner{env: env, rel: rel, opts: opts}
}

// Discover mines pair rules and single-tuple rules, deduplicated across
// sampling rounds, with support/confidence attached.
func (m *Miner) Discover() ([]*ree.Rule, Stats, error) {
	var st Stats
	rel := m.env.DB.Rel(m.rel)
	if rel == nil {
		return nil, st, errUnknownRel(m.rel)
	}
	spOpts := DefaultSpaceOptions()
	spOpts.MLModels = m.opts.MLModels
	spOpts.TemporalAttrs = m.opts.TemporalAttrs
	spOpts.TargetAttrs = m.opts.TargetAttrs

	seen := map[string]*ree.Rule{}
	var out []*ree.Rule
	for round := 0; round < m.opts.Rounds; round++ {
		seed := m.opts.Seed + int64(round)*7919
		for _, pair := range []bool{true, false} {
			var sp *Space
			if pair {
				sp = BuildPairSpace(rel, spOpts)
			} else {
				sp = BuildSingleSpace(rel, spOpts)
			}
			if len(sp.Cons) == 0 || len(sp.Pre) == 0 {
				continue
			}
			ev, err := BuildEvidence(m.env, sp, pair, BuildOptions{
				SampleRatio: m.opts.SampleRatio,
				MaxPairs:    m.opts.MaxPairs,
				Seed:        seed,
			})
			if err != nil {
				return nil, st, err
			}
			st.EvidenceRows += ev.NumRows()
			rules := m.mine(ev, &st)
			for _, r := range rules {
				key := r.String()
				if prev, dup := seen[key]; dup {
					// Keep the better-supported estimate across rounds.
					if r.Support > prev.Support {
						prev.Support, prev.Confidence = r.Support, r.Confidence
					}
					continue
				}
				seen[key] = r
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].String() < out[j].String()
	})
	for i, r := range out {
		r.ID = fmt.Sprintf("d%d", i+1)
	}
	st.RulesEmitted = len(out)
	return out, st, nil
}

// mine runs the levelwise search over one evidence matrix.
func (m *Miner) mine(ev *Evidence, st *Stats) []*ree.Rule {
	sp := ev.Space
	nRows := ev.NumRows()
	if nRows == 0 {
		return nil
	}
	minRows := int(m.opts.MinSupport * float64(nRows))
	if minRows < 1 {
		minRows = 1
	}
	var out []*ree.Rule

	for cj, cons := range sp.Cons {
		preIdx := m.candidatePreds(sp, cons)
		// Levelwise BFS: frontier holds itemsets (ascending index order).
		type node struct {
			items []int
			last  int
		}
		frontier := make([]node, 0, len(preIdx))
		for _, i := range preIdx {
			frontier = append(frontier, node{items: []int{i}, last: i})
		}
		for level := 1; level <= m.opts.MaxLHS && len(frontier) > 0; level++ {
			var next []node
			for _, nd := range frontier {
				st.CandidatesExplored++
				matchX, matchBoth := ev.CountXAndCons(nd.items, cj)
				if m.opts.Prune && matchBoth < minRows {
					continue // support monotonicity: no superset can recover
				}
				conf := 0.0
				if matchX > 0 {
					conf = float64(matchBoth) / float64(matchX)
				}
				supp := float64(matchBoth) / float64(nRows)
				if matchX >= minRows && matchBoth >= minRows && conf >= m.opts.MinConfidence {
					pre := make([]*predicate.Predicate, len(nd.items))
					for k, idx := range nd.items {
						pre[k] = sp.Pre[idx]
					}
					r := ruleFromItems(sp, ev.Pair, pre, cons, "")
					r.Support = supp * ev.SampledFraction
					r.Confidence = conf
					out = append(out, r)
					continue // minimality: don't extend confirmed rules
				}
				if level == m.opts.MaxLHS {
					continue
				}
				for _, j := range preIdx {
					if j <= nd.last {
						continue
					}
					if m.conflicts(sp, nd.items, j) {
						continue
					}
					items := append(append([]int(nil), nd.items...), j)
					next = append(next, node{items: items, last: j})
				}
			}
			frontier = next
		}
	}
	return out
}

// candidatePreds lists precondition indices usable for a consequence:
// never the consequence itself, nothing on the same (var, attr) with Eq
// constants contradicting it, and — under FDX pruning — only predicates
// whose attribute associates with the consequence attribute.
func (m *Miner) candidatePreds(sp *Space, cons *predicate.Predicate) []int {
	consKey := spaceFingerprint(cons)
	var out []int
	for i, p := range sp.Pre {
		if spaceFingerprint(p) == consKey {
			continue
		}
		// A precondition equal to the consequence attribute comparison
		// makes the rule trivially confident; skip same-attr same-form.
		if p.Kind == cons.Kind && p.Kind == predicate.KAttr && p.A == cons.A && p.B == cons.B {
			continue
		}
		if p.Kind == predicate.KConst && cons.Kind == predicate.KConst && p.T == cons.T && p.A == cons.A {
			continue
		}
		// Constant preconditions on the consequence attribute breed
		// tautologies (t.A='x' ^ s.A='x' → t.A = s.A) — exclude them for
		// attribute-equality consequences. (Temporal consequences keep
		// them: ϕ4-style rules pin different constants on each side.)
		if p.Kind == predicate.KConst && cons.Kind == predicate.KAttr &&
			cons.A == cons.B && p.A == cons.A {
			continue
		}
		if m.opts.FDXPrune && !m.associated(p, cons) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// associated is the FDX-style unsupervised filter: a precondition on
// attribute A is kept for a consequence on attribute B when A and B show
// non-trivial statistical association (estimated via a trained correlation
// model when present, else by attribute-name identity fallback).
func (m *Miner) associated(p, cons *predicate.Predicate) bool {
	pa := attrOf(p)
	ca := attrOf(cons)
	if pa == "" || ca == "" || pa == ca {
		return true
	}
	rel := m.env.DB.Rel(m.rel)
	if rel == nil {
		return true
	}
	for _, mc := range m.env.Corr {
		if mc.Schema != rel.Schema {
			continue
		}
		ai, bi := rel.Schema.Index(pa), rel.Schema.Index(ca)
		if ai < 0 || bi < 0 {
			return true
		}
		// Probe association with the most frequent value pair.
		strength := 0.0
		n := 0
		for _, t := range rel.Tuples {
			if t.Values[ai].IsNull() || t.Values[bi].IsNull() {
				continue
			}
			strength += mc.Strength(t, []int{ai}, bi, t.Values[bi])
			n++
			if n >= 50 {
				break
			}
		}
		if n == 0 {
			return true
		}
		return strength/float64(n) >= 0.2
	}
	return true
}

func attrOf(p *predicate.Predicate) string {
	switch p.Kind {
	case predicate.KConst, predicate.KAttr, predicate.KTemporal:
		return p.A
	case predicate.KML:
		if len(p.As) == 1 {
			return p.As[0]
		}
	}
	return ""
}

// conflicts prunes itemsets with contradictory constant predicates on the
// same variable and attribute (t.A = 'x' ∧ t.A = 'y' can never match).
func (m *Miner) conflicts(sp *Space, items []int, j int) bool {
	pj := sp.Pre[j]
	if pj.Kind != predicate.KConst {
		return false
	}
	for _, i := range items {
		pi := sp.Pre[i]
		if pi.Kind == predicate.KConst && pi.T == pj.T && pi.A == pj.A && !pi.C.Equal(pj.C) {
			return true
		}
	}
	return false
}

// DiscoverCross mines cross-relation rules R(t) ^ S(s) ^ X → p0 (e.g. the
// Bank mi-city rule: a Customer's null city is determined by the employer
// Company's city). The same levelwise machinery runs over a cross-relation
// evidence matrix.
func DiscoverCross(env *predicate.Env, relT, relS string, opts Options) ([]*ree.Rule, Stats, error) {
	var st Stats
	rT, rS := env.DB.Rel(relT), env.DB.Rel(relS)
	if rT == nil {
		return nil, st, errUnknownRel(relT)
	}
	if rS == nil {
		return nil, st, errUnknownRel(relS)
	}
	m := NewMiner(env, relT, opts)
	spOpts := DefaultSpaceOptions()
	spOpts.TargetAttrs = opts.TargetAttrs
	sp := BuildCrossSpace(rT, rS, spOpts)
	if len(sp.Cons) == 0 || len(sp.Pre) == 0 {
		return nil, st, nil
	}
	ev, err := BuildCrossEvidence(env, sp, BuildOptions{
		SampleRatio: opts.SampleRatio,
		MaxPairs:    opts.MaxPairs,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, st, err
	}
	st.EvidenceRows = ev.NumRows()
	rules := m.mine(ev, &st)
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].String() < rules[j].String()
	})
	for i, r := range rules {
		r.ID = fmt.Sprintf("x%d", i+1)
	}
	st.RulesEmitted = len(rules)
	return rules, st, nil
}
