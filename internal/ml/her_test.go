package ml

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
)

func storeGraph() (*kg.Graph, kg.VertexID, kg.VertexID) {
	g := kg.New("Wiki")
	huawei := g.AddVertex("Huawei Flagship")
	beijing := g.AddVertex("Beijing")
	nike := g.AddVertex("Nike China")
	shanghai := g.AddVertex("Shanghai")
	mustEdge(g, huawei, "LocationAt", beijing)
	mustEdge(g, nike, "LocationAt", shanghai)
	return g, huawei, nike
}

func TestHERMatcher(t *testing.T) {
	g, huawei, nike := storeGraph()
	schema := mustSchema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	hTuple := rel.Insert("s3", data.S("Huawei Flagship"), data.S("Beijing"))
	nTuple := rel.Insert("s5", data.S("Nike China"), data.Null(data.TString))
	h := NewHERMatcher("HER", g, schema, 0.6, "name")

	if !h.Match(hTuple, huawei) {
		t.Errorf("huawei tuple/vertex must match: conf=%f", h.Confidence(hTuple, huawei))
	}
	if h.Match(hTuple, nike) {
		t.Errorf("huawei tuple must not match nike vertex: conf=%f", h.Confidence(hTuple, nike))
	}
	best, conf, ok := h.BestMatch(nTuple)
	if !ok || best != nike {
		t.Errorf("best match for nike tuple: id=%d conf=%f ok=%v", best, conf, ok)
	}
}

func TestHERMatcherAllStringFallback(t *testing.T) {
	g, huawei, _ := storeGraph()
	schema := mustSchema("Store", data.Attribute{Name: "name", Type: data.TString})
	rel := data.NewRelation(schema)
	tp := rel.Insert("s", data.S("Huawei Flagship"))
	h := NewHERMatcher("HER", g, schema, 0.6) // no key attrs: use all strings
	if !h.Match(tp, huawei) {
		t.Error("fallback attrs must still match")
	}
}

func TestPathMatcher(t *testing.T) {
	g, huawei, _ := storeGraph()
	pm := NewPathMatcher(g, 0.3)
	if !pm.Match("location", huawei, kg.Path{"LocationAt"}) {
		t.Error("location attr must match LocationAt path")
	}
	if pm.Match("location", huawei, kg.Path{"Missing"}) {
		t.Error("nonexistent path must not match")
	}
	if pm.Match("accu_sales", huawei, kg.Path{"LocationAt"}) {
		t.Error("dissimilar attribute must not match")
	}
}
