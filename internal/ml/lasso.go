package ml

import (
	"math"
	"sort"
)

// Lasso fits a linear model with L1 regularisation by cyclic coordinate
// descent. Rock uses it to learn polynomial expressions among numerical
// attributes (paper §5.4): unimportant features receive exactly zero
// weight, so the surviving terms form an interpretable arithmetic rule.
type Lasso struct {
	Weights   []float64
	Intercept float64
	// Lambda is the L1 penalty.
	Lambda float64
	// Iters is the number of coordinate-descent sweeps.
	Iters int
}

// NewLasso creates a model for nFeatures inputs.
func NewLasso(nFeatures int, lambda float64) *Lasso {
	return &Lasso{Weights: make([]float64, nFeatures), Lambda: lambda, Iters: 200}
}

// Fit runs coordinate descent on the standardized design matrix.
func (l *Lasso) Fit(xs [][]float64, ys []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	p := len(l.Weights)
	// Center y; standardise columns so the shrinkage is comparable.
	meanY := mean(ys)
	colMean := make([]float64, p)
	colNorm := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			colMean[j] += xs[i][j]
		}
		colMean[j] /= float64(n)
		for i := 0; i < n; i++ {
			d := xs[i][j] - colMean[j]
			colNorm[j] += d * d
		}
	}
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = ys[i] - meanY
	}
	for it := 0; it < l.Iters; it++ {
		maxDelta := 0.0
		for j := 0; j < p; j++ {
			if colNorm[j] == 0 {
				continue
			}
			// rho = x_j · (resid + w_j x_j)
			rho := 0.0
			for i := 0; i < n; i++ {
				xij := xs[i][j] - colMean[j]
				rho += xij * (resid[i] + l.Weights[j]*xij)
			}
			wNew := softThreshold(rho, l.Lambda*float64(n)) / colNorm[j]
			if wNew != l.Weights[j] {
				delta := wNew - l.Weights[j]
				for i := 0; i < n; i++ {
					resid[i] -= delta * (xs[i][j] - colMean[j])
				}
				l.Weights[j] = wNew
				if d := math.Abs(delta); d > maxDelta {
					maxDelta = d
				}
			}
		}
		if maxDelta < 1e-9 {
			break
		}
	}
	l.Intercept = meanY
	for j := 0; j < p; j++ {
		l.Intercept -= l.Weights[j] * colMean[j]
	}
}

// Predict evaluates the fitted model.
func (l *Lasso) Predict(x []float64) float64 {
	y := l.Intercept
	for j, w := range l.Weights {
		if j < len(x) {
			y += w * x[j]
		}
	}
	return y
}

// NonZero returns the indices of features with non-negligible weight,
// sorted by descending |weight| — the terms of the learned polynomial
// expression.
func (l *Lasso) NonZero(eps float64) []int {
	var idx []int
	for j, w := range l.Weights {
		if math.Abs(w) > eps {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(l.Weights[idx[a]]) > math.Abs(l.Weights[idx[b]])
	})
	return idx
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StumpEnsemble ranks feature importance with a boosted ensemble of
// decision stumps — the stand-in for the XGBoost importance ranking that
// Rock uses to prune irrelevant numerical attributes before fitting the
// polynomial expression (paper §5.4) and that the RB baseline uses as its
// downstream model.
type StumpEnsemble struct {
	Rounds int
	stumps []stump
}

type stump struct {
	feature   int
	threshold float64
	leftVal   float64
	rightVal  float64
	weight    float64
}

// NewStumpEnsemble creates an ensemble trained for the given boosting
// rounds.
func NewStumpEnsemble(rounds int) *StumpEnsemble { return &StumpEnsemble{Rounds: rounds} }

// Fit performs L2-boosting: each round fits the stump that best reduces the
// residual sum of squares.
func (e *StumpEnsemble) Fit(xs [][]float64, ys []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	p := len(xs[0])
	resid := append([]float64(nil), ys...)
	const shrink = 0.5
	for round := 0; round < e.Rounds; round++ {
		best := stump{feature: -1}
		bestSSE := math.Inf(1)
		for j := 0; j < p; j++ {
			vals := make([]float64, n)
			for i := range xs {
				vals[i] = xs[i][j]
			}
			thresholds := candidateThresholds(vals)
			for _, th := range thresholds {
				var sumL, sumR, nL, nR float64
				for i := range xs {
					if xs[i][j] <= th {
						sumL += resid[i]
						nL++
					} else {
						sumR += resid[i]
						nR++
					}
				}
				if nL == 0 || nR == 0 {
					continue
				}
				mL, mR := sumL/nL, sumR/nR
				sse := 0.0
				for i := range xs {
					var pred float64
					if xs[i][j] <= th {
						pred = mL
					} else {
						pred = mR
					}
					d := resid[i] - pred
					sse += d * d
				}
				if sse < bestSSE {
					bestSSE = sse
					best = stump{feature: j, threshold: th, leftVal: mL, rightVal: mR, weight: shrink}
				}
			}
		}
		if best.feature < 0 {
			break
		}
		e.stumps = append(e.stumps, best)
		for i := range xs {
			resid[i] -= shrink * best.eval(xs[i])
		}
	}
}

func (s stump) eval(x []float64) float64 {
	if x[s.feature] <= s.threshold {
		return s.leftVal
	}
	return s.rightVal
}

// Predict evaluates the ensemble.
func (e *StumpEnsemble) Predict(x []float64) float64 {
	y := 0.0
	for _, s := range e.stumps {
		y += s.weight * s.eval(x)
	}
	return y
}

// Importance returns a per-feature importance score: the number of stumps
// splitting on the feature weighted by their order (earlier stumps reduce
// more residual).
func (e *StumpEnsemble) Importance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	for i, s := range e.stumps {
		if s.feature < nFeatures {
			imp[s.feature] += 1 / float64(i+1)
		}
	}
	return imp
}

// TopFeatures returns the indices of the k most important features.
func (e *StumpEnsemble) TopFeatures(nFeatures, k int) []int {
	imp := e.Importance(nFeatures)
	idx := make([]int, nFeatures)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

func candidateThresholds(vals []float64) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var out []float64
	const maxThresholds = 16
	step := len(sorted) / maxThresholds
	if step < 1 {
		step = 1
	}
	prev := math.Inf(-1)
	for i := 0; i < len(sorted); i += step {
		if sorted[i] != prev {
			out = append(out, sorted[i])
			prev = sorted[i]
		}
	}
	return out
}
