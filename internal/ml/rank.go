package ml

import (
	"github.com/rockclean/rock/internal/data"
)

// Ranker is the contract of the Mrank temporal ranking model of paper §2.2:
// given two tuples of the same relation and an attribute, it predicts
// whether t1 ⪯_A t2 (weak) or t1 ≺_A t2 (strict), and exposes a confidence
// score in [0, 1] used for conflict resolution (paper §4.2, TD case).
type Ranker interface {
	// Name identifies the ranker inside rule text, e.g. "M_rank".
	Name() string
	// RankLeq returns the confidence that older ⪯_A newer for the attribute.
	RankLeq(rel string, older, newer *data.Tuple, attr string) float64
}

// PairRanker is the stand-in for the paper's neural pairwise ranking model:
// a logistic model over hand-crafted currency features of a tuple pair. It
// is trained with the creator–critic loop of [42] (see TrainRanker): the
// creator ranks pairs, the critic validates the ranking against currency
// constraints and derives more ranked pairs, which become augmented
// training data.
type PairRanker struct {
	RankerName string
	Schema     *data.Schema
	model      *LogisticRegression
	// AttrOrderHints maps attr -> value -> monotone rank; derived from
	// currency constraints such as "single precedes married" (rule ϕ4).
	AttrOrderHints map[string]map[string]int
	// Stamps provides per-cell timestamps where available.
	Stamps *data.TemporalRelation
}

// NewPairRanker creates an untrained ranker for the schema.
func NewPairRanker(name string, schema *data.Schema) *PairRanker {
	return &PairRanker{
		RankerName:     name,
		Schema:         schema,
		model:          NewLogisticRegression(numRankFeatures),
		AttrOrderHints: make(map[string]map[string]int),
	}
}

// Name implements Ranker.
func (r *PairRanker) Name() string { return r.RankerName }

const numRankFeatures = 6

// features encodes the pair (older, newer) for attribute attr:
//
//	0: timestamp delta sign (if both stamped)
//	1: monotone hint delta sign (from currency constraints)
//	2: completeness delta (newer tuples tend to be more complete)
//	3: numeric delta sign of the attribute itself (accumulating attributes)
//	4: string-length delta (normalised; richer values tend to be newer)
//	5: bias-ish constant for calibration
func (r *PairRanker) features(older, newer *data.Tuple, attr string) []float64 {
	f := make([]float64, numRankFeatures)
	ai := r.Schema.Index(attr)
	if r.Stamps != nil {
		t1, ok1 := r.Stamps.Timestamp(older.TID, attr)
		t2, ok2 := r.Stamps.Timestamp(newer.TID, attr)
		if ok1 && ok2 {
			f[0] = signF(float64(t2 - t1))
		}
	}
	if ai >= 0 {
		vo, vn := older.Values[ai], newer.Values[ai]
		if hints := r.AttrOrderHints[attr]; hints != nil && !vo.IsNull() && !vn.IsNull() {
			ho, ok1 := hints[vo.String()]
			hn, ok2 := hints[vn.String()]
			if ok1 && ok2 {
				f[1] = signF(float64(hn - ho))
			}
		}
		if !vo.IsNull() && !vn.IsNull() {
			if vo.Kind() == data.TInt || vo.Kind() == data.TFloat {
				f[3] = signF(vn.Float() - vo.Float())
			}
			lo, ln := len(vo.String()), len(vn.String())
			if lo+ln > 0 {
				f[4] = float64(ln-lo) / float64(lo+ln)
			}
		}
	}
	f[2] = completeness(newer) - completeness(older)
	f[5] = 1
	return f
}

func completeness(t *data.Tuple) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	n := 0
	for _, v := range t.Values {
		if !v.IsNull() {
			n++
		}
	}
	return float64(n) / float64(len(t.Values))
}

func signF(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// RankLeq implements Ranker.
func (r *PairRanker) RankLeq(rel string, older, newer *data.Tuple, attr string) float64 {
	return r.model.Score(r.features(older, newer, attr))
}

// RankedPair is a labelled training instance: Older ⪯_attr Newer holds iff
// Leq is true.
type RankedPair struct {
	Older, Newer *data.Tuple
	Attr         string
	Leq          bool
}

// CurrencyConstraint validates a proposed ranking, playing the critic of
// the creator–critic framework. Verdict returns +1 if older ⪯ newer is
// entailed, -1 if refuted, and 0 if the constraint is silent on the pair.
type CurrencyConstraint interface {
	Verdict(older, newer *data.Tuple, attr string) int
}

// MonotoneValueConstraint encodes "attribute A changes monotonically along
// Order": e.g. marital status moves single → married (paper rule ϕ4).
type MonotoneValueConstraint struct {
	Attr  string
	Order []string // values in old-to-new order
	idx   map[string]int
	ai    int
}

// NewMonotoneValueConstraint builds the constraint for the schema.
func NewMonotoneValueConstraint(schema *data.Schema, attr string, order []string) *MonotoneValueConstraint {
	m := &MonotoneValueConstraint{Attr: attr, Order: order, idx: make(map[string]int), ai: schema.Index(attr)}
	for i, v := range order {
		m.idx[v] = i
	}
	return m
}

// Verdict implements CurrencyConstraint.
func (m *MonotoneValueConstraint) Verdict(older, newer *data.Tuple, attr string) int {
	if attr != m.Attr || m.ai < 0 {
		return 0
	}
	vo, vn := older.Values[m.ai], newer.Values[m.ai]
	if vo.IsNull() || vn.IsNull() {
		return 0
	}
	io, ok1 := m.idx[vo.String()]
	in, ok2 := m.idx[vn.String()]
	if !ok1 || !ok2 {
		return 0
	}
	switch {
	case io <= in:
		return 1
	default:
		return -1
	}
}

// MonotoneNumericConstraint encodes "numeric attribute A never decreases"
// (e.g. accumulated sales, paper rule ϕ6).
type MonotoneNumericConstraint struct {
	Attr string
	ai   int
}

// NewMonotoneNumericConstraint builds the constraint for the schema.
func NewMonotoneNumericConstraint(schema *data.Schema, attr string) *MonotoneNumericConstraint {
	return &MonotoneNumericConstraint{Attr: attr, ai: schema.Index(attr)}
}

// Verdict implements CurrencyConstraint.
func (m *MonotoneNumericConstraint) Verdict(older, newer *data.Tuple, attr string) int {
	if attr != m.Attr || m.ai < 0 {
		return 0
	}
	vo, vn := older.Values[m.ai], newer.Values[m.ai]
	if vo.IsNull() || vn.IsNull() {
		return 0
	}
	switch {
	case vo.Float() <= vn.Float():
		return 1
	default:
		return -1
	}
}

// TrainRanker runs the creator–critic loop (paper §4.2): starting from the
// seed pairs, the creator (the logistic model) proposes rankings over
// candidate pairs; the critic (the currency constraints) validates or
// refutes them; validated/refuted pairs augment the training set; the model
// is refit. rounds is typically 2–4.
func TrainRanker(r *PairRanker, rel string, tuples []*data.Tuple, attrs []string,
	seed []RankedPair, critics []CurrencyConstraint, rounds int) {

	train := append([]RankedPair(nil), seed...)
	fit := func() {
		xs := make([][]float64, 0, 2*len(train))
		ys := make([]bool, 0, 2*len(train))
		for _, p := range train {
			xs = append(xs, r.features(p.Older, p.Newer, p.Attr))
			ys = append(ys, p.Leq)
			// Mirror the pair to teach antisymmetry on strict instances.
			xs = append(xs, r.features(p.Newer, p.Older, p.Attr))
			ys = append(ys, !p.Leq)
		}
		r.model = NewLogisticRegression(numRankFeatures)
		r.model.Fit(xs, ys, 7)
	}
	fit()

	for round := 0; round < rounds; round++ {
		added := 0
		for _, attr := range attrs {
			for i := 0; i < len(tuples); i++ {
				for j := i + 1; j < len(tuples); j++ {
					older, newer := tuples[i], tuples[j]
					if r.RankLeq(rel, older, newer, attr) < 0.5 {
						older, newer = newer, older
					}
					// Critic validates the creator's proposal.
					for _, c := range critics {
						switch c.Verdict(older, newer, attr) {
						case 1:
							train = append(train, RankedPair{older, newer, attr, true})
							added++
						case -1:
							train = append(train, RankedPair{older, newer, attr, false})
							added++
						}
					}
				}
			}
		}
		if added == 0 {
			break
		}
		fit()
	}
}

// FMeasure evaluates the ranker against gold pairs: precision/recall of the
// Leq decision at confidence 0.5.
func (r *PairRanker) FMeasure(rel string, gold []RankedPair) float64 {
	var tp, fp, fn float64
	for _, p := range gold {
		pred := r.RankLeq(rel, p.Older, p.Newer, p.Attr) >= 0.5
		switch {
		case pred && p.Leq:
			tp++
		case pred && !p.Leq:
			fp++
		case !pred && p.Leq:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}
