package ml

import (
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
)

// Local literal helpers: this package cannot import internal/must (cycle
// through ree -> predicate -> ml).

func mustSchema(name string, attrs ...data.Attribute) *data.Schema {
	s, err := data.NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

func mustEdge(g *kg.Graph, from kg.VertexID, label string, to kg.VertexID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}
