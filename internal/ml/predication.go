package ml

import (
	"strings"
	"sync"
	"sync/atomic"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/obs"
)

// This file is the in-process realisation of the paper's "ML predication
// is precomputed" optimisation (§5.4): heavyweight model invocations are
// hoisted out of rule enumeration and served from a prediction store, so
// the chase's hot path scales with the number of distinct
// tuple-attribute vectors instead of (rules × pairs × rounds).
//
// Three tiers cooperate:
//
//   - EmbedStore caches per-tuple attribute embeddings keyed by
//     (relation, tuple ID, attr set, version). The chase bumps a tuple's
//     version when it applies a fix to the tuple's class, so entries
//     invalidate precisely instead of whole partitions being rebuilt.
//   - PredCache memoises model Confidence/Predict results under compact
//     interned keys across 2^predShardBits lock-striped shards, replacing
//     CachedModel's single mutex + O(n²) string-concat keys.
//   - PredicatedModel wraps a Model so Predict/Confidence read through
//     PredCache; the chase batch-scores all (model, pair) predications
//     for a round in parallel before fanning work units out, making model
//     access during deduction read-mostly.

// Thresholded predictions are keyed by content (the value vectors), so
// cached entries are pure and never go stale; only the tuple-identity
// keyed EmbedStore needs invalidation.

const (
	internShards   = 16
	predShardBits  = 5 // 32 shards
	embedShardBits = 5 // 32 shards

	// defaultPredCap bounds the prediction cache (entries, across all
	// shards); defaultEmbedCap bounds the embedding store. Eviction is
	// arbitrary-victim: entries are content-keyed (pure), so evicting any
	// of them affects only speed, never results.
	defaultPredCap  = 1 << 16
	defaultEmbedCap = 1 << 14
)

func fnv32str(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// interner maps strings to dense uint32 IDs so cache keys become three
// machine words instead of concatenated value text. Interning is exact
// (no hash truncation), so distinct vectors can never collide into one
// cache entry. The table grows with the number of distinct strings seen;
// value domains are bounded by the dataset, so no eviction is needed.
type interner struct {
	next   atomic.Uint32
	shards [internShards]internShard
}

type internShard struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

func newInterner() *interner {
	in := &interner{}
	for i := range in.shards {
		in.shards[i].ids = make(map[string]uint32)
	}
	return in
}

// ID returns the stable dense ID for s, allocating one on first sight.
func (in *interner) ID(s string) uint32 {
	sh := &in.shards[fnv32str(s)%internShards]
	sh.mu.RLock()
	id, ok := sh.ids[s]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[s]; ok {
		return id
	}
	id = in.next.Add(1)
	sh.ids[s] = id
	return id
}

// sideKey renders one attribute-value vector as a canonical string for
// interning (one side of CachedModel's pairKey).
func sideKey(vals []data.Value) string {
	keys := make([]string, len(vals))
	n := len(vals)
	for i, v := range vals {
		keys[i] = v.Key()
		n += len(keys[i])
	}
	var b strings.Builder
	b.Grow(n)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// predKey identifies one (model, left vector, right vector) predication.
type predKey struct {
	model, left, right uint32
}

func (k predKey) shard() uint32 {
	h := k.left*0x9e3779b1 ^ k.right*0x85ebca77 ^ k.model*0xc2b2ae35
	h ^= h >> 15
	return h & (1<<predShardBits - 1)
}

// PredCache is the sharded, bounded prediction store: Confidence scores
// and Boolean decisions memoised under interned predKeys. All methods
// are safe for concurrent use; contention is spread across
// 2^predShardBits lock-striped shards.
type PredCache struct {
	intern      *interner
	capPerShard int
	shards      [1 << predShardBits]predShard
}

type predShard struct {
	mu   sync.Mutex
	conf map[predKey]float64
	pred map[predKey]bool

	hits, misses, evictions, warmed uint64
}

// NewPredCache creates a cache bounded to roughly capacity entries in
// total; capacity <= 0 selects the default.
func NewPredCache(capacity int) *PredCache { return newPredCache(newInterner(), capacity) }

func newPredCache(in *interner, capacity int) *PredCache {
	if capacity <= 0 {
		capacity = defaultPredCap
	}
	per := capacity >> predShardBits
	if per < 8 {
		per = 8
	}
	c := &PredCache{intern: in, capPerShard: per}
	for i := range c.shards {
		c.shards[i].conf = make(map[predKey]float64)
		c.shards[i].pred = make(map[predKey]bool)
	}
	return c
}

func (c *PredCache) getConf(k predKey) (float64, bool) {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	v, ok := sh.conf[k]
	if ok {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return v, ok
}

func (c *PredCache) putConf(k predKey, v float64) {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	sh.evict(c.capPerShard)
	sh.conf[k] = v
	sh.mu.Unlock()
}

func (c *PredCache) getPred(k predKey) (bool, bool) {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	v, ok := sh.pred[k]
	if ok {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return v, ok
}

func (c *PredCache) putPred(k predKey, v bool) {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	sh.evict(c.capPerShard)
	sh.pred[k] = v
	sh.mu.Unlock()
}

// evict makes room for one more entry; called with sh.mu held. Victims
// are arbitrary (map order): entries are pure memoisation, so any
// choice is correct, and counting beats bookkeeping an LRU list under
// the shard lock.
func (sh *predShard) evict(capPerShard int) {
	if len(sh.conf)+len(sh.pred) < capPerShard {
		return
	}
	target := capPerShard * 3 / 4
	for k := range sh.conf {
		if len(sh.conf)+len(sh.pred) <= target {
			break
		}
		delete(sh.conf, k)
		sh.evictions++
	}
	for k := range sh.pred {
		if len(sh.conf)+len(sh.pred) <= target {
			break
		}
		delete(sh.pred, k)
		sh.evictions++
	}
}

// warm stores a precomputed entry without touching hit/miss counters:
// warming is the batch precompute phase, not a lookup, so those counters
// keep measuring deduction-time serving. Returns false when the entry was
// already present (nothing to compute).
func (c *PredCache) warmConf(k predKey, compute func() float64) bool {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	_, ok := sh.conf[k]
	sh.mu.Unlock()
	if ok {
		return false
	}
	v := compute()
	sh.mu.Lock()
	sh.evict(c.capPerShard)
	sh.conf[k] = v
	sh.warmed++
	sh.mu.Unlock()
	return true
}

func (c *PredCache) warmPred(k predKey, compute func() bool) bool {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	_, ok := sh.pred[k]
	sh.mu.Unlock()
	if ok {
		return false
	}
	v := compute()
	sh.mu.Lock()
	sh.evict(c.capPerShard)
	sh.pred[k] = v
	sh.warmed++
	sh.mu.Unlock()
	return true
}

// Stats returns cumulative hit/miss/eviction/warm counters.
func (c *PredCache) Stats() (hits, misses, evictions, warmed uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		evictions += sh.evictions
		warmed += sh.warmed
		sh.mu.Unlock()
	}
	return
}

// Len reports the current number of cached entries (for tests).
func (c *PredCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.conf) + len(sh.pred)
		sh.mu.Unlock()
	}
	return n
}

// tupleKey identifies a tuple by interned relation name + tuple ID.
type tupleKey struct {
	rel uint32
	tid int32
}

// embedKey is tupleKey plus the interned attribute-set signature and the
// tuple's version at compute time. Bumping the version retires every
// entry of the tuple at once without touching the map (stale entries age
// out through capacity eviction).
type embedKey struct {
	t     tupleKey
	attrs uint32
	ver   uint32
}

// EmbedStore caches per-tuple attribute embeddings with versioned
// invalidation. Unlike PredCache its entries are keyed by tuple
// *identity*, and the value an embedding reflects changes when the chase
// applies a fix to the tuple — so consumers must call Invalidate for
// each touched tuple (the chase derives the set from its dirty-tuple
// tracking, the same granularity that re-activates rules).
type EmbedStore struct {
	intern      *interner
	capPerShard int
	shards      [1 << embedShardBits]embedShard
}

type embedShard struct {
	mu     sync.Mutex
	vers   map[tupleKey]uint32
	embeds map[embedKey]Vector

	hits, misses, invalidations, evictions uint64
}

// NewEmbedStore creates a store bounded to roughly capacity vectors in
// total; capacity <= 0 selects the default.
func NewEmbedStore(capacity int) *EmbedStore { return newEmbedStore(newInterner(), capacity) }

func newEmbedStore(in *interner, capacity int) *EmbedStore {
	if capacity <= 0 {
		capacity = defaultEmbedCap
	}
	per := capacity >> embedShardBits
	if per < 8 {
		per = 8
	}
	s := &EmbedStore{intern: in, capPerShard: per}
	for i := range s.shards {
		s.shards[i].vers = make(map[tupleKey]uint32)
		s.shards[i].embeds = make(map[embedKey]Vector)
	}
	return s
}

func (s *EmbedStore) shardOf(tk tupleKey) *embedShard {
	h := uint32(tk.tid)*0x9e3779b1 ^ tk.rel*0x85ebca77
	h ^= h >> 15
	return &s.shards[h&(1<<embedShardBits-1)]
}

// Embed returns the cached embedding for (rel, tid, attrsSig) at the
// tuple's current version, calling compute on a miss. attrsSig is any
// canonical rendering of the attribute set (e.g. strings.Join(attrs,
// ",")). compute runs outside the shard lock; concurrent misses may
// compute twice, which is benign because compute is deterministic.
func (s *EmbedStore) Embed(rel string, tid int, attrsSig string, compute func() Vector) Vector {
	tk := tupleKey{rel: s.intern.ID(rel), tid: int32(tid)}
	aid := s.intern.ID(attrsSig)
	sh := s.shardOf(tk)
	sh.mu.Lock()
	k := embedKey{t: tk, attrs: aid, ver: sh.vers[tk]}
	if v, ok := sh.embeds[k]; ok {
		sh.hits++
		sh.mu.Unlock()
		return v
	}
	sh.misses++
	sh.mu.Unlock()
	v := compute()
	sh.mu.Lock()
	if len(sh.embeds) >= s.capPerShard {
		target := s.capPerShard * 3 / 4
		for old := range sh.embeds {
			if len(sh.embeds) <= target {
				break
			}
			delete(sh.embeds, old)
			sh.evictions++
		}
	}
	sh.embeds[k] = v
	sh.mu.Unlock()
	return v
}

// Invalidate retires every cached embedding of (rel, tid) by bumping the
// tuple's version. O(1): stale entries are unreachable immediately and
// reclaimed by capacity eviction.
func (s *EmbedStore) Invalidate(rel string, tid int) {
	tk := tupleKey{rel: s.intern.ID(rel), tid: int32(tid)}
	sh := s.shardOf(tk)
	sh.mu.Lock()
	sh.vers[tk]++
	sh.invalidations++
	sh.mu.Unlock()
}

// Stats returns cumulative hit/miss/invalidation/eviction counters.
func (s *EmbedStore) Stats() (hits, misses, invalidations, evictions uint64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		invalidations += sh.invalidations
		evictions += sh.evictions
		sh.mu.Unlock()
	}
	return
}

// PredStats is a point-in-time snapshot of the predication layer's
// counters, surfaced through chase.Report and the rock CLI.
type PredStats struct {
	// Prediction cache (PredCache). Hits/Misses count deduction-time
	// lookups only; Warmed counts entries filled by the round-level batch
	// precompute (which is not a lookup).
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Warmed    uint64
	// Embedding store (EmbedStore).
	EmbedHits      uint64
	EmbedMisses    uint64
	EmbedEvictions uint64
	Invalidations  uint64
}

// Lookups is the total number of prediction-cache probes.
func (s PredStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate is Hits/Lookups in [0, 1]; 0 when the cache was never probed.
func (s PredStats) HitRate() float64 {
	l := s.Lookups()
	if l == 0 {
		return 0
	}
	return float64(s.Hits) / float64(l)
}

// Predication bundles the embedding store and prediction cache that one
// chase (or detection) run shares across rules, rounds, and workers. The
// two tiers share one interner so relation/attr/value signatures occupy
// a single ID space.
type Predication struct {
	Embeds *EmbedStore
	Preds  *PredCache

	// mu guards wrapped: every PredicatedModel built by Wrap, kept so
	// PublishTo can aggregate per-model hit/miss counters by model name
	// (the same model may be wrapped more than once — detection and the
	// chase each re-register registry models).
	mu      sync.Mutex
	wrapped []*PredicatedModel
}

// NewPredication creates a predication layer with default capacities.
func NewPredication() *Predication {
	in := newInterner()
	return &Predication{
		Embeds: newEmbedStore(in, 0),
		Preds:  newPredCache(in, 0),
	}
}

// Stats snapshots both tiers.
func (p *Predication) Stats() PredStats {
	var st PredStats
	st.Hits, st.Misses, st.Evictions, st.Warmed = p.Preds.Stats()
	st.EmbedHits, st.EmbedMisses, st.Invalidations, st.EmbedEvictions = p.Embeds.Stats()
	return st
}

// PublishTo mirrors the layer's cumulative counters into an
// observability registry as "pred.*" gauges (gauges, not counters: the
// layer's own shard counters are the source of truth and the snapshot
// is absolute). The chase republishes after every round so -metrics-out
// dumps always carry the layer's latest state. Nil-safe on both sides.
func (p *Predication) PublishTo(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	st := p.Stats()
	reg.SetGauge("pred.hits", int64(st.Hits))
	reg.SetGauge("pred.misses", int64(st.Misses))
	reg.SetGauge("pred.evictions", int64(st.Evictions))
	reg.SetGauge("pred.warmed", int64(st.Warmed))
	reg.SetGauge("pred.embed.hits", int64(st.EmbedHits))
	reg.SetGauge("pred.embed.misses", int64(st.EmbedMisses))
	reg.SetGauge("pred.embed.evictions", int64(st.EmbedEvictions))
	reg.SetGauge("pred.invalidations", int64(st.Invalidations))
	for name, hm := range p.ModelStats() {
		reg.SetGauge("pred.model."+name+".hits", int64(hm[0]))
		reg.SetGauge("pred.model."+name+".misses", int64(hm[1]))
	}
}

// ModelStats aggregates deduction-time cache lookups per model name:
// map value is {hits, misses}. Wrappers of the same underlying model
// (e.g. one per pipeline phase) sum into one row.
func (p *Predication) ModelStats() map[string][2]uint64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	wrapped := append([]*PredicatedModel(nil), p.wrapped...)
	p.mu.Unlock()
	out := make(map[string][2]uint64, len(wrapped))
	for _, pm := range wrapped {
		hm := out[pm.Name()]
		hm[0] += pm.hits.Load()
		hm[1] += pm.misses.Load()
		out[pm.Name()] = hm
	}
	return out
}

// Wrap returns m reading through the layer's prediction cache. Callers
// normally Unwrap first so stacked caches don't double-memoise.
func (p *Predication) Wrap(m Model) *PredicatedModel {
	pm := &PredicatedModel{
		Inner: m,
		cache: p.Preds,
		id:    p.Preds.intern.ID("model\x00" + m.Name()),
	}
	if th, ok := m.(Thresholder); ok {
		pm.threshold = th.DecisionThreshold()
		pm.thresholded = true
	}
	p.mu.Lock()
	p.wrapped = append(p.wrapped, pm)
	p.mu.Unlock()
	return pm
}

// PredicatedModel serves Predict/Confidence from a shared PredCache.
// For Thresholder models Predict is derived from the cached confidence;
// other models get their Boolean decisions memoised directly. The left
// and right vectors intern separately, so a tuple appearing in many
// candidate pairs keys its side once.
type PredicatedModel struct {
	Inner Model

	cache       *PredCache
	id          uint32
	threshold   float64
	thresholded bool

	// hits/misses count this wrapper's deduction-time cache lookups —
	// the per-model slice of the shard-level counters, aggregated by
	// Predication.ModelStats for cost attribution.
	hits, misses atomic.Uint64
}

// Name implements Model.
func (m *PredicatedModel) Name() string { return m.Inner.Name() }

func (m *PredicatedModel) key(left, right []data.Value) predKey {
	return predKey{
		model: m.id,
		left:  m.cache.intern.ID(sideKey(left)),
		right: m.cache.intern.ID(sideKey(right)),
	}
}

// Confidence implements Model, memoised in the shared cache.
func (m *PredicatedModel) Confidence(left, right []data.Value) float64 {
	k := m.key(left, right)
	if v, ok := m.cache.getConf(k); ok {
		m.hits.Add(1)
		return v
	}
	m.misses.Add(1)
	v := m.Inner.Confidence(left, right)
	m.cache.putConf(k, v)
	return v
}

// Predict implements Model.
func (m *PredicatedModel) Predict(left, right []data.Value) bool {
	if m.thresholded {
		return m.Confidence(left, right) >= m.threshold
	}
	k := m.key(left, right)
	if v, ok := m.cache.getPred(k); ok {
		m.hits.Add(1)
		return v
	}
	m.misses.Add(1)
	v := m.Inner.Predict(left, right)
	m.cache.putPred(k, v)
	return v
}

// Warm precomputes the predication for (left, right) and stores it in the
// shared cache without counting a lookup. The chase calls this for every
// candidate (model, pair) of a round before fanning work units out
// (paper §5.4); deduction then serves the same keys as hits.
func (m *PredicatedModel) Warm(left, right []data.Value) {
	k := m.key(left, right)
	if m.thresholded {
		m.cache.warmConf(k, func() float64 { return m.Inner.Confidence(left, right) })
		return
	}
	m.cache.warmPred(k, func() bool { return m.Inner.Predict(left, right) })
}

// Unwrap strips memoisation wrappers (CachedModel, PredicatedModel) and
// returns the underlying scoring model.
func Unwrap(m Model) Model {
	for {
		switch w := m.(type) {
		case *CachedModel:
			m = w.Inner
		case *PredicatedModel:
			m = w.Inner
		default:
			return m
		}
	}
}
