package ml

import (
	"math/rand"
	"testing"
)

func TestLogisticRegressionLinearSeparable(t *testing.T) {
	// y = x0 > x1
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []bool
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0] > x[1])
	}
	m := NewLogisticRegression(2)
	m.Fit(xs, ys, 42)
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Errorf("separable accuracy=%f want >= 0.95", acc)
	}
}

func TestLogisticRegressionScoreBounds(t *testing.T) {
	m := NewLogisticRegression(3)
	m.Weights = []float64{100, -100, 50}
	m.Bias = 10
	for _, x := range [][]float64{{1, 1, 1}, {-5, 5, -5}, {0, 0, 0}} {
		s := m.Score(x)
		if s < 0 || s > 1 {
			t.Errorf("score out of range: %f", s)
		}
	}
	// Short feature vector must not panic.
	_ = m.Score([]float64{1})
}

func TestLogisticRegressionEmptyFit(t *testing.T) {
	m := NewLogisticRegression(2)
	m.Fit(nil, nil, 1) // must not panic
	if m.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestSigmoidSaturation(t *testing.T) {
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Error("sigmoid must saturate")
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0)=%f", s)
	}
}
