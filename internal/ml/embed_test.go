package ml

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rockclean/rock/internal/data"
)

func TestEmbedSimilarStringsAreClose(t *testing.T) {
	a := Embed("5 Beijing West Road")
	b := Embed("5 Beijing  West Road ") // whitespace noise
	c := Embed("IPhone 14 discount code 41")
	if Cosine(a, b) < 0.95 {
		t.Errorf("near-identical strings similarity too low: %f", Cosine(a, b))
	}
	if Cosine(a, c) > 0.5 {
		t.Errorf("unrelated strings similarity too high: %f", Cosine(a, c))
	}
}

func TestStringSimBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := StringSim(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if StringSim("same", "same") != 1 {
		t.Error("identical strings must score 1")
	}
	if StringSim("Same ", " saME") != 1 {
		t.Error("case/space-insensitive identity must score 1")
	}
}

func TestVectorOps(t *testing.T) {
	v := Embed("hello")
	if math.Abs(v.Norm()-1) > 1e-9 {
		t.Errorf("embeddings must be unit norm, got %f", v.Norm())
	}
	var zero Vector
	if zero.Normalize().Norm() != 0 {
		t.Error("zero vector normalizes to itself")
	}
	if Cosine(zero, v) != 0 {
		t.Error("cosine with zero vector is 0")
	}
	w := v.Scale(2)
	if math.Abs(w.Norm()-2) > 1e-9 {
		t.Error("scale broken")
	}
	if math.Abs(Cosine(v, w)-1) > 1e-9 {
		t.Error("cosine must be scale-invariant")
	}
}

func TestEmbedValuesSkipsNulls(t *testing.T) {
	vals := []data.Value{data.S("beijing"), data.Null(data.TString)}
	only := []data.Value{data.S("beijing")}
	if Cosine(EmbedValues(vals), EmbedValues(only)) < 0.999 {
		t.Error("nulls must not perturb the embedding")
	}
	var empty Vector
	if EmbedValues([]data.Value{data.Null(data.TString)}) != empty {
		t.Error("all-null vector embeds to zero")
	}
}

func TestSimilarityMatcher(t *testing.T) {
	m := NewSimilarityMatcher("M_ER", 0.8)
	if m.Name() != "M_ER" {
		t.Error("name")
	}
	same := []data.Value{data.S("IPhone 14 (Discount ID 41)")}
	near := []data.Value{data.S("IPhone 14 (Discount Code 41)")}
	far := []data.Value{data.S("Mate X2 (Limited Sold)")}
	if !m.Predict(same, near) {
		t.Errorf("near-duplicate commodities must match: conf=%f", m.Confidence(same, near))
	}
	if m.Predict(same, far) {
		t.Errorf("different commodities must not match: conf=%f", m.Confidence(same, far))
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Get("nope"); err == nil {
		t.Error("missing model must error")
	}
	m := NewSimilarityMatcher("M_ER", 0.8)
	r.Register(m)
	got, err := r.Get("M_ER")
	if err != nil || got != Model(m) {
		t.Error("registry lookup failed")
	}
	if len(r.Names()) != 1 {
		t.Error("names")
	}
}

func TestCachedModel(t *testing.T) {
	calls := 0
	inner := &FuncModel{ModelName: "f", Threshold: 0.5, Score: func(l, r []data.Value) float64 {
		calls++
		return 0.9
	}}
	c := NewCachedModel(inner)
	l := []data.Value{data.S("a")}
	r := []data.Value{data.S("b")}
	if !c.Predict(l, r) || !c.Predict(l, r) || c.Confidence(l, r) != 0.9 {
		t.Error("cached decisions wrong")
	}
	if calls != 1 {
		t.Errorf("inner model called %d times, want 1", calls)
	}
	total, hits := c.Stats()
	if total != 3 || hits != 2 {
		t.Errorf("stats=%d/%d", hits, total)
	}
}
