package ml

import (
	"strconv"
	"sync"
	"testing"

	"github.com/rockclean/rock/internal/data"
)

func vals(ss ...string) []data.Value {
	out := make([]data.Value, len(ss))
	for i, s := range ss {
		out[i] = data.S(s)
	}
	return out
}

func TestPredicatedModelThresholded(t *testing.T) {
	calls := 0
	inner := &FuncModel{ModelName: "f", Threshold: 0.5, Score: func(l, r []data.Value) float64 {
		calls++
		return 0.9
	}}
	p := NewPredication()
	m := p.Wrap(inner)
	l, r := vals("a"), vals("b")
	// Predict derives from the cached confidence: one inner call total.
	if !m.Predict(l, r) || !m.Predict(l, r) || m.Confidence(l, r) != 0.9 {
		t.Error("predicated decisions wrong")
	}
	if calls != 1 {
		t.Errorf("inner model called %d times, want 1", calls)
	}
	st := p.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
}

// opaqueModel has no DecisionThreshold: its Boolean decisions must still
// be memoised (the bug CachedModel used to have).
type opaqueModel struct {
	predicts int
}

func (o *opaqueModel) Name() string                         { return "opaque" }
func (o *opaqueModel) Confidence(l, r []data.Value) float64 { return 0.7 }
func (o *opaqueModel) Predict(l, r []data.Value) bool       { o.predicts++; return true }

func TestPredicatedModelOpaqueBoolCached(t *testing.T) {
	inner := &opaqueModel{}
	p := NewPredication()
	m := p.Wrap(inner)
	l, r := vals("a"), vals("b")
	if !m.Predict(l, r) || !m.Predict(l, r) || !m.Predict(l, r) {
		t.Error("predictions wrong")
	}
	if inner.predicts != 1 {
		t.Errorf("inner Predict called %d times, want 1", inner.predicts)
	}
}

func TestCachedModelOpaqueBoolCached(t *testing.T) {
	inner := &opaqueModel{}
	c := NewCachedModel(inner)
	l, r := vals("a"), vals("b")
	if !c.Predict(l, r) || !c.Predict(l, r) {
		t.Error("predictions wrong")
	}
	if inner.predicts != 1 {
		t.Errorf("inner Predict called %d times, want 1 (bool decisions must cache)", inner.predicts)
	}
}

func TestWarmDoesNotCountLookups(t *testing.T) {
	calls := 0
	inner := &FuncModel{ModelName: "f", Threshold: 0.5, Score: func(l, r []data.Value) float64 {
		calls++
		return 0.6
	}}
	p := NewPredication()
	m := p.Wrap(inner)
	l, r := vals("x"), vals("y")
	m.Warm(l, r)
	m.Warm(l, r) // second warm finds the entry; no recompute
	if calls != 1 {
		t.Errorf("inner called %d times during warming, want 1", calls)
	}
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("warming moved lookup counters: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Warmed != 1 {
		t.Errorf("warmed=%d, want 1", st.Warmed)
	}
	// The warmed entry now serves lookups as hits.
	if !m.Predict(l, r) {
		t.Error("prediction wrong")
	}
	if calls != 1 {
		t.Errorf("inner recomputed after warm: %d calls", calls)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("post-warm lookup: hits=%d misses=%d, want 1/0", st.Hits, st.Misses)
	}
}

func TestPredCacheEvictionBounded(t *testing.T) {
	c := NewPredCache(256)
	for i := 0; i < 10000; i++ {
		c.putConf(predKey{model: 1, left: uint32(i), right: uint32(i)}, float64(i))
	}
	// capPerShard = 256/32 = 8 (each shard evicts to 3/4 before insert).
	if n := c.Len(); n > 256+32 {
		t.Errorf("cache grew past its bound: %d entries", n)
	}
	_, _, ev, _ := c.Stats()
	if ev == 0 {
		t.Error("no evictions counted despite overflow")
	}
}

func TestEmbedStoreVersioning(t *testing.T) {
	s := NewEmbedStore(0)
	computes := 0
	compute := func() Vector {
		computes++
		var v Vector
		v[0] = float64(computes)
		return v
	}
	a := s.Embed("R", 7, "name", compute)
	b := s.Embed("R", 7, "name", compute)
	if computes != 1 || a != b {
		t.Fatalf("expected one compute and a cached vector, got %d", computes)
	}
	// A different attr set keys separately.
	s.Embed("R", 7, "name,addr", compute)
	if computes != 2 {
		t.Fatalf("attr-set signature not part of the key: %d computes", computes)
	}
	// Invalidation retires every entry of the tuple at once.
	s.Invalidate("R", 7)
	c := s.Embed("R", 7, "name", compute)
	if computes != 3 {
		t.Fatalf("invalidated entry still served: %d computes", computes)
	}
	if c == a {
		t.Error("stale vector returned after invalidation")
	}
	// Other tuples are untouched.
	s.Embed("R", 8, "name", compute)
	before := computes
	s.Embed("R", 8, "name", compute)
	if computes != before {
		t.Error("unrelated tuple invalidated")
	}
	hits, misses, invals, _ := s.Stats()
	if invals != 1 || hits == 0 || misses == 0 {
		t.Errorf("stats hits=%d misses=%d invals=%d", hits, misses, invals)
	}
}

func TestPairKeyFormat(t *testing.T) {
	// pairKey must keep CachedModel's historical format: each value key
	// followed by 0x1e, with 0x1d between the sides.
	naive := func(left, right []data.Value) string {
		key := ""
		for _, v := range left {
			key += v.Key() + "\x1e"
		}
		key += "\x1d"
		for _, v := range right {
			key += v.Key() + "\x1e"
		}
		return key
	}
	cases := [][2][]data.Value{
		{vals("a", "b"), vals("c")},
		{vals(), vals("x")},
		{vals("x"), vals()},
		{vals(), vals()},
		{vals("has\x1esep"), vals("and\x1dmore")},
	}
	for i, c := range cases {
		if got, want := pairKey(c[0], c[1]), naive(c[0], c[1]); got != want {
			t.Errorf("case %d: pairKey=%q, naive=%q", i, got, want)
		}
	}
}

func TestInternerExact(t *testing.T) {
	in := newInterner()
	a := in.ID("alpha")
	if b := in.ID("alpha"); b != a {
		t.Error("re-interning changed the ID")
	}
	if c := in.ID("beta"); c == a {
		t.Error("distinct strings collided")
	}
}

// TestPredicationConcurrent hammers the sharded caches and the model
// registry from 8 goroutines; run under -race it verifies the striped
// locking (no torn counters, no map races).
func TestPredicationConcurrent(t *testing.T) {
	p := NewPredication()
	reg := NewRegistry()
	inner := NewSimilarityMatcher("M_ER", 0.8)
	reg.Register(p.Wrap(inner))

	const goroutines = 8
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m, err := reg.Get("M_ER")
				if err != nil {
					t.Error(err)
					return
				}
				l := vals("left-" + strconv.Itoa(i%37))
				r := vals("right-" + strconv.Itoa((i+g)%41))
				m.Predict(l, r)
				m.Confidence(l, r)
				if pm, ok := m.(*PredicatedModel); ok && i%7 == 0 {
					pm.Warm(l, r)
				}
				p.Embeds.Embed("R", i%17, "attrs", func() Vector { return Embed(l[0].Str()) })
				if i%31 == 0 {
					p.Embeds.Invalidate("R", i%17)
				}
				if i%13 == 0 {
					// Concurrent re-registration (the chase rewraps shared
					// registries); readers must keep resolving.
					reg.Register(p.Wrap(Unwrap(m)))
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Lookups() == 0 {
		t.Error("no lookups recorded")
	}
	if st.EmbedHits+st.EmbedMisses == 0 {
		t.Error("no embed traffic recorded")
	}
}

// --- benchmarks (satellite: show the allocation/caching wins) ---

func BenchmarkEmbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Embed("Apple Jingdong Self-run Flagship Store")
	}
}

func BenchmarkStringSim(b *testing.B) {
	b.Run("short", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StringSim("IPhone 14 (Discount ID 41)", "IPhone 14 (Discount Code 41)")
		}
	})
	long := make([]byte, 2*MaxEditLen)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	b.Run("long-cutoff", func(b *testing.B) {
		// Past MaxEditLen the quadratic edit-distance pass is skipped.
		b.ReportAllocs()
		s := string(long)
		for i := 0; i < b.N; i++ {
			StringSim(s, s[1:])
		}
	})
}

func BenchmarkPairKey(b *testing.B) {
	left := vals("Smith", "Christine", "5 Beijing West Road")
	right := vals("Smith", "Christine", "12 Beijing Road")
	b.Run("builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pairKey(left, right)
		}
	})
	// The pre-optimisation += version, kept for comparison: each +=
	// reallocates and copies the whole prefix.
	naive := func(left, right []data.Value) string {
		key := ""
		for _, v := range left {
			key += v.Key() + "\x1e"
		}
		key += "\x1d"
		for _, v := range right {
			key += v.Key() + "\x1e"
		}
		return key
	}
	b.Run("naive-concat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naive(left, right)
		}
	})
}

func BenchmarkPredicationStore(b *testing.B) {
	mk := func() (*Predication, *PredicatedModel) {
		p := NewPredication()
		return p, p.Wrap(NewSimilarityMatcher("M_ER", 0.8))
	}
	left, right := vals("IPhone 14 (Discount ID 41)"), vals("IPhone 14 (Discount Code 41)")
	b.Run("hit", func(b *testing.B) {
		_, m := mk()
		m.Predict(left, right)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Predict(left, right)
		}
	})
	b.Run("miss", func(b *testing.B) {
		_, m := mk()
		pairs := make([][2][]data.Value, 1024)
		for i := range pairs {
			pairs[i] = [2][]data.Value{vals("left-" + strconv.Itoa(i)), vals("right-" + strconv.Itoa(i))}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			m.Predict(pr[0], pr[1])
		}
	})
	b.Run("invalidation", func(b *testing.B) {
		p, _ := mk()
		var v Vector
		compute := func() Vector { return v }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Embeds.Embed("R", i%64, "sig", compute)
			if i%8 == 0 {
				p.Embeds.Invalidate("R", i%64)
			}
		}
	})
}

func BenchmarkCachedModelPredict(b *testing.B) {
	// The pre-layer global-mutex cache, for comparison with
	// BenchmarkPredicationStore/hit.
	c := NewCachedModel(NewSimilarityMatcher("M_ER", 0.8))
	left, right := vals("IPhone 14 (Discount ID 41)"), vals("IPhone 14 (Discount Code 41)")
	c.Predict(left, right)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(left, right)
	}
}
