// Package ml provides the machine-learning substrate that Rock embeds in
// REE++ rules as predicates. The paper uses heavyweight neural models (Bert
// matchers, an LSTM path aligner, a pairwise neural ranker, graph + language
// model embeddings); this package substitutes lightweight, dependency-free
// equivalents that honour the same Boolean-predicate contracts (see
// DESIGN.md, "Scope and substitutions"):
//
//   - character n-gram hashing embeddings with cosine similarity stand in
//     for transformer text encoders;
//   - a threshold matcher over those embeddings stands in for Bert-style ER
//     models M(t[A̅], s[B̅]);
//   - a pairwise logistic ranker trained in a creator–critic loop stands in
//     for the Mrank temporal ranking model;
//   - co-occurrence statistics and kNN value suggestion stand in for the
//     Mc correlation and Md imputation models;
//   - LSH over embedding sign bits provides the blocking used to avoid
//     quadratic ML inference (paper §5.3);
//   - a coordinate-descent LASSO and a stump-ensemble feature ranker stand
//     in for the polynomial-expression learner and XGBoost (paper §5.4).
package ml

import (
	"hash/fnv"
	"math"
	"strings"
	"sync"

	"github.com/rockclean/rock/internal/data"
)

// EmbedDim is the dimensionality of the hashing embeddings. 64 keeps the
// vectors cache-friendly while leaving cosine similarities well-behaved for
// realistic strings.
const EmbedDim = 64

// Vector is a dense embedding.
type Vector [EmbedDim]float64

// Embed maps a string to a vector by hashing its character trigrams (plus
// whole tokens) into buckets — the classic "hashing trick". Similar strings
// share many n-grams and therefore land close in cosine space.
func Embed(s string) Vector {
	var v Vector
	s = normalize(s)
	if s == "" {
		return v
	}
	grams := append(ngrams(s, 2), ngrams(s, 3)...)
	for _, tok := range strings.Fields(s) {
		grams = append(grams, "#"+tok+"#")
	}
	for _, g := range grams {
		h := fnv.New32a()
		h.Write([]byte(g))
		sum := h.Sum32()
		idx := int(sum % EmbedDim)
		sign := 1.0
		if (sum>>16)&1 == 1 {
			sign = -1.0
		}
		v[idx] += sign
	}
	return v.Normalize()
}

// EmbedValues embeds a vector of attribute values by averaging their
// individual embeddings (numeric values embed via their textual rendering,
// prefixed so "12" the price and "12" the street number hash apart less
// often than raw digits would).
func EmbedValues(vals []data.Value) Vector {
	var acc Vector
	n := 0
	for _, val := range vals {
		if val.IsNull() {
			continue
		}
		acc = acc.Add(Embed(val.String()))
		n++
	}
	if n == 0 {
		return acc
	}
	return acc.Scale(1 / float64(n)).Normalize()
}

func normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

func ngrams(s string, n int) []string {
	runes := []rune(" " + s + " ")
	if len(runes) < n {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Scale returns v * k.
func (v Vector) Scale(k float64) Vector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Dot returns the inner product.
func (v Vector) Dot(w Vector) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit norm (or v itself if zero).
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Cosine returns the cosine similarity of two vectors in [-1, 1]; zero
// vectors yield 0.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// StringSim is a convenience: the maximum of embedding-cosine similarity
// and edit similarity, in [0, 1]. The blend mirrors production ER
// matchers: n-gram cosine captures token overlap on long values, edit
// similarity captures single-typo corruptions of short values (where a
// character swap destroys most n-grams).
func StringSim(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	if na == nb {
		return 1
	}
	c := Cosine(Embed(a), Embed(b))
	if c < 0 {
		c = 0
	}
	// The O(len²) edit-distance pass only changes the outcome for short
	// values (a typo in a long string barely moves 1 - dist/len, and
	// n-gram cosine already covers token overlap), so pathological long
	// pairs short-circuit to cosine-only similarity.
	if len(na) > MaxEditLen || len(nb) > MaxEditLen {
		return c
	}
	if e := EditSim(na, nb); e > c {
		return e
	}
	return c
}

// MaxEditLen is the per-string length cutoff beyond which StringSim
// skips the quadratic Damerau-Levenshtein pass.
const MaxEditLen = 256

// EditSim is normalised Damerau-Levenshtein similarity:
// 1 - dist/max(len). Transpositions count as one edit.
func EditSim(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	max := la
	if lb > max {
		max = lb
	}
	d := damerau(a, b)
	return 1 - float64(d)/float64(max)
}

// damerauScratch recycles the three DP rows damerau needs; pooling them
// removes three allocations per EditSim call on the chase hot path.
type damerauScratch struct{ rows []int }

var damerauPool = sync.Pool{New: func() interface{} { return &damerauScratch{} }}

// damerau computes the Damerau-Levenshtein distance (optimal string
// alignment variant) between byte strings.
func damerau(a, b string) int {
	la, lb := len(a), len(b)
	w := lb + 1
	sc := damerauPool.Get().(*damerauScratch)
	if cap(sc.rows) < 3*w {
		sc.rows = make([]int, 3*w)
	}
	rows := sc.rows[:3*w]
	prev2 := rows[0*w : 1*w : 1*w]
	prev := rows[1*w : 2*w : 2*w]
	cur := rows[2*w : 3*w : 3*w]
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := cur[j-1] + 1 // insertion
			if v := prev[j] + 1; v < m {
				m = v // deletion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	d := prev[lb]
	damerauPool.Put(sc)
	return d
}
