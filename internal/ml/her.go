package ml

import (
	"sync"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
)

// HERMatcher implements heterogeneous entity resolution HER(t, x) of paper
// §2.3: deciding whether a relational tuple and a knowledge-graph vertex
// refer to the same entity. The paper uses parametric simulation [31] with
// an LSTM; this substitute compares the tuple's attribute values with the
// vertex's label and neighbourhood features via embedding similarity,
// honouring the same Boolean contract.
type HERMatcher struct {
	ModelName string
	Graph     *kg.Graph
	Schema    *data.Schema
	Threshold float64
	// KeyAttrs are the attributes compared against the vertex label (the
	// entity name); when empty, all string attributes are used.
	KeyAttrs []string
	// Memo caches per-(tuple, vertex) confidences — Rock pre-computes ML
	// predictions once predicates are ready (paper §5.4); the SQL-engine
	// baselines run without it. Nil disables caching.
	Memo map[memoKey]float64

	mu sync.Mutex
}

type memoKey struct {
	tid int
	v   kg.VertexID
}

// NewHERMatcher builds a matcher for one schema against one graph, with
// memoisation enabled.
func NewHERMatcher(name string, g *kg.Graph, schema *data.Schema, threshold float64, keyAttrs ...string) *HERMatcher {
	return &HERMatcher{
		ModelName: name, Graph: g, Schema: schema, Threshold: threshold,
		KeyAttrs: keyAttrs, Memo: make(map[memoKey]float64),
	}
}

// Uncached returns a copy without memoisation (the per-call inference cost
// every time — the SQL-engine baseline configuration).
func (h *HERMatcher) Uncached() *HERMatcher {
	c := &HERMatcher{ModelName: h.ModelName, Graph: h.Graph, Schema: h.Schema,
		Threshold: h.Threshold, KeyAttrs: h.KeyAttrs}
	return c
}

// Name identifies the matcher inside rule text, e.g. "HER".
func (h *HERMatcher) Name() string { return h.ModelName }

// Confidence scores tuple-vertex correspondence: the max similarity of any
// key attribute to the vertex label, blended with neighbourhood overlap.
// Scores are memoised per (tuple, vertex) when Memo is enabled.
func (h *HERMatcher) Confidence(t *data.Tuple, v kg.VertexID) float64 {
	if h.Memo != nil {
		h.mu.Lock()
		if s, ok := h.Memo[memoKey{t.TID, v}]; ok {
			h.mu.Unlock()
			return s
		}
		h.mu.Unlock()
	}
	s := h.confidence(t, v)
	if h.Memo != nil {
		h.mu.Lock()
		h.Memo[memoKey{t.TID, v}] = s
		h.mu.Unlock()
	}
	return s
}

func (h *HERMatcher) confidence(t *data.Tuple, v kg.VertexID) float64 {
	label := h.Graph.Label(v)
	if label == "" {
		return 0
	}
	attrs := h.KeyAttrs
	if len(attrs) == 0 {
		for _, a := range h.Schema.Attrs {
			if a.Type == data.TString {
				attrs = append(attrs, a.Name)
			}
		}
	}
	best := 0.0
	for _, a := range attrs {
		i := h.Schema.Index(a)
		if i < 0 || i >= len(t.Values) || t.Values[i].IsNull() {
			continue
		}
		if s := StringSim(t.Values[i].Str(), label); s > best {
			best = s
		}
	}
	// Neighbourhood bonus: vertex property values appearing among the
	// tuple's values raise confidence.
	neigh := h.Graph.Neighborhood(v)
	if len(neigh) > 0 {
		match := 0.0
		for _, f := range neigh {
			// f is "label=value"; compare the value part with tuple cells.
			eq := 0.0
			for _, val := range t.Values {
				if val.IsNull() {
					continue
				}
				if s := StringSim(val.String(), afterEq(f)); s > eq {
					eq = s
				}
			}
			match += eq
		}
		best = 0.7*best + 0.3*(match/float64(len(neigh)))
	}
	return clamp01(best)
}

// Match returns HER(t, x): whether confidence clears the threshold.
func (h *HERMatcher) Match(t *data.Tuple, v kg.VertexID) bool {
	return h.Confidence(t, v) >= h.Threshold
}

// BestMatch scans the graph for the best-matching vertex for a tuple; ok is
// false when nothing clears the threshold. Candidate generation first
// narrows to vertices whose label shares a token with a key attribute, so
// the scan stays sub-linear on realistic graphs.
func (h *HERMatcher) BestMatch(t *data.Tuple) (kg.VertexID, float64, bool) {
	bestID, bestScore := kg.VertexID(-1), -1.0
	for _, v := range h.Graph.VertexIDs() {
		if s := h.Confidence(t, v); s > bestScore {
			bestID, bestScore = v, s
		}
	}
	if bestScore < h.Threshold {
		return -1, bestScore, false
	}
	return bestID, bestScore, true
}

func afterEq(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[i+1:]
		}
	}
	return s
}

// PathMatcher implements match(t.A, x.ρ) of paper §2.3: whether the label
// path ρ from vertex x encodes the A-attribute of tuple t. The paper trains
// an LSTM for this; the substitute checks that (a) the path exists from x
// and (b) the path's label sequence is similar to the attribute name — the
// same decision surface at the contract level.
type PathMatcher struct {
	Graph     *kg.Graph
	Threshold float64
}

// NewPathMatcher builds a matcher over one graph.
func NewPathMatcher(g *kg.Graph, threshold float64) *PathMatcher {
	return &PathMatcher{Graph: g, Threshold: threshold}
}

// Match reports whether ρ from x encodes attribute attr.
func (p *PathMatcher) Match(attr string, x kg.VertexID, path kg.Path) bool {
	if !p.Graph.HasMatch(x, path) {
		return false
	}
	// Attribute-name/path-label similarity: "location" vs "(LocationAt)".
	joined := ""
	for _, l := range path {
		joined += l + " "
	}
	return StringSim(attr, joined) >= p.Threshold
}
