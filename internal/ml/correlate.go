package ml

import (
	"math"
	"sort"

	"github.com/rockclean/rock/internal/data"
)

// CorrelationModel is Mc of paper §2.3: given a partial tuple t[A̅] and a
// candidate value c for attribute B (or the current value t[B]), it returns
// the strength of the correlation between them in [0, 1]. The paper builds
// Mc from graph + language-model embeddings; this substitute estimates the
// same quantity from smoothed co-occurrence statistics (pointwise mutual
// information mapped through a sigmoid), which exercises the identical
// predicate contract Mc(t[A̅], t[B]=c) ≥ δ.
type CorrelationModel struct {
	ModelName string
	Schema    *data.Schema

	// pairCount[aIdx][aVal|bIdx|bVal] counts co-occurrences of attribute
	// values across trained tuples.
	pairCount map[string]float64
	valCount  map[string]float64
	total     float64
}

// NewCorrelationModel creates an untrained model for the schema.
func NewCorrelationModel(name string, schema *data.Schema) *CorrelationModel {
	return &CorrelationModel{
		ModelName: name,
		Schema:    schema,
		pairCount: make(map[string]float64),
		valCount:  make(map[string]float64),
	}
}

// Name identifies the model inside rule text, e.g. "M_c".
func (m *CorrelationModel) Name() string { return m.ModelName }

func cellKey(attrIdx int, v data.Value) string {
	return string(rune('A'+attrIdx)) + "\x1f" + v.Key()
}

// Train ingests tuples (typically the validated portion of the data plus
// accumulated ground truth) and tallies value co-occurrence.
func (m *CorrelationModel) Train(tuples []*data.Tuple) {
	for _, t := range tuples {
		m.total++
		for i, v := range t.Values {
			if v.IsNull() {
				continue
			}
			ki := cellKey(i, v)
			m.valCount[ki]++
			for j := i + 1; j < len(t.Values); j++ {
				w := t.Values[j]
				if w.IsNull() {
					continue
				}
				m.pairCount[ki+"\x1e"+cellKey(j, w)]++
			}
		}
	}
}

// pairStrength returns the smoothed PMI-derived strength for one attribute
// pair, mapped to [0, 1].
func (m *CorrelationModel) pairStrength(ai int, av data.Value, bi int, bv data.Value) float64 {
	if m.total == 0 || av.IsNull() || bv.IsNull() {
		return 0
	}
	ka, kb := cellKey(ai, av), cellKey(bi, bv)
	var joint float64
	if ai < bi {
		joint = m.pairCount[ka+"\x1e"+kb]
	} else {
		joint = m.pairCount[kb+"\x1e"+ka]
	}
	ca, cb := m.valCount[ka], m.valCount[kb]
	if ca == 0 || cb == 0 {
		return 0
	}
	// A candidate value observed fewer than twice has no statistical
	// support: raw PMI would reward exactly such one-off co-occurrences
	// (a corrupted value trivially "co-occurs" with its own row), so the
	// model abstains instead.
	if cb < 2 {
		return 0
	}
	// Smoothed PMI: log P(a,b)/(P(a)P(b)); sigmoid-squashed. Conditional
	// support P(b|a) is blended in so deterministic associations score near 1.
	pmi := math.Log(((joint + 0.1) / m.total) / (((ca / m.total) * (cb / m.total)) + 1e-12))
	cond := joint / ca
	return clamp01(0.5*sigmoid(pmi) + 0.5*cond)
}

// Strength returns Mc(t[A̅], B=c): the average pair strength between each
// non-null anchor attribute value and the candidate value c for attribute
// bIdx. anchors is a set of attribute indices; pass nil for "all non-null
// attributes except bIdx".
func (m *CorrelationModel) Strength(t *data.Tuple, anchors []int, bIdx int, c data.Value) float64 {
	if c.IsNull() {
		return 0
	}
	if anchors == nil {
		for i, v := range t.Values {
			if i != bIdx && !v.IsNull() {
				anchors = append(anchors, i)
			}
		}
	}
	if len(anchors) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, ai := range anchors {
		if ai == bIdx || ai >= len(t.Values) {
			continue
		}
		av := t.Values[ai]
		if av.IsNull() {
			continue
		}
		// Anchors whose value occurs once carry no statistical support —
		// a near-unique key "co-occurs" perfectly with whatever happens to
		// sit in its row, drowning the informative correlations.
		if m.valCount[cellKey(ai, av)] < 2 {
			continue
		}
		sum += m.pairStrength(ai, av, bIdx, c)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// ValuePredictor is Md of paper §2.3: given a partial tuple t[A̅] it
// suggests a value for attribute B. The paper retrieves candidates from a
// knowledge graph and ranks them with reused Mc encoders; this substitute
// retrieves candidates from the trained co-occurrence table (plus any
// caller-provided candidates, e.g. KG extractions) and ranks them by Mc
// strength — the same retrieve-then-rank structure.
type ValuePredictor struct {
	ModelName string
	Corr      *CorrelationModel
	// Candidates caches the distinct observed values per attribute index.
	candidates map[int][]data.Value
}

// NewValuePredictor builds Md on top of a trained correlation model.
func NewValuePredictor(name string, corr *CorrelationModel, trained []*data.Tuple) *ValuePredictor {
	vp := &ValuePredictor{ModelName: name, Corr: corr, candidates: make(map[int][]data.Value)}
	seen := make(map[int]map[string]bool)
	for _, t := range trained {
		for i, v := range t.Values {
			if v.IsNull() {
				continue
			}
			s := seen[i]
			if s == nil {
				s = make(map[string]bool)
				seen[i] = s
			}
			if !s[v.Key()] {
				s[v.Key()] = true
				vp.candidates[i] = append(vp.candidates[i], v)
			}
		}
	}
	return vp
}

// Name identifies the model inside rule text, e.g. "M_d".
func (vp *ValuePredictor) Name() string { return vp.ModelName }

// Suggest returns the best value for attribute bIdx of t together with its
// strength; ok is false when no candidate clears zero strength. extra
// candidates (e.g. from KG extraction) compete with observed values.
func (vp *ValuePredictor) Suggest(t *data.Tuple, bIdx int, extra ...data.Value) (data.Value, float64, bool) {
	cands := append([]data.Value(nil), vp.candidates[bIdx]...)
	cands = append(cands, extra...)
	if len(cands) == 0 {
		return data.Value{}, 0, false
	}
	type scored struct {
		v data.Value
		s float64
	}
	best := scored{s: -1}
	// Deterministic tie-break: sort candidates by key first.
	sort.Slice(cands, func(i, j int) bool { return cands[i].Key() < cands[j].Key() })
	for _, c := range cands {
		s := vp.Corr.Strength(t, nil, bIdx, c)
		if s > best.s {
			best = scored{c, s}
		}
	}
	if best.s <= 0 {
		return data.Value{}, 0, false
	}
	return best.v, best.s, true
}
