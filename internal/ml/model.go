package ml

import (
	"fmt"
	"strings"
	"sync"

	"github.com/rockclean/rock/internal/data"
)

// Model is a Boolean ML predicate M(t[A̅], s[B̅]) as embedded in REE++s
// (paper §2.1): any classifier whose output is transformed to a Boolean,
// typically by thresholding a strength score. Confidence exposes the raw
// strength in [0, 1] for conflict resolution (paper §4.2).
type Model interface {
	// Name identifies the model inside rule text, e.g. "M_ER".
	Name() string
	// Predict returns the Boolean decision for the attribute vectors.
	Predict(left, right []data.Value) bool
	// Confidence returns the decision strength in [0, 1].
	Confidence(left, right []data.Value) float64
}

// Thresholder is implemented by models whose Boolean decision is
// "Confidence >= threshold". Caching layers (CachedModel,
// PredicatedModel) use it to serve Predict straight from the confidence
// cache for any such model, not just the built-in ones.
type Thresholder interface {
	// DecisionThreshold returns the confidence cut-off for Predict.
	DecisionThreshold() float64
}

// Registry resolves model names appearing in parsed rules to Model
// implementations. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]Model
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{models: make(map[string]Model)} }

// Register adds (or replaces) a model under its own name.
func (r *Registry) Register(m Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[m.Name()] = m
}

// Get resolves a model by name.
func (r *Registry) Get(name string) (Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("ml: unknown model %q", name)
	}
	return m, nil
}

// Names lists registered model names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	return names
}

// SimilarityMatcher is the stand-in for Bert-style ER/matching models: it
// embeds both attribute vectors and thresholds their cosine similarity.
// With well-separated data it behaves like a high-precision matcher; with
// noisy data it exhibits the realistic false positives/negatives that the
// paper's rules compensate for with extra logic conditions (property (4) of
// §2.1).
type SimilarityMatcher struct {
	ModelName string
	Threshold float64
}

// NewSimilarityMatcher creates a matcher with the given decision threshold
// in [0, 1]; typical ER thresholds are 0.80–0.92.
func NewSimilarityMatcher(name string, threshold float64) *SimilarityMatcher {
	return &SimilarityMatcher{ModelName: name, Threshold: threshold}
}

// Name implements Model.
func (m *SimilarityMatcher) Name() string { return m.ModelName }

// Confidence implements Model. Single-attribute string pairs score with
// the blended StringSim (cosine + edit similarity, robust to single
// typos); multi-attribute vectors score with the cosine of their averaged
// embeddings. Nulls are skipped on both sides.
func (m *SimilarityMatcher) Confidence(left, right []data.Value) float64 {
	if len(left) == 1 && len(right) == 1 && !left[0].IsNull() && !right[0].IsNull() {
		return StringSim(left[0].String(), right[0].String())
	}
	lv := EmbedValues(left)
	rv := EmbedValues(right)
	c := Cosine(lv, rv)
	if c < 0 {
		return 0
	}
	return c
}

// Predict implements Model.
func (m *SimilarityMatcher) Predict(left, right []data.Value) bool {
	return m.Confidence(left, right) >= m.Threshold
}

// DecisionThreshold implements Thresholder.
func (m *SimilarityMatcher) DecisionThreshold() float64 { return m.Threshold }

// FuncModel adapts an arbitrary confidence function to the Model interface;
// handy in tests and for wrapping trained classifiers.
type FuncModel struct {
	ModelName string
	Threshold float64
	Score     func(left, right []data.Value) float64
}

// Name implements Model.
func (m *FuncModel) Name() string { return m.ModelName }

// Confidence implements Model.
func (m *FuncModel) Confidence(left, right []data.Value) float64 {
	return m.Score(left, right)
}

// Predict implements Model.
func (m *FuncModel) Predict(left, right []data.Value) bool {
	return m.Score(left, right) >= m.Threshold
}

// DecisionThreshold implements Thresholder.
func (m *FuncModel) DecisionThreshold() float64 { return m.Threshold }

// CachedModel memoises Predict/Confidence results keyed by the value
// vectors. Rock pre-computes ML predictions once the predicates are ready
// (paper §5.4, "ML predication"); the cache is the in-process realisation.
type CachedModel struct {
	Inner Model

	mu    sync.Mutex
	cache map[string]float64
	preds map[string]bool
	hits  int
	calls int
}

// NewCachedModel wraps a model with a memo cache.
func NewCachedModel(inner Model) *CachedModel {
	return &CachedModel{Inner: inner, cache: make(map[string]float64), preds: make(map[string]bool)}
}

// Name implements Model.
func (c *CachedModel) Name() string { return c.Inner.Name() }

// Confidence implements Model with memoisation.
func (c *CachedModel) Confidence(left, right []data.Value) float64 {
	key := pairKey(left, right)
	c.mu.Lock()
	c.calls++
	if v, ok := c.cache[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := c.Inner.Confidence(left, right)
	c.mu.Lock()
	c.cache[key] = v
	c.mu.Unlock()
	return v
}

// Predict implements Model. Thresholder models derive the decision from
// the (cached) confidence; other models get their Boolean decisions
// memoised directly, so no model type ever bypasses the cache.
func (c *CachedModel) Predict(left, right []data.Value) bool {
	if th, ok := c.Inner.(Thresholder); ok {
		return c.Confidence(left, right) >= th.DecisionThreshold()
	}
	key := pairKey(left, right)
	c.mu.Lock()
	c.calls++
	if v, ok := c.preds[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := c.Inner.Predict(left, right)
	c.mu.Lock()
	c.preds[key] = v
	c.mu.Unlock()
	return v
}

// Stats reports cache effectiveness: total calls and hits.
func (c *CachedModel) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

// pairKey renders both value vectors into one canonical key. It sizes a
// strings.Builder upfront so the whole key is a single allocation
// (naive += concatenation copies O(n²) bytes; see BenchmarkPairKey).
func pairKey(left, right []data.Value) string {
	keys := make([]string, 0, len(left)+len(right))
	n := 1 + len(left) + len(right) // separators
	for _, v := range left {
		k := v.Key()
		keys = append(keys, k)
		n += len(k)
	}
	for _, v := range right {
		k := v.Key()
		keys = append(keys, k)
		n += len(k)
	}
	var b strings.Builder
	b.Grow(n)
	for i, k := range keys {
		if i == len(left) {
			b.WriteByte(0x1d)
		}
		b.WriteString(k)
		b.WriteByte(0x1e)
	}
	if len(right) == 0 {
		b.WriteByte(0x1d)
	}
	return b.String()
}
