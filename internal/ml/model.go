package ml

import (
	"fmt"
	"sync"

	"github.com/rockclean/rock/internal/data"
)

// Model is a Boolean ML predicate M(t[A̅], s[B̅]) as embedded in REE++s
// (paper §2.1): any classifier whose output is transformed to a Boolean,
// typically by thresholding a strength score. Confidence exposes the raw
// strength in [0, 1] for conflict resolution (paper §4.2).
type Model interface {
	// Name identifies the model inside rule text, e.g. "M_ER".
	Name() string
	// Predict returns the Boolean decision for the attribute vectors.
	Predict(left, right []data.Value) bool
	// Confidence returns the decision strength in [0, 1].
	Confidence(left, right []data.Value) float64
}

// Registry resolves model names appearing in parsed rules to Model
// implementations. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]Model
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{models: make(map[string]Model)} }

// Register adds (or replaces) a model under its own name.
func (r *Registry) Register(m Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[m.Name()] = m
}

// Get resolves a model by name.
func (r *Registry) Get(name string) (Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("ml: unknown model %q", name)
	}
	return m, nil
}

// Names lists registered model names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	return names
}

// SimilarityMatcher is the stand-in for Bert-style ER/matching models: it
// embeds both attribute vectors and thresholds their cosine similarity.
// With well-separated data it behaves like a high-precision matcher; with
// noisy data it exhibits the realistic false positives/negatives that the
// paper's rules compensate for with extra logic conditions (property (4) of
// §2.1).
type SimilarityMatcher struct {
	ModelName string
	Threshold float64
}

// NewSimilarityMatcher creates a matcher with the given decision threshold
// in [0, 1]; typical ER thresholds are 0.80–0.92.
func NewSimilarityMatcher(name string, threshold float64) *SimilarityMatcher {
	return &SimilarityMatcher{ModelName: name, Threshold: threshold}
}

// Name implements Model.
func (m *SimilarityMatcher) Name() string { return m.ModelName }

// Confidence implements Model. Single-attribute string pairs score with
// the blended StringSim (cosine + edit similarity, robust to single
// typos); multi-attribute vectors score with the cosine of their averaged
// embeddings. Nulls are skipped on both sides.
func (m *SimilarityMatcher) Confidence(left, right []data.Value) float64 {
	if len(left) == 1 && len(right) == 1 && !left[0].IsNull() && !right[0].IsNull() {
		return StringSim(left[0].String(), right[0].String())
	}
	lv := EmbedValues(left)
	rv := EmbedValues(right)
	c := Cosine(lv, rv)
	if c < 0 {
		return 0
	}
	return c
}

// Predict implements Model.
func (m *SimilarityMatcher) Predict(left, right []data.Value) bool {
	return m.Confidence(left, right) >= m.Threshold
}

// FuncModel adapts an arbitrary confidence function to the Model interface;
// handy in tests and for wrapping trained classifiers.
type FuncModel struct {
	ModelName string
	Threshold float64
	Score     func(left, right []data.Value) float64
}

// Name implements Model.
func (m *FuncModel) Name() string { return m.ModelName }

// Confidence implements Model.
func (m *FuncModel) Confidence(left, right []data.Value) float64 {
	return m.Score(left, right)
}

// Predict implements Model.
func (m *FuncModel) Predict(left, right []data.Value) bool {
	return m.Score(left, right) >= m.Threshold
}

// CachedModel memoises Predict/Confidence results keyed by the value
// vectors. Rock pre-computes ML predictions once the predicates are ready
// (paper §5.4, "ML predication"); the cache is the in-process realisation.
type CachedModel struct {
	Inner Model

	mu    sync.Mutex
	cache map[string]float64
	hits  int
	calls int
}

// NewCachedModel wraps a model with a memo cache.
func NewCachedModel(inner Model) *CachedModel {
	return &CachedModel{Inner: inner, cache: make(map[string]float64)}
}

// Name implements Model.
func (c *CachedModel) Name() string { return c.Inner.Name() }

// Confidence implements Model with memoisation.
func (c *CachedModel) Confidence(left, right []data.Value) float64 {
	key := pairKey(left, right)
	c.mu.Lock()
	c.calls++
	if v, ok := c.cache[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := c.Inner.Confidence(left, right)
	c.mu.Lock()
	c.cache[key] = v
	c.mu.Unlock()
	return v
}

// Predict implements Model.
func (c *CachedModel) Predict(left, right []data.Value) bool {
	var threshold float64
	switch m := c.Inner.(type) {
	case *SimilarityMatcher:
		threshold = m.Threshold
	case *FuncModel:
		threshold = m.Threshold
	default:
		// Fall back to the inner model's own decision, uncached.
		return c.Inner.Predict(left, right)
	}
	return c.Confidence(left, right) >= threshold
}

// Stats reports cache effectiveness: total calls and hits.
func (c *CachedModel) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

func pairKey(left, right []data.Value) string {
	s := ""
	for _, v := range left {
		s += v.Key() + "\x1e"
	}
	s += "\x1d"
	for _, v := range right {
		s += v.Key() + "\x1e"
	}
	return s
}
