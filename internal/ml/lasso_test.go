package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestLassoRecoversSparseModel(t *testing.T) {
	// y = 3*x0 - 2*x2 + 5 with 6 features; x1,x3,x4,x5 are noise.
	rng := rand.New(rand.NewSource(3))
	n := 300
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
		ys[i] = 3*x[0] - 2*x[2] + 5
	}
	l := NewLasso(6, 0.05)
	l.Fit(xs, ys)
	nz := l.NonZero(0.1)
	if len(nz) != 2 || nz[0] != 0 || nz[1] != 2 {
		t.Fatalf("nonzero features=%v weights=%v", nz, l.Weights)
	}
	if math.Abs(l.Weights[0]-3) > 0.3 || math.Abs(l.Weights[2]+2) > 0.3 {
		t.Errorf("weights off: %v", l.Weights)
	}
	if math.Abs(l.Intercept-5) > 0.3 {
		t.Errorf("intercept off: %f", l.Intercept)
	}
	// Prediction sanity.
	if pred := l.Predict([]float64{1, 0, 1, 0, 0, 0}); math.Abs(pred-6) > 0.5 {
		t.Errorf("predict=%f want ~6", pred)
	}
}

func TestLassoEmptyFit(t *testing.T) {
	l := NewLasso(3, 0.1)
	l.Fit(nil, nil) // must not panic
	if l.Predict([]float64{1, 2, 3}) != 0 {
		t.Error("unfitted lasso predicts 0")
	}
}

func TestSoftThreshold(t *testing.T) {
	if softThreshold(5, 2) != 3 || softThreshold(-5, 2) != -3 || softThreshold(1, 2) != 0 {
		t.Error("soft threshold wrong")
	}
}

func TestStumpEnsembleImportance(t *testing.T) {
	// y depends only on feature 1.
	rng := rand.New(rand.NewSource(4))
	n := 200
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		xs[i] = x
		if x[1] > 0.5 {
			ys[i] = 10
		} else {
			ys[i] = -10
		}
	}
	e := NewStumpEnsemble(10)
	e.Fit(xs, ys)
	top := e.TopFeatures(3, 1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("top features=%v importance=%v", top, e.Importance(3))
	}
	// Predictions should separate the classes.
	if e.Predict([]float64{0, 0.9, 0}) <= e.Predict([]float64{0, 0.1, 0}) {
		t.Error("ensemble did not learn the split")
	}
}

func TestStumpEnsembleEmpty(t *testing.T) {
	e := NewStumpEnsemble(5)
	e.Fit(nil, nil)
	if e.Predict([]float64{1}) != 0 {
		t.Error("empty ensemble predicts 0")
	}
}
