package ml

import (
	"math"
	"math/rand"
)

// LogisticRegression is a binary classifier trained with SGD over dense
// feature vectors. It backs several substitutes in this package: the
// pairwise temporal ranker, trainable matchers, and the rule-preference
// scoring model of the top-k discovery (paper §5.2, "Prior knowledge
// learning").
type LogisticRegression struct {
	Weights []float64
	Bias    float64
	// L2 is the ridge penalty applied during training.
	L2 float64
	// LearningRate is the SGD step size.
	LearningRate float64
	// Epochs is the number of passes over the training set.
	Epochs int
}

// NewLogisticRegression creates a model for nFeatures-dimensional inputs
// with sensible defaults.
func NewLogisticRegression(nFeatures int) *LogisticRegression {
	return &LogisticRegression{
		Weights:      make([]float64, nFeatures),
		L2:           1e-4,
		LearningRate: 0.1,
		Epochs:       50,
	}
}

// Score returns the raw probability σ(w·x + b) in (0, 1).
func (m *LogisticRegression) Score(x []float64) float64 {
	z := m.Bias
	for i, w := range m.Weights {
		if i < len(x) {
			z += w * x[i]
		}
	}
	return sigmoid(z)
}

// Predict thresholds Score at 0.5.
func (m *LogisticRegression) Predict(x []float64) bool { return m.Score(x) >= 0.5 }

// Fit trains the model on (xs, ys) with labels in {false, true}. Training
// is deterministic for a fixed seed.
func (m *LogisticRegression) Fit(xs [][]float64, ys []bool, seed int64) {
	if len(xs) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := m.LearningRate / (1 + 0.05*float64(epoch))
		for _, i := range idx {
			x, y := xs[i], 0.0
			if ys[i] {
				y = 1.0
			}
			p := m.Score(x)
			g := p - y
			for j := range m.Weights {
				if j < len(x) {
					m.Weights[j] -= lr * (g*x[j] + m.L2*m.Weights[j])
				}
			}
			m.Bias -= lr * g
		}
	}
}

// Accuracy evaluates the model on a labelled set.
func (m *LogisticRegression) Accuracy(xs [][]float64, ys []bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func sigmoid(z float64) float64 {
	switch {
	case z > 30:
		return 1
	case z < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
