package ml

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
)

func personTuples() (*data.Schema, *data.Relation) {
	s := mustSchema("Person",
		data.Attribute{Name: "status", Type: data.TString},
		data.Attribute{Name: "home", Type: data.TString},
		data.Attribute{Name: "sales", Type: data.TFloat},
	)
	r := data.NewRelation(s)
	return s, r
}

func TestPairRankerCreatorCritic(t *testing.T) {
	schema, rel := personTuples()
	// Build tuples whose currency follows the monotone constraints:
	// status single -> married; sales only grows.
	var tuples []*data.Tuple
	stages := []struct {
		status string
		sales  float64
	}{
		{"single", 10}, {"single", 20}, {"married", 30}, {"married", 45}, {"married", 60},
	}
	for i, st := range stages {
		tp := rel.Insert("e", data.S(st.status), data.S("addr"+string(rune('a'+i))), data.F(st.sales))
		tuples = append(tuples, tp)
	}
	critics := []CurrencyConstraint{
		NewMonotoneValueConstraint(schema, "status", []string{"single", "married"}),
		NewMonotoneNumericConstraint(schema, "sales"),
	}
	// Seed with two hand-labelled pairs; creator-critic augments the rest.
	seed := []RankedPair{
		{Older: tuples[0], Newer: tuples[2], Attr: "status", Leq: true},
		{Older: tuples[1], Newer: tuples[3], Attr: "sales", Leq: true},
	}
	ranker := NewPairRanker("M_rank", schema)
	ranker.AttrOrderHints["status"] = map[string]int{"single": 0, "married": 1}
	TrainRanker(ranker, "Person", tuples, []string{"status", "sales"}, seed, critics, 3)

	// Gold: all chronologically ordered pairs.
	var gold []RankedPair
	for i := 0; i < len(tuples); i++ {
		for j := i + 1; j < len(tuples); j++ {
			gold = append(gold, RankedPair{Older: tuples[i], Newer: tuples[j], Attr: "sales", Leq: true})
			gold = append(gold, RankedPair{Older: tuples[j], Newer: tuples[i], Attr: "sales", Leq: false})
		}
	}
	if f := ranker.FMeasure("Person", gold); f < 0.8 {
		t.Errorf("ranker F-measure=%f want >= 0.8 (paper reports ~0.80)", f)
	}
}

func TestMonotoneValueConstraint(t *testing.T) {
	schema, rel := personTuples()
	single := rel.Insert("e", data.S("single"), data.S("x"), data.F(1))
	married := rel.Insert("e", data.S("married"), data.S("y"), data.F(2))
	unknown := rel.Insert("e", data.S("divorced?"), data.S("z"), data.F(3))
	c := NewMonotoneValueConstraint(schema, "status", []string{"single", "married"})
	if c.Verdict(single, married, "status") != 1 {
		t.Error("single -> married must be entailed")
	}
	if c.Verdict(married, single, "status") != -1 {
		t.Error("married -> single must be refuted")
	}
	if c.Verdict(single, unknown, "status") != 0 {
		t.Error("unknown value must be silent")
	}
	if c.Verdict(single, married, "home") != 0 {
		t.Error("other attribute must be silent")
	}
}

func TestMonotoneNumericConstraint(t *testing.T) {
	schema, rel := personTuples()
	lo := rel.Insert("e", data.S("s"), data.S("x"), data.F(10))
	hi := rel.Insert("e", data.S("s"), data.S("y"), data.F(20))
	null := rel.Insert("e", data.S("s"), data.S("z"), data.Null(data.TFloat))
	c := NewMonotoneNumericConstraint(schema, "sales")
	if c.Verdict(lo, hi, "sales") != 1 || c.Verdict(hi, lo, "sales") != -1 {
		t.Error("numeric monotonicity verdicts wrong")
	}
	if c.Verdict(lo, null, "sales") != 0 {
		t.Error("null must be silent")
	}
}

func TestRankerTimestampFeatureDominates(t *testing.T) {
	schema, relR := personTuples()
	tr := data.NewTemporalRelation(relR)
	older := relR.Insert("e", data.S("s"), data.S("a"), data.F(1))
	newer := relR.Insert("e", data.S("s"), data.S("b"), data.F(1))
	tr.Stamp(older.TID, "home", 100)
	tr.Stamp(newer.TID, "home", 200)
	ranker := NewPairRanker("M_rank", schema)
	ranker.Stamps = tr
	seed := []RankedPair{{Older: older, Newer: newer, Attr: "home", Leq: true}}
	TrainRanker(ranker, "Person", nil, nil, seed, nil, 1)
	if ranker.RankLeq("Person", older, newer, "home") <= ranker.RankLeq("Person", newer, older, "home") {
		t.Error("timestamped order must be learned")
	}
}
