package ml

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
)

func storeSchema() *data.Schema {
	return mustSchema("Store",
		data.Attribute{Name: "location", Type: data.TString},
		data.Attribute{Name: "area_code", Type: data.TString},
		data.Attribute{Name: "type", Type: data.TString},
	)
}

func trainedCorrelation(t *testing.T) (*CorrelationModel, *data.Relation) {
	t.Helper()
	s := storeSchema()
	r := data.NewRelation(s)
	// Deterministic association: Beijing <-> 010, Shanghai <-> 021.
	for i := 0; i < 20; i++ {
		r.Insert("e", data.S("Beijing"), data.S("010"), data.S("Electron."))
		r.Insert("e", data.S("Shanghai"), data.S("021"), data.S("Sports"))
	}
	m := NewCorrelationModel("M_c", s)
	m.Train(r.Tuples)
	return m, r
}

func TestCorrelationStrength(t *testing.T) {
	m, r := trainedCorrelation(t)
	probe := r.Insert("e", data.S("Beijing"), data.Null(data.TString), data.S("Electron."))
	good := m.Strength(probe, nil, 1, data.S("010"))
	bad := m.Strength(probe, nil, 1, data.S("021"))
	if good <= bad {
		t.Errorf("correlated value must score higher: good=%f bad=%f", good, bad)
	}
	if good < 0.6 {
		t.Errorf("deterministic association too weak: %f", good)
	}
	if m.Strength(probe, nil, 1, data.Null(data.TString)) != 0 {
		t.Error("null candidate must score 0")
	}
}

func TestCorrelationUntrained(t *testing.T) {
	s := storeSchema()
	m := NewCorrelationModel("M_c", s)
	r := data.NewRelation(s)
	probe := r.Insert("e", data.S("Beijing"), data.Null(data.TString), data.S("x"))
	if m.Strength(probe, nil, 1, data.S("010")) != 0 {
		t.Error("untrained model must score 0")
	}
}

func TestCorrelationAnchors(t *testing.T) {
	m, r := trainedCorrelation(t)
	probe := r.Insert("e", data.S("Beijing"), data.Null(data.TString), data.S("Sports"))
	// Anchor only on location: strong; anchor only on the misleading type: weak.
	byLoc := m.Strength(probe, []int{0}, 1, data.S("010"))
	byType := m.Strength(probe, []int{2}, 1, data.S("010"))
	if byLoc <= byType {
		t.Errorf("location anchor must dominate: loc=%f type=%f", byLoc, byType)
	}
}

func TestValuePredictorSuggest(t *testing.T) {
	m, r := trainedCorrelation(t)
	vp := NewValuePredictor("M_d", m, r.Tuples)
	probe := r.Insert("e", data.S("Beijing"), data.Null(data.TString), data.S("Electron."))
	v, conf, ok := vp.Suggest(probe, 1)
	if !ok {
		t.Fatal("expected a suggestion")
	}
	if !v.Equal(data.S("010")) {
		t.Errorf("suggested %v want 010 (conf %f)", v, conf)
	}
	// Extra candidate that correlates even better cannot exist; an unseen
	// extra candidate should lose.
	v2, _, ok := vp.Suggest(probe, 1, data.S("999"))
	if !ok || !v2.Equal(data.S("010")) {
		t.Errorf("extra candidate must not displace correlated value: %v", v2)
	}
}

func TestValuePredictorNoCandidates(t *testing.T) {
	s := storeSchema()
	m := NewCorrelationModel("M_c", s)
	vp := NewValuePredictor("M_d", m, nil)
	r := data.NewRelation(s)
	probe := r.Insert("e", data.S("Beijing"), data.Null(data.TString), data.S("x"))
	if _, _, ok := vp.Suggest(probe, 1); ok {
		t.Error("no candidates must yield no suggestion")
	}
}
