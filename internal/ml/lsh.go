package ml

import (
	"math/rand"
	"sort"
)

// LSH implements random-hyperplane locality-sensitive hashing over the
// package's embeddings: Rock uses it to block candidate pairs for ML
// predicates M(t[A̅], s[B̅]) so that ML inference avoids the quadratic
// all-pairs sweep (paper §5.3: "If M(t[A],s[B]) = true, then
// LSH(t[A]) = LSH(s[B]) with high probability"). Vectors are hashed into
// `Bands` independent signatures of `BitsPerBand` sign bits; two vectors
// are candidates iff they share at least one band signature.
type LSH struct {
	Bands       int
	BitsPerBand int
	planes      [][]Vector // [band][bit]
}

// NewLSH builds hash planes deterministically from the seed. Typical
// settings: 8 bands of 6 bits catch cosine ≳ 0.8 pairs with high recall.
func NewLSH(bands, bitsPerBand int, seed int64) *LSH {
	rng := rand.New(rand.NewSource(seed))
	l := &LSH{Bands: bands, BitsPerBand: bitsPerBand}
	l.planes = make([][]Vector, bands)
	for b := range l.planes {
		l.planes[b] = make([]Vector, bitsPerBand)
		for i := range l.planes[b] {
			var v Vector
			for d := range v {
				v[d] = rng.NormFloat64()
			}
			l.planes[b][i] = v.Normalize()
		}
	}
	return l
}

// Signatures returns one band signature per band for the vector.
func (l *LSH) Signatures(v Vector) []uint64 {
	sigs := make([]uint64, l.Bands)
	for b := 0; b < l.Bands; b++ {
		var sig uint64
		for i := 0; i < l.BitsPerBand; i++ {
			sig <<= 1
			if l.planes[b][i].Dot(v) >= 0 {
				sig |= 1
			}
		}
		sigs[b] = sig
	}
	return sigs
}

// Blocker groups items (identified by int ids) into LSH buckets and
// enumerates candidate pairs. It is the filter of the filter-and-verify
// paradigm of paper §5.4 ("ML predication").
type Blocker struct {
	lsh     *LSH
	buckets []map[uint64][]int // per band
	n       int
}

// NewBlocker creates a blocker with the given LSH family.
func NewBlocker(lsh *LSH) *Blocker {
	b := &Blocker{lsh: lsh, buckets: make([]map[uint64][]int, lsh.Bands)}
	for i := range b.buckets {
		b.buckets[i] = make(map[uint64][]int)
	}
	return b
}

// Add indexes an item's vector under its id.
func (b *Blocker) Add(id int, v Vector) {
	sigs := b.lsh.Signatures(v)
	for band, sig := range sigs {
		b.buckets[band][sig] = append(b.buckets[band][sig], id)
	}
	b.n++
}

// CandidatePairs enumerates the deduplicated (i, j) pairs, i < j, that
// share at least one band bucket. The verify step then runs the actual ML
// model only on these. Buckets are visited in sorted signature order so
// the pair order — and everything downstream that is sensitive to
// enumeration order, like oracle consultation order — is deterministic
// across runs.
func (b *Blocker) CandidatePairs() [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, band := range b.buckets {
		sigs := make([]uint64, 0, len(band))
		for sig := range band {
			sigs = append(sigs, sig)
		}
		sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
		for _, sig := range sigs {
			ids := band[sig]
			for x := 0; x < len(ids); x++ {
				for y := x + 1; y < len(ids); y++ {
					i, j := ids[x], ids[y]
					if i == j {
						continue
					}
					if i > j {
						i, j = j, i
					}
					p := [2]int{i, j}
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// CandidatesOf returns the ids sharing at least one bucket with v,
// excluding exclude. Used for probe-side blocking (new tuple against an
// indexed relation) in the incremental modes.
func (b *Blocker) CandidatesOf(v Vector, exclude int) []int {
	sigs := b.lsh.Signatures(v)
	seen := make(map[int]bool)
	var out []int
	for band, sig := range sigs {
		for _, id := range b.buckets[band][sig] {
			if id != exclude && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Size returns the number of indexed items.
func (b *Blocker) Size() int { return b.n }
