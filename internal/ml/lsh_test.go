package ml

import (
	"fmt"
	"testing"
)

func TestLSHRecallAndFiltering(t *testing.T) {
	lsh := NewLSH(8, 6, 1)
	b := NewBlocker(lsh)
	// 30 near-duplicate pairs plus 60 random strings.
	n := 0
	wantPairs := map[[2]int]bool{}
	for i := 0; i < 30; i++ {
		s := fmt.Sprintf("ACME Global Trading Co branch %d", i)
		b.Add(n, Embed(s))
		b.Add(n+1, Embed(s+" ltd"))
		wantPairs[[2]int{n, n + 1}] = true
		n += 2
	}
	for i := 0; i < 60; i++ {
		b.Add(n, Embed(fmt.Sprintf("totally unrelated %d %d xyz", i*17, i*i)))
		n++
	}
	cands := b.CandidatePairs()
	found := 0
	for _, p := range cands {
		if wantPairs[p] {
			found++
		}
	}
	recall := float64(found) / float64(len(wantPairs))
	if recall < 0.9 {
		t.Errorf("LSH recall=%f want >= 0.9", recall)
	}
	allPairs := n * (n - 1) / 2
	if len(cands) >= allPairs {
		t.Errorf("LSH produced %d candidates out of %d possible — no filtering", len(cands), allPairs)
	}
}

func TestLSHDeterministic(t *testing.T) {
	a := NewLSH(4, 8, 42)
	b := NewLSH(4, 8, 42)
	v := Embed("same input")
	sa, sb := a.Signatures(v), b.Signatures(v)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed must produce same signatures")
		}
	}
}

func TestBlockerCandidatesOf(t *testing.T) {
	lsh := NewLSH(8, 6, 2)
	b := NewBlocker(lsh)
	b.Add(0, Embed("Huawei Mate X2 Limited Sold"))
	b.Add(1, Embed("Huawei Mate X2 (Limited Sold)"))
	b.Add(2, Embed("completely different thing entirely"))
	got := b.CandidatesOf(Embed("Huawei Mate X2 Limited"), -1)
	has := map[int]bool{}
	for _, id := range got {
		has[id] = true
	}
	if !has[0] || !has[1] {
		t.Errorf("expected near duplicates in candidates, got %v", got)
	}
	if b.Size() != 3 {
		t.Error("size")
	}
	// exclude works
	got = b.CandidatesOf(Embed("Huawei Mate X2 Limited"), 0)
	for _, id := range got {
		if id == 0 {
			t.Error("excluded id returned")
		}
	}
}
