// Package kg implements the knowledge-graph substrate used by Rock's
// missing-value imputation: a labelled graph G = (V, E, L) where edge
// labels typify predicates and vertex labels may carry values, plus label
// paths and path matching (paper §2, "Preliminaries", and §2.3's
// extraction predicates).
package kg

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex in a graph.
type VertexID int

// Vertex is a labelled node. The label of a leaf vertex often carries an
// attribute value ("Beijing"); the label of an entity vertex carries its
// name or identifier.
type Vertex struct {
	ID    VertexID
	Label string
	// Props carries lightweight key/value annotations used by HER feature
	// extraction (e.g. "type" -> "Store").
	Props map[string]string
}

// Edge is a directed labelled edge (from)-[label]->(to).
type Edge struct {
	From  VertexID
	To    VertexID
	Label string
}

// Graph is an in-memory labelled graph with per-vertex adjacency indexed by
// edge label for fast path matching.
type Graph struct {
	Name     string
	vertices map[VertexID]*Vertex
	out      map[VertexID]map[string][]VertexID // from -> label -> targets
	in       map[VertexID]map[string][]VertexID
	byLabel  map[string][]VertexID
	nextID   VertexID
	edges    int
}

// New creates an empty graph.
func New(name string) *Graph {
	return &Graph{
		Name:     name,
		vertices: make(map[VertexID]*Vertex),
		out:      make(map[VertexID]map[string][]VertexID),
		in:       make(map[VertexID]map[string][]VertexID),
		byLabel:  make(map[string][]VertexID),
	}
}

// AddVertex inserts a vertex with the given label and returns its id.
func (g *Graph) AddVertex(label string) VertexID {
	id := g.nextID
	g.nextID++
	g.vertices[id] = &Vertex{ID: id, Label: label}
	g.byLabel[label] = append(g.byLabel[label], id)
	return id
}

// SetProp annotates a vertex; missing vertices are ignored.
func (g *Graph) SetProp(id VertexID, key, val string) {
	v := g.vertices[id]
	if v == nil {
		return
	}
	if v.Props == nil {
		v.Props = make(map[string]string)
	}
	v.Props[key] = val
}

// AddEdge inserts a directed labelled edge. Both endpoints must exist.
func (g *Graph) AddEdge(from VertexID, label string, to VertexID) error {
	if g.vertices[from] == nil || g.vertices[to] == nil {
		return fmt.Errorf("kg: edge %d-[%s]->%d references missing vertex", from, label, to)
	}
	om := g.out[from]
	if om == nil {
		om = make(map[string][]VertexID)
		g.out[from] = om
	}
	om[label] = append(om[label], to)
	im := g.in[to]
	if im == nil {
		im = make(map[string][]VertexID)
		g.in[to] = im
	}
	im[label] = append(im[label], from)
	g.edges++
	return nil
}

// Vertex returns the vertex with the given id, or nil.
func (g *Graph) Vertex(id VertexID) *Vertex { return g.vertices[id] }

// Label returns L(v) for the vertex, or "" if absent.
func (g *Graph) Label(id VertexID) string {
	if v := g.vertices[id]; v != nil {
		return v.Label
	}
	return ""
}

// VerticesByLabel returns all vertex ids carrying the given label.
func (g *Graph) VerticesByLabel(label string) []VertexID { return g.byLabel[label] }

// VertexIDs returns all vertex ids in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	ids := make([]VertexID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// Out returns the targets of edges labelled l leaving v.
func (g *Graph) Out(v VertexID, l string) []VertexID {
	if m := g.out[v]; m != nil {
		return m[l]
	}
	return nil
}

// OutLabels returns the distinct outgoing edge labels of v, sorted.
func (g *Graph) OutLabels(v VertexID) []string {
	m := g.out[v]
	labels := make([]string, 0, len(m))
	for l := range m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// Path is a label path ρ = (l1, ..., ln): a list of edge labels.
type Path []string

// String renders the path as (l1.l2...).
func (p Path) String() string {
	s := "("
	for i, l := range p {
		if i > 0 {
			s += "."
		}
		s += l
	}
	return s + ")"
}

// Matches returns every terminal vertex v_n of a match (v0, v1, ..., v_n)
// of path p from start: each step follows one edge carrying the next label.
// Duplicate terminals are removed; results are sorted for determinism.
func (g *Graph) Matches(start VertexID, p Path) []VertexID {
	frontier := []VertexID{start}
	for _, label := range p {
		var next []VertexID
		seen := map[VertexID]bool{}
		for _, v := range frontier {
			for _, w := range g.Out(v, label) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	return frontier
}

// HasMatch reports whether any match of p from start exists.
func (g *Graph) HasMatch(start VertexID, p Path) bool {
	return len(g.Matches(start, p)) > 0
}

// Val returns the label of the (unique) terminal vertex of the match of p
// from start — the value that the extraction predicate t[A] = val(x.ρ)
// assigns. If there are several terminals, the lexicographically smallest
// label is returned for determinism; ok is false when no match exists.
func (g *Graph) Val(start VertexID, p Path) (string, bool) {
	terms := g.Matches(start, p)
	if len(terms) == 0 {
		return "", false
	}
	best := g.Label(terms[0])
	for _, t := range terms[1:] {
		if l := g.Label(t); l < best {
			best = l
		}
	}
	return best, true
}

// Neighborhood returns the multiset of (edge label, target label) pairs
// around v, used by HER feature extraction to compare a vertex with a
// relational tuple.
func (g *Graph) Neighborhood(v VertexID) []string {
	var feats []string
	for _, l := range g.OutLabels(v) {
		for _, w := range g.Out(v, l) {
			feats = append(feats, l+"="+g.Label(w))
		}
	}
	sort.Strings(feats)
	return feats
}
