package kg

// Test-only literal helper; the exported equivalent lives in
// internal/must, which this package cannot import (cycle).

func (g *Graph) MustEdge(from VertexID, label string, to VertexID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}
