package kg

import (
	"testing"
	"testing/quick"
)

func wikiGraph() (*Graph, VertexID, VertexID) {
	g := New("Wiki")
	store := g.AddVertex("Huawei Flagship")
	g.SetProp(store, "type", "Store")
	city := g.AddVertex("Beijing")
	country := g.AddVertex("China")
	g.MustEdge(store, "LocationAt", city)
	g.MustEdge(city, "PartOf", country)
	return g, store, city
}

func TestGraphBasics(t *testing.T) {
	g, store, city := wikiGraph()
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Label(store) != "Huawei Flagship" {
		t.Error("label lost")
	}
	if g.Vertex(store).Props["type"] != "Store" {
		t.Error("prop lost")
	}
	if got := g.Out(store, "LocationAt"); len(got) != 1 || got[0] != city {
		t.Errorf("out=%v", got)
	}
	if got := g.VerticesByLabel("Beijing"); len(got) != 1 || got[0] != city {
		t.Errorf("byLabel=%v", got)
	}
	if err := g.AddEdge(99, "x", store); err == nil {
		t.Error("edge to missing vertex must fail")
	}
}

func TestPathMatching(t *testing.T) {
	g, store, _ := wikiGraph()
	if v, ok := g.Val(store, Path{"LocationAt"}); !ok || v != "Beijing" {
		t.Errorf("val=%q ok=%v", v, ok)
	}
	if v, ok := g.Val(store, Path{"LocationAt", "PartOf"}); !ok || v != "China" {
		t.Errorf("2-hop val=%q ok=%v", v, ok)
	}
	if _, ok := g.Val(store, Path{"Missing"}); ok {
		t.Error("missing label must not match")
	}
	if !g.HasMatch(store, Path{"LocationAt"}) {
		t.Error("HasMatch false negative")
	}
	if g.HasMatch(store, Path{"PartOf"}) {
		t.Error("HasMatch false positive")
	}
	// Empty path matches the start vertex itself.
	if v, ok := g.Val(store, nil); !ok || v != "Huawei Flagship" {
		t.Errorf("empty path val=%q", v)
	}
}

func TestValDeterministicOnFanout(t *testing.T) {
	g := New("G")
	root := g.AddVertex("root")
	b := g.AddVertex("bbb")
	a := g.AddVertex("aaa")
	g.MustEdge(root, "L", b)
	g.MustEdge(root, "L", a)
	if v, _ := g.Val(root, Path{"L"}); v != "aaa" {
		t.Errorf("want lexicographically smallest, got %q", v)
	}
}

func TestNeighborhood(t *testing.T) {
	g, store, _ := wikiGraph()
	feats := g.Neighborhood(store)
	if len(feats) != 1 || feats[0] != "LocationAt=Beijing" {
		t.Errorf("feats=%v", feats)
	}
}

func TestPathString(t *testing.T) {
	if got := (Path{"a", "b"}).String(); got != "(a.b)" {
		t.Errorf("path string=%q", got)
	}
}

// Property: on a random chain, a path of the chain's labels always matches
// from the head and Val returns the tail label.
func TestChainMatchProperty(t *testing.T) {
	f := func(n uint8) bool {
		length := int(n%20) + 1
		g := New("chain")
		prev := g.AddVertex("v0")
		head := prev
		var p Path
		for i := 1; i <= length; i++ {
			next := g.AddVertex(label(i))
			g.MustEdge(prev, "next", next)
			p = append(p, "next")
			prev = next
		}
		v, ok := g.Val(head, p)
		return ok && v == label(length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func label(i int) string { return "v" + string(rune('0'+i%10)) + string(rune('a'+i%26)) }
