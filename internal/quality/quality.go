// Package quality provides the evaluation machinery of paper §6: gold
// error labels, precision/recall/F-measure accounting for error detection
// and correction (overall and per task), and the data-quality assessment
// dimensions (completeness, validity, consistency, timeliness) that Rock's
// monitoring reports (paper §4.1, workflow step 3).
package quality

import (
	"fmt"

	"github.com/rockclean/rock/internal/data"
)

// Gold is the ground-truth error labelling of a generated dataset: which
// cells are wrong (and their correct values), which are missing (and their
// true values), which tuple pairs are unidentified duplicates, and which
// temporal pairs order the stale/current versions.
type Gold struct {
	// WrongCells maps cell keys to the correct value (CR errors).
	WrongCells map[string]data.Value
	// MissingCells maps cell keys to the true value (MI errors).
	MissingCells map[string]data.Value
	// DupPairs holds duplicate EID pairs, lexicographically ordered (ER).
	DupPairs map[[2]string]bool
	// ChainDupPairs holds duplicates that only become identifiable after
	// other corrections (interaction chains, paper Example 7). They are
	// excluded from detection scoring — no static violation witnesses them
	// — but count for correction scoring.
	ChainDupPairs map[[2]string]bool
	// OrderPairs maps "rel.attr" to gold (olderTID, newerTID) pairs (TD).
	OrderPairs map[string]map[[2]int]bool
}

// NewGold creates an empty labelling.
func NewGold() *Gold {
	return &Gold{
		WrongCells:    make(map[string]data.Value),
		MissingCells:  make(map[string]data.Value),
		DupPairs:      make(map[[2]string]bool),
		ChainDupPairs: make(map[[2]string]bool),
		OrderPairs:    make(map[string]map[[2]int]bool),
	}
}

// CellKey renders the canonical key of a cell.
func CellKey(rel string, tid int, attr string) string {
	return data.CellRef{Rel: rel, TID: tid, Attr: attr}.String()
}

// AddWrong labels a cell erroneous with its correct value.
func (g *Gold) AddWrong(rel string, tid int, attr string, correct data.Value) {
	g.WrongCells[CellKey(rel, tid, attr)] = correct
}

// AddMissing labels a null cell with its true value.
func (g *Gold) AddMissing(rel string, tid int, attr string, truth data.Value) {
	g.MissingCells[CellKey(rel, tid, attr)] = truth
}

// AddDup labels an unidentified duplicate pair.
func (g *Gold) AddDup(a, b string) {
	if a > b {
		a, b = b, a
	}
	g.DupPairs[[2]string{a, b}] = true
}

// AddChainDup labels a duplicate pair identifiable only through an
// interaction chain (correction-time gold only).
func (g *Gold) AddChainDup(a, b string) {
	if a > b {
		a, b = b, a
	}
	g.ChainDupPairs[[2]string{a, b}] = true
}

// AllDups returns the union of plain and chain duplicates.
func (g *Gold) AllDups() map[[2]string]bool {
	out := make(map[[2]string]bool, len(g.DupPairs)+len(g.ChainDupPairs))
	for p := range g.DupPairs {
		out[p] = true
	}
	for p := range g.ChainDupPairs {
		out[p] = true
	}
	return out
}

// AddOrder labels older ⪯ newer on rel.attr.
func (g *Gold) AddOrder(rel, attr string, older, newer int) {
	key := rel + "." + attr
	m := g.OrderPairs[key]
	if m == nil {
		m = make(map[[2]int]bool)
		g.OrderPairs[key] = m
	}
	m[[2]int{older, newer}] = true
}

// ErrorCells returns all labelled error cell keys (wrong ∪ missing).
func (g *Gold) ErrorCells() map[string]bool {
	out := make(map[string]bool, len(g.WrongCells)+len(g.MissingCells))
	for k := range g.WrongCells {
		out[k] = true
	}
	for k := range g.MissingCells {
		out[k] = true
	}
	return out
}

// Total returns the number of labelled errors across kinds.
func (g *Gold) Total() int {
	n := len(g.WrongCells) + len(g.MissingCells) + len(g.DupPairs) + len(g.ChainDupPairs)
	for _, m := range g.OrderPairs {
		n += len(m)
	}
	return n
}

// PRF is a precision/recall/F-measure triple.
type PRF struct {
	TP, FP, FN int
}

// Add accumulates counts.
func (p *PRF) Add(q PRF) {
	p.TP += q.TP
	p.FP += q.FP
	p.FN += q.FN
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (p PRF) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (p PRF) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (p PRF) F1() float64 {
	pr, rc := p.Precision(), p.Recall()
	if pr+rc == 0 {
		return 0
	}
	return 2 * pr * rc / (pr + rc)
}

// String renders the triple.
func (p PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)", p.Precision(), p.Recall(), p.F1(), p.TP, p.FP, p.FN)
}

// ScoreDetection scores a set of detected error cells and duplicate pairs
// against the gold labelling.
func ScoreDetection(g *Gold, cells map[string]bool, dups map[[2]string]bool) PRF {
	var p PRF
	goldCells := g.ErrorCells()
	for c := range cells {
		if goldCells[c] {
			p.TP++
		} else {
			p.FP++
		}
	}
	for c := range goldCells {
		if !cells[c] {
			p.FN++
		}
	}
	for d := range dups {
		if g.DupPairs[d] {
			p.TP++
		} else {
			p.FP++
		}
	}
	for d := range g.DupPairs {
		if !dups[d] {
			p.FN++
		}
	}
	return p
}

// Corrections is what a correction run produced, keyed like the gold.
type Corrections struct {
	// Cells maps cell keys to the value the system assigned.
	Cells map[string]data.Value
	// Merged holds identified EID pairs.
	Merged map[[2]string]bool
	// Orders maps "rel.attr" to deduced (older, newer) pairs.
	Orders map[string]map[[2]int]bool
}

// NewCorrections creates an empty result.
func NewCorrections() *Corrections {
	return &Corrections{
		Cells:  make(map[string]data.Value),
		Merged: make(map[[2]string]bool),
		Orders: make(map[string]map[[2]int]bool),
	}
}

// AddCell records a cell repair.
func (c *Corrections) AddCell(rel string, tid int, attr string, v data.Value) {
	c.Cells[CellKey(rel, tid, attr)] = v
}

// AddMerge records an entity identification.
func (c *Corrections) AddMerge(a, b string) {
	if a > b {
		a, b = b, a
	}
	c.Merged[[2]string{a, b}] = true
}

// AddOrder records a deduced temporal pair.
func (c *Corrections) AddOrder(rel, attr string, older, newer int) {
	key := rel + "." + attr
	m := c.Orders[key]
	if m == nil {
		m = make(map[[2]int]bool)
		c.Orders[key] = m
	}
	m[[2]int{older, newer}] = true
}

// TaskScores holds per-task and overall correction scores.
type TaskScores struct {
	ER, CR, MI, TD PRF
}

// Overall aggregates the four tasks.
func (s TaskScores) Overall() PRF {
	var p PRF
	p.Add(s.ER)
	p.Add(s.CR)
	p.Add(s.MI)
	p.Add(s.TD)
	return p
}

// ScoreCorrection scores corrections against gold, per task:
//
//	CR: a repaired wrong cell counts TP iff the assigned value equals the
//	    gold correct value; repairing a clean cell to a different value is
//	    an FP; unrepaired wrong cells are FNs.
//	MI: same over missing cells.
//	ER: merged pairs vs gold duplicate pairs.
//	TD: deduced order pairs vs gold order pairs.
func ScoreCorrection(g *Gold, c *Corrections, rawValue func(cellKey string) (data.Value, bool)) TaskScores {
	var s TaskScores
	for key, v := range c.Cells {
		if want, ok := g.WrongCells[key]; ok {
			if v.Equal(want) {
				s.CR.TP++
			} else {
				s.CR.FP++
				s.CR.FN++ // the wrong cell remains effectively uncorrected
			}
			continue
		}
		if want, ok := g.MissingCells[key]; ok {
			if v.Equal(want) {
				s.MI.TP++
			} else {
				s.MI.FP++
				s.MI.FN++
			}
			continue
		}
		// Correction touched a clean cell: FP unless it reasserted the
		// existing value.
		if raw, ok := rawValue(key); !ok || !raw.Equal(v) {
			s.CR.FP++
		}
	}
	for key := range g.WrongCells {
		if _, touched := c.Cells[key]; !touched {
			s.CR.FN++
		}
	}
	for key := range g.MissingCells {
		if _, touched := c.Cells[key]; !touched {
			s.MI.FN++
		}
	}
	allDups := g.AllDups()
	for pair := range c.Merged {
		if allDups[pair] {
			s.ER.TP++
		} else {
			s.ER.FP++
		}
	}
	for pair := range allDups {
		if !c.Merged[pair] {
			s.ER.FN++
		}
	}
	for key, goldPairs := range g.OrderPairs {
		got := c.Orders[key]
		for pr := range got {
			if goldPairs[pr] {
				s.TD.TP++
			} else if goldPairs[[2]int{pr[1], pr[0]}] {
				s.TD.FP++ // reversed order is a real mistake
			}
			// Pairs outside the gold set are unlabelled; ignore.
		}
		for pr := range goldPairs {
			if !got[pr] {
				s.TD.FN++
			}
		}
	}
	for key, got := range c.Orders {
		if _, ok := g.OrderPairs[key]; ok {
			continue
		}
		_ = got // orders on unlabelled attributes are ignored
		_ = key
	}
	return s
}

// Assessment is the data-quality report of paper §4.1's monitoring step.
type Assessment struct {
	// Completeness is the fraction of non-null cells.
	Completeness float64
	// Validity is the fraction of cells passing type/domain checks (here:
	// non-null cells are valid by construction; exposed for extension).
	Validity float64
	// Consistency is 1 - (violating cells / total cells) for a supplied
	// violation count.
	Consistency float64
	// Timeliness is the fraction of entities whose attributes carry the
	// most current value among their class (requires gold; -1 if unknown).
	Timeliness float64
}

// Assess computes the dimensions over a database; violatingCells is the
// number of cells implicated in detected violations.
func Assess(db *data.Database, violatingCells int) Assessment {
	total, nonNull := 0, 0
	for _, rel := range db.Relations {
		for _, t := range rel.Tuples {
			for _, v := range t.Values {
				total++
				if !v.IsNull() {
					nonNull++
				}
			}
		}
	}
	a := Assessment{Timeliness: -1}
	if total > 0 {
		a.Completeness = float64(nonNull) / float64(total)
		a.Validity = a.Completeness
		c := 1 - float64(violatingCells)/float64(total)
		if c < 0 {
			c = 0
		}
		a.Consistency = c
	}
	return a
}
