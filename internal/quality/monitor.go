package quality

import (
	"fmt"
	"regexp"

	"github.com/rockclean/rock/internal/data"
)

// Template is one data-quality monitoring check (paper §4.1: "Rock adopts
// built-in constraints and user-defined templates to monitor data quality
// in terms of completeness, timeliness, validity and consistency, e.g.,
// checking nulls/duplicates in an attribute").
type Template interface {
	// Name identifies the check in reports.
	Name() string
	// Check runs against one relation and returns the offending TIDs.
	Check(rel *data.Relation) []int
}

// NullCheck flags tuples whose attribute is null (completeness).
type NullCheck struct{ Attr string }

// Name implements Template.
func (c NullCheck) Name() string { return "null(" + c.Attr + ")" }

// Check implements Template.
func (c NullCheck) Check(rel *data.Relation) []int {
	ai := rel.Schema.Index(c.Attr)
	if ai < 0 {
		return nil
	}
	var out []int
	for _, t := range rel.Tuples {
		if t.Values[ai].IsNull() {
			out = append(out, t.TID)
		}
	}
	return out
}

// DuplicateCheck flags tuples whose attribute value repeats (validity for
// key-like attributes).
type DuplicateCheck struct{ Attr string }

// Name implements Template.
func (c DuplicateCheck) Name() string { return "duplicate(" + c.Attr + ")" }

// Check implements Template.
func (c DuplicateCheck) Check(rel *data.Relation) []int {
	ai := rel.Schema.Index(c.Attr)
	if ai < 0 {
		return nil
	}
	first := make(map[string]int)
	flagged := make(map[int]bool)
	var out []int
	for _, t := range rel.Tuples {
		v := t.Values[ai]
		if v.IsNull() {
			continue
		}
		if prev, seen := first[v.Key()]; seen {
			if !flagged[prev] {
				flagged[prev] = true
				out = append(out, prev)
			}
			out = append(out, t.TID)
			flagged[t.TID] = true
		} else {
			first[v.Key()] = t.TID
		}
	}
	return out
}

// RangeCheck flags numeric values outside [Min, Max] (validity).
type RangeCheck struct {
	Attr     string
	Min, Max float64
}

// Name implements Template.
func (c RangeCheck) Name() string { return fmt.Sprintf("range(%s,[%g,%g])", c.Attr, c.Min, c.Max) }

// Check implements Template.
func (c RangeCheck) Check(rel *data.Relation) []int {
	ai := rel.Schema.Index(c.Attr)
	if ai < 0 {
		return nil
	}
	var out []int
	for _, t := range rel.Tuples {
		v := t.Values[ai]
		if v.IsNull() {
			continue
		}
		if f := v.Float(); f < c.Min || f > c.Max {
			out = append(out, t.TID)
		}
	}
	return out
}

// PatternCheck flags string values not matching a regular expression —
// the user-defined format templates (e.g. phone formats).
type PatternCheck struct {
	Attr    string
	Pattern *regexp.Regexp
}

// NewPatternCheck compiles the expression; it panics on a bad pattern
// (templates are configuration, not data).
func NewPatternCheck(attr, pattern string) PatternCheck {
	return PatternCheck{Attr: attr, Pattern: regexp.MustCompile(pattern)}
}

// Name implements Template.
func (c PatternCheck) Name() string { return "pattern(" + c.Attr + ")" }

// Check implements Template.
func (c PatternCheck) Check(rel *data.Relation) []int {
	ai := rel.Schema.Index(c.Attr)
	if ai < 0 {
		return nil
	}
	var out []int
	for _, t := range rel.Tuples {
		v := t.Values[ai]
		if v.IsNull() || v.Kind() != data.TString {
			continue
		}
		if !c.Pattern.MatchString(v.Str()) {
			out = append(out, t.TID)
		}
	}
	return out
}

// MonitorFinding is one template's result over one relation.
type MonitorFinding struct {
	Rel      string
	Template string
	TIDs     []int
}

// Monitor runs templates against the relations they name and summarises
// the findings together with the aggregate quality assessment.
type Monitor struct {
	templates map[string][]Template // by relation
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor { return &Monitor{templates: make(map[string][]Template)} }

// Add registers a template for one relation.
func (m *Monitor) Add(rel string, t Template) { m.templates[rel] = append(m.templates[rel], t) }

// Run checks every registered template and computes the assessment; the
// violating-cell count feeding consistency is the total finding count.
func (m *Monitor) Run(db *data.Database) ([]MonitorFinding, Assessment) {
	var findings []MonitorFinding
	violating := 0
	for relName, ts := range m.templates {
		rel := db.Rel(relName)
		if rel == nil {
			continue
		}
		for _, t := range ts {
			tids := t.Check(rel)
			if len(tids) == 0 {
				continue
			}
			findings = append(findings, MonitorFinding{Rel: relName, Template: t.Name(), TIDs: tids})
			violating += len(tids)
		}
	}
	return findings, Assess(db, violating)
}
