package quality

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
)

func monitorRel(t *testing.T) (*data.Database, *data.Relation) {
	t.Helper()
	rel := data.NewRelation(must.Schema("Customer",
		data.Attribute{Name: "phone", Type: data.TString},
		data.Attribute{Name: "city", Type: data.TString},
		data.Attribute{Name: "age", Type: data.TInt},
	))
	rel.Insert("c1", data.S("+86-001"), data.S("Beijing"), data.I(30))
	rel.Insert("c2", data.S("+86-002"), data.Null(data.TString), data.I(45))
	rel.Insert("c3", data.S("+86-001"), data.S("Shanghai"), data.I(260)) // dup phone, bad age
	rel.Insert("c4", data.S("badformat"), data.S("Chengdu"), data.I(22))
	db := data.NewDatabase()
	db.Add(rel)
	return db, rel
}

func TestNullCheck(t *testing.T) {
	_, rel := monitorRel(t)
	got := (NullCheck{Attr: "city"}).Check(rel)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("null check=%v", got)
	}
	if got := (NullCheck{Attr: "ghost"}).Check(rel); got != nil {
		t.Error("unknown attr yields nil")
	}
}

func TestDuplicateCheck(t *testing.T) {
	_, rel := monitorRel(t)
	got := (DuplicateCheck{Attr: "phone"}).Check(rel)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("dup check=%v", got)
	}
	// Unique column yields nothing.
	if got := (DuplicateCheck{Attr: "city"}).Check(rel); len(got) != 0 {
		t.Errorf("city dups=%v", got)
	}
}

func TestRangeCheck(t *testing.T) {
	_, rel := monitorRel(t)
	got := (RangeCheck{Attr: "age", Min: 0, Max: 120}).Check(rel)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("range check=%v", got)
	}
}

func TestPatternCheck(t *testing.T) {
	_, rel := monitorRel(t)
	got := NewPatternCheck("phone", `^\+86-\d+$`).Check(rel)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("pattern check=%v", got)
	}
}

func TestMonitorRun(t *testing.T) {
	db, _ := monitorRel(t)
	m := NewMonitor()
	m.Add("Customer", NullCheck{Attr: "city"})
	m.Add("Customer", DuplicateCheck{Attr: "phone"})
	m.Add("Customer", RangeCheck{Attr: "age", Min: 0, Max: 120})
	m.Add("Customer", NewPatternCheck("phone", `^\+86-\d+$`))
	m.Add("Ghost", NullCheck{Attr: "x"}) // missing relation: skipped
	findings, assessment := m.Run(db)
	if len(findings) != 4 {
		t.Fatalf("findings=%d: %+v", len(findings), findings)
	}
	names := map[string]bool{}
	for _, f := range findings {
		names[f.Template] = true
		if f.Rel != "Customer" || len(f.TIDs) == 0 {
			t.Errorf("bad finding: %+v", f)
		}
	}
	for _, want := range []string{"null(city)", "duplicate(phone)", "range(age,[0,120])", "pattern(phone)"} {
		if !names[want] {
			t.Errorf("missing template %s", want)
		}
	}
	if assessment.Completeness >= 1 {
		t.Error("completeness must reflect the null")
	}
	if assessment.Consistency >= 1 {
		t.Error("consistency must reflect the findings")
	}
}
