package quality

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
)

func TestPRFMath(t *testing.T) {
	p := PRF{TP: 8, FP: 2, FN: 2}
	near := func(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }
	if !near(p.Precision(), 0.8) || !near(p.Recall(), 0.8) || !near(p.F1(), 0.8) {
		t.Errorf("prf: %s", p)
	}
	zero := PRF{}
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("empty PRF must be 0")
	}
	a := PRF{TP: 1, FP: 2, FN: 3}
	a.Add(PRF{TP: 4, FP: 5, FN: 6})
	if a.TP != 5 || a.FP != 7 || a.FN != 9 {
		t.Error("add")
	}
}

func TestScoreDetection(t *testing.T) {
	g := NewGold()
	g.AddWrong("R", 1, "a", data.S("x"))
	g.AddMissing("R", 2, "b", data.S("y"))
	g.AddDup("e1", "e2")

	detected := map[string]bool{
		CellKey("R", 1, "a"): true, // TP
		CellKey("R", 9, "a"): true, // FP
	}
	dups := map[[2]string]bool{{"e1", "e2"}: true}
	p := ScoreDetection(g, detected, dups)
	// TP: cell(1,a)+dup = 2; FP: cell(9,a) = 1; FN: missing(2,b) = 1.
	if p.TP != 2 || p.FP != 1 || p.FN != 1 {
		t.Errorf("detection score: %s", p)
	}
}

func TestScoreCorrection(t *testing.T) {
	g := NewGold()
	g.AddWrong("R", 1, "a", data.S("right"))
	g.AddWrong("R", 2, "a", data.S("right2"))
	g.AddMissing("R", 3, "b", data.S("filled"))
	g.AddDup("e1", "e2")
	g.AddDup("e3", "e4")
	g.AddOrder("R", "a", 10, 11)

	c := NewCorrections()
	c.AddCell("R", 1, "a", data.S("right"))  // CR TP
	c.AddCell("R", 2, "a", data.S("WRONG"))  // CR FP+FN
	c.AddCell("R", 3, "b", data.S("filled")) // MI TP
	c.AddCell("R", 5, "z", data.S("noise"))  // clean cell changed: FP
	c.AddMerge("e1", "e2")                   // ER TP
	c.AddMerge("e9", "e8")                   // ER FP
	c.AddOrder("R", "a", 10, 11)             // TD TP
	c.AddOrder("R", "a", 11, 10)             // TD FP (reversed)

	raw := func(key string) (data.Value, bool) { return data.S("orig"), true }
	s := ScoreCorrection(g, c, raw)
	if s.CR.TP != 1 || s.CR.FP != 2 || s.CR.FN != 1 {
		t.Errorf("CR: %s", s.CR)
	}
	if s.MI.TP != 1 || s.MI.FN != 0 {
		t.Errorf("MI: %s", s.MI)
	}
	if s.ER.TP != 1 || s.ER.FP != 1 || s.ER.FN != 1 {
		t.Errorf("ER: %s", s.ER)
	}
	if s.TD.TP != 1 || s.TD.FP != 1 || s.TD.FN != 0 {
		t.Errorf("TD: %s", s.TD)
	}
	all := s.Overall()
	if all.TP != 4 {
		t.Errorf("overall: %s", all)
	}
}

func TestCorrectionReassertingRawIsNotFP(t *testing.T) {
	g := NewGold()
	c := NewCorrections()
	c.AddCell("R", 1, "a", data.S("same"))
	raw := func(key string) (data.Value, bool) { return data.S("same"), true }
	s := ScoreCorrection(g, c, raw)
	if s.CR.FP != 0 {
		t.Error("reasserting the existing value must not count as FP")
	}
}

func TestAssess(t *testing.T) {
	db := data.NewDatabase()
	rel := data.NewRelation(must.Schema("R",
		data.Attribute{Name: "a", Type: data.TString},
		data.Attribute{Name: "b", Type: data.TString}))
	rel.Insert("e1", data.S("x"), data.Null(data.TString))
	rel.Insert("e2", data.S("y"), data.S("z"))
	db.Add(rel)
	a := Assess(db, 1)
	if a.Completeness != 0.75 {
		t.Errorf("completeness=%f", a.Completeness)
	}
	if a.Consistency != 0.75 {
		t.Errorf("consistency=%f", a.Consistency)
	}
	if a.Timeliness != -1 {
		t.Error("timeliness unknown without gold")
	}
	empty := Assess(data.NewDatabase(), 0)
	if empty.Completeness != 0 {
		t.Error("empty database assessment")
	}
}

func TestGoldTotals(t *testing.T) {
	g := NewGold()
	g.AddWrong("R", 1, "a", data.S("x"))
	g.AddMissing("R", 2, "a", data.S("y"))
	g.AddDup("a", "b")
	g.AddOrder("R", "a", 1, 2)
	if g.Total() != 4 {
		t.Errorf("total=%d", g.Total())
	}
	cells := g.ErrorCells()
	if len(cells) != 2 {
		t.Errorf("error cells=%d", len(cells))
	}
	// AddDup normalises order.
	g.AddDup("b", "a")
	if len(g.DupPairs) != 1 {
		t.Error("dup pair not normalised")
	}
}
