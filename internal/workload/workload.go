// Package workload generates the evaluation datasets of paper §6. The
// paper uses three private client datasets (Bank: 11 tables, 1.5B tuples;
// Logistics: 1 table, 16M tuples; Sales: 13 tables, 0.62B tuples); this
// package substitutes deterministic synthetic generators at laptop scale
// with the same table/task structure and seeded error injection —
// duplicates, conflicts, missing values and stale values — each recorded
// in a gold labelling so detection/correction quality is measured exactly
// as the paper measures against manually checked tuples (see DESIGN.md,
// "Scope and substitutions").
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

// Task is one named cleaning task of an application (e.g. Bank's CNC):
// the rules that drive it and the attributes it targets.
type Task struct {
	Name        string
	Description string
	RuleIDs     []string
	TargetAttrs []string
}

// Dataset bundles everything one application evaluation needs.
type Dataset struct {
	Name  string
	DB    *data.Database
	Gold  *quality.Gold
	Rules []*ree.Rule
	Tasks []Task
	Graph *kg.Graph
	// Gamma is the initial ground truth (the paper seeds 10,000 manually
	// checked tuples; we seed a fraction of the gold labels).
	Gamma *truth.FixSet
	// TemporalAttrs lists attributes carrying version history.
	TemporalAttrs map[string][]string // rel -> attrs
	// EIDRefs declares foreign entity references ("Rel.Attr") whose values
	// are EIDs of another relation's entities (see chase.Options.EIDRefs).
	EIDRefs map[string]bool
	// stamps carries injected per-cell timestamps per relation.
	stamps map[string]*data.TemporalRelation
}

// RulesFor returns the rules of one task (all rules when the task is the
// dataset-wide *Clean task or unknown).
func (d *Dataset) RulesFor(task string) []*ree.Rule {
	for _, t := range d.Tasks {
		if t.Name != task {
			continue
		}
		want := map[string]bool{}
		for _, id := range t.RuleIDs {
			want[id] = true
		}
		if len(want) == 0 {
			return d.Rules
		}
		var out []*ree.Rule
		for _, r := range d.Rules {
			if want[r.ID] {
				out = append(out, r)
			}
		}
		return out
	}
	return d.Rules
}

// BuildEnv constructs a fully wired evaluation environment for the
// dataset: registered similarity matchers, a trained temporal ranker, a
// trained correlation model and value predictor per relation, HER/path
// matchers over the knowledge graph, and temporal orders seeded from the
// injected timestamps.
func (d *Dataset) BuildEnv() *predicate.Env {
	env := predicate.NewEnv(d.DB)
	env.Models.Register(ml.NewCachedModel(ml.NewSimilarityMatcher("M_ER", 0.82)))
	env.Models.Register(ml.NewCachedModel(ml.NewSimilarityMatcher("M_addr", 0.82)))
	env.Models.Register(ml.NewCachedModel(ml.NewSimilarityMatcher("M_SKU", 0.82)))

	// Correlation + prediction models per relation.
	for name, rel := range d.DB.Relations {
		mc := ml.NewCorrelationModel("M_c_"+name, rel.Schema)
		mc.Train(rel.Tuples)
		env.Corr[mc.Name()] = mc
		env.Pred["M_d_"+name] = ml.NewValuePredictor("M_d_"+name, mc, rel.Tuples)
	}

	// Temporal orders from injected timestamps; a trained ranker for
	// conflict resolution.
	ti := data.NewTemporalInstance(d.DB)
	for rel, tr := range d.stamps {
		ti.Stamps[rel] = tr
	}
	ti.SeedFromTimestamps()
	env.Orders = func(rel, attr string) *data.TemporalOrder {
		return ti.Orders[rel+"."+attr]
	}
	for relName, attrs := range d.TemporalAttrs {
		rel := d.DB.Rel(relName)
		if rel == nil || len(rel.Tuples) == 0 {
			continue
		}
		ranker := ml.NewPairRanker("M_rank", rel.Schema)
		ranker.Stamps = d.stamps[relName]
		var seed []ml.RankedPair
		for _, attr := range attrs {
			o := ti.Orders[relName+"."+attr]
			if o == nil {
				continue
			}
			pairs := o.Pairs()
			for i, p := range pairs {
				if i >= 40 {
					break
				}
				seed = append(seed, ml.RankedPair{
					Older: rel.Get(p[0]), Newer: rel.Get(p[1]), Attr: attr, Leq: true,
				})
			}
		}
		ml.TrainRanker(ranker, relName, nil, nil, seed, nil, 1)
		env.Ranker = ranker
	}

	if d.Graph != nil {
		env.Graphs[d.Graph.Name] = d.Graph
		env.PathM = ml.NewPathMatcher(d.Graph, 0.3)
		for name, rel := range d.DB.Relations {
			env.HER[name] = ml.NewHERMatcher("HER", d.Graph, rel.Schema, 0.6)
		}
	}
	return env
}

// SeedGamma initialises ground truth from a fraction of the gold labels —
// the analogue of the paper's 10,000 manually checked tuples — plus the
// temporal orders entailed by timestamps.
func (d *Dataset) SeedGamma(fraction float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g := truth.NewFixSet()
	add := func(cellKey string, v data.Value) {
		rel, tid, attr, ok := parseCellKey(cellKey)
		if !ok {
			return
		}
		r := d.DB.Rel(rel)
		if r == nil {
			return
		}
		t := r.Get(tid)
		if t == nil {
			return
		}
		g.SetCell(rel, t.EID, attr, v)
	}
	// Sample in sorted key order: ranging over the gold maps directly
	// would consume the rng in map-iteration order, making Γ — and every
	// fix the chase deduces from it — differ from run to run despite the
	// fixed seed.
	sample := func(cells map[string]data.Value) {
		keys := make([]string, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if rng.Float64() < fraction {
				add(k, cells[k])
			}
		}
	}
	sample(d.Gold.WrongCells)
	sample(d.Gold.MissingCells)
	// Γ⪯: orders entailed by the injected timestamps (sorted relation
	// order for a reproducible construction sequence).
	stampRels := make([]string, 0, len(d.stamps))
	for rel := range d.stamps {
		stampRels = append(stampRels, rel)
	}
	sort.Strings(stampRels)
	for _, rel := range stampRels {
		tr := d.stamps[rel]
		r := d.DB.Rel(rel)
		if r == nil {
			continue
		}
		for _, attrs := range d.TemporalAttrs {
			for _, attr := range attrs {
				type cell struct {
					tid int
					ts  int64
				}
				var cells []cell
				for _, t := range r.Tuples {
					if ts, ok := tr.Timestamp(t.TID, attr); ok {
						cells = append(cells, cell{t.TID, ts})
					}
				}
				for i := range cells {
					for j := range cells {
						if cells[i].ts < cells[j].ts {
							g.AddOrder(rel, attr, cells[i].tid, cells[j].tid, true)
						}
					}
				}
			}
		}
	}
	d.Gamma = g
}

func parseCellKey(key string) (rel string, tid int, attr string, ok bool) {
	// Format: Rel[tid].Attr (data.CellRef.String).
	lb := strings.IndexByte(key, '[')
	rb := strings.IndexByte(key, ']')
	if lb < 0 || rb < lb || rb+1 >= len(key) || key[rb+1] != '.' {
		return "", 0, "", false
	}
	rel = key[:lb]
	if _, err := fmt.Sscanf(key[lb+1:rb], "%d", &tid); err != nil {
		return "", 0, "", false
	}
	return rel, tid, key[rb+2:], true
}

// --- noise helpers ---

// typo injects a single character-level perturbation, deterministic in rng.
func typo(rng *rand.Rand, s string) string {
	if len(s) < 2 {
		return s + "x"
	}
	i := rng.Intn(len(s) - 1)
	switch rng.Intn(3) {
	case 0: // swap
		b := []byte(s)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	case 1: // drop
		return s[:i] + s[i+1:]
	default: // duplicate
		return s[:i+1] + s[i:i+1] + s[i+1:]
	}
}

// pick returns a deterministic pseudo-random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }
