package workload

import (
	"fmt"
	"math/rand"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
)

// Config tunes a generator run.
type Config struct {
	// N is the base tuple count of the main relation.
	N int
	// Seed drives all randomness.
	Seed int64
	// ErrRate is the per-kind error injection rate (default 0.08).
	ErrRate float64
	// GammaFraction seeds ground truth from this share of gold labels.
	GammaFraction float64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.ErrRate <= 0 {
		c.ErrRate = 0.08
	}
	if c.GammaFraction <= 0 {
		c.GammaFraction = 0.15
	}
	return c
}

var (
	firstNames = []string{"Wei", "Christine", "George", "Mina", "Tao", "Elena", "Ahmed", "Priya", "Jun", "Sofia", "Omar", "Lena"}
	lastNames  = []string{"Jones", "Smith", "Chen", "Wang", "Garcia", "Mueller", "Tanaka", "Okafor", "Singh", "Rossi", "Baker", "Ivanov"}
	cities     = []struct{ city, code string }{
		{"Beijing", "010"}, {"Shanghai", "021"}, {"Shenzhen", "0755"},
		{"Guangzhou", "020"}, {"Chengdu", "028"}, {"Hangzhou", "0571"},
	}
	industries = []string{"retail", "logistics", "fintech", "manufacturing", "healthcare", "media"}
	streets    = []string{"Beijing West Road", "Nanjing Road", "Shennan Avenue", "Huaihai Road", "Tianfu Street", "Wensan Road"}
)

// Bank generates the Bank application (paper §6): Customer, Company and
// Payment relations with the four tasks CNC (customer-name cleaning), CIC
// (company information), TPA (total payment amounts) and ESClean (all).
func Bank(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gold := quality.NewGold()

	customer := data.NewRelation(must.Schema("Customer",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "phone", Type: data.TString},
		data.Attribute{Name: "company", Type: data.TString},
		data.Attribute{Name: "city", Type: data.TString},
		data.Attribute{Name: "branch", Type: data.TString},
	))
	company := data.NewRelation(must.Schema("Company",
		data.Attribute{Name: "cname", Type: data.TString},
		data.Attribute{Name: "industry", Type: data.TString},
		data.Attribute{Name: "city", Type: data.TString},
		data.Attribute{Name: "regno", Type: data.TString},
	))
	payment := data.NewRelation(must.Schema("Payment",
		data.Attribute{Name: "acct", Type: data.TString},
		data.Attribute{Name: "amount", Type: data.TFloat},
		data.Attribute{Name: "fee", Type: data.TFloat},
		data.Attribute{Name: "total", Type: data.TFloat},
	))

	// Companies: cname determines industry, city, regno.
	nComp := cfg.N/20 + 4
	type comp struct{ name, ind, city, reg string }
	comps := make([]comp, nComp)
	for i := range comps {
		c := pick(rng, cities)
		comps[i] = comp{
			name: fmt.Sprintf("%s %s Co %d", pick(rng, lastNames), pick(rng, industries), i),
			ind:  pick(rng, industries),
			city: c.city,
			reg:  fmt.Sprintf("REG-%05d", i),
		}
		company.Insert(fmt.Sprintf("co%d", i),
			data.S(comps[i].name), data.S(comps[i].ind), data.S(comps[i].city), data.S(comps[i].reg))
	}
	// CIC errors: wrong industry/city for a company row (violating the
	// cname→industry/city dependency witnessed by duplicate company rows).
	for i := 0; i < nComp; i++ {
		j := rng.Intn(nComp)
		src := comps[j]
		t := company.Insert(fmt.Sprintf("co%d", j),
			data.S(src.name), data.S(src.ind), data.S(src.city), data.S(src.reg))
		if rng.Float64() < cfg.ErrRate*3 {
			wrong := pick(rng, industries)
			for wrong == src.ind {
				wrong = pick(rng, industries)
			}
			company.SetValue(t.TID, "industry", data.S(wrong))
			gold.AddWrong("Company", t.TID, "industry", data.S(src.ind))
		}
	}

	// Customers: phone determines the customer; the city is the employer
	// company's city. CNC injects two duplicate flavours:
	//   (a) same phone, typo'd name — caught by the ML matcher directly;
	//   (b) same name/company, different phone, NULL city — catchable only
	//       after MI fills the city from the company (the MI→ER interaction
	//       chain of paper Example 7; Rock_noC misses these).
	for i := 0; i < cfg.N; i++ {
		name := fmt.Sprintf("%s %c. %s", pick(rng, firstNames), 'A'+rune(i%26), pick(rng, lastNames))
		phone := fmt.Sprintf("+86-%08d", i)
		cpy := comps[rng.Intn(nComp)]
		city := cpy.city
		eid := fmt.Sprintf("cust%d", i)
		customer.Insert(eid, data.S(name), data.S(phone), data.S(cpy.name), data.S(city), data.S("branch-"+city))
		r := rng.Float64()
		switch {
		case r < cfg.ErrRate:
			// (a) near-duplicate record with a typo'd name and fresh EID.
			dupEID := fmt.Sprintf("cust%d-dup", i)
			noisy := typo(rng, name)
			tdup := customer.Insert(dupEID, data.S(noisy), data.S(phone), data.S(cpy.name), data.S(city), data.S("branch-"+city))
			gold.AddDup(eid, dupEID)
			gold.AddWrong("Customer", tdup.TID, "name", data.S(name))
		case r < 2.2*cfg.ErrRate:
			// (b) interaction-dependent duplicate: identifiable only after
			// the null city is imputed from the company.
			dupEID := fmt.Sprintf("cust%d-alt", i)
			altPhone := fmt.Sprintf("+86-9%07d", i)
			tdup := customer.Insert(dupEID, data.S(name), data.S(altPhone), data.S(cpy.name),
				data.Null(data.TString), data.S("branch-"+city))
			gold.AddChainDup(eid, dupEID)
			gold.AddMissing("Customer", tdup.TID, "city", data.S(city))
		}
	}

	// Payments: (amount, fee) determines total; TPA injects wrong totals.
	// Amount/fee are drawn from a small grid so the FD has witnesses.
	for i := 0; i < cfg.N; i++ {
		amount := float64(100 * (1 + rng.Intn(12)))
		fee := float64(5 * (1 + rng.Intn(4)))
		total := amount + fee
		// Each payment is its own entity (the account is an attribute):
		// totals are row-level facts, not account-level ones.
		t := payment.Insert(fmt.Sprintf("pay%d", i),
			data.S(fmt.Sprintf("acct%d", i%400)), data.F(amount), data.F(fee), data.F(total))
		if rng.Float64() < cfg.ErrRate {
			payment.SetValue(t.TID, "total", data.F(total+float64(1+rng.Intn(50))))
			gold.AddWrong("Payment", t.TID, "total", data.F(total))
		} else if rng.Float64() < cfg.ErrRate {
			payment.SetValue(t.TID, "total", data.Null(data.TFloat))
			gold.AddMissing("Payment", t.TID, "total", data.F(total))
		}
	}

	db := data.NewDatabase()
	db.Add(customer)
	db.Add(company)
	db.Add(payment)

	ruleSrc := []struct{ id, src string }{
		// CNC: phone identifies the customer; names then unify.
		{"cnc-er", "Customer(t) ^ Customer(s) ^ t.phone = s.phone ^ M_ER(t[name], s[name]) -> t.eid = s.eid"},
		{"cnc-cr", "Customer(t) ^ Customer(s) ^ t.phone = s.phone -> t.name = s.name"},
		// CIC: company name determines industry and city.
		{"cic-ind", "Company(t) ^ Company(s) ^ t.cname = s.cname -> t.industry = s.industry"},
		{"cic-city", "Company(t) ^ Company(s) ^ t.cname = s.cname -> t.city = s.city"},
		// TPA: (amount, fee) determines total; nulls imputed the same way.
		{"tpa-fd", "Payment(t) ^ Payment(s) ^ t.amount = s.amount ^ t.fee = s.fee -> t.total = s.total"},
		// MI→ER chain (Example 7 style): the employer's city fills a null
		// customer city, which then lets the name+company+city ER rule fire.
		{"mi-city", "Customer(t) ^ Company(s) ^ t.company = s.cname ^ null(t.city) -> t.city = s.city"},
		{"er-namecity", "Customer(t) ^ Customer(s) ^ t.name = s.name ^ t.company = s.company ^ t.city = s.city -> t.eid = s.eid"},
	}
	rules := parseRules(db, ruleSrc)

	ds := &Dataset{
		Name:  "Bank",
		DB:    db,
		Gold:  gold,
		Rules: rules,
		Tasks: []Task{
			{Name: "CNC", Description: "clean customer names", RuleIDs: []string{"cnc-er", "cnc-cr"}, TargetAttrs: []string{"Customer.name"}},
			{Name: "CIC", Description: "company information", RuleIDs: []string{"cic-ind", "cic-city"}, TargetAttrs: []string{"Company.industry", "Company.city"}},
			{Name: "TPA", Description: "total payment amounts", RuleIDs: []string{"tpa-fd"}, TargetAttrs: []string{"Payment.total"}},
			{Name: "ESClean", Description: "all bank errors"},
		},
		TemporalAttrs: map[string][]string{},
		stamps:        map[string]*data.TemporalRelation{},
	}
	ds.SeedGamma(cfg.GammaFraction, cfg.Seed+1)
	return ds
}

// Logistics generates the Logistics application: a single wide Order
// relation plus a small knowledge graph, with tasks RS (recipient
// streets), RR (residential areas, imputed partly from the graph), SN
// (seller names) and RClean (all).
func Logistics(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	gold := quality.NewGold()

	order := data.NewRelation(must.Schema("Order",
		data.Attribute{Name: "recipient", Type: data.TString},
		data.Attribute{Name: "street", Type: data.TString},
		data.Attribute{Name: "area", Type: data.TString},
		data.Attribute{Name: "city", Type: data.TString},
		data.Attribute{Name: "seller", Type: data.TString},
		data.Attribute{Name: "zip", Type: data.TString},
	))

	// Knowledge graph: city vertices reachable from area vertices.
	g := kg.New("GeoKG")
	cityVerts := map[string]kg.VertexID{}
	for _, c := range cities {
		cv := g.AddVertex(c.city)
		g.SetProp(cv, "type", "City")
		cityVerts[c.city] = cv
		av := g.AddVertex(c.city + " Metro Area")
		g.SetProp(av, "type", "Area")
		must.Edge(g, av, "PartOf", cv)
		must.Edge(g, cv, "AreaOf", av)
	}

	nSellers := cfg.N/40 + 5
	sellers := make([]string, nSellers)
	for i := range sellers {
		sellers[i] = fmt.Sprintf("%s trading %s %d", pick(rng, lastNames), pick(rng, industries), i)
	}

	for i := 0; i < cfg.N; i++ {
		c := pick(rng, cities)
		street := fmt.Sprintf("%d %s", 1+rng.Intn(200), pick(rng, streets))
		area := c.city + " Metro Area"
		seller := sellers[rng.Intn(nSellers)]
		zip := fmt.Sprintf("%s-%04d", c.code, i%100)
		eid := fmt.Sprintf("ord%d", i)
		t := order.Insert(eid, data.S(fmt.Sprintf("%s %s", pick(rng, firstNames), pick(rng, lastNames))),
			data.S(street), data.S(area), data.S(c.city), data.S(seller), data.S(zip))

		r := rng.Float64()
		switch {
		case r < cfg.ErrRate: // RS: street typos; zip determines street block
			noisy := typo(rng, street)
			order.SetValue(t.TID, "street", data.S(noisy))
			gold.AddWrong("Order", t.TID, "street", data.S(street))
			// A clean witness with the same zip.
			order.Insert(eid+"-w", data.S("witness"), data.S(street), data.S(area), data.S(c.city), data.S(seller), data.S(zip))
		case r < 2*cfg.ErrRate: // RR: missing residential area (MI via city + KG)
			order.SetValue(t.TID, "area", data.Null(data.TString))
			gold.AddMissing("Order", t.TID, "area", data.S(area))
		case r < 3*cfg.ErrRate: // SN: duplicate orders with typo'd seller names
			dupEID := eid + "-dup"
			td := order.Insert(dupEID, t.Values[0], data.S(street), data.S(area), data.S(c.city),
				data.S(typo(rng, seller)), data.S(zip))
			gold.AddDup(eid, dupEID)
			gold.AddWrong("Order", td.TID, "seller", data.S(seller))
		}
	}

	db := data.NewDatabase()
	db.Add(order)

	ruleSrc := []struct{ id, src string }{
		// RS: same zip implies the same street (the generator keys streets
		// by zip witnesses); the address model blocks candidates.
		{"rs-cr", "Order(t) ^ Order(s) ^ t.zip = s.zip ^ M_addr(t[street], s[street]) -> t.street = s.street"},
		// RR: city determines the metro area (logic MI)...
		{"rr-corr", "Order(t) ^ Order(s) ^ t.city = s.city ^ null(t.area) -> t.area = s.area"},
		// ...and the knowledge graph supplies it when no witness exists.
		{"rr-kg", "Order(t) ^ vertex(x, GeoKG) ^ HER(t, x) ^ match(t.area, x.(AreaOf)) ^ null(t.area) -> t.area = val(x.(AreaOf))"},
		// SN: same recipient+street+zip orders are the same; seller names unify.
		{"sn-er", "Order(t) ^ Order(s) ^ t.recipient = s.recipient ^ t.street = s.street ^ t.zip = s.zip ^ M_ER(t[seller], s[seller]) -> t.eid = s.eid"},
		{"sn-cr", "Order(t) ^ Order(s) ^ t.recipient = s.recipient ^ t.street = s.street ^ t.zip = s.zip ^ M_ER(t[seller], s[seller]) -> t.seller = s.seller"},
	}
	rules := parseRules(db, ruleSrc)

	ds := &Dataset{
		Name:  "Logistics",
		DB:    db,
		Gold:  gold,
		Rules: rules,
		Graph: g,
		Tasks: []Task{
			{Name: "RS", Description: "recipient streets", RuleIDs: []string{"rs-cr"}, TargetAttrs: []string{"Order.street"}},
			{Name: "RR", Description: "residential areas", RuleIDs: []string{"rr-corr", "rr-kg"}, TargetAttrs: []string{"Order.area"}},
			{Name: "SN", Description: "seller names", RuleIDs: []string{"sn-er", "sn-cr"}, TargetAttrs: []string{"Order.seller"}},
			{Name: "RClean", Description: "all logistics errors"},
		},
		TemporalAttrs: map[string][]string{},
		stamps:        map[string]*data.TemporalRelation{},
	}
	ds.SeedGamma(cfg.GammaFraction, cfg.Seed+2)
	return ds
}

// Sales generates the Sales (ERP) application: SalesOrder and Customer
// relations with version history on customer tier (for TD), and tasks CIN
// (customer information), CCN (company names), TPWT (prices without tax)
// and SClean (all).
func Sales(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 200))
	gold := quality.NewGold()

	orders := data.NewRelation(must.Schema("SalesOrder",
		data.Attribute{Name: "customer", Type: data.TString},
		data.Attribute{Name: "company", Type: data.TString},
		data.Attribute{Name: "price", Type: data.TFloat},
		data.Attribute{Name: "tax_class", Type: data.TString},
		data.Attribute{Name: "price_no_tax", Type: data.TFloat},
	))
	custs := data.NewRelation(must.Schema("CustomerInfo",
		data.Attribute{Name: "cname", Type: data.TString},
		data.Attribute{Name: "tier", Type: data.TString},
		data.Attribute{Name: "region", Type: data.TString},
		data.Attribute{Name: "lifetime_value", Type: data.TFloat},
	))
	stamps := data.NewTemporalRelation(custs)

	taxRates := map[string]float64{"standard": 1.13, "reduced": 1.09, "zero": 1.00}
	taxClasses := []string{"standard", "reduced", "zero"}
	nCompanies := cfg.N/30 + 4
	companies := make([]string, nCompanies)
	for i := range companies {
		companies[i] = fmt.Sprintf("%s %s Group %d", pick(rng, lastNames), pick(rng, industries), i)
	}

	// CustomerInfo with tier version history (TD): bronze → silver → gold,
	// lifetime value strictly growing; timestamps only on the first two
	// versions so the third's currency must be *deduced*.
	tiers := []string{"bronze", "silver", "gold"}
	nCust := cfg.N / 10
	if nCust < 12 {
		nCust = 12
	}
	for i := 0; i < nCust; i++ {
		cname := fmt.Sprintf("%s %s", pick(rng, firstNames), pick(rng, lastNames))
		region := pick(rng, cities).city
		eid := fmt.Sprintf("cu%d", i)
		nVersions := 1 + rng.Intn(3)
		var prev *data.Tuple
		for v := 0; v < nVersions; v++ {
			lv := float64(1000*(v+1)) + float64(rng.Intn(500))
			t := custs.Insert(eid, data.S(cname), data.S(tiers[v]), data.S(region), data.F(lv))
			if v < 2 {
				stamps.Stamp(t.TID, "tier", int64(1600000000+86400*v))
			}
			if prev != nil {
				gold.AddOrder("CustomerInfo", "tier", prev.TID, t.TID)
			}
			prev = t
		}
	}

	// SalesOrders: (price, tax_class) determines price_no_tax. TPWT errors
	// corrupt or null the computed column; CCN errors typo company names
	// creating duplicates; CIN errors corrupt the customer region.
	priceGrid := []float64{100, 250, 500, 999, 1500, 4200}
	for i := 0; i < cfg.N; i++ {
		price := pick(rng, priceGrid)
		tc := pick(rng, taxClasses)
		pnt := price / taxRates[tc]
		cust := fmt.Sprintf("cu%d", rng.Intn(nCust))
		compName := companies[rng.Intn(nCompanies)]
		eid := fmt.Sprintf("so%d", i)
		t := orders.Insert(eid, data.S(cust), data.S(compName), data.F(price), data.S(tc), data.F(pnt))

		r := rng.Float64()
		switch {
		case r < cfg.ErrRate: // TPWT wrong value
			orders.SetValue(t.TID, "price_no_tax", data.F(pnt+float64(1+rng.Intn(30))))
			gold.AddWrong("SalesOrder", t.TID, "price_no_tax", data.F(pnt))
		case r < 1.5*cfg.ErrRate: // TPWT missing value
			orders.SetValue(t.TID, "price_no_tax", data.Null(data.TFloat))
			gold.AddMissing("SalesOrder", t.TID, "price_no_tax", data.F(pnt))
		case r < 2.5*cfg.ErrRate: // CCN: duplicate order with typo'd company
			dupEID := eid + "-dup"
			td := orders.Insert(dupEID, data.S(cust), data.S(typo(rng, compName)), data.F(price), data.S(tc), data.F(pnt))
			gold.AddDup(eid, dupEID)
			gold.AddWrong("SalesOrder", td.TID, "company", data.S(compName))
		}
	}
	// CIN: corrupt some customer regions (cname→region among versions).
	for _, t := range custs.Tuples {
		if rng.Float64() < cfg.ErrRate/2 {
			right := t.Values[custs.Schema.Index("region")]
			wrong := pick(rng, cities).city
			for wrong == right.Str() {
				wrong = pick(rng, cities).city
			}
			custs.SetValue(t.TID, "region", data.S(wrong))
			gold.AddWrong("CustomerInfo", t.TID, "region", right)
		}
	}

	db := data.NewDatabase()
	db.Add(orders)
	db.Add(custs)

	ruleSrc := []struct{ id, src string }{
		// CIN: customer name determines region across versions.
		{"cin-cr", "CustomerInfo(t) ^ CustomerInfo(s) ^ t.cname = s.cname -> t.region = s.region"},
		// CCN: same customer+price+tax orders with near-equal company
		// names are duplicates; names unify.
		{"ccn-er", "SalesOrder(t) ^ SalesOrder(s) ^ t.customer = s.customer ^ t.price = s.price ^ t.tax_class = s.tax_class ^ M_SKU(t[company], s[company]) -> t.eid = s.eid"},
		{"ccn-cr", "SalesOrder(t) ^ SalesOrder(s) ^ t.customer = s.customer ^ t.price = s.price ^ t.tax_class = s.tax_class ^ M_SKU(t[company], s[company]) -> t.company = s.company"},
		// TPWT: (price, tax_class) determines price_no_tax.
		{"tpwt-fd", "SalesOrder(t) ^ SalesOrder(s) ^ t.price = s.price ^ t.tax_class = s.tax_class -> t.price_no_tax = s.price_no_tax"},
		// TD: tier moves bronze→silver→gold; lifetime value grows with it.
		{"td-tier1", "CustomerInfo(t) ^ CustomerInfo(s) ^ t.cname = s.cname ^ t.tier = 'bronze' ^ s.tier = 'silver' -> t <=[tier] s"},
		{"td-tier2", "CustomerInfo(t) ^ CustomerInfo(s) ^ t.cname = s.cname ^ t.tier = 'silver' ^ s.tier = 'gold' -> t <=[tier] s"},
		{"td-tier3", "CustomerInfo(t) ^ CustomerInfo(s) ^ t.cname = s.cname ^ t.tier = 'bronze' ^ s.tier = 'gold' -> t <=[tier] s"},
		{"td-rank", "CustomerInfo(t) ^ CustomerInfo(s) ^ t.cname = s.cname ^ t.lifetime_value <= s.lifetime_value ^ M_rank(t, s, <=[tier]) -> t <=[tier] s"},
	}
	rules := parseRules(db, ruleSrc)

	ds := &Dataset{
		Name:  "Sales",
		DB:    db,
		Gold:  gold,
		Rules: rules,
		Tasks: []Task{
			{Name: "CIN", Description: "customer information", RuleIDs: []string{"cin-cr"}, TargetAttrs: []string{"CustomerInfo.region"}},
			{Name: "CCN", Description: "company names", RuleIDs: []string{"ccn-er", "ccn-cr"}, TargetAttrs: []string{"SalesOrder.company"}},
			{Name: "TPWT", Description: "prices without tax", RuleIDs: []string{"tpwt-fd"}, TargetAttrs: []string{"SalesOrder.price_no_tax"}},
			{Name: "SClean", Description: "all sales errors"},
		},
		TemporalAttrs: map[string][]string{"CustomerInfo": {"tier"}},
		stamps:        map[string]*data.TemporalRelation{"CustomerInfo": stamps},
	}
	ds.SeedGamma(cfg.GammaFraction, cfg.Seed+3)
	return ds
}

func parseRules(db *data.Database, src []struct{ id, src string }) []*ree.Rule {
	rules := make([]*ree.Rule, len(src))
	for i, rs := range src {
		r := must.Rule(rs.src, db)
		r.ID = rs.id
		rules[i] = r
	}
	return rules
}

// All returns the three applications at the given scale.
func All(cfg Config) []*Dataset {
	return []*Dataset{Bank(cfg), Logistics(cfg), Sales(cfg)}
}
