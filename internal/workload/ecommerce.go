package workload

import (
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/truth"
)

// Ecommerce reconstructs the running example of the paper (Tables 1–3):
// the Person, Store and Transaction relations with their injected errors,
// a tiny Wiki knowledge graph for store locations, and the rules ϕ1–ϕ15
// (those expressible in the DSL). It is used by the ecommerce example and
// by integration tests that replay Example 7's interaction chain.
func Ecommerce() *Dataset {
	gold := quality.NewGold()

	person := data.NewRelation(must.Schema("Person",
		data.Attribute{Name: "LN", Type: data.TString},
		data.Attribute{Name: "FN", Type: data.TString},
		data.Attribute{Name: "gender", Type: data.TString},
		data.Attribute{Name: "home", Type: data.TString},
		data.Attribute{Name: "status", Type: data.TString},
		data.Attribute{Name: "spouse", Type: data.TString},
	))
	// Table 1 (tids 0..4 = t1..t5). Erroneous values from the paper are
	// labelled in the gold set.
	person.Insert("p1", data.S("Jones"), data.S("Christine"), data.S("F"), data.S("5 Beijing West Road"), data.S("single"), data.Null(data.TString))
	t2 := person.Insert("p2", data.S("Smith"), data.S("Christine"), data.S("F"), data.S("5 West Road"), data.S("single"), data.S("p3"))
	person.Insert("p2", data.S("Smith"), data.S("Christine"), data.S("F"), data.S("12 Beijing Road"), data.S("married"), data.S("p4"))
	person.Insert("p3", data.S("Smith"), data.S("George"), data.S("M"), data.S("12 Beijing Road"), data.S("married"), data.S("p2"))
	t5 := person.Insert("p4", data.S("Smith"), data.S("George"), data.S("M"), data.Null(data.TString), data.Null(data.TString), data.Null(data.TString))
	// t2's home "5 West Road" is the stale/incomplete form of t1's.
	gold.AddWrong("Person", t2.TID, "home", data.S("5 Beijing West Road"))
	gold.AddMissing("Person", t5.TID, "home", data.S("12 Beijing Road"))
	gold.AddDup("p3", "p4")
	gold.AddOrder("Person", "home", t2.TID, t2.TID+1)
	gold.AddOrder("Person", "status", t2.TID, t2.TID+1)

	store := data.NewRelation(must.Schema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "type", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
		data.Attribute{Name: "accu_sales", Type: data.TFloat},
		data.Attribute{Name: "area_code", Type: data.TString},
	))
	// Table 2 (s1..s5). Null area codes and a null location are the MI
	// targets; Beijing's area code is 010, Shanghai's 021.
	s1 := store.Insert("s1", data.S("Apple Jingdong Self-run"), data.S("Electron."), data.S("Beijing"), data.F(15e6), data.Null(data.TString))
	s2 := store.Insert("s2", data.S("Apple Taobao Flagship"), data.S("Electron."), data.Null(data.TString), data.Null(data.TFloat), data.Null(data.TString))
	s3 := store.Insert("s3", data.S("Huawei Flagship"), data.S("Electron."), data.S("Beijing"), data.F(11e6), data.Null(data.TString))
	store.Insert("s4", data.S("Huawei Sports"), data.S("Sports"), data.S("Shanghai"), data.F(10e6), data.S("021"))
	store.Insert("s5", data.S("Nike China"), data.S("Sports"), data.S("Shanghai"), data.Null(data.TFloat), data.S("021"))
	gold.AddMissing("Store", s1.TID, "area_code", data.S("010"))
	gold.AddMissing("Store", s2.TID, "location", data.S("Beijing"))
	gold.AddMissing("Store", s3.TID, "area_code", data.S("010"))

	trans := data.NewRelation(must.Schema("Trans",
		data.Attribute{Name: "pid", Type: data.TString},
		data.Attribute{Name: "sid", Type: data.TString},
		data.Attribute{Name: "com", Type: data.TString},
		data.Attribute{Name: "mfg", Type: data.TString},
		data.Attribute{Name: "price", Type: data.TFloat},
		data.Attribute{Name: "date", Type: data.TTime},
	))
	// Table 3 (t11..t15): the transaction is the entity; pid references the
	// buyer (a Person entity).
	trans.Insert("t11", data.S("p1"), data.S("s2"), data.S("IPhone 13"), data.S("Apple"), data.F(9000), must.Value(data.TTime, "2020-12-18"))
	trans.Insert("t12", data.S("p1"), data.S("s1"), data.S("IPhone 14 (Discount ID 41)"), data.S("Apple"), data.F(6500), must.Value(data.TTime, "2021-11-11"))
	t13 := trans.Insert("t13", data.S("p2"), data.S("s1"), data.S("IPhone 14 (Discount Code 41)"), data.S("Apple"), data.Null(data.TFloat), must.Value(data.TTime, "2021-11-11"))
	trans.Insert("t14", data.S("p3"), data.S("s3"), data.S("Mate X2 (Limited Sold)"), data.S("Huawei"), data.F(5200), must.Value(data.TTime, "2023-08-12"))
	t15 := trans.Insert("t15", data.S("p4"), data.S("s4"), data.S("Mate X2 (Limited Sold)"), data.S("Apple"), data.Null(data.TFloat), must.Value(data.TTime, "2023-08-12"))
	// t15's manufactory is wrong (Apple → Huawei); the discount-pair
	// buyers p1/p2 are the same person; prices are missing.
	gold.AddWrong("Trans", t15.TID, "mfg", data.S("Huawei"))
	gold.AddDup("p1", "p2")
	gold.AddMissing("Trans", t13.TID, "price", data.F(6500))

	// The Wiki graph of rule ϕ7: the Apple Taobao store is located at
	// Beijing (supplying the missing Store.location).
	g := kg.New("Wiki")
	apple := g.AddVertex("Apple Taobao Flagship")
	g.SetProp(apple, "type", "Store")
	beijing := g.AddVertex("Beijing")
	must.Edge(g, apple, "LocationAt", beijing)
	huawei := g.AddVertex("Huawei Flagship")
	g.SetProp(huawei, "type", "Store")
	must.Edge(g, huawei, "LocationAt", beijing)

	db := data.NewDatabase()
	db.Add(person)
	db.Add(store)
	db.Add(trans)

	ruleSrc := []struct{ id, src string }{
		// ϕ1: same discount code at the same store on the same date → same
		// buyer (pid is a declared reference to Person entities).
		{"phi1", "Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) ^ t.date = s.date ^ t.sid = s.sid -> t.pid = s.pid"},
		// ϕ2: same commodity, same manufactory.
		{"phi2", "Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg"},
		// ϕ4/ϕ5: marital status monotone; home comoves with status.
		{"phi4", "Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s"},
		{"phi5", "Person(t) ^ Person(s) ^ t <=[status] s -> t <=[home] s"},
		// ϕ7: extract missing store locations from the Wiki graph.
		{"phi7", "Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) ^ null(t.location) -> t.location = val(x.(LocationAt))"},
		// ϕ8: predict missing transaction prices.
		{"phi8", "Trans(t) ^ null(t.price) -> t.price = M_d_Trans(t, price)"},
		// ϕ12: Beijing's area code is 010.
		{"phi12", "Store(t) ^ t.location = 'Beijing' -> t.area_code = '010'"},
		// ϕ13: same person (same pid after ER) keeps one home address.
		{"phi13", "Person(t) ^ Person(s) ^ t.eid = s.eid ^ t.status = s.status -> t.home = s.home"},
		// ϕ15: same name + home identifies persons.
		{"phi15", "Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid"},
	}
	rules := parseRules(db, ruleSrc)

	stamps := data.NewTemporalRelation(person)
	ds := &Dataset{
		Name:          "Ecommerce",
		DB:            db,
		Gold:          gold,
		Rules:         rules,
		Graph:         g,
		Gamma:         truth.NewFixSet(),
		TemporalAttrs: map[string][]string{"Person": {"status", "home"}},
		EIDRefs:       map[string]bool{"Trans.pid": true},
		stamps:        map[string]*data.TemporalRelation{"Person": stamps},
	}
	// Master data: Christine Jones' address is validated (the paper's ϕ13
	// walk-through assumes the clean address is known for t1).
	ds.Gamma.SetCell("Person", "p1", "home", data.S("5 Beijing West Road"))
	return ds
}
