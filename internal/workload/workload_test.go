package workload

import (
	"math/rand"
	"testing"

	"github.com/rockclean/rock/internal/ree"
)

func TestBankGenerator(t *testing.T) {
	ds := Bank(Config{N: 300, Seed: 1})
	if ds.DB.Rel("Customer") == nil || ds.DB.Rel("Company") == nil || ds.DB.Rel("Payment") == nil {
		t.Fatal("missing relations")
	}
	if ds.Gold.Total() == 0 {
		t.Fatal("no errors injected")
	}
	if len(ds.Gold.DupPairs) == 0 || len(ds.Gold.WrongCells) == 0 || len(ds.Gold.MissingCells) == 0 {
		t.Error("all error kinds must be present")
	}
	if len(ds.Tasks) != 4 {
		t.Error("bank has four tasks")
	}
	for _, r := range ds.Rules {
		if err := r.Validate(ds.DB); err != nil {
			t.Errorf("invalid rule: %v", err)
		}
	}
	// Task rule filtering works.
	if got := ds.RulesFor("TPA"); len(got) != 1 || got[0].ID != "tpa-fd" {
		t.Errorf("TPA rules: %v", got)
	}
	if got := ds.RulesFor("ESClean"); len(got) != len(ds.Rules) {
		t.Error("*Clean task must cover all rules")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Bank(Config{N: 200, Seed: 7})
	b := Bank(Config{N: 200, Seed: 7})
	if a.DB.TupleCount() != b.DB.TupleCount() {
		t.Fatal("tuple counts differ across runs")
	}
	if a.Gold.Total() != b.Gold.Total() {
		t.Fatal("gold labels differ across runs")
	}
	c := Bank(Config{N: 200, Seed: 8})
	if a.Gold.Total() == c.Gold.Total() && a.DB.TupleCount() == c.DB.TupleCount() {
		t.Log("different seeds produced identical totals (possible but unlikely)")
	}
}

func TestLogisticsGenerator(t *testing.T) {
	ds := Logistics(Config{N: 300, Seed: 1})
	if ds.Graph == nil || ds.Graph.NumVertices() == 0 {
		t.Fatal("logistics needs the knowledge graph")
	}
	if len(ds.Gold.MissingCells) == 0 {
		t.Error("RR task needs missing areas")
	}
	env := ds.BuildEnv()
	if env.Graphs["GeoKG"] == nil || env.PathM == nil || env.HER["Order"] == nil {
		t.Error("env must wire the graph machinery")
	}
}

func TestSalesGeneratorTemporal(t *testing.T) {
	ds := Sales(Config{N: 300, Seed: 1})
	if len(ds.Gold.OrderPairs["CustomerInfo.tier"]) == 0 {
		t.Fatal("sales needs TD gold pairs")
	}
	env := ds.BuildEnv()
	if env.Ranker == nil {
		t.Error("sales env must train the ranker")
	}
	// Timestamps entail some seeded orders.
	o := env.Orders("CustomerInfo", "tier")
	if o == nil || len(o.Pairs()) == 0 {
		t.Error("timestamp-seeded orders missing")
	}
}

func TestSeedGammaConsistentWithGold(t *testing.T) {
	ds := Bank(Config{N: 300, Seed: 2, GammaFraction: 0.5})
	if ds.Gamma == nil {
		t.Fatal("gamma not seeded")
	}
	_, cells, _ := ds.Gamma.Stats()
	if cells == 0 {
		t.Fatal("gamma must contain validated cells")
	}
	// Every gamma cell agrees with the gold truth.
	for key, want := range ds.Gold.WrongCells {
		rel, tid, attr, ok := parseCellKey(key)
		if !ok {
			t.Fatalf("bad cell key %q", key)
		}
		tp := ds.DB.Rel(rel).Get(tid)
		if v, ok := ds.Gamma.Cell(rel, tp.EID, attr); ok && !v.Equal(want) {
			t.Errorf("gamma contradicts gold at %s", key)
		}
	}
}

func TestEcommerceMatchesPaperTables(t *testing.T) {
	ds := Ecommerce()
	if ds.DB.Rel("Person").Len() != 5 || ds.DB.Rel("Store").Len() != 5 || ds.DB.Rel("Trans").Len() != 5 {
		t.Fatal("tables 1-3 must have five rows each")
	}
	if !ds.Gold.DupPairs[[2]string{"p1", "p2"}] || !ds.Gold.DupPairs[[2]string{"p3", "p4"}] {
		t.Error("paper duplicates missing from gold")
	}
	for _, r := range ds.Rules {
		if err := r.Validate(ds.DB); err != nil {
			t.Errorf("rule %s invalid: %v", r.ID, err)
		}
	}
	// Rule tasks cover all four cleaning tasks.
	seen := map[ree.Task]bool{}
	for _, r := range ds.Rules {
		seen[r.TaskOf()] = true
	}
	for _, task := range []ree.Task{ree.TaskER, ree.TaskCR, ree.TaskTD, ree.TaskMI} {
		if !seen[task] {
			t.Errorf("no %s rule in the e-commerce set", task)
		}
	}
}

func TestParseCellKey(t *testing.T) {
	rel, tid, attr, ok := parseCellKey("Person[12].home")
	if !ok || rel != "Person" || tid != 12 || attr != "home" {
		t.Errorf("parse: %s %d %s %v", rel, tid, attr, ok)
	}
	for _, bad := range []string{"", "x", "R[.a", "R[z].a", "R[1]a"} {
		if _, _, _, ok := parseCellKey(bad); ok {
			t.Errorf("bad key %q parsed", bad)
		}
	}
}

func TestTypoChangesString(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	changed := 0
	for i := 0; i < 50; i++ {
		s := "Beijing West Road"
		if typo(rng, s) != s {
			changed++
		}
	}
	if changed < 40 {
		t.Errorf("typo too often a no-op: %d/50", changed)
	}
	if typo(rng, "a") == "a" {
		t.Error("short strings must still change")
	}
}
