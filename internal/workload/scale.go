package workload

import (
	"fmt"
	"math/rand"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/truth"
)

// Scale generates the throughput workload of the `-exp scale` experiment:
// one wide Events relation at 10⁶–10⁷ tuples exercising exactly the
// dictionary-encoded hot paths — an equality self-join (interned hash
// join over sku) imputing null manufacturers, and a constant rule with a
// null guard (interned constant pushdown over region/code). Errors are
// nulls only, so every deduced fix is certain: no conflict resolution, no
// oracle, no ML — wall-clock measures the enumeration engine, nothing
// else. Every tuple is its own entity (no merges), which keeps the dirty
// propagation of a fix confined to its own tuple.
func Scale(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 500))
	gold := quality.NewGold()

	events := data.NewRelation(must.Schema("Events",
		data.Attribute{Name: "sku", Type: data.TString},
		data.Attribute{Name: "mfg", Type: data.TString},
		data.Attribute{Name: "region", Type: data.TString},
		data.Attribute{Name: "code", Type: data.TString},
	))

	// Tuples arrive in sku groups of 2–4; each group shares one
	// manufacturer, so the self-join t.sku = s.sku touches a linear number
	// of pairs (group-local), not a quadratic one. About 1% of tuples lose
	// their manufacturer to a null — at most one per group, so the join
	// rule always finds a non-null witness and the imputation is certain.
	group, left, nulledInGroup := 0, 0, false
	var mfg string
	for i := 0; i < cfg.N; i++ {
		if left == 0 {
			group++
			left = 2 + group%3 // group sizes cycle 2, 3, 4
			nulledInGroup = false
			mfg = fmt.Sprintf("M%d", group%997)
		}
		left--
		sku := fmt.Sprintf("K%d", group)
		region := fmt.Sprintf("R%d", i%10)
		code := fmt.Sprintf("C%d", i%10)
		mv := data.S(mfg)
		if !nulledInGroup && rng.Float64() < 0.01 {
			nulledInGroup = true
			mv = data.Null(data.TString)
		}
		cv := data.S(code)
		if region == "R7" {
			cv = data.S("C7")
			if rng.Float64() < 0.01 {
				cv = data.Null(data.TString)
			}
		}
		t := events.Insert(fmt.Sprintf("e%d", i), data.S(sku), mv, data.S(region), cv)
		if mv.IsNull() {
			gold.AddMissing("Events", t.TID, "mfg", data.S(mfg))
		}
		if region == "R7" && cv.IsNull() {
			gold.AddMissing("Events", t.TID, "code", data.S("C7"))
		}
	}

	db := data.NewDatabase()
	db.Add(events)

	ruleSrc := []struct{ id, src string }{
		// ps1: same sku, same manufacturer — the interned hash-join driver.
		{"ps1", "Events(t) ^ Events(s) ^ t.sku = s.sku -> t.mfg = s.mfg"},
		// ps2: region R7 ships with code C7 — interned constant pushdown
		// (region equality and the null guard both run as id compares).
		{"ps2", "Events(t) ^ t.region = 'R7' ^ null(t.code) -> t.code = 'C7'"},
	}
	rules := parseRules(db, ruleSrc)

	return &Dataset{
		Name:  "Scale",
		DB:    db,
		Gold:  gold,
		Rules: rules,
		Tasks: []Task{
			{Name: "Throughput", Description: "null imputation at 10⁶–10⁷ tuples"},
		},
		Gamma:         truth.NewFixSet(),
		TemporalAttrs: map[string][]string{},
		EIDRefs:       map[string]bool{},
		stamps:        map[string]*data.TemporalRelation{},
	}
}
