package chase

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

func TestEIDRefConsequenceMergesReferencedEntities(t *testing.T) {
	schema := must.Schema("Trans",
		data.Attribute{Name: "pid", Type: data.TString},
		data.Attribute{Name: "code", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	rel.Insert("t1", data.S("p1"), data.S("X41"))
	rel.Insert("t2", data.S("p2"), data.S("X41"))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.code = s.code -> t.pid = s.pid", db)
	r.ID = "phi1"
	opts := DefaultOptions()
	opts.EIDRefs = map[string]bool{"Trans.pid": true}
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), opts)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Truth().SameEntity("p1", "p2") {
		t.Error("pid equation must merge the referenced person entities")
	}
	// Neither pid attribute value was overwritten.
	if v, _ := rel.Value(rel.Tuples[0].TID, "pid"); v.Str() != "p1" {
		t.Error("pid values must not be rewritten")
	}
	if _, ok := eng.Truth().Cell("Trans", "t1", "pid"); ok {
		t.Error("no cell fix should be recorded for an entity-ref equation")
	}
}

func TestKValConsequenceExtractsFromGraph(t *testing.T) {
	schema := must.Schema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	tp := rel.Insert("s2", data.S("Apple Taobao Flagship"), data.Null(data.TString))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	g := kg.New("Wiki")
	apple := g.AddVertex("Apple Taobao Flagship")
	beijing := g.AddVertex("Beijing")
	must.Edge(g, apple, "LocationAt", beijing)
	env.Graphs["Wiki"] = g
	env.HER["Store"] = ml.NewHERMatcher("HER", g, schema, 0.6, "name")
	env.PathM = ml.NewPathMatcher(g, 0.3)

	r := must.Rule("Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) ^ null(t.location) -> t.location = val(x.(LocationAt))", db)
	r.ID = "phi7"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Store", tp.EID, "location"); !ok || v.Str() != "Beijing" {
		t.Errorf("KG extraction failed: %v %v", v, ok)
	}
}

func TestKPredictConsequenceUsesValuePredictor(t *testing.T) {
	schema := must.Schema("Trans",
		data.Attribute{Name: "com", Type: data.TString},
		data.Attribute{Name: "price", Type: data.TFloat},
	)
	rel := data.NewRelation(schema)
	for i := 0; i < 8; i++ {
		rel.Insert("e", data.S("Mate X2"), data.F(5200))
	}
	probe := rel.Insert("t13", data.S("Mate X2"), data.Null(data.TFloat))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	mc := ml.NewCorrelationModel("M_c", schema)
	mc.Train(rel.Tuples)
	env.Pred["M_d"] = ml.NewValuePredictor("M_d", mc, rel.Tuples)

	r := must.Rule("Trans(t) ^ null(t.price) -> t.price = M_d(t, price)", db)
	r.ID = "phi8"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Trans", probe.EID, "price"); !ok || v.Float() != 5200 {
		t.Errorf("M_d imputation failed: %v %v", v, ok)
	}
}

func TestTDConflictRetractsLosingEdge(t *testing.T) {
	schema := must.Schema("R", data.Attribute{Name: "v", Type: data.TFloat},
		data.Attribute{Name: "tag", Type: data.TString})
	rel := data.NewRelation(schema)
	lo := rel.Insert("a", data.F(1), data.S("lo"))
	hi := rel.Insert("b", data.F(2), data.S("hi"))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	// Ranker: higher v is newer.
	env.Ranker = &funcRanker{}

	rBad := must.Rule("R(t) ^ R(s) ^ t.tag = 'hi' ^ s.tag = 'lo' -> t <[v] s", db)
	rBad.ID = "a-bad"
	rGood := must.Rule("R(t) ^ R(s) ^ t.tag = 'lo' ^ s.tag = 'hi' -> t <[v] s", db)
	rGood.ID = "b-good"
	eng := New(env, []*ree.Rule{rBad, rGood}, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	o := eng.Truth().OrderIfAny("R", "v")
	if o == nil || !o.Less(lo.TID, hi.TID) {
		t.Errorf("ranker-backed direction must win (resolvedTD=%d retracted=%d)", rep.ResolvedTD, rep.RetractedTD)
	}
	if o.Less(hi.TID, lo.TID) {
		t.Error("losing direction must be retracted")
	}
	if rep.RetractedTD == 0 {
		t.Error("a retraction must be recorded")
	}
}

// funcRanker prefers ascending v.
type funcRanker struct{}

func (funcRanker) Name() string { return "M_rank" }
func (funcRanker) RankLeq(rel string, older, newer *data.Tuple, attr string) float64 {
	if older.Values[0].Float() <= newer.Values[0].Float() {
		return 0.9
	}
	return 0.1
}

func TestSimMakespanAccounted(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("a", data.S("X"), data.S("Y"), data.S("h"), data.S("s"), data.Null(data.TString))
	rel.Insert("b", data.S("X"), data.S("Y"), data.S("h"), data.S("s"), data.Null(data.TString))
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid", env.DB)
	r.ID = "er"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimMakespan <= 0 {
		t.Error("simulated makespan must be accounted")
	}
}

func TestUnresolvedWithoutOracleOrModels(t *testing.T) {
	// Two tuples disagree 1-1 with no models, no gamma, no oracle: the
	// certain-fix discipline refuses to guess.
	schema := must.Schema("R", data.Attribute{Name: "k", Type: data.TString},
		data.Attribute{Name: "v", Type: data.TString})
	rel := data.NewRelation(schema)
	a := rel.Insert("x", data.S("key"), data.S("one"))
	b := rel.Insert("y", data.S("key"), data.S("two"))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	r := must.Rule("R(t) ^ R(s) ^ t.k = s.k -> t.v = s.v", db)
	r.ID = "cr"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unresolved) == 0 {
		t.Error("ambiguous pair must be reported, not guessed")
	}
	if _, ok := eng.Truth().Cell("R", a.EID, "v"); ok {
		t.Error("no fix may be applied to either side")
	}
	if _, ok := eng.Truth().Cell("R", b.EID, "v"); ok {
		t.Error("no fix may be applied to either side")
	}
}

// TestChaseIdempotent: re-running the chase over an already-converged fix
// set deduces nothing new (the fixpoint is stable).
func TestChaseIdempotent(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("a", data.S("X"), data.S("Y"), data.S("addr"), data.S("single"), data.Null(data.TString))
	rel.Insert("b", data.S("X"), data.S("Y"), data.Null(data.TString), data.S("single"), data.Null(data.TString))
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ null(s.home) -> s.home = t.home", env.DB)
	r.ID = "mi"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap1 := eng.Truth().Snapshot()
	applied1 := len(eng.Report().Applied)
	// Second engine seeded with the first's result.
	eng2 := New(env, []*ree.Rule{r}, eng.Truth(), DefaultOptions())
	if _, err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(eng2.Report().Applied) != 0 {
		t.Errorf("re-chase applied %d fixes on a converged fix set", len(eng2.Report().Applied))
	}
	if eng2.Truth().Snapshot() != snap1 {
		t.Error("fixpoint not stable under re-chase")
	}
	_ = applied1
}

func TestFixStrings(t *testing.T) {
	fixes := []Fix{
		{Kind: FixMerge, EID1: "a", EID2: "b", RuleID: "r"},
		{Kind: FixSeparate, EID1: "a", EID2: "b", RuleID: "r"},
		{Kind: FixCell, Rel: "R", Attr: "x", EID1: "a", Value: data.S("v"), RuleID: "r"},
		{Kind: FixOrder, Rel: "R", Attr: "x", TID1: 1, TID2: 2, RuleID: "r"},
		{Kind: FixOrder, Rel: "R", Attr: "x", TID1: 1, TID2: 2, Strict: true, RuleID: "r"},
	}
	for _, f := range fixes {
		if s := f.String(); s == "" || s == "?" {
			t.Errorf("fix renders poorly: %q", s)
		}
	}
}

// TestOracleConfirmsExisting: when the user confirms the already-validated
// value, the conflicting new fix is dropped and nothing changes.
func TestOracleConfirmsExisting(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("A"), data.S("B"), data.S("keep"), data.S("s"), data.Null(data.TString))
	r1 := must.Rule("Person(t) ^ t.LN = 'A' -> t.home = 'keep'", env.DB)
	r1.ID = "a1"
	r2 := must.Rule("Person(t) ^ t.FN = 'B' -> t.home = 'other'", env.DB)
	r2.ID = "a2"
	opts := DefaultOptions()
	opts.Oracle = func(relName, eid, attr string, cands []data.Value) (data.Value, bool) {
		return data.S("keep"), true
	}
	eng := New(env, []*ree.Rule{r1, r2}, truth.NewFixSet(), opts)
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := eng.Truth().Cell("Person", "p1", "home"); v.Str() != "keep" {
		t.Errorf("confirmed value lost: %v", v)
	}
	if rep.OracleCalls == 0 {
		t.Error("oracle must have been consulted")
	}
}

// TestOracleOverridesExisting: the user supplies a third value neither fix
// proposed; it replaces the validated one.
func TestOracleOverridesExisting(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("A"), data.S("B"), data.S("h"), data.S("s"), data.Null(data.TString))
	r1 := must.Rule("Person(t) ^ t.LN = 'A' -> t.status = 'x'", env.DB)
	r1.ID = "a1"
	r2 := must.Rule("Person(t) ^ t.FN = 'B' -> t.status = 'y'", env.DB)
	r2.ID = "a2"
	opts := DefaultOptions()
	opts.Oracle = func(relName, eid, attr string, cands []data.Value) (data.Value, bool) {
		return data.S("expert-answer"), true
	}
	eng := New(env, []*ree.Rule{r1, r2}, truth.NewFixSet(), opts)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if v, _ := eng.Truth().Cell("Person", "p1", "status"); v.Str() != "expert-answer" {
		t.Errorf("oracle override lost: %v", v)
	}
}

// TestOracleAbstains: an oracle that declines leaves the conflict
// unresolved.
func TestOracleAbstains(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("A"), data.S("B"), data.S("h"), data.S("s"), data.Null(data.TString))
	r1 := must.Rule("Person(t) ^ t.LN = 'A' -> t.status = 'x'", env.DB)
	r1.ID = "a1"
	r2 := must.Rule("Person(t) ^ t.FN = 'B' -> t.status = 'y'", env.DB)
	r2.ID = "a2"
	opts := DefaultOptions()
	opts.Oracle = func(relName, eid, attr string, cands []data.Value) (data.Value, bool) {
		return data.Value{}, false
	}
	eng := New(env, []*ree.Rule{r1, r2}, truth.NewFixSet(), opts)
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unresolved) == 0 {
		t.Error("declined conflict must be reported")
	}
}

// TestValuePairValidatedSideWins: when one side is backed by Γ, no model
// or user is needed.
func TestValuePairValidatedSideWins(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("A"), data.S("B"), data.S("right"), data.S("s"), data.Null(data.TString))
	rel.Insert("p2", data.S("A"), data.S("B"), data.S("wrong"), data.S("s"), data.Null(data.TString))
	gamma := truth.NewFixSet()
	gamma.SetCell("Person", "p1", "home", data.S("right"))
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN -> t.home = s.home", env.DB)
	r.ID = "cr"
	eng := New(env, []*ree.Rule{r}, gamma, DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Person", "p2", "home"); !ok || v.Str() != "right" {
		t.Errorf("validated side must win: %v %v", v, ok)
	}
	if rep.OracleCalls != 0 {
		t.Error("no user consultation needed when Γ decides")
	}
}
