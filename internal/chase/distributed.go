package chase

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/exec"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

// The distributed chase is a lockstep-replica design: worker processes
// hold full engine replicas built from the same deterministic pipeline
// (same data, same rules and rule IDs, same trained models, same
// Workers partition count), so only three things ever cross the wire —
// the round preamble (truth journal + last round's accepted fixes +
// active rule IDs), unit index assignments, and per-unit deduction
// buffers. Replaying the journal makes every replica's FixSet
// bit-identical to the coordinator's; the unit list is a deterministic
// function of (rules, partition, FixSet), so unit index i names the
// same work everywhere; and the coordinator's merge consumes buffers
// in unit-index order, which is exactly the serial generation order.
// Deduction reads only the replicated state (FixSet cells/orders via
// env.ValueOf, deterministically trained models), so a distributed run
// is bit-identical to the serial in-process run. Conflict resolution
// state that is NOT replicated (resolvedCells, the oracle memo) is
// only touched by the coordinator-side apply step, never during
// deduction — with the one caveat that resolveValuePair may consult
// Options.Oracle during deduction, so distributed runs require a nil
// (or replica-identical deterministic) oracle.

// RoundPreamble is everything a worker replica needs to reconstruct a
// round's inputs: the truth mutations since the previous preamble, the
// fixes the coordinator accepted last round (source of the dirty set
// and executor invalidations), and the active rule IDs.
type RoundPreamble struct {
	Round    int
	RuleIDs  []string
	Journal  []truth.Op
	Accepted []Fix
	// UseDirty distinguishes "restrict enumeration to the dirty set
	// derived from Accepted" (lazy rounds after the first) from "consider
	// everything" (batch round 0, or Lazy off).
	UseDirty bool
	// Units is the coordinator's work-unit count — a cheap divergence
	// check: a replica whose FollowRound derives a different count is not
	// a replica.
	Units int
}

// UnitOutcome is one executed unit's deduction buffer plus its stats,
// shipped back tagged with the unit index (the generation order).
// Unresolved and ResolvedMI are report state produced during deduction
// (resolveValuePair escalations and M_c-decided imputation conflicts)
// — they live on the worker's engine report and would be lost without
// shipping them; the coordinator folds them back in unit order so the
// distributed report matches the serial one.
type UnitOutcome struct {
	Unit       int
	Fixes      []Fix
	Unresolved []UnresolvedConflict
	ResolvedMI int
	Valuations int
	MLCalls    int
	CostNs     int64
	Node       string
}

// DistRunner is the cluster surface of a distributed round: the plain
// Runner drain/submit contract plus the round barrier (BeginRound) and
// result collection (TakeResults). internal/cluster/remote.Coordinator
// implements it; the engine type-switches on it in runRound.
type DistRunner interface {
	cluster.Runner
	// BeginRound ships the preamble to every live worker and waits for
	// their acks (each ack echoes the worker's derived unit count).
	BeginRound(ctx context.Context, pre RoundPreamble) error
	// TakeResults returns the outcomes received during the last drain and
	// resets the collection buffer.
	TakeResults() []UnitOutcome
}

// unitWork is one (rule, block-combination) work unit of a round.
type unitWork struct {
	rule *ree.Rule
	unit chaseUnit
}

// buildWork expands the ordered active rules into the round's work-unit
// list. Deterministic: rule order is the caller's (sorted by ID), and
// unitsFor enumerates block combinations in index order — so replicas
// derive the identical list and unit index i means the same work on
// every process.
func (e *Engine) buildWork(ordered []*ree.Rule, blocks map[string][][]*data.Tuple) []unitWork {
	var work []unitWork
	for _, r := range ordered {
		for _, u := range e.unitsFor(r, blocks) {
			work = append(work, unitWork{rule: r, unit: u})
		}
	}
	return work
}

// FollowRound prepares a worker replica for one distributed round: it
// replays the coordinator's truth journal, mirrors the coordinator's
// post-merge executor bookkeeping (blocker/embedding invalidation and
// shadow marking for the tuples last round's fixes touched), selects
// the active rules by ID, and derives the round's work-unit list. It
// returns the unit count for the ack. Units are then executed on
// demand via RunFollowUnit.
func (e *Engine) FollowRound(pre RoundPreamble) (int, error) {
	if err := e.u.Replay(pre.Journal); err != nil {
		return 0, err
	}
	if len(pre.Accepted) > 0 {
		ds := e.dirtySet(pre.Accepted)
		e.exec.InvalidateBlockers()
		e.exec.InvalidateTuples(ds)
		e.exec.MarkShadowed(ds)
	}
	var dirty map[string]map[int]bool
	if pre.UseDirty {
		dirty = e.dirtySet(pre.Accepted)
	}
	byID := make(map[string]*ree.Rule, len(e.rules))
	for _, r := range e.rules {
		byID[r.ID] = r
	}
	ordered := make([]*ree.Rule, 0, len(pre.RuleIDs))
	for _, id := range pre.RuleIDs {
		r := byID[id]
		if r == nil {
			return 0, fmt.Errorf("chase follow: unknown rule %q (replica rule set diverged)", id)
		}
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	if e.pred != nil && e.opts.UseBlocking {
		e.precomputePredications(ordered, dirty)
	}
	if e.blocks == nil {
		e.blocks = e.partition()
		e.exec.InvalidatePartitions()
		for _, rel := range e.env.DB.Relations {
			e.exec.RegisterPartition(rel.Tuples)
		}
		for _, bs := range e.blocks {
			for _, b := range bs {
				e.exec.RegisterPartition(b)
			}
		}
	}
	e.followWork = e.buildWork(ordered, e.blocks)
	e.followDirty = dirty
	if pre.Units != len(e.followWork) {
		return len(e.followWork), fmt.Errorf("chase follow: derived %d units, coordinator has %d (replica diverged)",
			len(e.followWork), pre.Units)
	}
	return len(e.followWork), nil
}

// RunFollowUnit executes one unit of the round prepared by FollowRound
// and returns its deduction buffer. Safe to call for any assigned
// index, in any order — units only read the replicated state.
func (e *Engine) RunFollowUnit(ctx context.Context, i int, node string) (UnitOutcome, error) {
	if i < 0 || i >= len(e.followWork) {
		return UnitOutcome{}, fmt.Errorf("chase follow: unit %d out of range (have %d)", i, len(e.followWork))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := e.followWork[i]
	start := time.Now()
	e.mu.Lock()
	preUnresolved := len(e.report.Unresolved)
	preResolvedMI := e.report.ResolvedMI
	e.mu.Unlock()
	var fixes []Fix
	opts := exec.Options{Ctx: ctx, UseBlocking: e.opts.UseBlocking, Dirty: e.followDirty, RestrictVar: w.unit.restrict}
	st, err := e.exec.Run(w.rule, opts, func(h *predicate.Valuation) bool {
		fixes = e.deduceAppend(fixes, w.rule, h)
		return true
	})
	if err != nil {
		return UnitOutcome{}, err
	}
	out := UnitOutcome{
		Unit:       i,
		Fixes:      fixes,
		Valuations: st.Valuations,
		MLCalls:    st.MLCalls,
		CostNs:     int64(time.Since(start)),
		Node:       node,
	}
	e.mu.Lock()
	out.Unresolved = append([]UnresolvedConflict(nil), e.report.Unresolved[preUnresolved:]...)
	out.ResolvedMI = e.report.ResolvedMI - preResolvedMI
	e.mu.Unlock()
	return out, nil
}
