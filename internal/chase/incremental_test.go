package chase

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

// TestRunIncremental exercises the incremental correction mode: after a
// batch chase converges, new dirty tuples arrive (ΔD) and only they (plus
// whatever their fixes activate) are re-chased.
func TestRunIncremental(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("Jones"), data.S("C"), data.S("addr one"), data.S("single"), data.Null(data.TString))
	rel.Insert("p2", data.S("Jones"), data.S("C"), data.Null(data.TString), data.S("single"), data.Null(data.TString))
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ null(s.home) -> s.home = t.home", env.DB)
	r.ID = "mi"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Person", "p2", "home"); !ok || v.Str() != "addr one" {
		t.Fatalf("batch imputation failed: %v %v", v, ok)
	}
	beforeFixes := len(eng.Report().Applied)
	beforeVals := eng.Report().Valuations

	// ΔD: a new namesake with a missing home arrives.
	nt := rel.Insert("p9", data.S("Jones"), data.S("C"), data.Null(data.TString), data.S("single"), data.Null(data.TString))
	dirty := map[string]map[int]bool{"Person": {nt.TID: true}}
	if _, err := eng.RunIncremental(dirty); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Person", "p9", "home"); !ok || v.Str() != "addr one" {
		t.Errorf("incremental imputation failed: %v %v", v, ok)
	}
	if len(eng.Report().Applied) <= beforeFixes {
		t.Error("incremental run must add fixes")
	}
	// The incremental rounds did enumerate (the dirty filter admits pairs
	// touching the new tuple); exec's dirty tests verify the filtering.
	if eng.Report().Valuations == beforeVals {
		t.Error("incremental run must enumerate the dirty tuple's pairs")
	}
	// Empty delta is a no-op.
	if _, err := eng.RunIncremental(nil); err != nil {
		t.Fatal(err)
	}
}
