package chase

import (
	"math/rand"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

// personEnv builds a small Person relation for chase tests.
func personEnv(t *testing.T) (*predicate.Env, *data.Relation) {
	t.Helper()
	schema := must.Schema("Person",
		data.Attribute{Name: "LN", Type: data.TString},
		data.Attribute{Name: "FN", Type: data.TString},
		data.Attribute{Name: "home", Type: data.TString},
		data.Attribute{Name: "status", Type: data.TString},
		data.Attribute{Name: "spouse", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	db := data.NewDatabase()
	db.Add(rel)
	return predicate.NewEnv(db), rel
}

func TestChaseCRFix(t *testing.T) {
	env, rel := personEnv(t)
	// Two tuples of the same entity with different homes; a rule says
	// same-LN+FN tuples share homes. The validated side propagates.
	rel.Insert("p1", data.S("Jones"), data.S("Christine"), data.S("5 Beijing West Road"), data.S("single"), data.Null(data.TString))
	rel.Insert("p2", data.S("Jones"), data.S("Christine"), data.S("5 West Road"), data.S("single"), data.Null(data.TString))
	gamma := truth.NewFixSet()
	gamma.SetCell("Person", "p1", "home", data.S("5 Beijing West Road")) // master data
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN -> t.home = s.home", env.DB)
	r.ID = "r1"
	eng := New(env, []*ree.Rule{r}, gamma, DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Person", "p2", "home"); !ok || v.Str() != "5 Beijing West Road" {
		t.Errorf("home not propagated: %v %v (report %+v)", v, ok, rep)
	}
	if n := eng.Materialize(); n != 1 {
		t.Errorf("materialized %d cells, want 1", n)
	}
	if v, _ := rel.Value(rel.Tuples[1].TID, "home"); v.Str() != "5 Beijing West Road" {
		t.Error("materialize did not write back")
	}
}

func TestChaseERMerge(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p3", data.S("Smith"), data.S("George"), data.S("12 Beijing Road"), data.S("married"), data.S("p2"))
	rel.Insert("p4", data.S("Smith"), data.S("George"), data.S("12 Beijing Road"), data.S("married"), data.S("p2"))
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid", env.DB)
	r.ID = "er1"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Truth().SameEntity("p3", "p4") {
		t.Error("entities not merged")
	}
}

// TestChaseInteractions reproduces the paper's Example 7 end-to-end: ER
// helps CR, CR helps TD, TD helps MI, MI helps ER — all in one unified
// chase.
func TestChaseInteractions(t *testing.T) {
	env, rel := personEnv(t)
	// Mirror of Table 1 (simplified): t1=p1 Jones Christine; t2,t3=p2 Smith
	// Christine (t3 newer home); t4=p3 Smith George; t5=p4 Smith George
	// with nulls.
	rel.Insert("p2", data.S("Smith"), data.S("Christine"), data.S("5 West Road"), data.S("single"), data.S("p3"))
	t3 := rel.Insert("p2", data.S("Smith"), data.S("Christine"), data.S("12 Beijing Road"), data.S("married"), data.S("p4"))
	rel.Insert("p3", data.S("Smith"), data.S("George"), data.S("12 Beijing Road"), data.S("married"), data.S("p2"))
	rel.Insert("p4", data.S("Smith"), data.S("George"), data.Null(data.TString), data.Null(data.TString), data.Null(data.TString))

	rules := []*ree.Rule{
		// ϕ4: TD — status monotone single -> married.
		must.Rule("Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s", env.DB),
		// ϕ5: TD comonotone: status order implies home order (strict form
		// so the latest home is well-defined).
		must.Rule("Person(t) ^ Person(s) ^ t <=[status] s -> t <=[home] s", env.DB),
		// ϕ14: TD helps MI — a spouse's latest home fills the null.
		must.Rule("Person(u) ^ Person(t) ^ Person(s) ^ u.LN = t.LN ^ u.FN = t.FN ^ t.LN = s.LN ^ u <=[home] t ^ t.status = 'married' ^ null(s.home) -> s.home = t.home", env.DB),
		// ϕ15: MI helps ER — same name + home identifies.
		must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid", env.DB),
	}
	for i, r := range rules {
		r.ID = []string{"phi4", "phi5", "phi14", "phi15"}[i]
	}

	eng := New(env, rules, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// TD: the married tuple's home is more current.
	if o := eng.Truth().OrderIfAny("Person", "home"); o == nil || !o.Leq(rel.Tuples[0].TID, t3.TID) {
		t.Error("home order not deduced from status order")
	}
	// MI: George p4's home imputed from the newer address.
	if v, ok := eng.Truth().Cell("Person", "p4", "home"); !ok || v.Str() != "12 Beijing Road" {
		t.Errorf("spouse home not imputed: %v %v; fixes: %v", v, ok, rep.Applied)
	}
	// ER: p3 and p4 identified after MI.
	if !eng.Truth().SameEntity("p3", "p4") {
		t.Errorf("p3/p4 not identified after imputation; fixes: %v", rep.Applied)
	}
	if rep.Rounds < 2 {
		t.Errorf("interactions require multiple rounds, got %d", rep.Rounds)
	}
}

// TestChurchRosser verifies that the chase converges to the same fix set
// regardless of rule order.
func TestChurchRosser(t *testing.T) {
	build := func(order []int) string {
		env, rel := personEnv(t)
		rel.Insert("a", data.S("X"), data.S("Y"), data.S("addr1"), data.S("single"), data.Null(data.TString))
		rel.Insert("b", data.S("X"), data.S("Y"), data.S("addr1"), data.S("married"), data.Null(data.TString))
		rel.Insert("c", data.S("X"), data.S("Y"), data.Null(data.TString), data.S("married"), data.Null(data.TString))
		ruleSrc := []string{
			"Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid",
			"Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s",
			"Person(t) ^ Person(s) ^ t.LN = s.LN ^ null(s.home) -> s.home = t.home",
		}
		var rules []*ree.Rule
		for _, i := range order {
			r := must.Rule(ruleSrc[i], env.DB)
			r.ID = []string{"er", "td", "mi"}[i]
			rules = append(rules, r)
		}
		eng := New(env, rules, truth.NewFixSet(), DefaultOptions())
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Truth().Snapshot()
	}
	base := build([]int{0, 1, 2})
	perms := [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		if got := build(p); got != base {
			t.Errorf("Church-Rosser violated for order %v:\n base=%s\n got=%s", p, base, got)
		}
	}
}

func TestConflictResolutionMI(t *testing.T) {
	env, rel := personEnv(t)
	// Train a correlation model: Smith households live at "12 Beijing Road".
	for i := 0; i < 10; i++ {
		rel.Insert("x", data.S("Smith"), data.S("F"), data.S("12 Beijing Road"), data.S("married"), data.Null(data.TString))
	}
	probe := rel.Insert("p9", data.S("Smith"), data.S("G"), data.Null(data.TString), data.S("married"), data.Null(data.TString))
	_ = probe
	mc := ml.NewCorrelationModel("M_c", rel.Schema)
	mc.Train(rel.Tuples)
	env.Corr["M_c"] = mc
	// Two imputation rules suggest different values; argmax-Mc keeps the
	// correlated one.
	r1 := must.Rule("Person(t) ^ t.LN = 'Smith' ^ null(t.home) -> t.home = 'nowhere'", env.DB)
	r1.ID = "bad"
	r2 := must.Rule("Person(t) ^ t.status = 'married' ^ t.LN = 'Smith' ^ null(t.home) -> t.home = '12 Beijing Road'", env.DB)
	r2.ID = "good"
	eng := New(env, []*ree.Rule{r1, r2}, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Truth().Cell("Person", "p9", "home"); !ok || v.Str() != "12 Beijing Road" {
		t.Errorf("MI conflict resolved wrong: %v (resolved=%d)", v, rep.ResolvedMI)
	}
	if rep.ResolvedMI == 0 {
		t.Error("expected an MI conflict resolution")
	}
}

func TestConflictResolutionTD(t *testing.T) {
	env, rel := personEnv(t)
	a := rel.Insert("a", data.S("X"), data.S("F"), data.S("h1"), data.S("single"), data.Null(data.TString))
	b := rel.Insert("b", data.S("X"), data.S("F"), data.S("h2"), data.S("married"), data.Null(data.TString))
	// Conflicting TD rules: one orders by status (a before b), the other
	// claims the reverse. A ranker favouring the status order decides.
	r1 := must.Rule("Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <[status] s", env.DB)
	r1.ID = "td-good"
	r2 := must.Rule("Person(t) ^ Person(s) ^ t.status = 'married' ^ s.status = 'single' -> t <[status] s", env.DB)
	r2.ID = "td-bad"
	ranker := ml.NewPairRanker("M_rank", rel.Schema)
	ranker.AttrOrderHints["status"] = map[string]int{"single": 0, "married": 1}
	seed := []ml.RankedPair{{Older: a, Newer: b, Attr: "status", Leq: true}}
	ml.TrainRanker(ranker, "Person", rel.Tuples, []string{"status"}, seed, []ml.CurrencyConstraint{
		ml.NewMonotoneValueConstraint(rel.Schema, "status", []string{"single", "married"}),
	}, 2)
	env.Ranker = ranker

	eng := New(env, []*ree.Rule{r1, r2}, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	o := eng.Truth().OrderIfAny("Person", "status")
	if o == nil || !o.Less(a.TID, b.TID) {
		t.Errorf("TD conflict resolved wrong (resolvedTD=%d)", rep.ResolvedTD)
	}
	if o.Less(b.TID, a.TID) {
		t.Error("losing direction must not survive")
	}
	if rep.ResolvedTD == 0 {
		t.Error("expected a TD conflict resolution")
	}
}

func TestUnresolvedConflictGoesToUser(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("A"), data.S("B"), data.S("h1"), data.S("s"), data.Null(data.TString))
	// Two CR rules assign different constants; no correlation model is
	// registered, so the conflict is reported, not resolved.
	r1 := must.Rule("Person(t) ^ t.LN = 'A' -> t.home = 'x'", env.DB)
	r1.ID = "c1"
	r2 := must.Rule("Person(t) ^ t.FN = 'B' -> t.home = 'y'", env.DB)
	r2.ID = "c2"
	eng := New(env, []*ree.Rule{r1, r2}, truth.NewFixSet(), DefaultOptions())
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unresolved) == 0 {
		t.Error("expected an unresolved conflict for the user")
	}
}

func TestModesAgreeOnF1ButNotCost(t *testing.T) {
	mk := func(mode Mode) (*Report, string) {
		env, rel := personEnv(t)
		rel.Insert("a", data.S("X"), data.S("Y"), data.S("addr1"), data.S("single"), data.Null(data.TString))
		rel.Insert("b", data.S("X"), data.S("Y"), data.S("addr1"), data.S("married"), data.Null(data.TString))
		rel.Insert("c", data.S("X"), data.S("Y"), data.Null(data.TString), data.S("married"), data.Null(data.TString))
		rules := []*ree.Rule{
			must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid", env.DB),
			must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ null(s.home) -> s.home = t.home", env.DB),
		}
		rules[0].ID, rules[1].ID = "er", "mi"
		o := DefaultOptions()
		o.Mode = mode
		eng := New(env, rules, truth.NewFixSet(), o)
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep, eng.Truth().Snapshot()
	}
	_, unified := mk(Unified)
	_, seq := mk(Sequential)
	if unified != seq {
		t.Errorf("Rock and Rock_seq must converge to the same result:\n u=%s\n s=%s", unified, seq)
	}
	// Single pass misses interaction-dependent fixes: here MI runs after
	// ER once; c's home gets filled (MI) but the ER merge enabled by it
	// never re-runs.
	_, noC := mk(SinglePass)
	if noC == unified {
		t.Log("single-pass happened to converge on this tiny input (acceptable)")
	}
}

func TestLazyMatchesNaive(t *testing.T) {
	run := func(lazy bool) (string, int) {
		env, rel := personEnv(t)
		rng := rand.New(rand.NewSource(5))
		homes := []string{"addr one", "addr two", "addr three", ""}
		for i := 0; i < 40; i++ {
			h := homes[rng.Intn(len(homes))]
			var hv data.Value
			if h == "" {
				hv = data.Null(data.TString)
			} else {
				hv = data.S(h)
			}
			rel.Insert(
				"e"+string(rune('a'+i%17)),
				data.S("LN"+string(rune('a'+i%5))),
				data.S("FN"+string(rune('a'+i%3))),
				hv,
				data.S([]string{"single", "married"}[i%2]),
				data.Null(data.TString),
			)
		}
		rules := []*ree.Rule{
			must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ t.home = s.home -> t.eid = s.eid", env.DB),
			must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ null(s.home) -> s.home = t.home", env.DB),
			must.Rule("Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s", env.DB),
		}
		for i, r := range rules {
			r.ID = []string{"er", "mi", "td"}[i]
		}
		o := DefaultOptions()
		o.Lazy = lazy
		eng := New(env, rules, truth.NewFixSet(), o)
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Truth().Snapshot(), rep.Valuations
	}
	lazySnap, lazyVals := run(true)
	naiveSnap, naiveVals := run(false)
	if lazySnap != naiveSnap {
		t.Error("lazy activation changed the chase result")
	}
	if lazyVals > naiveVals {
		t.Errorf("lazy should not enumerate more: lazy=%d naive=%d", lazyVals, naiveVals)
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	env, rel := personEnv(t)
	rel.Insert("p1", data.S("A"), data.S("B"), data.Null(data.TString), data.S("s"), data.Null(data.TString))
	r := must.Rule("Person(t) ^ null(t.home) -> t.home = 'somewhere'", env.DB)
	r.ID = "mi"
	eng := New(env, []*ree.Rule{r}, truth.NewFixSet(), DefaultOptions())
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n := eng.Materialize(); n != 1 {
		t.Errorf("first materialize: %d", n)
	}
	if n := eng.Materialize(); n != 0 {
		t.Errorf("second materialize must be a no-op: %d", n)
	}
}
