// External test package: fault-tolerance behaviour of the chase —
// cooperative cancellation (partial reports, graceful degradation,
// resumability) and recovery from injected unit panics and node kills.
package chase_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/workload"
)

func logisticsBench(workers int) *baselines.Bench {
	return baselines.NewBench(workload.Logistics(workload.Config{N: 150, Seed: 11}), workers)
}

func faultOpts(b *baselines.Bench, workers int, parallel bool) chase.Options {
	opts := chase.DefaultOptions()
	opts.Workers = workers
	opts.Parallel = parallel
	opts.Oracle = b.GoldOracle()
	opts.EIDRefs = b.DS.EIDRefs
	return opts
}

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of polls — deterministic mid-run cancellation, unlike a
// timer. Done returns nil (never closes): the serial chase and the
// executor only poll Err, which is exactly the path under test.
type countdownCtx struct {
	context.Context
	remaining int64
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.remaining, -1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

// TestPreCancelledRunIsPartial: a context cancelled before RunCtx returns
// an empty partial report, not an error.
func TestPreCancelledRunIsPartial(t *testing.T) {
	b := logisticsBench(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := chase.New(b.Env, b.Rules, b.DS.Gamma, faultOpts(b, 4, true))
	rep, err := eng.RunCtx(ctx)
	if err != nil {
		t.Fatalf("cancelled run must degrade, not fail: %v", err)
	}
	if !rep.Partial {
		t.Fatal("cancelled run must report Partial")
	}
	if len(rep.Applied) != 0 {
		t.Fatalf("no round ran, yet %d fixes applied", len(rep.Applied))
	}
}

// TestCancelMidRunResumesToFullFixSet: cancelling after a bounded number
// of context polls yields a partial run whose accumulated certain fixes,
// used as the ground truth of a fresh engine, converge to the exact truth
// snapshot of an uninterrupted run.
func TestCancelMidRunResumesToFullFixSet(t *testing.T) {
	b := logisticsBench(1)

	clean := chase.New(b.Env, b.Rules, b.DS.Gamma, faultOpts(b, 1, false))
	cleanRep, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Truth().Snapshot()

	sawPartial := false
	for _, polls := range []int64{3, 40, 400} {
		eng := chase.New(b.Env, b.Rules, b.DS.Gamma, faultOpts(b, 1, false))
		rep, err := eng.RunCtx(&countdownCtx{Context: context.Background(), remaining: polls})
		if err != nil {
			t.Fatalf("polls=%d: cancelled run must degrade, not fail: %v", polls, err)
		}
		if !rep.Partial {
			// The budget outlasted the whole run; nothing was cut short.
			if got := eng.Truth().Snapshot(); got != want {
				t.Fatalf("polls=%d: complete run diverged from clean run", polls)
			}
			continue
		}
		sawPartial = true
		if len(rep.Applied) > len(cleanRep.Applied) {
			t.Fatalf("polls=%d: partial run applied %d fixes, clean run only %d",
				polls, len(rep.Applied), len(cleanRep.Applied))
		}
		resumed := chase.New(b.Env, b.Rules, eng.Truth(), faultOpts(b, 1, false))
		if _, err := resumed.Run(); err != nil {
			t.Fatalf("polls=%d: resume failed: %v", polls, err)
		}
		if got := resumed.Truth().Snapshot(); got != want {
			t.Fatalf("polls=%d: resumed truth diverged from uninterrupted run", polls)
		}
	}
	if !sawPartial {
		t.Fatal("no poll budget produced a partial run — cancellation never bit")
	}
}

// TestDeadlineCancelParallelIsPartialNotError: a deadline that expires
// mid-drain on the parallel path ends the run with Partial=true and a nil
// error, and the chase.cancelled counter records it.
func TestDeadlineCancelParallelIsPartialNotError(t *testing.T) {
	b := baselines.NewBench(workload.Logistics(workload.Config{N: 600, Seed: 11}), 4)
	reg := obs.New()
	opts := faultOpts(b, 4, true)
	opts.Obs = reg
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	eng := chase.New(b.Env, b.Rules, b.DS.Gamma, opts)
	rep, err := eng.RunCtx(ctx)
	if err != nil {
		t.Fatalf("deadline must degrade, not fail: %v", err)
	}
	if !rep.Partial {
		t.Skip("run finished inside the deadline on this machine")
	}
	if reg.CounterValue("chase.cancelled") == 0 {
		t.Fatal("partial deadline run must increment chase.cancelled")
	}
}

// TestFaultyChaseMatchesCleanChase is the in-tree counterpart of the
// rockbench faults experiment: with unit panics injected on first attempt
// and a node killed mid-drain, bounded retry plus reassignment must land
// on the exact fix set of a fault-free run.
func TestFaultyChaseMatchesCleanChase(t *testing.T) {
	clean := logisticsBench(4)
	cleanEng := chase.New(clean.Env, clean.Rules, clean.DS.Gamma, faultOpts(clean, 4, true))
	cleanRep, err := cleanEng.Run()
	if err != nil {
		t.Fatal(err)
	}

	faulty := logisticsBench(4)
	reg := obs.New()
	opts := faultOpts(faulty, 4, true)
	opts.Obs = reg
	// Deterministic kill: without stealing every worker drains exactly its
	// own queue, so the ring owner of a block-combination part that every
	// two-atom rule emits is guaranteed to execute at least two units. The
	// chase builds its ring exactly like cluster.New(4), so the owner can
	// be computed here.
	opts.Steal = false
	victim := cluster.New(4).Ring.Owner("Order-Order/b0-0")
	inj := cluster.NewFaultInjector()
	inj.PanicUnit(0, 1)
	inj.PanicUnit(2, 1)
	inj.PanicUnit(9, 1)
	inj.KillNode(victim, 2)
	opts.Faults = inj
	eng := chase.New(faulty.Env, faulty.Rules, faulty.DS.Gamma, opts)
	rep, err := eng.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatalf("recovery failed: faulty run partial with %d unit errors", len(rep.UnitErrors))
	}
	if got, want := eng.Truth().Snapshot(), cleanEng.Truth().Snapshot(); got != want {
		t.Fatal("faulty run's truth diverged from fault-free run")
	}
	if len(rep.Applied) != len(cleanRep.Applied) {
		t.Fatalf("applied-fix counts diverge: faulty %d vs clean %d", len(rep.Applied), len(cleanRep.Applied))
	}
	if reg.CounterValue("chase.unit_panics") == 0 {
		t.Fatal("injection never fired — the test proved nothing")
	}
	if reg.CounterValue("chase.retries") == 0 {
		t.Fatal("no retries recorded despite injected panics")
	}
	if reg.CounterValue("chase.node_killed") != 1 {
		t.Fatalf("expected exactly one node kill, got %d", reg.CounterValue("chase.node_killed"))
	}
}
