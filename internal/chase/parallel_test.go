// External test package: exercises the parallel chase through the same
// workload + bench wiring the experiments use, without an import cycle.
package chase_test

import (
	"testing"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/workload"
)

// TestParallelChaseDeterminism pins the two guarantees of the parallel
// round, per workload over one shared trained environment:
//
//  1. Running the same work units on 8 worker goroutines is bit-identical
//     to running them serially — same fix set AND same report counters
//     (per-unit buffers merge in generation order, oracle questions are
//     memoised order-independently).
//  2. By Church-Rosser, the Workers=8 fix set equals the Workers=1 fix
//     set even though the HyperCube partitioning generates entirely
//     different work units (counters legitimately differ there: block
//     combinations re-enumerate boundary valuations).
func TestParallelChaseDeterminism(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *workload.Dataset
	}{
		{"ecommerce", workload.Ecommerce},
		{"logistics", func() *workload.Dataset { return workload.Logistics(workload.Config{N: 120, Seed: 7}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bench := baselines.NewBench(tc.mk(), 8)
			run := func(workers int, parallel, predication bool) (string, *chase.Report) {
				opts := chase.DefaultOptions()
				opts.Workers = workers
				opts.Parallel = parallel
				opts.Predication = predication
				opts.Oracle = bench.GoldOracle()
				opts.EIDRefs = bench.DS.EIDRefs
				eng := chase.New(bench.Env, bench.Rules, bench.DS.Gamma, opts)
				rep, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return eng.Truth().Snapshot(), rep
			}

			// The §5.4 predication layer is pure memoisation, so the full
			// matrix — workers × parallel × predication — must land on one
			// fix set.
			var baseSnap string
			for _, predication := range []bool{true, false} {
				w1Snap, _ := run(1, false, predication)
				w8SerialSnap, w8SerialRep := run(8, false, predication)
				w8ParSnap, w8ParRep := run(8, true, predication)

				if w8ParSnap != w8SerialSnap {
					t.Errorf("predication=%t: parallel round differs from serial round at Workers=8:\nserial=%s\nparallel=%s",
						predication, w8SerialSnap, w8ParSnap)
				}
				if w8ParSnap != w1Snap {
					t.Errorf("predication=%t: Workers=8 fix set differs from Workers=1:\nW1=%s\nW8=%s",
						predication, w1Snap, w8ParSnap)
				}
				if w8ParRep.Valuations != w8SerialRep.Valuations {
					t.Errorf("predication=%t: parallel round changed enumeration: %d valuations vs %d serial",
						predication, w8ParRep.Valuations, w8SerialRep.Valuations)
				}
				if w8ParRep.OracleCalls != w8SerialRep.OracleCalls {
					t.Errorf("predication=%t: parallel round changed oracle effort: %d calls vs %d serial",
						predication, w8ParRep.OracleCalls, w8SerialRep.OracleCalls)
				}
				if w8ParRep.Rounds != w8SerialRep.Rounds {
					t.Errorf("predication=%t: parallel round changed convergence: %d rounds vs %d serial",
						predication, w8ParRep.Rounds, w8SerialRep.Rounds)
				}
				if baseSnap == "" {
					baseSnap = w8ParSnap
				} else if w8ParSnap != baseSnap {
					t.Errorf("fix set depends on predication setting:\non=%s\noff=%s", baseSnap, w8ParSnap)
				}
			}
		})
	}
}
