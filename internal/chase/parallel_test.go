// External test package: exercises the parallel chase through the same
// workload + bench wiring the experiments use, without an import cycle.
package chase_test

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
	"github.com/rockclean/rock/internal/workload"
)

// TestParallelChaseDeterminism pins the two guarantees of the parallel
// round, per workload over one shared trained environment:
//
//  1. Running the same work units on 8 worker goroutines is bit-identical
//     to running them serially — same fix set AND same report counters
//     (per-unit buffers merge in generation order, oracle questions are
//     memoised order-independently).
//  2. By Church-Rosser, the Workers=8 fix set equals the Workers=1 fix
//     set even though the HyperCube partitioning generates entirely
//     different work units (counters legitimately differ there: block
//     combinations re-enumerate boundary valuations).
func TestParallelChaseDeterminism(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *workload.Dataset
	}{
		{"ecommerce", workload.Ecommerce},
		{"logistics", func() *workload.Dataset { return workload.Logistics(workload.Config{N: 120, Seed: 7}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bench := baselines.NewBench(tc.mk(), 8)
			run := func(workers int, parallel, predication bool) (string, *chase.Report) {
				opts := chase.DefaultOptions()
				opts.Workers = workers
				opts.Parallel = parallel
				opts.Predication = predication
				opts.Oracle = bench.GoldOracle()
				opts.EIDRefs = bench.DS.EIDRefs
				eng := chase.New(bench.Env, bench.Rules, bench.DS.Gamma, opts)
				rep, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return eng.Truth().Snapshot(), rep
			}

			// The §5.4 predication layer is pure memoisation, so the full
			// matrix — workers × parallel × predication — must land on one
			// fix set.
			var baseSnap string
			for _, predication := range []bool{true, false} {
				w1Snap, _ := run(1, false, predication)
				w8SerialSnap, w8SerialRep := run(8, false, predication)
				w8ParSnap, w8ParRep := run(8, true, predication)

				if w8ParSnap != w8SerialSnap {
					t.Errorf("predication=%t: parallel round differs from serial round at Workers=8:\nserial=%s\nparallel=%s",
						predication, w8SerialSnap, w8ParSnap)
				}
				if w8ParSnap != w1Snap {
					t.Errorf("predication=%t: Workers=8 fix set differs from Workers=1:\nW1=%s\nW8=%s",
						predication, w1Snap, w8ParSnap)
				}
				if w8ParRep.Valuations != w8SerialRep.Valuations {
					t.Errorf("predication=%t: parallel round changed enumeration: %d valuations vs %d serial",
						predication, w8ParRep.Valuations, w8SerialRep.Valuations)
				}
				if w8ParRep.OracleCalls != w8SerialRep.OracleCalls {
					t.Errorf("predication=%t: parallel round changed oracle effort: %d calls vs %d serial",
						predication, w8ParRep.OracleCalls, w8SerialRep.OracleCalls)
				}
				if w8ParRep.Rounds != w8SerialRep.Rounds {
					t.Errorf("predication=%t: parallel round changed convergence: %d rounds vs %d serial",
						predication, w8ParRep.Rounds, w8SerialRep.Rounds)
				}
				if baseSnap == "" {
					baseSnap = w8ParSnap
				} else if w8ParSnap != baseSnap {
					t.Errorf("fix set depends on predication setting:\non=%s\noff=%s", baseSnap, w8ParSnap)
				}
			}
		})
	}
}

// TestIncrementalMatchesBatchMatrix pins the incremental mode's dirty-set
// propagation across rounds: for every combination of Parallel ×
// Predication × Steal, chasing the base data and then RunIncremental over
// ΔD must land on exactly the fix set a batch chase over base+ΔD
// produces. ΔD is built so fixes cascade (imputation in round 1 enables
// an ER merge in round 2), exercising activation across rounds.
func TestIncrementalMatchesBatchMatrix(t *testing.T) {
	type row struct {
		eid    string
		values []data.Value
	}
	mkRow := func(eid, ln, fn, home, status string) row {
		h := data.Null(data.TString)
		if home != "" {
			h = data.S(home)
		}
		return row{eid, []data.Value{data.S(ln), data.S(fn), h, data.S(status), data.Null(data.TString)}}
	}
	base := []row{
		mkRow("p1", "Jones", "C", "addr one", "single"),
		mkRow("p2", "Jones", "C", "", "single"),
		mkRow("p3", "Brown", "B", "addr nine", "married"),
	}
	delta := []row{
		mkRow("p9", "Jones", "C", "", "single"),
		mkRow("p10", "Smith", "A", "addr two", "single"),
		mkRow("p11", "Smith", "A", "", "single"),
	}
	mkEnv := func() (*predicate.Env, *data.Relation) {
		schema := must.Schema("Person",
			data.Attribute{Name: "LN", Type: data.TString},
			data.Attribute{Name: "FN", Type: data.TString},
			data.Attribute{Name: "home", Type: data.TString},
			data.Attribute{Name: "status", Type: data.TString},
			data.Attribute{Name: "spouse", Type: data.TString},
		)
		rel := data.NewRelation(schema)
		db := data.NewDatabase()
		db.Add(rel)
		return predicate.NewEnv(db), rel
	}
	mkRules := func(db *data.Database) []*ree.Rule {
		mi := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.FN = s.FN ^ null(s.home) -> s.home = t.home", db)
		mi.ID = "mi"
		er := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.home = s.home -> t.eid = s.eid", db)
		er.ID = "er"
		return []*ree.Rule{mi, er}
	}
	for _, parallel := range []bool{false, true} {
		for _, predication := range []bool{false, true} {
			for _, steal := range []bool{false, true} {
				name := fmt.Sprintf("parallel=%t/predication=%t/steal=%t", parallel, predication, steal)
				t.Run(name, func(t *testing.T) {
					opts := chase.DefaultOptions()
					opts.Workers = 4
					opts.Parallel = parallel
					opts.Predication = predication
					opts.Steal = steal

					// Batch reference over base + ΔD.
					envB, relB := mkEnv()
					for _, r := range append(append([]row(nil), base...), delta...) {
						relB.Insert(r.eid, r.values...)
					}
					engB := chase.New(envB, mkRules(envB.DB), truth.NewFixSet(), opts)
					if _, err := engB.Run(); err != nil {
						t.Fatal(err)
					}

					// Base chase, then incremental over ΔD.
					envI, relI := mkEnv()
					for _, r := range base {
						relI.Insert(r.eid, r.values...)
					}
					engI := chase.New(envI, mkRules(envI.DB), truth.NewFixSet(), opts)
					if _, err := engI.Run(); err != nil {
						t.Fatal(err)
					}
					dirty := map[string]map[int]bool{"Person": {}}
					for _, r := range delta {
						nt := relI.Insert(r.eid, r.values...)
						dirty["Person"][nt.TID] = true
					}
					if _, err := engI.RunIncremental(dirty); err != nil {
						t.Fatal(err)
					}

					if got, want := engI.Truth().Snapshot(), engB.Truth().Snapshot(); got != want {
						t.Errorf("incremental fix set differs from batch:\nbatch=%s\nincremental=%s", want, got)
					}
					// The cascade actually happened: p9 imputed, Smiths merged.
					if v, ok := engI.Truth().Cell("Person", "p9", "home"); !ok || v.Str() != "addr one" {
						t.Errorf("incremental imputation missing: %v %v", v, ok)
					}
					if !engI.Truth().SameEntity("p10", "p11") {
						t.Error("incremental run must merge p10/p11 after imputing p11.home")
					}
				})
			}
		}
	}
}

// TestObsMetricsAgreeWithReport pins the "views over the registry"
// contract: the scalar Report fields, the fix counts, the per-round trace
// and the registry counters are one consistent dataset.
func TestObsMetricsAgreeWithReport(t *testing.T) {
	bench := baselines.NewBench(workload.Ecommerce(), 8)
	reg := obs.New()
	opts := chase.DefaultOptions()
	opts.Workers = 8
	opts.Obs = reg
	opts.Oracle = bench.GoldOracle()
	opts.EIDRefs = bench.DS.EIDRefs
	eng := chase.New(bench.Env, bench.Rules, bench.DS.Gamma, opts)
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics.Counters
	if m == nil {
		t.Fatal("Report.Metrics not populated")
	}
	checks := []struct {
		name string
		got  uint64
		want int
	}{
		{"chase.rounds", m["chase.rounds"], rep.Rounds},
		{"chase.valuations", m["chase.valuations"], rep.Valuations},
		{"chase.ml_calls", m["chase.ml_calls"], rep.MLCalls},
		{"chase.fixes.applied", m["chase.fixes.applied"], len(rep.Applied)},
	}
	for _, c := range checks {
		if c.got != uint64(c.want) {
			t.Errorf("%s = %d, but Report says %d", c.name, c.got, c.want)
		}
	}
	if m["chase.wall_ns"] != uint64(rep.WallClock) {
		t.Errorf("chase.wall_ns = %d, but Report.WallClock = %d", m["chase.wall_ns"], rep.WallClock)
	}
	if m["chase.sim_makespan_ns"] != uint64(rep.SimMakespan) {
		t.Errorf("chase.sim_makespan_ns = %d, but Report.SimMakespan = %d", m["chase.sim_makespan_ns"], rep.SimMakespan)
	}
	// The engine recorded into the registry the caller passed in.
	if reg.CounterValue("chase.rounds") != uint64(rep.Rounds) {
		t.Error("Options.Obs registry not the one the engine recorded into")
	}
	// Per-round trace: node counts sum to the round's submitted units, and
	// the trace totals reconcile with the counters.
	if len(rep.Trace) != rep.Rounds {
		t.Fatalf("trace has %d rows for %d rounds", len(rep.Trace), rep.Rounds)
	}
	var units, applied, vals uint64
	for _, tr := range rep.Trace {
		sum := 0
		for _, n := range tr.NodeUnits {
			sum += n
		}
		if sum != tr.Units {
			t.Errorf("round %d: node units sum to %d, want %d (%v)", tr.Round, sum, tr.Units, tr.NodeUnits)
		}
		units += uint64(tr.Units)
		applied += uint64(tr.Applied)
		vals += uint64(tr.Valuations)
	}
	if units != m["chase.units"] {
		t.Errorf("trace units total %d, counter %d", units, m["chase.units"])
	}
	if applied != m["chase.fixes.applied"] {
		t.Errorf("trace applied total %d, counter %d", applied, m["chase.fixes.applied"])
	}
	if vals != m["chase.valuations"] {
		t.Errorf("trace valuations total %d, counter %d", vals, m["chase.valuations"])
	}
	// The node counters match the trace per node.
	perNode := map[string]uint64{}
	for _, tr := range rep.Trace {
		for n, c := range tr.NodeUnits {
			perNode[n] += uint64(c)
		}
	}
	for n, c := range perNode {
		if got := m["chase.node."+n+".units"]; got != c {
			t.Errorf("chase.node.%s.units = %d, trace says %d", n, got, c)
		}
	}
}

// TestChaseStealAblation is the steal-plumbing regression: the chase used
// to hardcode Steal=true into its drains, so the work-stealing ablation
// silently measured nothing. With Steal=false the chase-phase steal
// counter must be exactly zero, and the fix set must not change.
func TestChaseStealAblation(t *testing.T) {
	ds := func() *workload.Dataset { return workload.Logistics(workload.Config{N: 120, Seed: 7}) }
	run := func(steal bool) (string, *obs.Registry) {
		bench := baselines.NewBench(ds(), 8)
		reg := obs.New()
		opts := chase.DefaultOptions()
		opts.Workers = 8
		opts.Steal = steal
		opts.Obs = reg
		opts.Oracle = bench.GoldOracle()
		opts.EIDRefs = bench.DS.EIDRefs
		eng := chase.New(bench.Env, bench.Rules, bench.DS.Gamma, opts)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Truth().Snapshot(), reg
	}
	onSnap, _ := run(true)
	offSnap, offReg := run(false)
	if got := offReg.CounterValue("chase.steals"); got != 0 {
		t.Errorf("Steal=false chase recorded %d steals, want 0", got)
	}
	if onSnap != offSnap {
		t.Errorf("fix set depends on stealing:\non=%s\noff=%s", onSnap, offSnap)
	}
}
