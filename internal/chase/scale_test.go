// External test package: the vectorized hot path under the full chase.
// The scale workload (null-imputing equality self-join plus constant
// pushdown, no ML) drives the posting-join and selection kernels above
// the interning gate; every cell of the workers × parallel matrix must
// land on the bit-identical fix-set snapshot, and a starved memory
// budget must spill columns to disk without changing a single fix.
package chase_test

import (
	"os"
	"strconv"
	"testing"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/workload"
)

const scaleTestN = 6000 // above the interning gate (4096 tuples)

func runScale(t *testing.T, workers int, parallel bool, budget int64, reg *obs.Registry) string {
	t.Helper()
	ds := workload.Scale(workload.Config{N: scaleTestN, Seed: 77})
	opts := chase.DefaultOptions()
	opts.Workers = workers
	opts.Parallel = parallel
	opts.UseBlocking = false
	opts.Predication = false
	opts.MemBudget = budget
	if budget > 0 {
		opts.SpillDir = t.TempDir()
	}
	opts.Obs = reg
	eng := chase.New(predicate.NewEnv(ds.DB), ds.Rules, ds.Gamma, opts)
	rep, err := eng.Run()
	if err != nil {
		t.Fatalf("workers=%d parallel=%v budget=%d: %v", workers, parallel, budget, err)
	}
	if len(rep.Applied) == 0 {
		t.Fatalf("workers=%d parallel=%v budget=%d: chase applied no fixes", workers, parallel, budget)
	}
	return eng.Truth().Snapshot()
}

func TestScaleWorkloadDeterministicAcrossMatrix(t *testing.T) {
	want := runScale(t, 1, false, 0, nil)
	for _, workers := range []int{1, 4} {
		for _, parallel := range []bool{false, true} {
			if workers == 1 && !parallel {
				continue // the reference cell
			}
			got := runScale(t, workers, parallel, 0, nil)
			if got != want {
				t.Errorf("workers=%d parallel=%v: fix-set snapshot diverges from the serial reference", workers, parallel)
			}
		}
	}
}

func TestScaleWorkloadSpillPreservesFixes(t *testing.T) {
	want := runScale(t, 4, true, 0, nil)
	reg := obs.New()
	got := runScale(t, 4, true, 1, reg) // 1-byte budget: every column spills
	if got != want {
		t.Fatal("spilled run diverges from the resident run")
	}
	if reg.CounterValue("exec.spill.columns") == 0 {
		t.Fatal("a 1-byte budget must force columns onto disk")
	}
}

// BenchmarkScaleChase times one full chase over the scale workload —
// the wall-clock the `-exp scale` curve reports, minus data generation.
func BenchmarkScaleChase(b *testing.B) {
	n := scaleTestN
	if s := os.Getenv("SCALE_BENCH_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			n = v
		}
	}
	ds := workload.Scale(workload.Config{N: n, Seed: 77})
	opts := chase.DefaultOptions()
	opts.Workers = 4
	opts.UseBlocking = false
	opts.Predication = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := predicate.NewEnv(ds.DB.Clone())
		eng := chase.New(env, ds.Rules, ds.Gamma, opts)
		b.StartTimer()
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
