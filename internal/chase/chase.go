// Package chase implements Rock's error-correction engine (paper §4): it
// chases the data with a set Σ of REE++s and a collection Γ of ground
// truth, deducing fixes U = (E=, E⪯) such that every fix is a logical
// consequence of Σ and Γ ("certain fixes"). It conducts ER, CR, MI and TD
// in the same process, exploiting their interactions, and resolves
// conflicts with the learning-based strategies of §4.2: M_rank confidence
// for temporal-order conflicts, argmax-M_c for imputation conflicts, and
// report-to-user for ER/CR conflicts.
package chase

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/exec"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
)

// Mode selects how the four cleaning tasks are scheduled.
type Mode int

// Scheduling modes corresponding to Rock and its ablation variants
// (paper §6, baselines): Unified is Rock proper; Sequential is Rock_seq
// (cycle ER→CR→MI→TD until no change); SinglePass is Rock_noC (each task
// once, no recursion).
const (
	Unified Mode = iota
	Sequential
	SinglePass
)

// Options tunes a chase run.
type Options struct {
	Mode Mode
	// MaxRounds bounds the fixpoint loop (safety valve; 0 = default 100).
	MaxRounds int
	// Workers is the cluster size: it sets the HyperCube block count, the
	// simulated-makespan parallelism (Report.SimMakespan) and — with
	// Parallel — the size of the real goroutine worker pool.
	Workers int
	// Parallel executes each round's work units on a pool of Workers
	// goroutines (with work stealing when Steal is set) instead of a
	// serial loop. The result
	// is bit-identical to serial execution: units enumerate against the
	// immutable start-of-round fix set, buffer their candidate fixes, and
	// the buffers merge in deterministic (rule ID, unit part) order before
	// the serial apply step.
	Parallel bool
	// Steal enables work stealing between the pool's workers during a
	// parallel round, and drives the stolen-overlap model of the
	// simulated makespan (Report.SimMakespan). On in Rock proper; the
	// work-stealing ablation (paper §5.2/§6) turns it off for the chase
	// phase exactly as detect.Options.Steal does for detection. The
	// chase result is identical either way — stealing only re-assigns
	// units between workers — which the obs steal counters verify.
	Steal bool
	// Lazy enables the lazy-activation machinery (rule activation by fix
	// kind + dirty-tuple filtering). Off, every round re-enumerates every
	// rule over all data — the ablation baseline (DESIGN.md §ablations).
	Lazy bool
	// UseBlocking enables LSH blocking for ML predicates.
	UseBlocking bool
	// Predication enables the precomputed ML predication layer (paper
	// §5.4): per-tuple embeddings cache in a versioned store invalidated
	// at tuple granularity, model predictions serve from a sharded
	// bounded cache, and each round batch-scores its candidate (model,
	// pair) predications across the worker pool before work units fan
	// out — so ML access during deduction is read-mostly. Results are
	// bit-identical with the layer on or off (the caches memoise pure
	// computations); Report.Predication carries the cache counters.
	Predication bool
	// Pred, when set (and Predication is on), is a shared predication
	// layer instead of an engine-private one — the pipeline passes the
	// layer its detection phase already filled, so chase rounds serve
	// detection-scored pairs as hits. The embedding store is still
	// engine-scoped in effect: entries key by (tuple, version) and the
	// engine invalidates versions as it applies fixes.
	Pred *ml.Predication
	// Oracle simulates the user to whom Rock presents ER/CR conflicts
	// (paper §4.2, case (1)): given the conflicting cell and the candidate
	// values, it returns the correct value. Nil leaves such conflicts
	// unresolved (reported in the run summary). Every consultation counts
	// toward Report.OracleCalls — the manual-effort metric the paper's
	// bank client tracks ("reduces manual efforts by 8×").
	Oracle func(rel, eid, attr string, candidates []data.Value) (data.Value, bool)
	// Obs receives every metric and trace event the engine records
	// (counters "chase.*", histograms, the per-round event log). Nil
	// makes the engine create a private registry, so Report fields —
	// which are views over the registry — are always backed by one.
	// Share a registry across detection and chase (as rock.Pipeline
	// does) to get one run-wide metrics dump.
	Obs *obs.Registry
	// MemBudget caps the resident bytes of the executor's interned
	// columns (dictionaries, id vectors, posting lists). Once a build
	// would exceed it, later columns spill to flat on-disk blocks read
	// back through mmap (or chunked reads), so the 10⁷–10⁸ tuple scale
	// runs without holding every column in memory. 0 disables spilling.
	MemBudget int64
	// SpillDir receives the spill block files (empty: the system temp
	// directory). Files are unlinked at creation, so space reclaims
	// automatically even on crash.
	SpillDir string
	// EIDRefs declares foreign entity references: "Rel.Attr" keys whose
	// values are EIDs of another relation's entities. A rule consequence
	// equating two such attributes identifies the referenced entities —
	// the paper's ϕ1 ("t.pid = s.pid ... identifies two persons") — rather
	// than overwriting either value.
	EIDRefs map[string]bool
	// MaxRetries bounds how many times a panicking work unit is retried
	// (reassigned to a different node when one is alive) before it is
	// given up and surfaced on Report.UnitErrors. Fault tolerance for the
	// simulated cluster; see cluster.Options.MaxRetries.
	MaxRetries int
	// RetryBackoff is the base backoff before a unit retry (attempt k
	// sleeps k*RetryBackoff).
	RetryBackoff time.Duration
	// Faults, when non-nil, injects failures into every parallel round's
	// drain (tests and the rockbench "faults" experiment only).
	Faults *cluster.FaultInjector
	// Cluster, when non-nil, replaces the engine-private in-process worker
	// pool with a caller-supplied one. When it additionally implements
	// DistRunner (the remote coordinator does), rounds run distributed:
	// the engine journals its truth mutations, ships a round preamble to
	// the worker replicas, submits metadata-only units, and reads the
	// deduced fixes back from TakeResults — the merge/apply step stays
	// local and serial, so the result is bit-identical to the in-process
	// run. Distributed runs require replicas built from the same
	// deterministic pipeline (same data, rules, models, Workers) and a nil
	// (or replica-identical deterministic) Oracle.
	Cluster cluster.Runner
	// Span, when non-nil, parents the engine's phase span (rock threads
	// its root "clean" span here). Observed only while the registry has
	// spans enabled; tracing never changes the chase result.
	Span *obs.Span
}

// DefaultOptions is the configuration Rock ships with.
func DefaultOptions() Options {
	return Options{
		Mode: Unified, Lazy: true, UseBlocking: true, Workers: 4,
		Parallel: true, Steal: true, Predication: true,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	}
}

// FixKind classifies a deduced fix.
type FixKind int

// Fix kinds.
const (
	FixMerge FixKind = iota
	FixSeparate
	FixCell
	FixOrder
)

// Fix is one deduced fix, recorded for reporting and for rebuilding orders
// during TD conflict resolution.
type Fix struct {
	Kind       FixKind
	Rel, Attr  string
	EID1, EID2 string
	TID        int // tuple whose cell is fixed (FixCell)
	TID1, TID2 int // ordered pair (FixOrder): TID1 ⪯/≺ TID2
	Value      data.Value
	Strict     bool
	RuleID     string
}

// String renders the fix.
func (f Fix) String() string {
	switch f.Kind {
	case FixMerge:
		return fmt.Sprintf("merge(%s, %s) by %s", f.EID1, f.EID2, f.RuleID)
	case FixSeparate:
		return fmt.Sprintf("separate(%s, %s) by %s", f.EID1, f.EID2, f.RuleID)
	case FixCell:
		return fmt.Sprintf("set %s.%s of %s = %v by %s", f.Rel, f.Attr, f.EID1, f.Value, f.RuleID)
	case FixOrder:
		op := "<="
		if f.Strict {
			op = "<"
		}
		return fmt.Sprintf("order %s.%s: %d %s %d by %s", f.Rel, f.Attr, f.TID1, op, f.TID2, f.RuleID)
	}
	return "?"
}

// UnresolvedConflict is an ER/CR conflict presented to the user
// (paper §4.2, resolution case (1)).
type UnresolvedConflict struct {
	Conflict *truth.Conflict
	Fix      Fix
}

// Report summarises a chase run.
type Report struct {
	Rounds int
	// Partial marks a gracefully degraded run: the chase was cancelled
	// (deadline or explicit cancel) or some work units failed permanently,
	// and Applied carries the certain fixes accumulated up to that point
	// instead of the full fixpoint. Inspect UnitErrors for unit failures.
	Partial bool
	// UnitErrors lists work units that panicked on every retry (or lost
	// their node with no survivor); each failure also sets Partial.
	UnitErrors  []cluster.UnitError
	Applied     []Fix
	Unresolved  []UnresolvedConflict
	ResolvedTD  int // temporal conflicts resolved by M_rank confidence
	ResolvedMI  int // imputation conflicts resolved by argmax M_c
	OracleCalls int // ER/CR conflicts escalated to the user
	Valuations  int
	MLCalls     int
	RetractedTD int
	// SimMakespan is the simulated parallel runtime over Options.Workers
	// workers (measured unit costs, simulated overlap) — the substitute
	// metric for cluster sizes beyond this host's core count.
	SimMakespan time.Duration
	// WallClock is the real elapsed time of the chase rounds (enumeration
	// plus merge); with Options.Parallel the enumeration phase genuinely
	// overlaps on the worker pool.
	WallClock time.Duration
	// Predication carries the ML predication layer's cumulative cache
	// counters (prediction hits/misses/evictions, embedding reuse, tuple
	// invalidations); zero when Options.Predication is off.
	Predication ml.PredStats
	// PredicationByRound snapshots the cumulative Predication counters
	// once before the first chase round (the baseline: with a shared
	// layer it covers the detection phase) and then at the end of every
	// round. Deltas between consecutive entries give per-round rates:
	// once the caches are warm, steady-state rounds should serve almost
	// entirely from them.
	PredicationByRound []ml.PredStats
	// Trace is the per-round trace table: one row per chase round with
	// the round's work-unit, valuation, fix, steal and timing detail
	// (rock clean -v renders it).
	Trace []RoundTrace
	// RuleProfile attributes the chase's cost to individual rules: one
	// row per rule that generated work, sorted by rule ID. Wall is the
	// sum of the rule's unit costs (enumeration time — round wall clock
	// additionally includes the serial merge), and the Valuations/MLCalls
	// columns accumulate from the same per-unit stats as the scalar
	// totals above, so their sums match exactly.
	RuleProfile []RuleCost
	// MLProfile attributes ML cost to individual models: calls and wall
	// time measured at the predicate-evaluation site, cache hits/misses
	// from the predication layer when it is on. Sorted by model name.
	MLProfile []MLCost
	// Metrics is the engine's observability snapshot, taken when Run or
	// RunIncremental returns. The scalar fields above (Rounds,
	// Valuations, MLCalls, WallClock, SimMakespan) are views over the
	// same registry, so Metrics.Counters["chase.rounds"] == Rounds etc.
	// — exactly one source of truth.
	Metrics obs.Snapshot
}

// RuleCost is one row of the per-rule cost-attribution profile.
type RuleCost struct {
	Rule       string        `json:"rule"`
	Units      int           `json:"units"`
	Wall       time.Duration `json:"wall_ns"`
	Valuations int           `json:"valuations"`
	MLCalls    int           `json:"ml_calls"`
	Applied    int           `json:"applied"`
	Rejected   int           `json:"rejected"`
}

// MLCost is one row of the per-model ML cost profile.
type MLCost struct {
	Model       string        `json:"model"`
	Calls       uint64        `json:"calls"`
	Wall        time.Duration `json:"wall_ns"`
	CacheHits   uint64        `json:"cache_hits"`
	CacheMisses uint64        `json:"cache_misses"`
}

// RoundTrace is one row of the per-round trace table.
type RoundTrace struct {
	Round      int            `json:"round"`
	Rules      int            `json:"rules"` // active rules this round
	Units      int            `json:"units"` // work units executed
	Valuations int            `json:"valuations"`
	MLCalls    int            `json:"ml_calls"`
	Applied    int            `json:"applied"`  // fixes accepted into U
	Rejected   int            `json:"rejected"` // deduped candidates not accepted
	Steals     int            `json:"steals"`   // work steals during the round's drain
	NodeUnits  map[string]int `json:"node_units"`
	Duration   time.Duration  `json:"duration_ns"`
}

// Engine chases one database with one rule set.
type Engine struct {
	env   *predicate.Env
	exec  *exec.Executor
	rules []*ree.Rule
	u     *truth.FixSet
	opts  Options

	// orderLog records accepted order fixes per rel.attr so a losing fix
	// can be retracted by rebuilding the order.
	orderLog map[string][]Fix
	// tuplesByEID indexes tuples by their raw EID per relation for dirty
	// propagation.
	tuplesByEID map[string]map[string][]*data.Tuple
	// blocks caches the TID-partition of every relation across rounds:
	// relations never gain or lose tuples during a run, so the round loop
	// reuses one partition instead of rebuilding it every round. Reset
	// when the incremental path absorbs inserts.
	blocks map[string][][]*data.Tuple
	// cl is the run-wide worker pool (in-process by default, the remote
	// coordinator when Options.Cluster supplies one); nodes (borrowed
	// from cl) simulate work-unit placement for makespan accounting.
	cl    cluster.Runner
	nodes []string
	// lastAccepted carries the previous round's accepted fixes into the
	// next distributed round's preamble (workers derive their dirty set
	// and invalidations from it, mirroring the post-merge bookkeeping).
	lastAccepted []Fix
	// follow* hold a worker replica's prepared round (see FollowRound).
	followWork  []unitWork
	followDirty map[string]map[int]bool
	// oracleMemo caches user answers per (rel, entity-class, attr): the
	// user answers each question once.
	oracleMemo map[string]data.Value
	// resolvedCells marks cells whose value was fixed by a resolution
	// (M_c margin or user): later conflicting candidates cannot re-open
	// the decision through the model — decisions are sticky, which both
	// matches the certain-fix discipline and guarantees convergence.
	resolvedCells map[string]bool

	// pred is the §5.4 predication layer (nil when Options.Predication is
	// off): its EmbedStore backs the executor's blocking vectors and its
	// PredCache backs every registered model via PredicatedModel.
	pred *ml.Predication

	// obs is the run's observability registry (Options.Obs or an
	// engine-private one — never nil). The scalar Report fields are views
	// over its "chase.*" counters, refreshed by syncReport.
	obs *obs.Registry

	// phaseSpan is the open "chase" span while a run is in flight (nil
	// when spans are disabled — every span method is nil-safe). Round
	// and unit spans parent under it.
	phaseSpan *obs.Span
	// ruleCosts accumulates the per-rule attribution rows; written only
	// by the serial merge/apply steps, so no locking is needed.
	ruleCosts map[string]*RuleCost

	// ctx is the run's cancellation context (RunCtx/RunIncrementalCtx;
	// context.Background() otherwise). Checked between rounds here,
	// between units by the cluster drain, and inside enumeration by the
	// executor. cancelled latches once any of those observed a cancel.
	ctx       context.Context
	cancelled bool

	// mu guards the engine state that deduction may touch from worker
	// goroutines during a parallel round: the oracle memo and the report's
	// resolution counters/unresolved list. The fix set u is read-only
	// during a round and mutated only by the serial merge step.
	mu sync.Mutex

	report Report
}

// New creates an engine. gamma is the ground truth Γ; the engine chases a
// clone of it, so gamma itself is never mutated. rules is Σ.
func New(env *predicate.Env, rules []*ree.Rule, gamma *truth.FixSet, opts Options) *Engine {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 100
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	e := &Engine{
		env:           env,
		rules:         rules,
		u:             gamma.Clone(),
		opts:          opts,
		orderLog:      make(map[string][]Fix),
		tuplesByEID:   make(map[string]map[string][]*data.Tuple),
		oracleMemo:    make(map[string]data.Value),
		resolvedCells: make(map[string]bool),
		ruleCosts:     make(map[string]*RuleCost),
		ctx:           context.Background(),
	}
	e.obs = opts.Obs
	if e.obs == nil {
		e.obs = obs.New()
	}
	// One worker pool for the whole run: the consistent-hash ring and
	// scheduler are built once here and drained by every parallel round
	// (a drain leaves the scheduler empty, so rounds can reuse it). A
	// caller-supplied Runner (the remote coordinator) takes its place.
	if opts.Cluster != nil {
		e.cl = opts.Cluster
	} else {
		e.cl = cluster.New(opts.Workers)
	}
	e.cl.SetObs(e.obs, "chase")
	e.nodes = e.cl.Nodes()
	if _, ok := e.cl.(DistRunner); ok {
		// Distributed: journal every truth mutation so the next round's
		// preamble can replicate it to the workers.
		e.u.StartJournal()
	}
	for name, rel := range env.DB.Relations {
		idx := make(map[string][]*data.Tuple)
		for _, t := range rel.Tuples {
			idx[t.EID] = append(idx[t.EID], t)
		}
		e.tuplesByEID[name] = idx
	}
	// Wire the chase semantics into the environment: values read through
	// the fix set (validated first, raw otherwise) and temporal predicates
	// read the validated orders.
	e.env.ValueOf = func(rel string, t *data.Tuple, attr string) (data.Value, bool) {
		if v, ok := e.u.Cell(rel, t.EID, attr); ok {
			return v, true
		}
		r := e.env.DB.Rel(rel)
		if r == nil {
			return data.Value{}, false
		}
		i := r.Schema.Index(attr)
		if i < 0 || i >= len(t.Values) {
			return data.Value{}, false
		}
		return t.Values[i], true
	}
	e.env.Orders = func(rel, attr string) *data.TemporalOrder {
		return e.u.OrderIfAny(rel, attr)
	}
	e.exec = exec.New(env)
	e.exec.SetObs(e.obs)
	if opts.MemBudget > 0 {
		e.exec.SetSpill(opts.MemBudget, opts.SpillDir)
	}
	// Interned fast path: the executor compares dictionary ids of raw
	// values, while ValueOf reads validated cells first — so it must know
	// which tuples' view may differ from raw data. Seed that shadow set
	// with every tuple whose entity class carries a validated cell in Γ;
	// the merge step extends it as fixes land (same granularity as dirty
	// propagation). With tracking registered, equality joins and constant
	// predicates run interned for the (vast) unshadowed majority.
	shadow := make(map[string]map[int]bool)
	e.u.ForEachCell(func(rel, eidRoot, _ string, _ data.Value) {
		idx := e.tuplesByEID[rel]
		if idx == nil {
			return
		}
		for _, member := range e.u.ClassMembers(eidRoot) {
			for _, t := range idx[member] {
				m := shadow[rel]
				if m == nil {
					m = make(map[int]bool)
					shadow[rel] = m
				}
				m[t.TID] = true
			}
		}
	})
	e.exec.SetShadowTracking(shadow)
	if opts.Predication {
		if opts.Pred != nil {
			e.pred = opts.Pred
		} else {
			e.pred = ml.NewPredication()
		}
		// Re-register every model read through the shared prediction
		// cache. Unwrap first so stacked memo layers (CachedModel) don't
		// double-key the same pair; the wrapped models are pure memoisers,
		// so engines sharing the env (with the layer on or off) see
		// identical predictions.
		for _, name := range env.Models.Names() {
			if m, err := env.Models.Get(name); err == nil {
				env.Models.Register(e.pred.Wrap(ml.Unwrap(m)))
			}
		}
		e.exec.SetEmbedStore(e.pred.Embeds)
	}
	return e
}

// Truth exposes the engine's fix set U (read-mostly; mutate via the chase).
func (e *Engine) Truth() *truth.FixSet { return e.u }

// TuplesByEID returns rel's tuples carrying the given EID, from the
// engine's index (refreshed on RunIncrementalCtx entry, so inserts made
// through a Delta are covered). The incremental corrections diff uses it
// to expand touched truth cells to tuples without scanning the database.
func (e *Engine) TuplesByEID(rel, eid string) []*data.Tuple {
	idx := e.tuplesByEID[rel]
	if idx == nil {
		return nil
	}
	return idx[eid]
}

// Report returns the run summary; valid after Run.
func (e *Engine) Report() *Report {
	e.syncReport()
	return &e.report
}

// Obs exposes the engine's observability registry (never nil).
func (e *Engine) Obs() *obs.Registry { return e.obs }

// syncReport refreshes the scalar Report fields from the registry — the
// fields are views, the registry is the source of truth.
func (e *Engine) syncReport() {
	e.report.Rounds = int(e.obs.CounterValue("chase.rounds"))
	e.report.Valuations = int(e.obs.CounterValue("chase.valuations"))
	e.report.MLCalls = int(e.obs.CounterValue("chase.ml_calls"))
	e.report.WallClock = time.Duration(e.obs.CounterValue("chase.wall_ns"))
	e.report.SimMakespan = time.Duration(e.obs.CounterValue("chase.sim_makespan_ns"))
	ids := make([]string, 0, len(e.ruleCosts))
	for id := range e.ruleCosts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.report.RuleProfile = e.report.RuleProfile[:0]
	for _, id := range ids {
		e.report.RuleProfile = append(e.report.RuleProfile, *e.ruleCosts[id])
	}
}

// ruleCost returns (creating on first use) the attribution row of a rule.
// Callers are the serial merge/apply steps only.
func (e *Engine) ruleCost(id string) *RuleCost {
	rc := e.ruleCosts[id]
	if rc == nil {
		rc = &RuleCost{Rule: id}
		e.ruleCosts[id] = rc
	}
	return rc
}

// mlProfileFrom derives the per-model ML cost rows from a registry
// snapshot: the executor publishes "exec.ml.<model>.calls/.wall_ns"
// counters, the predication layer "pred.model.<model>.hits/.misses"
// gauges. Models appearing in either source get a row.
func mlProfileFrom(snap obs.Snapshot) []MLCost {
	byModel := map[string]*MLCost{}
	get := func(m string) *MLCost {
		c := byModel[m]
		if c == nil {
			c = &MLCost{Model: m}
			byModel[m] = c
		}
		return c
	}
	for name, v := range snap.Counters {
		rest, ok := strings.CutPrefix(name, "exec.ml.")
		if !ok {
			continue
		}
		if m, ok := strings.CutSuffix(rest, ".calls"); ok {
			get(m).Calls += v
		} else if m, ok := strings.CutSuffix(rest, ".wall_ns"); ok {
			get(m).Wall += time.Duration(v)
		}
	}
	for name, v := range snap.Gauges {
		rest, ok := strings.CutPrefix(name, "pred.model.")
		if !ok {
			continue
		}
		if m, ok := strings.CutSuffix(rest, ".hits"); ok {
			get(m).CacheHits = uint64(v)
		} else if m, ok := strings.CutSuffix(rest, ".misses"); ok {
			get(m).CacheMisses = uint64(v)
		}
	}
	names := make([]string, 0, len(byModel))
	for m := range byModel {
		names = append(names, m)
	}
	sort.Strings(names)
	out := make([]MLCost, 0, len(names))
	for _, m := range names {
		out = append(out, *byModel[m])
	}
	return out
}

// markPartial flags the run as gracefully degraded and records why.
func (e *Engine) markPartial(reason string) {
	if !e.report.Partial {
		e.obs.Emit(obs.Event{Kind: "chase.partial", Detail: reason})
	}
	e.report.Partial = true
}

// finish seals the report at the end of a Run/RunIncremental: sync the
// view fields and snapshot the full registry into Report.Metrics.
func (e *Engine) finish() {
	e.phaseSpan.End()
	e.phaseSpan = nil
	e.syncReport()
	e.report.Metrics = e.obs.Snapshot()
	e.report.MLProfile = mlProfileFrom(e.report.Metrics)
}

// Run executes the chase to its Church-Rosser fixpoint and returns the
// report. The result is independent of rule order (verified by tests).
func (e *Engine) Run() (*Report, error) { return e.RunCtx(context.Background()) }

// RunCtx is Run under a cancellation context. Cancelling ctx (or hitting
// its deadline) degrades gracefully: the chase stops at the next
// cooperative checkpoint — between rounds, between work units, or inside
// an enumeration — and returns the certain fixes accumulated so far with
// Report.Partial=true and a nil error.
func (e *Engine) RunCtx(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.phaseSpan = e.obs.StartSpan("chase", e.opts.Span)
	var (
		rep *Report
		err error
	)
	switch e.opts.Mode {
	case Sequential:
		rep, err = e.runSequential()
	case SinglePass:
		rep, err = e.runSinglePass()
	default:
		rep, err = e.runUnified(e.rules, nil)
	}
	e.finish()
	return rep, err
}

// RunIncremental chases in response to updates ΔD (paper §3: "Rock
// corrects errors in batch and incremental modes"): the caller applies the
// inserts/updates to the database first and passes the changed TIDs per
// relation; only valuations touching a changed tuple are enumerated in the
// first round, and the normal lazy-activation machinery propagates from
// there. Call after Run (or on a fresh engine over already-clean data).
func (e *Engine) RunIncremental(dirty map[string]map[int]bool) (*Report, error) {
	return e.RunIncrementalCtx(context.Background(), dirty)
}

// RunIncrementalCtx is RunIncremental under a cancellation context, with
// the same graceful degradation as RunCtx.
func (e *Engine) RunIncrementalCtx(ctx context.Context, dirty map[string]map[int]bool) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	if len(dirty) == 0 {
		e.finish()
		return &e.report, nil
	}
	e.phaseSpan = e.obs.StartSpan("chase.incremental", e.opts.Span)
	// Refresh the EID index for tuples inserted since construction.
	for name, rel := range e.env.DB.Relations {
		idx := make(map[string][]*data.Tuple)
		for _, t := range rel.Tuples {
			idx[t.EID] = append(idx[t.EID], t)
		}
		e.tuplesByEID[name] = idx
	}
	// The caller mutated raw data: re-intern the changed TIDs, rebuild the
	// partition (inserts need a block), and shadow the dirty tuples — an
	// updated tuple may sit in an entity class with validated cells, so
	// its view can differ from its new raw value.
	e.blocks = nil
	e.exec.RefreshTuples(dirty)
	e.exec.MarkShadowed(dirty)
	// With a predication layer shared across runs (rockd's warm per-tenant
	// state), the embedding store may hold vectors computed from the
	// tuples' pre-update values — retire them before enumeration.
	e.exec.InvalidateTuples(dirty)
	rep, err := e.runUnified(e.rules, dirty)
	e.finish()
	return rep, err
}

// runUnified is the main fixpoint loop over the given rule subset.
// initialDirty restricts the first round to valuations touching the given
// tuples (the incremental mode); nil means batch (everything considered).
func (e *Engine) runUnified(rules []*ree.Rule, initialDirty map[string]map[int]bool) (*Report, error) {
	active := append([]*ree.Rule(nil), rules...)
	dirty := initialDirty // nil on batch round 0: everything dirty
	if e.pred != nil && len(e.report.PredicationByRound) == 0 {
		// Baseline snapshot before the first round: with a shared layer
		// the counters already include the detection phase, and deltas
		// between consecutive snapshots isolate each chase round.
		e.report.PredicationByRound = append(e.report.PredicationByRound, e.pred.Stats())
	}
	for round := 0; round < e.opts.MaxRounds; round++ {
		if len(active) == 0 {
			break
		}
		// Cooperative cancellation between rounds: keep the certain fixes
		// applied so far and return a partial report instead of discarding
		// the run. (Mid-round cancels are caught by the drain and latch
		// e.cancelled, handled after runRound below.)
		if e.ctx.Err() != nil {
			if !e.cancelled {
				e.cancelled = true
				e.obs.Inc("chase.cancelled")
			}
			e.markPartial("cancelled between rounds: " + e.ctx.Err().Error())
			break
		}
		e.obs.Inc("chase.rounds")
		newFixes, err := e.runRound(active, dirty)
		if err != nil {
			return &e.report, err
		}
		if e.cancelled {
			e.markPartial("cancelled mid-round")
			break
		}
		if len(newFixes) == 0 {
			break
		}
		if e.opts.Lazy {
			active = e.activate(rules, newFixes)
			dirty = e.dirtySet(newFixes)
		} else {
			active = rules
			dirty = nil
		}
	}
	return &e.report, nil
}

// runSequential cycles the four tasks until a full cycle deduces nothing.
func (e *Engine) runSequential() (*Report, error) {
	byTask := map[ree.Task][]*ree.Rule{}
	for _, r := range e.rules {
		byTask[r.TaskOf()] = append(byTask[r.TaskOf()], r)
	}
	taskOrder := []ree.Task{ree.TaskER, ree.TaskCR, ree.TaskMI, ree.TaskTD}
	for cycle := 0; cycle < e.opts.MaxRounds; cycle++ {
		before := len(e.report.Applied)
		for _, task := range taskOrder {
			if len(byTask[task]) == 0 {
				continue
			}
			if _, err := e.runUnified(byTask[task], nil); err != nil {
				return &e.report, err
			}
		}
		if len(e.report.Applied) == before {
			break
		}
	}
	return &e.report, nil
}

// runSinglePass runs each task exactly once (Rock_noC).
func (e *Engine) runSinglePass() (*Report, error) {
	byTask := map[ree.Task][]*ree.Rule{}
	for _, r := range e.rules {
		byTask[r.TaskOf()] = append(byTask[r.TaskOf()], r)
	}
	for _, task := range []ree.Task{ree.TaskER, ree.TaskCR, ree.TaskMI, ree.TaskTD} {
		rules := byTask[task]
		if len(rules) == 0 {
			continue
		}
		e.obs.Inc("chase.rounds")
		if _, err := e.runRound(rules, nil); err != nil {
			return &e.report, err
		}
	}
	return &e.report, nil
}

// runRound runs one chase round the way §5.3 describes error correction:
// the data is partitioned into virtual blocks (HyperCube), each active
// rule yields one work unit per block combination, units enumerate
// valuations against the start-of-round fix set and deduce candidate
// fixes, and the fixes are then applied in a deterministic merge step
// (conflict resolution included).
//
// With Options.Parallel the units run on a real pool of Options.Workers
// goroutines (cluster.Drain: affinity queues plus work stealing). Each
// unit owns a private fix buffer, and the merge reads the buffers back in
// (rule ID, unit part) generation order — exactly the serial order — so
// the chase result is bit-identical to serial execution regardless of
// worker interleaving. Correctness rests on the round invariant: workers
// only read the fix set (truth.FixSet reads are compression-free), and
// all fixes apply in the serial merge below. Unit costs are still
// measured so the report can carry the simulated parallel makespan over
// cluster sizes beyond this host's core count (see DESIGN.md).
func (e *Engine) runRound(rules []*ree.Rule, dirty map[string]map[int]bool) ([]Fix, error) {
	roundStart := time.Now()
	round := int(e.obs.CounterValue("chase.rounds")) // caller already counted this round
	roundSpan := e.obs.StartSpan("round", e.phaseSpan)
	roundSpan.SetRound(round)
	defer roundSpan.End()
	e.obs.Emit(obs.Event{Kind: "round.start", Round: round, N: int64(len(rules))})
	// Deterministic rule order for reproducibility; Church-Rosser makes
	// the final result order-independent anyway.
	ordered := append([]*ree.Rule(nil), rules...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	// Batch predication (paper §5.4): score every (model, pair) the
	// round's blocked ML predicates will consult, in parallel, before the
	// units fan out — deduction then reads predictions instead of
	// computing them inside the enumeration loop.
	if e.pred != nil && e.opts.UseBlocking {
		e.precomputePredications(ordered, dirty)
	}

	if e.blocks == nil {
		e.blocks = e.partition()
		// Hand the executor the stable partition slices so its vectorized
		// paths reuse precomputed ascending TID arrays instead of
		// re-extracting them per work unit.
		e.exec.InvalidatePartitions()
		for _, rel := range e.env.DB.Relations {
			e.exec.RegisterPartition(rel.Tuples)
		}
		for _, bs := range e.blocks {
			for _, b := range bs {
				e.exec.RegisterPartition(b)
			}
		}
	}
	blocks := e.blocks
	type unitResult struct {
		fixes []Fix
		st    exec.Stats
		err   error
		cost  time.Duration
		done  bool
	}
	work := e.buildWork(ordered, blocks)
	results := make([]unitResult, len(work))
	runUnit := func(i int, node string) {
		w := work[i]
		res := &results[i]
		// Reset on entry: a unit retried after a mid-run panic must not
		// append to a half-filled buffer, or the merged fix set would
		// diverge from a fault-free run.
		*res = unitResult{}
		var unitSpan *obs.Span
		if e.obs.SpansEnabled() {
			unitSpan = e.obs.StartSpan("unit", roundSpan)
			unitSpan.SetRule(w.rule.ID)
			unitSpan.SetNode(node)
			unitSpan.SetDetail(w.unit.part)
			defer func() {
				unitSpan.SetN(int64(res.st.Valuations))
				unitSpan.End()
			}()
		}
		start := time.Now()
		opts := exec.Options{Ctx: e.ctx, UseBlocking: e.opts.UseBlocking, Dirty: dirty, RestrictVar: w.unit.restrict, Span: unitSpan}
		res.st, res.err = e.exec.Run(w.rule, opts, func(h *predicate.Valuation) bool {
			res.fixes = e.deduceAppend(res.fixes, w.rule, h)
			return true
		})
		res.cost = time.Since(start)
		res.done = true
	}
	var drain cluster.DrainStats
	if dr, ok := e.cl.(DistRunner); ok && len(work) > 0 {
		// Distributed round: replicate this round's inputs to the worker
		// processes (truth journal + last round's accepted fixes + active
		// rule IDs), submit metadata-only units, and read the deduced fix
		// buffers back by unit index. The merge below then proceeds exactly
		// as in-process — fixes are tagged with their generation order (the
		// unit index), so the result is bit-identical to serial.
		ids := make([]string, len(ordered))
		for i, r := range ordered {
			ids[i] = r.ID
		}
		pre := RoundPreamble{
			Round:    round,
			RuleIDs:  ids,
			Journal:  e.u.TakeJournal(),
			Accepted: e.lastAccepted,
			UseDirty: dirty != nil,
			Units:    len(work),
		}
		if err := dr.BeginRound(e.ctx, pre); err != nil {
			return nil, err
		}
		for i := range work {
			w := work[i]
			est := 1.0
			for _, blk := range w.unit.restrict {
				est *= float64(len(blk))
			}
			dr.Submit(&crystal.WorkUnit{ID: i, RuleID: w.rule.ID, Part: w.unit.part, EstCost: est})
		}
		drain = dr.DrainWithStats(e.ctx, cluster.Options{
			Steal:        e.opts.Steal,
			MaxRetries:   e.opts.MaxRetries,
			RetryBackoff: e.opts.RetryBackoff,
			Faults:       e.opts.Faults,
		})
		for _, out := range dr.TakeResults() {
			if out.Unit < 0 || out.Unit >= len(results) {
				continue
			}
			results[out.Unit] = unitResult{
				fixes: out.Fixes,
				st:    exec.Stats{Valuations: out.Valuations, MLCalls: out.MLCalls},
				cost:  time.Duration(out.CostNs),
				done:  true,
			}
			// Deduction-side report state travels with the outcome (it was
			// recorded on the worker replica's report, not ours). TakeResults
			// is sorted by unit index, so the appends reproduce the serial
			// recording order.
			e.report.Unresolved = append(e.report.Unresolved, out.Unresolved...)
			e.report.ResolvedMI += out.ResolvedMI
		}
	} else if e.opts.Parallel && e.opts.Workers > 1 && len(work) > 1 {
		cl := e.cl
		for i := range work {
			i := i
			w := work[i]
			est := 1.0
			for _, blk := range w.unit.restrict {
				est *= float64(len(blk))
			}
			cl.Submit(&crystal.WorkUnit{
				ID:      i,
				RuleID:  w.rule.ID,
				Part:    w.unit.part,
				EstCost: est,
				RunOn:   func(node string) { runUnit(i, node) },
			})
		}
		drain = cl.DrainWithStats(e.ctx, cluster.Options{
			Steal:        e.opts.Steal,
			MaxRetries:   e.opts.MaxRetries,
			RetryBackoff: e.opts.RetryBackoff,
			Faults:       e.opts.Faults,
		})
	} else {
		// Serial path: attribute units to their affinity owner so the
		// per-node counters mean the same thing in both modes, with the
		// same fault envelope as the drain — ctx checked between units,
		// panics isolated and retried in place.
		drain.PerNode = make(map[string]int)
		for i := range work {
			if e.ctx.Err() != nil {
				drain.Cancelled = true
				drain.Skipped = len(work) - i
				e.obs.Inc("chase.cancelled")
				break
			}
			node := e.cl.Owner(work[i].unit.part)
			if ue := e.runUnitShielded(i, node, work[i].rule.ID, work[i].unit.part,
				func(j int) { runUnit(j, node) }); ue != nil {
				drain.Panics += ue.Attempts
				drain.Retries += ue.Attempts - 1
				drain.Failed = append(drain.Failed, *ue)
				continue
			}
			drain.PerNode[node]++
			e.obs.Inc("chase.node." + node + ".units")
		}
	}
	if drain.Cancelled {
		e.cancelled = true
	}
	if len(drain.Failed) > 0 {
		e.report.UnitErrors = append(e.report.UnitErrors, drain.Failed...)
		e.markPartial(fmt.Sprintf("%d work unit(s) failed permanently", len(drain.Failed)))
	}
	e.obs.Add("chase.units", uint64(len(work)))

	// Merge the per-unit buffers back in generation order. Units a
	// cancelled drain never ran (or that failed permanently) are skipped:
	// the fixes of completed units are still certain and still apply.
	var candidates []Fix
	var sims []cluster.SimUnit
	var roundVal, roundML int
	unitHist := e.obs.Histogram("chase.unit")
	for i := range work {
		res := &results[i]
		if !res.done {
			continue
		}
		roundVal += res.st.Valuations
		roundML += res.st.MLCalls
		rc := e.ruleCost(work[i].rule.ID)
		rc.Units++
		rc.Wall += res.cost
		rc.Valuations += res.st.Valuations
		rc.MLCalls += res.st.MLCalls
		pref := "chase.rule." + work[i].rule.ID
		e.obs.Inc(pref + ".units")
		e.obs.Add(pref+".wall_ns", uint64(res.cost))
		e.obs.Add(pref+".valuations", uint64(res.st.Valuations))
		e.obs.Add(pref+".ml_calls", uint64(res.st.MLCalls))
		if res.err != nil {
			// A context error means the unit was cut short mid-enumeration:
			// its fixes so far are sound, keep them and latch cancellation.
			if errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded) {
				e.cancelled = true
			} else {
				return nil, res.err
			}
		}
		candidates = append(candidates, res.fixes...)
		sims = append(sims, cluster.SimUnit{Node: e.cl.Owner(work[i].unit.part), Cost: res.cost})
		unitHist.Observe(res.cost)
	}
	e.obs.Add("chase.valuations", uint64(roundVal))
	e.obs.Add("chase.ml_calls", uint64(roundML))
	if len(sims) > 0 {
		e.obs.Add("chase.sim_makespan_ns", uint64(cluster.SimulateMakespan(sims, e.nodes, e.opts.Steal)))
	}
	// Merge step: apply the deduced fixes in deterministic order. Every
	// matching valuation deduces the same fix, so candidates are heavily
	// duplicated — dedupe first or the serial merge (with its conflict
	// resolution) dominates the round.
	applyStart := time.Now()
	seenFix := make(map[string]bool, len(candidates))
	var accepted []Fix
	rejected := 0
	for _, fx := range candidates {
		key := fixKey(fx)
		if seenFix[key] {
			continue
		}
		seenFix[key] = true
		if e.apply(fx) {
			accepted = append(accepted, fx)
			e.ruleCost(fx.RuleID).Applied++
			e.obs.Inc("chase.rule." + fx.RuleID + ".applied")
			e.obs.Emit(obs.Event{Kind: "fix.applied", Round: round, Rule: fx.RuleID, Detail: fx.String()})
		} else {
			rejected++
			e.ruleCost(fx.RuleID).Rejected++
			e.obs.Inc("chase.rule." + fx.RuleID + ".rejected")
			e.obs.Emit(obs.Event{Kind: "fix.rejected", Round: round, Rule: fx.RuleID, Detail: fx.String()})
		}
	}
	e.obs.Add("chase.fixes.applied", uint64(len(accepted)))
	e.obs.Add("chase.fixes.rejected", uint64(rejected))
	e.obs.Add("chase.sim_makespan_ns", uint64(time.Since(applyStart)))
	if len(accepted) > 0 {
		// Accepted fixes change the values units read through env.ValueOf,
		// so any blocker index built over them is stale — and so are the
		// cached embeddings of exactly the touched tuples (same
		// granularity that re-activates rules). The same tuple set is no
		// longer safe for interned raw-id comparisons: shadow it so the
		// executor reads those tuples through the fix set.
		ds := e.dirtySet(accepted)
		e.exec.InvalidateBlockers()
		e.exec.InvalidateTuples(ds)
		e.exec.MarkShadowed(ds)
	}
	e.lastAccepted = accepted
	if e.pred != nil {
		e.report.Predication = e.pred.Stats()
		e.report.PredicationByRound = append(e.report.PredicationByRound, e.report.Predication)
		e.pred.PublishTo(e.obs)
	}
	e.obs.Add("chase.wall_ns", uint64(time.Since(roundStart)))
	e.report.Trace = append(e.report.Trace, RoundTrace{
		Round:      round,
		Rules:      len(ordered),
		Units:      len(work),
		Valuations: roundVal,
		MLCalls:    roundML,
		Applied:    len(accepted),
		Rejected:   rejected,
		Steals:     drain.Steals,
		NodeUnits:  drain.PerNode,
		Duration:   time.Since(roundStart),
	})
	roundSpan.SetN(int64(len(accepted)))
	e.obs.Emit(obs.Event{Kind: "round.end", Round: round, N: int64(len(accepted))})
	e.syncReport()
	return accepted, nil
}

// runUnitShielded runs one serial-path unit under recover(), retrying in
// place up to Options.MaxRetries times — the single-node counterpart of
// the drain's panic isolation. Returns a UnitError when every attempt
// panicked, nil on success.
func (e *Engine) runUnitShielded(i int, node, ruleID, part string, runUnit func(int)) *cluster.UnitError {
	attempt := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("unit panic: %v", r)
			}
		}()
		runUnit(i)
		return nil
	}
	var err error
	for a := 0; a <= e.opts.MaxRetries; a++ {
		if a > 0 {
			e.obs.Inc("chase.retries")
			if e.opts.RetryBackoff > 0 {
				time.Sleep(time.Duration(a) * e.opts.RetryBackoff)
			}
		}
		if err = attempt(); err == nil {
			return nil
		}
		e.obs.Inc("chase.unit_panics")
		e.obs.Emit(obs.Event{Kind: "unit.panic", Node: node, Rule: ruleID, Detail: err.Error()})
	}
	return &cluster.UnitError{UnitID: i, RuleID: ruleID, Part: part, Node: node,
		Attempts: e.opts.MaxRetries + 1, Err: err}
}

// precomputePredications warms the prediction cache with this round's
// candidate (model, pair) scores, spread across the worker pool
// (cluster.ParallelMap). Warming is pure memoisation of deterministic
// model calls, so the parallel fill cannot perturb chase results; any
// pair it misses still computes lazily during deduction.
func (e *Engine) precomputePredications(rules []*ree.Rule, dirty map[string]map[int]bool) {
	var jobs []exec.MLJob
	opts := exec.Options{UseBlocking: true, Dirty: dirty}
	for _, r := range rules {
		jobs = append(jobs, e.exec.MLJobs(r, opts)...)
	}
	if len(jobs) == 0 {
		return
	}
	workers := e.opts.Workers
	if !e.opts.Parallel {
		workers = 1
	}
	cluster.ParallelMap(workers, jobs, func(_ int, j exec.MLJob) {
		m, err := e.env.Models.Get(j.Model)
		if err != nil {
			return
		}
		if pm, ok := m.(*ml.PredicatedModel); ok {
			pm.Warm(j.Left, j.Right)
		} else {
			m.Predict(j.Left, j.Right)
		}
	})
}

// fixKey canonicalises a fix for in-round deduplication (the rule id is
// excluded: the same fix deduced by two rules applies once).
func fixKey(fx Fix) string {
	return fmt.Sprintf("%d\x1f%s\x1f%s\x1f%s\x1f%s\x1f%d\x1f%d\x1f%d\x1f%s\x1f%t",
		fx.Kind, fx.Rel, fx.Attr, fx.EID1, fx.EID2, fx.TID, fx.TID1, fx.TID2, fx.Value.Key(), fx.Strict)
}

// chaseUnit is one (rule, block-combination) work unit.
type chaseUnit struct {
	part     string
	restrict map[string][]*data.Tuple
}

// partition splits each relation into Workers virtual blocks by TID.
func (e *Engine) partition() map[string][][]*data.Tuple {
	b := e.opts.Workers
	if b < 1 {
		b = 1
	}
	out := make(map[string][][]*data.Tuple)
	for name, rel := range e.env.DB.Relations {
		bs := make([][]*data.Tuple, b)
		for _, t := range rel.Tuples {
			i := t.TID % b
			bs[i] = append(bs[i], t)
		}
		out[name] = bs
	}
	return out
}

// unitsFor builds the block-combination units of a rule (mirrors
// detect.unitsFor).
func (e *Engine) unitsFor(r *ree.Rule, blocks map[string][][]*data.Tuple) []chaseUnit {
	switch len(r.Atoms) {
	case 0:
		return nil
	case 1:
		a := r.Atoms[0]
		var units []chaseUnit
		for i, blk := range blocks[a.Rel] {
			if len(blk) == 0 {
				continue
			}
			units = append(units, chaseUnit{
				part:     fmt.Sprintf("%s/b%d", a.Rel, i),
				restrict: map[string][]*data.Tuple{a.Var: blk},
			})
		}
		return units
	default:
		a1, a2 := r.Atoms[0], r.Atoms[1]
		var units []chaseUnit
		for i, b1 := range blocks[a1.Rel] {
			if len(b1) == 0 {
				continue
			}
			for j, b2 := range blocks[a2.Rel] {
				if len(b2) == 0 {
					continue
				}
				units = append(units, chaseUnit{
					part:     fmt.Sprintf("%s-%s/b%d-%d", a1.Rel, a2.Rel, i, j),
					restrict: map[string][]*data.Tuple{a1.Var: b1, a2.Var: b2},
				})
			}
		}
		return units
	}
}

// deduce turns the consequence p0 under valuation h into zero or more
// concrete fixes (paper §4.1, chase-step condition (2)).
func (e *Engine) deduce(r *ree.Rule, h *predicate.Valuation) []Fix {
	return e.deduceAppend(nil, r, h)
}

// deduceAppend is deduce writing into a caller-owned buffer: the per-unit
// enumeration loop appends every valuation's fixes to one growing slice
// instead of allocating a fresh one- or two-element slice per valuation.
func (e *Engine) deduceAppend(dst []Fix, r *ree.Rule, h *predicate.Valuation) []Fix {
	p := r.P0
	switch p.Kind {
	case predicate.KEID:
		bt, bs := h.Tuples[p.T], h.Tuples[p.S]
		if bt.Tuple == nil || bs.Tuple == nil {
			return dst
		}
		kind := FixMerge
		if p.Op == predicate.Neq {
			kind = FixSeparate
		}
		return append(dst, Fix{Kind: kind, EID1: bt.Tuple.EID, EID2: bs.Tuple.EID, RuleID: r.ID})

	case predicate.KConst:
		bt := h.Tuples[p.T]
		if bt.Tuple == nil || p.Op != predicate.Eq {
			return dst
		}
		return append(dst, Fix{Kind: FixCell, Rel: bt.Rel, Attr: p.A, EID1: bt.Tuple.EID, TID: bt.Tuple.TID, Value: p.C, RuleID: r.ID})

	case predicate.KAttr:
		if p.Op != predicate.Eq {
			return dst
		}
		bt, bs := h.Tuples[p.T], h.Tuples[p.S]
		if bt.Tuple == nil || bs.Tuple == nil {
			return dst
		}
		vt, okT := e.env.ValueOf(bt.Rel, bt.Tuple, p.A)
		vs, okS := e.env.ValueOf(bs.Rel, bs.Tuple, p.B)
		nullT := !okT || vt.IsNull()
		nullS := !okS || vs.IsNull()
		// Equating two declared entity references identifies the referenced
		// entities (ϕ1: same discount code → same buyer pid).
		if e.opts.EIDRefs[bt.Rel+"."+p.A] && e.opts.EIDRefs[bs.Rel+"."+p.B] {
			if nullT || nullS || vt.Equal(vs) {
				return dst
			}
			return append(dst, Fix{Kind: FixMerge, EID1: vt.String(), EID2: vs.String(), RuleID: r.ID})
		}
		mk := func(b predicate.Binding, attr string, v data.Value) Fix {
			return Fix{Kind: FixCell, Rel: b.Rel, Attr: attr, EID1: b.Tuple.EID, TID: b.Tuple.TID, Value: v, RuleID: r.ID}
		}
		switch {
		case nullT && nullS:
			return dst
		case nullT:
			return append(dst, mk(bt, p.A, vs))
		case nullS:
			return append(dst, mk(bs, p.B, vt))
		case vt.Equal(vs):
			return dst
		default:
			// Both sides carry distinct values: the rule asserts they must
			// be equal, but the data cannot certify which one is correct.
			// Decide once per pair (validated side → correlation model →
			// value rarity → user), then assert the winner on both sides —
			// never contaminate the clean side with an arbitrary choice
			// (paper §4.1: fixes must be justified, not guessed).
			winner, ok := e.resolveValuePair(bt, p.A, vt, bs, p.B, vs)
			if !ok {
				return dst
			}
			if !vt.Equal(winner) {
				dst = append(dst, mk(bt, p.A, winner))
			}
			if !vs.Equal(winner) {
				dst = append(dst, mk(bs, p.B, winner))
			}
			return dst
		}

	case predicate.KTemporal:
		bt, bs := h.Tuples[p.T], h.Tuples[p.S]
		if bt.Tuple == nil || bs.Tuple == nil {
			return dst
		}
		return append(dst, Fix{Kind: FixOrder, Rel: bt.Rel, Attr: p.A, TID1: bt.Tuple.TID, TID2: bs.Tuple.TID, Strict: p.Strict,
			EID1: bt.Tuple.EID, EID2: bs.Tuple.EID, RuleID: r.ID})

	case predicate.KVal:
		bt := h.Tuples[p.T]
		bx, okx := h.Vertices[p.X]
		if bt.Tuple == nil || !okx {
			return dst
		}
		g := e.env.Graphs[bx.Graph]
		if g == nil {
			return dst
		}
		val, ok := g.Val(bx.ID, p.Path)
		if !ok {
			return dst
		}
		v := coerce(e.env.DB, bt.Rel, p.A, val)
		return append(dst, Fix{Kind: FixCell, Rel: bt.Rel, Attr: p.A, EID1: bt.Tuple.EID, TID: bt.Tuple.TID, Value: v, RuleID: r.ID})

	case predicate.KPredict:
		bt := h.Tuples[p.T]
		if bt.Tuple == nil {
			return dst
		}
		md := e.env.Pred[p.Model]
		if md == nil {
			return dst
		}
		rel := e.env.DB.Rel(bt.Rel)
		if rel == nil {
			return dst
		}
		bIdx := rel.Schema.Index(p.B)
		if bIdx < 0 {
			return dst
		}
		// Suggest over the tuple as seen through validated values.
		seen := e.viewTuple(bt.Rel, bt.Tuple)
		v, _, ok := md.Suggest(seen, bIdx)
		if !ok {
			return dst
		}
		return append(dst, Fix{Kind: FixCell, Rel: bt.Rel, Attr: p.B, EID1: bt.Tuple.EID, TID: bt.Tuple.TID, Value: v, RuleID: r.ID})
	}
	return dst
}

// viewTuple materialises the tuple as seen through validated cells.
func (e *Engine) viewTuple(rel string, t *data.Tuple) *data.Tuple {
	r := e.env.DB.Rel(rel)
	if r == nil {
		return t
	}
	vt := t.Clone()
	for i, a := range r.Schema.Attrs {
		if v, ok := e.u.Cell(rel, t.EID, a.Name); ok {
			vt.Values[i] = v
		}
	}
	return vt
}

func coerce(db *data.Database, rel, attr, raw string) data.Value {
	r := db.Rel(rel)
	if r == nil {
		return data.S(raw)
	}
	want, ok := r.Schema.TypeOf(attr)
	if !ok {
		return data.S(raw)
	}
	if v, err := data.Parse(want, raw); err == nil {
		return v
	}
	return data.S(raw)
}

// apply commits one fix into U, resolving conflicts per paper §4.2. It
// reports whether U changed.
func (e *Engine) apply(fx Fix) bool {
	switch fx.Kind {
	case FixMerge:
		changed, conflict := e.u.MergeEIDs(fx.EID1, fx.EID2)
		if conflict != nil {
			e.report.Unresolved = append(e.report.Unresolved, UnresolvedConflict{conflict, fx})
			return false
		}
		if changed {
			e.report.Applied = append(e.report.Applied, fx)
		}
		return changed

	case FixSeparate:
		changed, conflict := e.u.SeparateEIDs(fx.EID1, fx.EID2)
		if conflict != nil {
			e.report.Unresolved = append(e.report.Unresolved, UnresolvedConflict{conflict, fx})
			return false
		}
		if changed {
			e.report.Applied = append(e.report.Applied, fx)
		}
		return changed

	case FixCell:
		changed, conflict := e.u.SetCell(fx.Rel, fx.EID1, fx.Attr, fx.Value)
		if conflict != nil {
			return e.resolveCellConflict(fx, conflict)
		}
		if changed {
			e.report.Applied = append(e.report.Applied, fx)
		}
		return changed

	case FixOrder:
		changed, conflict := e.u.AddOrder(fx.Rel, fx.Attr, fx.TID1, fx.TID2, fx.Strict)
		if conflict != nil {
			return e.resolveOrderConflict(fx)
		}
		if changed {
			e.orderLog[fx.Rel+"."+fx.Attr] = append(e.orderLog[fx.Rel+"."+fx.Attr], fx)
			e.report.Applied = append(e.report.Applied, fx)
		}
		return changed
	}
	return false
}

// resolveCellConflict implements the value-conflict resolutions of paper
// §4.2: the MI case keeps the candidate with the higher M_c correlation
// strength (argmax over Cand, case (3)); when no correlation model decides
// — no model trained, or the candidates tie — the conflict is an ER/CR
// case and goes to the user oracle (case (1)); with neither, it stays
// unresolved and is reported.
func (e *Engine) resolveCellConflict(fx Fix, conflict *truth.Conflict) bool {
	cellMemoKey := fx.Rel + "\x1f" + e.u.ClassMembers(fx.EID1)[0] + "\x1f" + fx.Attr
	toUser := func() bool {
		answer, ok := e.askOracle(fx.Rel, fx.EID1, fx.Attr, []data.Value{conflict.Old, fx.Value})
		if !ok {
			e.report.Unresolved = append(e.report.Unresolved, UnresolvedConflict{conflict, fx})
			return false
		}
		e.resolvedCells[cellMemoKey] = true
		if answer.Equal(conflict.Old) {
			return false // existing fix confirmed
		}
		e.u.ReplaceCell(fx.Rel, fx.EID1, fx.Attr, answer)
		applied := fx
		applied.Value = answer
		e.report.Applied = append(e.report.Applied, applied)
		return true
	}
	// A previously resolved cell is settled: only the (memoised) user can
	// overturn it; model margins drift with the evolving view and would
	// re-litigate the decision forever.
	if e.resolvedCells[cellMemoKey] {
		return toUser()
	}
	mc := e.corrFor(fx.Rel)
	rel := e.env.DB.Rel(fx.Rel)
	if mc == nil || rel == nil {
		return toUser()
	}
	bIdx := rel.Schema.Index(fx.Attr)
	if bIdx < 0 {
		return toUser()
	}
	// Score both candidates against any tuple of the entity class.
	var probe *data.Tuple
	for _, eid := range e.u.ClassMembers(fx.EID1) {
		for _, t := range e.tuplesByEID[fx.Rel][eid] {
			probe = t
			break
		}
		if probe != nil {
			break
		}
	}
	if probe == nil {
		return toUser()
	}
	view := e.viewTuple(fx.Rel, probe)
	oldScore := mc.Strength(view, nil, bIdx, conflict.Old)
	newScore := mc.Strength(view, nil, bIdx, fx.Value)
	const margin = 0.05 // below this the model cannot distinguish the candidates
	if newScore-oldScore > margin {
		e.report.ResolvedMI++
		e.resolvedCells[cellMemoKey] = true
		e.u.ReplaceCell(fx.Rel, fx.EID1, fx.Attr, fx.Value)
		e.report.Applied = append(e.report.Applied, fx)
		return true
	}
	if oldScore-newScore > margin {
		e.report.ResolvedMI++
		e.resolvedCells[cellMemoKey] = true
		return false
	}
	return toUser()
}

// resolveOrderConflict implements the TD resolution: extend M_rank to
// confidence scores for both directions and retain the higher one
// (paper §4.2 case (2)). If the new direction wins, the losing direct
// edges are retracted by rebuilding the attribute's order from the
// surviving log.
func (e *Engine) resolveOrderConflict(fx Fix) bool {
	if e.env.Ranker == nil {
		e.report.Unresolved = append(e.report.Unresolved,
			UnresolvedConflict{&truth.Conflict{Kind: truth.OrderConflict, Rel: fx.Rel, Attr: fx.Attr}, fx})
		return false
	}
	rel := e.env.DB.Rel(fx.Rel)
	if rel == nil {
		return false
	}
	t1, t2 := rel.Get(fx.TID1), rel.Get(fx.TID2)
	if t1 == nil || t2 == nil {
		return false
	}
	fwd := e.env.Ranker.RankLeq(fx.Rel, t1, t2, fx.Attr)
	rev := e.env.Ranker.RankLeq(fx.Rel, t2, t1, fx.Attr)
	e.report.ResolvedTD++
	if fwd <= rev {
		// Existing direction wins; drop the new fix.
		return false
	}
	// New direction wins: retract the direct reverse edges and rebuild.
	key := fx.Rel + "." + fx.Attr
	var kept []Fix
	for _, old := range e.orderLog[key] {
		if old.TID1 == fx.TID2 && old.TID2 == fx.TID1 {
			e.report.RetractedTD++
			continue
		}
		kept = append(kept, old)
	}
	rebuilt := data.NewTemporalOrder(fx.Rel, fx.Attr)
	valid := true
	for _, old := range kept {
		if old.Strict {
			rebuilt.AddStrict(old.TID1, old.TID2)
		} else {
			rebuilt.AddWeak(old.TID1, old.TID2)
		}
	}
	if fx.Strict {
		if rebuilt.Leq(fx.TID2, fx.TID1) {
			valid = false
		} else {
			rebuilt.AddStrict(fx.TID1, fx.TID2)
		}
	} else {
		if rebuilt.Less(fx.TID2, fx.TID1) {
			valid = false
		} else {
			rebuilt.AddWeak(fx.TID1, fx.TID2)
		}
	}
	if !valid {
		// The conflict is entailed transitively by other fixes; keep the
		// existing order.
		return false
	}
	e.u.ReplaceOrder(fx.Rel, fx.Attr, rebuilt)
	e.orderLog[key] = append(kept, fx)
	e.report.Applied = append(e.report.Applied, fx)
	return true
}

// askOracle consults the user once per (rel, entity-class, attr): repeat
// questions about the same cell replay the memoised answer without
// counting as new manual effort. The whole memo-check/ask/memo-store is
// one critical section so concurrent deductions over the same cell still
// cost exactly one consultation, as in the serial engine. The question is
// posed for each class member in the class's (deterministic) order until
// one is answered: the user recognises the cell by whichever entity label
// they know, and the memoised answer must not depend on which member's
// deduction happened to reach the user first — that order races under the
// parallel chase.
func (e *Engine) askOracle(rel, eid, attr string, candidates []data.Value) (data.Value, bool) {
	if e.opts.Oracle == nil {
		return data.Value{}, false
	}
	members := e.u.ClassMembers(eid)
	// The key covers the candidate set too (order-canonicalised): the
	// user's answer may depend on which values they are shown, so a memo
	// hit must replay the answer to the same question only — otherwise the
	// first-asked candidate set would leak into every later question about
	// the cell, and which question asks first races under parallelism.
	sig := make([]string, len(candidates))
	for i, c := range candidates {
		sig[i] = c.Key()
	}
	sort.Strings(sig)
	key := rel + "\x1f" + members[0] + "\x1f" + attr + "\x1f" + strings.Join(sig, "\x1e")
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.oracleMemo[key]; ok {
		return v, true
	}
	e.report.OracleCalls++
	for _, m := range members {
		if answer, ok := e.opts.Oracle(rel, m, attr, candidates); ok {
			e.oracleMemo[key] = answer
			return answer, true
		}
	}
	return data.Value{}, false
}

// resolveValuePair decides which of two conflicting values is correct when
// a rule asserts t.A = s.B but both sides disagree. The decision cascade:
//
//  1. a side already validated in U (which includes Γ, the ground truth)
//     wins — the fix is then a logical consequence of rules + ground truth;
//  2. the correlation model M_c scores each candidate against both tuples'
//     validated context; a clear margin decides;
//  3. value rarity: the value that is drastically rarer in its column is
//     the error (typos and corrupted numbers are near-unique);
//  4. the user oracle (paper §4.2 case (1));
//  5. otherwise the pair stays unresolved and is reported.
func (e *Engine) resolveValuePair(bt predicate.Binding, attrT string, vt data.Value,
	bs predicate.Binding, attrS string, vs data.Value) (data.Value, bool) {

	_, validT := e.u.Cell(bt.Rel, bt.Tuple.EID, attrT)
	_, validS := e.u.Cell(bs.Rel, bs.Tuple.EID, attrS)
	switch {
	case validT && !validS:
		return vt, true
	case validS && !validT:
		return vs, true
	}

	// Correlation model: sum each candidate's strength over both tuples.
	score := func(v data.Value) float64 {
		s := 0.0
		if mc := e.corrFor(bt.Rel); mc != nil {
			if rel := e.env.DB.Rel(bt.Rel); rel != nil {
				if ai := rel.Schema.Index(attrT); ai >= 0 {
					s += mc.Strength(e.viewTuple(bt.Rel, bt.Tuple), nil, ai, v)
				}
			}
		}
		if mc := e.corrFor(bs.Rel); mc != nil {
			if rel := e.env.DB.Rel(bs.Rel); rel != nil {
				if ai := rel.Schema.Index(attrS); ai >= 0 {
					s += mc.Strength(e.viewTuple(bs.Rel, bs.Tuple), nil, ai, v)
				}
			}
		}
		return s
	}
	st, ss := score(vt), score(vs)
	// A wide margin: M_c only decides when the correlation evidence is
	// unambiguous (deterministic associations like amount+fee→total or a
	// clear witness majority); weakly separated candidates go to the user.
	// No frequency guessing here — a fix must be justified by ground
	// truth, correlation evidence, or the user, or it is not applied
	// (certain-fix discipline, paper §4.1).
	const margin = 0.25
	if st-ss > margin {
		e.mu.Lock()
		e.report.ResolvedMI++
		e.mu.Unlock()
		return vt, true
	}
	if ss-st > margin {
		e.mu.Lock()
		e.report.ResolvedMI++
		e.mu.Unlock()
		return vs, true
	}

	if answer, ok := e.askOracle(bt.Rel, bt.Tuple.EID, attrT, []data.Value{vt, vs}); ok {
		return answer, true
	}
	if answer, ok := e.askOracle(bs.Rel, bs.Tuple.EID, attrS, []data.Value{vt, vs}); ok {
		return answer, true
	}
	e.mu.Lock()
	e.report.Unresolved = append(e.report.Unresolved, UnresolvedConflict{
		Conflict: &truth.Conflict{Kind: truth.ValueConflict, Rel: bt.Rel, Attr: attrT, EID: bt.Tuple.EID, Old: vt, New: vs},
	})
	e.mu.Unlock()
	return data.Value{}, false
}

// corrFor finds a correlation model trained for the relation's schema.
func (e *Engine) corrFor(rel string) *ml.CorrelationModel {
	r := e.env.DB.Rel(rel)
	if r == nil {
		return nil
	}
	for _, m := range e.env.Corr {
		if m.Schema == r.Schema {
			return m
		}
	}
	return nil
}

// activate returns the rules whose precondition may newly fire given the
// fix kinds just produced (paper §4.1: "an REE++ is activated if at least
// one predicate in X is validated by the updated data").
func (e *Engine) activate(all []*ree.Rule, fixes []Fix) []*ree.Rule {
	cellTouched := map[string]bool{}  // rel.attr
	orderTouched := map[string]bool{} // rel.attr
	merged := false
	for _, fx := range fixes {
		switch fx.Kind {
		case FixCell:
			cellTouched[fx.Rel+"."+fx.Attr] = true
		case FixOrder:
			orderTouched[fx.Rel+"."+fx.Attr] = true
		case FixMerge, FixSeparate:
			merged = true
		}
	}
	var out []*ree.Rule
	for _, r := range all {
		if e.ruleFeeds(r, cellTouched, orderTouched, merged) {
			out = append(out, r)
			e.obs.Emit(obs.Event{Kind: "rule.activated", Rule: r.ID})
		}
	}
	return out
}

func (e *Engine) ruleFeeds(r *ree.Rule, cells, orders map[string]bool, merged bool) bool {
	touchAttr := func(varName, attr string) bool {
		rel := r.RelOf(varName)
		return rel != "" && cells[rel+"."+attr]
	}
	for _, p := range r.X {
		switch p.Kind {
		case predicate.KEID:
			if merged {
				return true
			}
		case predicate.KTemporal:
			rel := r.RelOf(p.T)
			if rel != "" && orders[rel+"."+p.A] {
				return true
			}
		case predicate.KConst, predicate.KNull, predicate.KNotNull, predicate.KMatch, predicate.KVal:
			if touchAttr(p.T, p.A) {
				return true
			}
		case predicate.KAttr:
			if touchAttr(p.T, p.A) || touchAttr(p.S, p.B) {
				return true
			}
		case predicate.KML:
			for _, a := range p.As {
				if touchAttr(p.T, a) {
					return true
				}
			}
			for _, b := range p.Bs {
				if touchAttr(p.S, b) {
					return true
				}
			}
		case predicate.KCorr, predicate.KPredict:
			// Correlation strength depends on the whole tuple.
			if merged {
				return true
			}
			rel := r.RelOf(p.T)
			for key := range cells {
				if len(key) > len(rel) && key[:len(rel)] == rel {
					return true
				}
			}
		case predicate.KHER, predicate.KRank:
			if merged {
				return true
			}
		}
	}
	// Merges also change cell visibility everywhere; be conservative when
	// the rule reads attribute values at all.
	if merged && len(r.X) > 0 {
		return true
	}
	return false
}

// dirtySet computes which tuples the fixes touched: every tuple of every
// entity class involved.
func (e *Engine) dirtySet(fixes []Fix) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	mark := func(rel, eid string) {
		for _, member := range e.u.ClassMembers(eid) {
			for relName, idx := range e.tuplesByEID {
				if rel != "" && relName != rel {
					continue
				}
				for _, t := range idx[member] {
					m := out[relName]
					if m == nil {
						m = make(map[int]bool)
						out[relName] = m
					}
					m[t.TID] = true
				}
			}
		}
	}
	for _, fx := range fixes {
		switch fx.Kind {
		case FixMerge, FixSeparate:
			mark("", fx.EID1)
			mark("", fx.EID2)
		case FixCell:
			mark(fx.Rel, fx.EID1)
		case FixOrder:
			mark(fx.Rel, fx.EID1)
			mark(fx.Rel, fx.EID2)
		}
	}
	return out
}

// Materialize writes validated cells back into the database (the
// user-visible "corrected" dataset) and returns the number of changed
// cells.
func (e *Engine) Materialize() int {
	n := 0
	for relName, rel := range e.env.DB.Relations {
		for _, t := range rel.Tuples {
			for i, a := range rel.Schema.Attrs {
				if v, ok := e.u.Cell(relName, t.EID, a.Name); ok && !v.Equal(t.Values[i]) {
					t.Values[i] = v
					n++
				}
			}
		}
	}
	if n > 0 {
		// Raw data changed underneath the interned columns; drop them so
		// any further Run (incremental mode) rebuilds from current values.
		e.exec.InvalidateInterned()
	}
	return n
}
