package predicate

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
)

// testEnv builds a tiny Store database, a Wiki graph, and all model kinds.
func testEnv(t *testing.T) (*Env, *data.Relation, *kg.Graph) {
	t.Helper()
	schema := mustSchema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
		data.Attribute{Name: "accu_sales", Type: data.TFloat},
	)
	rel := data.NewRelation(schema)
	db := data.NewDatabase()
	db.Add(rel)
	env := NewEnv(db)
	g := kg.New("Wiki")
	env.Graphs["Wiki"] = g
	env.Models.Register(ml.NewSimilarityMatcher("M_ER", 0.8))
	return env, rel, g
}

func TestEvalConstAndAttr(t *testing.T) {
	env, rel, _ := testEnv(t)
	t1 := rel.Insert("s1", data.S("Huawei"), data.S("Beijing"), data.F(11))
	t2 := rel.Insert("s2", data.S("Huawei"), data.S("Shanghai"), data.F(10))
	h := NewValuation().Bind("t", "Store", t1).Bind("s", "Store", t2)

	pConst := &Predicate{Kind: KConst, Op: Eq, T: "t", A: "location", C: data.S("Beijing")}
	if ok, err := pConst.Eval(env, h); err != nil || !ok {
		t.Errorf("const eq: %v %v", ok, err)
	}
	pGt := &Predicate{Kind: KAttr, Op: Gt, T: "t", A: "accu_sales", S: "s", B: "accu_sales"}
	if ok, err := pGt.Eval(env, h); err != nil || !ok {
		t.Errorf("attr gt: %v %v", ok, err)
	}
	pName := &Predicate{Kind: KAttr, Op: Eq, T: "t", A: "name", S: "s", B: "name"}
	if ok, _ := pName.Eval(env, h); !ok {
		t.Error("attr eq on same name")
	}
	// Unbound variable is an error, not false.
	pBad := &Predicate{Kind: KConst, Op: Eq, T: "zz", A: "location", C: data.S("x")}
	if _, err := pBad.Eval(env, h); err == nil {
		t.Error("unbound var must error")
	}
}

func TestEvalNullSemantics(t *testing.T) {
	env, rel, _ := testEnv(t)
	t1 := rel.Insert("s1", data.S("Nike"), data.Null(data.TString), data.F(1))
	h := NewValuation().Bind("t", "Store", t1)
	pc := &Predicate{Kind: KConst, Op: Eq, T: "t", A: "location", C: data.S("Beijing")}
	if ok, _ := pc.Eval(env, h); ok {
		t.Error("null never satisfies a comparison")
	}
	pn := &Predicate{Kind: KNull, T: "t", A: "location"}
	if ok, _ := pn.Eval(env, h); !ok {
		t.Error("null() must see the null")
	}
	pnn := &Predicate{Kind: KNotNull, T: "t", A: "name"}
	if ok, _ := pnn.Eval(env, h); !ok {
		t.Error("!null() on present value")
	}
}

func TestEvalEID(t *testing.T) {
	env, rel, _ := testEnv(t)
	a := rel.Insert("e1", data.S("x"), data.S("y"), data.F(0))
	b := rel.Insert("e1", data.S("x2"), data.S("y2"), data.F(0))
	c := rel.Insert("e2", data.S("x3"), data.S("y3"), data.F(0))
	h := NewValuation().Bind("t", "Store", a).Bind("s", "Store", b)
	p := &Predicate{Kind: KEID, Op: Eq, T: "t", S: "s"}
	if ok, _ := p.Eval(env, h); !ok {
		t.Error("same EID must be equal")
	}
	h2 := NewValuation().Bind("t", "Store", a).Bind("s", "Store", c)
	if ok, _ := p.Eval(env, h2); ok {
		t.Error("different EID must not be equal")
	}
	pneq := &Predicate{Kind: KEID, Op: Neq, T: "t", S: "s"}
	if ok, _ := pneq.Eval(env, h2); !ok {
		t.Error("neq on different EIDs")
	}
}

func TestEvalML(t *testing.T) {
	env, rel, _ := testEnv(t)
	a := rel.Insert("s1", data.S("IPhone 14 (Discount ID 41)"), data.S("x"), data.F(0))
	b := rel.Insert("s2", data.S("IPhone 14 (Discount Code 41)"), data.S("y"), data.F(0))
	h := NewValuation().Bind("t", "Store", a).Bind("s", "Store", b)
	p := &Predicate{Kind: KML, Model: "M_ER", T: "t", S: "s", As: []string{"name"}, Bs: []string{"name"}}
	if ok, err := p.Eval(env, h); err != nil || !ok {
		t.Errorf("ML match: %v %v", ok, err)
	}
	pBadModel := &Predicate{Kind: KML, Model: "M_missing", T: "t", S: "s", As: []string{"name"}, Bs: []string{"name"}}
	if _, err := pBadModel.Eval(env, h); err == nil {
		t.Error("missing model must error")
	}
}

func TestEvalTemporal(t *testing.T) {
	env, rel, _ := testEnv(t)
	a := rel.Insert("s1", data.S("x"), data.S("Beijing"), data.F(1))
	b := rel.Insert("s1", data.S("x"), data.S("Shanghai"), data.F(2))
	order := data.NewTemporalOrder("Store", "location")
	order.AddStrict(a.TID, b.TID)
	env.Orders = func(relName, attr string) *data.TemporalOrder {
		if relName == "Store" && attr == "location" {
			return order
		}
		return nil
	}
	h := NewValuation().Bind("t", "Store", a).Bind("s", "Store", b)
	weak := &Predicate{Kind: KTemporal, T: "t", S: "s", A: "location"}
	strict := &Predicate{Kind: KTemporal, T: "t", S: "s", A: "location", Strict: true}
	if ok, _ := weak.Eval(env, h); !ok {
		t.Error("weak order must hold")
	}
	if ok, _ := strict.Eval(env, h); !ok {
		t.Error("strict order must hold")
	}
	// Missing order => false, no error.
	other := &Predicate{Kind: KTemporal, T: "t", S: "s", A: "name"}
	if ok, err := other.Eval(env, h); ok || err != nil {
		t.Error("missing order must be false")
	}
}

func TestEvalExtraction(t *testing.T) {
	env, rel, g := testEnv(t)
	store := g.AddVertex("Huawei Flagship")
	city := g.AddVertex("Beijing")
	mustEdge(g, store, "LocationAt", city)
	env.HER[""] = ml.NewHERMatcher("HER", g, rel.Schema, 0.6, "name")
	env.PathM = ml.NewPathMatcher(g, 0.3)

	tp := rel.Insert("s3", data.S("Huawei Flagship"), data.S("Beijing"), data.F(11))
	h := NewValuation().Bind("t", "Store", tp).BindVertex("x", "Wiki", store)

	pv := &Predicate{Kind: KVertex, X: "x", Graph: "Wiki"}
	if ok, _ := pv.Eval(env, h); !ok {
		t.Error("vertex binding must satisfy vertex()")
	}
	pvWrong := &Predicate{Kind: KVertex, X: "x", Graph: "Other"}
	if ok, _ := pvWrong.Eval(env, h); ok {
		t.Error("wrong graph must fail vertex()")
	}
	pher := &Predicate{Kind: KHER, T: "t", X: "x"}
	if ok, err := pher.Eval(env, h); err != nil || !ok {
		t.Errorf("HER: %v %v", ok, err)
	}
	pmatch := &Predicate{Kind: KMatch, T: "t", A: "location", X: "x", Path: kg.Path{"LocationAt"}}
	if ok, err := pmatch.Eval(env, h); err != nil || !ok {
		t.Errorf("match: %v %v", ok, err)
	}
	pval := &Predicate{Kind: KVal, T: "t", A: "location", X: "x", Path: kg.Path{"LocationAt"}}
	if ok, err := pval.Eval(env, h); err != nil || !ok {
		t.Errorf("val check: %v %v", ok, err)
	}
}

func TestEvalCorrAndPredict(t *testing.T) {
	env, rel, _ := testEnv(t)
	for i := 0; i < 10; i++ {
		rel.Insert("e", data.S("Huawei"), data.S("Beijing"), data.F(5))
	}
	mc := ml.NewCorrelationModel("M_c", rel.Schema)
	mc.Train(rel.Tuples)
	env.Corr["M_c"] = mc
	env.Pred["M_d"] = ml.NewValuePredictor("M_d", mc, rel.Tuples)

	probe := rel.Insert("e", data.S("Huawei"), data.S("Beijing"), data.F(5))
	h := NewValuation().Bind("t", "Store", probe)

	pc := &Predicate{Kind: KCorr, Model: "M_c", T: "t", B: "location", C: data.S("Beijing"), Delta: 0.5}
	if ok, err := pc.Eval(env, h); err != nil || !ok {
		t.Errorf("corr with candidate: %v %v", ok, err)
	}
	pcCur := &Predicate{Kind: KCorr, Model: "M_c", T: "t", B: "location", Delta: 0.5}
	if ok, err := pcCur.Eval(env, h); err != nil || !ok {
		t.Errorf("corr with current value: %v %v", ok, err)
	}
	pd := &Predicate{Kind: KPredict, Model: "M_d", T: "t", B: "location"}
	if ok, err := pd.Eval(env, h); err != nil || !ok {
		t.Errorf("predict check: %v %v", ok, err)
	}
}

func TestPredicateString(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Predicate{Kind: KConst, Op: Eq, T: "t", A: "loc", C: data.S("Beijing")}, "t.loc = 'Beijing'"},
		{Predicate{Kind: KAttr, Op: Neq, T: "t", A: "a", S: "s", B: "b"}, "t.a != s.b"},
		{Predicate{Kind: KEID, Op: Eq, T: "t", S: "s"}, "t.eid = s.eid"},
		{Predicate{Kind: KML, Model: "M_ER", T: "t", S: "s", As: []string{"com"}, Bs: []string{"com"}}, "M_ER(t[com], s[com])"},
		{Predicate{Kind: KTemporal, T: "t", S: "s", A: "status"}, "t <=[status] s"},
		{Predicate{Kind: KTemporal, T: "t", S: "s", A: "status", Strict: true}, "t <[status] s"},
		{Predicate{Kind: KNull, T: "t", A: "price"}, "null(t.price)"},
		{Predicate{Kind: KVertex, X: "x", Graph: "Wiki"}, "vertex(x, Wiki)"},
		{Predicate{Kind: KHER, T: "t", X: "x"}, "HER(t, x)"},
		{Predicate{Kind: KVal, T: "t", A: "location", X: "x", Path: kg.Path{"LocationAt"}}, "t.location = val(x.(LocationAt))"},
		{Predicate{Kind: KPredict, Model: "M_d", T: "t", B: "price"}, "t.price = M_d(t, price)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String()=%q want %q", got, c.want)
		}
	}
}

func TestVars(t *testing.T) {
	p := Predicate{Kind: KAttr, T: "t", S: "s"}
	if vs := p.Vars(); len(vs) != 2 || vs[0] != "t" || vs[1] != "s" {
		t.Errorf("vars=%v", vs)
	}
	self := Predicate{Kind: KAttr, T: "t", S: "t"}
	if vs := self.Vars(); len(vs) != 1 {
		t.Errorf("self vars=%v", vs)
	}
	her := Predicate{Kind: KHER, T: "t", X: "x"}
	if vv := her.VertexVars(); len(vv) != 1 || vv[0] != "x" {
		t.Errorf("vertex vars=%v", vv)
	}
	if !her.IsML() {
		t.Error("HER is an ML predicate")
	}
	if (&Predicate{Kind: KConst}).IsML() {
		t.Error("const is not ML")
	}
}
