// Package predicate defines the predicate language of REE++ rules
// (paper §2): relation atoms, constant and attribute comparisons, ML
// predicates M(t[A̅], s[B̅]), temporal predicates t ⪯_A s / t ≺_A s, the
// ranking predicate M_rank(t, s, ⊗_A), extraction predicates vertex/HER/
// match/val over knowledge graphs, and correlation predicates
// M_c(t[A̅], B=c) ≥ δ and t[B] = M_d(t[A̅], B) — plus their evaluation
// against valuations.
package predicate

import (
	"fmt"
	"strings"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
)

// Op is a comparison operator ⊕ ∈ {=, ≠, <, ≤, >, ≥}.
type Op int

// Comparison operators.
const (
	Eq Op = iota
	Neq
	Lt
	Leq
	Gt
	Geq
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Neq:
		return "!="
	case Lt:
		return "<"
	case Leq:
		return "<="
	case Gt:
		return ">"
	case Geq:
		return ">="
	}
	return "?"
}

// Apply evaluates `a o b` on two non-null values.
func (o Op) Apply(a, b data.Value) bool {
	switch o {
	case Eq:
		return a.Equal(b)
	case Neq:
		return !a.Equal(b)
	case Lt:
		return a.Compare(b) < 0
	case Leq:
		return a.Compare(b) <= 0
	case Gt:
		return a.Compare(b) > 0
	case Geq:
		return a.Compare(b) >= 0
	}
	return false
}

// Kind discriminates the predicate families of REE++s.
type Kind int

// Predicate kinds. KEID is the ER form t.eid ⊕ s.eid; KRank is the
// M_rank(t, s, ⊗_A) ML ranking predicate; the rest map one-to-one onto the
// grammar of paper §2.
const (
	KConst    Kind = iota // t.A ⊕ c
	KAttr                 // t.A ⊕ s.B
	KEID                  // t.eid ⊕ s.eid (ER consequence/precondition)
	KML                   // M(t[A̅], s[B̅])
	KTemporal             // t ⪯_A s  /  t ≺_A s
	KRank                 // M_rank(t, s, ⊗_A)
	KNull                 // null(t.A)
	KNotNull              // !null(t.A)
	KVertex               // vertex(x, G)
	KHER                  // HER(t, x)
	KMatch                // match(t.A, x.ρ)
	KVal                  // t.A = val(x.ρ)
	KCorr                 // M_c(t, B[=c]) >= δ
	KPredict              // t.B = M_d(t, B)
)

// Predicate is one predicate of an REE++. Field use depends on Kind; unused
// fields are zero. T and S name tuple variables, X names a vertex variable.
type Predicate struct {
	Kind Kind
	Op   Op

	T, S string // tuple variables
	X    string // vertex variable

	A, B   string   // single attributes (A on T/X side, B on S side)
	As, Bs []string // attribute vectors for ML predicates

	C data.Value // constant operand

	Model  string  // ML model / ranker / correlation model name
	Delta  float64 // threshold δ for KCorr
	Strict bool    // strict (≺) vs weak (⪯) for KTemporal/KRank

	Graph string  // graph name for KVertex
	Path  kg.Path // label path for KMatch/KVal
}

// Vars returns the tuple variables referenced by the predicate, in
// first-use order, deduplicated.
func (p *Predicate) Vars() []string {
	var out []string
	add := func(v string) {
		if v == "" {
			return
		}
		for _, o := range out {
			if o == v {
				return
			}
		}
		out = append(out, v)
	}
	add(p.T)
	add(p.S)
	return out
}

// VertexVars returns the vertex variables referenced by the predicate.
func (p *Predicate) VertexVars() []string {
	if p.X == "" {
		return nil
	}
	return []string{p.X}
}

// IsML reports whether evaluating the predicate invokes an ML model.
func (p *Predicate) IsML() bool {
	switch p.Kind {
	case KML, KRank, KHER, KMatch, KCorr, KPredict:
		return true
	}
	return false
}

// String renders the predicate in the rule DSL syntax accepted by the
// parser in package ree.
func (p *Predicate) String() string {
	switch p.Kind {
	case KConst:
		return fmt.Sprintf("%s.%s %s %s", p.T, p.A, p.Op, literal(p.C))
	case KAttr:
		return fmt.Sprintf("%s.%s %s %s.%s", p.T, p.A, p.Op, p.S, p.B)
	case KEID:
		return fmt.Sprintf("%s.eid %s %s.eid", p.T, p.Op, p.S)
	case KML:
		return fmt.Sprintf("%s(%s[%s], %s[%s])", p.Model, p.T, strings.Join(p.As, ","), p.S, strings.Join(p.Bs, ","))
	case KTemporal:
		op := "<="
		if p.Strict {
			op = "<"
		}
		return fmt.Sprintf("%s %s[%s] %s", p.T, op, p.A, p.S)
	case KRank:
		op := "<="
		if p.Strict {
			op = "<"
		}
		return fmt.Sprintf("%s(%s, %s, %s[%s])", p.Model, p.T, p.S, op, p.A)
	case KNull:
		return fmt.Sprintf("null(%s.%s)", p.T, p.A)
	case KNotNull:
		return fmt.Sprintf("!null(%s.%s)", p.T, p.A)
	case KVertex:
		return fmt.Sprintf("vertex(%s, %s)", p.X, p.Graph)
	case KHER:
		return fmt.Sprintf("%s(%s, %s)", modelOr(p.Model, "HER"), p.T, p.X)
	case KMatch:
		return fmt.Sprintf("match(%s.%s, %s.%s)", p.T, p.A, p.X, p.Path)
	case KVal:
		return fmt.Sprintf("%s.%s = val(%s.%s)", p.T, p.A, p.X, p.Path)
	case KCorr:
		if p.C.IsNull() && !hasConst(p) {
			return fmt.Sprintf("%s(%s, %s) >= %g", p.Model, p.T, p.B, p.Delta)
		}
		return fmt.Sprintf("%s(%s, %s=%s) >= %g", p.Model, p.T, p.B, literal(p.C), p.Delta)
	case KPredict:
		return fmt.Sprintf("%s.%s = %s(%s, %s)", p.T, p.B, p.Model, p.T, p.B)
	}
	return "?"
}

func hasConst(p *Predicate) bool { return !p.C.IsNull() }

func modelOr(m, def string) string {
	if m == "" {
		return def
	}
	return m
}

func literal(v data.Value) string {
	if v.IsNull() {
		return "null"
	}
	if v.Kind() == data.TString {
		return "'" + strings.ReplaceAll(v.Str(), "'", "\\'") + "'"
	}
	if v.Kind() == data.TTime {
		return "'" + v.String() + "'"
	}
	return v.String()
}
