package predicate

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
)

func TestOpApplyAllOperators(t *testing.T) {
	cases := []struct {
		op   Op
		a, b data.Value
		want bool
	}{
		{Eq, data.I(1), data.I(1), true},
		{Neq, data.I(1), data.I(2), true},
		{Lt, data.I(1), data.I(2), true},
		{Lt, data.I(2), data.I(2), false},
		{Leq, data.I(2), data.I(2), true},
		{Gt, data.I(3), data.I(2), true},
		{Geq, data.I(2), data.I(2), true},
		{Geq, data.I(1), data.I(2), false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %s %v = %v want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{Eq: "=", Neq: "!=", Lt: "<", Leq: "<=", Gt: ">", Geq: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("op %d string %q want %q", op, op.String(), s)
		}
	}
}

// stubRanker orders by TID.
type stubRanker struct{}

func (stubRanker) Name() string { return "M_rank" }
func (stubRanker) RankLeq(rel string, older, newer *data.Tuple, attr string) float64 {
	if older.TID <= newer.TID {
		return 0.8
	}
	return 0.2
}

func TestEvalRank(t *testing.T) {
	env, rel, _ := testEnv(t)
	a := rel.Insert("e1", data.S("x"), data.S("y"), data.F(1))
	b := rel.Insert("e2", data.S("x"), data.S("y"), data.F(2))
	h := NewValuation().Bind("t", "Store", a).Bind("s", "Store", b)

	weak := &Predicate{Kind: KRank, Model: "M_rank", T: "t", S: "s", A: "accu_sales"}
	if _, err := weak.Eval(env, h); err == nil {
		t.Error("missing ranker must error")
	}
	env.Ranker = stubRanker{}
	if ok, err := weak.Eval(env, h); err != nil || !ok {
		t.Errorf("weak rank: %v %v", ok, err)
	}
	strict := &Predicate{Kind: KRank, Model: "M_rank", T: "t", S: "s", A: "accu_sales", Strict: true}
	if ok, err := strict.Eval(env, h); err != nil || !ok {
		t.Errorf("strict rank: %v %v", ok, err)
	}
	// Reversed strict must fail (ranker favours ascending TIDs).
	h2 := NewValuation().Bind("t", "Store", b).Bind("s", "Store", a)
	if ok, _ := strict.Eval(env, h2); ok {
		t.Error("reversed strict rank must be false")
	}
}

func TestEvalMissingDependencies(t *testing.T) {
	env, rel, _ := testEnv(t)
	tp := rel.Insert("e1", data.S("x"), data.S("y"), data.F(1))
	h := NewValuation().Bind("t", "Store", tp).BindVertex("x", "Wiki", 0)

	if _, err := (&Predicate{Kind: KHER, T: "t", X: "x"}).Eval(env, h); err == nil {
		t.Error("missing HER matcher must error")
	}
	if _, err := (&Predicate{Kind: KMatch, T: "t", A: "location", X: "x"}).Eval(env, h); err == nil {
		t.Error("missing path matcher must error")
	}
	if _, err := (&Predicate{Kind: KCorr, Model: "nope", T: "t", B: "location", Delta: 0.5}).Eval(env, h); err == nil {
		t.Error("missing correlation model must error")
	}
	if _, err := (&Predicate{Kind: KPredict, Model: "nope", T: "t", B: "location"}).Eval(env, h); err == nil {
		t.Error("missing predictor must error")
	}
	// Unknown kind errors.
	if _, err := (&Predicate{Kind: Kind(99)}).Eval(env, h); err == nil {
		t.Error("unknown kind must error")
	}
	// Unbound vertex variable errors.
	h2 := NewValuation().Bind("t", "Store", tp)
	if _, err := (&Predicate{Kind: KVertex, X: "zz", Graph: "Wiki"}).Eval(env, h2); err == nil {
		t.Error("unbound vertex var must error")
	}
}

func TestEvalKValMissingGraph(t *testing.T) {
	env, rel, _ := testEnv(t)
	tp := rel.Insert("e1", data.S("x"), data.S("y"), data.F(1))
	h := NewValuation().Bind("t", "Store", tp).BindVertex("x", "Ghost", 0)
	p := &Predicate{Kind: KVal, T: "t", A: "location", X: "x"}
	if _, err := p.Eval(env, h); err == nil {
		t.Error("unregistered graph must error")
	}
}

func TestCorrStringWithAndWithoutConstant(t *testing.T) {
	withC := Predicate{Kind: KCorr, Model: "M_c", T: "t", B: "area", C: data.S("010"), Delta: 0.8}
	if got := withC.String(); got != "M_c(t, area='010') >= 0.8" {
		t.Errorf("corr with const: %q", got)
	}
	noC := Predicate{Kind: KCorr, Model: "M_c", T: "t", B: "area", Delta: 0.5}
	if got := noC.String(); got != "M_c(t, area) >= 0.5" {
		t.Errorf("corr without const: %q", got)
	}
}
