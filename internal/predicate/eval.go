package predicate

import (
	"fmt"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
)

// Binding attaches a tuple variable to a concrete tuple of a relation.
type Binding struct {
	Rel   string
	Tuple *data.Tuple
}

// VertexBinding attaches a vertex variable to a vertex of a graph.
type VertexBinding struct {
	Graph string
	ID    kg.VertexID
}

// Valuation is a mapping h of tuple variables to tuples and vertex
// variables to vertices (paper §2.1 and §2.3 semantics).
type Valuation struct {
	Tuples   map[string]Binding
	Vertices map[string]VertexBinding
}

// NewValuation creates an empty valuation.
func NewValuation() *Valuation {
	return &Valuation{Tuples: make(map[string]Binding), Vertices: make(map[string]VertexBinding)}
}

// Bind maps a tuple variable.
func (v *Valuation) Bind(varName, rel string, t *data.Tuple) *Valuation {
	v.Tuples[varName] = Binding{Rel: rel, Tuple: t}
	return v
}

// BindVertex maps a vertex variable.
func (v *Valuation) BindVertex(varName, graph string, id kg.VertexID) *Valuation {
	v.Vertices[varName] = VertexBinding{Graph: graph, ID: id}
	return v
}

// Env carries everything predicate evaluation may need: the database, the
// registered ML models, the temporal orders, and the knowledge graphs.
// ValueOf, when non-nil, overrides attribute access — the chase supplies a
// hook that reads validated values from the fix set U instead of raw data
// (paper §4.1 condition (1)).
type Env struct {
	DB     *data.Database
	Models *ml.Registry
	Ranker ml.Ranker
	Corr   map[string]*ml.CorrelationModel
	Pred   map[string]*ml.ValuePredictor
	HER    map[string]*ml.HERMatcher
	PathM  *ml.PathMatcher
	Graphs map[string]*kg.Graph

	// Orders resolves the temporal order for rel.attr; nil means "no
	// temporal information" and temporal predicates evaluate to false.
	Orders func(rel, attr string) *data.TemporalOrder

	// ValueOf returns the (possibly validated) value of t[attr]. ok=false
	// means the value is not available/validated. When nil, the raw tuple
	// value is used (detection semantics).
	ValueOf func(rel string, t *data.Tuple, attr string) (data.Value, bool)
}

// NewEnv creates an evaluation environment over a database with empty
// model tables.
func NewEnv(db *data.Database) *Env {
	return &Env{
		DB:     db,
		Models: ml.NewRegistry(),
		Corr:   make(map[string]*ml.CorrelationModel),
		Pred:   make(map[string]*ml.ValuePredictor),
		HER:    make(map[string]*ml.HERMatcher),
		Graphs: make(map[string]*kg.Graph),
	}
}

// value reads t[attr] through the ValueOf hook or directly.
func (e *Env) value(rel string, t *data.Tuple, attr string) (data.Value, bool) {
	if e.ValueOf != nil {
		return e.ValueOf(rel, t, attr)
	}
	return e.rawValue(rel, t, attr)
}

// rawValue reads t[attr] from the tuple itself, bypassing any ValueOf hook.
func (e *Env) rawValue(rel string, t *data.Tuple, attr string) (data.Value, bool) {
	r := e.DB.Rel(rel)
	if r == nil {
		return data.Value{}, false
	}
	i := r.Schema.Index(attr)
	if i < 0 || i >= len(t.Values) {
		return data.Value{}, false
	}
	return t.Values[i], true
}

// values reads a vector t[attrs].
func (e *Env) values(rel string, t *data.Tuple, attrs []string) []data.Value {
	out := make([]data.Value, len(attrs))
	for i, a := range attrs {
		v, ok := e.value(rel, t, a)
		if !ok {
			v = data.Value{}
		}
		out[i] = v
	}
	return out
}

// schemaIndex resolves attr's index in rel's schema.
func (e *Env) schemaIndex(rel, attr string) int {
	r := e.DB.Rel(rel)
	if r == nil {
		return -1
	}
	return r.Schema.Index(attr)
}

// Eval evaluates h |= p. An error indicates a malformed predicate or a
// missing model/graph — not a false predicate.
func (p *Predicate) Eval(env *Env, h *Valuation) (bool, error) {
	switch p.Kind {
	case KConst:
		b, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		v, ok := env.value(b.Rel, b.Tuple, p.A)
		if !ok {
			return false, nil
		}
		if v.IsNull() {
			// Null compares unknown — only "= null"/"!= null" are decidable
			// through the dedicated KNull predicate.
			return false, nil
		}
		return p.Op.Apply(v, p.C), nil

	case KAttr:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bs, ok := h.Tuples[p.S]
		if !ok {
			return false, unbound(p.S)
		}
		vt, ok1 := env.value(bt.Rel, bt.Tuple, p.A)
		vs, ok2 := env.value(bs.Rel, bs.Tuple, p.B)
		if !ok1 || !ok2 || vt.IsNull() || vs.IsNull() {
			return false, nil
		}
		return p.Op.Apply(vt, vs), nil

	case KEID:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bs, ok := h.Tuples[p.S]
		if !ok {
			return false, unbound(p.S)
		}
		eq := bt.Tuple.EID == bs.Tuple.EID
		if p.Op == Neq {
			return !eq, nil
		}
		return eq, nil

	case KML:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bs, ok := h.Tuples[p.S]
		if !ok {
			return false, unbound(p.S)
		}
		m, err := env.Models.Get(p.Model)
		if err != nil {
			return false, err
		}
		left := env.values(bt.Rel, bt.Tuple, p.As)
		right := env.values(bs.Rel, bs.Tuple, p.Bs)
		return m.Predict(left, right), nil

	case KTemporal:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bs, ok := h.Tuples[p.S]
		if !ok {
			return false, unbound(p.S)
		}
		if env.Orders == nil {
			return false, nil
		}
		o := env.Orders(bt.Rel, p.A)
		if o == nil {
			return false, nil
		}
		if p.Strict {
			return o.Less(bt.Tuple.TID, bs.Tuple.TID), nil
		}
		return o.Leq(bt.Tuple.TID, bs.Tuple.TID), nil

	case KRank:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bs, ok := h.Tuples[p.S]
		if !ok {
			return false, unbound(p.S)
		}
		if env.Ranker == nil {
			return false, fmt.Errorf("predicate %s: no ranker registered", p)
		}
		leq := env.Ranker.RankLeq(bt.Rel, bt.Tuple, bs.Tuple, p.A)
		if p.Strict {
			rev := env.Ranker.RankLeq(bt.Rel, bs.Tuple, bt.Tuple, p.A)
			return leq >= 0.5 && rev < 0.5, nil
		}
		return leq >= 0.5, nil

	case KNull, KNotNull:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		// null(t.A) checks the raw data D, not the fix set: a deduced value
		// does not make the cell non-missing in D, and competing imputation
		// rules must still fire so their conflict can be resolved
		// (paper §4.2, MI case).
		v, ok := env.rawValue(bt.Rel, bt.Tuple, p.A)
		isNull := !ok || v.IsNull()
		if p.Kind == KNotNull {
			return !isNull, nil
		}
		return isNull, nil

	case KVertex:
		bx, ok := h.Vertices[p.X]
		if !ok {
			return false, unbound(p.X)
		}
		return bx.Graph == p.Graph, nil

	case KHER:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bx, ok := h.Vertices[p.X]
		if !ok {
			return false, unbound(p.X)
		}
		her := env.HER[bt.Rel]
		if her == nil {
			her = env.HER[p.Model]
		}
		if her == nil {
			her = env.HER[""]
		}
		if her == nil {
			return false, fmt.Errorf("predicate %s: no HER matcher registered", p)
		}
		return her.Match(bt.Tuple, bx.ID), nil

	case KMatch:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		_ = bt
		bx, ok := h.Vertices[p.X]
		if !ok {
			return false, unbound(p.X)
		}
		if env.PathM == nil {
			return false, fmt.Errorf("predicate %s: no path matcher registered", p)
		}
		return env.PathM.Match(p.A, bx.ID, p.Path), nil

	case KVal:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		bx, ok := h.Vertices[p.X]
		if !ok {
			return false, unbound(p.X)
		}
		g := env.Graphs[bx.Graph]
		if g == nil {
			return false, fmt.Errorf("predicate %s: graph %q not registered", p, bx.Graph)
		}
		want, okv := g.Val(bx.ID, p.Path)
		if !okv {
			return false, nil
		}
		v, ok := env.value(bt.Rel, bt.Tuple, p.A)
		if !ok || v.IsNull() {
			return false, nil
		}
		return v.Equal(data.S(want)), nil

	case KCorr:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		mc := env.Corr[p.Model]
		if mc == nil {
			return false, fmt.Errorf("predicate %s: correlation model %q not registered", p, p.Model)
		}
		bIdx := env.schemaIndex(bt.Rel, p.B)
		if bIdx < 0 {
			return false, fmt.Errorf("predicate %s: attribute %q not in %s", p, p.B, bt.Rel)
		}
		cand := p.C
		if cand.IsNull() {
			v, okv := env.value(bt.Rel, bt.Tuple, p.B)
			if !okv || v.IsNull() {
				return false, nil
			}
			cand = v
		}
		return mc.Strength(bt.Tuple, nil, bIdx, cand) >= p.Delta, nil

	case KPredict:
		bt, ok := h.Tuples[p.T]
		if !ok {
			return false, unbound(p.T)
		}
		md := env.Pred[p.Model]
		if md == nil {
			return false, fmt.Errorf("predicate %s: value predictor %q not registered", p, p.Model)
		}
		bIdx := env.schemaIndex(bt.Rel, p.B)
		if bIdx < 0 {
			return false, fmt.Errorf("predicate %s: attribute %q not in %s", p, p.B, bt.Rel)
		}
		suggested, _, okp := md.Suggest(bt.Tuple, bIdx)
		if !okp {
			return false, nil
		}
		v, okv := env.value(bt.Rel, bt.Tuple, p.B)
		if !okv || v.IsNull() {
			return false, nil
		}
		return v.Equal(suggested), nil
	}
	return false, fmt.Errorf("predicate: unknown kind %d", p.Kind)
}

func unbound(v string) error { return fmt.Errorf("predicate: unbound variable %q", v) }
