package truth

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/rockclean/rock/internal/data"
)

// TestJournalReplayEquivalence is the replication property the
// distributed chase depends on: a random mutation sequence recorded on
// a journaled FixSet, replayed over a fresh replica, must end in a
// Snapshot-identical state. Conflicting and no-op mutations are not
// recorded, so the replayed log must also be conflict-free.
func TestJournalReplayEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		primary := NewFixSet()
		primary.StartJournal()

		eid := func() string { return fmt.Sprintf("e%d", rng.Intn(12)) }
		attrs := []string{"a", "b", "c"}
		var ops []Op
		for i := 0; i < 200; i++ {
			switch rng.Intn(6) {
			case 0:
				primary.MergeEIDs(eid(), eid())
			case 1:
				primary.SeparateEIDs(eid(), eid())
			case 2:
				primary.SetCell("R", eid(), attrs[rng.Intn(3)], data.I(int64(rng.Intn(5))))
			case 3:
				primary.ReplaceCell("R", eid(), attrs[rng.Intn(3)], data.S(fmt.Sprint(rng.Intn(5))))
			case 4:
				primary.AddOrder("R", "ts", rng.Intn(8), rng.Intn(8), rng.Intn(2) == 0)
			case 5:
				// Round barrier: ship what is recorded so far, as the
				// coordinator does between chase rounds.
				ops = append(ops, primary.TakeJournal()...)
			}
		}
		ops = append(ops, primary.TakeJournal()...)

		replica := NewFixSet()
		if err := replica.Replay(ops); err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if got, want := replica.Snapshot(), primary.Snapshot(); got != want {
			t.Fatalf("seed %d: replica diverged after replay:\nprimary %d bytes\nreplica %d bytes",
				seed, len(want), len(got))
		}
		m1, c1, o1 := primary.Stats()
		m2, c2, o2 := replica.Stats()
		if m1 != m2 || c1 != c2 || o1 != o2 {
			t.Fatalf("seed %d: stats diverged: primary %d/%d/%d, replica %d/%d/%d",
				seed, m1, c1, o1, m2, c2, o2)
		}
	}
}

// TestJournalOffByDefault: a FixSet without StartJournal records
// nothing and pays nothing.
func TestJournalOffByDefault(t *testing.T) {
	f := NewFixSet()
	f.MergeEIDs("a", "b")
	f.SetCell("R", "a", "x", data.I(1))
	if ops := f.TakeJournal(); ops != nil {
		t.Fatalf("journal off: TakeJournal = %v, want nil", ops)
	}
}

// TestReplayDetectsDivergence: replaying a log onto a replica whose
// state contradicts the recording base must surface the conflict as an
// error, not silently fork the truth.
func TestReplayDetectsDivergence(t *testing.T) {
	primary := NewFixSet()
	primary.StartJournal()
	if changed, conflict := primary.MergeEIDs("a", "b"); !changed || conflict != nil {
		t.Fatal("merge on primary should succeed")
	}

	replica := NewFixSet()
	replica.SeparateEIDs("a", "b") // diverged: replica validated a ≠ b
	if err := replica.Replay(primary.TakeJournal()); err == nil {
		t.Fatal("replay over a diverged replica should error")
	}
}
