package truth

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
)

func TestClassesEnumeration(t *testing.T) {
	f := NewFixSet()
	f.MergeEIDs("a", "b")
	f.MergeEIDs("b", "c")
	f.MergeEIDs("x", "y")
	f.SeparateEIDs("a", "z") // singleton z must not appear
	classes := f.Classes()
	if len(classes) != 2 {
		t.Fatalf("classes=%v", classes)
	}
	if classes[0][0] != "a" || len(classes[0]) != 3 {
		t.Errorf("first class=%v", classes[0])
	}
	if classes[1][0] != "x" || len(classes[1]) != 2 {
		t.Errorf("second class=%v", classes[1])
	}
}

func TestOrdersAccessor(t *testing.T) {
	f := NewFixSet()
	f.AddOrder("R", "a", 1, 2, true)
	f.AddOrder("S", "b", 3, 4, false)
	orders := f.Orders()
	if len(orders) != 2 {
		t.Fatalf("orders=%d", len(orders))
	}
	if !orders["R.a"].Less(1, 2) {
		t.Error("strict edge lost")
	}
	if !orders["S.b"].Leq(3, 4) {
		t.Error("weak edge lost")
	}
}

func TestReplaceCellAndOrder(t *testing.T) {
	f := NewFixSet()
	f.SetCell("R", "e", "a", data.S("old"))
	f.ReplaceCell("R", "e", "a", data.S("new"))
	if v, _ := f.Cell("R", "e", "a"); v.Str() != "new" {
		t.Error("replace cell")
	}
	f.AddOrder("R", "a", 1, 2, true)
	rebuilt := data.NewTemporalOrder("R", "a")
	rebuilt.AddStrict(2, 1)
	f.ReplaceOrder("R", "a", rebuilt)
	if !f.Order("R", "a").Less(2, 1) || f.Order("R", "a").Less(1, 2) {
		t.Error("replace order")
	}
}

func TestClassMembersAfterMerges(t *testing.T) {
	f := NewFixSet()
	f.MergeEIDs("p", "q")
	m := f.ClassMembers("q")
	if len(m) != 2 {
		t.Errorf("members=%v", m)
	}
	if got := f.ClassMembers("solo"); len(got) != 1 || got[0] != "solo" {
		t.Errorf("singleton members=%v", got)
	}
}

func TestSeparateIdempotent(t *testing.T) {
	f := NewFixSet()
	if ch, c := f.SeparateEIDs("a", "b"); !ch || c != nil {
		t.Fatal("first separate")
	}
	if ch, c := f.SeparateEIDs("b", "a"); ch || c != nil {
		t.Error("repeat separate (either order) is a no-op")
	}
}

func TestMergeReKeysNeqEntries(t *testing.T) {
	f := NewFixSet()
	f.SeparateEIDs("a", "z")
	f.MergeEIDs("a", "b") // the class containing a absorbs b
	if !f.DistinctEntity("b", "z") {
		t.Error("distinctness must survive re-keying after a merge")
	}
	if _, c := f.MergeEIDs("b", "z"); c == nil {
		t.Error("merging across a separation must conflict after re-keying")
	}
}

func TestConflictErrorStrings(t *testing.T) {
	cases := []*Conflict{
		{Kind: ValueConflict, Rel: "R", Attr: "a", EID: "e", Old: data.S("x"), New: data.S("y")},
		{Kind: EIDConflict, A: "a", B: "b"},
		{Kind: OrderConflict, Rel: "R", Attr: "a", A: "1", B: "2"},
	}
	for _, c := range cases {
		if c.Error() == "" || c.Error() == "unknown conflict" {
			t.Errorf("conflict %d renders poorly: %q", c.Kind, c.Error())
		}
	}
}
