package truth

import (
	"fmt"

	"github.com/rockclean/rock/internal/data"
)

// The journal is the replication primitive of the distributed chase
// (internal/cluster/remote): the coordinator owns the authoritative
// FixSet, records every primitive mutation its merge/apply phase
// performs, and ships the op log to worker replicas at the next round
// barrier. A replica that replays the log over an identical starting
// FixSet ends in an identical state — union-find roots, cell keys and
// order closures are all deterministic functions of the op sequence —
// so workers deduce against exactly the truth the coordinator holds.

// OpKind enumerates the six primitive FixSet mutations.
type OpKind int

// Op kinds, one per FixSet write method.
const (
	OpMergeEIDs OpKind = iota
	OpSeparateEIDs
	OpSetCell
	OpReplaceCell
	OpAddOrder
	OpReplaceOrder
)

// Op is one recorded mutation. Fields are used per kind:
// merge/separate use A, B (the original EIDs, not roots — replay
// re-derives roots from its own union-find, which is state-identical);
// cell ops use Rel, Attr, A (EID), Value; AddOrder uses Rel, Attr,
// TID1 (older), TID2 (newer), Strict; ReplaceOrder carries the whole
// replacement order as covering pairs with per-pair strictness.
type Op struct {
	Kind        OpKind
	A, B        string
	Rel, Attr   string
	Value       data.Value
	TID1, TID2  int
	Strict      bool
	OrderPairs  [][2]int
	OrderStrict []bool
}

// StartJournal begins (or resets) mutation recording.
func (f *FixSet) StartJournal() { f.journal = []Op{} }

// TakeJournal returns the ops recorded since the last call (or
// StartJournal) and resets the log. Nil when journaling is off.
func (f *FixSet) TakeJournal() []Op {
	if f.journal == nil {
		return nil
	}
	out := f.journal
	f.journal = []Op{}
	return out
}

func (f *FixSet) record(op Op) {
	if f.journal != nil {
		f.journal = append(f.journal, op)
	}
}

// encodeOrder serializes a temporal order as its covering pairs plus
// per-pair strictness; rebuilding via AddStrict/AddWeak reproduces the
// same closure.
func encodeOrder(o *data.TemporalOrder) ([][2]int, []bool) {
	pairs := o.Pairs()
	strict := make([]bool, len(pairs))
	for i, p := range pairs {
		strict[i] = o.Less(p[0], p[1])
	}
	return pairs, strict
}

// Replay applies a recorded op sequence to f. Replaying a journal onto
// a replica of the state it was recorded against cannot conflict; a
// conflict therefore means the replica diverged, and is returned as an
// error.
func (f *FixSet) Replay(ops []Op) error {
	for i, op := range ops {
		var conflict *Conflict
		switch op.Kind {
		case OpMergeEIDs:
			_, conflict = f.MergeEIDs(op.A, op.B)
		case OpSeparateEIDs:
			_, conflict = f.SeparateEIDs(op.A, op.B)
		case OpSetCell:
			_, conflict = f.SetCell(op.Rel, op.A, op.Attr, op.Value)
		case OpReplaceCell:
			f.ReplaceCell(op.Rel, op.A, op.Attr, op.Value)
		case OpAddOrder:
			_, conflict = f.AddOrder(op.Rel, op.Attr, op.TID1, op.TID2, op.Strict)
		case OpReplaceOrder:
			o := data.NewTemporalOrder(op.Rel, op.Attr)
			for j, p := range op.OrderPairs {
				if op.OrderStrict[j] {
					o.AddStrict(p[0], p[1])
				} else {
					o.AddWeak(p[0], p[1])
				}
			}
			f.ReplaceOrder(op.Rel, op.Attr, o)
		default:
			return fmt.Errorf("journal op %d: unknown kind %d", i, op.Kind)
		}
		if conflict != nil {
			return fmt.Errorf("journal op %d: replica diverged: %w", i, conflict)
		}
	}
	return nil
}
