// Package truth maintains the fixes and ground truth of Rock's chase
// (paper §4.1): U = (E=, E⪯), where E= holds entity-identification classes
// [EID]= and validated attribute values [EID.A]=, and E⪯ holds validated
// temporal orders [A]⪯. Ground truth Γ = (Γ=, Γ⪯) is a FixSet seeded from
// master data and timestamps; the chase extends a copy of it and checks
// validity (no conflicting fixes) after every step.
package truth

import (
	"fmt"
	"sort"

	"github.com/rockclean/rock/internal/data"
)

// UnionFind tracks entity-identification classes over EID strings.
type UnionFind struct {
	parent  map[string]string
	rank    map[string]int
	members map[string][]string // root -> all elements of the class
}

// NewUnionFind creates an empty structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent:  make(map[string]string),
		rank:    make(map[string]int),
		members: make(map[string][]string),
	}
}

// Find returns the class representative of x, creating a singleton class on
// first sight. It mutates the structure (path compression, singleton
// creation) and must only be called from write paths; concurrent readers
// use FindRO.
func (u *UnionFind) Find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		u.members[x] = []string{x}
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// FindRO returns the class representative of x without mutating the
// structure: no path compression, and an unseen x is its own representative.
// Safe for concurrent use as long as no writer runs at the same time — the
// chase reads the start-of-round fix set from many workers and applies
// fixes only after they join.
func (u *UnionFind) FindRO(x string) string {
	for {
		p, ok := u.parent[x]
		if !ok || p == x {
			return x
		}
		x = p
	}
}

// Union merges the classes of a and b; it reports whether anything changed.
func (u *UnionFind) Union(a, b string) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.members[ra] = append(u.members[ra], u.members[rb]...)
	delete(u.members, rb)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// Members returns every element of x's class (including x). Read-only:
// safe for concurrent readers while no writer runs.
func (u *UnionFind) Members(x string) []string {
	if m, ok := u.members[u.FindRO(x)]; ok {
		return m
	}
	return []string{x}
}

// Same reports whether a and b are in the same class. Read-only.
func (u *UnionFind) Same(a, b string) bool { return u.FindRO(a) == u.FindRO(b) }

// Clone deep-copies the structure.
func (u *UnionFind) Clone() *UnionFind {
	c := NewUnionFind()
	for k, v := range u.parent {
		c.parent[k] = v
	}
	for k, v := range u.rank {
		c.rank[k] = v
	}
	for k, v := range u.members {
		c.members[k] = append([]string(nil), v...)
	}
	return c
}

// ConflictKind classifies why a fix set would become invalid.
type ConflictKind int

// Conflict kinds, matching the validity conditions of paper §4.1: (a) an
// attribute deduced to hold two distinct constants, or an entity merge
// implying such a clash or contradicting a validated non-identity; (b) a
// temporal order with t1 ≺ t2 and t2 ⪯ t1.
const (
	ValueConflict ConflictKind = iota
	EIDConflict
	OrderConflict
)

// Conflict describes a rejected fix.
type Conflict struct {
	Kind ConflictKind
	// Rel/Attr/EID locate the clash for value conflicts.
	Rel, Attr, EID string
	Old, New       data.Value
	// A, B are the entities (EID conflict) or tuple ids rendered as
	// strings (order conflict).
	A, B string
}

// Error renders the conflict.
func (c *Conflict) Error() string {
	switch c.Kind {
	case ValueConflict:
		return fmt.Sprintf("value conflict on %s.%s of entity %s: %v vs %v", c.Rel, c.Attr, c.EID, c.Old, c.New)
	case EIDConflict:
		return fmt.Sprintf("entity conflict: %s and %s validated distinct but deduced equal", c.A, c.B)
	case OrderConflict:
		return fmt.Sprintf("temporal order conflict on %s.%s between tuples %s and %s", c.Rel, c.Attr, c.A, c.B)
	}
	return "unknown conflict"
}

type cellKey struct {
	rel, attr, eidRoot string
}

type eidPair struct{ a, b string } // a < b, class roots at insertion time

// FixSet is U = (E=, E⪯).
type FixSet struct {
	eids *UnionFind
	// neq records validated non-identities (consequences t.eid != s.eid).
	neq map[eidPair]bool
	// cells records [EID.A]= singletons: the validated constant for the
	// attribute of an entity class.
	cells map[cellKey]data.Value
	// orders records [A]⪯ per relation.attr.
	orders map[string]*data.TemporalOrder

	// touched, when non-nil, records every cell whose validated value was
	// set, replaced, or extended to new entity members (a merge re-roots
	// the class, so every cell of the merged class counts as touched).
	// The incremental clean diffs only these cells against raw data
	// instead of scanning the whole database (see rock.CleanIncremental).
	touched map[cellKey]bool

	// journal, when non-nil, records every successful mutation as a
	// replayable Op (see journal.go) — the replication log of the
	// distributed chase.
	journal []Op

	// counters for reporting
	merges, cellFixes, orderFixes int
}

// NewFixSet creates an empty fix set.
func NewFixSet() *FixSet {
	return &FixSet{
		eids:   NewUnionFind(),
		neq:    make(map[eidPair]bool),
		cells:  make(map[cellKey]data.Value),
		orders: make(map[string]*data.TemporalOrder),
	}
}

// StartTouchTracking begins (or resets) touched-cell tracking: from now
// on every cell fix, replacement, and merge-extended cell is recorded
// until the next call.
func (f *FixSet) StartTouchTracking() {
	f.touched = make(map[cellKey]bool)
}

// TouchedCell locates one validated cell recorded by touch tracking;
// EIDRoot is the entity-class representative at observation time (expand
// with ClassMembers).
type TouchedCell struct {
	Rel, EIDRoot, Attr string
}

// TouchedCells returns every cell touched since StartTouchTracking, in
// deterministic order. Nil when tracking is off.
func (f *FixSet) TouchedCells() []TouchedCell {
	if f.touched == nil {
		return nil
	}
	out := make([]TouchedCell, 0, len(f.touched))
	for k := range f.touched {
		// Re-root stale keys: a merge after the touch may have absorbed
		// the recorded root into a larger class.
		out = append(out, TouchedCell{Rel: k.rel, EIDRoot: f.eids.FindRO(k.eidRoot), Attr: k.attr})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		if a.EIDRoot != b.EIDRoot {
			return a.EIDRoot < b.EIDRoot
		}
		return a.Attr < b.Attr
	})
	return out
}

func (f *FixSet) touch(k cellKey) {
	if f.touched != nil {
		f.touched[k] = true
	}
}

func canonPair(a, b string) eidPair {
	if a > b {
		a, b = b, a
	}
	return eidPair{a, b}
}

// SameEntity reports whether the two EIDs are validated identical.
// Read-only: safe for concurrent readers while no fix is being applied.
func (f *FixSet) SameEntity(a, b string) bool { return f.eids.Same(a, b) }

// DistinctEntity reports whether the two EIDs are validated distinct.
// Read-only: safe for concurrent readers while no fix is being applied.
func (f *FixSet) DistinctEntity(a, b string) bool {
	return f.neq[canonPair(f.eids.FindRO(a), f.eids.FindRO(b))]
}

// MergeEIDs validates a = b. It fails with an EIDConflict when the pair is
// validated distinct, or with a ValueConflict when merging the classes
// would give some attribute two distinct validated constants.
func (f *FixSet) MergeEIDs(a, b string) (changed bool, conflict *Conflict) {
	ra, rb := f.eids.Find(a), f.eids.Find(b)
	if ra == rb {
		return false, nil
	}
	if f.neq[canonPair(ra, rb)] {
		return false, &Conflict{Kind: EIDConflict, A: a, B: b}
	}
	// Check cell compatibility before merging.
	for k, v := range f.cells {
		if k.eidRoot != ra {
			continue
		}
		other := cellKey{k.rel, k.attr, rb}
		if w, ok := f.cells[other]; ok && !w.Equal(v) {
			return false, &Conflict{Kind: ValueConflict, Rel: k.rel, Attr: k.attr, EID: a, Old: v, New: w}
		}
	}
	f.eids.Union(ra, rb)
	root := f.eids.Find(ra)
	// Re-key cells and neq entries of the absorbed roots.
	for _, old := range []string{ra, rb} {
		if old == root {
			continue
		}
		for k, v := range f.cells {
			if k.eidRoot == old {
				delete(f.cells, k)
				f.cells[cellKey{k.rel, k.attr, root}] = v
			}
		}
		for p := range f.neq {
			if p.a == old || p.b == old {
				delete(f.neq, p)
				na, nb := p.a, p.b
				if na == old {
					na = root
				}
				if nb == old {
					nb = root
				}
				f.neq[canonPair(na, nb)] = true
			}
		}
	}
	if f.touched != nil {
		// A merge extends every validated cell of the combined class to the
		// members absorbed from the other side, so all of them may now
		// disagree with raw data.
		for k := range f.cells {
			if k.eidRoot == root {
				f.touched[k] = true
			}
		}
	}
	f.merges++
	f.record(Op{Kind: OpMergeEIDs, A: a, B: b})
	return true, nil
}

// SeparateEIDs validates a ≠ b; EIDConflict when already identified.
func (f *FixSet) SeparateEIDs(a, b string) (changed bool, conflict *Conflict) {
	ra, rb := f.eids.Find(a), f.eids.Find(b)
	if ra == rb {
		return false, &Conflict{Kind: EIDConflict, A: a, B: b}
	}
	p := canonPair(ra, rb)
	if f.neq[p] {
		return false, nil
	}
	f.neq[p] = true
	f.record(Op{Kind: OpSeparateEIDs, A: a, B: b})
	return true, nil
}

// SetCell validates [EID.A]= c. ValueConflict when a distinct constant is
// already validated for the class.
func (f *FixSet) SetCell(rel, eid, attr string, v data.Value) (changed bool, conflict *Conflict) {
	k := cellKey{rel, attr, f.eids.Find(eid)}
	if old, ok := f.cells[k]; ok {
		if old.Equal(v) {
			return false, nil
		}
		return false, &Conflict{Kind: ValueConflict, Rel: rel, Attr: attr, EID: eid, Old: old, New: v}
	}
	f.cells[k] = v
	f.touch(k)
	f.cellFixes++
	f.record(Op{Kind: OpSetCell, Rel: rel, Attr: attr, A: eid, Value: v})
	return true, nil
}

// Cell returns the validated constant for (rel, eid, attr), if any.
// Read-only: safe for concurrent readers while no fix is being applied —
// the parallel chase reads the start-of-round fix set from every worker.
func (f *FixSet) Cell(rel, eid, attr string) (data.Value, bool) {
	v, ok := f.cells[cellKey{rel, attr, f.eids.FindRO(eid)}]
	return v, ok
}

// ForEachCell visits every validated cell [EID.A]= of the fix set, in
// unspecified order; eidRoot is the entity-class representative (use
// ClassMembers to expand it). Read-only: safe while no fix is being
// applied. The chase seeds its shadow-tuple tracking from it — every
// tuple whose fix-set view may differ from raw data.
func (f *FixSet) ForEachCell(fn func(rel, eidRoot, attr string, v data.Value)) {
	for k, v := range f.cells {
		fn(k.rel, k.eidRoot, k.attr, v)
	}
}

// ReplaceCell overwrites the validated constant for (rel, eid, attr) —
// only the chase's learning-based conflict resolution may do this, after
// deciding a winner (paper §4.2, MI conflict case).
func (f *FixSet) ReplaceCell(rel, eid, attr string, v data.Value) {
	k := cellKey{rel, attr, f.eids.Find(eid)}
	f.cells[k] = v
	f.touch(k)
	f.record(Op{Kind: OpReplaceCell, Rel: rel, Attr: attr, A: eid, Value: v})
}

// ClassMembers returns every EID validated identical to eid (including
// itself). Read-only: safe for concurrent readers while no fix is being
// applied.
func (f *FixSet) ClassMembers(eid string) []string { return f.eids.Members(eid) }

// ReplaceOrder swaps the whole validated order for rel.attr — used by the
// TD conflict resolution to rebuild an order after retracting a losing fix.
func (f *FixSet) ReplaceOrder(rel, attr string, o *data.TemporalOrder) {
	f.orders[rel+"."+attr] = o
	if f.journal != nil {
		pairs, strict := encodeOrder(o)
		f.record(Op{Kind: OpReplaceOrder, Rel: rel, Attr: attr, OrderPairs: pairs, OrderStrict: strict})
	}
}

// Order returns (creating if needed) the validated order for rel.attr.
func (f *FixSet) Order(rel, attr string) *data.TemporalOrder {
	key := rel + "." + attr
	o := f.orders[key]
	if o == nil {
		o = data.NewTemporalOrder(rel, attr)
		f.orders[key] = o
	}
	return o
}

// OrderIfAny returns the order for rel.attr without creating one.
func (f *FixSet) OrderIfAny(rel, attr string) *data.TemporalOrder {
	return f.orders[rel+"."+attr]
}

// AddOrder validates older ⪯/≺ newer on rel.attr. OrderConflict when the
// addition would create a strict cycle (t1 ≺ t2 with t2 ⪯ t1 already).
func (f *FixSet) AddOrder(rel, attr string, olderTID, newerTID int, strict bool) (changed bool, conflict *Conflict) {
	o := f.Order(rel, attr)
	conflictHere := func() *Conflict {
		return &Conflict{Kind: OrderConflict, Rel: rel, Attr: attr,
			A: fmt.Sprint(olderTID), B: fmt.Sprint(newerTID)}
	}
	if strict {
		if o.Leq(newerTID, olderTID) {
			return false, conflictHere()
		}
		if o.Less(olderTID, newerTID) {
			return false, nil
		}
		o.AddStrict(olderTID, newerTID)
		f.orderFixes++
		f.record(Op{Kind: OpAddOrder, Rel: rel, Attr: attr, TID1: olderTID, TID2: newerTID, Strict: true})
		return true, nil
	}
	if o.Less(newerTID, olderTID) {
		return false, conflictHere()
	}
	if o.Leq(olderTID, newerTID) {
		return false, nil
	}
	o.AddWeak(olderTID, newerTID)
	f.orderFixes++
	f.record(Op{Kind: OpAddOrder, Rel: rel, Attr: attr, TID1: olderTID, TID2: newerTID, Strict: false})
	return true, nil
}

// Stats reports the number of accepted fixes by kind.
func (f *FixSet) Stats() (merges, cellFixes, orderFixes int) {
	return f.merges, f.cellFixes, f.orderFixes
}

// Classes returns every entity class with at least two members, each
// sorted, in deterministic order.
func (f *FixSet) Classes() [][]string {
	byRoot := make(map[string][]string)
	for e := range f.eids.parent {
		r := f.eids.FindRO(e)
		byRoot[r] = append(byRoot[r], e)
	}
	var out [][]string
	for _, members := range byRoot {
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Orders returns the validated temporal orders keyed by "rel.attr".
func (f *FixSet) Orders() map[string]*data.TemporalOrder {
	out := make(map[string]*data.TemporalOrder, len(f.orders))
	for k, o := range f.orders {
		out[k] = o
	}
	return out
}

// Clone deep-copies the fix set; the chase uses copies for trial steps and
// Church-Rosser tests compare independent runs.
func (f *FixSet) Clone() *FixSet {
	c := NewFixSet()
	c.eids = f.eids.Clone()
	for k, v := range f.neq {
		c.neq[k] = v
	}
	for k, v := range f.cells {
		c.cells[k] = v
	}
	for k, o := range f.orders {
		c.orders[k] = o.Clone()
	}
	// Touch tracking deliberately does NOT survive Clone: clones serve
	// trial steps and batch chases, which never read TouchedCells — the
	// incremental path opts in on its own copy via StartTouchTracking.
	c.merges, c.cellFixes, c.orderFixes = f.merges, f.cellFixes, f.orderFixes
	return c
}

// Snapshot returns a deterministic textual digest of the fix set: merged
// classes, validated cells and order pairs. Two fix sets with the same
// logical content produce identical snapshots — used to verify the
// Church-Rosser property in tests.
func (f *FixSet) Snapshot() string {
	// Group EIDs by class.
	classes := make(map[string][]string)
	for e := range f.eids.parent {
		r := f.eids.FindRO(e)
		classes[r] = append(classes[r], e)
	}
	var lines []string
	for _, members := range classes {
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		lines = append(lines, "class{"+join(members)+"}")
	}
	for k, v := range f.cells {
		// Use a representative member-independent key: smallest EID in class.
		members := classes[k.eidRoot]
		rep := k.eidRoot
		if len(members) > 0 {
			sort.Strings(members)
			rep = members[0]
		}
		lines = append(lines, "cell{"+k.rel+"."+k.attr+"@"+rep+"="+v.Key()+"}")
	}
	for key, o := range f.orders {
		for _, p := range o.Pairs() {
			tag := "w"
			if o.Less(p[0], p[1]) {
				tag = "s"
			}
			lines = append(lines, fmt.Sprintf("ord{%s:%d%s%d}", key, p[0], tag, p[1]))
		}
	}
	sort.Strings(lines)
	return join(lines)
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ";"
		}
		out += s
	}
	return out
}
