package truth

import (
	"testing"
	"testing/quick"

	"github.com/rockclean/rock/internal/data"
)

func TestUnionFind(t *testing.T) {
	u := NewUnionFind()
	if !u.Union("a", "b") {
		t.Error("first union must change")
	}
	if u.Union("a", "b") {
		t.Error("repeat union must not change")
	}
	u.Union("b", "c")
	if !u.Same("a", "c") {
		t.Error("transitivity")
	}
	if u.Same("a", "z") {
		t.Error("unrelated elements")
	}
	c := u.Clone()
	c.Union("a", "z")
	if u.Same("a", "z") {
		t.Error("clone leaked")
	}
}

func TestUnionFindProperty(t *testing.T) {
	// After unioning a chain, all elements share one root.
	f := func(n uint8) bool {
		u := NewUnionFind()
		k := int(n%20) + 2
		names := make([]string, k)
		for i := range names {
			names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		for i := 1; i < k; i++ {
			u.Union(names[i-1], names[i])
		}
		for i := 1; i < k; i++ {
			if !u.Same(names[0], names[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergeAndSeparate(t *testing.T) {
	f := NewFixSet()
	if ch, c := f.MergeEIDs("p1", "p2"); !ch || c != nil {
		t.Fatal("merge must succeed")
	}
	if ch, _ := f.MergeEIDs("p1", "p2"); ch {
		t.Error("re-merge is a no-op")
	}
	if !f.SameEntity("p1", "p2") {
		t.Error("merge not visible")
	}
	if _, c := f.SeparateEIDs("p1", "p2"); c == nil {
		t.Error("separating identified entities must conflict")
	}
	if ch, c := f.SeparateEIDs("p1", "p3"); !ch || c != nil {
		t.Error("separate must succeed")
	}
	if _, c := f.MergeEIDs("p2", "p3"); c == nil || c.Kind != EIDConflict {
		t.Error("merging separated entities must conflict")
	}
	if !f.DistinctEntity("p1", "p3") || !f.DistinctEntity("p2", "p3") {
		t.Error("distinctness must follow classes")
	}
}

func TestSetCellConflicts(t *testing.T) {
	f := NewFixSet()
	if ch, c := f.SetCell("Person", "p1", "home", data.S("5 Beijing West Road")); !ch || c != nil {
		t.Fatal("first set must succeed")
	}
	if ch, c := f.SetCell("Person", "p1", "home", data.S("5 Beijing West Road")); ch || c != nil {
		t.Error("idempotent set")
	}
	if _, c := f.SetCell("Person", "p1", "home", data.S("elsewhere")); c == nil || c.Kind != ValueConflict {
		t.Error("distinct value must conflict")
	}
	if v, ok := f.Cell("Person", "p1", "home"); !ok || v.Str() != "5 Beijing West Road" {
		t.Error("cell lookup")
	}
	if _, ok := f.Cell("Person", "p1", "status"); ok {
		t.Error("missing cell")
	}
}

func TestMergePropagatesCells(t *testing.T) {
	f := NewFixSet()
	f.SetCell("Person", "p1", "home", data.S("addr"))
	f.MergeEIDs("p1", "p2")
	if v, ok := f.Cell("Person", "p2", "home"); !ok || v.Str() != "addr" {
		t.Error("merged entity must see validated cells")
	}
	// Conflicting cells block the merge.
	g := NewFixSet()
	g.SetCell("Person", "a", "home", data.S("x"))
	g.SetCell("Person", "b", "home", data.S("y"))
	if _, c := g.MergeEIDs("a", "b"); c == nil || c.Kind != ValueConflict {
		t.Error("merge with clashing cells must conflict")
	}
	// Compatible cells merge fine.
	h := NewFixSet()
	h.SetCell("Person", "a", "home", data.S("x"))
	h.SetCell("Person", "b", "home", data.S("x"))
	h.SetCell("Person", "b", "status", data.S("married"))
	if _, c := h.MergeEIDs("a", "b"); c != nil {
		t.Errorf("compatible merge failed: %v", c)
	}
	if v, ok := h.Cell("Person", "a", "status"); !ok || v.Str() != "married" {
		t.Error("cells from both classes must survive merge")
	}
}

func TestAddOrderConflicts(t *testing.T) {
	f := NewFixSet()
	if ch, c := f.AddOrder("Person", "home", 1, 2, false); !ch || c != nil {
		t.Fatal("weak add must succeed")
	}
	if ch, _ := f.AddOrder("Person", "home", 1, 2, false); ch {
		t.Error("idempotent weak add")
	}
	// Tie is fine.
	if _, c := f.AddOrder("Person", "home", 2, 1, false); c != nil {
		t.Error("weak tie must be allowed")
	}
	// Strict against an existing tie conflicts.
	if _, c := f.AddOrder("Person", "home", 1, 2, true); c == nil || c.Kind != OrderConflict {
		t.Error("strict edge against tie must conflict")
	}
	// Fresh strict chain then reverse weak conflicts.
	g := NewFixSet()
	g.AddOrder("R", "A", 1, 2, true)
	g.AddOrder("R", "A", 2, 3, true)
	if _, c := g.AddOrder("R", "A", 3, 1, false); c == nil {
		t.Error("weak edge closing a strict cycle must conflict")
	}
	if ch, c := g.AddOrder("R", "A", 1, 3, true); ch || c != nil {
		t.Error("already-entailed strict edge is a no-op")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFixSet()
	f.MergeEIDs("a", "b")
	f.SetCell("R", "a", "x", data.I(1))
	f.AddOrder("R", "x", 1, 2, true)
	c := f.Clone()
	c.MergeEIDs("a", "z")
	c.SetCell("R", "q", "x", data.I(9))
	c.AddOrder("R", "x", 2, 3, false)
	if f.SameEntity("a", "z") {
		t.Error("clone merge leaked")
	}
	if _, ok := f.Cell("R", "q", "x"); ok {
		t.Error("clone cell leaked")
	}
	if f.Order("R", "x").Leq(2, 3) {
		t.Error("clone order leaked")
	}
	if !c.Order("R", "x").Less(1, 2) {
		t.Error("clone lost strict edges")
	}
	m1, c1, o1 := f.Stats()
	if m1 != 1 || c1 != 1 || o1 != 1 {
		t.Errorf("stats=%d,%d,%d", m1, c1, o1)
	}
}

func TestSnapshotEquality(t *testing.T) {
	// Same logical content in different insertion orders → same snapshot.
	a := NewFixSet()
	a.MergeEIDs("p1", "p2")
	a.SetCell("R", "p1", "x", data.I(1))
	a.AddOrder("R", "x", 1, 2, true)

	b := NewFixSet()
	b.AddOrder("R", "x", 1, 2, true)
	b.SetCell("R", "p2", "x", data.I(1)) // via the other member
	b.MergeEIDs("p2", "p1")

	if a.Snapshot() != b.Snapshot() {
		t.Errorf("snapshots differ:\n a=%s\n b=%s", a.Snapshot(), b.Snapshot())
	}
	c := NewFixSet()
	c.MergeEIDs("p1", "p3")
	if a.Snapshot() == c.Snapshot() {
		t.Error("different content must differ")
	}
}
