package exec

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
)

// keyedEnv builds one relation R(k, flag, val): k partitions the tuples
// into groups of ten and only the first two tuples carry flag "x", so a
// constant predicate on flag is highly selective.
func keyedEnv(t *testing.T, n int) *predicate.Env {
	t.Helper()
	schema := must.Schema("R",
		data.Attribute{Name: "k", Type: data.TString},
		data.Attribute{Name: "flag", Type: data.TString},
		data.Attribute{Name: "val", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	for i := 0; i < n; i++ {
		flag := "y"
		if i < 2 {
			flag = "x"
		}
		rel.Insert(fmt.Sprintf("e%d", i),
			data.S(fmt.Sprintf("k%d", i%10)),
			data.S(flag),
			data.S(fmt.Sprintf("v%d", i%3)))
	}
	db := data.NewDatabase()
	db.Add(rel)
	return predicate.NewEnv(db)
}

// A predicate error in the middle of the driver-pair loop must surface as
// Run's error, reach the callback zero times after the failure point, and
// leave the executor fully usable: the next Run must see complete results.
// (Regression: the loop used to break without unwinding h/bound/depth.)
func TestExecutorErrorMidEnumerationUnwinds(t *testing.T) {
	env, _ := transEnv(t, 40)
	good := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	// M_missing is never registered: checkAt errors right after the first
	// driver pair binds, i.e. mid-enumeration with two variables bound.
	bad := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com ^ M_missing(t[com], s[com]) -> t.mfg = s.mfg", env.DB)

	e := New(env)
	calls := 0
	if _, err := e.Run(bad, Options{}, func(h *predicate.Valuation) bool {
		calls++
		return true
	}); err == nil {
		t.Fatal("unregistered model must fail the run")
	}
	if calls != 0 {
		t.Errorf("callback ran %d times during a failed enumeration", calls)
	}

	ref, err := New(env).Run(good, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(good, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatalf("executor unusable after failed run: %v", err)
	}
	if got.Valuations != ref.Valuations || ref.Valuations == 0 {
		t.Errorf("reused executor found %d valuations, fresh executor %d", got.Valuations, ref.Valuations)
	}
}

// probeJoin must intersect its index probe with the constant-pushdown
// candidate set: with a selective constant predicate on the probed
// variable, tuples outside the candidate set must never be enumerated.
func TestProbeJoinRespectsConstantPushdown(t *testing.T) {
	env := keyedEnv(t, 100)
	// t.k = s.k drives the pair loop; u is reached through probeJoin on
	// s.k = u.k and is constant-restricted to the two flag='x' tuples.
	r := must.Rule("R(t) ^ R(s) ^ R(u) ^ t.k = s.k ^ s.k = u.k ^ u.flag = 'x' -> t.val = s.val", env.DB)

	e := New(env)
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// 10 groups of 10 yield 900 driver pairs (1800 enumerations); only the
	// two groups holding an 'x' tuple contribute one probed u each (≈180
	// more). Without the intersection, every probe scans its whole k-group
	// and Enumerated exceeds 10000.
	if st.Enumerated > 2500 {
		t.Errorf("probeJoin ignored constant pushdown: enumerated %d", st.Enumerated)
	}
	if st.Valuations == 0 {
		t.Error("expected matching valuations through the probed join")
	}
}

// The blocker cache must be populated by blocked runs, hit on repeats, and
// emptied by InvalidateBlockers.
func TestBlockerCacheReuseAndInvalidate(t *testing.T) {
	env, _ := transEnv(t, 80)
	r := must.Rule("Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) -> t.mfg = s.mfg", env.DB)

	e := New(env)
	first, err := e.Run(r, Options{UseBlocking: true}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	cached := e.CachedBlockers()
	if cached == 0 {
		t.Fatal("blocked run must populate the blocker cache")
	}
	second, err := e.Run(r, Options{UseBlocking: true}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if e.CachedBlockers() != cached {
		t.Errorf("repeat run over identical partitions grew the cache: %d -> %d", cached, e.CachedBlockers())
	}
	if second.Valuations != first.Valuations {
		t.Errorf("cached blocker changed results: %d vs %d", second.Valuations, first.Valuations)
	}
	e.InvalidateBlockers()
	if e.CachedBlockers() != 0 {
		t.Errorf("InvalidateBlockers left %d entries", e.CachedBlockers())
	}
}
