package exec

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// withScalarPath disables the vectorized kernels for the duration of f by
// raising the tuple-count gate out of reach, so the legacy scalar loops
// serve as the oracle.
func withScalarPath(f func()) {
	old := vecMinTuples
	vecMinTuples = 1 << 30
	defer func() { vecMinTuples = old }()
	f()
}

// emissionTrace runs a rule and records the ORDERED sequence of bound
// TIDs — the deterministic-merge invariant requires the vectorized path
// to reproduce the scalar emission order exactly, not just the set.
func emissionTrace(t *testing.T, e *Executor, r *ree.Rule, vars []string) []string {
	t.Helper()
	return emissionTraceOpts(t, e, r, Options{}, vars)
}

// emissionTraceOpts is emissionTrace with caller-supplied Options, for
// the incremental (Dirty-filtered) runs.
func emissionTraceOpts(t *testing.T, e *Executor, r *ree.Rule, opts Options, vars []string) []string {
	t.Helper()
	var trace []string
	_, err := e.Run(r, opts, func(h *predicate.Valuation) bool {
		key := ""
		for _, v := range vars {
			key += fmt.Sprintf("%s=%d;", v, h.Tuples[v].Tuple.TID)
		}
		trace = append(trace, key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func assertSameTrace(t *testing.T, name string, vec, scalar []string) {
	t.Helper()
	if len(vec) == 0 {
		t.Fatalf("%s: vectorized run emitted nothing", name)
	}
	if len(vec) != len(scalar) {
		t.Fatalf("%s: vectorized emitted %d valuations, scalar %d", name, len(vec), len(scalar))
	}
	for i := range scalar {
		if vec[i] != scalar[i] {
			t.Fatalf("%s: emission order diverges at %d: vectorized %q, scalar %q", name, i, vec[i], scalar[i])
		}
	}
}

// pushdownEnv is the constant-filter fixture: region/code columns with a
// null stripe in code (every 31st tuple).
func pushdownEnv(t *testing.T, n int) *predicate.Env {
	t.Helper()
	rel := data.NewRelation(must.Schema("Ev",
		data.Attribute{Name: "region", Type: data.TString},
		data.Attribute{Name: "code", Type: data.TString},
	))
	for i := 0; i < n; i++ {
		code := data.S(fmt.Sprintf("C%d", i%10))
		if i%31 == 0 {
			code = data.Null(data.TString)
		}
		rel.Insert(fmt.Sprintf("e%d", i), data.S(fmt.Sprintf("R%d", i%10)), code)
	}
	db := data.NewDatabase()
	db.Add(rel)
	return predicate.NewEnv(db)
}

// TestVectorSelectionMatchesScalarOrder drives every selection kernel
// shape (equality, inequality, null, not-null, and their conjunctions)
// through both paths and requires identical ordered traces.
func TestVectorSelectionMatchesScalarOrder(t *testing.T) {
	cases := []struct{ name, src string }{
		{"eq-only", "Ev(t) ^ t.region = 'R7' -> t.code = 'C7'"},
		{"null-only", "Ev(t) ^ null(t.code) -> t.code = 'C0'"},
		{"notnull-only", "Ev(t) ^ !null(t.code) -> t.code = 'C0'"},
		{"eq+null", "Ev(t) ^ t.region = 'R7' ^ null(t.code) -> t.code = 'C7'"},
		{"neq+notnull", "Ev(t) ^ t.region != 'R0' ^ !null(t.code) -> t.code = 'C9'"},
		{"eq+eq", "Ev(t) ^ t.region = 'R3' ^ t.code = 'C3' -> t.code = 'C3'"},
	}
	env := pushdownEnv(t, 5000)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := must.Rule(tc.src, env.DB)
			r.ID = tc.name
			vec := emissionTrace(t, New(env), r, []string{"t"})
			var scalar []string
			withScalarPath(func() { scalar = emissionTrace(t, New(env), r, []string{"t"}) })
			assertSameTrace(t, tc.name, vec, scalar)
		})
	}
}

// TestVectorJoinMatchesScalarOrder pins the posting-list join to the
// legacy interned hash join's exact pair order on the cross-type
// equality workload.
func TestVectorJoinMatchesScalarOrder(t *testing.T) {
	env := mixedNumericEnv(t, 5000, 5000, 1000)
	r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
	r.ID = "vec-join"
	vec := emissionTrace(t, New(env), r, []string{"t", "s"})
	var scalar []string
	withScalarPath(func() { scalar = emissionTrace(t, New(env), r, []string{"t", "s"}) })
	assertSameTrace(t, "join", vec, scalar)
}

// TestVectorProbeJoinMatchesScalarOrder covers the posting-probe side:
// the third atom binds through probeJoin, not the pair driver.
func TestVectorProbeJoinMatchesScalarOrder(t *testing.T) {
	env := mixedNumericEnv(t, 200, 5000, 40)
	r := must.Rule("A(t) ^ B(s) ^ B(u) ^ t.x = s.y ^ t.x = u.y -> t.eid = s.eid", env.DB)
	r.ID = "vec-probe"
	vec := emissionTrace(t, New(env), r, []string{"t", "s", "u"})
	var scalar []string
	withScalarPath(func() { scalar = emissionTrace(t, New(env), r, []string{"t", "s", "u"}) })
	assertSameTrace(t, "probe", vec, scalar)
}

// TestVectorShadowMatchesScalarOrder repeats the shadow-soundness
// scenarios under the vectorized kernels and requires order-identical
// traces: a shadowed driver tuple whose view kills its raw match, and a
// pair shadowed onto an overflow value absent from both dictionaries.
func TestVectorShadowMatchesScalarOrder(t *testing.T) {
	const n = 5000
	build := func() (*predicate.Env, int, int, int) {
		env := mixedNumericEnv(t, n, n, 1000)
		shadowA := env.DB.Rel("A").Tuples[0].TID
		shadowA2 := env.DB.Rel("A").Tuples[1].TID
		shadowB := env.DB.Rel("B").Tuples[2].TID
		rawValue := func(rel string, tp *data.Tuple, attr string) (data.Value, bool) {
			return tp.Values[env.DB.Rel(rel).Schema.Index(attr)], true
		}
		env.ValueOf = func(rel string, tp *data.Tuple, attr string) (data.Value, bool) {
			if rel == "A" && tp.TID == shadowA {
				return data.I(1234567), true // kills its raw join partner
			}
			if rel == "A" && tp.TID == shadowA2 {
				return data.F(777777.25), true // overflow value…
			}
			if rel == "B" && tp.TID == shadowB {
				return data.F(777777.25), true // …matching only each other
			}
			return rawValue(rel, tp, attr)
		}
		return env, shadowA, shadowA2, shadowB
	}
	run := func() []string {
		env, shadowA, shadowA2, shadowB := build()
		r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
		r.ID = "vec-shadow"
		e := New(env)
		e.SetShadowTracking(map[string]map[int]bool{
			"A": {shadowA: true, shadowA2: true},
			"B": {shadowB: true},
		})
		trace := emissionTrace(t, e, r, []string{"t", "s"})
		// Sanity on the semantics themselves before comparing orders.
		overflow := fmt.Sprintf("t=%d;s=%d;", shadowA2, shadowB)
		sawOverflow := false
		for _, k := range trace {
			if k == overflow {
				sawOverflow = true
			}
			var tt, ss int
			fmt.Sscanf(k, "t=%d;s=%d;", &tt, &ss)
			if tt == shadowA {
				t.Fatalf("shadowed tuple %d joined via its stale raw value", shadowA)
			}
		}
		if !sawOverflow {
			t.Fatal("overflow-value pair missing from the trace")
		}
		return trace
	}
	vec := run()
	var scalar []string
	withScalarPath(func() { scalar = run() })
	assertSameTrace(t, "shadow", vec, scalar)
}

// TestSpilledColumnsMatchResident forces every interned column onto disk
// with a 1-byte budget and requires the identical ordered trace — the
// spill layer must be invisible to enumeration.
func TestSpilledColumnsMatchResident(t *testing.T) {
	env := mixedNumericEnv(t, 5000, 5000, 1000)
	r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
	r.ID = "spilled"

	reg := obs.New()
	spilled := New(env)
	spilled.SetObs(reg)
	spilled.SetSpill(1, t.TempDir())
	got := emissionTrace(t, spilled, r, []string{"t", "s"})
	if n := reg.CounterValue("exec.spill.columns"); n == 0 {
		t.Fatal("a 1-byte budget must spill every interned column")
	}
	if reg.CounterValue("exec.spill.bytes") == 0 {
		t.Fatal("spilled columns must report on-disk bytes")
	}

	want := emissionTrace(t, New(env), r, []string{"t", "s"})
	assertSameTrace(t, "spill", got, want)
}

// TestVectorDirtyJoinMatchesScalarOrder drives the posting join with an
// incremental dirty set. The vectorized path hoists the per-pair
// dirtyOK string-map lookups into two resolved int-set probes, so it
// must agree with the scalar oracle on the emitted pairs AND their
// order, pairs must actually shrink versus the full run, and every
// emitted pair must touch the dirty set. Three shapes: dirty tuples on
// both sides (dense fast path), dirty on the driver side only (the
// dirtyS==nil guard), and a shadowed s-side forcing posting/shadow
// compaction so the merge loop's filter is exercised too.
func TestVectorDirtyJoinMatchesScalarOrder(t *testing.T) {
	const n = 5000
	src := "A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid"
	check := func(name string, dirty map[string]map[int]bool, shadow map[string]map[int]bool) {
		t.Run(name, func(t *testing.T) {
			env := mixedNumericEnv(t, n, n, 1000)
			r := must.Rule(src, env.DB)
			r.ID = "dirty-" + name
			opts := Options{Dirty: dirty}
			run := func() []string {
				e := New(env)
				if shadow != nil {
					e.SetShadowTracking(shadow)
				}
				return emissionTraceOpts(t, e, r, opts, []string{"t", "s"})
			}
			vec := run()
			var scalar []string
			withScalarPath(func() { scalar = run() })
			assertSameTrace(t, name, vec, scalar)
			full := emissionTrace(t, New(env), r, []string{"t", "s"})
			if len(vec) >= len(full) {
				t.Fatalf("dirty filter must shrink emissions: %d vs %d full", len(vec), len(full))
			}
			for _, k := range vec {
				var tt, ss int
				fmt.Sscanf(k, "t=%d;s=%d;", &tt, &ss)
				if !dirty["A"][tt] && !dirty["B"][ss] {
					t.Fatalf("pair %q touches no dirty tuple", k)
				}
			}
		})
	}
	check("both-sides", map[string]map[int]bool{
		"A": {7: true, 4321: true},
		"B": {99: true},
	}, nil)
	check("driver-only", map[string]map[int]bool{
		"A": {7: true, 4321: true},
	}, nil)
	check("shadow-compacted", map[string]map[int]bool{
		"A": {7: true},
		"B": {99: true, 2: true},
	}, map[string]map[int]bool{
		"B": {2: true},
	})
}

// TestVectorCountersAccount checks the new kernels actually ran (the
// equivalence tests above would silently pass if the gate never opened).
func TestVectorCountersAccount(t *testing.T) {
	env := pushdownEnv(t, 5000)
	r := must.Rule("Ev(t) ^ t.region = 'R7' ^ null(t.code) -> t.code = 'C7'", env.DB)
	r.ID = "counters"
	reg := obs.New()
	e := New(env)
	e.SetObs(reg)
	if _, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true }); err != nil {
		t.Fatal(err)
	}
	batches := reg.CounterValue("exec.vec.select_batches") + reg.CounterValue("exec.vec.posting_selects")
	if batches == 0 {
		t.Fatal("vectorized selection never engaged on a 5000-tuple relation")
	}

	envJ := mixedNumericEnv(t, 5000, 5000, 1000)
	rj := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", envJ.DB)
	rj.ID = "counters-join"
	regJ := obs.New()
	ej := New(envJ)
	ej.SetObs(regJ)
	if _, err := ej.Run(rj, Options{}, func(h *predicate.Valuation) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if regJ.CounterValue("exec.vec.joins") == 0 {
		t.Fatal("posting-list join never engaged on a 5000×5000 equijoin")
	}
	if regJ.CounterValue("exec.vec.join_pairs") == 0 {
		t.Fatal("posting-list join reported no pairs")
	}
}
