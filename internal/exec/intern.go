package exec

import (
	"sync"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/data"
)

// internIndex is the executor's dictionary-encoded view of the database
// (paper §5.1: Crystal "transforms attribute values to unique ids" so the
// engine compares integers, not values). Columns build lazily per
// (relation, attribute) on first use and are shared by every concurrent
// Run; equality joins and constant predicates then compare uint32 ids
// over dense TID-indexed slices instead of hashing data.Value keys.
//
// Correctness with the chase's fix-set view: interned ids encode RAW
// tuple values, but the chase reads values through env.ValueOf (validated
// cells first). The chase therefore registers shadow tracking — the set
// of TIDs whose view may differ from raw data (seeded from Γ, extended
// after every merge step) — and the hot paths fall back to valueThrough
// for exactly those tuples. An executor whose env has a ValueOf hook but
// no shadow tracking takes the slow path everywhere: safe by default for
// direct library users installing custom hooks.
type internIndex struct {
	mu   sync.RWMutex
	cols map[string]*crystal.Column // "rel\x1fattr" → column; nil: build failed/unknown attr
	rels map[string]*data.Relation  // built columns' source relations, for refresh
	// trans caches cross-column id translations: ids of column A mapped
	// into the dictionary of column B ("relA\x1fattrA\x1frelB\x1fattrB").
	// NoValue marks A-values absent from B's dictionary.
	trans map[string][]crystal.ValueID
	// shadow[rel] is the TID set whose ValueOf view may differ from raw
	// data; track is true once a caller claims to maintain it.
	shadow map[string]map[int]bool
	track  bool
}

func colKey(rel, attr string) string { return rel + "\x1f" + attr }

// fastPathOK reports whether interned comparisons are sound for this run:
// either values are read raw (no ValueOf hook — detection semantics), or
// the caller maintains the shadow set (the chase).
func (e *Executor) fastPathOK() bool {
	if e.env.ValueOf == nil {
		return true
	}
	e.in.mu.RLock()
	defer e.in.mu.RUnlock()
	return e.in.track
}

// SetShadowTracking installs the shadow TID sets and enables the interned
// fast path under a ValueOf hook. The caller owns the contract: every
// tuple whose ValueOf view may differ from the raw relation value must be
// in shadow (MarkShadowed extends it). The maps are retained, not copied.
func (e *Executor) SetShadowTracking(shadow map[string]map[int]bool) {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if shadow == nil {
		shadow = make(map[string]map[int]bool)
	}
	e.in.shadow = shadow
	e.in.track = true
}

// MarkShadowed adds the given TIDs to the shadow sets. Call from the
// serial merge step (or otherwise outside concurrent Runs) after fixes
// change what ValueOf returns.
func (e *Executor) MarkShadowed(dirty map[string]map[int]bool) {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if e.in.shadow == nil {
		e.in.shadow = make(map[string]map[int]bool)
	}
	for rel, tids := range dirty {
		m := e.in.shadow[rel]
		if m == nil {
			m = make(map[int]bool, len(tids))
			e.in.shadow[rel] = m
		}
		for tid := range tids {
			m[tid] = true
		}
	}
}

// shadowOf returns the shadow TID set of a relation (nil when empty) —
// fetched once per hot loop, checked per tuple.
func (e *Executor) shadowOf(rel string) map[int]bool {
	e.in.mu.RLock()
	defer e.in.mu.RUnlock()
	m := e.in.shadow[rel]
	if len(m) == 0 {
		return nil
	}
	return m
}

// RefreshTuples re-interns the raw values of the given dirty TIDs into
// every built column (absorbing SetValue updates and inserts), and drops
// the translation cache. Call between Runs after mutating raw relation
// data — the incremental chase and detection paths do this for their
// dirty sets; InvalidateInterned is the blunt alternative.
func (e *Executor) RefreshTuples(dirty map[string]map[int]bool) {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if len(e.in.cols) == 0 {
		return
	}
	for key, col := range e.in.cols {
		if col == nil {
			continue
		}
		rel := e.in.rels[key]
		if rel == nil {
			continue
		}
		tids := dirty[rel.Schema.Name]
		if len(tids) == 0 {
			continue
		}
		col.Refresh(rel, tids)
	}
	e.in.trans = nil
}

// InvalidateInterned drops every interned column and translation; the
// next Run rebuilds lazily from current raw data. Call after bulk raw
// mutations (e.g. materialising fixes into the database).
func (e *Executor) InvalidateInterned() {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	e.in.cols = nil
	e.in.rels = nil
	e.in.trans = nil
}

// internMinTuples gates the interned layout by cardinality: below this
// size a dictionary build costs more than every id compare it saves (the
// build sorts the distinct values), so small relations keep the
// value-keyed paths. The dense layout targets the 10⁶–10⁷ tuple scale.
const internMinTuples = 4096

// internedCol returns the interned column for (rel, attr), building it on
// first use. Returns nil when the attribute is unknown or the relation is
// too small to be worth encoding.
func (e *Executor) internedCol(relName, attr string) *crystal.Column {
	key := colKey(relName, attr)
	e.in.mu.RLock()
	col, ok := e.in.cols[key]
	e.in.mu.RUnlock()
	if ok {
		return col
	}
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if col, ok = e.in.cols[key]; ok { // lost the build race
		return col
	}
	rel := e.env.DB.Rel(relName)
	if rel != nil && len(rel.Tuples) >= internMinTuples {
		col, _ = crystal.BuildColumn(rel, attr) // nil on unknown attr
	} else {
		rel = nil // cache the nil: too small or unknown relation
	}
	if e.in.cols == nil {
		e.in.cols = make(map[string]*crystal.Column)
		e.in.rels = make(map[string]*data.Relation)
	}
	e.in.cols[key] = col
	if col != nil {
		e.in.rels[key] = rel
	}
	return col
}

// translation maps ids of colA into colB's dictionary, cached per column
// pair: one O(|dictA|) value lookup pass instead of per-tuple Key()
// hashing on every join. Entry i is the colB id of colA's value i, or
// NoValue when colB never saw that value.
func (e *Executor) translation(relA, attrA string, colA *crystal.Column, relB, attrB string, colB *crystal.Column) []crystal.ValueID {
	key := colKey(relA, attrA) + "\x1f" + colKey(relB, attrB)
	e.in.mu.RLock()
	tr, ok := e.in.trans[key]
	e.in.mu.RUnlock()
	if ok {
		return tr
	}
	tr = make([]crystal.ValueID, colA.Dict.Size())
	for i := range tr {
		v, _ := colA.Dict.Value(crystal.ValueID(i))
		if id, ok := colB.Dict.ID(v); ok {
			tr[i] = id
		} else {
			tr[i] = crystal.NoValue
		}
	}
	e.in.mu.Lock()
	if e.in.trans == nil {
		e.in.trans = make(map[string][]crystal.ValueID)
	}
	e.in.trans[key] = tr
	e.in.mu.Unlock()
	return tr
}

// --- per-binding scratch pools (the deduction path's GC relief) ---

var tupleBufPool = sync.Pool{
	New: func() any { b := make([]*data.Tuple, 0, 64); return &b },
}

func getTupleBuf() []*data.Tuple {
	return (*tupleBufPool.Get().(*[]*data.Tuple))[:0]
}

func putTupleBuf(b []*data.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	tupleBufPool.Put(&b)
}

var pairBufPool = sync.Pool{
	New: func() any { b := make([][2]*data.Tuple, 0, 64); return &b },
}

func getPairBuf() [][2]*data.Tuple {
	return (*pairBufPool.Get().(*[][2]*data.Tuple))[:0]
}

func putPairBuf(b [][2]*data.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	pairBufPool.Put(&b)
}
