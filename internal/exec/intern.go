package exec

import (
	"sort"
	"sync"
	"unsafe"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/data"
)

// internIndex is the executor's dictionary-encoded view of the database
// (paper §5.1: Crystal "transforms attribute values to unique ids" so the
// engine compares integers, not values). Columns build lazily per
// (relation, attribute) on first use and are shared by every concurrent
// Run; equality joins and constant predicates then compare uint32 ids
// over dense TID-indexed slices instead of hashing data.Value keys.
//
// Correctness with the chase's fix-set view: interned ids encode RAW
// tuple values, but the chase reads values through env.ValueOf (validated
// cells first). The chase therefore registers shadow tracking — the set
// of TIDs whose view may differ from raw data (seeded from Γ, extended
// after every merge step) — and the hot paths fall back to valueThrough
// for exactly those tuples. An executor whose env has a ValueOf hook but
// no shadow tracking takes the slow path everywhere: safe by default for
// direct library users installing custom hooks.
type internIndex struct {
	mu   sync.RWMutex
	cols map[string]*crystal.Column // "rel\x1fattr" → column; nil: build failed/unknown attr
	rels map[string]*data.Relation  // built columns' source relations, for refresh
	// trans caches cross-column id translations: ids of column A mapped
	// into the dictionary of column B ("relA\x1fattrA\x1frelB\x1fattrB").
	// NoValue marks A-values absent from B's dictionary.
	trans map[string][]crystal.ValueID
	// shadow[rel] is the TID set whose ValueOf view may differ from raw
	// data; track is true once a caller claims to maintain it.
	shadow map[string]map[int]bool
	track  bool
	// shadowSorted caches, per relation, the ascending TID list of the
	// shadow set — the vectorized paths intersect it against partition
	// TID arrays instead of probing the map per tuple. Entries drop when
	// MarkShadowed touches the relation.
	shadowSorted map[string][]int
	// parts maps registered stable tuple slices (chase partition blocks,
	// full relation slices) to their precomputed ascending TID arrays.
	parts map[partKey]*partEntry
	// Spill budget (SetSpill): above budget resident bytes, newly built
	// columns go straight to flat on-disk blocks.
	spillBudget int64
	spillOpts   crystal.SpillOptions
	memBytes    int64
}

// partKey identifies a tuple slice by its backing window — data pointer
// plus length. A slice is a contiguous window, so an equal key implies
// identical content as long as the backing elements are unmodified: the
// same invalidate-after-structural-mutation contract the interned
// columns themselves live under (RefreshTuples / InvalidateInterned).
type partKey struct {
	p unsafe.Pointer
	n int
}

type partEntry struct {
	ts   []*data.Tuple // pins the backing array so the key stays unique
	tids []int         // ascending TIDs; nil when ts was not TID-ascending
}

func keyOfSlice(ts []*data.Tuple) (partKey, bool) {
	if len(ts) == 0 {
		return partKey{}, false
	}
	return partKey{p: unsafe.Pointer(&ts[0]), n: len(ts)}, true
}

// RegisterPartition precomputes the ascending TID array of a stable
// tuple slice (a chase partition block or a full relation slice), so
// the vectorized selection and join paths skip their per-call TID
// extraction pass. The slice must stay alive and unchanged until
// InvalidatePartitions / RefreshTuples / InvalidateInterned.
func (e *Executor) RegisterPartition(ts []*data.Tuple) {
	k, ok := keyOfSlice(ts)
	if !ok {
		return
	}
	tids := make([]int, 0, len(ts))
	last := -1
	for _, t := range ts {
		if t.TID <= last {
			tids = nil // not ascending: cache the miss, callers fall back
			break
		}
		last = t.TID
		tids = append(tids, t.TID)
	}
	e.in.mu.Lock()
	if e.in.parts == nil {
		e.in.parts = make(map[partKey]*partEntry)
	}
	e.in.parts[k] = &partEntry{ts: ts, tids: tids}
	e.in.mu.Unlock()
}

// InvalidatePartitions drops every registered partition TID array. Call
// whenever the partition slices are rebuilt or raw data changes shape.
func (e *Executor) InvalidatePartitions() {
	e.in.mu.Lock()
	e.in.parts = nil
	e.in.mu.Unlock()
}

// tidsOf returns the ascending TID array of ts — the registered
// precomputed one, or pooled scratch (pooled true: release with
// putIntBuf). A nil result means ts is not strictly TID-ascending and
// the caller must take the scalar path.
func (e *Executor) tidsOf(ts []*data.Tuple) (tids []int, pooled bool) {
	if k, ok := keyOfSlice(ts); ok {
		e.in.mu.RLock()
		ent := e.in.parts[k]
		e.in.mu.RUnlock()
		if ent != nil {
			return ent.tids, false
		}
	}
	buf := getIntBuf()
	last := -1
	for _, t := range ts {
		if t.TID <= last {
			putIntBuf(buf)
			return nil, false
		}
		last = t.TID
		buf = append(buf, t.TID)
	}
	return buf, true
}

// SetSpill installs the interned-column memory budget: once the resident
// bytes of built columns exceed budget, later builds write flat spill
// blocks under dir (empty: the system temp directory) and read them back
// through mmap or chunked ReadAt. Call before the first Run.
func (e *Executor) SetSpill(budget int64, dir string) {
	e.in.mu.Lock()
	e.in.spillBudget = budget
	e.in.spillOpts = crystal.SpillOptions{Dir: dir}
	e.in.mu.Unlock()
}

func colKey(rel, attr string) string { return rel + "\x1f" + attr }

// fastPathOK reports whether interned comparisons are sound for this run:
// either values are read raw (no ValueOf hook — detection semantics), or
// the caller maintains the shadow set (the chase).
func (e *Executor) fastPathOK() bool {
	if e.env.ValueOf == nil {
		return true
	}
	e.in.mu.RLock()
	defer e.in.mu.RUnlock()
	return e.in.track
}

// SetShadowTracking installs the shadow TID sets and enables the interned
// fast path under a ValueOf hook. The caller owns the contract: every
// tuple whose ValueOf view may differ from the raw relation value must be
// in shadow (MarkShadowed extends it). The maps are retained, not copied.
func (e *Executor) SetShadowTracking(shadow map[string]map[int]bool) {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if shadow == nil {
		shadow = make(map[string]map[int]bool)
	}
	e.in.shadow = shadow
	e.in.track = true
	e.in.shadowSorted = nil
}

// MarkShadowed adds the given TIDs to the shadow sets. Call from the
// serial merge step (or otherwise outside concurrent Runs) after fixes
// change what ValueOf returns.
func (e *Executor) MarkShadowed(dirty map[string]map[int]bool) {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if e.in.shadow == nil {
		e.in.shadow = make(map[string]map[int]bool)
	}
	for rel, tids := range dirty {
		m := e.in.shadow[rel]
		if m == nil {
			m = make(map[int]bool, len(tids))
			e.in.shadow[rel] = m
		}
		for tid := range tids {
			m[tid] = true
		}
		delete(e.in.shadowSorted, rel)
	}
}

// shadowSortedOf returns the ascending TID list of a relation's shadow
// set (nil when empty), built lazily and cached until MarkShadowed next
// touches the relation. Concurrent builders compute identical lists, so
// the last writer winning is harmless.
func (e *Executor) shadowSortedOf(rel string) []int {
	e.in.mu.RLock()
	s, ok := e.in.shadowSorted[rel]
	m := e.in.shadow[rel]
	e.in.mu.RUnlock()
	if ok {
		return s
	}
	if len(m) > 0 {
		s = make([]int, 0, len(m))
		for tid := range m {
			s = append(s, tid)
		}
		sort.Ints(s)
	}
	e.in.mu.Lock()
	if e.in.shadowSorted == nil {
		e.in.shadowSorted = make(map[string][]int)
	}
	e.in.shadowSorted[rel] = s
	e.in.mu.Unlock()
	return s
}

// shadowOf returns the shadow TID set of a relation (nil when empty) —
// fetched once per hot loop, checked per tuple.
func (e *Executor) shadowOf(rel string) map[int]bool {
	e.in.mu.RLock()
	defer e.in.mu.RUnlock()
	m := e.in.shadow[rel]
	if len(m) == 0 {
		return nil
	}
	return m
}

// RefreshTuples re-interns the raw values of the given dirty TIDs into
// every built column (absorbing SetValue updates and inserts), and drops
// the translation cache. Call between Runs after mutating raw relation
// data — the incremental chase and detection paths do this for their
// dirty sets; InvalidateInterned is the blunt alternative.
func (e *Executor) RefreshTuples(dirty map[string]map[int]bool) {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if len(e.in.cols) == 0 {
		return
	}
	for key, col := range e.in.cols {
		if col == nil {
			continue
		}
		rel := e.in.rels[key]
		if rel == nil {
			continue
		}
		tids := dirty[rel.Schema.Name]
		if len(tids) == 0 {
			continue
		}
		wasSpilled := col.Spilled()
		col.Refresh(rel, tids) // unspills first: spilled blocks are immutable
		if wasSpilled {
			e.in.memBytes += col.MemBytes()
			if e.reg != nil {
				e.reg.Inc("exec.spill.reloads")
			}
		}
	}
	e.in.trans = nil
	e.in.parts = nil // raw tuples changed shape: partition TIDs may be stale
}

// InvalidateInterned drops every interned column and translation; the
// next Run rebuilds lazily from current raw data. Call after bulk raw
// mutations (e.g. materialising fixes into the database).
func (e *Executor) InvalidateInterned() {
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	for _, col := range e.in.cols {
		if col != nil {
			col.Close() // release spill blocks and mappings
		}
	}
	e.in.cols = nil
	e.in.rels = nil
	e.in.trans = nil
	e.in.parts = nil
	e.in.memBytes = 0
}

// internMinTuples gates the interned layout by cardinality: below this
// size a dictionary build costs more than every id compare it saves (the
// build sorts the distinct values), so small relations keep the
// value-keyed paths. The dense layout targets the 10⁶–10⁷ tuple scale.
const internMinTuples = 4096

// internedCol returns the interned column for (rel, attr), building it on
// first use. Returns nil when the attribute is unknown or the relation is
// too small to be worth encoding.
func (e *Executor) internedCol(relName, attr string) *crystal.Column {
	key := colKey(relName, attr)
	e.in.mu.RLock()
	col, ok := e.in.cols[key]
	e.in.mu.RUnlock()
	if ok {
		return col
	}
	e.in.mu.Lock()
	defer e.in.mu.Unlock()
	if col, ok = e.in.cols[key]; ok { // lost the build race
		return col
	}
	rel := e.env.DB.Rel(relName)
	if rel != nil && len(rel.Tuples) >= internMinTuples {
		// Over the memory budget, build straight into a flat spill block:
		// ids + postings live on disk (mmap or chunked reads), only the
		// dictionary and block metadata stay resident.
		if e.in.spillBudget > 0 && e.in.memBytes+int64(12*len(rel.Tuples)) > e.in.spillBudget {
			col, _ = crystal.BuildColumnSpilled(rel, attr, e.in.spillOpts)
			if col != nil {
				e.in.memBytes += col.MemBytes()
				if e.reg != nil {
					e.reg.Inc("exec.spill.columns")
					e.reg.Add("exec.spill.bytes", uint64(col.SpillBytes()))
				}
			}
		}
		if col == nil {
			col, _ = crystal.BuildColumn(rel, attr) // nil on unknown attr
			if col != nil {
				e.in.memBytes += col.MemBytes()
			}
		}
	} else {
		rel = nil // cache the nil: too small or unknown relation
	}
	if e.in.cols == nil {
		e.in.cols = make(map[string]*crystal.Column)
		e.in.rels = make(map[string]*data.Relation)
	}
	e.in.cols[key] = col
	if col != nil {
		e.in.rels[key] = rel
	}
	return col
}

// translation maps ids of colA into colB's dictionary, cached per column
// pair: one O(|dictA|) value lookup pass instead of per-tuple Key()
// hashing on every join. Entry i is the colB id of colA's value i, or
// NoValue when colB never saw that value.
func (e *Executor) translation(relA, attrA string, colA *crystal.Column, relB, attrB string, colB *crystal.Column) []crystal.ValueID {
	key := colKey(relA, attrA) + "\x1f" + colKey(relB, attrB)
	e.in.mu.RLock()
	tr, ok := e.in.trans[key]
	e.in.mu.RUnlock()
	if ok {
		return tr
	}
	tr = make([]crystal.ValueID, colA.Dict.Size())
	for i := range tr {
		v, _ := colA.Dict.Value(crystal.ValueID(i))
		if id, ok := colB.Dict.ID(v); ok {
			tr[i] = id
		} else {
			tr[i] = crystal.NoValue
		}
	}
	e.in.mu.Lock()
	if e.in.trans == nil {
		e.in.trans = make(map[string][]crystal.ValueID)
	}
	e.in.trans[key] = tr
	e.in.mu.Unlock()
	return tr
}

// --- per-binding scratch pools (the deduction path's GC relief) ---

var tupleBufPool = sync.Pool{
	New: func() any { b := make([]*data.Tuple, 0, 64); return &b },
}

func getTupleBuf() []*data.Tuple {
	return (*tupleBufPool.Get().(*[]*data.Tuple))[:0]
}

func putTupleBuf(b []*data.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	tupleBufPool.Put(&b)
}

var intBufPool = sync.Pool{
	New: func() any { b := make([]int, 0, 256); return &b },
}

func getIntBuf() []int {
	return (*intBufPool.Get().(*[]int))[:0]
}

func putIntBuf(b []int) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	intBufPool.Put(&b)
}

var posBufPool = sync.Pool{
	New: func() any { b := make([]int32, 0, 256); return &b },
}

func getPosBuf() []int32 {
	return (*posBufPool.Get().(*[]int32))[:0]
}

func putPosBuf(b []int32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	posBufPool.Put(&b)
}

var idBufPool = sync.Pool{
	New: func() any { b := make([]crystal.ValueID, 0, 1024); return &b },
}

// getIDBuf returns an id gather buffer of length n.
func getIDBuf(n int) []crystal.ValueID {
	b := (*idBufPool.Get().(*[]crystal.ValueID))[:0]
	if cap(b) < n {
		b = make([]crystal.ValueID, n)
	}
	return b[:n]
}

func putIDBuf(b []crystal.ValueID) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	idBufPool.Put(&b)
}

var wordBufPool = sync.Pool{
	New: func() any { b := make([]uint64, 0, 64); return &b },
}

// getWordBuf returns a bitmap buffer of length n words (contents
// unspecified; callers BitmapSetAll/ClearAll first).
func getWordBuf(n int) []uint64 {
	b := (*wordBufPool.Get().(*[]uint64))[:0]
	if cap(b) < n {
		b = make([]uint64, n)
	}
	return b[:n]
}

func putWordBuf(b []uint64) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	wordBufPool.Put(&b)
}

var pairBufPool = sync.Pool{
	New: func() any { b := make([][2]*data.Tuple, 0, 64); return &b },
}

func getPairBuf() [][2]*data.Tuple {
	return (*pairBufPool.Get().(*[][2]*data.Tuple))[:0]
}

func putPairBuf(b [][2]*data.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	pairBufPool.Put(&b)
}
