package exec

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

func transEnv(t *testing.T, n int) (*predicate.Env, *data.Relation) {
	t.Helper()
	schema := must.Schema("Trans",
		data.Attribute{Name: "sid", Type: data.TString},
		data.Attribute{Name: "com", Type: data.TString},
		data.Attribute{Name: "mfg", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	// Ten textually distinct commodity lines so LSH blocking can separate
	// the groups.
	lines := []string{
		"zebra telescope deluxe", "quantum harvest engine", "maple syrup dispenser",
		"arctic penguin statue", "velvet midnight gown", "copper lantern antique",
		"whistling kettle pro", "granite chess board", "neon skate wheels",
		"bamboo flute classic",
	}
	for i := 0; i < n; i++ {
		mfg := "Huawei"
		if i%7 == 0 {
			mfg = "Apple"
		}
		rel.Insert(fmt.Sprintf("p%d", i),
			data.S(fmt.Sprintf("s%d", i%5)),
			data.S(lines[i%10]),
			data.S(mfg))
	}
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	env.Models.Register(ml.NewSimilarityMatcher("M_ER", 0.85))
	return env, rel
}

func countViolations(t *testing.T, env *predicate.Env, r *ree.Rule, opts Options) int {
	t.Helper()
	e := New(env)
	n := 0
	_, err := e.Run(r, opts, func(h *predicate.Valuation) bool {
		ok, err := r.P0.Eval(env, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			n++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExecutorMatchesReferenceSemantics(t *testing.T) {
	env, _ := transEnv(t, 40)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	r.ID = "phi2"
	ref, err := r.Violations(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := countViolations(t, env, r, Options{})
	if got != len(ref) {
		t.Errorf("executor found %d violations, reference %d", got, len(ref))
	}
	if len(ref) == 0 {
		t.Fatal("test data should contain violations")
	}
}

func TestExecutorHashJoinPruning(t *testing.T) {
	env, rel := transEnv(t, 100)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	e := New(env)
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	allPairs := rel.Len() * (rel.Len() - 1)
	if st.Enumerated >= allPairs {
		t.Errorf("hash join enumerated %d >= %d (no pruning)", st.Enumerated, allPairs)
	}
	if st.Valuations == 0 {
		t.Error("expected matching valuations")
	}
}

func TestExecutorConstantPushdown(t *testing.T) {
	env, _ := transEnv(t, 100)
	r := must.Rule("Trans(t) ^ t.mfg = 'Apple' -> t.sid = 'nonexistent'", env.DB)
	e := New(env)
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// Only the ~100/7 Apple tuples should be enumerated.
	if st.Enumerated > 20 {
		t.Errorf("constant pushdown missing: enumerated %d", st.Enumerated)
	}
}

func TestExecutorBlockingReducesMLCalls(t *testing.T) {
	env, rel := transEnv(t, 80)
	r := must.Rule("Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) -> t.mfg = s.mfg", env.DB)
	e := New(env)
	blocked, err := e.Run(r, Options{UseBlocking: true}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	naive, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if blocked.MLCalls >= naive.MLCalls {
		t.Errorf("blocking must reduce ML calls: blocked=%d naive=%d", blocked.MLCalls, naive.MLCalls)
	}
	_ = rel
	// Blocking must preserve (nearly all) true matches: every commodity
	// string repeats exactly (i%10), so matches are exact duplicates that
	// LSH always co-buckets.
	if blocked.Valuations < naive.Valuations*9/10 {
		t.Errorf("blocking lost too many matches: %d vs %d", blocked.Valuations, naive.Valuations)
	}
}

func TestExecutorDirtyFiltering(t *testing.T) {
	env, rel := transEnv(t, 50)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	e := New(env)
	full, _ := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	dirty := map[string]map[int]bool{"Trans": {rel.Tuples[0].TID: true}}
	inc, _ := e.Run(r, Options{Dirty: dirty}, func(h *predicate.Valuation) bool { return true })
	if inc.Valuations >= full.Valuations {
		t.Errorf("dirty filter must shrink work: %d vs %d", inc.Valuations, full.Valuations)
	}
	if inc.Valuations == 0 {
		t.Error("dirty tuple participates in matches; expected > 0")
	}
}

func TestExecutorRestrictPartition(t *testing.T) {
	env, rel := transEnv(t, 50)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	e := New(env)
	part := rel.Tuples[:10]
	st, err := e.Run(r, Options{Restrict: map[string][]*data.Tuple{"Trans": part}}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	full, _ := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if st.Valuations >= full.Valuations {
		t.Error("partition restriction must shrink results")
	}
}

func TestExecutorMaxResults(t *testing.T) {
	env, _ := transEnv(t, 50)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	e := New(env)
	st, err := e.Run(r, Options{MaxResults: 3}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Valuations != 3 {
		t.Errorf("MaxResults ignored: %d", st.Valuations)
	}
}

func TestExecutorEarlyStop(t *testing.T) {
	env, _ := transEnv(t, 50)
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	e := New(env)
	n := 0
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Valuations != 2 {
		t.Errorf("early stop: %d", st.Valuations)
	}
}

func TestExecutorErrors(t *testing.T) {
	env, _ := transEnv(t, 5)
	e := New(env)
	bad := must.Rule("Ghost(t) -> t.a = 1", nil)
	if _, err := e.Run(bad, Options{}, func(h *predicate.Valuation) bool { return true }); err == nil {
		t.Error("unknown relation must error")
	}
	badG := must.Rule("Trans(t) ^ vertex(x, NoGraph) ^ HER(t, x) -> t.mfg = 'x'", nil)
	if _, err := e.Run(badG, Options{}, func(h *predicate.Valuation) bool { return true }); err == nil {
		t.Error("unknown graph must error")
	}
}

func TestValueOfHookRespected(t *testing.T) {
	env, rel := transEnv(t, 10)
	// Hook makes every mfg read as "Fixed" — the CR rule then has no violations.
	env.ValueOf = func(relName string, tp *data.Tuple, attr string) (data.Value, bool) {
		if attr == "mfg" {
			return data.S("Fixed"), true
		}
		i := rel.Schema.Index(attr)
		return tp.Values[i], true
	}
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	if n := countViolations(t, env, r, Options{}); n != 0 {
		t.Errorf("hooked values must remove violations, got %d", n)
	}
}
