// Package exec is the local executor of paper §5.3: it evaluates one REE++
// against (a partition of) the data, enumerating only promising valuations.
// A small query optimizer picks the evaluation strategy per rule:
//
//   - constant predicates are pushed down to pre-filter each variable's
//     candidate tuples;
//   - equality join predicates (t.A = s.B) drive hash joins;
//   - ML predicates M(t[A̅], s[B̅]) drive LSH blocking (filter-and-verify,
//     paper §5.4) instead of the quadratic all-pairs sweep;
//   - remaining predicates evaluate as soon as their variables are bound
//     (predicate pushdown), so dead branches prune early.
//
// The executor is shared by error detection and the chase; the caller's
// Env decides whether values come from raw data (detection) or from the
// fix set U (chasing).
package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// Options tunes one enumeration run.
type Options struct {
	// Ctx, when non-nil, is checked periodically during enumeration: a
	// cancelled context stops the run early through the normal early-exit
	// path and Run returns the context's error. Nil never cancels.
	Ctx context.Context
	// UseBlocking enables LSH blocking for ML predicates. Off, ML
	// predicates fall back to nested loops (the SQL-engine behaviour the
	// paper compares against).
	UseBlocking bool
	// Dirty restricts enumeration to valuations binding at least one dirty
	// tuple: Dirty[rel] is the set of TIDs considered changed. Nil means
	// no restriction (batch mode); non-nil implements the incremental
	// activation of paper §4.1.
	Dirty map[string]map[int]bool
	// Restrict, when non-nil, limits the tuples each variable may bind to
	// (the work unit's data partition, paper §5.2). Keyed by relation.
	Restrict map[string][]*data.Tuple
	// RestrictVar limits individual variables to tuple subsets — the
	// HyperCube partitioning assigns each variable of a rule its own
	// virtual block (paper §5.3). Takes precedence over Restrict.
	RestrictVar map[string][]*data.Tuple
	// MaxResults stops enumeration after this many callbacks (<=0: all).
	MaxResults int
	// Span, when non-nil, is the parent span this run is traced under
	// (the work unit's span). Run opens an "exec" child span and, per ML
	// predicate evaluation, an "ml.<model>" grandchild — only while the
	// registry has spans enabled; otherwise tracing costs one nil check.
	Span *obs.Span
}

// Stats reports what the executor did — used by benches and the lazy-chase
// ablation.
type Stats struct {
	Valuations int // valuations reaching the callback
	Enumerated int // candidate bindings generated before pruning
	MLCalls    int // ML predicate evaluations (post-blocking)
}

// blockerEntry is one cached LSH index: the blocker plus the id→tuple map
// needed to resolve its candidate ids back to tuples.
type blockerEntry struct {
	b    *ml.Blocker
	byID map[int]*data.Tuple
}

// Executor caches per-relation indexes and blockers across rules. Run is
// safe for concurrent use by multiple goroutines: the environment and LSH
// planes are read-only, all enumeration state is per-call, and the blocker
// cache is guarded by a mutex — the parallel chase and detector share one
// executor across their worker pools.
type Executor struct {
	env *predicate.Env
	lsh *ml.LSH

	// embeds, when set, memoises per-tuple blocking vectors across rules
	// and rounds with versioned invalidation (the §5.4 predication
	// layer). Installed once before any Run; nil means embed on demand.
	embeds *ml.EmbedStore

	// reg, when set, receives blocker-cache hit/miss/invalidation
	// counters ("exec.blocker.*"); nil records nothing (obs methods are
	// nil-safe).
	reg *obs.Registry

	// mu guards blockers; key: rel + attrs signature + partition
	// fingerprint (see blockerKey).
	mu       sync.Mutex
	blockers map[string]*blockerEntry

	// in is the dictionary-encoded hot path (intern.go): lazily built
	// interned columns, cross-column id translations, and the shadow-TID
	// sets that keep interned comparisons sound under a ValueOf hook.
	in internIndex
}

// New creates an executor over the environment.
func New(env *predicate.Env) *Executor {
	return &Executor{
		env:      env,
		blockers: make(map[string]*blockerEntry),
		lsh:      ml.NewLSH(8, 6, 17),
	}
}

// Env returns the executor's environment.
func (e *Executor) Env() *predicate.Env { return e.env }

// SetEmbedStore installs the versioned per-tuple embedding store. Call
// before the first Run; the store itself is safe for concurrent use.
func (e *Executor) SetEmbedStore(s *ml.EmbedStore) { e.embeds = s }

// SetObs routes the executor's cache counters into reg. Call before the
// first Run; nil (the default) records nothing.
func (e *Executor) SetObs(reg *obs.Registry) { e.reg = reg }

// EmbedStore returns the installed store (nil when embedding on demand).
func (e *Executor) EmbedStore() *ml.EmbedStore { return e.embeds }

// InvalidateTuples retires the cached embeddings of exactly the given
// tuples (dirty[rel] is a TID set) — the tuple-granular counterpart of
// InvalidateBlockers. No-op without a store.
func (e *Executor) InvalidateTuples(dirty map[string]map[int]bool) {
	if e.embeds == nil {
		return
	}
	for rel, tids := range dirty {
		for tid := range tids {
			e.embeds.Invalidate(rel, tid)
		}
	}
}

// InvalidateBlockers drops cached blockers; call after mutating relations
// or the value view they were embedded through (the chase calls it after
// every merge step that changes validated values).
func (e *Executor) InvalidateBlockers() {
	e.mu.Lock()
	e.blockers = make(map[string]*blockerEntry)
	e.mu.Unlock()
	e.reg.Inc("exec.blocker.invalidations")
}

// blockerKey fingerprints one blocking request: relation, the embedded
// attribute list, and the exact tuple partition (FNV-1a over TIDs). Two
// work units over the same block therefore share one LSH index, while
// different HyperCube blocks never collide.
func blockerKey(relName string, attrs []string, tuples []*data.Tuple) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, t := range tuples {
		v := uint64(t.TID)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return relName + "\x1f" + strings.Join(attrs, ",") + "\x1f" +
		fmt.Sprintf("%d:%x", len(tuples), h.Sum64())
}

// blockerFor returns the cached LSH index for (relName, attrs, tuples),
// building and caching it on a miss. embed turns one tuple into its
// blocking vector. Concurrent misses on the same key may build twice; the
// last store wins and both results are equivalent.
func (e *Executor) blockerFor(relName string, attrs []string, tuples []*data.Tuple,
	embed func(t *data.Tuple) ml.Vector) *blockerEntry {

	key := blockerKey(relName, attrs, tuples)
	e.mu.Lock()
	if ent, ok := e.blockers[key]; ok {
		e.mu.Unlock()
		e.reg.Inc("exec.blocker.hits")
		return ent
	}
	e.mu.Unlock()
	e.reg.Inc("exec.blocker.misses")
	ent := &blockerEntry{b: ml.NewBlocker(e.lsh), byID: make(map[int]*data.Tuple, len(tuples))}
	for _, t := range tuples {
		ent.byID[t.TID] = t
		ent.b.Add(t.TID, embed(t))
	}
	e.mu.Lock()
	e.blockers[key] = ent
	e.mu.Unlock()
	return ent
}

// CachedBlockers reports the number of live blocker cache entries.
func (e *Executor) CachedBlockers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.blockers)
}

// Run enumerates valuations h of rule r with h |= X, invoking fn for each.
// fn returns false to stop early. The returned stats describe the run.
func (e *Executor) Run(r *ree.Rule, opts Options, fn func(h *predicate.Valuation) bool) (Stats, error) {
	var st Stats
	if len(r.Atoms) == 0 {
		return st, fmt.Errorf("exec: rule %s has no tuple atoms", r.ID)
	}
	spansOn := e.reg.SpansEnabled()
	var execSpan *obs.Span
	if spansOn {
		execSpan = e.reg.StartSpan("exec", opts.Span)
		execSpan.SetRule(r.ID)
		defer func() {
			execSpan.SetN(int64(st.Valuations))
			execSpan.End()
		}()
	}
	// Per-model ML attribution accumulates locally (the binder is hot)
	// and flushes to the registry once per run.
	var mlWall map[string]time.Duration
	var mlCalls map[string]int64
	if e.reg != nil {
		mlWall = make(map[string]time.Duration)
		mlCalls = make(map[string]int64)
		defer func() {
			for m, n := range mlCalls {
				e.reg.Add("exec.ml."+m+".calls", uint64(n))
				e.reg.Add("exec.ml."+m+".wall_ns", uint64(mlWall[m]))
			}
		}()
	}
	// Candidate tuples per variable after constant pushdown. Filtered
	// candidate lists come from the scratch pool and are released when the
	// run finishes; unfiltered variables alias the partition slice itself
	// (zero copies on the common no-constant-predicate rule).
	fast := e.fastPathOK()
	cands := make(map[string][]*data.Tuple, len(r.Atoms))
	var pooled [][]*data.Tuple
	defer func() {
		for _, b := range pooled {
			putTupleBuf(b)
		}
	}()
	for _, a := range r.Atoms {
		ts, fromPool, err := e.candidates(r, a, opts, fast)
		if err != nil {
			return st, err
		}
		cands[a.Var] = ts
		if fromPool {
			pooled = append(pooled, ts)
		}
	}

	// Pick a driver pair: an equality join or a blocked ML predicate over
	// the first two variables.
	plan := e.plan(r, cands, opts, fast)
	if plan.pooledPairs {
		defer putPairBuf(plan.pairs)
	}
	// Join-driven pairs are built from the candidate lists and need no
	// re-check; LSH-driven pairs come from the raw partition and must be
	// intersected with the pushdown survivors.
	var allow1, allow2 map[int]bool
	if plan.pairs != nil && !plan.prefiltered {
		allow1 = tidSet(cands[plan.var1])
		allow2 = tidSet(cands[plan.var2])
	}

	// The recursive binder: bind variables in atom order, but the first
	// two may be driven by the plan's pair generator. Each precondition
	// predicate is evaluated exactly once per binding path, at the depth
	// where its last variable becomes bound; evalDepth records that depth
	// so the evaluation is undone when the binder backtracks past it.
	h := predicate.NewValuation()
	stop := false
	var bindRest func(i int)
	bound := map[string]bool{}
	depth := 0
	evalDepth := make(map[*predicate.Predicate]int, len(r.X))

	// Errors stop enumeration through the same path as an early callback
	// exit, so every binding level unwinds h/bound/depth/evalDepth on the
	// way out — the executor stays clean and reusable after a failed run.
	var finalErr error
	fail := func(err error) {
		if finalErr == nil {
			finalErr = err
		}
		stop = true
	}

	checkAt := func() (bool, error) {
		for _, p := range r.X {
			if plan.covered[p] {
				continue
			}
			if _, done := evalDepth[p]; done {
				continue
			}
			ready := true
			for _, v := range p.Vars() {
				if !bound[v] {
					ready = false
					break
				}
			}
			for _, v := range p.VertexVars() {
				if !bound[v] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			var mname string
			var msp *obs.Span
			var t0 time.Time
			if p.IsML() {
				st.MLCalls++
				if mlCalls != nil {
					mname = modelName(p)
					if spansOn {
						msp = e.reg.StartSpan("ml."+mname, execSpan)
					}
					t0 = time.Now()
				}
			}
			ok, err := p.Eval(e.env, h)
			if mname != "" {
				mlWall[mname] += time.Since(t0)
				mlCalls[mname]++
				msp.End()
			}
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			evalDepth[p] = depth
		}
		return true, nil
	}
	unwind := func() {
		for p, d := range evalDepth {
			if d >= depth {
				delete(evalDepth, p)
			}
		}
	}

	emitCalls := 0
	emit := func() bool {
		// Cooperative cancellation: poll the context every few emit calls so
		// a deadline cuts a long enumeration short between valuations. The
		// counter counts calls, not emitted valuations — the dirty filter
		// below returns before Valuations increments, so an all-clean
		// incremental run polled on Valuations would never observe
		// cancellation no matter how long it enumerates.
		emitCalls++
		if opts.Ctx != nil && emitCalls%64 == 0 {
			if err := opts.Ctx.Err(); err != nil {
				fail(err)
				return false
			}
		}
		// Incremental mode: every emitted valuation must bind at least one
		// dirty tuple (the driver paths pre-filter; the generic nested-loop
		// path is guarded here).
		if opts.Dirty != nil {
			touches := false
			for _, b := range h.Tuples {
				if d := opts.Dirty[b.Rel]; d != nil && d[b.Tuple.TID] {
					touches = true
					break
				}
			}
			if !touches {
				return true
			}
		}
		st.Valuations++
		if !fn(h) {
			stop = true
			return false
		}
		if opts.MaxResults > 0 && st.Valuations >= opts.MaxResults {
			stop = true
			return false
		}
		return true
	}

	var bindVertexes func(vi int)
	bindVertexes = func(vi int) {
		if stop {
			return
		}
		if vi == len(r.VertexAtoms) {
			emit()
			return
		}
		va := r.VertexAtoms[vi]
		g := e.env.Graphs[va.Graph]
		if g == nil {
			fail(fmt.Errorf("exec: rule %s references unknown graph %q", r.ID, va.Graph))
			return
		}
		for _, v := range g.VertexIDs() {
			h.BindVertex(va.Var, va.Graph, v)
			bound[va.Var] = true
			depth++
			ok, err := checkAt()
			if err != nil {
				fail(err)
			} else if ok {
				bindVertexes(vi + 1)
			}
			unwind()
			depth--
			delete(bound, va.Var)
			delete(h.Vertices, va.Var)
			if stop {
				return
			}
		}
	}

	bindRest = func(i int) {
		if stop {
			return
		}
		if i == len(r.Atoms) {
			bindVertexes(0)
			return
		}
		a := r.Atoms[i]
		if bound[a.Var] {
			bindRest(i + 1)
			return
		}
		list := cands[a.Var]
		// Hash-join shortcut: if an equality predicate links a bound var to
		// this one, probe the candidate list instead of scanning; probeJoin
		// works over the constant-pushdown candidate set of the variable, so
		// tuples eliminated by single-variable predicates never re-enumerate.
		idxList, fromPool := e.probeJoin(r, a, bound, h, cands, opts, fast)
		if idxList != nil {
			list = idxList
		}
		for _, t := range list {
			if selfPair(h, a, t) {
				continue
			}
			st.Enumerated++
			h.Bind(a.Var, a.Rel, t)
			bound[a.Var] = true
			depth++
			ok, err := checkAt()
			if err != nil {
				fail(err)
			} else if ok {
				bindRest(i + 1)
			}
			unwind()
			depth--
			delete(bound, a.Var)
			delete(h.Tuples, a.Var)
			if stop {
				break
			}
		}
		if fromPool {
			putTupleBuf(idxList)
		}
	}

	if plan.pairs != nil {
		// Drive the first two variables from the plan's pair list.
		v1, v2 := plan.var1, plan.var2
		rel1, rel2 := r.RelOf(v1), r.RelOf(v2)
		for _, pr := range plan.pairs {
			if stop {
				break
			}
			t1, t2 := pr[0], pr[1]
			if !plan.prefiltered && (!allow1[t1.TID] || !allow2[t2.TID]) {
				continue
			}
			if rel1 == rel2 && t1.TID == t2.TID {
				continue
			}
			st.Enumerated += 2
			h.Bind(v1, rel1, t1)
			h.Bind(v2, rel2, t2)
			bound[v1], bound[v2] = true, true
			depth++
			ok, err := checkAt()
			if err != nil {
				fail(err)
			} else if ok {
				bindRest(0)
			}
			unwind()
			depth--
			delete(bound, v1)
			delete(bound, v2)
			delete(h.Tuples, v1)
			delete(h.Tuples, v2)
		}
	} else {
		bindRest(0)
	}
	return st, finalErr
}

// modelName names the model behind an ML predicate for cost attribution:
// the declared Model when present, else a stable kind-based fallback (some
// ML kinds — HER, match, rank — reference built-in models implicitly).
func modelName(p *predicate.Predicate) string {
	if p.Model != "" {
		return p.Model
	}
	switch p.Kind {
	case predicate.KHER:
		return "HER"
	case predicate.KMatch:
		return "match"
	case predicate.KRank:
		return "rank"
	case predicate.KCorr:
		return "corr"
	case predicate.KPredict:
		return "predict"
	}
	return "ml"
}

func selfPair(h *predicate.Valuation, a ree.Atom, t *data.Tuple) bool {
	for _, b := range h.Tuples {
		if b.Rel == a.Rel && b.Tuple.TID == t.TID {
			return true
		}
	}
	return false
}

// candidates lists the tuples variable a.Var may bind to after constant
// pushdown, partition restriction and dirty filtering. fromPool reports
// that the returned slice came from the scratch pool (the caller releases
// it); false means it aliases the partition itself and must not be
// mutated or pooled.
func (e *Executor) candidates(r *ree.Rule, a ree.Atom, opts Options, fast bool) (out []*data.Tuple, fromPool bool, err error) {
	rel := e.env.DB.Rel(a.Rel)
	if rel == nil {
		return nil, false, fmt.Errorf("exec: rule %s references unknown relation %q", r.ID, a.Rel)
	}
	base := partitionOf(rel, a.Rel, a.Var, opts)
	// Collect the single-variable constant/null predicates on this var.
	var preds []*predicate.Predicate
	for _, p := range r.X {
		if p.Kind != predicate.KConst && p.Kind != predicate.KNull && p.Kind != predicate.KNotNull {
			continue
		}
		if p.T != a.Var {
			continue
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return base, false, nil
	}
	// Split into interned filters (id compares over the dense column —
	// idFilter, vector.go) and slow predicates (full Eval). Null checks
	// always read raw data, so they intern unconditionally; constant
	// equality reads through the value view, so shadowed tuples
	// re-evaluate per tuple below.
	var fasts []idFilter
	var slows []*predicate.Predicate
	for _, p := range preds {
		interned := false
		if fast && (p.Kind != predicate.KConst || p.Op == predicate.Eq || p.Op == predicate.Neq) {
			if col := e.internedCol(a.Rel, p.A); col != nil {
				f := idFilter{p: p, col: col, viewed: p.Kind == predicate.KConst}
				f.nullID, f.hasNull = col.Dict.NullID()
				if p.Kind == predicate.KConst {
					f.cid, f.hasCID = col.Dict.ID(p.C)
				}
				fasts = append(fasts, f)
				interned = true
			}
		}
		if !interned {
			slows = append(slows, p)
		}
	}
	shadow := e.shadowOf(a.Rel)
	// Batch kernels take over above the size gate when the partition is
	// TID-ascending (vector.go); the scalar loop remains the oracle and
	// the fallback for filtered or re-ordered partitions.
	if len(fasts) > 0 && len(base) >= vecMinTuples {
		if vout, handled, verr := e.candidatesVec(a, rel, base, fasts, slows, shadow); handled {
			return vout, true, verr
		}
	}
	out = getTupleBuf()
	fromPool = true
	h := predicate.NewValuation()
	for _, t := range base {
		keep := true
		if len(fasts) > 0 {
			var evalErr error
			keep, evalErr = e.keepFasts(a, t, fasts, shadow, h)
			if evalErr != nil {
				putTupleBuf(out)
				return nil, false, evalErr
			}
		}
		if keep && len(slows) > 0 {
			var evalErr error
			keep, evalErr = e.evalSlows(a, t, slows, h)
			if evalErr != nil {
				putTupleBuf(out)
				return nil, false, evalErr
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	return out, fromPool, nil
}

// tidSet builds the membership set of a candidate list.
func tidSet(ts []*data.Tuple) map[int]bool {
	set := make(map[int]bool, len(ts))
	for _, t := range ts {
		set[t.TID] = true
	}
	return set
}

// execPlan is the chosen driver for the first two variables.
type execPlan struct {
	var1, var2 string
	pairs      [][2]*data.Tuple
	// covered marks predicates certified by the driver (join equality).
	covered map[*predicate.Predicate]bool
	// prefiltered marks pair lists built from the pushdown candidate
	// lists — the pairs loop skips its allowed-set intersection.
	prefiltered bool
	// pooledPairs marks pairs as pool scratch, released after the run.
	pooledPairs bool
}

// plan inspects the rule and builds pair candidates via hash join or LSH
// blocking when profitable.
func (e *Executor) plan(r *ree.Rule, cands map[string][]*data.Tuple, opts Options, fast bool) execPlan {
	pl := execPlan{covered: map[*predicate.Predicate]bool{}}
	if len(r.Atoms) < 2 {
		return pl
	}
	// Prefer an equality join between two distinct variables.
	for _, p := range r.X {
		if p.Kind == predicate.KAttr && p.Op == predicate.Eq && p.T != p.S {
			tuplesT, okT := cands[p.T]
			tuplesS, okS := cands[p.S]
			if !okT || !okS {
				continue
			}
			pairs, pooledPairs := e.hashJoin(r, p, opts, tuplesT, tuplesS, fast)
			if pairs != nil {
				pl.var1, pl.var2, pl.pairs = p.T, p.S, pairs
				pl.covered[p] = true
				pl.prefiltered = true
				pl.pooledPairs = pooledPairs
				return pl
			}
		}
	}
	// Otherwise a blocked ML predicate.
	if opts.UseBlocking {
		for _, p := range r.X {
			if p.Kind == predicate.KML && p.T != p.S {
				pairs := e.blockPairs(r, p, opts)
				if pairs != nil {
					pl.var1, pl.var2, pl.pairs = p.T, p.S, pairs
					// Not covered: the model still verifies each candidate.
					// Not prefiltered: LSH pairs come from the raw partition.
					return pl
				}
			}
		}
	}
	return pl
}

// hashJoin builds (t, s) pairs with t.A = s.B via a hash index on s.B,
// joining the two variables' pushdown candidate lists. When interned
// columns are available (and the fast path is sound) the index keys on
// dictionary ids; otherwise it keys on canonical value keys, which agree
// with Value.Equal — cross-type numeric matches (I(5) = F(5)) land in one
// bucket either way, exactly as the probe-join path finds them. pooled
// reports the pair slice came from the scratch pool.
func (e *Executor) hashJoin(r *ree.Rule, p *predicate.Predicate, opts Options,
	tuplesT, tuplesS []*data.Tuple, fast bool) (pairs [][2]*data.Tuple, pooled bool) {
	relTName, relSName := r.RelOf(p.T), r.RelOf(p.S)
	relT := e.env.DB.Rel(relTName)
	relS := e.env.DB.Rel(relSName)
	if relT == nil || relS == nil {
		return nil, false
	}
	bi := relS.Schema.Index(p.B)
	ai := relT.Schema.Index(p.A)
	if ai < 0 || bi < 0 {
		return nil, false
	}
	if fast {
		colA := e.internedCol(relTName, p.A)
		colB := e.internedCol(relSName, p.B)
		if colA != nil && colB != nil {
			// Posting-list enumeration first (vector.go); it declines when
			// colB is incomplete or an input is not TID-ascending.
			if out, ok := e.postingJoin(r, p, opts, tuplesT, tuplesS, colA, colB, ai, bi, relS); ok {
				return out, true
			}
			return e.hashJoinInterned(r, p, opts, tuplesT, tuplesS, colA, colB, ai, bi), true
		}
	}
	idx := make(map[string][]*data.Tuple, len(tuplesS))
	for _, s := range tuplesS {
		v := valueThrough(e.env, relSName, s, p.B, bi)
		if v.IsNull() {
			continue
		}
		idx[v.Key()] = append(idx[v.Key()], s)
	}
	out := getPairBuf()
	for _, t := range tuplesT {
		v := valueThrough(e.env, relTName, t, p.A, ai)
		if v.IsNull() {
			continue
		}
		for _, s := range idx[v.Key()] {
			if !dirtyOK(opts, r, p.T, t, p.S, s) {
				continue
			}
			out = append(out, [2]*data.Tuple{t, s})
		}
	}
	return out, true
}

// hashJoinInterned is the dictionary-encoded join: index s-tuples by their
// interned id in colB's dictionary, probe with t ids translated from colA.
// Shadowed tuples (view may differ from raw) read through valueThrough;
// shadowed view values absent from colB's dictionary spill into a
// string-keyed overflow index so no match is lost.
func (e *Executor) hashJoinInterned(r *ree.Rule, p *predicate.Predicate, opts Options,
	tuplesT, tuplesS []*data.Tuple, colA, colB *crystal.Column, ai, bi int) [][2]*data.Tuple {
	relTName, relSName := r.RelOf(p.T), r.RelOf(p.S)
	shadowT := e.shadowOf(relTName)
	shadowS := e.shadowOf(relSName)
	nullB, hasNullB := colB.Dict.NullID()
	idx := make(map[crystal.ValueID][]*data.Tuple, len(tuplesS))
	var slow map[string][]*data.Tuple // shadowed view values outside colB's dict
	addByValue := func(s *data.Tuple, v data.Value) {
		if v.IsNull() {
			return
		}
		if id, ok := colB.Dict.ID(v); ok {
			idx[id] = append(idx[id], s)
			return
		}
		if slow == nil {
			slow = make(map[string][]*data.Tuple)
		}
		slow[v.Key()] = append(slow[v.Key()], s)
	}
	for _, s := range tuplesS {
		if shadowS != nil && shadowS[s.TID] {
			addByValue(s, valueThrough(e.env, relSName, s, p.B, bi))
			continue
		}
		id, ok := colB.IDAt(s.TID)
		if !ok {
			// TID unseen by the column (insert since last refresh): the raw
			// value is still authoritative for a non-shadowed tuple.
			addByValue(s, s.Values[bi])
			continue
		}
		if hasNullB && id == nullB {
			continue
		}
		idx[id] = append(idx[id], s)
	}
	sameCol := relTName == relSName && p.A == p.B
	var trans []crystal.ValueID
	if !sameCol {
		trans = e.translation(relTName, p.A, colA, relSName, p.B, colB)
	}
	nullA, hasNullA := colA.Dict.NullID()
	out := getPairBuf()
	emitMatches := func(t *data.Tuple, bucket, overflow []*data.Tuple) {
		for _, s := range bucket {
			if dirtyOK(opts, r, p.T, t, p.S, s) {
				out = append(out, [2]*data.Tuple{t, s})
			}
		}
		for _, s := range overflow {
			if dirtyOK(opts, r, p.T, t, p.S, s) {
				out = append(out, [2]*data.Tuple{t, s})
			}
		}
	}
	for _, t := range tuplesT {
		if shadowT != nil && shadowT[t.TID] {
			v := valueThrough(e.env, relTName, t, p.A, ai)
			if v.IsNull() {
				continue
			}
			var bucket []*data.Tuple
			if id, ok := colB.Dict.ID(v); ok {
				bucket = idx[id]
			}
			var overflow []*data.Tuple
			if slow != nil {
				overflow = slow[v.Key()]
			}
			emitMatches(t, bucket, overflow)
			continue
		}
		idA, ok := colA.IDAt(t.TID)
		if !ok {
			v := t.Values[ai]
			if v.IsNull() {
				continue
			}
			var bucket []*data.Tuple
			if id, ok := colB.Dict.ID(v); ok {
				bucket = idx[id]
			}
			var overflow []*data.Tuple
			if slow != nil {
				overflow = slow[v.Key()]
			}
			emitMatches(t, bucket, overflow)
			continue
		}
		if hasNullA && idA == nullA {
			continue
		}
		idB := idA
		if !sameCol {
			idB = trans[idA]
		}
		var bucket []*data.Tuple
		if idB != crystal.NoValue {
			bucket = idx[idB]
		}
		var overflow []*data.Tuple
		if slow != nil {
			// A shadowed s-tuple may carry a view value colB never interned
			// yet equal to t's — check the overflow index by canonical key.
			if v, ok := colA.Dict.Value(idA); ok {
				overflow = slow[v.Key()]
			}
		}
		emitMatches(t, bucket, overflow)
	}
	return out
}

// blockPairs builds candidate (t, s) pairs for an ML predicate via LSH.
func (e *Executor) blockPairs(r *ree.Rule, p *predicate.Predicate, opts Options) [][2]*data.Tuple {
	relTName, relSName := r.RelOf(p.T), r.RelOf(p.S)
	relT, relS := e.env.DB.Rel(relTName), e.env.DB.Rel(relSName)
	if relT == nil || relS == nil {
		return nil
	}
	tuplesT := partitionOf(relT, relTName, p.T, opts)
	tuplesS := partitionOf(relS, relSName, p.S, opts)
	sameSide := relTName == relSName && sameAttrs(p.As, p.Bs)

	// Reads go through the embedding store when installed: a tuple probed
	// by many rules (or re-probed across rounds) embeds once per version
	// instead of once per probe.
	sigAs, sigBs := strings.Join(p.As, ","), strings.Join(p.Bs, ",")
	embed := func(rel *data.Relation, relName string, t *data.Tuple, attrs []string, sig string) ml.Vector {
		compute := func() ml.Vector {
			vals := make([]data.Value, len(attrs))
			for i, a := range attrs {
				vals[i] = valueThrough(e.env, relName, t, a, rel.Schema.Index(a))
			}
			return ml.EmbedValues(vals)
		}
		if e.embeds != nil {
			return e.embeds.Embed(relName, t.TID, sig, compute)
		}
		return compute()
	}

	if sameSide {
		ent := e.blockerFor(relTName, p.As, tuplesT, func(t *data.Tuple) ml.Vector {
			return embed(relT, relTName, t, p.As, sigAs)
		})
		out := make([][2]*data.Tuple, 0)
		for _, pr := range ent.b.CandidatePairs() {
			t, s := ent.byID[pr[0]], ent.byID[pr[1]]
			if dirtyOK(opts, r, p.T, t, p.S, s) {
				out = append(out, [2]*data.Tuple{t, s})
			}
			// Symmetric valuation: the reverse binding may matter for
			// asymmetric consequences.
			if dirtyOK(opts, r, p.T, s, p.S, t) {
				out = append(out, [2]*data.Tuple{s, t})
			}
		}
		return out
	}
	// Cross-relation: index S, probe with T.
	ent := e.blockerFor(relSName, p.Bs, tuplesS, func(s *data.Tuple) ml.Vector {
		return embed(relS, relSName, s, p.Bs, sigBs)
	})
	out := make([][2]*data.Tuple, 0)
	for _, t := range tuplesT {
		for _, sid := range ent.b.CandidatesOf(embed(relT, relTName, t, p.As, sigAs), -1) {
			s := ent.byID[sid]
			if dirtyOK(opts, r, p.T, t, p.S, s) {
				out = append(out, [2]*data.Tuple{t, s})
			}
		}
	}
	return out
}

// MLJob is one (model, pair) predication to precompute: the attribute
// value vectors an ML predicate will score during rule evaluation.
type MLJob struct {
	Model string
	Left  []data.Value
	Right []data.Value
}

// MLJobs enumerates the predications rule r will need this round: when
// the planner drives enumeration with a blocked ML predicate
// (filter-and-verify), the model verifies exactly one (left, right)
// vector pair per LSH candidate pair — that is the set returned here.
// The chase scores it in parallel before fanning work units out (paper
// §5.4, "ML predication is precomputed"), so deduction reads
// predictions instead of computing them. Join-driven rules return nil:
// their ML predicates score only the pairs surviving the join and
// earlier predicates, a subset not worth over-computing. Work-unit
// candidate pairs are a subset of the full-relation pairs returned here
// (an LSH bucket hash depends only on the vector), and any residual
// miss during evaluation still computes correctly — precompute is an
// optimisation, never a correctness dependency.
func (e *Executor) MLJobs(r *ree.Rule, opts Options) []MLJob {
	if !opts.UseBlocking {
		return nil
	}
	p := e.mlDriverOf(r)
	if p == nil {
		return nil
	}
	pairs := e.blockPairs(r, p, opts)
	if len(pairs) == 0 {
		return nil
	}
	relTName, relSName := r.RelOf(p.T), r.RelOf(p.S)
	out := make([]MLJob, 0, len(pairs))
	for _, pr := range pairs {
		out = append(out, MLJob{
			Model: p.Model,
			Left:  e.mlValues(relTName, pr[0], p.As),
			Right: e.mlValues(relSName, pr[1], p.Bs),
		})
	}
	return out
}

// mlDriverOf mirrors plan's driver selection without materialising any
// pairs: it returns the ML predicate blocking would drive rule r with,
// or nil when an equality hash join takes precedence (plan prefers it)
// or no two-variable ML predicate resolves.
func (e *Executor) mlDriverOf(r *ree.Rule) *predicate.Predicate {
	if len(r.Atoms) < 2 {
		return nil
	}
	for _, p := range r.X {
		if p.Kind == predicate.KAttr && p.Op == predicate.Eq && p.T != p.S {
			relT, relS := e.env.DB.Rel(r.RelOf(p.T)), e.env.DB.Rel(r.RelOf(p.S))
			if relT != nil && relS != nil && relT.Schema.Index(p.A) >= 0 && relS.Schema.Index(p.B) >= 0 {
				return nil // join-driven
			}
		}
	}
	for _, p := range r.X {
		if p.Kind == predicate.KML && p.T != p.S {
			if e.env.DB.Rel(r.RelOf(p.T)) != nil && e.env.DB.Rel(r.RelOf(p.S)) != nil {
				return p
			}
		}
	}
	return nil
}

// mlValues reads the attribute vector an ML predicate scores, through
// the env's value view (fix set U during chasing, raw data otherwise).
func (e *Executor) mlValues(relName string, t *data.Tuple, attrs []string) []data.Value {
	rel := e.env.DB.Rel(relName)
	vals := make([]data.Value, len(attrs))
	for i, a := range attrs {
		idx := -1
		if rel != nil {
			idx = rel.Schema.Index(a)
		}
		vals[i] = valueThrough(e.env, relName, t, a, idx)
	}
	return vals
}

func sameAttrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func partitionOf(rel *data.Relation, name, varName string, opts Options) []*data.Tuple {
	if opts.RestrictVar != nil {
		if part, ok := opts.RestrictVar[varName]; ok {
			return part
		}
	}
	if opts.Restrict != nil {
		if part, ok := opts.Restrict[name]; ok {
			return part
		}
	}
	return rel.Tuples
}

// dirtyOK applies the incremental-mode filter: at least one of the two
// tuples must be dirty when a dirty set is supplied.
func dirtyOK(opts Options, r *ree.Rule, v1 string, t1 *data.Tuple, v2 string, t2 *data.Tuple) bool {
	if opts.Dirty == nil {
		return true
	}
	if d := opts.Dirty[r.RelOf(v1)]; d != nil && d[t1.TID] {
		return true
	}
	if d := opts.Dirty[r.RelOf(v2)]; d != nil && d[t2.TID] {
		return true
	}
	return false
}

// probeJoin, during recursive binding, returns a filtered candidate list
// for atom a when some already-bound variable is linked to it by an
// equality predicate. The scan runs over the variable's constant-pushdown
// candidate list, so tuples already eliminated by single-variable
// predicates are never re-enumerated; with interned columns available the
// per-tuple comparison is one uint32 equality instead of a Value.Equal.
// Returns nil when no index applies; fromPool reports the returned slice
// is pool scratch the caller must release.
func (e *Executor) probeJoin(r *ree.Rule, a ree.Atom, bound map[string]bool, h *predicate.Valuation,
	cands map[string][]*data.Tuple, opts Options, fast bool) (list []*data.Tuple, fromPool bool) {
	rel := e.env.DB.Rel(a.Rel)
	if rel == nil {
		return nil, false
	}
	for _, p := range r.X {
		if p.Kind != predicate.KAttr || p.Op != predicate.Eq {
			continue
		}
		var boundVar, boundAttr, freeAttr string
		switch {
		case p.S == a.Var && bound[p.T]:
			boundVar, boundAttr, freeAttr = p.T, p.A, p.B
		case p.T == a.Var && bound[p.S]:
			boundVar, boundAttr, freeAttr = p.S, p.B, p.A
		default:
			continue
		}
		b := h.Tuples[boundVar]
		brel := e.env.DB.Rel(b.Rel)
		if brel == nil {
			continue
		}
		v := valueThrough(e.env, b.Rel, b.Tuple, boundAttr, brel.Schema.Index(boundAttr))
		if v.IsNull() {
			continue
		}
		fi := rel.Schema.Index(freeAttr)
		if fi < 0 {
			continue
		}
		base := cands[a.Var]
		out := getTupleBuf()
		if fast {
			if col := e.internedCol(a.Rel, freeAttr); col != nil {
				shadow := e.shadowOf(a.Rel)
				if vout, ok := e.probeJoinVec(a.Rel, rel, base, col, v, freeAttr, fi, shadow); ok {
					putTupleBuf(out)
					return vout, true
				}
				target, haveTarget := col.Dict.ID(v)
				for _, t := range base {
					if shadow != nil && shadow[t.TID] {
						if valueThrough(e.env, a.Rel, t, freeAttr, fi).Equal(v) {
							out = append(out, t)
						}
						continue
					}
					if id, ok := col.IDAt(t.TID); ok {
						if haveTarget && id == target {
							out = append(out, t)
						}
						continue
					}
					if t.Values[fi].Equal(v) {
						out = append(out, t)
					}
				}
				return out, true
			}
		}
		for _, t := range base {
			if valueThrough(e.env, a.Rel, t, freeAttr, fi).Equal(v) {
				out = append(out, t)
			}
		}
		return out, true
	}
	return nil, false
}

// valueThrough reads t[attr] through the env's ValueOf hook when present.
func valueThrough(env *predicate.Env, rel string, t *data.Tuple, attr string, idx int) data.Value {
	if env.ValueOf != nil {
		v, ok := env.ValueOf(rel, t, attr)
		if !ok {
			return data.Value{}
		}
		return v
	}
	if idx < 0 || idx >= len(t.Values) {
		return data.Value{}
	}
	return t.Values[idx]
}

// SortTuplesByTID orders a tuple slice deterministically; helpers for
// callers building Restrict partitions.
func SortTuplesByTID(ts []*data.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].TID < ts[j].TID })
}
