package exec

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
)

// benchJoinEnv mirrors mixedNumericEnv without the *testing.T plumbing.
func benchJoinEnv(nA, nB, mod int) *predicate.Env {
	a := data.NewRelation(must.Schema("A", data.Attribute{Name: "x", Type: data.TInt}))
	b := data.NewRelation(must.Schema("B", data.Attribute{Name: "y", Type: data.TFloat}))
	for i := 0; i < nA; i++ {
		a.Insert(fmt.Sprintf("a%d", i), data.I(int64(i%mod)))
	}
	for i := 0; i < nB; i++ {
		v := float64(i % mod)
		if i%3 == 0 {
			v += 0.5
		}
		b.Insert(fmt.Sprintf("b%d", i), data.F(v))
	}
	db := data.NewDatabase()
	db.Add(a)
	db.Add(b)
	return predicate.NewEnv(db)
}

// BenchmarkPostingJoin times the full enumeration of the 5000×5000
// cross-type equijoin through the posting-list join; the -scalar variant
// pins the legacy per-tuple interned hash join for comparison.
func BenchmarkPostingJoin(b *testing.B) {
	env := benchJoinEnv(5000, 5000, 1000)
	r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
	r.ID = "bench-join"
	for _, scalar := range []bool{false, true} {
		name := "vectorized"
		if scalar {
			name = "scalar"
		}
		b.Run(name, func(b *testing.B) {
			old := vecMinTuples
			if scalar {
				vecMinTuples = 1 << 30
			}
			defer func() { vecMinTuples = old }()
			e := New(env)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
