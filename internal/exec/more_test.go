package exec

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
)

func TestExecutorVertexAtoms(t *testing.T) {
	schema := must.Schema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	rel.Insert("s1", data.S("Huawei Flagship"), data.Null(data.TString))
	rel.Insert("s2", data.S("Something Unrelated Entirely"), data.Null(data.TString))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	g := kg.New("Wiki")
	hv := g.AddVertex("Huawei Flagship")
	bj := g.AddVertex("Beijing")
	must.Edge(g, hv, "LocationAt", bj)
	env.Graphs["Wiki"] = g
	env.HER["Store"] = ml.NewHERMatcher("HER", g, schema, 0.6, "name")
	env.PathM = ml.NewPathMatcher(g, 0.3)

	r := must.Rule("Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) -> t.location = val(x.(LocationAt))", db)
	e := New(env)
	matches := 0
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool {
		matches++
		// The only X-satisfying valuation binds s1 to the Huawei vertex.
		if h.Tuples["t"].Tuple.EID != "s1" {
			t.Errorf("wrong tuple bound: %s", h.Tuples["t"].Tuple.EID)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if matches != 1 {
		t.Errorf("matches=%d want 1 (stats %+v)", matches, st)
	}
}

func TestExecutorThreeVariableProbeJoin(t *testing.T) {
	schema := must.Schema("R",
		data.Attribute{Name: "k", Type: data.TString},
		data.Attribute{Name: "v", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	for i := 0; i < 30; i++ {
		key := "k" + string(rune('a'+i%3))
		rel.Insert("e", data.S(key), data.S("v"+string(rune('a'+i%5))))
	}
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	// Three variables chained by equality: the second and third bind via
	// probe joins on the hash index rather than full scans.
	r := must.Rule("R(a) ^ R(b) ^ R(c) ^ a.k = b.k ^ b.k = c.k -> a.v = c.v", db)
	e := New(env)
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// Reference count: per key group of 10, ordered triples of distinct
	// tuples = 10*9*8 = 720; three groups = 2160.
	if st.Valuations != 2160 {
		t.Errorf("valuations=%d want 2160", st.Valuations)
	}
	// Probe joins must beat the naive 30*29*28 ≈ 24k enumeration budget.
	if st.Enumerated > 10000 {
		t.Errorf("probe join missing: enumerated %d", st.Enumerated)
	}
}

func TestSortTuplesByTID(t *testing.T) {
	schema := must.Schema("R", data.Attribute{Name: "a", Type: data.TString})
	rel := data.NewRelation(schema)
	a := rel.Insert("x", data.S("1"))
	b := rel.Insert("y", data.S("2"))
	c := rel.Insert("z", data.S("3"))
	ts := []*data.Tuple{c, a, b}
	SortTuplesByTID(ts)
	if ts[0] != a || ts[1] != b || ts[2] != c {
		t.Error("sort order wrong")
	}
}

func TestExecutorCrossRelationBlocking(t *testing.T) {
	left := data.NewRelation(must.Schema("L", data.Attribute{Name: "name", Type: data.TString}))
	right := data.NewRelation(must.Schema("R", data.Attribute{Name: "title", Type: data.TString}))
	for i := 0; i < 20; i++ {
		s := []string{"zebra telescope deluxe", "quantum harvest engine", "maple syrup dispenser", "arctic penguin statue"}[i%4]
		left.Insert("l", data.S(s))
		right.Insert("r", data.S(s+" item"))
	}
	db := data.NewDatabase()
	db.Add(left)
	db.Add(right)
	env := predicate.NewEnv(db)
	env.Models.Register(ml.NewSimilarityMatcher("M_ER", 0.8))
	r := must.Rule("L(t) ^ R(s) ^ M_ER(t[name], s[title]) -> t.eid = s.eid", db)
	e := New(env)
	blocked, err := e.Run(r, Options{UseBlocking: true}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	naive, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if blocked.MLCalls >= naive.MLCalls {
		t.Errorf("cross-relation blocking must cut ML calls: %d vs %d", blocked.MLCalls, naive.MLCalls)
	}
	if blocked.Valuations < naive.Valuations*9/10 {
		t.Errorf("blocking lost matches: %d vs %d", blocked.Valuations, naive.Valuations)
	}
}
