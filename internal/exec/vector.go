package exec

// Vectorized evaluation over the interned columns: constant/null
// predicates run as batch kernels producing selection bitmaps (or, when
// every filter maps to a posting list, as sorted-set intersections), and
// id-compare equijoins enumerate from the posting lists instead of
// building per-unit hash indexes. Both paths preserve the deterministic
// merge invariant exactly: selections materialize survivors in ascending
// partition-position order (the scalar loop's order), and the posting
// join emits pairs t-major with s ascending by position — bit-identical
// to hashJoinInterned. Tuples the kernels cannot decide (TIDs unseen by
// a column, view-sensitive shadowed tuples) fall back to the scalar
// per-tuple semantics via keepFasts, never silently dropped.

import (
	mathbits "math/bits"
	"sort"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// vecMinTuples gates the vectorized paths by input size: below it the
// per-call setup (TID extraction, bitmap clears) costs more than the
// scalar loop saves. A variable so equivalence tests can force both
// paths over small fixtures.
var vecMinTuples = 128

// heavyPostingLen is the posting-list length above which the posting
// join memoises its partition intersection: dense buckets are probed by
// many t-tuples, so the O(|posting| ∩ |partition|) work is paid once.
const heavyPostingLen = 64

// idFilter is one interned single-variable filter: an id compare over
// the dense column. Shared by the scalar candidates loop and the
// vectorized kernels so both paths apply one definition.
type idFilter struct {
	p       *predicate.Predicate
	col     *crystal.Column
	cid     crystal.ValueID // interned constant (KConst)
	hasCID  bool
	nullID  crystal.ValueID
	hasNull bool
	viewed  bool // reads through ValueOf: shadowed tuples fall back
}

// keepFasts applies the interned filters to one tuple exactly as the
// scalar candidates loop always has — including the per-tuple Eval
// fallback for TIDs the column has not seen and for view-sensitive
// shadowed tuples. The vectorized paths call it for exactly the
// positions their kernels cannot decide.
func (e *Executor) keepFasts(a ree.Atom, t *data.Tuple, fasts []idFilter,
	shadow map[int]bool, h *predicate.Valuation) (bool, error) {
	for fi := range fasts {
		f := &fasts[fi]
		id, okID := f.col.IDAt(t.TID)
		if !okID || (f.viewed && shadow != nil && shadow[t.TID]) {
			h.Bind(a.Var, a.Rel, t)
			ok, err := f.p.Eval(e.env, h)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			continue
		}
		isNull := f.hasNull && id == f.nullID
		keep := true
		switch {
		case f.p.Kind == predicate.KNull:
			keep = isNull
		case f.p.Kind == predicate.KNotNull:
			keep = !isNull
		case f.p.Op == predicate.Eq:
			keep = !isNull && f.hasCID && id == f.cid
		default: // Neq: non-null and different id
			keep = !isNull && !(f.hasCID && id == f.cid)
		}
		if !keep {
			return false, nil
		}
	}
	return true, nil
}

// evalSlows runs the non-interned single-variable predicates on one
// tuple.
func (e *Executor) evalSlows(a ree.Atom, t *data.Tuple, slows []*predicate.Predicate,
	h *predicate.Valuation) (bool, error) {
	for _, p := range slows {
		h.Bind(a.Var, a.Rel, t)
		ok, err := p.Eval(e.env, h)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// candidatesVec is the batch form of the candidates filter loop. It
// picks one of two kernels:
//
//   - posting path: every filter is an equality (= constant, or null
//     check) over a Complete column, so the survivors are exactly the
//     intersection of the filters' posting lists with the partition's
//     TID array — no per-tuple work at all;
//   - bitmap path: gather each column's id vector over the partition
//     and compose SelectEq/SelectNe word-at-a-time kernels.
//
// handled=false means the partition is not TID-ascending (pooled,
// re-sorted, or filtered by a caller) and the scalar loop must run.
func (e *Executor) candidatesVec(a ree.Atom, rel *data.Relation, base []*data.Tuple,
	fasts []idFilter, slows []*predicate.Predicate, shadow map[int]bool) (out []*data.Tuple, handled bool, err error) {
	tids, pooledTids := e.tidsOf(base)
	if tids == nil {
		return nil, false, nil
	}
	if pooledTids {
		defer putIntBuf(tids)
	}
	n := len(base)
	h := predicate.NewValuation()

	viewed := false
	postingOK := true
	for i := range fasts {
		f := &fasts[i]
		if f.viewed {
			viewed = true
		}
		if !f.col.Complete(rel) {
			// An incomplete column cannot drive posting selection: tuples it
			// has never seen would be silently dropped.
			postingOK = false
		}
		if f.p.Kind == predicate.KNotNull || (f.p.Kind == predicate.KConst && f.p.Op != predicate.Eq) {
			postingOK = false
		}
	}

	// Shadowed positions re-evaluate per tuple — but only view-sensitive
	// filters care (null checks read raw data even for shadowed tuples).
	var shadowPos []int32
	var shadowBuf []int32
	if viewed && shadow != nil {
		shadowBuf = crystal.IntersectPositions(getPosBuf(), e.shadowSortedOf(a.Rel), tids)
		shadowPos = shadowBuf
	}
	defer func() {
		if shadowBuf != nil {
			putPosBuf(shadowBuf)
		}
	}()

	if postingOK {
		out, err = e.postingSelect(a, base, tids, fasts, slows, shadowPos, shadow, h)
		if err != nil {
			return nil, true, err
		}
		e.reg.Inc("exec.vec.posting_selects")
		e.reg.Add("exec.vec.select_input", uint64(n))
		e.reg.Add("exec.vec.select_kept", uint64(len(out)))
		return out, true, nil
	}

	words := crystal.BitmapWords(n)
	bits := getWordBuf(words)
	idbuf := getIDBuf(n)
	fb := getPosBuf()
	free := func() {
		putWordBuf(bits)
		putIDBuf(idbuf)
		putPosBuf(fb)
	}
	crystal.BitmapSetAll(bits, n)
	for fi := range fasts {
		f := &fasts[fi]
		vec := f.col.IDVec()
		for k, tid := range tids {
			if tid < len(vec) {
				idbuf[k] = vec[tid]
			} else {
				idbuf[k] = crystal.NoValue
			}
		}
		if !f.col.Complete(rel) {
			// Unseen TIDs take the scalar Eval fallback below, whatever the
			// kernels decided for their bit.
			for k := range idbuf {
				if idbuf[k] == crystal.NoValue {
					fb = append(fb, int32(k))
				}
			}
		}
		switch {
		case f.p.Kind == predicate.KNull:
			// nullID is NoValue when the column has no null entry, so this
			// clears every seen position — exactly the scalar outcome.
			crystal.SelectEq(bits, idbuf, f.nullID)
		case f.p.Kind == predicate.KNotNull:
			crystal.SelectNe(bits, idbuf, f.nullID)
		case f.p.Op == predicate.Eq:
			if f.hasCID && !(f.hasNull && f.cid == f.nullID) {
				crystal.SelectEq(bits, idbuf, f.cid)
			} else {
				crystal.BitmapClearAll(bits)
			}
		default: // Neq: non-null and different id
			if f.hasNull {
				crystal.SelectNe(bits, idbuf, f.nullID)
			}
			if f.hasCID {
				crystal.SelectNe(bits, idbuf, f.cid)
			}
		}
	}
	if len(shadowPos) > 0 {
		fb = append(fb, shadowPos...)
	}
	if len(fb) > 0 {
		sort.Slice(fb, func(i, j int) bool { return fb[i] < fb[j] })
		w := 0
		for r := range fb {
			if r > 0 && fb[r] == fb[r-1] {
				continue
			}
			fb[w] = fb[r]
			w++
		}
		fb = fb[:w]
		for _, pos := range fb {
			keep, kerr := e.keepFasts(a, base[pos], fasts, shadow, h)
			if kerr != nil {
				free()
				return nil, true, kerr
			}
			wi, off := int(pos)/64, uint(pos)%64
			if keep {
				bits[wi] |= 1 << off
			} else {
				bits[wi] &^= 1 << off
			}
		}
	}
	out = getTupleBuf()
	for w := 0; w < words; w++ {
		word := bits[w]
		for word != 0 {
			pos := w*64 + mathbits.TrailingZeros64(word)
			word &= word - 1
			t := base[pos]
			keep := true
			if len(slows) > 0 {
				keep, err = e.evalSlows(a, t, slows, h)
				if err != nil {
					free()
					putTupleBuf(out)
					return nil, true, err
				}
			}
			if keep {
				out = append(out, t)
			}
		}
	}
	free()
	e.reg.Inc("exec.vec.select_batches")
	e.reg.Add("exec.vec.select_input", uint64(n))
	e.reg.Add("exec.vec.select_kept", uint64(len(out)))
	e.reg.Add("exec.vec.select_fallbacks", uint64(len(fb)))
	return out, true, nil
}

// postingSelect intersects the filters' posting lists with the
// partition TID array and merges shadowed positions back in ascending
// position order. Preconditions (checked by candidatesVec): every
// filter is KNull or KConst-Eq over a Complete column.
func (e *Executor) postingSelect(a ree.Atom, base []*data.Tuple, tids []int,
	fasts []idFilter, slows []*predicate.Predicate, shadowPos []int32,
	shadow map[int]bool, h *predicate.Valuation) ([]*data.Tuple, error) {
	lists := make([][]int, 0, len(fasts))
	empty := false
	for i := range fasts {
		f := &fasts[i]
		var p []int
		if f.p.Kind == predicate.KNull {
			if f.hasNull {
				p = f.col.PostingList(f.nullID)
			}
		} else if f.hasCID && !(f.hasNull && f.cid == f.nullID) {
			p = f.col.PostingList(f.cid)
		}
		if len(p) == 0 {
			empty = true
			break
		}
		lists = append(lists, p)
	}
	matchPos := getPosBuf()
	free := func() { putPosBuf(matchPos) }
	if !empty {
		// Smallest list first: every later intersection is bounded by it.
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		if len(lists) == 1 {
			matchPos = crystal.IntersectPositions(matchPos, lists[0], tids)
		} else {
			acc := crystal.IntersectSorted(getIntBuf(), lists[0], lists[1])
			for k := 2; k < len(lists) && len(acc) > 0; k++ {
				next := crystal.IntersectSorted(getIntBuf(), acc, lists[k])
				putIntBuf(acc)
				acc = next
			}
			matchPos = crystal.IntersectPositions(matchPos, acc, tids)
			putIntBuf(acc)
		}
	}
	out := getTupleBuf()
	i, j := 0, 0
	for i < len(matchPos) || j < len(shadowPos) {
		var pos int32
		fromShadow := false
		switch {
		case j >= len(shadowPos):
			pos = matchPos[i]
			i++
		case i >= len(matchPos):
			pos = shadowPos[j]
			j++
			fromShadow = true
		case matchPos[i] < shadowPos[j]:
			pos = matchPos[i]
			i++
		default:
			pos = shadowPos[j]
			j++
			fromShadow = true
			if i < len(matchPos) && matchPos[i] == pos {
				i++ // shadowed position: the scalar semantics decide, not the posting
			}
		}
		t := base[pos]
		keep := true
		var err error
		if fromShadow {
			keep, err = e.keepFasts(a, t, fasts, shadow, h)
		}
		if err == nil && keep && len(slows) > 0 {
			keep, err = e.evalSlows(a, t, slows, h)
		}
		if err != nil {
			free()
			putTupleBuf(out)
			return nil, err
		}
		if keep {
			out = append(out, t)
		}
	}
	free()
	return out, nil
}

// postingJoin enumerates the id-compare equijoin t.A = s.B from colB's
// posting lists: for each probing t-id, the matching s-tuples are the
// bucket's posting list intersected (galloping) with the s-candidates'
// TID array — no per-unit hash index is ever built, and the partition
// intersection of dense buckets is memoised across probes. Shadowed
// tuples on either side keep the hashJoinInterned fallback semantics
// (valueThrough, dictionary probe, string-keyed overflow). ok=false
// when a precondition fails — colB incomplete, inputs too small or not
// TID-ascending — and the caller falls back to hashJoinInterned.
func (e *Executor) postingJoin(r *ree.Rule, p *predicate.Predicate, opts Options,
	tuplesT, tuplesS []*data.Tuple, colA, colB *crystal.Column, ai, bi int,
	relS *data.Relation) ([][2]*data.Tuple, bool) {
	if len(tuplesT)+len(tuplesS) < vecMinTuples || !colB.Complete(relS) {
		return nil, false
	}
	tTIDs, tPooled := e.tidsOf(tuplesT)
	if tTIDs == nil {
		return nil, false
	}
	sTIDs, sPooled := e.tidsOf(tuplesS)
	if sTIDs == nil {
		if tPooled {
			putIntBuf(tTIDs)
		}
		return nil, false
	}
	defer func() {
		if tPooled {
			putIntBuf(tTIDs)
		}
		if sPooled {
			putIntBuf(sTIDs)
		}
	}()

	relTName, relSName := r.RelOf(p.T), r.RelOf(p.S)
	shadowT := e.shadowOf(relTName)
	shadowS := e.shadowOf(relSName)

	// s-side: compact shadowed tuples out of the probe targets (posting
	// lists index raw values only) and classify their view values by
	// dictionary id, with a string-keyed overflow for values colB never
	// interned. cleanPos maps compacted index → original position so
	// emission can restore the legacy interleaved bucket order.
	cleanTIDs := sTIDs
	var cleanPos []int32
	var shadowByID map[crystal.ValueID][]int32
	var slow map[string][]*data.Tuple
	var sShadowBuf, cleanPosBuf []int32
	var cleanTIDBuf []int
	if shadowS != nil {
		sShadowBuf = crystal.IntersectPositions(getPosBuf(), e.shadowSortedOf(relSName), sTIDs)
		if len(sShadowBuf) > 0 {
			cleanTIDBuf = getIntBuf()
			cleanPosBuf = getPosBuf()
			k := 0
			for i, tid := range sTIDs {
				if k < len(sShadowBuf) && int(sShadowBuf[k]) == i {
					k++
					s := tuplesS[i]
					v := valueThrough(e.env, relSName, s, p.B, bi)
					if v.IsNull() {
						continue
					}
					if id, ok := colB.Dict.ID(v); ok {
						if shadowByID == nil {
							shadowByID = make(map[crystal.ValueID][]int32)
						}
						shadowByID[id] = append(shadowByID[id], int32(i))
					} else {
						if slow == nil {
							slow = make(map[string][]*data.Tuple)
						}
						slow[v.Key()] = append(slow[v.Key()], s)
					}
					continue
				}
				cleanTIDBuf = append(cleanTIDBuf, tid)
				cleanPosBuf = append(cleanPosBuf, int32(i))
			}
			cleanTIDs, cleanPos = cleanTIDBuf, cleanPosBuf
		}
	}
	var tShadowPos, tShadowBuf []int32
	if shadowT != nil {
		tShadowBuf = crystal.IntersectPositions(getPosBuf(), e.shadowSortedOf(relTName), tTIDs)
		tShadowPos = tShadowBuf
	}
	matchBuf := getPosBuf()
	defer func() {
		if sShadowBuf != nil {
			putPosBuf(sShadowBuf)
		}
		if cleanTIDBuf != nil {
			putIntBuf(cleanTIDBuf)
		}
		if cleanPosBuf != nil {
			putPosBuf(cleanPosBuf)
		}
		if tShadowBuf != nil {
			putPosBuf(tShadowBuf)
		}
		putPosBuf(matchBuf)
	}()

	sameCol := relTName == relSName && p.A == p.B
	var trans []crystal.ValueID
	if !sameCol {
		trans = e.translation(relTName, p.A, colA, relSName, p.B, colB)
	}
	nullA, hasNullA := colA.Dict.NullID()

	// Dense identity: when tuplesS is the whole relation in TID order with
	// no shadow compaction and no deletions (ascending distinct TIDs from
	// 0 to n-1 covering NextTID), every posting TID is live and equals its
	// own position — the per-probe posting ∩ partition intersection is the
	// identity and the galloping kernel can be skipped entirely.
	denseS := cleanPos == nil && len(cleanTIDs) == relS.NextTID() &&
		len(cleanTIDs) > 0 && cleanTIDs[0] == 0 && cleanTIDs[len(cleanTIDs)-1] == len(cleanTIDs)-1

	// Dirty-filter hoist: the relations are fixed for the whole join, so
	// resolve the two dirty sets once and test pairs with at most two
	// int-keyed probes (none at all in a full, non-incremental run)
	// instead of per-pair rule/relation string lookups.
	var dirtyT, dirtyS map[int]bool
	filtered := opts.Dirty != nil
	if filtered {
		dirtyT, dirtyS = opts.Dirty[relTName], opts.Dirty[relSName]
	}
	curTDirty := false // dirtyT[t.TID] for the t currently enumerating
	pairOK := func(s *data.Tuple) bool {
		return !filtered || curTDirty || (dirtyS != nil && dirtyS[s.TID])
	}

	out := getPairBuf()
	var memo map[crystal.ValueID][]int32
	probes := 0
	origPos := func(m int32) int32 {
		if cleanPos == nil {
			return m
		}
		return cleanPos[m]
	}
	emitOverflow := func(t *data.Tuple, overflow []*data.Tuple) {
		for _, s := range overflow {
			if pairOK(s) {
				out = append(out, [2]*data.Tuple{t, s})
			}
		}
	}
	emitID := func(t *data.Tuple, idB crystal.ValueID, overflow []*data.Tuple) {
		probes++
		if denseS {
			// cleanPos == nil implies no shadowed s tuples were compacted,
			// so shadowByID and slow are empty: the posting list alone is
			// the match set, already in emission (position) order.
			if !filtered || curTDirty {
				for _, tid := range colB.PostingList(idB) {
					out = append(out, [2]*data.Tuple{t, tuplesS[tid]})
				}
			} else {
				for _, tid := range colB.PostingList(idB) {
					s := tuplesS[tid]
					if dirtyS != nil && dirtyS[s.TID] {
						out = append(out, [2]*data.Tuple{t, s})
					}
				}
			}
			emitOverflow(t, overflow)
			return
		}
		var matched []int32
		if posting := colB.PostingList(idB); len(posting) > 0 {
			if len(posting) > heavyPostingLen {
				m, ok := memo[idB]
				if !ok {
					m = crystal.IntersectPositions(nil, posting, cleanTIDs)
					if memo == nil {
						memo = make(map[crystal.ValueID][]int32)
					}
					memo[idB] = m
				}
				matched = m
			} else {
				matchBuf = crystal.IntersectPositions(matchBuf[:0], posting, cleanTIDs)
				matched = matchBuf
			}
		}
		// Merge clean matches with shadowed bucket members ascending by
		// original position: hashJoinInterned builds its bucket in one
		// pass over tuplesS, so this is exactly its emission order.
		shadowList := shadowByID[idB]
		i, j := 0, 0
		for i < len(matched) || j < len(shadowList) {
			var pos int32
			switch {
			case j >= len(shadowList):
				pos = origPos(matched[i])
				i++
			case i >= len(matched):
				pos = shadowList[j]
				j++
			default:
				if pi := origPos(matched[i]); pi < shadowList[j] {
					pos = pi
					i++
				} else {
					pos = shadowList[j]
					j++
				}
			}
			s := tuplesS[pos]
			if pairOK(s) {
				out = append(out, [2]*data.Tuple{t, s})
			}
		}
		emitOverflow(t, overflow)
	}

	vecA := colA.IDVec()
	next := 0
	for i, t := range tuplesT {
		curTDirty = filtered && dirtyT != nil && dirtyT[t.TID]
		if next < len(tShadowPos) && int(tShadowPos[next]) == i {
			next++
			v := valueThrough(e.env, relTName, t, p.A, ai)
			if v.IsNull() {
				continue
			}
			var overflow []*data.Tuple
			if slow != nil {
				overflow = slow[v.Key()]
			}
			if id, ok := colB.Dict.ID(v); ok {
				emitID(t, id, overflow)
			} else {
				emitOverflow(t, overflow)
			}
			continue
		}
		var idA = crystal.NoValue
		if t.TID < len(vecA) {
			idA = vecA[t.TID]
		}
		if idA == crystal.NoValue {
			// TID unseen by colA (insert since last refresh): the raw value
			// is still authoritative for a non-shadowed tuple.
			v := t.Values[ai]
			if v.IsNull() {
				continue
			}
			var overflow []*data.Tuple
			if slow != nil {
				overflow = slow[v.Key()]
			}
			if id, ok := colB.Dict.ID(v); ok {
				emitID(t, id, overflow)
			} else {
				emitOverflow(t, overflow)
			}
			continue
		}
		if hasNullA && idA == nullA {
			continue
		}
		idB := idA
		if !sameCol {
			idB = trans[idA]
		}
		var overflow []*data.Tuple
		if slow != nil {
			if v, ok := colA.Dict.Value(idA); ok {
				overflow = slow[v.Key()]
			}
		}
		if idB != crystal.NoValue {
			emitID(t, idB, overflow)
		} else {
			emitOverflow(t, overflow)
		}
	}
	e.reg.Inc("exec.vec.joins")
	e.reg.Add("exec.vec.join_probes", uint64(probes))
	e.reg.Add("exec.vec.join_pairs", uint64(len(out)))
	return out, true
}

// probeJoinVec filters base (the free variable's candidate list) to the
// tuples whose freeAttr equals v via one posting-list intersection
// instead of a per-tuple id scan. ok=false: caller runs the scalar scan.
func (e *Executor) probeJoinVec(aRel string, rel *data.Relation, base []*data.Tuple,
	col *crystal.Column, v data.Value, freeAttr string, fi int,
	shadow map[int]bool) ([]*data.Tuple, bool) {
	if len(base) < vecMinTuples || !col.Complete(rel) {
		return nil, false
	}
	tids, pooled := e.tidsOf(base)
	if tids == nil {
		return nil, false
	}
	if pooled {
		defer putIntBuf(tids)
	}
	matchBuf := getPosBuf()
	var shBuf []int32
	defer func() {
		putPosBuf(matchBuf)
		if shBuf != nil {
			putPosBuf(shBuf)
		}
	}()
	var matched []int32
	if target, ok := col.Dict.ID(v); ok {
		matchBuf = crystal.IntersectPositions(matchBuf, col.PostingList(target), tids)
		matched = matchBuf
	}
	var shPos []int32
	if shadow != nil {
		shBuf = crystal.IntersectPositions(getPosBuf(), e.shadowSortedOf(aRel), tids)
		shPos = shBuf
	}
	out := getTupleBuf()
	i, j := 0, 0
	for i < len(matched) || j < len(shPos) {
		var pos int32
		fromShadow := false
		switch {
		case j >= len(shPos):
			pos = matched[i]
			i++
		case i >= len(matched):
			pos = shPos[j]
			j++
			fromShadow = true
		case matched[i] < shPos[j]:
			pos = matched[i]
			i++
		default:
			pos = shPos[j]
			j++
			fromShadow = true
			if i < len(matched) && matched[i] == pos {
				i++ // shadowed: the view value decides, not the raw posting
			}
		}
		t := base[pos]
		if fromShadow && !valueThrough(e.env, aRel, t, freeAttr, fi).Equal(v) {
			continue
		}
		out = append(out, t)
	}
	e.reg.Inc("exec.vec.probe_selects")
	return out, true
}
