package exec

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
)

// mixedNumericEnv builds A(x int) and B(y float) whose values overlap
// numerically: A carries integers 0..mod-1, B carries the same magnitudes
// as floats (except every third tuple, shifted by 0.5 so it never matches
// an integer). Cross-type equality (I(5) = F(5)) is true under
// Value.Equal, so every index — hash join, probe join, dictionary — must
// treat them as one value.
func mixedNumericEnv(t *testing.T, nA, nB, mod int) *predicate.Env {
	t.Helper()
	a := data.NewRelation(must.Schema("A", data.Attribute{Name: "x", Type: data.TInt}))
	b := data.NewRelation(must.Schema("B", data.Attribute{Name: "y", Type: data.TFloat}))
	for i := 0; i < nA; i++ {
		a.Insert(fmt.Sprintf("a%d", i), data.I(int64(i%mod)))
	}
	for i := 0; i < nB; i++ {
		v := float64(i % mod)
		if i%3 == 0 {
			v += 0.5
		}
		b.Insert(fmt.Sprintf("b%d", i), data.F(v))
	}
	db := data.NewDatabase()
	db.Add(a)
	db.Add(b)
	return predicate.NewEnv(db)
}

// TestPlanEquivalenceMixedNumeric is the regression for the Key/Equal
// split: the same equality shape t.x = ?.y drives variable s through the
// hash join (plan driver) and variable u through the probe join
// (bindRest). Before keys were canonicalised, I(5).Equal(F(5)) held but
// their map keys differed, so the hash-join-driven side silently dropped
// every int↔float match the probe side found. Both sides must now bind
// the same tuple set, and that set must match a brute-force Equal scan.
// (Each A value matches exactly two B tuples here, so the s≠u constraint
// still lets both of them appear on both sides across the enumeration.)
func TestPlanEquivalenceMixedNumeric(t *testing.T) {
	env := mixedNumericEnv(t, 20, 30, 10)
	r := must.Rule("A(t) ^ B(s) ^ B(u) ^ t.x = s.y ^ t.x = u.y -> t.eid = s.eid", env.DB)
	r.ID = "mix"

	sSeen := map[int]map[int]bool{} // t.TID -> set of s TIDs
	uSeen := map[int]map[int]bool{}
	e := New(env)
	_, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool {
		tt := h.Tuples["t"].Tuple.TID
		if sSeen[tt] == nil {
			sSeen[tt], uSeen[tt] = map[int]bool{}, map[int]bool{}
		}
		sSeen[tt][h.Tuples["s"].Tuple.TID] = true
		uSeen[tt][h.Tuples["u"].Tuple.TID] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	// Brute-force oracle: which B tuples equal each A tuple's value?
	want := map[int]map[int]bool{}
	relA, relB := env.DB.Rel("A"), env.DB.Rel("B")
	for _, ta := range relA.Tuples {
		m := map[int]bool{}
		for _, tb := range relB.Tuples {
			if ta.Values[0].Equal(tb.Values[0]) {
				m[tb.TID] = true
			}
		}
		if len(m) > 0 {
			want[ta.TID] = m
		}
	}
	if len(want) == 0 {
		t.Fatal("test data should produce cross-type matches")
	}
	if len(sSeen) != len(want) {
		t.Fatalf("hash-join side bound %d driver tuples, oracle says %d", len(sSeen), len(want))
	}
	for tt, m := range want {
		if !sameTIDSet(sSeen[tt], m) {
			t.Errorf("t=%d: hash-join-driven bindings %v != oracle %v", tt, keysOf(sSeen[tt]), keysOf(m))
		}
		if !sameTIDSet(uSeen[tt], m) {
			t.Errorf("t=%d: probe-driven bindings %v != oracle %v", tt, keysOf(uSeen[tt]), keysOf(m))
		}
	}
}

func sameTIDSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keysOf(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TestInternedHashJoinMatchesOracle exercises the dictionary-encoded join
// above the interning cardinality gate: two 5000-tuple relations of
// different numeric types joined on equality. The interned index (colB
// dictionary ids plus the A→B translation array) must produce exactly the
// pairs a canonical-key grouping oracle predicts.
func TestInternedHashJoinMatchesOracle(t *testing.T) {
	const n = 5000
	env := mixedNumericEnv(t, n, n, 1000)
	r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
	r.ID = "big"

	e := New(env)
	if col := e.internedCol("A", "x"); col == nil {
		t.Fatal("expected relation A to be interned above the cardinality gate")
	}
	got := map[[2]int]bool{}
	st, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool {
		got[[2]int{h.Tuples["t"].Tuple.TID, h.Tuples["s"].Tuple.TID}] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle by canonical-key grouping (one pass per relation).
	byKey := map[string][]int{}
	for _, tb := range env.DB.Rel("B").Tuples {
		byKey[tb.Values[0].Key()] = append(byKey[tb.Values[0].Key()], tb.TID)
	}
	want := 0
	for _, ta := range env.DB.Rel("A").Tuples {
		for _, sb := range byKey[ta.Values[0].Key()] {
			want++
			if !got[[2]int{ta.TID, sb}] {
				t.Fatalf("missing interned join pair (%d, %d)", ta.TID, sb)
			}
		}
	}
	if want == 0 {
		t.Fatal("test data should produce matches")
	}
	if st.Valuations != want || len(got) != want {
		t.Fatalf("interned join emitted %d valuations (%d distinct), oracle %d", st.Valuations, len(got), want)
	}
}

// TestInternedConstantPushdown exercises the id-compare constant filters
// (equality, inequality, null and not-null guards) above the gate and
// checks each against a brute-force scan.
func TestInternedConstantPushdown(t *testing.T) {
	const n = 5000
	rel := data.NewRelation(must.Schema("Ev",
		data.Attribute{Name: "region", Type: data.TString},
		data.Attribute{Name: "code", Type: data.TString},
	))
	for i := 0; i < n; i++ {
		code := data.S(fmt.Sprintf("C%d", i%10))
		if i%31 == 0 {
			code = data.Null(data.TString)
		}
		rel.Insert(fmt.Sprintf("e%d", i), data.S(fmt.Sprintf("R%d", i%10)), code)
	}
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)

	cases := []struct {
		name, src string
		want      func(region, code data.Value) bool
	}{
		{"eq+null", "Ev(t) ^ t.region = 'R7' ^ null(t.code) -> t.code = 'C7'",
			func(region, code data.Value) bool { return region.Equal(data.S("R7")) && code.IsNull() }},
		{"neq+notnull", "Ev(t) ^ t.region != 'R0' ^ !null(t.code) -> t.code = 'C9'",
			func(region, code data.Value) bool { return !region.Equal(data.S("R0")) && !code.IsNull() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := must.Rule(tc.src, env.DB)
			r.ID = tc.name
			e := New(env)
			if col := e.internedCol("Ev", "region"); col == nil {
				t.Fatal("expected relation Ev to be interned above the cardinality gate")
			}
			got := map[int]bool{}
			_, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool {
				got[h.Tuples["t"].Tuple.TID] = true
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]bool{}
			for _, tp := range rel.Tuples {
				if tc.want(tp.Values[0], tp.Values[1]) {
					want[tp.TID] = true
				}
			}
			if len(want) == 0 {
				t.Fatal("test data should produce matches")
			}
			if !sameTIDSet(got, want) {
				t.Fatalf("pushdown bound %d tuples, oracle %d", len(got), len(want))
			}
		})
	}
}

// countdownCtx reports the context cancelled after its Err method has
// been consulted a fixed number of times — it verifies cancellation is
// actually polled during enumeration, not just checked once up front.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestInternCancellationAllCleanDirtySet is the regression for the
// emit-counter bug: cancellation used to be polled on the valuation
// count, but the incremental dirty filter returns before that count
// increments — an enumeration whose valuations are all clean (dirty set
// present but empty) never advanced the counter and so never observed
// cancellation. Polling on emit calls makes the countdown context fire.
// The rule is ML-only (no equality predicate, blocking off), so no pair
// driver pre-filters by dirtiness: the generic nested-loop path runs and
// every valuation reaches emit, where the dirty filter rejects it.
func TestInternCancellationAllCleanDirtySet(t *testing.T) {
	env, _ := transEnv(t, 60)
	r := must.Rule("Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) -> t.mfg = s.mfg", env.DB)
	r.ID = "ml-only"
	ctx := &countdownCtx{Context: context.Background()}
	ctx.remaining.Store(3) // allow three polls, then cancel on the fourth
	e := New(env)
	st, err := e.Run(r, Options{
		Ctx:   ctx,
		Dirty: map[string]map[int]bool{"Trans": {}},
	}, func(h *predicate.Valuation) bool { return true })
	if err != context.Canceled {
		t.Fatalf("all-clean enumeration never observed cancellation: err=%v (valuations=%d, enumerated=%d)",
			err, st.Valuations, st.Enumerated)
	}
	if st.Valuations != 0 {
		t.Fatalf("dirty filter should have rejected every valuation, got %d", st.Valuations)
	}
}

// TestInternPoolsReusableAcrossRuns guards the scratch pools: an early
// MaxResults exit followed by two full runs must not corrupt each other's
// candidate or pair buffers.
func TestInternPoolsReusableAcrossRuns(t *testing.T) {
	env := mixedNumericEnv(t, 5000, 5000, 1000)
	r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
	r.ID = "reuse"
	e := New(env)
	first, err := e.Run(r, Options{MaxResults: 7}, func(h *predicate.Valuation) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if first.Valuations != 7 {
		t.Fatalf("MaxResults run emitted %d valuations, want 7", first.Valuations)
	}
	var a, b Stats
	if a, err = e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if b, err = e.Run(r, Options{}, func(h *predicate.Valuation) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if a.Valuations == 0 || a.Valuations != b.Valuations {
		t.Fatalf("repeated runs disagree: %d vs %d valuations", a.Valuations, b.Valuations)
	}
}

// TestInternShadowedTuplesReadThroughView pins the fast-path soundness
// contract: with a ValueOf hook and shadow tracking registered, a
// shadowed tuple joins on its view value, not its stale raw value — and
// view values absent from the build-time dictionary still match through
// the string-keyed overflow index.
func TestInternShadowedTuplesReadThroughView(t *testing.T) {
	const n = 5000
	env := mixedNumericEnv(t, n, n, 1000)
	rawValue := func(rel string, tp *data.Tuple, attr string) (data.Value, bool) {
		return tp.Values[env.DB.Rel(rel).Schema.Index(attr)], true
	}
	// The hook overrides one A tuple: its view becomes a value no B tuple
	// carries and B's dictionary never interned.
	shadowA := env.DB.Rel("A").Tuples[0].TID
	env.ValueOf = func(rel string, tp *data.Tuple, attr string) (data.Value, bool) {
		if rel == "A" && tp.TID == shadowA {
			return data.I(1234567), true
		}
		return rawValue(rel, tp, attr)
	}
	r := must.Rule("A(t) ^ B(s) ^ t.x = s.y -> t.eid = s.eid", env.DB)
	r.ID = "shadow"

	e := New(env)
	e.SetShadowTracking(map[string]map[int]bool{"A": {shadowA: true}})
	matchedShadow, others := 0, 0
	_, err := e.Run(r, Options{}, func(h *predicate.Valuation) bool {
		if h.Tuples["t"].Tuple.TID == shadowA {
			matchedShadow++
		} else {
			others++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if matchedShadow != 0 {
		t.Fatalf("shadowed tuple %d joined %d times via its stale raw value", shadowA, matchedShadow)
	}
	if others == 0 {
		t.Fatal("unshadowed tuples should still join on the interned path")
	}

	// Flip the direction: shadow a B tuple onto a brand-new value and a
	// different A tuple onto the same value — the match must survive via
	// the overflow index (the value exists in neither dictionary).
	shadowA2 := env.DB.Rel("A").Tuples[1].TID
	shadowB := env.DB.Rel("B").Tuples[2].TID
	env.ValueOf = func(rel string, tp *data.Tuple, attr string) (data.Value, bool) {
		if rel == "A" && tp.TID == shadowA2 {
			return data.F(777777.25), true
		}
		if rel == "B" && tp.TID == shadowB {
			return data.F(777777.25), true
		}
		return rawValue(rel, tp, attr)
	}
	e2 := New(env)
	e2.SetShadowTracking(map[string]map[int]bool{"A": {shadowA2: true}, "B": {shadowB: true}})
	found := false
	if _, err := e2.Run(r, Options{}, func(h *predicate.Valuation) bool {
		if h.Tuples["t"].Tuple.TID == shadowA2 && h.Tuples["s"].Tuple.TID == shadowB {
			found = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("shadowed view values absent from both dictionaries must still match via the overflow index")
	}
}
