package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/obs"
)

func sumCounts(m map[string]int) int {
	s := 0
	for _, n := range m {
		s += n
	}
	return s
}

func TestPanicIsolationAndRetry(t *testing.T) {
	c := New(4)
	reg := obs.New()
	c.SetObs(reg, "chase")
	var ran int64
	for i := 0; i < 40; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: 1,
			Run: func() { atomic.AddInt64(&ran, 1) }})
	}
	f := NewFaultInjector()
	f.PanicUnit(7, 1)  // first attempt panics, retry succeeds
	f.PanicUnit(23, 2) // two panics, third attempt succeeds
	st := c.DrainWithStats(context.Background(), Options{
		Steal: true, MaxRetries: 2, RetryBackoff: 100 * time.Microsecond, Faults: f,
	})
	if ran != 40 {
		t.Fatalf("ran %d of 40 despite retries", ran)
	}
	if st.Panics != 3 {
		t.Errorf("Panics = %d, want 3", st.Panics)
	}
	if st.Retries != 3 {
		t.Errorf("Retries = %d, want 3", st.Retries)
	}
	if st.Reassigned != 3 {
		t.Errorf("Reassigned = %d, want 3 (multi-node cluster retries elsewhere)", st.Reassigned)
	}
	if len(st.Failed) != 0 {
		t.Errorf("no unit should fail permanently: %v", st.Failed)
	}
	if got := reg.CounterValue("chase.unit_panics"); got != 3 {
		t.Errorf("obs chase.unit_panics = %d, want 3", got)
	}
	if got := reg.CounterValue("chase.retries"); got != 3 {
		t.Errorf("obs chase.retries = %d, want 3", got)
	}
	if got := reg.CounterValue("chase.reassigned"); got != 3 {
		t.Errorf("obs chase.reassigned = %d, want 3", got)
	}
}

func TestRetriesExhaustedYieldTypedUnitError(t *testing.T) {
	c := New(3)
	var ran int64
	for i := 0; i < 10; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, RuleID: fmt.Sprintf("r%d", i), Part: fmt.Sprintf("p%d/b", i),
			EstCost: 1, Run: func() { atomic.AddInt64(&ran, 1) }})
	}
	f := NewFaultInjector()
	f.PanicUnit(4, 100) // panics forever
	st := c.DrainWithStats(context.Background(), Options{Steal: true, MaxRetries: 2, Faults: f})
	if ran != 9 {
		t.Errorf("the 9 healthy units must still run: ran %d", ran)
	}
	if len(st.Failed) != 1 {
		t.Fatalf("want exactly one UnitError, got %v", st.Failed)
	}
	fe := st.Failed[0]
	if fe.UnitID != 4 || fe.RuleID != "r4" || fe.Attempts != 3 {
		t.Errorf("UnitError fields: %+v", fe)
	}
	if fe.Err == nil || fe.Error() == "" {
		t.Error("UnitError must wrap the recovered panic")
	}
	if st.Panics != 3 || st.Retries != 2 {
		t.Errorf("Panics/Retries = %d/%d, want 3/2", st.Panics, st.Retries)
	}
}

func TestSingleNodeRetriesLocally(t *testing.T) {
	// With one worker there is no other node; the retry must fall back
	// to the same node instead of deadlocking.
	c := New(1)
	var ran int64
	c.Submit(&crystal.WorkUnit{ID: 0, Part: "p/b", EstCost: 1,
		Run: func() { atomic.AddInt64(&ran, 1) }})
	f := NewFaultInjector()
	f.PanicUnit(0, 1)
	st := c.DrainWithStats(context.Background(), Options{MaxRetries: 1, Faults: f})
	if ran != 1 {
		t.Fatalf("unit did not run after local retry")
	}
	if st.Reassigned != 0 {
		t.Errorf("single-node retry cannot reassign: %d", st.Reassigned)
	}
}

func TestKillNodeMidDrainReassignsQueue(t *testing.T) {
	c := New(4)
	reg := obs.New()
	c.SetObs(reg, "chase")
	owner := c.Ring.Owner("hot/block")
	var ran int64
	for i := 0; i < 50; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: "hot/block", EstCost: 1,
			Run: func() { atomic.AddInt64(&ran, 1) }})
	}
	f := NewFaultInjector()
	f.KillNode(owner, 3) // owner dies after 3 units; 47 orphans re-homed
	// Steal off: without reassignment the orphans would strand forever.
	st := c.DrainWithStats(context.Background(), Options{Steal: false, MaxRetries: 1, Faults: f})
	if ran != 50 {
		t.Fatalf("ran %d of 50 after node kill", ran)
	}
	if len(st.Killed) != 1 || st.Killed[0] != owner {
		t.Errorf("Killed = %v, want [%s]", st.Killed, owner)
	}
	if st.Reassigned != 47 {
		t.Errorf("Reassigned = %d, want 47", st.Reassigned)
	}
	if st.PerNode[owner] != 3 {
		t.Errorf("dead node executed %d units, want 3", st.PerNode[owner])
	}
	if len(st.Failed) != 0 {
		t.Errorf("survivors must absorb the orphans: %v", st.Failed)
	}
	if got := reg.CounterValue("chase.node_killed"); got != 1 {
		t.Errorf("obs chase.node_killed = %d, want 1", got)
	}
}

func TestAllNodesDeadStrandsRemainder(t *testing.T) {
	c := New(1)
	var ran int64
	for i := 0; i < 5; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: 1,
			Run: func() { atomic.AddInt64(&ran, 1) }})
	}
	f := NewFaultInjector()
	f.KillNode("node-0", 2)
	st := c.DrainWithStats(context.Background(), Options{Faults: f})
	if ran != 2 {
		t.Fatalf("ran %d, want 2 before the only node died", ran)
	}
	if len(st.Failed) != 3 {
		t.Fatalf("3 stranded units must surface as UnitErrors: %v", st.Failed)
	}
	if c.Sched.Pending() != 0 {
		t.Error("drain must leave the scheduler empty even after total node loss")
	}
}

func TestStragglerStillCompletes(t *testing.T) {
	c := New(4)
	var ran int64
	for i := 0; i < 20; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: 1,
			Run: func() { atomic.AddInt64(&ran, 1) }})
	}
	f := NewFaultInjector()
	f.SlowUnit(11, 20*time.Millisecond)
	start := time.Now()
	st := c.DrainWithStats(context.Background(), Options{Steal: true, Faults: f})
	if ran != 20 || st.Cancelled {
		t.Fatalf("straggler run: ran=%d cancelled=%v", ran, st.Cancelled)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("straggler delay was not applied")
	}
}

func TestCancelledDrainStopsEarlyAndSkips(t *testing.T) {
	c := New(2)
	reg := obs.New()
	c.SetObs(reg, "chase")
	var ran int64
	for i := 0; i < 400; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: 1,
			Run: func() { atomic.AddInt64(&ran, 1); time.Sleep(300 * time.Microsecond) }})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	st := c.DrainWithStats(ctx, Options{Steal: true})
	if !st.Cancelled {
		t.Fatal("drain must report Cancelled on context timeout")
	}
	if st.Skipped == 0 {
		t.Error("a drain cancelled mid-way must skip units")
	}
	if got := sumCounts(st.PerNode); got+st.Skipped != 400 {
		t.Errorf("executed(%d)+skipped(%d) != 400", got, st.Skipped)
	}
	if int64(sumCounts(st.PerNode)) != ran {
		t.Errorf("PerNode (%d) disagrees with ran (%d)", sumCounts(st.PerNode), ran)
	}
	if c.Sched.Pending() != 0 {
		t.Error("cancelled drain must leave the scheduler empty")
	}
	if reg.CounterValue("chase.cancelled") != 1 {
		t.Errorf("obs chase.cancelled = %d, want 1", reg.CounterValue("chase.cancelled"))
	}
	// The cluster stays usable: a fresh drain with a live context runs
	// newly submitted units only.
	var again int64
	for i := 0; i < 8; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("q%d/b", i), EstCost: 1,
			Run: func() { atomic.AddInt64(&again, 1) }})
	}
	st2 := c.DrainWithStats(context.Background(), Options{Steal: true})
	if again != 8 || st2.Cancelled {
		t.Errorf("post-cancel drain: ran=%d cancelled=%v", again, st2.Cancelled)
	}
}

func TestCancelledDrainsLeakNoGoroutines(t *testing.T) {
	// goleak is not vendored; bound the goroutine count instead. Workers
	// are joined by wg.Wait and the watchdog by watch.Wait, so any leak
	// shows up as monotonic growth across repeated cancelled drains.
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		c := New(4)
		for i := 0; i < 100; i++ {
			c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: 1,
				Run: func() { time.Sleep(200 * time.Microsecond) }})
		}
		ctx, cancel := context.WithTimeout(context.Background(), 1*time.Millisecond)
		c.DrainWithStats(ctx, Options{Steal: true})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after cancelled drains",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVnodeScalingBalancesPlacement is the regression test for the
// hardcoded crystal.NewRing(64): virtual nodes now scale with cluster
// size, keeping consistent-hash key placement balanced as n grows.
func TestVnodeScalingBalancesPlacement(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		c := New(n)
		counts := make(map[string]int, n)
		const keys = 20000
		for i := 0; i < keys; i++ {
			counts[c.Ring.Owner(fmt.Sprintf("part-%d/block-%d", i, i%7))]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys", n, len(counts))
		}
		mean := float64(keys) / float64(n)
		for node, got := range counts {
			if f := float64(got) / mean; f < 0.55 || f > 1.45 {
				t.Errorf("n=%d: node %s owns %d keys (%.2fx mean) — placement imbalanced",
					n, node, got, f)
			}
		}
	}
}

func TestRetryBackoffYieldsToCancellation(t *testing.T) {
	// Regression: the retry backoff used to be an unconditional
	// time.Sleep, so cancelling a drain mid-backoff still waited the
	// whole k*RetryBackoff out. With a seconds-scale backoff the drain
	// must nevertheless return promptly after cancel.
	c := New(2)
	f := NewFaultInjector()
	f.PanicUnit(0, 100) // panics on every attempt, forcing backoffs
	c.Submit(&crystal.WorkUnit{ID: 0, Part: "p/b", EstCost: 1, Run: func() {}})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st := c.DrainWithStats(ctx, Options{
		Steal: true, MaxRetries: 5, RetryBackoff: 30 * time.Second, Faults: f,
	})
	elapsed := time.Since(start)
	if !st.Cancelled {
		t.Errorf("drain not marked cancelled: %+v", st)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled drain took %v; backoff ignored cancellation", elapsed)
	}
}
