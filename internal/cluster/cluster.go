// Package cluster simulates the n-worker compute cluster Rock runs on
// (paper §6 uses 21 Kubernetes nodes): each worker is a goroutine with its
// own work manager that drains the crystal scheduler, stealing from peers
// when idle. The parallel-scalability experiments (Figures 4(h) and 4(l))
// drive this package with varying n.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/obs"
)

// Runner is the drain/submit surface the chase engine schedules on.
// The in-process Cluster implements it with goroutine workers; the
// remote coordinator (internal/cluster/remote) implements it over TCP
// worker processes. Everything the engine needs — placement (Owner),
// submission, the barrier drain, and observability routing — goes
// through this interface so the two are interchangeable.
type Runner interface {
	Size() int
	Nodes() []string
	Owner(part string) string
	Submit(u *crystal.WorkUnit)
	DrainWithStats(ctx context.Context, opts Options) DrainStats
	SetObs(reg *obs.Registry, prefix string)
}

// Cluster is a set of named workers sharing a ring and scheduler.
type Cluster struct {
	Ring  *crystal.Ring
	Sched *crystal.Scheduler
	nodes []string

	// reg/prefix route the cluster's observability into the owning
	// phase's registry ("detect" or "chase"); nil records nothing.
	reg    *obs.Registry
	prefix string

	mu       sync.Mutex
	executed map[string]int // node -> units run in the CURRENT drain
	total    map[string]int // node -> units run since cluster creation
}

// New creates a cluster of n workers named node-0..node-(n-1).
func New(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	// Scale virtual nodes with cluster size: at a fixed replica count the
	// consistent-hash imbalance grows with n (max/mean deviation is roughly
	// sqrt(log n / replicas)), so bigger clusters get more ring positions
	// per node. Capped to bound ring memory and Owner() lookup cost.
	replicas := 64 * n
	if replicas > 1024 {
		replicas = 1024
	}
	ring := crystal.NewRing(replicas)
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%d", i)
		ring.AddNode(nodes[i])
	}
	return &Cluster{
		Ring:     ring,
		Sched:    crystal.NewScheduler(nodes),
		nodes:    nodes,
		executed: make(map[string]int, n),
		total:    make(map[string]int, n),
	}
}

// SetObs routes the cluster's metrics and events into reg under the
// given name prefix (e.g. "chase" yields "chase.steals",
// "chase.node.node-0.units", "chase.queue_depth"). A nil registry (the
// default) records nothing. Steal events are reported as they happen
// via the scheduler's OnSteal hook.
func (c *Cluster) SetObs(reg *obs.Registry, prefix string) {
	c.reg = reg
	c.prefix = prefix
	if reg == nil {
		c.Sched.OnSteal = nil
		return
	}
	steals := reg.Counter(prefix + ".steals")
	c.Sched.OnSteal = func(thief, victim string, u *crystal.WorkUnit) {
		steals.Inc()
		reg.Emit(obs.Event{Kind: "steal", Node: thief, Rule: u.RuleID, Detail: "from " + victim})
	}
}

// Size returns the number of workers.
func (c *Cluster) Size() int { return len(c.nodes) }

// Nodes returns the worker names.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Owner returns the consistent-hash owner of a partition.
func (c *Cluster) Owner(part string) string { return c.Ring.Owner(part) }

// Submit assigns a work unit by partition affinity.
func (c *Cluster) Submit(u *crystal.WorkUnit) { c.Sched.Assign(c.Ring, u) }

// SubmitBalanced assigns a work unit to the least-loaded worker.
func (c *Cluster) SubmitBalanced(u *crystal.WorkUnit) { c.Sched.AssignBalanced(u) }

// Options tunes a drain run.
type Options struct {
	// Steal enables work stealing (on by default in Rock; the ablation
	// benchmark turns it off).
	Steal bool
	// MaxRetries bounds how many times a panicking unit is retried —
	// on a different node when one is alive — before it is given up and
	// reported as a UnitError. 0 means the first panic fails the unit.
	MaxRetries int
	// RetryBackoff is the base backoff before a retry; attempt k sleeps
	// k*RetryBackoff. Zero retries immediately.
	RetryBackoff time.Duration
	// Faults, when non-nil, injects failures (panicking units,
	// stragglers, node kills) into this drain. Production runs leave it
	// nil; tests and the rockbench "faults" experiment set it.
	Faults *FaultInjector
}

// UnitError describes a work unit that could not be completed: it
// panicked on every attempt, or its node died with no survivor to take
// the unit over.
type UnitError struct {
	UnitID   int
	RuleID   string
	Part     string
	Node     string // node of the last attempt
	Attempts int    // total attempts made (0 if never started)
	Err      error
}

func (e *UnitError) Error() string {
	return fmt.Sprintf("unit %d (%s %s) failed on %s after %d attempt(s): %v",
		e.UnitID, e.RuleID, e.Part, e.Node, e.Attempts, e.Err)
}

func (e *UnitError) Unwrap() error { return e.Err }

// errNoSurvivor marks units stranded when every node has been killed.
var errNoSurvivor = errors.New("no surviving node to run unit")

// DrainStats describes one drain: per-node unit counts for THIS drain
// only, the number of steals it performed, the queue depth when it
// started, and the fault-tolerance outcomes.
type DrainStats struct {
	PerNode map[string]int
	Steals  int
	Queued  int

	Panics     int         // recovered unit panics (including retried ones)
	Retries    int         // retry attempts scheduled after a panic
	Reassigned int         // units re-homed to a different node (retries + reclaimed)
	Cancelled  bool        // drain stopped early on context cancellation
	Skipped    int         // units left unexecuted by a cancelled drain
	Killed     []string    // nodes killed by fault injection during this drain
	Failed     []UnitError // units that exhausted retries or lost their node
}

// drainRun is the shared state of one DrainWithStats call. Workers wait
// on cond when their queues are empty but units are still outstanding
// (in flight, in retry backoff, or queued on a peer with stealing off);
// version guards against missed wakeups: it is bumped, with a
// broadcast, on every state change a waiter cares about.
type drainRun struct {
	ctx  context.Context
	mu   sync.Mutex
	cond *sync.Cond

	version     int
	outstanding int // units not yet completed or permanently failed
	cancelled   bool
	dead        map[string]bool
	attempts    map[*crystal.WorkUnit]int // panics per unit so far

	panics     int
	retries    int
	reassigned int
	killed     []string
	failed     []UnitError
}

func (d *drainRun) bumpLocked() {
	d.version++
	d.cond.Broadcast()
}

// Drain runs every queued unit to completion across all workers and
// returns per-node unit counts for this drain. Each worker loops: pop
// (or steal) a unit, run it, repeat until no units remain outstanding,
// the context is cancelled, or the (simulated) node dies.
//
// The counts are per-drain (reset on entry): the chase drains the same
// shared cluster once per round, and utilization stats derived from
// cumulative counts would inflate every round after the first.
// Executed() keeps the cumulative view.
func (c *Cluster) Drain(ctx context.Context, opts Options) map[string]int {
	return c.DrainWithStats(ctx, opts).PerNode
}

// DrainWithStats is Drain returning the full per-drain statistics. A
// panicking unit is recovered, retried with backoff up to
// opts.MaxRetries times (reassigned to a different live node when one
// exists), and surfaced as a UnitError once retries are exhausted —
// other units keep running either way. Cancelling ctx stops the drain
// between units: in-flight units finish, the rest are reclaimed from
// the scheduler and counted in Skipped, and Cancelled is set.
func (c *Cluster) DrainWithStats(ctx context.Context, opts Options) DrainStats {
	if ctx == nil {
		ctx = context.Background()
	}
	st := DrainStats{Queued: c.Sched.Pending()}
	stealsBefore := c.Sched.Steals()
	c.mu.Lock()
	c.executed = make(map[string]int, len(c.nodes))
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.SetGauge(c.prefix+".queue_depth", int64(st.Queued))
	}
	d := &drainRun{
		ctx:         ctx,
		outstanding: st.Queued,
		dead:        make(map[string]bool, len(c.nodes)),
		attempts:    make(map[*crystal.WorkUnit]int),
	}
	d.cond = sync.NewCond(&d.mu)

	// Watchdog: wake every waiting worker when the context is cancelled,
	// so none sleeps on the cond past the deadline.
	stop := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			d.mu.Lock()
			d.cancelled = true
			d.bumpLocked()
			d.mu.Unlock()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for _, node := range c.nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			c.workerLoop(node, d, opts)
		}(node)
	}
	wg.Wait()
	close(stop)
	watch.Wait()

	d.mu.Lock()
	st.Cancelled = d.cancelled
	st.Panics = d.panics
	st.Retries = d.retries
	st.Reassigned = d.reassigned
	st.Killed = append([]string(nil), d.killed...)
	st.Failed = append([]UnitError(nil), d.failed...)
	d.mu.Unlock()

	// A drain must leave the scheduler empty so the next round starts
	// clean: reclaim whatever a cancelled (or fully killed) run left
	// behind. Cancelled leftovers are merely skipped; leftovers with no
	// surviving node are failures.
	for _, node := range c.nodes {
		leftover := c.Sched.Reclaim(node)
		if len(leftover) == 0 {
			continue
		}
		if st.Cancelled {
			st.Skipped += len(leftover)
			continue
		}
		for _, u := range leftover {
			st.Failed = append(st.Failed, UnitError{
				UnitID: u.ID, RuleID: u.RuleID, Part: u.Part,
				Node: node, Attempts: 0, Err: errNoSurvivor,
			})
		}
	}
	if st.Cancelled && c.reg != nil {
		c.reg.Inc(c.prefix + ".cancelled")
		c.reg.Emit(obs.Event{Kind: "drain.cancelled",
			Detail: fmt.Sprintf("%d units skipped", st.Skipped)})
	}

	st.Steals = c.Sched.Steals() - stealsBefore
	c.mu.Lock()
	defer c.mu.Unlock()
	st.PerNode = make(map[string]int, len(c.executed))
	for k, v := range c.executed {
		st.PerNode[k] = v
	}
	return st
}

// workerLoop is one node's work manager for the duration of a drain.
func (c *Cluster) workerLoop(node string, d *drainRun, opts Options) {
	d.mu.Lock()
	for {
		if d.cancelled || d.outstanding == 0 || d.dead[node] {
			d.mu.Unlock()
			return
		}
		v := d.version
		d.mu.Unlock()
		u := c.Sched.Next(node, opts.Steal)
		if u == nil {
			d.mu.Lock()
			// Sleep only if nothing changed since the queues looked
			// empty; a version bump in between may have re-queued work.
			if d.version == v && !d.cancelled && d.outstanding > 0 && !d.dead[node] {
				d.cond.Wait()
			}
			continue
		}
		c.runOne(node, u, d, opts)
		d.mu.Lock()
	}
}

// runOne executes a single unit with panic isolation and drives the
// retry/reassignment policy on failure.
func (c *Cluster) runOne(node string, u *crystal.WorkUnit, d *drainRun, opts Options) {
	if opts.Faults != nil {
		if delay := opts.Faults.delayFor(u.ID); delay > 0 {
			// Stragglers stay interruptible: cancellation cuts the
			// injected slowness short (the unit itself still runs).
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-d.ctx.Done():
				t.Stop()
			}
		}
	}
	err := runShielded(opts.Faults, u, node)
	if err == nil {
		c.mu.Lock()
		c.executed[node]++
		c.total[node]++
		c.mu.Unlock()
		if c.reg != nil {
			c.reg.Inc(c.prefix + ".node." + node + ".units")
			c.reg.Emit(obs.Event{Kind: "unit.executed", Node: node, Rule: u.RuleID, Detail: u.Part})
		}
		d.mu.Lock()
		d.outstanding--
		d.bumpLocked()
		d.mu.Unlock()
		if opts.Faults != nil && opts.Faults.shouldDie(node) {
			c.killNode(node, d)
		}
		return
	}

	// The unit panicked (recovered into err): retry with backoff on a
	// different live node, or give up with a typed UnitError.
	if c.reg != nil {
		c.reg.Inc(c.prefix + ".unit_panics")
		c.reg.Emit(obs.Event{Kind: "unit.panic", Node: node, Rule: u.RuleID, Detail: err.Error()})
	}
	d.mu.Lock()
	d.panics++
	d.attempts[u]++
	attempt := d.attempts[u]
	if attempt > opts.MaxRetries {
		d.failed = append(d.failed, UnitError{
			UnitID: u.ID, RuleID: u.RuleID, Part: u.Part,
			Node: node, Attempts: attempt, Err: err,
		})
		d.outstanding--
		d.bumpLocked()
		d.mu.Unlock()
		if c.reg != nil {
			c.reg.Inc(c.prefix + ".unit_failures")
		}
		return
	}
	d.retries++
	d.mu.Unlock()
	if c.reg != nil {
		c.reg.Inc(c.prefix + ".retries")
	}
	if opts.RetryBackoff > 0 {
		// Backoff must yield to cancellation: a cancelled drain with many
		// retried units would otherwise serialize the full per-unit sleeps
		// before returning. The unit is still requeued below either way —
		// the drain's leftover reclaim counts it as Skipped.
		t := time.NewTimer(time.Duration(attempt) * opts.RetryBackoff)
		select {
		case <-t.C:
		case <-d.ctx.Done():
			t.Stop()
		}
	}
	target := c.Sched.AssignExcluding(u, c.retryExclusion(node, d))
	d.mu.Lock()
	if target != node {
		d.reassigned++
	}
	d.bumpLocked()
	d.mu.Unlock()
	if c.reg != nil {
		if target != node {
			c.reg.Inc(c.prefix + ".reassigned")
		}
		c.reg.Emit(obs.Event{Kind: "unit.retry", Node: target, Rule: u.RuleID,
			Detail: fmt.Sprintf("attempt %d after panic on %s", attempt+1, node)})
	}
}

// runShielded runs the unit under recover(), converting a panic into an
// error so one bad unit cannot take down the process.
func runShielded(f *FaultInjector, u *crystal.WorkUnit, node string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("unit panic: %v", r)
		}
	}()
	if f != nil {
		f.maybePanic(u.ID)
	}
	u.Exec(node)
	return nil
}

// retryExclusion builds the node set a retried unit must avoid: every
// dead node, plus the node it just failed on — unless that node is the
// only survivor, in which case it has to try again locally.
func (c *Cluster) retryExclusion(node string, d *drainRun) map[string]bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	ex := make(map[string]bool, len(d.dead)+1)
	aliveOthers := 0
	for _, n := range c.nodes {
		if d.dead[n] {
			ex[n] = true
		} else if n != node {
			aliveOthers++
		}
	}
	if aliveOthers > 0 {
		ex[node] = true
	}
	return ex
}

// killNode marks a node dead mid-drain (fault injection), reclaims its
// pending queue, and re-homes the orphaned units on the survivors.
func (c *Cluster) killNode(node string, d *drainRun) {
	d.mu.Lock()
	if d.dead[node] {
		d.mu.Unlock()
		return
	}
	d.dead[node] = true
	d.killed = append(d.killed, node)
	exclude := make(map[string]bool, len(d.dead))
	for n := range d.dead {
		exclude[n] = true
	}
	d.bumpLocked()
	d.mu.Unlock()
	if c.reg != nil {
		c.reg.Inc(c.prefix + ".node_killed")
		c.reg.Emit(obs.Event{Kind: "node.killed", Node: node})
	}
	orphans := c.Sched.Reclaim(node)
	moved := 0
	for _, o := range orphans {
		if target := c.Sched.AssignExcluding(o, exclude); target != node {
			moved++
		}
	}
	if moved > 0 {
		d.mu.Lock()
		d.reassigned += moved
		d.bumpLocked()
		d.mu.Unlock()
		if c.reg != nil {
			c.reg.Add(c.prefix+".reassigned", uint64(moved))
		}
	}
}

// Executed returns the cumulative per-node unit counts across every
// drain since the cluster was created.
func (c *Cluster) Executed() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.total))
	for k, v := range c.total {
		out[k] = v
	}
	return out
}

// SimUnit is one executed work unit with its measured cost, used by the
// makespan simulation.
type SimUnit struct {
	// Node is the affinity assignment (consistent-hash owner).
	Node string
	// Cost is the measured serial execution time.
	Cost time.Duration
}

// SimulateMakespan schedules measured unit costs over the named workers —
// affinity queues first, work stealing when idle — and returns the
// parallel makespan. This is the discrete-event counterpart of Drain for
// hosts whose physical core count cannot express the paper's cluster
// sizes: per-unit costs are measured for real, only their overlap is
// simulated, so the scheduling and balancing behaviour under evaluation
// (Figures 4(h)/(l)) is exactly what determines the result.
func SimulateMakespan(units []SimUnit, nodes []string, steal bool) time.Duration {
	queues := make(map[string][]time.Duration, len(nodes))
	remaining := make(map[string]time.Duration, len(nodes))
	for _, n := range nodes {
		queues[n] = nil
		remaining[n] = 0
	}
	fallback := nodes[0]
	for _, u := range units {
		n := u.Node
		if _, ok := queues[n]; !ok {
			n = fallback
		}
		queues[n] = append(queues[n], u.Cost)
		remaining[n] += u.Cost
	}
	clock := make(map[string]time.Duration, len(nodes))
	pending := len(units)
	for pending > 0 {
		// The node with the earliest clock acts next.
		var node string
		first := true
		for _, n := range nodes {
			if first || clock[n] < clock[node] || (clock[n] == clock[node] && n < node) {
				node, first = n, false
			}
		}
		if q := queues[node]; len(q) > 0 {
			cost := q[len(q)-1]
			queues[node] = q[:len(q)-1]
			remaining[node] -= cost
			clock[node] += cost
			pending--
			continue
		}
		if !steal {
			// Idle forever: jump its clock past everyone so it never acts
			// again; find max busy clock + pending work upper bound.
			var max time.Duration
			for _, n := range nodes {
				if c := clock[n] + remaining[n]; c > max {
					max = c
				}
			}
			clock[node] = max
			continue
		}
		// Steal the costliest unit from the most loaded peer.
		victim := ""
		for _, n := range nodes {
			if n != node && len(queues[n]) > 0 && (victim == "" || remaining[n] > remaining[victim]) {
				victim = n
			}
		}
		if victim == "" {
			var max time.Duration
			for _, n := range nodes {
				if c := clock[n] + remaining[n]; c > max {
					max = c
				}
			}
			clock[node] = max
			continue
		}
		q := queues[victim]
		bi := 0
		for i, c := range q {
			if c > q[bi] {
				bi = i
			}
		}
		cost := q[bi]
		queues[victim] = append(q[:bi], q[bi+1:]...)
		remaining[victim] -= cost
		// Stealing cannot happen before the victim enqueued the work; the
		// thief resumes at its own clock.
		clock[node] += cost
		pending--
	}
	var makespan time.Duration
	for _, n := range nodes {
		if clock[n] > makespan {
			makespan = clock[n]
		}
	}
	return makespan
}

// ParallelMap partitions items into per-worker chunks and applies fn
// concurrently; a convenience for data-parallel phases that don't go
// through the scheduler. fn receives (workerIndex, item).
func ParallelMap[T any](workers int, items []T, fn func(worker int, item T)) {
	if workers < 1 {
		workers = 1
	}
	ch := make(chan T, len(items))
	for _, it := range items {
		ch <- it
	}
	close(ch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range ch {
				fn(w, it)
			}
		}(w)
	}
	wg.Wait()
}
