// Package cluster simulates the n-worker compute cluster Rock runs on
// (paper §6 uses 21 Kubernetes nodes): each worker is a goroutine with its
// own work manager that drains the crystal scheduler, stealing from peers
// when idle. The parallel-scalability experiments (Figures 4(h) and 4(l))
// drive this package with varying n.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/obs"
)

// Cluster is a set of named workers sharing a ring and scheduler.
type Cluster struct {
	Ring  *crystal.Ring
	Sched *crystal.Scheduler
	nodes []string

	// reg/prefix route the cluster's observability into the owning
	// phase's registry ("detect" or "chase"); nil records nothing.
	reg    *obs.Registry
	prefix string

	mu       sync.Mutex
	executed map[string]int // node -> units run in the CURRENT drain
	total    map[string]int // node -> units run since cluster creation
}

// New creates a cluster of n workers named node-0..node-(n-1).
func New(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	ring := crystal.NewRing(64)
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%d", i)
		ring.AddNode(nodes[i])
	}
	return &Cluster{
		Ring:     ring,
		Sched:    crystal.NewScheduler(nodes),
		nodes:    nodes,
		executed: make(map[string]int, n),
		total:    make(map[string]int, n),
	}
}

// SetObs routes the cluster's metrics and events into reg under the
// given name prefix (e.g. "chase" yields "chase.steals",
// "chase.node.node-0.units", "chase.queue_depth"). A nil registry (the
// default) records nothing. Steal events are reported as they happen
// via the scheduler's OnSteal hook.
func (c *Cluster) SetObs(reg *obs.Registry, prefix string) {
	c.reg = reg
	c.prefix = prefix
	if reg == nil {
		c.Sched.OnSteal = nil
		return
	}
	steals := reg.Counter(prefix + ".steals")
	c.Sched.OnSteal = func(thief, victim string, u *crystal.WorkUnit) {
		steals.Inc()
		reg.Emit(obs.Event{Kind: "steal", Node: thief, Rule: u.RuleID, Detail: "from " + victim})
	}
}

// Size returns the number of workers.
func (c *Cluster) Size() int { return len(c.nodes) }

// Nodes returns the worker names.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Submit assigns a work unit by partition affinity.
func (c *Cluster) Submit(u *crystal.WorkUnit) { c.Sched.Assign(c.Ring, u) }

// SubmitBalanced assigns a work unit to the least-loaded worker.
func (c *Cluster) SubmitBalanced(u *crystal.WorkUnit) { c.Sched.AssignBalanced(u) }

// Options tunes a drain run.
type Options struct {
	// Steal enables work stealing (on by default in Rock; the ablation
	// benchmark turns it off).
	Steal bool
}

// DrainStats describes one drain: per-node unit counts for THIS drain
// only, the number of steals it performed, and the queue depth when it
// started.
type DrainStats struct {
	PerNode map[string]int
	Steals  int
	Queued  int
}

// Drain runs every queued unit to completion across all workers and
// returns per-node unit counts for this drain. Each worker loops: pop
// (or steal) a unit, run it, repeat until the scheduler is empty.
//
// The counts are per-drain (reset on entry): the chase drains the same
// shared cluster once per round, and utilization stats derived from
// cumulative counts would inflate every round after the first.
// Executed() keeps the cumulative view.
func (c *Cluster) Drain(opts Options) map[string]int {
	return c.DrainWithStats(opts).PerNode
}

// DrainWithStats is Drain returning the full per-drain statistics.
func (c *Cluster) DrainWithStats(opts Options) DrainStats {
	st := DrainStats{Queued: c.Sched.Pending()}
	stealsBefore := c.Sched.Steals()
	c.mu.Lock()
	c.executed = make(map[string]int, len(c.nodes))
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.SetGauge(c.prefix+".queue_depth", int64(st.Queued))
	}
	var wg sync.WaitGroup
	for _, node := range c.nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			for {
				u := c.Sched.Next(node, opts.Steal)
				if u == nil {
					return
				}
				if u.Run != nil {
					u.Run()
				}
				c.mu.Lock()
				c.executed[node]++
				c.total[node]++
				c.mu.Unlock()
				if c.reg != nil {
					c.reg.Inc(c.prefix + ".node." + node + ".units")
					c.reg.Emit(obs.Event{Kind: "unit.executed", Node: node, Rule: u.RuleID, Detail: u.Part})
				}
			}
		}(node)
	}
	wg.Wait()
	st.Steals = c.Sched.Steals() - stealsBefore
	c.mu.Lock()
	defer c.mu.Unlock()
	st.PerNode = make(map[string]int, len(c.executed))
	for k, v := range c.executed {
		st.PerNode[k] = v
	}
	return st
}

// Executed returns the cumulative per-node unit counts across every
// drain since the cluster was created.
func (c *Cluster) Executed() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.total))
	for k, v := range c.total {
		out[k] = v
	}
	return out
}

// SimUnit is one executed work unit with its measured cost, used by the
// makespan simulation.
type SimUnit struct {
	// Node is the affinity assignment (consistent-hash owner).
	Node string
	// Cost is the measured serial execution time.
	Cost time.Duration
}

// SimulateMakespan schedules measured unit costs over the named workers —
// affinity queues first, work stealing when idle — and returns the
// parallel makespan. This is the discrete-event counterpart of Drain for
// hosts whose physical core count cannot express the paper's cluster
// sizes: per-unit costs are measured for real, only their overlap is
// simulated, so the scheduling and balancing behaviour under evaluation
// (Figures 4(h)/(l)) is exactly what determines the result.
func SimulateMakespan(units []SimUnit, nodes []string, steal bool) time.Duration {
	queues := make(map[string][]time.Duration, len(nodes))
	remaining := make(map[string]time.Duration, len(nodes))
	for _, n := range nodes {
		queues[n] = nil
		remaining[n] = 0
	}
	fallback := nodes[0]
	for _, u := range units {
		n := u.Node
		if _, ok := queues[n]; !ok {
			n = fallback
		}
		queues[n] = append(queues[n], u.Cost)
		remaining[n] += u.Cost
	}
	clock := make(map[string]time.Duration, len(nodes))
	pending := len(units)
	for pending > 0 {
		// The node with the earliest clock acts next.
		var node string
		first := true
		for _, n := range nodes {
			if first || clock[n] < clock[node] || (clock[n] == clock[node] && n < node) {
				node, first = n, false
			}
		}
		if q := queues[node]; len(q) > 0 {
			cost := q[len(q)-1]
			queues[node] = q[:len(q)-1]
			remaining[node] -= cost
			clock[node] += cost
			pending--
			continue
		}
		if !steal {
			// Idle forever: jump its clock past everyone so it never acts
			// again; find max busy clock + pending work upper bound.
			var max time.Duration
			for _, n := range nodes {
				if c := clock[n] + remaining[n]; c > max {
					max = c
				}
			}
			clock[node] = max
			continue
		}
		// Steal the costliest unit from the most loaded peer.
		victim := ""
		for _, n := range nodes {
			if n != node && len(queues[n]) > 0 && (victim == "" || remaining[n] > remaining[victim]) {
				victim = n
			}
		}
		if victim == "" {
			var max time.Duration
			for _, n := range nodes {
				if c := clock[n] + remaining[n]; c > max {
					max = c
				}
			}
			clock[node] = max
			continue
		}
		q := queues[victim]
		bi := 0
		for i, c := range q {
			if c > q[bi] {
				bi = i
			}
		}
		cost := q[bi]
		queues[victim] = append(q[:bi], q[bi+1:]...)
		remaining[victim] -= cost
		// Stealing cannot happen before the victim enqueued the work; the
		// thief resumes at its own clock.
		clock[node] += cost
		pending--
	}
	var makespan time.Duration
	for _, n := range nodes {
		if clock[n] > makespan {
			makespan = clock[n]
		}
	}
	return makespan
}

// ParallelMap partitions items into per-worker chunks and applies fn
// concurrently; a convenience for data-parallel phases that don't go
// through the scheduler. fn receives (workerIndex, item).
func ParallelMap[T any](workers int, items []T, fn func(worker int, item T)) {
	if workers < 1 {
		workers = 1
	}
	ch := make(chan T, len(items))
	for _, it := range items {
		ch <- it
	}
	close(ch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range ch {
				fn(w, it)
			}
		}(w)
	}
	wg.Wait()
}
