package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/obs"
)

func TestClusterDrainsAllUnits(t *testing.T) {
	c := New(4)
	var ran int64
	for i := 0; i < 100; i++ {
		c.Submit(&crystal.WorkUnit{
			ID:      i,
			Part:    fmt.Sprintf("p%d/b", i),
			EstCost: 1,
			Run:     func() { atomic.AddInt64(&ran, 1) },
		})
	}
	per := c.Drain(context.Background(), Options{Steal: true})
	if ran != 100 {
		t.Fatalf("ran %d of 100", ran)
	}
	total := 0
	for _, n := range per {
		total += n
	}
	if total != 100 {
		t.Errorf("per-node accounting: %v", per)
	}
}

func TestStealingBalancesSkew(t *testing.T) {
	// All units hash-assigned to the same partition prefix land on one
	// node; stealing must spread execution.
	c := New(4)
	var mu sync.Mutex
	perWorker := map[string]int{}
	for i := 0; i < 64; i++ {
		c.Submit(&crystal.WorkUnit{
			ID:      i,
			Part:    "hot/block", // same partition => same owner
			EstCost: 1,
			Run: func() {
				time.Sleep(200 * time.Microsecond)
			},
		})
	}
	counts := c.Drain(context.Background(), Options{Steal: true})
	busy := 0
	for _, n := range counts {
		if n > 0 {
			busy++
		}
	}
	mu.Lock()
	_ = perWorker
	mu.Unlock()
	if busy < 2 {
		t.Errorf("stealing failed to spread hot partition: %v", counts)
	}
	// Without stealing, only the owner runs them.
	c2 := New(4)
	for i := 0; i < 16; i++ {
		c2.Submit(&crystal.WorkUnit{ID: i, Part: "hot/block", EstCost: 1, Run: func() {}})
	}
	counts2 := c2.Drain(context.Background(), Options{Steal: false})
	busy2 := 0
	for _, n := range counts2 {
		if n > 0 {
			busy2++
		}
	}
	if busy2 != 1 {
		t.Errorf("without stealing exactly one node must run the hot partition: %v", counts2)
	}
}

// TestDrainPerDrainCounts is the regression test for the cumulative-count
// bug: Drain used to never reset the executed map, so per-node counts
// leaked across the chase's per-round drains — round 2's "per-round"
// stats silently included round 1.
func TestDrainPerDrainCounts(t *testing.T) {
	c := New(3)
	submit := func(n int) {
		for i := 0; i < n; i++ {
			c.Submit(&crystal.WorkUnit{ID: i, Part: fmt.Sprintf("p%d/b", i), EstCost: 1, Run: func() {}})
		}
	}
	sum := func(m map[string]int) int {
		s := 0
		for _, n := range m {
			s += n
		}
		return s
	}
	submit(12)
	first := c.Drain(context.Background(), Options{Steal: true})
	if got := sum(first); got != 12 {
		t.Fatalf("first drain counted %d units, want 12: %v", got, first)
	}
	submit(5)
	second := c.Drain(context.Background(), Options{Steal: true})
	if got := sum(second); got != 5 {
		t.Fatalf("second drain counted %d units, want 5 (per-drain, not cumulative): %v", got, second)
	}
	if got := sum(c.Executed()); got != 17 {
		t.Fatalf("cumulative Executed() = %d, want 17: %v", got, c.Executed())
	}
}

func TestDrainWithStats(t *testing.T) {
	c := New(4)
	reg := obs.New()
	c.SetObs(reg, "chase")
	for i := 0; i < 32; i++ {
		c.Submit(&crystal.WorkUnit{ID: i, Part: "hot/block", EstCost: 1,
			Run: func() { time.Sleep(100 * time.Microsecond) }})
	}
	st := c.DrainWithStats(context.Background(), Options{Steal: true})
	if st.Queued != 32 {
		t.Errorf("Queued = %d, want 32", st.Queued)
	}
	total := 0
	for node, n := range st.PerNode {
		total += n
		if got := reg.CounterValue("chase.node." + node + ".units"); got != uint64(n) {
			t.Errorf("obs counter for %s = %d, want %d", node, got, n)
		}
	}
	if total != 32 {
		t.Errorf("PerNode sums to %d, want 32: %v", total, st.PerNode)
	}
	if st.Steals == 0 {
		t.Error("hot partition with stealing should record steals")
	}
	if got := reg.CounterValue("chase.steals"); got != uint64(st.Steals) {
		t.Errorf("obs steal counter = %d, want %d", got, st.Steals)
	}
	// Without stealing the counter must stay put.
	c2 := New(4)
	reg2 := obs.New()
	c2.SetObs(reg2, "chase")
	for i := 0; i < 16; i++ {
		c2.Submit(&crystal.WorkUnit{ID: i, Part: "hot/block", EstCost: 1, Run: func() {}})
	}
	st2 := c2.DrainWithStats(context.Background(), Options{Steal: false})
	if st2.Steals != 0 || reg2.CounterValue("chase.steals") != 0 {
		t.Errorf("Steal=false must record zero steals: %d / %d", st2.Steals, reg2.CounterValue("chase.steals"))
	}
}

func TestParallelScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("wall-clock scaling needs >1 physical core; see SimulateMakespan tests")
	}
	// A CPU-bound workload must speed up with more workers.
	work := func() {
		x := 0.0
		for i := 0; i < 200000; i++ {
			x += float64(i) * 1.000001
		}
		_ = x
	}
	run := func(n int) time.Duration {
		c := New(n)
		for i := 0; i < 32; i++ {
			c.SubmitBalanced(&crystal.WorkUnit{ID: i, EstCost: 1, Run: work})
		}
		start := time.Now()
		c.Drain(context.Background(), Options{Steal: true})
		return time.Since(start)
	}
	t1 := run(1)
	t4 := run(4)
	if t4 >= t1 {
		t.Errorf("4 workers not faster than 1: %v vs %v", t4, t1)
	}
}

func TestParallelMap(t *testing.T) {
	var sum int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	ParallelMap(8, items, func(w, it int) { atomic.AddInt64(&sum, int64(it)) })
	if sum != 4950 {
		t.Errorf("sum=%d", sum)
	}
	// Degenerate worker counts.
	sum = 0
	ParallelMap(0, items[:3], func(w, it int) { atomic.AddInt64(&sum, 1) })
	if sum != 3 {
		t.Error("workers<1 must still process")
	}
}

func TestClusterMinimumSize(t *testing.T) {
	c := New(0)
	if c.Size() != 1 {
		t.Error("cluster clamps to 1 worker")
	}
	if len(c.Nodes()) != 1 {
		t.Error("nodes list")
	}
}
