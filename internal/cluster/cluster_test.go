package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockclean/rock/internal/crystal"
)

func TestClusterDrainsAllUnits(t *testing.T) {
	c := New(4)
	var ran int64
	for i := 0; i < 100; i++ {
		c.Submit(&crystal.WorkUnit{
			ID:      i,
			Part:    fmt.Sprintf("p%d/b", i),
			EstCost: 1,
			Run:     func() { atomic.AddInt64(&ran, 1) },
		})
	}
	per := c.Drain(Options{Steal: true})
	if ran != 100 {
		t.Fatalf("ran %d of 100", ran)
	}
	total := 0
	for _, n := range per {
		total += n
	}
	if total != 100 {
		t.Errorf("per-node accounting: %v", per)
	}
}

func TestStealingBalancesSkew(t *testing.T) {
	// All units hash-assigned to the same partition prefix land on one
	// node; stealing must spread execution.
	c := New(4)
	var mu sync.Mutex
	perWorker := map[string]int{}
	for i := 0; i < 64; i++ {
		c.Submit(&crystal.WorkUnit{
			ID:      i,
			Part:    "hot/block", // same partition => same owner
			EstCost: 1,
			Run: func() {
				time.Sleep(200 * time.Microsecond)
			},
		})
	}
	counts := c.Drain(Options{Steal: true})
	busy := 0
	for _, n := range counts {
		if n > 0 {
			busy++
		}
	}
	mu.Lock()
	_ = perWorker
	mu.Unlock()
	if busy < 2 {
		t.Errorf("stealing failed to spread hot partition: %v", counts)
	}
	// Without stealing, only the owner runs them.
	c2 := New(4)
	for i := 0; i < 16; i++ {
		c2.Submit(&crystal.WorkUnit{ID: i, Part: "hot/block", EstCost: 1, Run: func() {}})
	}
	counts2 := c2.Drain(Options{Steal: false})
	busy2 := 0
	for _, n := range counts2 {
		if n > 0 {
			busy2++
		}
	}
	if busy2 != 1 {
		t.Errorf("without stealing exactly one node must run the hot partition: %v", counts2)
	}
}

func TestParallelScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("wall-clock scaling needs >1 physical core; see SimulateMakespan tests")
	}
	// A CPU-bound workload must speed up with more workers.
	work := func() {
		x := 0.0
		for i := 0; i < 200000; i++ {
			x += float64(i) * 1.000001
		}
		_ = x
	}
	run := func(n int) time.Duration {
		c := New(n)
		for i := 0; i < 32; i++ {
			c.SubmitBalanced(&crystal.WorkUnit{ID: i, EstCost: 1, Run: work})
		}
		start := time.Now()
		c.Drain(Options{Steal: true})
		return time.Since(start)
	}
	t1 := run(1)
	t4 := run(4)
	if t4 >= t1 {
		t.Errorf("4 workers not faster than 1: %v vs %v", t4, t1)
	}
}

func TestParallelMap(t *testing.T) {
	var sum int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	ParallelMap(8, items, func(w, it int) { atomic.AddInt64(&sum, int64(it)) })
	if sum != 4950 {
		t.Errorf("sum=%d", sum)
	}
	// Degenerate worker counts.
	sum = 0
	ParallelMap(0, items[:3], func(w, it int) { atomic.AddInt64(&sum, 1) })
	if sum != 3 {
		t.Error("workers<1 must still process")
	}
}

func TestClusterMinimumSize(t *testing.T) {
	c := New(0)
	if c.Size() != 1 {
		t.Error("cluster clamps to 1 worker")
	}
	if len(c.Nodes()) != 1 {
		t.Error("nodes list")
	}
}
