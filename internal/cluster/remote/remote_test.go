package remote

// Oracle tests for the distributed chase: real worker processes (this
// test binary re-executed via TestMain) connect over TCP and the
// distributed fix set must be bit-identical — truth.FixSet.Snapshot()
// equality — to a serial in-process run over the same inputs,
// including when a worker is SIGKILLed mid-drain.

import (
	"context"
	"fmt"
	"os"
	osexec "os/exec"
	"strconv"
	"syscall"
	"testing"
	"time"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
	"github.com/rockclean/rock/internal/workload"
)

const (
	helperEnv = "ROCK_WORKER_HELPER"
	coordEnv  = "ROCK_COORD_ADDR"
	nEnv      = "ROCK_HELPER_N"
	seedEnv   = "ROCK_HELPER_SEED"
	fpEnv     = "ROCK_HELPER_FP"
)

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		runHelper()
		return
	}
	os.Exit(m.Run())
}

// replica builds the engine inputs every process derives identically
// from (n, seed): the lockstep-replication precondition.
func replica(n int, seed int64) (*predicate.Env, []*ree.Rule, *truth.FixSet, map[string]bool) {
	ds := workload.Bank(workload.Config{N: n, Seed: seed})
	ds.SeedGamma(0.5, seed+1)
	return ds.BuildEnv(), ds.Rules, ds.Gamma, ds.EIDRefs
}

func replicaOpts(refs map[string]bool) chase.Options {
	return chase.Options{
		Mode: chase.Unified, Lazy: true, UseBlocking: true,
		Workers: 4, Steal: true, MaxRetries: 2, MaxRounds: 30,
		EIDRefs: refs,
	}
}

// runHelper is the worker-process main: the test binary re-executed
// with the helper environment set.
func runHelper() {
	n, _ := strconv.Atoi(os.Getenv(nEnv))
	seed, _ := strconv.ParseInt(os.Getenv(seedEnv), 10, 64)
	env, rules, gamma, refs := replica(n, seed)
	eng := chase.New(env, rules, gamma, replicaOpts(refs))
	err := RunWorker(context.Background(), eng, WorkerOptions{
		Coord:       os.Getenv(coordEnv),
		Fingerprint: os.Getenv(fpEnv),
		Meta:        strconv.Itoa(os.Getpid()),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func spawnWorker(t *testing.T, addr, fp string, n int, seed int64) *osexec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := osexec.Command(exe)
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		coordEnv+"="+addr,
		nEnv+"="+strconv.Itoa(n),
		seedEnv+"="+strconv.FormatInt(seed, 10),
		fpEnv+"="+fp,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// serialRun produces the baseline snapshot and report.
func serialRun(t *testing.T, n int, seed int64) (string, *chase.Report) {
	t.Helper()
	env, rules, gamma, refs := replica(n, seed)
	eng := chase.New(env, rules, gamma, replicaOpts(refs))
	rep, err := eng.RunCtx(context.Background())
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return eng.Truth().Snapshot(), rep
}

// distributedRun drives a full chase over nWorkers real processes and
// returns the final snapshot and report. faults, when non-nil, is
// installed on the engine (and its ProcessKill wired to SIGKILL the
// real worker process by the PID it sent in its hello).
func distributedRun(t *testing.T, n int, seed int64, nWorkers int, faults *cluster.FaultInjector) (string, *chase.Report, map[string]*osexec.Cmd) {
	t.Helper()
	const fp = "oracle-test-fp"
	coord := NewCoordinator(CoordOptions{
		Addr: "127.0.0.1:0", Workers: nWorkers, Fingerprint: fp,
		Logf: t.Logf,
	})
	addr, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	cmds := make([]*osexec.Cmd, nWorkers)
	for i := range cmds {
		cmds[i] = spawnWorker(t, addr, fp, n, seed)
	}
	byNode := map[string]*osexec.Cmd{}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := coord.WaitWorkers(ctx); err != nil {
		t.Fatalf("WaitWorkers: %v", err)
	}
	pidToCmd := map[int]*osexec.Cmd{}
	for _, cmd := range cmds {
		pidToCmd[cmd.Process.Pid] = cmd
	}
	for _, node := range coord.Nodes() {
		if pid, err := strconv.Atoi(coord.WorkerMeta(node)); err == nil {
			byNode[node] = pidToCmd[pid]
		}
	}
	if faults != nil {
		faults.ProcessKill = func(node string) {
			if pid, err := strconv.Atoi(coord.WorkerMeta(node)); err == nil {
				syscall.Kill(pid, syscall.SIGKILL)
			}
		}
	}

	env, rules, gamma, refs := replica(n, seed)
	opts := replicaOpts(refs)
	opts.Cluster = coord
	opts.Faults = faults
	eng := chase.New(env, rules, gamma, opts)
	rep, err := eng.RunCtx(ctx)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	coord.Close()
	return eng.Truth().Snapshot(), rep, byNode
}

func TestDistributedBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	const n, seed = 220, 7
	wantSnap, wantRep := serialRun(t, n, seed)
	gotSnap, gotRep, _ := distributedRun(t, n, seed, 2, nil)

	if gotSnap != wantSnap {
		t.Fatalf("distributed snapshot differs from serial:\nserial %d bytes, distributed %d bytes",
			len(wantSnap), len(gotSnap))
	}
	if gotRep.Rounds != wantRep.Rounds {
		t.Errorf("rounds: distributed %d, serial %d", gotRep.Rounds, wantRep.Rounds)
	}
	if len(gotRep.Applied) != len(wantRep.Applied) {
		t.Errorf("applied fixes: distributed %d, serial %d", len(gotRep.Applied), len(wantRep.Applied))
	}
	if len(gotRep.Unresolved) != len(wantRep.Unresolved) {
		t.Errorf("unresolved conflicts: distributed %d, serial %d", len(gotRep.Unresolved), len(wantRep.Unresolved))
	}
	if gotRep.ResolvedMI != wantRep.ResolvedMI {
		t.Errorf("resolved MI: distributed %d, serial %d", gotRep.ResolvedMI, wantRep.ResolvedMI)
	}
}

func TestDistributedSurvivesWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	const n, seed = 220, 7
	wantSnap, _ := serialRun(t, n, seed)

	faults := cluster.NewFaultInjector()
	faults.KillNode("worker-1", 2) // SIGKILL after its second completed unit
	gotSnap, _, byNode := distributedRun(t, n, seed, 3, faults)

	if gotSnap != wantSnap {
		t.Fatalf("snapshot after mid-drain SIGKILL differs from serial:\nserial %d bytes, distributed %d bytes",
			len(wantSnap), len(gotSnap))
	}
	// The kill must have really happened: worker-1's OS process ended on
	// SIGKILL, not a clean exit.
	cmd := byNode["worker-1"]
	if cmd == nil {
		t.Fatal("no process mapped to worker-1")
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatal("worker-1 exited cleanly; expected death by SIGKILL")
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("worker-1 did not die of SIGKILL: %v (state %v)", err, cmd.ProcessState)
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real worker process")
	}
	coord := NewCoordinator(CoordOptions{
		Addr: "127.0.0.1:0", Workers: 1, Fingerprint: "coordinator-fp",
		AcceptTimeout: 20 * time.Second,
	})
	addr, err := coord.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cmd := spawnWorker(t, addr, "some-other-fp", 40, 3)
	defer func() { cmd.Process.Kill(); cmd.Wait() }()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := coord.WaitWorkers(ctx); err == nil {
		t.Fatal("WaitWorkers accepted a worker with a mismatched fingerprint")
	}
}
