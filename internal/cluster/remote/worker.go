package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/chase"
)

// Follower is the engine surface a worker process drives: round
// preparation (journal replay + unit derivation) and on-demand unit
// execution. *chase.Engine implements it; rock.Pipeline.FollowerEngine
// builds one from the same deterministic pipeline as the coordinator.
type Follower interface {
	FollowRound(pre chase.RoundPreamble) (int, error)
	RunFollowUnit(ctx context.Context, i int, node string) (chase.UnitOutcome, error)
}

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coord is the coordinator's TCP address.
	Coord string
	// Fingerprint must match the coordinator's (see CoordOptions).
	Fingerprint string
	// DialTimeout is the total budget for connecting (individual dials
	// are retried until it elapses — the coordinator may not be listening
	// yet when the worker process launches). Default 30s.
	DialTimeout time.Duration
	// HeartbeatInterval is how often the worker signals liveness; must be
	// well under the coordinator's HeartbeatTimeout. Default 1s.
	HeartbeatInterval time.Duration
	// MaxFrame bounds received frame payloads (DefaultMaxFrame when 0).
	MaxFrame int
	// Meta is an identity string sent in the hello and readable on the
	// coordinator via WorkerMeta — cmd/rockworker sends its PID so
	// fault-injection hooks can SIGKILL the real process.
	Meta string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// RunWorker connects the engine replica to the coordinator and serves
// rounds until the coordinator closes the connection (normal
// shutdown), the context is cancelled, or a protocol error occurs. It
// is the whole main loop of a worker process (cmd/rockworker).
func RunWorker(ctx context.Context, eng Follower, opts WorkerOptions) error {
	opts = opts.withDefaults()
	conn, err := dialRetry(ctx, opts.Coord, opts.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	// Handshake: prove this replica was built from the same inputs.
	var writeMu sync.Mutex
	send := func(env envelope) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeMsg(conn, env)
	}
	if err := send(envelope{Type: mtHello, Hello: &helloMsg{Fingerprint: opts.Fingerprint, Name: opts.Meta}}); err != nil {
		return fmt.Errorf("remote: sending hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(opts.DialTimeout))
	env, err := readMsg(conn, opts.MaxFrame)
	if err != nil {
		return fmt.Errorf("remote: reading hello ack: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if env.Type != mtHelloAck || env.Ack == nil {
		return fmt.Errorf("remote: expected hello_ack, got %q", env.Type)
	}
	if env.Ack.Err != "" {
		return fmt.Errorf("remote: coordinator rejected worker: %s", env.Ack.Err)
	}
	name := env.Ack.Name
	opts.Logf("remote: joined as %s", name)

	// Heartbeats keep the coordinator's read deadline from firing while
	// the worker sits idle between rounds or grinds a long unit.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(opts.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if send(envelope{Type: mtHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	// Cancellation: unblock the read loop by closing the connection.
	go func() {
		<-hbCtx.Done()
		conn.Close()
	}()

	for {
		env, err := readMsg(conn, opts.MaxFrame)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator closed the run: normal shutdown
			}
			return fmt.Errorf("remote: %s read: %w", name, err)
		}
		switch env.Type {
		case mtRound:
			pre := fromWirePreamble(*env.Round)
			units, ferr := eng.FollowRound(pre)
			ack := roundAckMsg{Round: pre.Round, Units: units}
			if ferr != nil {
				ack.Err = ferr.Error()
			}
			if err := send(envelope{Type: mtRoundAck, RAck: &ack}); err != nil {
				return fmt.Errorf("remote: %s sending round ack: %w", name, err)
			}
			opts.Logf("remote: %s round %d: %d units", name, pre.Round, units)
		case mtAssign:
			for _, i := range env.Assign.Units {
				res := runShielded(ctx, eng, i, name)
				res.Round = env.Assign.Round
				if err := send(envelope{Type: mtResult, Result: &res}); err != nil {
					return fmt.Errorf("remote: %s sending result: %w", name, err)
				}
			}
		default:
			// Unknown types are ignored for forward compatibility.
		}
	}
}

// runShielded executes one unit under a recover() shield so a
// panicking rule takes down the unit, not the worker process — the
// coordinator then retries it elsewhere, mirroring the in-process
// pool's panic recovery.
func runShielded(ctx context.Context, eng Follower, i int, node string) (res resultMsg) {
	res.Unit = i
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("unit %d panicked: %v", i, r)
		}
	}()
	out, err := eng.RunFollowUnit(ctx, i, node)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Fixes = toWireFixes(out.Fixes)
	res.Unresolved = toWireUnres(out.Unresolved)
	res.ResolvedMI = out.ResolvedMI
	res.Valuations = out.Valuations
	res.MLCalls = out.MLCalls
	res.CostNs = out.CostNs
	return res
}

// dialRetry dials the coordinator, retrying until the budget elapses —
// worker processes routinely start before the coordinator binds.
func dialRetry(ctx context.Context, addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := net.Dialer{Timeout: time.Second}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return nil, fmt.Errorf("remote: dial %s: budget exhausted: %w", addr, lastErr)
}
