// Package remote distributes the chase across process boundaries: a
// Coordinator that owns the truth ledger and round barrier, and N
// worker processes (cmd/rockworker) that own engine replicas and speak
// a length-prefixed TCP protocol. The design is lockstep replication —
// see the package comment in internal/chase/distributed.go — so the
// wire only ever carries round preambles (truth journal + accepted
// fixes + rule IDs), unit index assignments, and per-unit deduction
// buffers tagged with generation order. The coordinator's merge
// consumes buffers in unit-index order, keeping distributed runs
// bit-identical to serial ones.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultMaxFrame bounds a single frame's payload. Round preambles
// carry the truth journal and can grow with the dataset, but 64 MiB is
// far beyond any realistic round; anything larger is a corrupt or
// hostile length prefix and the connection is torn down.
const DefaultMaxFrame = 64 << 20

// Codec errors. Both are terminal for the connection: framing is
// stateful, so a bad frame loses synchronization.
var (
	ErrChecksum      = errors.New("remote: frame checksum mismatch")
	ErrFrameTooLarge = errors.New("remote: frame exceeds size limit")
)

// Frame layout: 4-byte big-endian payload length, 4-byte big-endian
// CRC32 (IEEE) of the payload, then the payload bytes. The checksum
// catches corruption that TCP's 16-bit checksum can miss on long
// drains, and — more practically — turns a desynchronized stream into
// an immediate error instead of garbage JSON.
const frameHeader = 8

// WriteFrame writes one framed payload. A single Write call is used
// for header+payload so concurrent writers guarded by a mutex never
// interleave partial frames.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one framed payload, enforcing max as the payload
// size limit (DefaultMaxFrame when max <= 0). The length is validated
// before any payload allocation, so a corrupt prefix cannot trigger a
// huge allocation.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, ErrChecksum
	}
	return payload, nil
}
