package remote

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/obs"
)

// CoordOptions configures a Coordinator.
type CoordOptions struct {
	// Addr is the TCP listen address; ":0" picks a free port (read the
	// bound address back with Addr() after Start).
	Addr string
	// Workers is the number of worker processes expected to connect.
	Workers int
	// Fingerprint digests this process's replica inputs; workers whose
	// hello carries a different fingerprint are rejected.
	Fingerprint string
	// HeartbeatTimeout is how long a worker connection may stay silent
	// (no heartbeat, ack or result) before the coordinator declares it
	// dead and redistributes its queue. Default 5s.
	HeartbeatTimeout time.Duration
	// AcceptTimeout bounds WaitWorkers. Default 30s.
	AcceptTimeout time.Duration
	// MaxFrame bounds received frame payloads (DefaultMaxFrame when 0).
	MaxFrame int
	// Logf, when set, receives progress lines (worker joins, deaths,
	// reassignments).
	Logf func(format string, args ...any)
}

func (o CoordOptions) withDefaults() CoordOptions {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.AcceptTimeout <= 0 {
		o.AcceptTimeout = 30 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// event is one message (or death notice) from a worker's reader
// goroutine, serialized onto the coordinator's event channel.
type event struct {
	node string
	env  envelope
	err  error // non-nil: the connection died (EOF, reset, heartbeat timeout)
}

// workerConn is one connected worker process.
type workerConn struct {
	name    string
	meta    string // worker-supplied identity from the hello (e.g. its PID)
	conn    net.Conn
	writeMu sync.Mutex // WriteFrame is a single Write, but serialize anyway
	alive   bool
}

func (w *workerConn) send(env envelope) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	return writeMsg(w.conn, env)
}

// Coordinator owns the truth ledger side of a distributed chase: it
// accepts worker connections, runs the round barrier (BeginRound),
// assigns work units to workers by partition affinity, collects
// deduction buffers, and survives worker deaths by redistributing
// their queues. It implements both cluster.Runner and chase.DistRunner
// — hand it to rock.Options.Cluster (or Pipeline.SetCluster) and the
// engine schedules rounds on it instead of the in-process pool.
type Coordinator struct {
	opts CoordOptions
	ln   net.Listener
	ring *crystal.Ring

	mu      sync.Mutex
	workers map[string]*workerConn
	order   []string // names in connection order ("worker-0".."worker-N-1")

	events chan event

	round    int
	units    map[int]*crystal.WorkUnit // Submit buffer for the current round
	outcomes []chase.UnitOutcome

	reg    *obs.Registry
	prefix string
}

// NewCoordinator creates an unstarted coordinator.
func NewCoordinator(opts CoordOptions) *Coordinator {
	opts = opts.withDefaults()
	return &Coordinator{
		opts:    opts,
		ring:    crystal.NewRing(32),
		workers: make(map[string]*workerConn),
		events:  make(chan event, 256),
		units:   make(map[int]*crystal.WorkUnit),
	}
}

// Start binds the listener and returns the bound address — call it
// before launching workers so ":0" deployments can hand the real
// address to the worker processes.
func (c *Coordinator) Start() (string, error) {
	ln, err := net.Listen("tcp", c.opts.Addr)
	if err != nil {
		return "", fmt.Errorf("remote: listen %s: %w", c.opts.Addr, err)
	}
	c.ln = ln
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// WaitWorkers accepts connections until the expected worker count is
// reached, verifying each hello's fingerprint and assigning names in
// connection order. It must complete before the coordinator is handed
// to the engine.
func (c *Coordinator) WaitWorkers(ctx context.Context) error {
	if c.ln == nil {
		if _, err := c.Start(); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(c.opts.AcceptTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for i := 0; i < c.opts.Workers; i++ {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("remote: accepting worker %d/%d: %w", i, c.opts.Workers, err)
		}
		name := fmt.Sprintf("worker-%d", i)
		meta, err := c.handshake(conn, name, deadline)
		if err != nil {
			conn.Close()
			return err
		}
		w := &workerConn{name: name, meta: meta, conn: conn, alive: true}
		c.mu.Lock()
		c.workers[name] = w
		c.order = append(c.order, name)
		c.mu.Unlock()
		c.ring.AddNode(name)
		go c.reader(w)
		c.opts.Logf("remote: %s joined from %s", name, conn.RemoteAddr())
	}
	return nil
}

func (c *Coordinator) handshake(conn net.Conn, name string, deadline time.Time) (string, error) {
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	env, err := readMsg(conn, c.opts.MaxFrame)
	if err != nil {
		return "", fmt.Errorf("remote: reading hello: %w", err)
	}
	if env.Type != mtHello || env.Hello == nil {
		return "", fmt.Errorf("remote: expected hello, got %q", env.Type)
	}
	if env.Hello.Fingerprint != c.opts.Fingerprint {
		writeMsg(conn, envelope{Type: mtHelloAck, Ack: &helloAckMsg{
			Err: fmt.Sprintf("fingerprint mismatch: coordinator %q, worker %q",
				c.opts.Fingerprint, env.Hello.Fingerprint),
		}})
		return "", fmt.Errorf("remote: worker fingerprint %q != coordinator %q",
			env.Hello.Fingerprint, c.opts.Fingerprint)
	}
	return env.Hello.Name, writeMsg(conn, envelope{Type: mtHelloAck, Ack: &helloAckMsg{Name: name}})
}

// WorkerMeta returns the identity string the named worker supplied in
// its hello (cmd/rockworker sends its PID — FaultInjector.ProcessKill
// hooks resolve the OS process to SIGKILL through it).
func (c *Coordinator) WorkerMeta(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil {
		return w.meta
	}
	return ""
}

// reader pumps one worker's messages onto the event channel. The read
// deadline doubles as the heartbeat monitor: workers heartbeat every
// HeartbeatInterval, so a connection silent for HeartbeatTimeout is a
// dead process (SIGKILL produces EOF/RST even sooner).
func (c *Coordinator) reader(w *workerConn) {
	for {
		w.conn.SetReadDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
		env, err := readMsg(w.conn, c.opts.MaxFrame)
		if err != nil {
			c.events <- event{node: w.name, err: err}
			return
		}
		if env.Type == mtHeartbeat {
			continue
		}
		c.events <- event{node: w.name, env: env}
	}
}

// liveWorkers returns the alive workers in connection order.
func (c *Coordinator) liveWorkers() []*workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*workerConn
	for _, name := range c.order {
		if w := c.workers[name]; w != nil && w.alive {
			out = append(out, w)
		}
	}
	return out
}

func (c *Coordinator) worker(name string) *workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[name]
}

// markDead transitions a worker to dead (idempotent) and reports
// whether this call made the transition.
func (c *Coordinator) markDead(name string) bool {
	c.mu.Lock()
	w := c.workers[name]
	dead := w != nil && w.alive
	if dead {
		w.alive = false
	}
	c.mu.Unlock()
	if dead {
		w.conn.Close()
		c.ring.RemoveNode(name)
		if c.reg != nil {
			c.reg.Counter(c.prefix + ".remote.worker_deaths").Inc()
		}
		c.opts.Logf("remote: %s declared dead", name)
	}
	return dead
}

// --- cluster.Runner ---

// Size returns the configured worker count.
func (c *Coordinator) Size() int { return c.opts.Workers }

// Nodes returns the worker names in connection order (the stable node
// set; deaths do not shrink it — placement just avoids dead workers).
func (c *Coordinator) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Owner returns the live worker owning the partition by consistent
// hash, or "" when every worker is dead.
func (c *Coordinator) Owner(part string) string { return c.ring.Owner(part) }

// Submit buffers one work unit's metadata for the current round. The
// unit's Run/RunOn closures are never invoked — execution happens on
// the worker replica, addressed by the unit's ID (its index in the
// round's deterministic work list).
func (c *Coordinator) Submit(u *crystal.WorkUnit) {
	c.units[u.ID] = u
}

// SetObs wires drain counters into the registry.
func (c *Coordinator) SetObs(reg *obs.Registry, prefix string) {
	c.reg, c.prefix = reg, prefix
}

// --- chase.DistRunner ---

// BeginRound ships the round preamble to every live worker and
// collects their acks. An ack error or unit-count mismatch means a
// replica diverged and aborts the run; a worker death during the
// barrier is tolerated while survivors remain.
func (c *Coordinator) BeginRound(ctx context.Context, pre chase.RoundPreamble) error {
	c.round = pre.Round
	c.units = make(map[int]*crystal.WorkUnit)
	c.outcomes = nil

	rm := toWirePreamble(pre)
	env := envelope{Type: mtRound, Round: &rm}
	waiting := map[string]bool{}
	for _, w := range c.liveWorkers() {
		if err := w.send(env); err != nil {
			c.markDead(w.name)
			continue
		}
		waiting[w.name] = true
	}
	if len(waiting) == 0 {
		return fmt.Errorf("remote: round %d: no live workers", pre.Round)
	}
	for len(waiting) > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-c.events:
			if ev.err != nil {
				if c.markDead(ev.node) {
					delete(waiting, ev.node)
				}
				if len(c.liveWorkers()) == 0 {
					return fmt.Errorf("remote: round %d: all workers died during barrier (last: %s: %v)",
						pre.Round, ev.node, ev.err)
				}
				continue
			}
			if ev.env.Type != mtRoundAck || ev.env.RAck == nil {
				continue // stale result from a reassigned unit of the previous round
			}
			ack := ev.env.RAck
			if ack.Round != pre.Round {
				continue
			}
			if ack.Err != "" {
				return fmt.Errorf("remote: round %d: %s rejected preamble: %s", pre.Round, ev.node, ack.Err)
			}
			if ack.Units != pre.Units {
				return fmt.Errorf("remote: round %d: %s derived %d units, coordinator has %d (replica diverged)",
					pre.Round, ev.node, ack.Units, pre.Units)
			}
			delete(waiting, ev.node)
		}
	}
	return nil
}

// TakeResults returns the outcomes collected by the last drain, sorted
// by unit index (the serial generation order), and resets the buffer.
func (c *Coordinator) TakeResults() []chase.UnitOutcome {
	out := c.outcomes
	c.outcomes = nil
	sort.Slice(out, func(i, j int) bool { return out[i].Unit < out[j].Unit })
	return out
}

// DrainWithStats assigns the submitted units to workers by partition
// affinity and consumes results until every unit is resolved, the
// context is cancelled, or no workers survive. Worker deaths —
// heartbeat timeouts, connection errors, or fault-injected kills —
// redistribute the dead worker's incomplete queue across survivors.
func (c *Coordinator) DrainWithStats(ctx context.Context, opts cluster.Options) cluster.DrainStats {
	stats := cluster.DrainStats{PerNode: map[string]int{}, Queued: len(c.units)}

	// Deterministic assignment pass: sorted unit IDs, each placed on its
	// partition's ring owner (ring holds live workers only).
	ids := make([]int, 0, len(c.units))
	for id := range c.units {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	assigned := map[string][]int{} // worker -> unit IDs
	unitHome := map[int]string{}   // unit ID -> current worker
	done := map[int]bool{}
	attempts := map[int]int{}
	live := c.liveWorkers()
	if len(live) == 0 {
		for _, id := range ids {
			u := c.units[id]
			stats.Failed = append(stats.Failed, cluster.UnitError{
				UnitID: id, RuleID: u.RuleID, Part: u.Part,
				Attempts: 0, Err: fmt.Errorf("no surviving worker"),
			})
		}
		return stats
	}
	rr := 0
	for _, id := range ids {
		owner := c.ring.Owner(c.units[id].Part)
		if owner == "" || c.worker(owner) == nil || !c.worker(owner).alive {
			owner = live[rr%len(live)].name
			rr++
		}
		assigned[owner] = append(assigned[owner], id)
		unitHome[id] = owner
	}
	// Rebalance pass — the remote analogue of work stealing. HashObject
	// co-locates every unit of a relation on one ring owner, which is
	// right for cache locality but can leave workers idle on datasets
	// with few relations; with stealing enabled, excess units above an
	// even share move (deterministically: donors shed their tail, takers
	// fill in connection order) to under-loaded live workers. Placement
	// never affects results — only which replica computes a buffer.
	if opts.Steal && len(live) > 1 {
		target := (len(ids) + len(live) - 1) / len(live)
		var excess []int
		for _, w := range live {
			if n := len(assigned[w.name]); n > target {
				excess = append(excess, assigned[w.name][target:]...)
				assigned[w.name] = assigned[w.name][:target]
			}
		}
		sort.Ints(excess)
		stats.Steals = len(excess)
		for _, w := range live {
			for len(assigned[w.name]) < target && len(excess) > 0 {
				id := excess[0]
				excess = excess[1:]
				assigned[w.name] = append(assigned[w.name], id)
				unitHome[id] = w.name
			}
		}
	}
	for _, w := range live {
		if len(assigned[w.name]) == 0 {
			continue
		}
		if err := w.send(envelope{Type: mtAssign, Assign: &assignMsg{Round: c.round, Units: assigned[w.name]}}); err != nil {
			c.deadAndReassign(w.name, unitHome, done, &stats)
		}
	}

	// Failed units are marked done when they are given up, so pending
	// counts exactly the units still awaiting a result.
	pending := func() int {
		n := 0
		for _, id := range ids {
			if !done[id] {
				n++
			}
		}
		return n
	}

	for pending() > 0 {
		select {
		case <-ctx.Done():
			stats.Cancelled = true
			stats.Skipped = pending()
			return stats
		case ev := <-c.events:
			if ev.err != nil {
				if c.markDead(ev.node) {
					stats.Killed = append(stats.Killed, ev.node)
					c.reassignFrom(ev.node, unitHome, done, &stats)
				}
				continue
			}
			if ev.env.Type != mtResult || ev.env.Result == nil {
				continue
			}
			res := ev.env.Result
			if res.Round != c.round || done[res.Unit] {
				continue // stale round, or duplicate after a reassignment race
			}
			if res.Err != "" {
				attempts[res.Unit]++
				u := c.units[res.Unit]
				stats.Panics++
				if attempts[res.Unit] <= opts.MaxRetries {
					if c.retryElsewhere(res.Unit, ev.node, unitHome, &stats) {
						stats.Retries++
						continue
					}
				}
				stats.Failed = append(stats.Failed, cluster.UnitError{
					UnitID: res.Unit, RuleID: u.RuleID, Part: u.Part, Node: ev.node,
					Attempts: attempts[res.Unit], Err: fmt.Errorf("%s", res.Err),
				})
				done[res.Unit] = true
				continue
			}
			done[res.Unit] = true
			stats.PerNode[ev.node]++
			c.outcomes = append(c.outcomes, chase.UnitOutcome{
				Unit: res.Unit, Fixes: fromWireFixes(res.Fixes),
				Unresolved: fromWireUnres(res.Unresolved), ResolvedMI: res.ResolvedMI,
				Valuations: res.Valuations, MLCalls: res.MLCalls,
				CostNs: res.CostNs, Node: ev.node,
			})
			if c.reg != nil {
				c.reg.Counter(c.prefix + ".remote.results").Inc()
			}
			// Fault injection: a scheduled kill on this node fires after the
			// unit count it was configured with. Real mode (ProcessKill set)
			// SIGKILLs the actual process inside ShouldDie and detection
			// happens the honest way — EOF/RST or heartbeat timeout on the
			// reader; simulated mode closes the connection here, which the
			// reader reports as a death through the same path.
			if opts.Faults != nil && opts.Faults.ShouldDie(ev.node) {
				if opts.Faults.ProcessKill == nil {
					if w := c.worker(ev.node); w != nil {
						w.conn.Close()
					}
				}
			}
		}
	}
	c.opts.Logf("remote: round %d drained: per-node %v, reassigned %d, killed %v",
		c.round, stats.PerNode, stats.Reassigned, stats.Killed)
	return stats
}

// deadAndReassign marks a worker dead and moves its incomplete units.
func (c *Coordinator) deadAndReassign(name string, unitHome map[int]string, done map[int]bool, stats *cluster.DrainStats) {
	if c.markDead(name) {
		stats.Killed = append(stats.Killed, name)
		c.reassignFrom(name, unitHome, done, stats)
	}
}

// reassignFrom redistributes a dead worker's incomplete units across
// the survivors (round-robin in connection order); with no survivors
// the units are reported failed.
func (c *Coordinator) reassignFrom(deadNode string, unitHome map[int]string, done map[int]bool, stats *cluster.DrainStats) {
	var orphans []int
	for id, home := range unitHome {
		if home == deadNode && !done[id] {
			orphans = append(orphans, id)
		}
	}
	sort.Ints(orphans)
	if len(orphans) == 0 {
		return
	}
	live := c.liveWorkers()
	if len(live) == 0 {
		for _, id := range orphans {
			u := c.units[id]
			stats.Failed = append(stats.Failed, cluster.UnitError{
				UnitID: id, RuleID: u.RuleID, Part: u.Part, Node: deadNode,
				Err: fmt.Errorf("no surviving worker"),
			})
			done[id] = true
		}
		return
	}
	moved := map[string][]int{}
	for i, id := range orphans {
		w := live[i%len(live)]
		moved[w.name] = append(moved[w.name], id)
		unitHome[id] = w.name
	}
	for name, us := range moved {
		w := c.worker(name)
		if err := w.send(envelope{Type: mtAssign, Assign: &assignMsg{Round: c.round, Units: us}}); err != nil {
			c.deadAndReassign(name, unitHome, done, stats)
			continue
		}
		stats.Reassigned += len(us)
		c.opts.Logf("remote: reassigned %d unit(s) from %s to %s", len(us), deadNode, name)
	}
	if c.reg != nil {
		c.reg.Counter(c.prefix + ".remote.reassigned").Add(uint64(len(orphans)))
	}
}

// retryElsewhere re-sends a failed unit to a live worker other than
// the one it failed on; it reports whether a retry was scheduled.
func (c *Coordinator) retryElsewhere(unit int, failedOn string, unitHome map[int]string, stats *cluster.DrainStats) bool {
	for _, w := range c.liveWorkers() {
		if w.name == failedOn {
			continue
		}
		if err := w.send(envelope{Type: mtAssign, Assign: &assignMsg{Round: c.round, Units: []int{unit}}}); err != nil {
			continue
		}
		unitHome[unit] = w.name
		stats.Reassigned++
		return true
	}
	// Sole survivor: retry on the same node (a panic may be transient).
	if w := c.worker(failedOn); w != nil && w.alive {
		if err := w.send(envelope{Type: mtAssign, Assign: &assignMsg{Round: c.round, Units: []int{unit}}}); err == nil {
			return true
		}
	}
	return false
}

// Close tears down every worker connection and the listener; workers
// observe EOF and exit cleanly.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	for _, w := range c.workers {
		w.alive = false
		w.conn.Close()
	}
	c.mu.Unlock()
	if c.ln != nil {
		return c.ln.Close()
	}
	return nil
}
