package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"github.com/rockclean/rock/internal/data"
)

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 7, 64, 1024, 1 << 16, 1<<20 + 13}
	for _, n := range sizes {
		payload := make([]byte, n)
		rng.Read(payload)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", n, err)
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip of %d bytes: payload mismatch", n)
		}
	}
}

func TestFrameStream(t *testing.T) {
	// Frames are stateful: several frames on one stream must come back
	// in order with boundaries intact.
	var buf bytes.Buffer
	frames := [][]byte{[]byte("alpha"), {}, []byte("beta"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: want io.EOF, got %v", err)
	}
}

func TestTruncatedFrameRejected(t *testing.T) {
	payload := []byte("the quick brown fox")
	var full bytes.Buffer
	if err := WriteFrame(&full, payload); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Every possible truncation point short of the full frame must fail,
	// never hang or return a partial payload.
	for cut := 0; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes: want error, got payload", cut, len(raw))
		}
	}
}

func TestChecksumMismatchRejected(t *testing.T) {
	payload := []byte("payload under test")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit in each payload byte position in turn.
	for i := frameHeader; i < len(raw); i++ {
		corrupt := append([]byte(nil), raw...)
		corrupt[i] ^= 0x01
		_, err := ReadFrame(bytes.NewReader(corrupt), 0)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("corrupt byte %d: want ErrChecksum, got %v", i, err)
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	payload := bytes.Repeat([]byte{'x'}, 100)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 99); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("100-byte payload with max 99: want ErrFrameTooLarge, got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 100); err != nil {
		t.Fatalf("100-byte payload with max 100: %v", err)
	}

	// A hostile length prefix must be rejected before any allocation —
	// the header claims 3 GiB with no payload behind it.
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], 3<<30)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile 3GiB prefix: want ErrFrameTooLarge, got %v", err)
	}
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0xFF}, 1000))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch")
		}
	})
}

func FuzzReadFrameGarbage(f *testing.F) {
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0x7F}, 64))
	// Arbitrary bytes must never panic or over-allocate; they either
	// parse as a valid frame or return an error.
	f.Fuzz(func(t *testing.T, raw []byte) {
		ReadFrame(bytes.NewReader(raw), 1<<20)
	})
}

func TestWireValueRoundTrip(t *testing.T) {
	vals := []data.Value{
		data.S(""), data.S("hello"), data.S("\x00null"), // the null sentinel as a real string
		data.I(0), data.I(-42), data.I(1 << 60),
		data.F(0), data.F(-3.25), data.F(1e300),
		data.B(true), data.B(false),
		data.TS(0), data.TS(1722470400),
		data.Null(data.TString), data.Null(data.TInt), data.Null(data.TFloat),
		data.Null(data.TBool), data.Null(data.TTime),
	}
	for _, v := range vals {
		got := fromWireValue(toWireValue(v))
		if !got.Equal(v) {
			t.Errorf("value %v: round-trip gave %v", v, got)
		}
		if got.Key() != v.Key() {
			t.Errorf("value %v: Key %q round-tripped to %q", v, v.Key(), got.Key())
		}
		if got.Kind() != v.Kind() {
			t.Errorf("value %v: kind %v round-tripped to %v", v, v.Kind(), got.Kind())
		}
	}
}
