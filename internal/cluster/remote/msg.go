package remote

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/truth"
)

// Message types. Every frame payload is one JSON envelope.
type msgType string

const (
	mtHello     msgType = "hello"     // worker -> coordinator: fingerprint handshake
	mtHelloAck  msgType = "hello_ack" // coordinator -> worker: assigned node name
	mtRound     msgType = "round"     // coordinator -> worker: round preamble
	mtRoundAck  msgType = "round_ack" // worker -> coordinator: derived unit count or error
	mtAssign    msgType = "assign"    // coordinator -> worker: unit indices to execute
	mtResult    msgType = "result"    // worker -> coordinator: one unit's deduction buffer
	mtHeartbeat msgType = "hb"        // worker -> coordinator: liveness
)

// envelope is the single wire message shape; exactly one payload
// pointer is set according to Type (heartbeats carry none).
type envelope struct {
	Type   msgType      `json:"t"`
	Hello  *helloMsg    `json:"hello,omitempty"`
	Ack    *helloAckMsg `json:"ack,omitempty"`
	Round  *roundMsg    `json:"round,omitempty"`
	RAck   *roundAckMsg `json:"rack,omitempty"`
	Assign *assignMsg   `json:"assign,omitempty"`
	Result *resultMsg   `json:"result,omitempty"`
}

type helloMsg struct {
	// Fingerprint digests the worker's replica inputs (relation names and
	// tuple counts, rule IDs, partition count); the coordinator rejects a
	// worker whose fingerprint differs from its own, since a diverged
	// replica would fail the first round barrier anyway.
	Fingerprint string `json:"fp"`
	Name        string `json:"name,omitempty"`
}

type helloAckMsg struct {
	Name string `json:"name"`
	Err  string `json:"err,omitempty"`
}

type roundMsg struct {
	Round    int       `json:"round"`
	RuleIDs  []string  `json:"rules"`
	Journal  []wireOp  `json:"journal,omitempty"`
	Accepted []wireFix `json:"accepted,omitempty"`
	UseDirty bool      `json:"dirty,omitempty"`
	Units    int       `json:"units"`
}

type roundAckMsg struct {
	Round int    `json:"round"`
	Units int    `json:"units"`
	Err   string `json:"err,omitempty"`
}

type assignMsg struct {
	Round int   `json:"round"`
	Units []int `json:"units"`
}

type resultMsg struct {
	// Round lets the coordinator drop stale results arriving after a
	// reassignment has already moved the barrier on.
	Round      int        `json:"round"`
	Unit       int        `json:"unit"`
	Fixes      []wireFix  `json:"fixes,omitempty"`
	Unresolved []wireUnre `json:"unres,omitempty"`
	ResolvedMI int        `json:"rmi,omitempty"`
	Valuations int        `json:"vals,omitempty"`
	MLCalls    int        `json:"ml,omitempty"`
	CostNs     int64      `json:"cost,omitempty"`
	Err        string     `json:"err,omitempty"`
}

// wireUnre mirrors chase.UnresolvedConflict: a deduction-time conflict
// escalation recorded on the worker's report.
type wireUnre struct {
	Conflict *wireConflict `json:"c,omitempty"`
	Fix      wireFix       `json:"fix"`
}

// wireConflict mirrors truth.Conflict.
type wireConflict struct {
	Kind int       `json:"kind"`
	Rel  string    `json:"rel,omitempty"`
	Attr string    `json:"attr,omitempty"`
	EID  string    `json:"eid,omitempty"`
	Old  wireValue `json:"old"`
	New  wireValue `json:"new"`
	A    string    `json:"a,omitempty"`
	B    string    `json:"b,omitempty"`
}

func toWireUnres(us []chase.UnresolvedConflict) []wireUnre {
	if len(us) == 0 {
		return nil
	}
	out := make([]wireUnre, len(us))
	for i, u := range us {
		w := wireUnre{Fix: toWireFix(u.Fix)}
		if c := u.Conflict; c != nil {
			w.Conflict = &wireConflict{
				Kind: int(c.Kind), Rel: c.Rel, Attr: c.Attr, EID: c.EID,
				Old: toWireValue(c.Old), New: toWireValue(c.New), A: c.A, B: c.B,
			}
		}
		out[i] = w
	}
	return out
}

func fromWireUnres(ws []wireUnre) []chase.UnresolvedConflict {
	if len(ws) == 0 {
		return nil
	}
	out := make([]chase.UnresolvedConflict, len(ws))
	for i, w := range ws {
		u := chase.UnresolvedConflict{Fix: fromWireFix(w.Fix)}
		if c := w.Conflict; c != nil {
			u.Conflict = &truth.Conflict{
				Kind: truth.ConflictKind(c.Kind), Rel: c.Rel, Attr: c.Attr, EID: c.EID,
				Old: fromWireValue(c.Old), New: fromWireValue(c.New), A: c.A, B: c.B,
			}
		}
		out[i] = u
	}
	return out
}

// wireValue serializes data.Value, whose fields are unexported. Null
// values round-trip as (Kind, N) so typed nulls keep their Key()
// identity.
type wireValue struct {
	K int     `json:"k"`
	N bool    `json:"n,omitempty"`
	S string  `json:"s,omitempty"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	B bool    `json:"b,omitempty"`
}

func toWireValue(v data.Value) wireValue {
	w := wireValue{K: int(v.Kind())}
	if v.IsNull() {
		w.N = true
		return w
	}
	switch v.Kind() {
	case data.TString:
		w.S = v.Str()
	case data.TInt, data.TTime:
		w.I = v.Int()
	case data.TFloat:
		w.F = v.Float()
	case data.TBool:
		w.B = v.Bool()
	}
	return w
}

func fromWireValue(w wireValue) data.Value {
	k := data.Type(w.K)
	if w.N {
		return data.Null(k)
	}
	switch k {
	case data.TString:
		return data.S(w.S)
	case data.TInt:
		return data.I(w.I)
	case data.TTime:
		return data.TS(w.I)
	case data.TFloat:
		return data.F(w.F)
	case data.TBool:
		return data.B(w.B)
	}
	return data.Null(k)
}

// wireFix mirrors chase.Fix with a serializable value.
type wireFix struct {
	Kind   int       `json:"kind"`
	Rel    string    `json:"rel,omitempty"`
	Attr   string    `json:"attr,omitempty"`
	EID1   string    `json:"e1,omitempty"`
	EID2   string    `json:"e2,omitempty"`
	TID    int       `json:"tid,omitempty"`
	TID1   int       `json:"t1,omitempty"`
	TID2   int       `json:"t2,omitempty"`
	Value  wireValue `json:"v"`
	Strict bool      `json:"strict,omitempty"`
	RuleID string    `json:"rule,omitempty"`
}

func toWireFix(f chase.Fix) wireFix {
	return wireFix{
		Kind: int(f.Kind), Rel: f.Rel, Attr: f.Attr,
		EID1: f.EID1, EID2: f.EID2,
		TID: f.TID, TID1: f.TID1, TID2: f.TID2,
		Value: toWireValue(f.Value), Strict: f.Strict, RuleID: f.RuleID,
	}
}

func fromWireFix(w wireFix) chase.Fix {
	return chase.Fix{
		Kind: chase.FixKind(w.Kind), Rel: w.Rel, Attr: w.Attr,
		EID1: w.EID1, EID2: w.EID2,
		TID: w.TID, TID1: w.TID1, TID2: w.TID2,
		Value: fromWireValue(w.Value), Strict: w.Strict, RuleID: w.RuleID,
	}
}

func toWireFixes(fs []chase.Fix) []wireFix {
	if len(fs) == 0 {
		return nil
	}
	out := make([]wireFix, len(fs))
	for i, f := range fs {
		out[i] = toWireFix(f)
	}
	return out
}

func fromWireFixes(ws []wireFix) []chase.Fix {
	if len(ws) == 0 {
		return nil
	}
	out := make([]chase.Fix, len(ws))
	for i, w := range ws {
		out[i] = fromWireFix(w)
	}
	return out
}

// wireOp mirrors truth.Op with a serializable value.
type wireOp struct {
	Kind        int       `json:"kind"`
	A           string    `json:"a,omitempty"`
	B           string    `json:"b,omitempty"`
	Rel         string    `json:"rel,omitempty"`
	Attr        string    `json:"attr,omitempty"`
	Value       wireValue `json:"v"`
	TID1        int       `json:"t1,omitempty"`
	TID2        int       `json:"t2,omitempty"`
	Strict      bool      `json:"strict,omitempty"`
	OrderPairs  [][2]int  `json:"pairs,omitempty"`
	OrderStrict []bool    `json:"pstrict,omitempty"`
}

func toWireOps(ops []truth.Op) []wireOp {
	if len(ops) == 0 {
		return nil
	}
	out := make([]wireOp, len(ops))
	for i, op := range ops {
		out[i] = wireOp{
			Kind: int(op.Kind), A: op.A, B: op.B, Rel: op.Rel, Attr: op.Attr,
			Value: toWireValue(op.Value), TID1: op.TID1, TID2: op.TID2,
			Strict: op.Strict, OrderPairs: op.OrderPairs, OrderStrict: op.OrderStrict,
		}
	}
	return out
}

func fromWireOps(ws []wireOp) []truth.Op {
	if len(ws) == 0 {
		return nil
	}
	out := make([]truth.Op, len(ws))
	for i, w := range ws {
		out[i] = truth.Op{
			Kind: truth.OpKind(w.Kind), A: w.A, B: w.B, Rel: w.Rel, Attr: w.Attr,
			Value: fromWireValue(w.Value), TID1: w.TID1, TID2: w.TID2,
			Strict: w.Strict, OrderPairs: w.OrderPairs, OrderStrict: w.OrderStrict,
		}
	}
	return out
}

func toWirePreamble(pre chase.RoundPreamble) roundMsg {
	return roundMsg{
		Round: pre.Round, RuleIDs: pre.RuleIDs,
		Journal: toWireOps(pre.Journal), Accepted: toWireFixes(pre.Accepted),
		UseDirty: pre.UseDirty, Units: pre.Units,
	}
}

func fromWirePreamble(m roundMsg) chase.RoundPreamble {
	return chase.RoundPreamble{
		Round: m.Round, RuleIDs: m.RuleIDs,
		Journal: fromWireOps(m.Journal), Accepted: fromWireFixes(m.Accepted),
		UseDirty: m.UseDirty, Units: m.Units,
	}
}

// writeMsg frames and writes one envelope.
func writeMsg(w io.Writer, env envelope) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// readMsg reads and decodes one envelope.
func readMsg(r io.Reader, max int) (envelope, error) {
	payload, err := ReadFrame(r, max)
	if err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return envelope{}, fmt.Errorf("remote: decode frame: %w", err)
	}
	return env, nil
}
