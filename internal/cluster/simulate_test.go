package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSimulateMakespanSingleWorker(t *testing.T) {
	units := []SimUnit{{Node: "a", Cost: ms(10)}, {Node: "a", Cost: ms(20)}, {Node: "a", Cost: ms(30)}}
	got := SimulateMakespan(units, []string{"a"}, true)
	if got != ms(60) {
		t.Errorf("single worker makespan=%v want 60ms", got)
	}
}

func TestSimulateMakespanPerfectSplit(t *testing.T) {
	units := []SimUnit{
		{Node: "a", Cost: ms(10)}, {Node: "a", Cost: ms(10)},
		{Node: "b", Cost: ms(10)}, {Node: "b", Cost: ms(10)},
	}
	got := SimulateMakespan(units, []string{"a", "b"}, false)
	if got != ms(20) {
		t.Errorf("balanced makespan=%v want 20ms", got)
	}
}

func TestSimulateMakespanStealingHelpsSkew(t *testing.T) {
	// Everything assigned to node a; stealing must spread it.
	var units []SimUnit
	for i := 0; i < 8; i++ {
		units = append(units, SimUnit{Node: "a", Cost: ms(10)})
	}
	noSteal := SimulateMakespan(units, []string{"a", "b", "c", "d"}, false)
	steal := SimulateMakespan(units, []string{"a", "b", "c", "d"}, true)
	if noSteal != ms(80) {
		t.Errorf("no-steal makespan=%v want 80ms", noSteal)
	}
	if steal >= noSteal {
		t.Errorf("stealing must shrink the makespan: %v vs %v", steal, noSteal)
	}
	if steal < ms(20) {
		t.Errorf("4 workers cannot beat total/4: %v", steal)
	}
}

func TestSimulateMakespanMoreWorkersNeverSlower(t *testing.T) {
	f := func(costs []uint16) bool {
		if len(costs) == 0 {
			return true
		}
		var units []SimUnit
		nodeNames := func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = string(rune('a' + i))
			}
			return out
		}
		for i, c := range costs {
			units = append(units, SimUnit{
				Node: string(rune('a' + i%4)),
				Cost: time.Duration(c%500+1) * time.Microsecond,
			})
		}
		m2 := SimulateMakespan(units, nodeNames(2), true)
		m8 := SimulateMakespan(units, nodeNames(8), true)
		// With stealing, more workers never increase the makespan (units
		// assigned to absent nodes fall back to the first node).
		return m8 <= m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimulateMakespanLowerBound(t *testing.T) {
	// Makespan >= max(total/n, max unit cost).
	units := []SimUnit{
		{Node: "a", Cost: ms(50)}, {Node: "b", Cost: ms(5)},
		{Node: "a", Cost: ms(5)}, {Node: "b", Cost: ms(5)},
	}
	got := SimulateMakespan(units, []string{"a", "b", "c"}, true)
	if got < ms(50) {
		t.Errorf("makespan %v below the longest unit", got)
	}
}

func TestSimulateMakespanUnknownNodeFallsBack(t *testing.T) {
	units := []SimUnit{{Node: "ghost", Cost: ms(10)}}
	got := SimulateMakespan(units, []string{"a", "b"}, false)
	if got != ms(10) {
		t.Errorf("fallback makespan=%v", got)
	}
}

func TestSimulateMakespanEmpty(t *testing.T) {
	if got := SimulateMakespan(nil, []string{"a"}, true); got != 0 {
		t.Errorf("empty makespan=%v", got)
	}
}
