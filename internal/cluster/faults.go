package cluster

import (
	"fmt"
	"sync"
	"time"
)

// FaultInjector injects controlled failures into a drain, standing in
// for the node crashes and stragglers a real 21-node Kubernetes
// deployment (paper §6) experiences. It drives the recovery tests and
// the rockbench "faults" experiment; production runs leave
// Options.Faults nil.
//
// All injections are keyed by WorkUnit.ID or node name and are
// one-shot state machines: a scheduled panic is consumed per attempt,
// a node kill triggers once.
type FaultInjector struct {
	// ProcessKill, when set, is the injector's "real mode": instead of
	// simulating a node death inside the process, a triggered KillNode
	// schedule invokes this hook, which is expected to SIGKILL the actual
	// worker process behind the node (internal/cluster/remote wires it to
	// os.Process.Kill). Set it before the drain starts; it is called at
	// most once per scheduled kill, outside the injector's lock.
	ProcessKill func(node string)

	mu     sync.Mutex
	panics map[int]int           // unit ID -> remaining attempts to panic
	delays map[int]time.Duration // unit ID -> straggler delay
	kills  map[string]int        // node -> units to execute before dying
}

// NewFaultInjector returns an empty injector.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{
		panics: make(map[int]int),
		delays: make(map[int]time.Duration),
		kills:  make(map[string]int),
	}
}

// PanicUnit makes the unit with the given ID panic on its next `times`
// attempts. With times=1 and retries enabled, the first attempt
// panics and the retry succeeds — the successful-recovery scenario.
func (f *FaultInjector) PanicUnit(id, times int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.panics[id] = times
}

// SlowUnit turns the unit into a straggler: its execution is preceded
// by the given delay (cut short if the drain's context is cancelled).
func (f *FaultInjector) SlowUnit(id int, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delays[id] = d
}

// KillNode schedules the node to die after it has executed afterUnits
// units in the next drain; its pending queue is then reclaimed and
// reassigned to the surviving nodes. afterUnits < 1 kills the node
// after its first unit.
func (f *FaultInjector) KillNode(node string, afterUnits int) {
	if afterUnits < 1 {
		afterUnits = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kills[node] = afterUnits
}

func (f *FaultInjector) delayFor(id int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delays[id]
}

// maybePanic consumes one scheduled panic for the unit, if any, and
// panics — inside the worker's recover() shield.
func (f *FaultInjector) maybePanic(id int) {
	f.mu.Lock()
	n := f.panics[id]
	if n > 0 {
		f.panics[id] = n - 1
	}
	f.mu.Unlock()
	if n > 0 {
		panic(fmt.Sprintf("fault injection: unit %d", id))
	}
}

// ShouldDie records one executed unit on node and reports whether the
// node's scheduled kill has now triggered; when it has and ProcessKill
// is set, the hook fires (real mode — the caller's worker process is
// killed for real rather than simulated dead). The remote coordinator
// consults this after every received result.
func (f *FaultInjector) ShouldDie(node string) bool {
	if !f.shouldDie(node) {
		return false
	}
	if f.ProcessKill != nil {
		f.ProcessKill(node)
	}
	return true
}

// shouldDie records one executed unit on node and reports whether the
// node's scheduled kill has now triggered.
func (f *FaultInjector) shouldDie(node string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.kills[node]
	if !ok {
		return false
	}
	n--
	if n <= 0 {
		delete(f.kills, node)
		return true
	}
	f.kills[node] = n
	return false
}
