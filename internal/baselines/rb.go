package baselines

import (
	"math/rand"
	"sort"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
)

// RB is the Baran-style holistic cleaning baseline [65]: per-cell feature
// engineering (value-context co-occurrence statistics plus format
// descriptors) feeding a boosted tree-ensemble error model, and repair by
// the majority value among context-matching tuples. The stand-in keeps
// the paper-reported profile: feature generation is the dominant cost,
// context voting repairs FD-governed (often numeric) cells well, and
// free-text cells — whose contexts rarely repeat — remain weak
// (Figures 4(d)-(f), Exp-3: "RB is not effective for textual values").
type RB struct {
	models map[string]*ml.StumpEnsemble // per rel.attr
	// context[rel.attr][ctxAttrIdx|ctxValue] -> value counts of the target
	// attribute, built during the (costly) feature-generation pass. Repair
	// aggregates votes across all single-attribute contexts of the tuple
	// (Baran's value models).
	context map[string]map[string]map[string]valCount
}

type valCount struct {
	v data.Value
	n int
}

// NewRB creates the baseline.
func NewRB() *RB { return &RB{} }

// Name implements System.
func (*RB) Name() string { return "RB" }

const rbFeatDim = 8

// features is the engineered per-cell representation. The context scan —
// counting how often the cell's value co-occurs with every other
// attribute value of the tuple across the whole relation — is the
// deliberate cost centre.
func (rb *RB) features(rel *data.Relation, relName string, tp *data.Tuple, ai int) []float64 {
	v := tp.Values[ai]
	f := make([]float64, rbFeatDim)
	s := v.String()
	f[0] = float64(len(s)) / 32
	digits, letters := 0, 0
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			letters++
		}
	}
	if len(s) > 0 {
		f[1] = float64(digits) / float64(len(s))
		f[2] = float64(letters) / float64(len(s))
	}
	if v.IsNull() {
		f[3] = 1
	}
	// Co-occurrence support: how many other tuples share (context attr
	// value, this value)? Low support marks outliers. This scan is O(n)
	// per cell — the expensive feature generation of the paper.
	support, contexts := 0.0, 0.0
	for aj := range rel.Schema.Attrs {
		if aj == ai || tp.Values[aj].IsNull() {
			continue
		}
		contexts++
		for _, other := range rel.Tuples {
			if other.TID == tp.TID {
				continue
			}
			if other.Values[aj].Equal(tp.Values[aj]) && other.Values[ai].Equal(v) {
				support++
			}
		}
	}
	if contexts > 0 {
		f[4] = support / (contexts * float64(rel.Len()))
	}
	// Value frequency within the column.
	freq := 0
	for _, other := range rel.Tuples {
		if other.Values[ai].Equal(v) {
			freq++
		}
	}
	f[5] = float64(freq) / float64(rel.Len()+1)
	if v.Kind() == data.TFloat || v.Kind() == data.TInt {
		f[6] = 1
	}
	f[7] = 1
	return f
}

// pairContextKeys lists the single-attribute context keys of a cell: one
// per other non-null attribute value of the tuple.
func pairContextKeys(tp *data.Tuple, ai int) []string {
	var keys []string
	for aj, v := range tp.Values {
		if aj == ai || v.IsNull() {
			continue
		}
		keys = append(keys, string(rune('A'+aj))+"\x1c"+v.Key())
	}
	return keys
}

// Discover implements System: feature generation + ensemble training on
// the labelled split.
func (rb *RB) Discover(b *Bench) ([]*ree.Rule, error) {
	rng := rand.New(rand.NewSource(b.Seed + 5))
	rb.models = make(map[string]*ml.StumpEnsemble)
	rb.context = make(map[string]map[string]map[string]valCount)
	goldCells := b.DS.Gold.ErrorCells()
	for relName, rel := range b.Env.DB.Relations {
		for ai, attr := range rel.Schema.Attrs {
			key := relName + "." + attr.Name
			ctx := make(map[string]map[string]valCount)
			rb.context[key] = ctx
			var xs [][]float64
			var ys []float64
			for _, tp := range rel.Tuples {
				bad := goldCells[quality.CellKey(relName, tp.TID, attr.Name)]
				if !bad && !tp.Values[ai].IsNull() {
					for _, ck := range pairContextKeys(tp, ai) {
						m := ctx[ck]
						if m == nil {
							m = make(map[string]valCount)
							ctx[ck] = m
						}
						vc := m[tp.Values[ai].Key()]
						vc.v = tp.Values[ai]
						vc.n++
						m[tp.Values[ai].Key()] = vc
					}
				}
				if rng.Float64() > b.TrainFraction {
					continue
				}
				xs = append(xs, rb.features(rel, relName, tp, ai))
				if bad {
					ys = append(ys, 1)
				} else {
					ys = append(ys, 0)
				}
			}
			e := ml.NewStumpEnsemble(12)
			e.Fit(xs, ys)
			rb.models[key] = e
		}
	}
	return nil, nil
}

func (rb *RB) ensureTrained(b *Bench) error {
	if rb.models == nil {
		_, err := rb.Discover(b)
		return err
	}
	return nil
}

// Detect implements System: score every cell with the ensemble.
func (rb *RB) Detect(b *Bench) (map[string]bool, map[[2]string]bool, error) {
	if err := rb.ensureTrained(b); err != nil {
		return nil, nil, err
	}
	cells := make(map[string]bool)
	for relName, rel := range b.Env.DB.Relations {
		for _, tp := range rel.Tuples {
			for ai, attr := range rel.Schema.Attrs {
				m := rb.models[relName+"."+attr.Name]
				if m == nil {
					continue
				}
				if m.Predict(rb.features(rel, relName, tp, ai)) >= 0.5 {
					cells[quality.CellKey(relName, tp.TID, attr.Name)] = true
				}
			}
		}
	}
	// RB does not support ER or TD (paper §6: "TD and ER of RB are not
	// shown because they do not support these operations").
	return cells, map[[2]string]bool{}, nil
}

// Correct implements System: majority vote among tuples sharing the
// cell's full context.
func (rb *RB) Correct(b *Bench) (*quality.Corrections, error) {
	cells, _, err := rb.Detect(b)
	if err != nil {
		return nil, err
	}
	out := quality.NewCorrections()
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		relName, tid, attr, ok := parseCellKey(key)
		if !ok {
			continue
		}
		rel := b.Env.DB.Rel(relName)
		if rel == nil {
			continue
		}
		tp := rel.Get(tid)
		ai := rel.Schema.Index(attr)
		if tp == nil || ai < 0 {
			continue
		}
		ctx := rb.context[relName+"."+attr]
		if ctx == nil {
			continue
		}
		// Aggregate votes across every single-attribute context of the
		// tuple; the value consistent with the most contexts wins.
		tally := map[string]valCount{}
		for _, ck := range pairContextKeys(tp, ai) {
			for vk, vc := range ctx[ck] {
				agg := tally[vk]
				agg.v = vc.v
				agg.n += vc.n
				tally[vk] = agg
			}
		}
		bestN := 0
		bestKey := ""
		for vk, vc := range tally {
			if vc.v.Equal(tp.Values[ai]) {
				continue
			}
			if vc.n > bestN || (vc.n == bestN && vk < bestKey) {
				bestN, bestKey = vc.n, vk
			}
		}
		if bestN > 0 {
			out.AddCell(relName, tid, attr, tally[bestKey].v)
		}
	}
	return out, nil
}
