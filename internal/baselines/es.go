package baselines

import (
	"github.com/rockclean/rock/internal/discovery"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
)

// ES is the evidence-set rule-discovery baseline [72]: the same evidence
// machinery as Rock's miner, but purely mining — no support-based
// pruning, no sampling, no ML predicates. Its lattice sweep reproduces the
// cost blow-up the paper reports (Figures 4(a)-(c)), and its mined rules
// skew to precision over recall (Figures 4(d)-(f)).
type ES struct{}

// NewES creates the baseline.
func NewES() *ES { return &ES{} }

// Name implements System.
func (*ES) Name() string { return "ES" }

// Discover implements System: unpruned, unsampled evidence-set mining.
func (*ES) Discover(b *Bench) ([]*ree.Rule, error) {
	opts := discovery.DefaultOptions()
	opts.Prune = false
	opts.SampleRatio = 1.0
	// ES walks the whole itemset lattice over everything it builds, so its
	// evidence budget must stay well below Rock's or the suite never
	// terminates — the paper's ES cannot finish within a day on the full
	// data, and even at a quarter of Rock's pair budget the unpruned
	// lattice keeps ES the slowest miner (Figures 4(a)-(c)).
	opts.MaxPairs = 25000
	// Mining on the dirty data caps achievable confidence; 0.85 keeps the
	// imperfect dependencies while ES's lack of ML predicates and chase
	// still limits its recall (the paper's characterisation).
	opts.MinConfidence = 0.85
	opts.Seed = b.Seed
	var all []*ree.Rule
	for _, rel := range b.Env.DB.Names() {
		m := discovery.NewMiner(b.Env, rel, opts)
		rules, _, err := m.Discover()
		if err != nil {
			return nil, err
		}
		all = append(all, rules...)
	}
	return all, nil
}

// Detect implements System: ES detects with its own mined rules through
// the naive (unblocked, single-worker) evaluator.
func (e *ES) Detect(b *Bench) (map[string]bool, map[[2]string]bool, error) {
	rules, err := e.Discover(b)
	if err != nil {
		return nil, nil, err
	}
	sql := &SQLEngine{EngineName: "ES-exec", RulesOverride: rules}
	return sql.Detect(b)
}

// Correct implements System: ES applies each mined rule's consequence once
// (no chase, no ground truth) — precision-leaning, recall-poor.
func (e *ES) Correct(b *Bench) (*quality.Corrections, error) {
	rules, err := e.Discover(b)
	if err != nil {
		return nil, err
	}
	sql := &SQLEngine{EngineName: "ES-exec", RulesOverride: rules, SinglePass: true}
	return sql.Correct(b)
}
